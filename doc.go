// Package zerberr is a from-scratch Go reproduction of Zerber+R
// (Zerr, Olmedilla, Nejdl, Siberski: "Zerber+R: Top-k Retrieval from a
// Confidential Index", EDBT 2009): a privacy-preserving outsourced
// inverted index that supports server-side top-k ranking without
// revealing term statistics to the index server.
//
// # Architecture
//
// A deployment has three roles:
//
//   - Untrusted index server (internal/server): stores merged posting
//     lists whose elements carry an encrypted payload plus a plaintext
//     transformed relevance score (TRS); ranks by TRS; enforces group
//     ACLs; serves ranked ranges for the progressive top-k protocol.
//     Two wire protocols: serial v1 (one operation per round-trip,
//     kept for compatibility) and batched v2 (multi-list queries,
//     bulk insert/remove, structured {code, error} envelopes), which
//     lets a multi-term search finish in one round-trip per follow-up
//     round instead of one per list request.
//   - Storage engines (internal/store): the pluggable backends beneath
//     the server — a RAM-only engine and a durable one with a
//     CRC-framed write-ahead log, atomic snapshots and crash recovery,
//     so a restarted server (cmd/zerberd -data-dir) keeps its index.
//     The write path group-commits: concurrent appenders publish
//     records into a commit queue and a single committer coalesces
//     them into one write (and, under -fsync-each, one fsync) per
//     bounded window, a batched upload is logged as a single WAL
//     record, and recovery mmaps the snapshot and folds lists in
//     lazily, so a restarted shard answers its first query before the
//     whole index is decoded. See DESIGN.md "Write path".
//     Each merged list is held as per-group sorted sub-lists with
//     per-list locking, so the protocol's hot operation (a ranked
//     range filtered by the caller's groups) is a k-way merge that
//     skips straight to the requested offset instead of scanning the
//     list. Every list carries a mutation version, persisted through
//     crash recovery, which the query-result cache (internal/cache)
//     keys ranked windows by: repeated reads of hot terms are served
//     from a sharded LRU with payloads aliased, and any insert or
//     remove invalidates transparently by bumping the version.
//     Responses carry the version, and conditional sub-queries
//     (if_version) let the cluster router revalidate retained shard
//     windows for a few bytes instead of re-fetching them.
//   - Trusted clients (internal/client): index documents (seal
//     elements under group keys, compute TRS via the published RSTF,
//     upload them as one batched insert) and execute queries
//     (decrypt, filter, follow-up requests with doubling response
//     sizes — all terms' follow-up loops driven as one state machine
//     over the batched transport). The API is context-first (v3):
//     every operation takes a context.Context, cancellation and
//     deadlines propagate through every layer down to in-flight HTTP
//     requests, and SearchStream exposes the progressive protocol as
//     an iterator yielding the provisional top-k after every round.
//   - Offline initialization (this package's Setup): trains the
//     relevance score transformation functions on a sample corpus
//     (internal/rstf), builds the r-confidential merge plan
//     (internal/zerber) and provisions keys.
//
// Deployments scale out through a dynamic cluster layer
// (internal/cluster): a Router shards merged lists across servers by
// static hash and implements the same client.Transport, so clients are
// unchanged. Each routing slot can be backed by a replica set
// (internal/replica) — writes apply primary-first then fan to
// replicas, reads hedge to a replica after a latency-derived delay
// (seeded from the shard's observed p95) and fail over immediately on
// faults, so a dead primary no longer fails queries. Shards with long
// fault runs are demoted and routed around. Live shard migration
// (Router.Migrate, `zerber migrate`) ships the atomic snapshot while
// writes keep flowing, replays the WAL tail under a brief per-slot
// write barrier, differentially verifies rank-ordered content digests
// and flips an epoch-bumped routing table — all over a MAC-gated admin
// plane (/v3/admin) that is distinct from the user-facing transport.
// See DESIGN.md "Replication & migration".
//
// Reads can be made verifiable (internal/proof): every merged list
// carries a lazily built Merkle commitment — per-group RFC 6962 trees
// over the rank order, group headers binding element counts, a
// version-bound list root — and a client that opts in (WithProof,
// `zerber query -proof`) receives a range multiproof with every
// protocol round showing the returned window is exactly the committed
// ranked range for its groups: complete, ordered, correctly offset,
// with exhaustion proven rather than asserted. Tampering of any kind
// surfaces as ErrProofInvalid before decryption, roots are pinned
// across rounds (equivocation detection) and cross-checked between
// replicas, and `zerber status -roots` / `zerber verify` expose them
// for out-of-band audit. Plain queries never hash — commitments are
// built on first audit and maintained incrementally — and unproven
// responses stay byte-identical, so verification is free until asked
// for. See DESIGN.md "Verifiable search".
//
// Around those roles sits a production ops plane (internal/obs):
// structured log/slog logging with per-request IDs, a dependency-free
// metrics registry served at GET /metrics in Prometheus text format
// (query latency histograms, WAL/snapshot timings, cache hit rates,
// per-shard health), server-side admission control (per-user token
// buckets answering 429, load shedding answering 503, both with
// Retry-After), and a self-healing client transport that retries
// transient failures with capped jittered backoff — metric labels
// never carry term, list or user identity, so observability adds no
// leakage beyond the paper's threat model. See DESIGN.md "Ops plane".
//
// All of those claims are exercised together, not just in unit
// isolation, by a soak/chaos harness (internal/soak, `zerber-bench
// -soak`): it boots a real sharded, replicated cluster of zerberd
// processes, drives it with a deterministic million-user zipfian
// workload (internal/workload), SIGKILLs members mid-WAL, restarts
// them, and live-migrates shards — while continuously asserting that
// post-recovery answers are element-identical to a shadow oracle of
// acknowledged writes, that no (list, version) window is ever served
// with two different contents, that opted-in proofs never fail
// verification, and that the error rate stays within budget. Every
// runnable artifact — paper figures, extension experiments, the soak
// scenario — registers in the internal/bench registry that
// cmd/zerber-bench resolves -run names against. See DESIGN.md "Soak &
// chaos".
//
// The package root offers the high-level System façade used by the
// examples, the CLI tools and the experiment harness; the internal
// packages are the building blocks a downstream system would embed.
//
// # Quick start
//
//	c := corpus.Generate(corpus.ProfileStudIP(), 1)
//	sys, err := zerberr.Setup(c, zerberr.DefaultConfig())
//	...
//	cl, err := sys.NewClient("john", 0, 1) // groups 0 and 1
//	results, stats, err := cl.Search(ctx, []corpus.TermID{termID}, 10)
//
// or, consuming the evolving top-k as protocol rounds complete:
//
//	for snap, err := range cl.SearchStream(ctx, terms, 10) {
//		...render snap.Results; break to stop early...
//	}
//
// See examples/quickstart and examples/streaming for complete
// runnable programs and DESIGN.md for the paper-to-package map.
package zerberr
