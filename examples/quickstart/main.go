// Quickstart: build a small synthetic collection, initialize Zerber+R
// (RSTF training + r-confidential merge plan), index everything, and
// run a confidential top-k query — comparing the result and its cost
// against the ordinary (non-confidential) inverted index.
//
// It also prints the paper's Figure 6 linear-projection example to
// show what the RSTF generalizes.
package main

import (
	"context"
	"fmt"
	"log"

	zerberr "zerberr"
	"zerberr/internal/corpus"
)

func main() {
	log.SetFlags(0)

	// Figure 6 warm-up: a linear projection maps [0.5, 0.9] onto
	// [0, 1] — the RSTF is the data-driven generalization whose local
	// slope follows the score density.
	f := func(x float64) float64 { return 2.5*x - 1.25 }
	fmt.Println("Figure 6 linear projection f(x) = 2.5x - 1.25:")
	for _, x := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		fmt.Printf("  f(%.1f) = %.3f\n", x, f(x))
	}
	fmt.Println()

	// 1. A small Stud IP-like collection.
	profile := corpus.ProfileStudIP()
	profile.NumDocs = 500
	profile.VocabSize = 5000
	c := corpus.Generate(profile, 42)
	fmt.Printf("corpus: %d docs, %d distinct terms, %d groups\n",
		c.NumDocs(), c.DistinctTerms(), c.Groups)

	// 2. Offline initialization + index load.
	cfg := zerberr.DefaultConfig()
	cfg.Seed = 42
	sys, err := zerberr.Setup(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.IndexAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d sealed posting elements in %d merged lists (r=%.0f)\n\n",
		sys.Server.NumElements(), sys.Server.NumLists(), sys.Plan.R())

	// 3. A confidential top-10 query.
	cl, err := sys.NewClient("john")
	if err != nil {
		log.Fatal(err)
	}
	term := c.TermsByDF()[25]
	results, stats, err := cl.Search(context.Background(), []corpus.TermID{term}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-10 for term %q (df=%d):\n", c.Term(term), c.DF(term))
	for i, r := range results {
		fmt.Printf("  %2d. doc %-6d score %.5f\n", i+1, r.Doc, r.Score)
	}
	fmt.Printf("cost: %d request(s), %d posting elements, %d bytes\n",
		stats.Requests, stats.Elements, stats.Bytes)

	// 4. Sanity: identical ranking to the ordinary inverted index.
	baseline := sys.Baseline.TopK(term, 10)
	same := len(results) == len(baseline)
	for i := range results {
		if same && results[i].Score != baseline[i].Score {
			same = false
		}
	}
	fmt.Printf("matches the ordinary inverted index exactly: %v\n", same)
	fmt.Printf("(an ordinary index would return exactly k=10 elements; Zerber+R returned %d while hiding the term statistics)\n", stats.Elements)
}
