// Enterprise: the paper's Section 2 scenario. PCC (Production Control
// Company) shares access-controlled project documents through a
// largely untrusted index server. John leads several projects and
// searches across all of them at once; per-project staff only ever see
// their own project's documents — enforced by group tokens and group
// keys, while the server ranks everything by TRS without learning any
// content.
package main

import (
	"context"
	"fmt"
	"log"

	zerberr "zerberr"
	"zerberr/internal/corpus"
)

func main() {
	log.SetFlags(0)

	// Each topic is one customer project of PCC.
	profile := corpus.ProfileODP()
	profile.NumDocs = 600
	profile.VocabSize = 6000
	profile.Topics = 4
	c := corpus.Generate(profile, 7)
	projects := []string{"steelworks", "refinery", "bottling", "assembly"}

	cfg := zerberr.DefaultConfig()
	cfg.Seed = 7
	sys, err := zerberr.Setup(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.IndexAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCC index: %d documents across %d projects, %d sealed elements\n\n",
		c.NumDocs(), len(projects), sys.Server.NumElements())

	// John leads projects 0 and 2; Dana works only on project 1.
	john, err := sys.NewClient("john", 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	dana, err := sys.NewClient("dana", 1)
	if err != nil {
		log.Fatal(err)
	}

	term := c.TermsByDF()[40]
	fmt.Printf("query term: %q (df=%d across all projects)\n\n", c.Term(term), c.DF(term))

	jr, jstats, err := john.Search(context.Background(), []corpus.TermID{term}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("john (projects %s, %s) gets %d results in %d request(s):\n",
		projects[0], projects[2], len(jr), jstats.Requests)
	for i, r := range jr {
		fmt.Printf("  %2d. doc %-6d project %-10s score %.5f\n",
			i+1, r.Doc, projects[c.Doc(r.Doc).Group], r.Score)
	}

	dr, _, err := dana.Search(context.Background(), []corpus.TermID{term}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndana (project %s only) gets %d results:\n", projects[1], len(dr))
	for i, r := range dr {
		fmt.Printf("  %2d. doc %-6d project %-10s score %.5f\n",
			i+1, r.Doc, projects[c.Doc(r.Doc).Group], r.Score)
	}

	// The server's view of the same posting list: ciphertext + TRS.
	list := sys.Plan
	l, _ := list.ListOf(term)
	snap, err := sys.Server.Snapshot(l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhat the untrusted server stores for that merged list (first 3 of %d):\n", len(snap))
	for _, el := range snap[:3] {
		fmt.Printf("  group=%d TRS=%.4f sealed=%x...\n", el.Group, el.TRS, el.Sealed[:8])
	}
	fmt.Println("no term, document or score is visible server-side.")
}
