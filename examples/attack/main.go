// Attack: what a compromised index server learns. Two identical
// collections are indexed twice — once with raw relevance scores
// visible to the server (the insecure Sections 3.3-3.4 baseline) and
// once with Zerber+R's TRS. An adversary with background knowledge of
// per-term score statistics then tries to tell the merged terms apart,
// and the per-term value distributions are printed so the
// uniformization is visible.
package main

import (
	"fmt"
	"log"
	"strings"

	zerberr "zerberr"
	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/stats"
	"zerberr/internal/zerber"
)

func buildSystem(c *corpus.Corpus, identity bool) *zerberr.System {
	cfg := zerberr.DefaultConfig()
	cfg.Seed = 3
	cfg.R = 4 // strong setting: mid-frequency terms merge
	cfg.Codec = crypt.Compact64Codec{}
	cfg.SkipBaseline = true
	cfg.IdentityStore = identity
	sys, err := zerberr.Setup(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.IndexAll(); err != nil {
		log.Fatal(err)
	}
	return sys
}

// sparkline renders a tiny histogram of values within [lo, hi].
func sparkline(vals []float64, lo, hi float64) string {
	levels := []rune(" .:-=+*#%@")
	h := stats.NewHistogram(lo, hi, 32)
	for _, v := range vals {
		h.Add(v)
	}
	maxBin := 0
	for _, c := range h.Bins {
		if c > maxBin {
			maxBin = c
		}
	}
	var b strings.Builder
	for _, c := range h.Bins {
		idx := 0
		if maxBin > 0 {
			idx = c * (len(levels) - 1) / maxBin
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

func main() {
	log.SetFlags(0)
	p := corpus.ProfileStudIP()
	p.NumDocs = 600
	p.VocabSize = 6000
	c := corpus.Generate(p, 3)

	plain := buildSystem(c, true)
	protected := buildSystem(c, false)

	// Find a merged list with two terms.
	var target zerber.ListID
	var terms []corpus.TermID
	for _, l := range plain.Server.Lists() {
		ts := plain.Plan.Terms(l)
		if len(ts) == 2 && plain.Server.ListLen(l) > 100 {
			target, terms = l, ts
			break
		}
	}
	if terms == nil {
		log.Fatal("no two-term merged list found")
	}
	fmt.Printf("merged posting list %d holds terms %q (df=%d) and %q (df=%d)\n\n",
		target, c.Term(terms[0]), c.DF(terms[0]), c.Term(terms[1]), c.DF(terms[1]))

	// What the server sees, per true term, under both systems.
	codec := crypt.Compact64Codec{}
	for _, sys := range []*zerberr.System{plain, protected} {
		label := "Zerber+R TRS (uniformized)"
		lo, hi := 0.0, 1.0
		if sys.Store.Identity() {
			label = "plain relevance scores"
			hi = 0.05
		}
		l, _ := sys.Plan.ListOf(terms[0])
		snap, err := sys.Server.Snapshot(l)
		if err != nil {
			log.Fatal(err)
		}
		perTerm := map[corpus.TermID][]float64{}
		for _, el := range snap {
			plainEl, err := codec.Open(el.Sealed, sys.Keys[el.Group])
			if err != nil {
				log.Fatal(err)
			}
			perTerm[plainEl.Term] = append(perTerm[plainEl.Term], el.TRS)
		}
		fmt.Printf("server-visible ranking values — %s:\n", label)
		for _, t := range terms {
			fmt.Printf("  %-12q |%s| (%d elements)\n", c.Term(t), sparkline(perTerm[t], lo, hi), len(perTerm[t]))
		}
		fmt.Println()
	}

	fmt.Println("with plain scores the two terms occupy different value ranges an")
	fmt.Println("adversary can match against background statistics; under the TRS both")
	fmt.Println("rows are spread over the whole range. run `zerber-bench -run attacks`")
	fmt.Println("for the full quantified attack suite, including the residual leaks the")
	fmt.Println("reproduction uncovered (training-document re-identification and the")
	fmt.Println("shared-score-atom fingerprint).")
}
