// Streaming: the progressive protocol of Section 5.2 made visible.
// A multi-term query runs over SearchStream with a tiny initial
// response size, so the top-k takes several batched rounds to settle
// — each snapshot prints the provisional ranking as it firms up, the
// way an interactive search UI would render results while follow-up
// requests are still in flight.
//
// The same stream also demonstrates the two v3 control points: the
// context (a deadline or cancel aborts the query between rounds, even
// mid-request over HTTP) and early exit (breaking out of the range
// stops issuing follow-up round-trips — shown here by a second query
// that settles for the first provisional answer).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	zerberr "zerberr"
	"zerberr/internal/client"
	"zerberr/internal/corpus"
)

func main() {
	log.SetFlags(0)

	profile := corpus.ProfileStudIP()
	profile.NumDocs = 600
	profile.VocabSize = 6000
	c := corpus.Generate(profile, 21)

	cfg := zerberr.DefaultConfig()
	cfg.Seed = 21
	cfg.SkipBaseline = true
	sys, err := zerberr.Setup(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.IndexAll(); err != nil {
		log.Fatal(err)
	}
	cl, err := sys.NewClient("john")
	if err != nil {
		log.Fatal(err)
	}

	// Two mid-frequency terms force real follow-up rounds; b=1 makes
	// the doubling schedule (1, 2, 4, …) take its time.
	terms := []corpus.TermID{c.TermsByDF()[30], c.TermsByDF()[45]}
	fmt.Printf("streaming top-5 for %q + %q:\n\n", c.Term(terms[0]), c.Term(terms[1]))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	round := 0
	for snap, err := range cl.SearchStream(ctx, terms, 5, client.WithInitialResponse(1)) {
		if err != nil {
			log.Fatal(err)
		}
		round++
		state := "provisional"
		if snap.Final {
			state = "final"
		}
		fmt.Printf("round %d (%s, %d elements, %d requests so far):\n",
			round, state, snap.Stats.Elements, snap.Stats.Requests)
		for i, r := range snap.Results {
			fmt.Printf("  %d. doc %-6d score %.5f\n", i+1, r.Doc, r.Score)
		}
	}

	// A hurried caller takes the first snapshot and walks away; the
	// break stops the protocol — no further round-trips are issued.
	first := 0
	for snap, err := range cl.SearchStream(ctx, terms, 5, client.WithInitialResponse(1)) {
		if err != nil {
			log.Fatal(err)
		}
		first = len(snap.Results)
		break
	}
	fmt.Printf("\nimpatient caller stopped after round 1 with %d provisional results\n", first)
}
