// Mobile: the bandwidth-constrained client of Sections 2 and 6.6.
// John queries over a slow link, so the initial response size b and
// the progressive doubling protocol decide how usable the system is.
// This example sweeps b for a top-10 query mix and prints the
// bandwidth/request trade-off the paper's Figures 11-12 chart, plus
// the Section 6.6 byte accounting over a 56 kbit/s modem.
package main

import (
	"context"
	"fmt"
	"log"

	zerberr "zerberr"
	"zerberr/internal/client"
	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/workload"
)

func main() {
	log.SetFlags(0)

	profile := corpus.ProfileODP()
	profile.NumDocs = 800
	profile.VocabSize = 8000
	c := corpus.Generate(profile, 11)

	cfg := zerberr.DefaultConfig()
	cfg.Seed = 11
	cfg.Codec = crypt.Compact64Codec{} // the paper's 64-bit elements
	sys, err := zerberr.Setup(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.IndexAll(); err != nil {
		log.Fatal(err)
	}
	cl, err := sys.NewClient("john")
	if err != nil {
		log.Fatal(err)
	}

	wcfg := workload.DefaultConfig()
	wcfg.NumQueries = 300
	logq := workload.Generate(c, wcfg, 11)
	stream := logq.SingleTermStream()
	if len(stream) > 400 {
		stream = stream[:400]
	}

	const k = 10
	fmt.Printf("replaying %d single-term top-%d queries at several initial response sizes b:\n\n", len(stream), k)
	fmt.Printf("%4s  %12s  %14s  %12s\n", "b", "avg requests", "avg elements", "avg bytes")
	for _, b := range []int{1, 5, 10, 20, 50} {
		var reqs, elems, bytes int
		for _, term := range stream {
			_, st, err := cl.Search(context.Background(), []corpus.TermID{term}, k,
				client.WithSerial(), client.WithInitialResponse(b))
			if err != nil {
				log.Fatal(err)
			}
			reqs += st.Requests
			elems += st.Elements
			bytes += st.Bytes
		}
		n := float64(len(stream))
		fmt.Printf("%4d  %12.2f  %14.1f  %12.1f\n", b,
			float64(reqs)/n, float64(elems)/n, float64(bytes)/n)
	}

	// Section 6.6 accounting at the paper's recommended b = k.
	var totalBytes int
	for _, term := range stream {
		_, st, err := cl.Search(context.Background(), []corpus.TermID{term}, k,
			client.WithSerial(), client.WithInitialResponse(10))
		if err != nil {
			log.Fatal(err)
		}
		totalBytes += st.Bytes
	}
	perTermKB := float64(totalBytes) / float64(len(stream)) / 1024
	const termsPerQuery = 2.4
	snippetsKB := 10 * 250.0 / 1024
	top10KB := perTermKB*termsPerQuery + snippetsKB
	const modemKBps = 56.0 / 8 // 56 kbit/s GPRS-era link
	fmt.Printf("\nSection 6.6 accounting (b=k=10, 64-bit elements):\n")
	fmt.Printf("  response per query term: %.2f KB\n", perTermKB)
	fmt.Printf("  full top-10 response (%.1f terms + snippets): %.2f KB\n", termsPerQuery, top10KB)
	fmt.Printf("  transfer time on a 56 kbit/s modem: %.2f s (Google-sized 15 KB page: %.2f s)\n",
		top10KB/modemKBps, 15/modemKBps)
}
