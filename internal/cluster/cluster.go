// Package cluster shards merged posting lists across several index
// servers — the paper's deployment model ("Zerber relies on a
// centralized set of largely untrusted index servers", Section 3.1).
// Each merged list lives on exactly one shard, chosen by a static hash
// of its list ID, so no server ever holds the whole index and the
// client-side protocol is unchanged: the Router implements
// client.Transport and routes every operation to the owning shard.
//
// Fan-out is context-aware (API v3): the caller's context flows to
// every shard, and the first shard failure cancels the context the
// remaining shards run under, so a slow or stuck shard is abandoned
// instead of holding the whole batch hostage.
//
// All shards must share the same token-signing secret and user
// registry (they are operated by the same enterprise infrastructure;
// each is still individually untrusted with respect to content).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zerberr/internal/cache"
	"zerberr/internal/client"
	"zerberr/internal/crypt"
	"zerberr/internal/obs"
	"zerberr/internal/replica"
	"zerberr/internal/server"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

// Router fans a client's operations out to the shard owning each
// merged posting list. It implements client.Transport.
//
// With SetCache, the router keeps the windows shards returned and
// revalidates them per shard with conditional sub-queries
// (ListQuery.IfVersion): each list's response carries the owning
// shard's version for it, and a follow-up batch asks "serve this
// window only if the version moved". A shard whose lists are unchanged
// answers with tiny Unchanged markers and the router reuses the
// retained windows — same elements, a fraction of the wire bytes and
// none of the shard-side merge work.
type Router struct {
	// tab is the live routing table. The slot count is fixed for the
	// router's lifetime (list→slot assignment never moves); which
	// transport serves a slot can change under Migrate, which swaps in
	// a whole new table with a bumped epoch. Reads load the table
	// lock-free; writes hold their slot's writeMu shared so a migration
	// cut-over (exclusive) can drain them before flipping the route.
	tab atomic.Pointer[routingTable]
	// writeMu[i] is slot i's write barrier: every mutation holds it
	// shared for the duration of the shard call and loads the table
	// only after acquiring it, so once Migrate holds it exclusively, no
	// write can land on the old transport or miss the new one.
	writeMu []sync.RWMutex
	// results is the optional window cache (nil = off). Entries are
	// keyed version-agnostically (Key.Version = 0); the retained
	// window's own Version is what conditional revalidation sends.
	results atomic.Pointer[cache.Cache]
	// health tracks per-shard liveness (health.go); index-parallel to
	// the table's slots.
	health []shardHealth
	// latency holds per-shard latency histograms of answered
	// operations; Quantile(0.95) seeds replica hedge delays.
	latency []*obs.Histogram
	// migration outcome counters (Migrate; exposed via SetObs).
	migrationsOK     atomic.Uint64
	migrationsFailed atomic.Uint64
}

// routingTable is one immutable shard assignment. Migrate replaces the
// whole table atomically; readers of one batch therefore observe one
// consistent assignment.
type routingTable struct {
	epoch  uint64
	shards []client.Transport
}

// NewRouter builds a router over the given shard transports (local
// servers, HTTP endpoints, replica sets, or a mix). Transports must be
// distinct — wiring one server into two slots would fake capacity and
// corrupt per-shard health (client.TransportIdentity decides).
// Replica-set shards get their hedge delay seeded from the router's
// observed per-shard latency unless one was pinned explicitly.
func NewRouter(shards ...client.Transport) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: need at least one shard")
	}
	seen := make(map[any]int, len(shards))
	for i, t := range shards {
		if t == nil {
			return nil, fmt.Errorf("cluster: nil transport for shard %d", i)
		}
		id := client.TransportIdentity(t)
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("cluster: shards %d and %d are the same transport", prev, i)
		}
		seen[id] = i
	}
	r := &Router{
		writeMu: make([]sync.RWMutex, len(shards)),
		health:  make([]shardHealth, len(shards)),
		latency: make([]*obs.Histogram, len(shards)),
	}
	for i := range r.latency {
		r.latency[i] = obs.NewHistogram(nil)
	}
	for i, t := range shards {
		if set, ok := t.(*replica.Set); ok {
			set.SeedHedgeDelay(r.hedgeDelaySeed(i))
		}
	}
	r.tab.Store(&routingTable{epoch: 1, shards: append([]client.Transport(nil), shards...)})
	return r, nil
}

// table is the current routing table.
func (r *Router) table() *routingTable { return r.tab.Load() }

// transport is the transport currently serving a slot.
func (r *Router) transport(shard int) client.Transport { return r.table().shards[shard] }

// Epoch identifies the current routing table; every Migrate bumps it.
func (r *Router) Epoch() uint64 { return r.table().epoch }

// NumShards returns the shard-slot count (fixed for the router's
// lifetime).
func (r *Router) NumShards() int { return len(r.health) }

// SetCache installs (or, with nil, removes) the router-side window
// cache. Reuse is always revalidated against the owning shard's
// current list version before a retained window is served, so results
// stay element-identical to an uncached fan-out. Safe to call while
// the router is serving traffic.
func (r *Router) SetCache(c *cache.Cache) { r.results.Store(c) }

// CacheStats reports the router window-cache counters; ok is false
// when no cache is installed. Hits count sub-queries answered by a
// revalidated retained window.
func (r *Router) CacheStats() (cache.Stats, bool) {
	c := r.results.Load()
	if c == nil {
		return cache.Stats{}, false
	}
	return c.Stats(), true
}

// groupsOf canonicalizes the groups the presented tokens claim — the
// same set the shard's validated allowed-set will hold, so router and
// server cache keys agree. (If a token is invalid the shard rejects
// the batch before any window is served, cached or not.)
func groupsOf(toks []crypt.Token) string {
	set := make(map[int]bool, len(toks))
	for _, tok := range toks {
		set[tok.Group] = true
	}
	return cache.GroupsKey(set)
}

// ShardFor returns the index of the shard owning a merged list.
// Assignment is static so inserting and querying clients agree without
// coordination.
func (r *Router) ShardFor(list zerber.ListID) int {
	return int(uint32(list) % uint32(len(r.health)))
}

// Login implements client.Transport. Shards share their secret and
// registry, so any shard's tokens are valid cluster-wide; the first
// shard answers.
func (r *Router) Login(ctx context.Context, user string) ([]crypt.Token, error) {
	done := r.observeShard(0)
	toks, err := r.transport(0).Login(ctx, user)
	done(err)
	return toks, err
}

// Insert implements client.Transport.
func (r *Router) Insert(ctx context.Context, tok crypt.Token, list zerber.ListID, el server.StoredElement) error {
	shard := r.ShardFor(list)
	r.writeMu[shard].RLock()
	defer r.writeMu[shard].RUnlock()
	done := r.observeShard(shard)
	err := r.transport(shard).Insert(ctx, tok, list, el)
	done(err)
	return err
}

// Query implements client.Transport, passing through the owning
// shard's measured wire bytes. Reads take no write barrier: during a
// migration cut-over they are served by whichever table they load —
// both sides hold identical content at that point.
func (r *Router) Query(ctx context.Context, toks []crypt.Token, list zerber.ListID, offset, count int) (server.QueryResponse, int, error) {
	shard := r.ShardFor(list)
	done := r.observeShard(shard)
	resp, wire, err := r.transport(shard).Query(ctx, toks, list, offset, count)
	done(err)
	return resp, wire, err
}

// Remove implements client.Transport.
func (r *Router) Remove(ctx context.Context, tok crypt.Token, list zerber.ListID, sealed []byte) error {
	shard := r.ShardFor(list)
	r.writeMu[shard].RLock()
	defer r.writeMu[shard].RUnlock()
	done := r.observeShard(shard)
	err := r.transport(shard).Remove(ctx, tok, list, sealed)
	done(err)
	return err
}

// shardFanOut groups batch operation indices by owning shard and runs
// fn concurrently per shard with the shard-local index slice. Every
// shard runs under a context derived from the caller's that is
// canceled on the first shard FAULT — a transport failure, internal
// error or overload rejection, i.e. evidence the batch cannot succeed
// anyway — so in-flight requests to the remaining shards are abandoned
// rather than awaited. A clean per-operation rejection (a BatchError
// carrying forbidden, unknown-list, not-found, ...) does NOT cancel
// the siblings: the shard is healthy and the other shards' sub-batches
// are independent work the caller observed as applied, so interrupting
// them mid-apply would only convert one precise partial-failure report
// into several vague ones. A shard-local *server.BatchError is
// remapped onto the caller's original batch index, so partial-failure
// reporting survives the scatter/gather.
//
// Error precedence: the caller's own cancellation surfaces as the
// plain context error; otherwise the lowest-numbered shard that
// failed for a real reason wins (shards that merely observed the
// fan-out cancellation are skipped), decorated with its shard index.
func (r *Router) shardFanOut(ctx context.Context, n int, listOf func(i int) zerber.ListID, fn func(ctx context.Context, shard int, idxs []int) error) error {
	byShard := make(map[int][]int)
	for i := 0; i < n; i++ {
		s := r.ShardFor(listOf(i))
		byShard[s] = append(byShard[s], i)
	}
	shards := make([]int, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make(map[int]error, len(shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			done := r.observeShard(s)
			err := fn(fanCtx, s, idxs)
			done(err)
			if err != nil {
				abort := fanOutAborts(err)
				var be *server.BatchError
				// The shard-local index is remote input (an HTTP shard
				// controls it); remap only if it addresses this
				// sub-batch, never trusting it to index idxs.
				if errors.As(err, &be) && be.Index >= 0 && be.Index < len(idxs) {
					err = &server.BatchError{Index: idxs[be.Index], Err: fmt.Errorf("cluster: shard %d: %w", s, be.Err)}
				} else {
					err = fmt.Errorf("cluster: shard %d: %w", s, err)
				}
				mu.Lock()
				errs[s] = err
				mu.Unlock()
				if abort {
					cancel() // abandon the remaining shards
				}
			}
		}(s, byShard[s])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, s := range shards {
		if err := errs[s]; err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	for _, s := range shards {
		if err := errs[s]; err != nil {
			return err
		}
	}
	return nil
}

// QueryBatch implements client.Transport: sub-queries are grouped by
// owning shard, the shards are queried concurrently, and the
// responses are reassembled in the caller's order. WireBytes sums the
// shards' measured response sizes. The first shard failure (or the
// caller's cancellation) cancels the other shards' requests.
//
// With a cache installed, each sub-query the router holds a retained
// window for goes out conditional on that window's shard version; an
// Unchanged answer substitutes the retained window, element-identical
// to what the shard would have re-served. Sub-queries whose callers
// set IfVersion themselves are passed through untouched — the caller
// is running its own revalidation and gets the raw Unchanged marker.
func (r *Router) QueryBatch(ctx context.Context, toks []crypt.Token, queries []server.ListQuery) (client.BatchQueryResult, error) {
	if len(queries) == 0 {
		return client.BatchQueryResult{}, fmt.Errorf("%w: empty query batch", server.ErrBadRequest)
	}
	c := r.results.Load()
	var groups string
	// retained[i] is the cached window sub-query i was made conditional
	// on; nil entries (cache off, miss, or caller-set IfVersion) leave
	// the sub-query as given.
	retained := make([]*cachedWindow, len(queries))
	if c != nil {
		groups = groupsOf(toks)
	}
	out := make([]server.QueryResponse, len(queries))
	var mu sync.Mutex
	wireBytes := 0
	err := r.shardFanOut(ctx, len(queries), func(i int) zerber.ListID { return queries[i].List }, func(ctx context.Context, shard int, idxs []int) error {
		sub := make([]server.ListQuery, len(idxs))
		for j, gi := range idxs {
			sub[j] = queries[gi]
			if c != nil && sub[j].IfVersion == nil {
				if res, ok := c.Get(r.windowKey(groups, queries[gi])); ok && res.Version != 0 {
					// A proved sub-query can only be made conditional on a
					// window whose proof was retained with it: an Unchanged
					// answer must substitute the proof too, and a proof-less
					// entry has nothing to substitute.
					if !sub[j].Proof || res.Proof != nil {
						w := &cachedWindow{res: res}
						retained[gi] = w
						sub[j].IfVersion = &w.res.Version
					}
				}
			}
		}
		res, err := r.transport(shard).QueryBatch(ctx, toks, sub)
		if err != nil {
			return err
		}
		if len(res.Responses) != len(sub) {
			return fmt.Errorf("%d responses for %d queries", len(res.Responses), len(sub))
		}
		for j, gi := range idxs {
			resp := res.Responses[j]
			switch w := retained[gi]; {
			case resp.Unchanged && w != nil:
				// The shard vouched the retained window is still the
				// current content for this version — which makes the
				// retained proof (same version, same commitment) exact
				// too, so a proved sub-query gets it back.
				out[gi] = server.QueryResponse{Elements: w.res.Elements, Exhausted: w.res.Exhausted, Version: resp.Version}
				if queries[gi].Proof {
					out[gi].Proof = w.res.Proof
				}
			default:
				out[gi] = resp
				if c != nil && !resp.Unchanged && resp.Version != 0 && queries[gi].IfVersion == nil {
					c.Put(r.windowKey(groups, queries[gi]), store.QueryResult{
						Elements:  resp.Elements,
						Exhausted: resp.Exhausted,
						Version:   resp.Version,
						Proof:     resp.Proof,
					})
				}
			}
		}
		mu.Lock()
		wireBytes += res.WireBytes
		mu.Unlock()
		return nil
	})
	if err != nil {
		return client.BatchQueryResult{}, err
	}
	return client.BatchQueryResult{Responses: out, WireBytes: wireBytes}, nil
}

// cachedWindow pins one retained window for the duration of a batch,
// so the IfVersion pointer sent to the shard and the window
// substituted on Unchanged cannot come from two different cache
// generations.
type cachedWindow struct {
	res store.QueryResult
}

// windowKey is the router's version-agnostic cache key for one
// sub-query (the retained window's own Version carries the shard
// version).
func (r *Router) windowKey(groups string, q server.ListQuery) cache.Key {
	return cache.Key{List: q.List, Groups: groups, Offset: q.Offset, Count: q.Count}
}

// InsertBatch implements client.Transport: operations are grouped by
// owning shard and applied concurrently. Each shard validates its
// sub-batch atomically, but atomicity does not span shards: a failing
// shard leaves other shards' sub-batches applied, and because the
// first failure cancels the sibling shards' contexts, a sibling
// interrupted mid-apply can itself be left partially applied. The
// returned *server.BatchError carries the index in the caller's batch
// and the failing shard.
func (r *Router) InsertBatch(ctx context.Context, tok crypt.Token, ops []server.InsertOp) error {
	if len(ops) == 0 {
		return fmt.Errorf("%w: empty insert batch", server.ErrBadRequest)
	}
	return r.shardFanOut(ctx, len(ops), func(i int) zerber.ListID { return ops[i].List }, func(ctx context.Context, shard int, idxs []int) error {
		sub := make([]server.InsertOp, len(idxs))
		for j, gi := range idxs {
			sub[j] = ops[gi]
		}
		r.writeMu[shard].RLock()
		defer r.writeMu[shard].RUnlock()
		return r.transport(shard).InsertBatch(ctx, tok, sub)
	})
}

// RemoveBatch implements client.Transport, with the same per-shard
// grouping and atomicity caveat as InsertBatch.
func (r *Router) RemoveBatch(ctx context.Context, tok crypt.Token, ops []server.RemoveOp) error {
	if len(ops) == 0 {
		return fmt.Errorf("%w: empty remove batch", server.ErrBadRequest)
	}
	return r.shardFanOut(ctx, len(ops), func(i int) zerber.ListID { return ops[i].List }, func(ctx context.Context, shard int, idxs []int) error {
		sub := make([]server.RemoveOp, len(idxs))
		for j, gi := range idxs {
			sub[j] = ops[gi]
		}
		r.writeMu[shard].RLock()
		defer r.writeMu[shard].RUnlock()
		return r.transport(shard).RemoveBatch(ctx, tok, sub)
	})
}

// Local is a convenience in-process cluster: n servers sharing one
// secret and clock, plus the router over them.
type Local struct {
	Servers []*server.Server
	Router  *Router
}

// NewLocal builds an n-shard in-process cluster.
func NewLocal(n int, secret []byte, tokenTTL time.Duration) (*Local, error) {
	if n <= 0 {
		return nil, errors.New("cluster: need at least one shard")
	}
	l := &Local{}
	transports := make([]client.Transport, n)
	for i := 0; i < n; i++ {
		srv := server.New(secret, tokenTTL)
		l.Servers = append(l.Servers, srv)
		transports[i] = client.Local{S: srv}
	}
	router, err := NewRouter(transports...)
	if err != nil {
		return nil, err
	}
	l.Router = router
	return l, nil
}

// RegisterUser records the user on every shard (the shared enterprise
// directory).
func (l *Local) RegisterUser(user string, groups ...int) {
	for _, srv := range l.Servers {
		srv.RegisterUser(user, groups...)
	}
}

// NumElements sums stored elements across shards.
func (l *Local) NumElements() int {
	n := 0
	for _, srv := range l.Servers {
		n += srv.NumElements()
	}
	return n
}

var _ client.Transport = (*Router)(nil)
