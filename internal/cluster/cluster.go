// Package cluster shards merged posting lists across several index
// servers — the paper's deployment model ("Zerber relies on a
// centralized set of largely untrusted index servers", Section 3.1).
// Each merged list lives on exactly one shard, chosen by a static hash
// of its list ID, so no server ever holds the whole index and the
// client-side protocol is unchanged: the Router implements
// client.Transport and routes every operation to the owning shard.
//
// All shards must share the same token-signing secret and user
// registry (they are operated by the same enterprise infrastructure;
// each is still individually untrusted with respect to content).
package cluster

import (
	"errors"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/crypt"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// Router fans a client's operations out to the shard owning each
// merged posting list. It implements client.Transport.
type Router struct {
	shards []client.Transport
}

// NewRouter builds a router over the given shard transports (local
// servers, HTTP endpoints, or a mix).
func NewRouter(shards ...client.Transport) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: need at least one shard")
	}
	return &Router{shards: append([]client.Transport(nil), shards...)}, nil
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// ShardFor returns the index of the shard owning a merged list.
// Assignment is static so inserting and querying clients agree without
// coordination.
func (r *Router) ShardFor(list zerber.ListID) int {
	return int(uint32(list) % uint32(len(r.shards)))
}

// Login implements client.Transport. Shards share their secret and
// registry, so any shard's tokens are valid cluster-wide; the first
// shard answers.
func (r *Router) Login(user string) ([]crypt.Token, error) {
	return r.shards[0].Login(user)
}

// Insert implements client.Transport.
func (r *Router) Insert(tok crypt.Token, list zerber.ListID, el server.StoredElement) error {
	return r.shards[r.ShardFor(list)].Insert(tok, list, el)
}

// Query implements client.Transport.
func (r *Router) Query(toks []crypt.Token, list zerber.ListID, offset, count int) (server.QueryResponse, error) {
	return r.shards[r.ShardFor(list)].Query(toks, list, offset, count)
}

// Remove implements client.Transport.
func (r *Router) Remove(tok crypt.Token, list zerber.ListID, sealed []byte) error {
	return r.shards[r.ShardFor(list)].Remove(tok, list, sealed)
}

// Local is a convenience in-process cluster: n servers sharing one
// secret and clock, plus the router over them.
type Local struct {
	Servers []*server.Server
	Router  *Router
}

// NewLocal builds an n-shard in-process cluster.
func NewLocal(n int, secret []byte, tokenTTL time.Duration) (*Local, error) {
	if n <= 0 {
		return nil, errors.New("cluster: need at least one shard")
	}
	l := &Local{}
	transports := make([]client.Transport, n)
	for i := 0; i < n; i++ {
		srv := server.New(secret, tokenTTL)
		l.Servers = append(l.Servers, srv)
		transports[i] = client.Local{S: srv}
	}
	router, err := NewRouter(transports...)
	if err != nil {
		return nil, err
	}
	l.Router = router
	return l, nil
}

// RegisterUser records the user on every shard (the shared enterprise
// directory).
func (l *Local) RegisterUser(user string, groups ...int) {
	for _, srv := range l.Servers {
		srv.RegisterUser(user, groups...)
	}
}

// NumElements sums stored elements across shards.
func (l *Local) NumElements() int {
	n := 0
	for _, srv := range l.Servers {
		n += srv.NumElements()
	}
	return n
}

var _ client.Transport = (*Router)(nil)
