package cluster

// Per-shard health tracking: every operation the router sends to a
// shard is observed — in-flight count, totals, consecutive faults and
// the last fault message — so an operator (or `zerber status`) can see
// which shard of a cluster is degrading while the self-healing client
// transport rides out the blip. The labels carry only the shard index;
// which lists live on a shard (and therefore which terms) is never
// exposed.

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"zerberr/internal/obs"
	"zerberr/internal/server"
)

// Metric names the router registers on the obs registry.
const (
	MetricShardInFlight    = "zerber_shard_inflight_requests"
	MetricShardOpsTotal    = "zerber_shard_ops_total"
	MetricShardErrorsTotal = "zerber_shard_errors_total"
	MetricShardConsecFails = "zerber_shard_consecutive_failures"
)

// shardHealth is one shard's live counters. All hot-path fields are
// atomic; only the last-fault record takes the mutex, and only on
// faults.
type shardHealth struct {
	inFlight    atomic.Int64
	ops         atomic.Uint64
	errs        atomic.Uint64
	consecFails atomic.Int64

	mu        sync.Mutex
	lastErr   string
	lastErrAt time.Time
}

// ShardHealth is one shard's health snapshot (Router.Health).
type ShardHealth struct {
	Shard int `json:"shard"`
	// InFlight is the number of operations currently outstanding
	// against the shard.
	InFlight int64 `json:"in_flight"`
	// Ops counts operations sent (batches count once).
	Ops uint64 `json:"ops"`
	// Errors counts shard faults: transport failures, internal errors
	// and overload rejections. Clean application rejections (auth,
	// forbidden, not-found, ...) prove the shard is alive and are not
	// faults.
	Errors uint64 `json:"errors"`
	// ConsecutiveFailures is the current run of faults; any answered
	// operation resets it. A growing run is the "this shard is down"
	// signal.
	ConsecutiveFailures int64 `json:"consecutive_failures"`
	// LastError is the most recent fault message, with when it
	// happened.
	LastError   string    `json:"last_error,omitempty"`
	LastErrorAt time.Time `json:"last_error_at,omitzero"`
}

// observeShard begins one shard operation; call the returned func with
// the operation's outcome.
func (r *Router) observeShard(shard int) func(error) {
	h := &r.health[shard]
	h.inFlight.Add(1)
	return func(err error) {
		h.inFlight.Add(-1)
		h.ops.Add(1)
		switch {
		case shardFault(err):
			h.errs.Add(1)
			h.consecFails.Add(1)
			h.mu.Lock()
			h.lastErr = err.Error()
			h.lastErrAt = time.Now()
			h.mu.Unlock()
		case err == nil || !isContextErr(err):
			// The shard answered (success or a clean application
			// rejection): it is alive.
			h.consecFails.Store(0)
		}
		// Context errors are neutral: the caller (or a sibling shard's
		// failure) abandoned the operation, which says nothing about
		// this shard's health.
	}
}

// shardFault reports whether an operation outcome indicts the shard:
// transport failures and internal errors do, and so do overload
// rejections; application rejections and abandoned (context-canceled)
// operations do not.
func shardFault(err error) bool {
	if err == nil || isContextErr(err) {
		return false
	}
	switch server.ErrorCode(err) {
	case server.CodeInternal, server.CodeOverloaded:
		return true
	}
	return false
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Health snapshots every shard's counters, in shard order.
func (r *Router) Health() []ShardHealth {
	out := make([]ShardHealth, len(r.health))
	for i := range r.health {
		h := &r.health[i]
		h.mu.Lock()
		lastErr, lastAt := h.lastErr, h.lastErrAt
		h.mu.Unlock()
		out[i] = ShardHealth{
			Shard:               i,
			InFlight:            h.inFlight.Load(),
			Ops:                 h.ops.Load(),
			Errors:              h.errs.Load(),
			ConsecutiveFailures: h.consecFails.Load(),
			LastError:           lastErr,
			LastErrorAt:         lastAt,
		}
	}
	return out
}

// SetObs registers the router's per-shard health families on a metrics
// registry, sampled at scrape time from the live counters. Labels
// carry only the shard index.
func (r *Router) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for i := range r.health {
		h := &r.health[i]
		label := obs.Label{Name: "shard", Value: strconv.Itoa(i)}
		reg.GaugeFunc(MetricShardInFlight, "operations currently outstanding against the shard",
			func() float64 { return float64(h.inFlight.Load()) }, label)
		reg.CounterFunc(MetricShardOpsTotal, "operations sent to the shard",
			func() float64 { return float64(h.ops.Load()) }, label)
		reg.CounterFunc(MetricShardErrorsTotal, "shard faults (transport, internal, overload)",
			func() float64 { return float64(h.errs.Load()) }, label)
		reg.GaugeFunc(MetricShardConsecFails, "current run of consecutive shard faults",
			func() float64 { return float64(h.consecFails.Load()) }, label)
	}
}
