package cluster

// Per-shard health tracking: every operation the router sends to a
// shard is observed — in-flight count, totals, consecutive faults and
// the last fault message — so an operator (or `zerber status`) can see
// which shard of a cluster is degrading while the self-healing client
// transport rides out the blip. The labels carry only the shard index;
// which lists live on a shard (and therefore which terms) is never
// exposed.

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"zerberr/internal/obs"
	"zerberr/internal/replica"
	"zerberr/internal/server"
)

// Metric names the router registers on the obs registry.
const (
	MetricShardInFlight    = "zerber_shard_inflight_requests"
	MetricShardOpsTotal    = "zerber_shard_ops_total"
	MetricShardErrorsTotal = "zerber_shard_errors_total"
	MetricShardConsecFails = "zerber_shard_consecutive_failures"
	MetricShardLatencyP95  = "zerber_shard_latency_p95_seconds"
	MetricRoutingEpoch     = "zerber_routing_epoch"
	MetricMigrationsTotal  = "zerber_migrations_total"
)

// DemoteAfter is the consecutive-fault run after which a shard is
// considered down for routing purposes: its replica set (if it is one)
// is told to hedge immediately — reads route around the primary with
// zero delay — and Health/metrics flag it for the operator. A single
// answered operation clears the run.
const DemoteAfter = 5

// Hedge-delay clamp for latency-derived seeds: below hedgeDelayMin the
// hedge storm costs more than it saves; above hedgeDelayMax a stall
// must not go unhedged just because the shard was historically slow.
const (
	hedgeDelayMin = 2 * time.Millisecond
	hedgeDelayMax = 500 * time.Millisecond
)

// shardHealth is one shard's live counters. All hot-path fields are
// atomic; only the last-fault record takes the mutex, and only on
// faults.
type shardHealth struct {
	inFlight    atomic.Int64
	ops         atomic.Uint64
	errs        atomic.Uint64
	consecFails atomic.Int64

	mu        sync.Mutex
	lastErr   string
	lastErrAt time.Time
}

// ShardHealth is one shard's health snapshot (Router.Health).
type ShardHealth struct {
	Shard int `json:"shard"`
	// InFlight is the number of operations currently outstanding
	// against the shard.
	InFlight int64 `json:"in_flight"`
	// Ops counts operations sent (batches count once).
	Ops uint64 `json:"ops"`
	// Errors counts shard faults: transport failures, internal errors
	// and overload rejections. Clean application rejections (auth,
	// forbidden, not-found, ...) prove the shard is alive and are not
	// faults.
	Errors uint64 `json:"errors"`
	// ConsecutiveFailures is the current run of faults; any answered
	// operation resets it. A growing run is the "this shard is down"
	// signal.
	ConsecutiveFailures int64 `json:"consecutive_failures"`
	// LastError is the most recent fault message, with when it
	// happened.
	LastError   string    `json:"last_error,omitempty"`
	LastErrorAt time.Time `json:"last_error_at,omitzero"`
	// LatencyP95 estimates the shard's 95th-percentile latency over
	// answered operations, in seconds — the signal the hedge delay is
	// seeded from. Zero until the shard has answered something.
	LatencyP95 float64 `json:"latency_p95_seconds,omitempty"`
	// Demoted reports the consecutive-fault run crossed DemoteAfter:
	// the shard's replica set hedges immediately until it answers
	// again.
	Demoted bool `json:"demoted,omitempty"`
}

// observeShard begins one shard operation; call the returned func with
// the operation's outcome.
func (r *Router) observeShard(shard int) func(error) {
	h := &r.health[shard]
	h.inFlight.Add(1)
	start := time.Now()
	return func(err error) {
		h.inFlight.Add(-1)
		h.ops.Add(1)
		switch {
		case shardFault(err):
			h.errs.Add(1)
			h.consecFails.Add(1)
			h.mu.Lock()
			h.lastErr = err.Error()
			h.lastErrAt = time.Now()
			h.mu.Unlock()
		case err == nil || !isContextErr(err):
			// The shard answered (success or a clean application
			// rejection): it is alive. Only answered operations feed the
			// latency histogram — timed-out faults would teach the hedge
			// seed that "slow is normal", exactly backwards.
			h.consecFails.Store(0)
			r.latency[shard].Observe(time.Since(start).Seconds())
		}
		// Context errors are neutral: the caller (or a sibling shard's
		// failure) abandoned the operation, which says nothing about
		// this shard's health.
	}
}

// fanOutAborts reports whether a shard's batch error warrants
// canceling the sibling shards: faults mean the batch cannot succeed
// and waiting is pure latency, while clean per-operation rejections
// leave the siblings' independent work to finish.
func fanOutAborts(err error) bool {
	return isContextErr(err) || shardFault(err)
}

// demoted reports whether the shard's consecutive-fault run crossed
// the routing threshold.
func (r *Router) demoted(shard int) bool {
	return r.health[shard].consecFails.Load() >= DemoteAfter
}

// hedgeDelaySeed derives a shard's hedge delay for its replica set: a
// demoted shard hedges immediately (reads route around the faulting
// primary), a healthy one hedges at its observed p95 (≈5% of reads
// hedge), clamped to sane bounds; with no observations yet the set's
// own default applies (negative = "no opinion").
func (r *Router) hedgeDelaySeed(shard int) func() time.Duration {
	return func() time.Duration {
		if r.demoted(shard) {
			return 0
		}
		p95 := r.latency[shard].Quantile(0.95)
		if p95 <= 0 {
			return -1
		}
		d := time.Duration(p95 * float64(time.Second))
		if d < hedgeDelayMin {
			d = hedgeDelayMin
		}
		if d > hedgeDelayMax {
			d = hedgeDelayMax
		}
		return d
	}
}

// shardFault reports whether an operation outcome indicts the shard:
// transport failures and internal errors do, and so do overload
// rejections; application rejections and abandoned (context-canceled)
// operations do not.
func shardFault(err error) bool {
	if err == nil || isContextErr(err) {
		return false
	}
	switch server.ErrorCode(err) {
	case server.CodeInternal, server.CodeOverloaded:
		return true
	}
	return false
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Health snapshots every shard's counters, in shard order.
func (r *Router) Health() []ShardHealth {
	out := make([]ShardHealth, len(r.health))
	for i := range r.health {
		h := &r.health[i]
		h.mu.Lock()
		lastErr, lastAt := h.lastErr, h.lastErrAt
		h.mu.Unlock()
		out[i] = ShardHealth{
			Shard:               i,
			InFlight:            h.inFlight.Load(),
			Ops:                 h.ops.Load(),
			Errors:              h.errs.Load(),
			ConsecutiveFailures: h.consecFails.Load(),
			LastError:           lastErr,
			LastErrorAt:         lastAt,
			LatencyP95:          r.latency[i].Quantile(0.95),
			Demoted:             h.consecFails.Load() >= DemoteAfter,
		}
	}
	return out
}

// SetObs registers the router's per-shard health families on a metrics
// registry, sampled at scrape time from the live counters. Labels
// carry only the shard index.
func (r *Router) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for i := range r.health {
		h := &r.health[i]
		label := obs.Label{Name: "shard", Value: strconv.Itoa(i)}
		reg.GaugeFunc(MetricShardInFlight, "operations currently outstanding against the shard",
			func() float64 { return float64(h.inFlight.Load()) }, label)
		reg.CounterFunc(MetricShardOpsTotal, "operations sent to the shard",
			func() float64 { return float64(h.ops.Load()) }, label)
		reg.CounterFunc(MetricShardErrorsTotal, "shard faults (transport, internal, overload)",
			func() float64 { return float64(h.errs.Load()) }, label)
		reg.GaugeFunc(MetricShardConsecFails, "current run of consecutive shard faults",
			func() float64 { return float64(h.consecFails.Load()) }, label)
		lat := r.latency[i]
		reg.GaugeFunc(MetricShardLatencyP95, "estimated p95 latency of answered shard operations",
			func() float64 { return lat.Quantile(0.95) }, label)
		if set, ok := r.transport(i).(*replica.Set); ok {
			// A replica-set shard contributes its hedging counters under
			// the shard label. (The set behind a slot can change under
			// Migrate; these families stay bound to the boot-time set —
			// migrated-in sets report through their own registries.)
			set.SetObs(reg, label)
		}
	}
	reg.GaugeFunc(MetricRoutingEpoch, "current routing-table epoch (bumped by every migration)",
		func() float64 { return float64(r.Epoch()) })
	reg.CounterFunc(MetricMigrationsTotal, "completed shard migrations by result",
		func() float64 { return float64(r.migrationsOK.Load()) }, obs.Label{Name: "result", Value: "ok"})
	reg.CounterFunc(MetricMigrationsTotal, "completed shard migrations by result",
		func() float64 { return float64(r.migrationsFailed.Load()) }, obs.Label{Name: "result", Value: "error"})
}
