package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/crypt"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// stalledShard blocks every batched query until its context is
// canceled — a shard that accepted the connection but never answers.
type stalledShard struct {
	client.Transport
	stalled chan struct{} // closed once a query is parked
}

func (s *stalledShard) QueryBatch(ctx context.Context, toks []crypt.Token, queries []server.ListQuery) (client.BatchQueryResult, error) {
	select {
	case <-s.stalled:
	default:
		close(s.stalled)
	}
	<-ctx.Done()
	return client.BatchQueryResult{}, ctx.Err()
}

// errorShard fails every batched query immediately.
type errorShard struct {
	client.Transport
}

var errShardDown = errors.New("shard down")

func (errorShard) QueryBatch(context.Context, []crypt.Token, []server.ListQuery) (client.BatchQueryResult, error) {
	return client.BatchQueryResult{}, errShardDown
}

// newCancelCluster builds a 2-shard cluster where shard 1 is wrapped
// by wrap, plus tokens for a registered user.
func newCancelCluster(t *testing.T, wrap func(client.Transport) client.Transport) (*Router, []crypt.Token) {
	t.Helper()
	secret := []byte("cancel-secret")
	shards := make([]client.Transport, 2)
	for i := range shards {
		srv := server.New(secret, time.Hour)
		srv.RegisterUser("u", 0)
		// Both shards hold data so fan-out touches both.
		toks, err := srv.Login(context.Background(), "u")
		if err != nil {
			t.Fatal(err)
		}
		for list := zerber.ListID(0); list < 4; list++ {
			el := server.StoredElement{Sealed: []byte{byte(i), byte(list)}, TRS: 0.5, Group: 0}
			if err := srv.Insert(context.Background(), toks[0], list, el); err != nil {
				t.Fatal(err)
			}
		}
		shards[i] = client.Local{S: srv}
	}
	shards[1] = wrap(shards[1])
	router, err := NewRouter(shards...)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := router.Login(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	return router, toks
}

// crossShardQueries touches both shards of a 2-shard router (lists 0
// and 1 hash to shards 0 and 1).
func crossShardQueries() []server.ListQuery {
	return []server.ListQuery{
		{List: 0, Offset: 0, Count: 10},
		{List: 1, Offset: 0, Count: 10},
	}
}

// TestRouterCancelAbandonsStalledShard cancels the caller's context
// while one shard is stalled and requires QueryBatch to return
// context.Canceled promptly instead of waiting the shard out.
func TestRouterCancelAbandonsStalledShard(t *testing.T) {
	stall := &stalledShard{stalled: make(chan struct{})}
	router, toks := newCancelCluster(t, func(tr client.Transport) client.Transport {
		stall.Transport = tr
		return stall
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := router.QueryBatch(ctx, toks, crossShardQueries())
		done <- err
	}()
	select {
	case <-stall.stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled shard never received its sub-batch")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("QueryBatch returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("router did not abandon the stalled shard after cancel")
	}
}

// TestRouterFirstErrorCancelsSiblings wires one failing and one
// stalled shard: the failing shard's error must cancel the stalled
// sibling's context, so the fan-out returns the real error promptly —
// and attributes it to the right shard.
func TestRouterFirstErrorCancelsSiblings(t *testing.T) {
	stall := &stalledShard{stalled: make(chan struct{})}
	secret := []byte("cancel-secret")
	srv := server.New(secret, time.Hour)
	srv.RegisterUser("u", 0)
	stall.Transport = client.Local{S: srv}
	router, err := NewRouter(errorShard{client.Local{S: srv}}, stall)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := router.Login(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := router.QueryBatch(context.Background(), toks, crossShardQueries())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, errShardDown) {
			t.Fatalf("QueryBatch returned %v, want the failing shard's error", err)
		}
		if want := "shard 0"; !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %s", err, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("first shard error did not cancel the stalled sibling")
	}
}
