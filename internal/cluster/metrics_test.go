package cluster

// Full-stack /metrics scrape test: one registry collecting the durable
// store's WAL families, a server's query/admission/cache families, the
// HTTP middleware's per-endpoint families and the router's per-shard
// health samplers — scraped over HTTP and checked for (a) well-formed
// Prometheus text exposition and (b) the confidentiality allowlist: no
// label may carry term identity, list IDs or user names.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"zerberr/internal/cache"
	"zerberr/internal/client"
	"zerberr/internal/crypt"
	"zerberr/internal/obs"
	"zerberr/internal/server"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

// scrapeLabelAllowlist is the ops plane's whole label vocabulary. A
// scrape exposing any label name outside it fails the test — the gate
// that keeps future instrumentation from leaking per-term, per-list or
// per-user series (DESIGN.md "Ops plane").
var scrapeLabelAllowlist = map[string]bool{
	"endpoint": true, // HTTP route pattern, not request data
	"code":     true, // HTTP status code
	"le":       true, // histogram bucket bound
	"op":       true, // mutation kind: insert | remove
	"result":   true, // outcome kind: ok | error
	"shard":    true, // shard index
}

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

func TestMetricsScrapeExposition(t *testing.T) {
	const user = "scrape-user"
	reg := obs.NewRegistry()

	// Shard 0 is durable (WAL families) with the full server ops plane
	// armed; shard 1 is a plain RAM server behind the same router.
	durable, err := store.OpenDurable(t.TempDir(), store.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("scrape-secret")
	srv0 := server.NewWithBackend(secret, time.Hour, durable)
	defer srv0.Close()
	srv0.SetObs(reg)
	srv0.SetCache(cache.New(1 << 20))
	srv0.SetAdmission(&server.AdmissionConfig{PerUserRate: 1000, MaxInFlight: 64})
	srv1 := server.New(secret, time.Hour)
	router, err := NewRouter(client.Local{S: srv0}, client.Local{S: srv1})
	if err != nil {
		t.Fatal(err)
	}
	router.SetObs(reg)
	srv0.RegisterUser(user, 0)
	srv1.RegisterUser(user, 0)

	// Traffic through every layer: the HTTP handler (endpoint/code
	// families), the durable backend (WAL families), the cache (miss
	// then hit) and the router (shard samplers).
	ts := httptest.NewServer(srv0.Handler())
	defer ts.Close()
	ctx := context.Background()
	toks, err := router.Login(ctx, user)
	if err != nil {
		t.Fatal(err)
	}
	for list := 0; list < 4; list++ { // even lists land on shard 0, odd on shard 1
		el := server.StoredElement{Sealed: []byte{byte(list)}, TRS: 1, Group: 0}
		if err := router.Insert(ctx, toks[0], zerber.ListID(list), el); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ { // second pass hits srv0's result cache
		if _, err := srv0.Query(ctx, toks, 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if resp, err := http.Get(ts.URL + "/v2/stats"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	typed := map[string]string{} // family -> kind
	counts := map[string]uint64{}
	buckets := map[string]uint64{} // series (sans le) -> last cumulative count
	families := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = parts[3]
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		name, labels, value := m[1], m[3], m[4]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("non-numeric value in %q", line)
		}
		fam := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if typed[fam] == "" && typed[name] == "" {
			t.Fatalf("sample %q precedes its # TYPE declaration", line)
		}
		if typed[name] != "" {
			fam = name
		}
		families[fam] = true
		var le string
		if labels != "" {
			for _, pair := range strings.Split(labels, ",") {
				lm := labelRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Fatalf("malformed label %q in %q", pair, line)
				}
				if !scrapeLabelAllowlist[lm[1]] {
					t.Fatalf("label %q outside the allowlist in %q", lm[1], line)
				}
				if lm[1] == "le" {
					le = lm[2]
				}
			}
		}
		// Histogram series must be internally consistent: cumulative
		// buckets never decrease, and _count equals the +Inf bucket.
		if typed[fam] == "histogram" {
			series := fam + "{" + stripLe(labels) + "}"
			switch {
			case strings.HasSuffix(name, "_bucket"):
				cum, _ := strconv.ParseUint(value, 10, 64)
				if cum < buckets[series] {
					t.Fatalf("bucket counts decrease at %q", line)
				}
				buckets[series] = cum
				if le == "+Inf" {
					counts[series+"+Inf"] = cum
				}
			case strings.HasSuffix(name, "_count"):
				n, _ := strconv.ParseUint(value, 10, 64)
				counts[series+"count"] = n
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for series := range buckets {
		if counts[series+"+Inf"] != counts[series+"count"] {
			t.Fatalf("series %s: +Inf bucket %d != count %d", series, counts[series+"+Inf"], counts[series+"count"])
		}
	}

	// Every layer's families must be present in one scrape.
	for _, fam := range []string{
		server.MetricQueryRoundSeconds, server.MetricQueriesTotal,
		server.MetricMutationsTotal, server.MetricHTTPRequestSeconds,
		server.MetricHTTPRequestsTotal, server.MetricHTTPInFlight,
		server.MetricRateLimitedTotal, server.MetricShedTotal,
		server.MetricCacheHitsTotal, server.MetricCacheMissesTotal,
		server.MetricCacheBytes, server.MetricUptimeSeconds,
		store.MetricWALAppendSeconds, store.MetricWALRecordsTotal,
		store.MetricSnapshotsTotal, store.MetricWALPoisoned,
		MetricShardInFlight, MetricShardOpsTotal,
		MetricShardErrorsTotal, MetricShardConsecFails,
		MetricShardLatencyP95, MetricRoutingEpoch,
		MetricMigrationsTotal,
	} {
		if !families[fam] {
			t.Errorf("family %s missing from scrape", fam)
		}
	}

	// The served traffic must be visible: a cache hit was recorded, the
	// WAL appended the inserts, both shards saw operations.
	text := string(body)
	for _, want := range []string{
		server.MetricCacheHitsTotal + " 1",
		store.MetricWALRecordsTotal + " 2",    // the two even lists
		MetricShardOpsTotal + `{shard="0"} 3`, // login + two inserts
		MetricShardOpsTotal + `{shard="1"} 2`, // two inserts
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape lacks %q", want)
		}
	}

	// Confidentiality: nothing identifying a user, list or term leaks
	// into the scrape (values checked above are allowlisted labels and
	// numbers; this catches names and help strings too).
	if strings.Contains(text, user) {
		t.Fatal("user name leaked into /metrics")
	}
}

func stripLe(labels string) string {
	var keep []string
	for _, pair := range strings.Split(labels, ",") {
		if pair != "" && !strings.HasPrefix(pair, `le="`) {
			keep = append(keep, pair)
		}
	}
	return strings.Join(keep, ",")
}

// faultyTransport wraps a shard transport and, while fail is set,
// answers every Query with an unclassified error (which maps to
// CodeInternal — a shard fault).
type faultyTransport struct {
	client.Transport
	fail bool
}

func (f *faultyTransport) Query(ctx context.Context, toks []crypt.Token, list zerber.ListID, offset, count int) (server.QueryResponse, int, error) {
	if f.fail {
		return server.QueryResponse{}, 0, fmt.Errorf("shard: injected fault")
	}
	return f.Transport.Query(ctx, toks, list, offset, count)
}

// TestShardHealthTracksFaults exercises the health counters through an
// injected shard fault: consecutive failures climb while the shard
// errors, reset on the next clean answer (even a clean application
// rejection), and the error totals and last-fault record persist.
func TestShardHealthTracksFaults(t *testing.T) {
	srv := server.New([]byte("health-secret"), time.Hour)
	srv.RegisterUser("prober", 0)
	ft := &faultyTransport{Transport: client.Local{S: srv}}
	router, err := NewRouter(ft)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	toks, err := router.Login(ctx, "prober")
	if err != nil {
		t.Fatal(err)
	}

	ft.fail = true
	for i := 0; i < 3; i++ {
		if _, _, err := router.Query(ctx, toks, 1, 0, 1); err == nil {
			t.Fatal("injected fault not surfaced")
		}
	}
	h := router.Health()[0]
	if h.ConsecutiveFailures != 3 || h.Errors != 3 {
		t.Fatalf("after 3 faults: %+v", h)
	}
	if h.LastError == "" || h.LastErrorAt.IsZero() {
		t.Fatalf("last fault not recorded: %+v", h)
	}

	// An answered application rejection (unknown list -> 404 class)
	// proves liveness: the consecutive run resets, totals persist.
	ft.fail = false
	if _, _, err := router.Query(ctx, toks, 1, 0, 1); err == nil {
		t.Fatal("query of an empty list should fail cleanly")
	}
	h = router.Health()[0]
	if h.ConsecutiveFailures != 0 {
		t.Fatalf("clean answer did not reset the run: %+v", h)
	}
	if h.Errors != 3 || h.LastError == "" {
		t.Fatalf("fault history lost: %+v", h)
	}
	if h.Ops != 5 { // login + 4 queries
		t.Fatalf("ops = %d, want 5", h.Ops)
	}
	if h.InFlight != 0 {
		t.Fatalf("in-flight = %d at rest", h.InFlight)
	}
}
