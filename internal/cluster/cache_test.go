package cluster_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"zerberr/internal/cache"
	"zerberr/internal/client"
	"zerberr/internal/cluster"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// TestRouterCacheRevalidation drives the conditional fan-out end to
// end: a cached router must answer repeated batches with revalidated
// retained windows (shards reply Unchanged), stay element-identical to
// an uncached router over the same shards, and fall back to full
// windows the moment a shard's list mutates. Runs over in-process and
// HTTP shard transports — the latter proves the if_version/unchanged
// fields survive the JSON wire.
func TestRouterCacheRevalidation(t *testing.T) {
	for _, mode := range []string{"local", "http"} {
		t.Run(mode, func(t *testing.T) {
			secret := []byte("router-cache-secret")
			const shards = 3
			servers := make([]*server.Server, shards)
			transports := make([]client.Transport, shards)
			for i := range servers {
				servers[i] = server.New(secret, time.Hour)
				servers[i].RegisterUser("u", 0, 1)
				if mode == "local" {
					transports[i] = client.Local{S: servers[i]}
				} else {
					ts := httptest.NewServer(servers[i].Handler())
					t.Cleanup(ts.Close)
					transports[i] = client.HTTP{BaseURL: ts.URL}
				}
			}
			cached, err := cluster.NewRouter(transports...)
			if err != nil {
				t.Fatal(err)
			}
			cached.SetCache(cache.New(1 << 20))
			uncached, err := cluster.NewRouter(transports...)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			toks, err := cached.Login(ctx, "u")
			if err != nil {
				t.Fatal(err)
			}

			// Spread lists over all shards and fill them.
			lists := []zerber.ListID{0, 1, 2, 3, 4, 5}
			for _, list := range lists {
				for i := 0; i < 30; i++ {
					el := server.StoredElement{
						Sealed: []byte(fmt.Sprintf("l%d-e%02d", list, i)),
						TRS:    float64((i*7)%30) / 30,
						Group:  i % 2,
					}
					if err := cached.Insert(ctx, toks[i%2], list, el); err != nil {
						t.Fatal(err)
					}
				}
			}
			queries := make([]server.ListQuery, len(lists))
			for i, list := range lists {
				queries[i] = server.ListQuery{List: list, Offset: i, Count: 5 + i}
			}
			compare := func(stage string) client.BatchQueryResult {
				t.Helper()
				got, err := cached.QueryBatch(ctx, toks, queries)
				if err != nil {
					t.Fatalf("%s: cached: %v", stage, err)
				}
				want, err := uncached.QueryBatch(ctx, toks, queries)
				if err != nil {
					t.Fatalf("%s: uncached: %v", stage, err)
				}
				if len(got.Responses) != len(want.Responses) {
					t.Fatalf("%s: %d responses, want %d", stage, len(got.Responses), len(want.Responses))
				}
				for i := range got.Responses {
					g, w := got.Responses[i], want.Responses[i]
					if g.Unchanged {
						t.Fatalf("%s: raw Unchanged leaked to the caller at %d", stage, i)
					}
					if g.Exhausted != w.Exhausted || g.Version != w.Version || !reflect.DeepEqual(g.Elements, w.Elements) {
						t.Fatalf("%s: response %d diverged: cached %d elements v%d, uncached %d v%d",
							stage, i, len(g.Elements), g.Version, len(w.Elements), w.Version)
					}
				}
				return got
			}

			cold := compare("cold")
			st, ok := cached.CacheStats()
			if !ok || st.Entries == 0 || st.Hits != 0 {
				t.Fatalf("after cold batch: %+v (ok=%v)", st, ok)
			}
			warm := compare("warm")
			st, _ = cached.CacheStats()
			if st.Hits < uint64(len(queries)) {
				t.Fatalf("warm batch reused %d windows, want %d: %+v", st.Hits, len(queries), st)
			}
			if mode == "http" && warm.WireBytes >= cold.WireBytes {
				t.Fatalf("revalidated batch cost %d wire bytes, cold cost %d — Unchanged saved nothing",
					warm.WireBytes, cold.WireBytes)
			}

			// Mutate one list: only its window may change, and the next
			// batch must pick the new content up (version moved, the
			// shard serves the full window again).
			victim := lists[2]
			if err := cached.Insert(ctx, toks[0], victim, server.StoredElement{Sealed: []byte("fresh"), TRS: 0.999, Group: 0}); err != nil {
				t.Fatal(err)
			}
			after := compare("after-mutation")
			if after.Responses[2].Version != warm.Responses[2].Version+1 {
				t.Fatalf("mutated list version %d, want %d", after.Responses[2].Version, warm.Responses[2].Version+1)
			}
			for i := range after.Responses {
				if lists[i] == victim {
					continue
				}
				if after.Responses[i].Version != warm.Responses[i].Version {
					t.Fatalf("unmutated list %d changed version", lists[i])
				}
			}

			// A caller running its own revalidation gets the raw marker.
			ver := after.Responses[0].Version
			raw, err := cached.QueryBatch(ctx, toks, []server.ListQuery{{List: lists[0], Offset: 0, Count: 5, IfVersion: &ver}})
			if err != nil {
				t.Fatal(err)
			}
			if !raw.Responses[0].Unchanged || raw.Responses[0].Elements != nil {
				t.Fatalf("caller-set IfVersion was not passed through: %+v", raw.Responses[0])
			}
		})
	}
}
