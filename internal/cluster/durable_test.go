package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/server"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

// TestRouterOverDurableShards checks the Router works unchanged when
// every shard sits on a durable backend, and that a full cluster
// restart recovers identical query results from disk.
func TestRouterOverDurableShards(t *testing.T) {
	const shards = 3
	base := t.TempDir()
	secret := []byte("cluster-secret--")

	open := func() (*Router, []*server.Server) {
		srvs := make([]*server.Server, shards)
		transports := make([]client.Transport, shards)
		for i := range srvs {
			d, err := store.OpenDurable(filepath.Join(base, fmt.Sprintf("shard%d", i)), store.Options{})
			if err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
			srvs[i] = server.NewWithBackend(secret, time.Hour, d)
			srvs[i].RegisterUser("writer", 0)
			transports[i] = client.Local{S: srvs[i]}
		}
		router, err := NewRouter(transports...)
		if err != nil {
			t.Fatal(err)
		}
		return router, srvs
	}
	closeAll := func(srvs []*server.Server) {
		for i, s := range srvs {
			if err := s.Close(); err != nil {
				t.Fatalf("closing shard %d: %v", i, err)
			}
		}
	}

	router, srvs := open()
	toks, err := router.Login(context.Background(), "writer")
	if err != nil {
		t.Fatal(err)
	}
	// Spread elements over enough lists to hit every shard.
	const lists = 10
	for l := zerber.ListID(0); l < lists; l++ {
		for i := 0; i < 5; i++ {
			el := server.StoredElement{Sealed: []byte(fmt.Sprintf("l%d-e%d", l, i)), TRS: float64(i), Group: 0}
			if err := router.Insert(context.Background(), toks[0], l, el); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := router.Remove(context.Background(), toks[0], 2, []byte("l2-e0")); err != nil {
		t.Fatal(err)
	}
	before := make(map[zerber.ListID]server.QueryResponse)
	for l := zerber.ListID(0); l < lists; l++ {
		resp, _, err := router.Query(context.Background(), toks, l, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		before[l] = resp
	}
	closeAll(srvs)

	// Restart: fresh servers over the same shard directories.
	router, srvs = open()
	defer closeAll(srvs)
	toks, err = router.Login(context.Background(), "writer")
	if err != nil {
		t.Fatal(err)
	}
	for l := zerber.ListID(0); l < lists; l++ {
		resp, _, err := router.Query(context.Background(), toks, l, 0, 100)
		if err != nil {
			t.Fatalf("list %d after restart: %v", l, err)
		}
		if !reflect.DeepEqual(resp, before[l]) {
			t.Fatalf("list %d: results changed across restart", l)
		}
	}
}
