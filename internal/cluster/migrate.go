package cluster

// Live shard migration. Migrate moves one routing slot's contents onto
// a new transport while the router keeps serving: the bulk of the data
// ships as an atomic rank-ordered snapshot with writes still flowing,
// then the slot's write barrier closes only for the WAL-tail catch-up
// and the route flip, so the write pause is proportional to the write
// rate during the copy, not to the shard size. Before the flip the two
// sides are differentially verified list-by-list; a mismatch aborts
// with the old route intact and the destination's partial state safe
// to discard.

import (
	"context"
	"fmt"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/replica"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// MigrationReport summarizes one completed migration.
type MigrationReport struct {
	// Shard is the routing slot that moved.
	Shard int `json:"shard"`
	// Lists and Elements count what the destination verified it holds.
	Lists    int `json:"lists"`
	Elements int `json:"elements"`
	// TailOps is the number of write operations replayed under the
	// barrier to catch the destination up (zero when the source is not
	// tailable and a quiesced full copy ran instead).
	TailOps int `json:"tail_ops"`
	// Epoch is the routing-table epoch after the flip.
	Epoch uint64 `json:"epoch"`
	// Duration covers the whole migration; BarrierDuration only the
	// write-blocked window at the end.
	Duration        time.Duration `json:"duration_ns"`
	BarrierDuration time.Duration `json:"barrier_duration_ns"`
}

// Migrate moves the given routing slot onto dst and flips the routing
// table to it, bumping the epoch. Both the slot's current transport and
// dst must expose the admin plane (client.ShardAdmin); dst should be
// empty — its prior contents are replaced by the import. Queries are
// never blocked; writes to the slot stall only during the final
// catch-up-and-flip barrier. On any error the routing table is
// unchanged and the destination's partial state is unreferenced (safe
// to discard or retry onto).
func (r *Router) Migrate(ctx context.Context, shard int, dst client.Transport) (MigrationReport, error) {
	rep, err := r.migrate(ctx, shard, dst)
	if err != nil {
		r.migrationsFailed.Add(1)
		return rep, err
	}
	r.migrationsOK.Add(1)
	return rep, nil
}

func (r *Router) migrate(ctx context.Context, shard int, dst client.Transport) (MigrationReport, error) {
	start := time.Now()
	var rep MigrationReport
	if shard < 0 || shard >= r.NumShards() {
		return rep, fmt.Errorf("cluster: no shard %d (have %d)", shard, r.NumShards())
	}
	rep.Shard = shard
	if dst == nil {
		return rep, fmt.Errorf("cluster: nil destination for shard %d", shard)
	}
	dstID := client.TransportIdentity(dst)
	tab := r.table()
	for i, t := range tab.shards {
		if client.TransportIdentity(t) == dstID {
			return rep, fmt.Errorf("cluster: destination already serves shard %d", i)
		}
	}
	src := tab.shards[shard]
	sa, ok := src.(client.ShardAdmin)
	if !ok {
		return rep, fmt.Errorf("cluster: shard %d transport %T has no admin surface", shard, src)
	}
	da, ok := dst.(client.ShardAdmin)
	if !ok {
		return rep, fmt.Errorf("cluster: destination transport %T has no admin surface", dst)
	}

	// Phase 1: bulk copy under live writes. The export is atomic and
	// rank-ordered; writes that land after it are picked up by the tail
	// (or the quiesced re-copy) under the barrier.
	exp, err := sa.ExportSnapshot(ctx)
	if err != nil {
		return rep, fmt.Errorf("cluster: migrate shard %d: export: %w", shard, err)
	}
	if err := da.ImportSnapshot(ctx, exp.Data); err != nil {
		return rep, fmt.Errorf("cluster: migrate shard %d: import: %w", shard, err)
	}

	// Phase 2: barrier. In-flight writes drain (they hold the slot's
	// writeMu shared and loaded the table after acquiring it), new ones
	// park; queries keep flowing — content is identical on both sides by
	// the time the table flips.
	r.writeMu[shard].Lock()
	defer r.writeMu[shard].Unlock()
	barrierStart := time.Now()

	caughtUp := false
	if exp.Tailable {
		// Over the admin HTTP surface the store's tail sentinels arrive
		// stringified, so any tail failure — truncation included — routes
		// to the quiesced full copy below. Slower, never wrong.
		ops, terr := sa.TailSince(ctx, exp.Seq)
		if terr == nil {
			if len(ops) > 0 {
				terr = da.ApplyOps(ctx, ops)
			}
			if terr == nil {
				caughtUp = true
				rep.TailOps = len(ops)
			}
		}
	}
	if !caughtUp {
		// Writes are parked, so a fresh export is exact on its own.
		exp, err = sa.ExportSnapshot(ctx)
		if err != nil {
			return rep, fmt.Errorf("cluster: migrate shard %d: re-export: %w", shard, err)
		}
		if err := da.ImportSnapshot(ctx, exp.Data); err != nil {
			return rep, fmt.Errorf("cluster: migrate shard %d: re-import: %w", shard, err)
		}
		rep.TailOps = 0
	}

	// Phase 3: differential verification, still under the barrier.
	// Content identity (list set, element counts, rank-ordered CRCs) is
	// what is compared — versions are not: lists born after the export
	// carry per-instance epochs by design, and a version mismatch across
	// the flip only costs a revalidation cache miss, never staleness.
	srcDig, err := sa.Digest(ctx)
	if err != nil {
		return rep, fmt.Errorf("cluster: migrate shard %d: source digest: %w", shard, err)
	}
	dstDig, err := da.Digest(ctx)
	if err != nil {
		return rep, fmt.Errorf("cluster: migrate shard %d: destination digest: %w", shard, err)
	}
	if err := DiffDigests(srcDig, dstDig); err != nil {
		return rep, fmt.Errorf("cluster: migrate shard %d: verification failed (route unchanged): %w", shard, err)
	}
	rep.Lists = len(dstDig)
	for _, d := range dstDig {
		rep.Elements += d.Elements
	}

	// Phase 4: flip. A whole new table with a bumped epoch; readers of
	// one batch observe one consistent assignment. The health run resets
	// — the new transport has no faults yet.
	next := &routingTable{epoch: tab.epoch + 1, shards: append([]client.Transport(nil), tab.shards...)}
	next.shards[shard] = dst
	r.tab.Store(next)
	r.health[shard].consecFails.Store(0)
	if set, ok := dst.(*replica.Set); ok {
		set.SeedHedgeDelay(r.hedgeDelaySeed(shard))
	}
	rep.Epoch = next.epoch
	rep.BarrierDuration = time.Since(barrierStart)
	rep.Duration = time.Since(start)
	return rep, nil
}

// DiffDigests verifies two digest sets describe identical content:
// same list set, and per list the same element count and rank-ordered
// checksum. Versions are deliberately ignored (see Migrate). Exported
// for `zerber migrate`, which runs the same differential check over
// the HTTP admin surface.
func DiffDigests(src, dst []server.ListDigest) error {
	byList := make(map[zerber.ListID]server.ListDigest, len(src))
	for _, d := range src {
		byList[d.List] = d
	}
	if len(dst) != len(src) {
		return fmt.Errorf("list count differs: source %d, destination %d", len(src), len(dst))
	}
	for _, d := range dst {
		s, ok := byList[d.List]
		if !ok {
			return fmt.Errorf("list %d on destination but not source", d.List)
		}
		if s.Elements != d.Elements {
			return fmt.Errorf("list %d: %d elements on source, %d on destination", d.List, s.Elements, d.Elements)
		}
		if s.Sum != d.Sum {
			return fmt.Errorf("list %d: checksum mismatch (source %s, destination %s)", d.List, s.Sum, d.Sum)
		}
	}
	return nil
}
