package cluster

import (
	"context"
	"math"
	"testing"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/index"
	"zerberr/internal/rstf"
	"zerberr/internal/zerber"
)

// clusterHarness wires a 3-shard cluster with a fully indexed corpus.
type clusterHarness struct {
	c        *corpus.Corpus
	plan     *zerber.MergePlan
	local    *Local
	cl       *client.Client
	baseline *index.Index
}

func newClusterHarness(t *testing.T, shards int, seed uint64) *clusterHarness {
	t.Helper()
	p := corpus.ProfileStudIP()
	p.NumDocs = 200
	p.VocabSize = 2000
	p.Topics = 2
	c := corpus.Generate(p, seed)
	split := corpus.NewSplit(c, 0.3, 0.33, seed)
	store := rstf.TrainStore(
		corpus.TrainingScores(c, split.Train),
		corpus.TrainingScores(c, split.Control),
		rstf.StoreConfig{FallbackSeed: seed},
	)
	plan, err := zerber.BFM(zerber.FromCorpus(c), 32)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(shards, []byte("cluster-secret"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[int]crypt.GroupKey{}
	groups := make([]int, c.Groups)
	for g := range groups {
		groups[g] = g
		keys[g] = crypt.KeyFromPassphrase("cluster-group")
	}
	local.RegisterUser("writer", groups...)
	cl, err := client.New(local.Router, client.Config{Plan: plan, Store: store, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Docs {
		if err := cl.IndexDocument(context.Background(), d, d.Group); err != nil {
			t.Fatal(err)
		}
	}
	return &clusterHarness{c: c, plan: plan, local: local, cl: cl, baseline: index.Build(c)}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(); err == nil {
		t.Fatal("empty router accepted")
	}
	if _, err := NewLocal(0, []byte("s"), 0); err == nil {
		t.Fatal("zero-shard cluster accepted")
	}
}

func TestShardAssignmentStable(t *testing.T) {
	l, err := NewLocal(3, []byte("s"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	r := l.Router
	for list := zerber.ListID(0); list < 100; list++ {
		a := r.ShardFor(list)
		b := r.ShardFor(list)
		if a != b || a < 0 || a >= 3 {
			t.Fatalf("unstable or out-of-range shard for list %d: %d/%d", list, a, b)
		}
	}
}

func TestClusterDistributesLists(t *testing.T) {
	h := newClusterHarness(t, 3, 1)
	for i, srv := range h.local.Servers {
		if srv.NumElements() == 0 {
			t.Fatalf("shard %d holds no elements", i)
		}
		// Every list on this shard must belong to it per the router.
		for _, list := range srv.Lists() {
			if h.local.Router.ShardFor(list) != i {
				t.Fatalf("list %d stored on shard %d, owner is %d", list, i, h.local.Router.ShardFor(list))
			}
		}
	}
	// No element lost.
	want := 0
	for _, d := range h.c.Docs {
		want += len(d.TF)
	}
	if got := h.local.NumElements(); got != want {
		t.Fatalf("cluster holds %d elements, want %d", got, want)
	}
}

func TestClusterTopKMatchesBaseline(t *testing.T) {
	h := newClusterHarness(t, 3, 2)
	terms := h.c.TermsByDF()
	for _, term := range []corpus.TermID{terms[0], terms[10], terms[100], terms[len(terms)/2]} {
		got, stats, err := h.cl.Search(context.Background(), []corpus.TermID{term}, 10, client.WithSerial(), client.WithInitialResponse(10))
		if err != nil {
			t.Fatal(err)
		}
		want := h.baseline.TopK(term, 10)
		if len(got) != len(want) {
			t.Fatalf("term %d: %d results, want %d", term, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("term %d rank %d: %v vs %v", term, i, got[i].Score, want[i].Score)
			}
		}
		if stats.Requests < 1 {
			t.Fatal("no requests recorded")
		}
	}
}

func TestClusterDelete(t *testing.T) {
	h := newClusterHarness(t, 3, 3)
	victim := h.c.Docs[4]
	removed, err := h.cl.DeleteDocument(context.Background(), victim, victim.Group)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(victim.TF) {
		t.Fatalf("removed %d, want %d", removed, len(victim.TF))
	}
	for term := range victim.TF {
		res, _, err := h.cl.Search(context.Background(), []corpus.TermID{term}, h.c.NumDocs(), client.WithSerial(), client.WithInitialResponse(50))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Doc == victim.ID {
				t.Fatalf("deleted doc still served by cluster for term %d", term)
			}
		}
	}
}

func TestSingleShardClusterEquivalent(t *testing.T) {
	h := newClusterHarness(t, 1, 4)
	term := h.c.TermsByDF()[5]
	got, _, err := h.cl.Search(context.Background(), []corpus.TermID{term}, 5, client.WithSerial(), client.WithInitialResponse(10))
	if err != nil {
		t.Fatal(err)
	}
	want := h.baseline.TopK(term, 5)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
}
