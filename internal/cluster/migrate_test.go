package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/crypt"
	"zerberr/internal/server"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

func TestNewRouterRejectsDuplicateTransports(t *testing.T) {
	srv := server.New([]byte("dup-secret"), time.Hour)
	same := client.Local{S: srv}
	if _, err := NewRouter(same, same); err == nil {
		t.Fatal("one server wired into two slots accepted")
	}
	// Two HTTP transports pointing at the same endpoint are the same
	// shard even when configured differently.
	a := client.HTTP{BaseURL: "http://shard:8080", AdminMAC: "aa"}
	b := client.HTTP{BaseURL: "http://shard:8080", AdminMAC: "bb"}
	if _, err := NewRouter(a, b); err == nil {
		t.Fatal("two HTTP transports with one base URL accepted")
	}
	if _, err := NewRouter(client.Local{S: srv}, nil); err == nil {
		t.Fatal("nil transport accepted")
	}
	// Distinct servers (and distinct endpoints) are fine.
	srv2 := server.New([]byte("dup-secret"), time.Hour)
	if _, err := NewRouter(client.Local{S: srv}, client.Local{S: srv2},
		client.HTTP{BaseURL: "http://other:8080"}); err != nil {
		t.Fatalf("distinct transports rejected: %v", err)
	}
}

// batchErrShard answers every InsertBatch with a clean per-operation
// rejection — the shard is healthy, one op was bad.
type batchErrShard struct {
	client.Transport
}

func (s batchErrShard) InsertBatch(ctx context.Context, tok crypt.Token, ops []server.InsertOp) error {
	return &server.BatchError{Index: 0, Err: fmt.Errorf("%w: injected rejection", server.ErrForbidden)}
}

// slowShard sleeps through InsertBatch and reports whether its context
// was canceled while it worked.
type slowShard struct {
	client.Transport
	sawCancel chan error
}

func (s slowShard) InsertBatch(ctx context.Context, tok crypt.Token, ops []server.InsertOp) error {
	select {
	case <-time.After(30 * time.Millisecond):
	case <-ctx.Done():
	}
	s.sawCancel <- ctx.Err()
	return nil
}

// TestFanOutBatchErrorDoesNotCancelSiblings pins the selective-cancel
// contract: a clean per-operation BatchError from one shard must let
// the sibling shards finish their independent sub-batches, while the
// error still surfaces remapped onto the caller's index.
func TestFanOutBatchErrorDoesNotCancelSiblings(t *testing.T) {
	secret := []byte("fanout-secret")
	srv0 := server.New(secret, time.Hour)
	srv1 := server.New(secret, time.Hour)
	srv0.RegisterUser("writer", 0)
	srv1.RegisterUser("writer", 0)
	saw := make(chan error, 1)
	router, err := NewRouter(
		batchErrShard{client.Local{S: srv0}},
		slowShard{Transport: client.Local{S: srv1}, sawCancel: saw},
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	toks, err := srv0.Login(ctx, "writer")
	if err != nil {
		t.Fatal(err)
	}
	el := server.StoredElement{Sealed: []byte("x"), TRS: 1, Group: 0}
	// List 0 -> shard 0 (rejects op index 0 = caller index 1), list 1 ->
	// shard 1 (slow).
	err = router.InsertBatch(ctx, toks[0], []server.InsertOp{
		{List: 1, Element: el},
		{List: 0, Element: el},
	})
	var be *server.BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("want BatchError at caller index 1, got %v", err)
	}
	if cerr := <-saw; cerr != nil {
		t.Fatalf("sibling shard was canceled by a clean rejection: %v", cerr)
	}
}

// migrateHarness is a 2-shard router with user "writer" (group 0)
// registered everywhere and a destination server standing by.
type migrateHarness struct {
	router *Router
	src    []*server.Server
	dst    *server.Server
	tok    crypt.Token
	toks   []crypt.Token
}

func newMigrateHarness(t *testing.T, durableSrc bool) *migrateHarness {
	t.Helper()
	secret := []byte("migrate-secret")
	mk := func(durable bool) *server.Server {
		if !durable {
			return server.New(secret, time.Hour)
		}
		backend, err := store.OpenDurable(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := server.NewWithBackend(secret, time.Hour, backend)
		t.Cleanup(func() { s.Close() })
		return s
	}
	srv0 := mk(false)
	srv1 := mk(durableSrc)
	dst := mk(false)
	for _, s := range []*server.Server{srv0, srv1, dst} {
		s.RegisterUser("writer", 0)
	}
	router, err := NewRouter(client.Local{S: srv0}, client.Local{S: srv1})
	if err != nil {
		t.Fatal(err)
	}
	toks, err := router.Login(context.Background(), "writer")
	if err != nil {
		t.Fatal(err)
	}
	return &migrateHarness{router: router, src: []*server.Server{srv0, srv1}, dst: dst, tok: toks[0], toks: toks}
}

// TestMigrateUnderConcurrentWrites is the differential identity test
// for live migration: writers keep inserting through the router while
// shard 1 migrates to a fresh server; afterwards every acknowledged
// write must be present, the routing epoch bumped, and a window
// retained from before the migration must still revalidate as
// Unchanged against the new shard (versions survive the move).
// Run under -race this also exercises the write barrier.
func TestMigrateUnderConcurrentWrites(t *testing.T) {
	for _, tc := range []struct {
		name    string
		durable bool
	}{
		{"memory-src", false}, // not tailable: quiesced re-export path
		{"durable-src", true}, // tailable: WAL-tail catch-up path
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := newMigrateHarness(t, tc.durable)
			ctx := context.Background()

			// A quiet list on the migrating shard, with its version
			// captured pre-migration for the revalidation check.
			const quiet = zerber.ListID(101)
			if h.router.ShardFor(quiet) != 1 {
				t.Fatal("test assumes list 101 lives on shard 1")
			}
			if err := h.router.Insert(ctx, h.tok, quiet, server.StoredElement{Sealed: []byte("quiet"), TRS: 1, Group: 0}); err != nil {
				t.Fatal(err)
			}
			pre, _, err := h.router.Query(ctx, h.toks, quiet, 0, 10)
			if err != nil {
				t.Fatal(err)
			}
			if pre.Version == 0 {
				t.Fatal("quiet list has no version to revalidate against")
			}

			// Writers hammer odd lists (shard 1) through the router for
			// the whole migration; each records what it got acked.
			const writers = 4
			var (
				mu     sync.Mutex
				oracle = map[zerber.ListID]map[string]bool{}
			)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					list := zerber.ListID(2*w + 1)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						sealed := []byte(fmt.Sprintf("w%d-%d", w, i))
						if err := h.router.Insert(ctx, h.tok, list, server.StoredElement{Sealed: sealed, TRS: float64(i), Group: 0}); err != nil {
							t.Errorf("writer %d: %v", w, err)
							return
						}
						mu.Lock()
						if oracle[list] == nil {
							oracle[list] = map[string]bool{}
						}
						oracle[list][string(sealed)] = true
						mu.Unlock()
					}
				}(w)
			}
			// Let the writers build up some state before moving the shard.
			time.Sleep(20 * time.Millisecond)

			rep, err := h.router.Migrate(ctx, 1, client.Local{S: h.dst})
			if err != nil {
				t.Fatalf("migrate: %v", err)
			}
			// Writers keep going against the migrated-in shard briefly.
			time.Sleep(10 * time.Millisecond)
			close(stop)
			wg.Wait()

			if rep.Epoch != 2 || h.router.Epoch() != 2 {
				t.Fatalf("epoch not bumped: report %d, router %d", rep.Epoch, h.router.Epoch())
			}
			if rep.Lists == 0 || rep.Elements == 0 {
				t.Fatalf("empty migration report: %+v", rep)
			}
			if tc.durable && rep.TailOps == 0 && h.src[1].NumElements() > rep.Elements {
				t.Fatalf("durable source moved writes but replayed no tail: %+v", rep)
			}

			// Differential identity: every acknowledged write answers
			// through the router, and nothing extra appears.
			mu.Lock()
			defer mu.Unlock()
			for list, want := range oracle {
				resp, _, err := h.router.Query(ctx, h.toks, list, 0, len(want)+16)
				if err != nil {
					t.Fatalf("list %d: %v", list, err)
				}
				if !resp.Exhausted {
					t.Fatalf("list %d: window not exhausted at %d elements", list, len(want)+16)
				}
				got := map[string]bool{}
				for _, el := range resp.Elements {
					got[string(el.Sealed)] = true
				}
				if len(got) != len(want) {
					t.Fatalf("list %d: %d elements after migration, oracle has %d", list, len(got), len(want))
				}
				for s := range want {
					if !got[s] {
						t.Fatalf("list %d: acknowledged write %q lost in migration", list, s)
					}
				}
			}

			// The pre-migration window is still current: the new shard
			// vouches for the retained version with an Unchanged marker.
			res, err := h.router.QueryBatch(ctx, h.toks, []server.ListQuery{
				{List: quiet, Offset: 0, Count: 10, IfVersion: &pre.Version},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Responses[0].Unchanged {
				t.Fatalf("quiet list did not revalidate across the migration: %+v", res.Responses[0])
			}

			// The new transport is live in the table; the old server no
			// longer receives the shard's traffic.
			if got := h.router.transport(1); got != (client.Local{S: h.dst}) {
				t.Fatalf("table still routes shard 1 to %T", got)
			}
			if ok, fail := h.router.migrationsOK.Load(), h.router.migrationsFailed.Load(); ok != 1 || fail != 0 {
				t.Fatalf("migration counters ok=%d fail=%d", ok, fail)
			}
		})
	}
}

// TestMigrateValidation covers the refusals: bad slot, nil or
// duplicate destination, and transports without the admin plane.
func TestMigrateValidation(t *testing.T) {
	h := newMigrateHarness(t, false)
	ctx := context.Background()
	if _, err := h.router.Migrate(ctx, 7, client.Local{S: h.dst}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := h.router.Migrate(ctx, 0, nil); err == nil {
		t.Fatal("nil destination accepted")
	}
	if _, err := h.router.Migrate(ctx, 0, client.Local{S: h.src[1]}); err == nil {
		t.Fatal("destination already serving a slot accepted")
	}
	// A wrapped transport hides the admin surface.
	if _, err := h.router.Migrate(ctx, 0, &faultyTransport{Transport: client.Local{S: h.dst}}); err == nil {
		t.Fatal("destination without admin surface accepted")
	}
	if ok, fail := h.router.migrationsOK.Load(), h.router.migrationsFailed.Load(); ok != 0 || fail != 4 {
		t.Fatalf("migration counters ok=%d fail=%d", ok, fail)
	}
	// The router still works after the refusals.
	if _, err := h.router.Login(ctx, "writer"); err != nil {
		t.Fatal(err)
	}
}
