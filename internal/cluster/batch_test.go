package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// newBatchCluster builds a 3-shard cluster with one logged-in token
// and one element per list 0..n-1, where element TRS encodes its list
// (list i holds TRS = (i+1)/100).
func newBatchCluster(t *testing.T, nLists int) (*Local, crypt.Token, []crypt.Token) {
	t.Helper()
	local, err := NewLocal(3, []byte("batch-secret"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	local.RegisterUser("w", 0)
	toks, err := local.Router.Login(context.Background(), "w")
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]server.InsertOp, nLists)
	for i := 0; i < nLists; i++ {
		ops[i] = server.InsertOp{
			List:    zerber.ListID(i),
			Element: server.StoredElement{Sealed: []byte{byte(i)}, TRS: float64(i+1) / 100, Group: 0},
		}
	}
	if err := local.Router.InsertBatch(context.Background(), toks[0], ops); err != nil {
		t.Fatal(err)
	}
	return local, toks[0], toks
}

func TestRouterQueryBatchSpansShardsInOrder(t *testing.T) {
	const nLists = 9
	local, _, toks := newBatchCluster(t, nLists)

	// Every shard got its share of the batched insert.
	for i, srv := range local.Servers {
		if srv.NumElements() == 0 {
			t.Fatalf("shard %d empty after batched insert", i)
		}
	}

	// Query all lists in deliberately scrambled order; responses must
	// come back in request order.
	order := []int{7, 2, 5, 0, 8, 3, 6, 1, 4}
	queries := make([]server.ListQuery, len(order))
	for j, l := range order {
		queries[j] = server.ListQuery{List: zerber.ListID(l), Offset: 0, Count: 10}
	}
	res, err := local.Router.QueryBatch(context.Background(), toks, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != len(order) {
		t.Fatalf("%d responses for %d queries", len(res.Responses), len(order))
	}
	for j, l := range order {
		resp := res.Responses[j]
		want := float64(l+1) / 100
		if len(resp.Elements) != 1 || !resp.Exhausted || resp.Elements[0].TRS != want {
			t.Fatalf("position %d (list %d): %+v, want single element TRS %v", j, l, resp, want)
		}
	}
}

func TestRouterRemoveBatchSpansShards(t *testing.T) {
	const nLists = 6
	local, tok, _ := newBatchCluster(t, nLists)
	ops := make([]server.RemoveOp, nLists)
	for i := 0; i < nLists; i++ {
		ops[i] = server.RemoveOp{List: zerber.ListID(i), Sealed: []byte{byte(i)}}
	}
	if err := local.Router.RemoveBatch(context.Background(), tok, ops); err != nil {
		t.Fatal(err)
	}
	if n := local.NumElements(); n != 0 {
		t.Fatalf("%d elements left after batched remove", n)
	}
}

func TestRouterBatchErrorCarriesShardAndGlobalIndex(t *testing.T) {
	local, tok, _ := newBatchCluster(t, 6)
	// Op 0 and 2 are fine; op 1 (list 4 -> shard 1 of 3) targets a
	// group the token does not cover. The surfaced error must name
	// shard 1 and the caller's op index 1, and shard-atomicity means
	// the failing shard applied nothing.
	shard := local.Router.ShardFor(4)
	before := local.Servers[shard].NumElements()
	err := local.Router.InsertBatch(context.Background(), tok, []server.InsertOp{
		{List: 3, Element: server.StoredElement{Sealed: []byte{100}, TRS: 0.5, Group: 0}},
		{List: 4, Element: server.StoredElement{Sealed: []byte{101}, TRS: 0.5, Group: 99}},
		{List: 5, Element: server.StoredElement{Sealed: []byte{102}, TRS: 0.5, Group: 0}},
	})
	if !errors.Is(err, server.ErrForbidden) {
		t.Fatalf("cross-group insert err = %v, want ErrForbidden", err)
	}
	var be *server.BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("global op index not preserved: %v", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("shard %d", shard)) {
		t.Fatalf("error does not name the failing shard: %v", err)
	}
	if local.Servers[shard].NumElements() != before {
		t.Fatal("failing shard applied part of a rejected sub-batch")
	}
}

// failingShard wraps a transport and fails every batched query.
type failingShard struct {
	client.Transport
}

func (f failingShard) QueryBatch(context.Context, []crypt.Token, []server.ListQuery) (client.BatchQueryResult, error) {
	return client.BatchQueryResult{}, errors.New("shard down")
}

func TestRouterQueryBatchShardFailure(t *testing.T) {
	local, _, toks := newBatchCluster(t, 9)
	shards := make([]client.Transport, 3)
	for i, srv := range local.Servers {
		shards[i] = client.Local{S: srv}
	}
	shards[1] = failingShard{shards[1]}
	router, err := NewRouter(shards...)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]server.ListQuery, 9)
	for i := range queries {
		queries[i] = server.ListQuery{List: zerber.ListID(i), Offset: 0, Count: 10}
	}
	_, err = router.QueryBatch(context.Background(), toks, queries)
	if err == nil {
		t.Fatal("dead shard did not surface")
	}
	if !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), "shard down") {
		t.Fatalf("shard failure not attributed: %v", err)
	}
}

// TestClusterSearchBatchedMatchesSerial runs the acceptance
// comparison on a sharded deployment: batched multi-term search over
// the router returns the serial path's results in max(per-term
// rounds) round-trips.
func TestClusterSearchBatchedMatchesSerial(t *testing.T) {
	h := newClusterHarness(t, 3, 3)
	terms := h.c.TermsByDF()
	q := []corpus.TermID{terms[0], terms[20], terms[150]}

	serialRes, serialStats, err := h.cl.Search(context.Background(), q, 10, client.WithSerial())
	if err != nil {
		t.Fatal(err)
	}
	batchedRes, batchedStats, err := h.cl.Search(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialRes) != len(batchedRes) {
		t.Fatalf("serial %d results, batched %d", len(serialRes), len(batchedRes))
	}
	for i := range serialRes {
		if serialRes[i] != batchedRes[i] {
			t.Fatalf("rank %d: serial %+v, batched %+v", i, serialRes[i], batchedRes[i])
		}
	}
	if batchedStats.Requests != serialStats.Requests {
		t.Errorf("batched list requests %d, serial %d", batchedStats.Requests, serialStats.Requests)
	}
	if batchedStats.Rounds >= serialStats.Rounds {
		t.Errorf("batched rounds %d not below serial rounds %d", batchedStats.Rounds, serialStats.Rounds)
	}
}
