package plot

import (
	"strings"
	"testing"

	"zerberr/internal/stats"
)

func lineSeries() []stats.Series {
	return []stats.Series{
		{Name: "up", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
		{Name: "down", X: []float64{1, 2, 3, 4}, Y: []float64{4, 3, 2, 1}},
	}
}

func TestChartContainsMarkersAndLegend(t *testing.T) {
	out := Chart("test chart", lineSeries(), Options{Width: 40, Height: 10})
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("missing series markers")
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatal("missing legend entries")
	}
}

func TestChartLogAxesDropNonPositive(t *testing.T) {
	s := []stats.Series{{Name: "s", X: []float64{0, -1, 10, 100}, Y: []float64{5, 5, 1, 10}}}
	out := Chart("log", s, Options{LogX: true, LogY: true, Width: 30, Height: 8})
	if !strings.Contains(out, "100") {
		t.Fatalf("log chart should label max x=100:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", nil, Options{})
	if !strings.Contains(out, "no data") {
		t.Fatal("empty chart should say so")
	}
	out2 := Chart("allneg", []stats.Series{{Name: "s", X: []float64{-1}, Y: []float64{1}}}, Options{LogX: true})
	if !strings.Contains(out2, "no data") {
		t.Fatal("all-filtered chart should say no data")
	}
}

func TestChartSinglePoint(t *testing.T) {
	s := []stats.Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}
	out := Chart("one", s, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatal("single point not plotted")
	}
}

func TestChartAxisLabels(t *testing.T) {
	out := Chart("t", lineSeries(), Options{XLabel: "elements", YLabel: "overhead"})
	if !strings.Contains(out, "(elements)") || !strings.Contains(out, "overhead") {
		t.Fatal("axis labels missing")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]interface{}{
		{"alpha", 1.5},
		{"b", 123456.0},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header line wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("missing separator: %q", lines[1])
	}
	if !strings.Contains(lines[3], "1.235e+05") {
		t.Fatalf("numeric formatting wrong: %q", lines[3])
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]stats.Series{
		{Name: "b", X: []float64{1}, Y: []float64{2}},
		{Name: "a,x", X: []float64{3}, Y: []float64{4}},
	})
	want := "series,x,y\n\"a,x\",3,4\nb,1,2\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}
