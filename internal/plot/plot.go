// Package plot renders experiment results as ASCII charts, aligned
// tables and CSV, so every figure of the paper can be regenerated in a
// terminal without external tooling.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"zerberr/internal/stats"
)

// Options controls chart rendering.
type Options struct {
	// Width and Height are the plot area in characters; zero values
	// default to 72×20.
	Width, Height int
	// LogX and LogY switch the respective axis to log10 scale
	// (non-positive points are dropped, as on the paper's log-log
	// figures).
	LogX, LogY bool
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
}

// markers cycles per series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Chart renders the series into a text chart with axes, tick labels
// and a legend.
func Chart(title string, series []stats.Series, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 72
	}
	if opt.Height <= 0 {
		opt.Height = 20
	}
	type pt struct{ x, y float64 }
	var pts [][]pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		var ps []pt
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if opt.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if opt.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			ps = append(ps, pt{x, y})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
		pts = append(pts, ps)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if minX > maxX { // nothing plottable
		b.WriteString("  (no data)\n")
		return b.String()
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	grid := make([][]byte, opt.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, ps := range pts {
		m := markers[si%len(markers)]
		for _, p := range ps {
			cx := int(math.Round((p.x - minX) / (maxX - minX) * float64(opt.Width-1)))
			cy := int(math.Round((p.y - minY) / (maxY - minY) * float64(opt.Height-1)))
			row := opt.Height - 1 - cy
			if row >= 0 && row < opt.Height && cx >= 0 && cx < opt.Width {
				grid[row][cx] = m
			}
		}
	}
	axisVal := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	yTop := fmt.Sprintf("%.4g", axisVal(maxY, opt.LogY))
	yBot := fmt.Sprintf("%.4g", axisVal(minY, opt.LogY))
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	if opt.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opt.YLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		if i == 0 {
			label = fmt.Sprintf("%*s", labelW, yTop)
		}
		if i == opt.Height-1 {
			label = fmt.Sprintf("%*s", labelW, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", opt.Width))
	xLo := fmt.Sprintf("%.4g", axisVal(minX, opt.LogX))
	xHi := fmt.Sprintf("%.4g", axisVal(maxX, opt.LogX))
	pad := opt.Width - len(xLo) - len(xHi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s", strings.Repeat(" ", labelW), xLo, strings.Repeat(" ", pad), xHi)
	if opt.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", opt.XLabel)
	}
	b.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Table renders rows with aligned columns. Cells are formatted with
// %v; numeric alignment is right, strings left.
func Table(headers []string, rows [][]interface{}) string {
	cells := make([][]string, 0, len(rows)+1)
	cells = append(cells, headers)
	for _, row := range rows {
		r := make([]string, len(row))
		for i, c := range row {
			switch v := c.(type) {
			case float64:
				r[i] = fmt.Sprintf("%.4g", v)
			default:
				r[i] = fmt.Sprintf("%v", c)
			}
		}
		cells = append(cells, r)
	}
	widths := make([]int, len(headers))
	for _, row := range cells {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV renders the series as long-format CSV (series,x,y), sorted by
// series name then x, for machine consumption.
func CSV(series []stats.Series) string {
	sorted := append([]stats.Series(nil), series...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range sorted {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i])
		}
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
