package soak

import (
	"encoding/json"
	"time"
)

// Report is the one-line JSON summary a soak run emits. OK is the
// single pass/fail bit CI asserts on: within error budget and zero
// invariant violations of any class.
type Report struct {
	DurationSec float64 `json:"duration_sec"`

	// Load.
	Ops            uint64  `json:"ops"`
	Searches       uint64  `json:"searches"`
	ProvedSearches uint64  `json:"proved_searches"`
	Inserts        uint64  `json:"inserts"`
	Removes        uint64  `json:"removes"`
	RemovesSkipped uint64  `json:"removes_skipped"`
	OpsPerSec      float64 `json:"ops_per_sec"`

	// Error budget (SLO).
	Errors       uint64            `json:"errors"`
	ErrorRate    float64           `json:"error_rate"`
	ErrorBudget  float64           `json:"error_budget"`
	ErrorsByKind map[string]uint64 `json:"errors_by_kind,omitempty"`

	// Latency, milliseconds.
	SearchP50Ms float64 `json:"search_p50_ms"`
	SearchP99Ms float64 `json:"search_p99_ms"`
	WriteP50Ms  float64 `json:"write_p50_ms"`
	WriteP99Ms  float64 `json:"write_p99_ms"`

	// Faults injected.
	PrimaryKills     uint64 `json:"primary_kills"`
	ReplicaKills     uint64 `json:"replica_kills"`
	Restarts         uint64 `json:"restarts"`
	Migrations       uint64 `json:"migrations"`
	MigrationsFailed uint64 `json:"migrations_failed"`
	Resyncs          uint64 `json:"resyncs"`

	// Invariants.
	IdentityChecks     uint64   `json:"identity_checks"`
	IdentityViolations uint64   `json:"identity_violations"`
	IdentitySamples    []string `json:"identity_samples,omitempty"`
	EpochObserved      uint64   `json:"epoch_windows_observed"`
	EpochViolations    uint64   `json:"epoch_violations"`
	EpochSamples       []string `json:"epoch_samples,omitempty"`
	ProofViolations    uint64   `json:"proof_violations"`
	ProofSamples       []string `json:"proof_samples,omitempty"`

	// Oracle state at the end (present = must-serve elements).
	OraclePresent   int `json:"oracle_present"`
	OracleUncertain int `json:"oracle_uncertain"`

	OK bool `json:"ok"`
}

// JSON renders the report as one line (no trailing newline).
func (r *Report) JSON() string {
	b, err := json.Marshal(r)
	if err != nil {
		return `{"ok":false,"error":"report marshal failed"}`
	}
	return string(b)
}

// report assembles the final Report from the run's counters.
func (r *run) report(elapsed time.Duration) *Report {
	ops := r.ops.Load()
	errs := r.errTotal.Load()
	rate := 0.0
	if ops > 0 {
		rate = float64(errs) / float64(ops)
	}
	r.emu.Lock()
	byKind := make(map[string]uint64, len(r.byClass))
	for k, v := range r.byClass {
		byKind[k] = v
	}
	psamples := append([]string(nil), r.psamples...)
	r.emu.Unlock()
	present, uncertain := r.orc.counts()
	r.ch.vmu.Lock()
	idSamples := append([]string(nil), r.ch.samples...)
	r.ch.vmu.Unlock()

	rep := &Report{
		DurationSec: elapsed.Seconds(),

		Ops:            ops,
		Searches:       r.searches.Load(),
		ProvedSearches: r.proved.Load(),
		Inserts:        r.inserts.Load(),
		Removes:        r.removes.Load(),
		RemovesSkipped: r.removesSkipped.Load(),
		OpsPerSec:      float64(ops) / elapsed.Seconds(),

		Errors:       errs,
		ErrorRate:    rate,
		ErrorBudget:  r.cfg.ErrorBudget,
		ErrorsByKind: byKind,

		SearchP50Ms: r.searchLat.Quantile(0.50),
		SearchP99Ms: r.searchLat.Quantile(0.99),
		WriteP50Ms:  r.writeLat.Quantile(0.50),
		WriteP99Ms:  r.writeLat.Quantile(0.99),

		PrimaryKills:     r.ch.primaryKills.Load(),
		ReplicaKills:     r.ch.replicaKills.Load(),
		Restarts:         r.ch.restarts.Load(),
		Migrations:       r.ch.migrations.Load(),
		MigrationsFailed: r.ch.migrationsFailed.Load(),
		Resyncs:          r.ch.resyncs.Load(),

		IdentityChecks:     r.ch.identityChecks.Load(),
		IdentityViolations: r.ch.identityViolations.Load(),
		IdentitySamples:    idSamples,
		EpochObserved:      r.checker.observed.Load(),
		EpochViolations:    r.checker.violations.Load(),
		EpochSamples:       r.checker.samples(),
		ProofViolations:    r.proofViolations.Load(),
		ProofSamples:       psamples,

		OraclePresent:   present,
		OracleUncertain: uncertain,
	}
	rep.OK = rep.ErrorRate <= rep.ErrorBudget &&
		rep.IdentityViolations == 0 &&
		rep.EpochViolations == 0 &&
		rep.ProofViolations == 0 &&
		rep.MigrationsFailed == 0
	return rep
}
