// Package soak is the closed-loop soak/chaos harness behind
// `zerber-bench -run soak`: it boots a real multi-shard, replicated
// cluster of zerberd processes, drives it with a million-user zipfian
// op stream (internal/workload.Stream), injects faults — SIGKILL
// mid-WAL, restarts, replica kills, live migrations — and continuously
// asserts the repo's durability and verification claims as invariants:
//
//   - restart-identity: after every recovery, cluster answers are
//     element-identical to a shadow oracle of acknowledged writes;
//   - cache-epoch safety: one (list, version, window) never serves two
//     different contents, kills and restarts included;
//   - proof validity: WithProof searches never fail verification
//     against the honest cluster;
//   - SLOs: error rate within the configured budget, p99 tracked.
//
// The run emits a one-line JSON Report. See DESIGN.md "Soak & chaos".
package soak

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"time"
)

// Proc supervises one zerberd process. It remembers its own spawn
// arguments, so a SIGKILLed process can be restarted onto the same
// address and data directory (where WAL recovery resumes).
type Proc struct {
	// Name labels the process in logs ("s0-m1" = shard 0, member 1).
	Name string
	// Addr is the fixed listen address (host:port); restarts rebind it.
	Addr string
	// DataDir is the durable directory (WAL + snapshots).
	DataDir string

	binary string
	args   []string
	logf   func(format string, args ...interface{})

	cmd  *exec.Cmd
	done chan error // receives the wait result of the current cmd
}

// ProcConfig parameterizes StartProc.
type ProcConfig struct {
	// Binary is the zerberd executable path.
	Binary string
	// Name labels the process.
	Name string
	// Addr is the listen address; empty picks a free localhost port.
	Addr string
	// DataDir is the durable directory; it is created if missing.
	DataDir string
	// SecretFile holds the shared token-signing secret.
	SecretFile string
	// TokenTTL is the token lifetime (soak runs outlive the default).
	TokenTTL time.Duration
	// Users are repeated -user NAME=G1,G2 registrations.
	Users []string
	// ExtraArgs are appended verbatim (commit window, cache size, ...).
	ExtraArgs []string
	// Logf receives supervisor progress lines; nil silences them.
	Logf func(format string, args ...interface{})
}

// freePort reserves a localhost port by binding and releasing it.
// There is a small window in which another process could take it; the
// soak harness only races itself, and a clash fails loudly at spawn.
func freePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

// StartProc spawns a zerberd and waits for it to answer /v2/stats.
func StartProc(cfg ProcConfig) (*Proc, error) {
	addr := cfg.Addr
	if addr == "" {
		var err error
		addr, err = freePort()
		if err != nil {
			return nil, fmt.Errorf("soak: reserving port: %w", err)
		}
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("soak: data dir: %w", err)
	}
	args := []string{
		"-addr", addr,
		"-secret-file", cfg.SecretFile,
		"-data-dir", cfg.DataDir,
		"-token-ttl", cfg.TokenTTL.String(),
		"-log-format", "json",
	}
	for _, u := range cfg.Users {
		args = append(args, "-user", u)
	}
	args = append(args, cfg.ExtraArgs...)
	p := &Proc{
		Name:    cfg.Name,
		Addr:    addr,
		DataDir: cfg.DataDir,
		binary:  cfg.Binary,
		args:    args,
		logf:    cfg.Logf,
	}
	if p.logf == nil {
		p.logf = func(string, ...interface{}) {}
	}
	if err := p.start(); err != nil {
		return nil, err
	}
	return p, nil
}

// BaseURL is the process's HTTP root.
func (p *Proc) BaseURL() string { return "http://" + p.Addr }

// start spawns the process and waits for readiness. The process log
// is appended to <DataDir>/zerberd.log across restarts, so the
// pre-kill and post-restart halves of an incident sit in one file.
func (p *Proc) start() error {
	logPath := filepath.Join(p.DataDir, "zerberd.log")
	logFile, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("soak: %s: opening log: %w", p.Name, err)
	}
	cmd := exec.Command(p.binary, p.args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return fmt.Errorf("soak: %s: starting zerberd: %w", p.Name, err)
	}
	done := make(chan error, 1)
	go func() {
		done <- cmd.Wait()
		logFile.Close()
	}()
	p.cmd = cmd
	p.done = done
	if err := p.waitReady(15 * time.Second); err != nil {
		p.Kill()
		return fmt.Errorf("soak: %s: %w", p.Name, err)
	}
	p.logf("proc %s ready on %s (pid %d)", p.Name, p.Addr, cmd.Process.Pid)
	return nil
}

// waitReady polls /v2/stats until the server answers 200.
func (p *Proc) waitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(p.BaseURL() + "/v2/stats")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("stats answered %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		select {
		case err := <-p.done:
			return fmt.Errorf("zerberd exited before ready: %v (%s)", err, tailOf(filepath.Join(p.DataDir, "zerberd.log")))
		case <-time.After(50 * time.Millisecond):
		}
	}
	return fmt.Errorf("zerberd not ready after %s: %v", timeout, lastErr)
}

// tailOf returns the end of a log file for error context.
func tailOf(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return "no log"
	}
	const n = 400
	if len(b) > n {
		b = b[len(b)-n:]
	}
	return string(b)
}

// Alive reports whether the process is currently running.
func (p *Proc) Alive() bool {
	if p.cmd == nil {
		return false
	}
	select {
	case err := <-p.done:
		// Preserve the exit for a later Kill/Stop caller.
		p.done <- err
		return false
	default:
		return true
	}
}

// Kill delivers SIGKILL — the mid-WAL crash fault. The process gets
// no chance to flush, snapshot or say goodbye; everything it promised
// must be recoverable from what File.Write already handed the kernel.
func (p *Proc) Kill() error {
	if p.cmd == nil || p.cmd.Process == nil {
		return fmt.Errorf("soak: %s: not started", p.Name)
	}
	p.logf("proc %s: SIGKILL (pid %d)", p.Name, p.cmd.Process.Pid)
	_ = p.cmd.Process.Kill()
	<-p.done
	p.done <- fmt.Errorf("killed")
	return nil
}

// Stop delivers SIGTERM and waits for the graceful shutdown (final
// snapshot included) up to the context's deadline, then escalates to
// SIGKILL.
func (p *Proc) Stop(ctx context.Context) error {
	if p.cmd == nil || p.cmd.Process == nil {
		return fmt.Errorf("soak: %s: not started", p.Name)
	}
	p.logf("proc %s: SIGTERM (pid %d)", p.Name, p.cmd.Process.Pid)
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-p.done:
		p.done <- err
		return nil
	case <-ctx.Done():
		_ = p.cmd.Process.Kill()
		err := <-p.done
		p.done <- err
		return fmt.Errorf("soak: %s: graceful stop timed out, killed", p.Name)
	}
}

// Restart spawns the process again with the identical arguments: same
// address, same data directory, so it recovers its index from the WAL
// and snapshots the previous incarnation persisted.
func (p *Proc) Restart() error {
	if p.Alive() {
		return fmt.Errorf("soak: %s: still running", p.Name)
	}
	// Drain the recorded exit of the previous incarnation.
	select {
	case <-p.done:
	default:
	}
	p.logf("proc %s: restarting on %s", p.Name, p.Addr)
	return p.start()
}

// Pid returns the current process ID (0 if not running).
func (p *Proc) Pid() int {
	if p.cmd == nil || p.cmd.Process == nil || !p.Alive() {
		return 0
	}
	return p.cmd.Process.Pid
}

// WriteSecret creates a secret file for a cluster under dir.
func WriteSecret(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "secret")
	// Deterministic content is fine: the secret gates tokens within
	// this throwaway cluster only, and a fixed value keeps restarted
	// and migrated members token-compatible by construction.
	secret := []byte("soak-cluster-secret-0123456789abcdef")
	if err := os.WriteFile(path, secret, 0o600); err != nil {
		return "", err
	}
	return path, nil
}

// Secret returns the secret bytes a WriteSecret file holds.
func Secret(path string) ([]byte, error) { return os.ReadFile(path) }

// groupsSpec renders the -user registration for nGroups groups.
func groupsSpec(user string, nGroups int) string {
	s := user + "="
	for g := 0; g < nGroups; g++ {
		if g > 0 {
			s += ","
		}
		s += strconv.Itoa(g)
	}
	return s
}
