package soak

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	zerberr "zerberr"
	"zerberr/internal/cache"
	"zerberr/internal/client"
	"zerberr/internal/cluster"
	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/obs"
	"zerberr/internal/rank"
	"zerberr/internal/replica"
	"zerberr/internal/server"
	"zerberr/internal/workload"
)

// Config parameterizes one soak run.
type Config struct {
	// ZerberdPath is the zerberd binary to boot (required).
	ZerberdPath string
	// Dir is the working directory for secrets, data dirs and process
	// logs; empty creates a temporary one.
	Dir string

	// Shards is the routing-slot count; Replicas the member count per
	// slot (primary included), so Shards×Replicas processes boot.
	Shards   int
	Replicas int

	// Workers is the number of concurrent load-generator clients.
	Workers int
	// Duration bounds the run's wall clock.
	Duration time.Duration
	// MaxOps optionally bounds the op count (0 = duration-bound only).
	MaxOps uint64

	// Seed drives corpus generation and the op stream.
	Seed uint64
	// CorpusDocs / CorpusVocab size the seed corpus the cluster is
	// bootstrapped with (zeroes mean 300 docs / 3000 terms).
	CorpusDocs, CorpusVocab int

	// Stream shapes the op mix; zero-value fields take
	// workload.DefaultStreamConfig (a million zipfian users,
	// 0.90/0.07/0.03 search/insert/remove).
	Stream workload.StreamConfig
	// TopK is the k of issued searches (0 = 10).
	TopK int
	// ProofEvery asks every Nth search for a Merkle proof
	// (client.WithProof); 0 disables proved searches.
	ProofEvery uint64

	// FaultEvery is the pause between fault injections; 0 disables the
	// chaos loop (pure soak). FaultDowntime is how long a killed
	// process stays down before restart (0 = 500ms).
	FaultEvery    time.Duration
	FaultDowntime time.Duration

	// ErrorBudget is the tolerated fraction of failed operations
	// (faults make some failure inevitable: writes to a shard whose
	// primary is down fail until restart). Zero means 0.10.
	ErrorBudget float64

	// Out receives the one-line JSON report (nil = no report output).
	Out io.Writer
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...interface{})
}

// DefaultConfig returns laptop-friendly soak defaults.
func DefaultConfig() Config {
	return Config{
		Shards:        2,
		Replicas:      2,
		Workers:       4,
		Duration:      60 * time.Second,
		Seed:          1,
		TopK:          10,
		ProofEvery:    16,
		FaultEvery:    5 * time.Second,
		FaultDowntime: 500 * time.Millisecond,
		ErrorBudget:   0.10,
	}
}

// soakUser is the registered cluster identity every worker logs in as
// (the millions of simulated users exist in the workload layer; the
// cluster sees one all-groups enterprise account, like the experiment
// harness's reader).
const soakUser = "soak"

// withDefaults normalizes the config.
func (cfg Config) withDefaults() Config {
	def := DefaultConfig()
	if cfg.Shards <= 0 {
		cfg.Shards = def.Shards
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = def.Replicas
	}
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.Duration <= 0 {
		cfg.Duration = def.Duration
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.CorpusDocs <= 0 {
		cfg.CorpusDocs = 300
	}
	if cfg.CorpusVocab <= 0 {
		cfg.CorpusVocab = 3000
	}
	if cfg.TopK <= 0 {
		cfg.TopK = def.TopK
	}
	if cfg.FaultDowntime <= 0 {
		cfg.FaultDowntime = def.FaultDowntime
	}
	if cfg.ErrorBudget <= 0 {
		cfg.ErrorBudget = def.ErrorBudget
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	return cfg
}

// run carries one soak run's wiring.
type run struct {
	cfg    Config
	sys    *zerberr.System
	secret []byte

	router  *cluster.Router
	checker *epochChecker
	orc     *oracle
	ch      *chaos

	searchLat *obs.Histogram // milliseconds
	writeLat  *obs.Histogram

	ops            atomic.Uint64
	searches       atomic.Uint64
	proved         atomic.Uint64
	inserts        atomic.Uint64
	removes        atomic.Uint64
	removesSkipped atomic.Uint64

	errTotal        atomic.Uint64
	proofViolations atomic.Uint64

	emu      sync.Mutex
	byClass  map[string]uint64
	psamples []string
}

// countErr classifies one failed operation.
func (r *run) countErr(class string, err error) {
	r.errTotal.Add(1)
	r.emu.Lock()
	r.byClass[class]++
	r.emu.Unlock()
}

// proofViolation records a proved search failing verification — an
// invariant break against an honest cluster, never budgeted away.
func (r *run) proofViolation(err error) {
	r.proofViolations.Add(1)
	r.emu.Lock()
	if len(r.psamples) < 8 {
		r.psamples = append(r.psamples, err.Error())
	}
	r.emu.Unlock()
	r.cfg.Logf("PROOF VIOLATION: %v", err)
}

// Run executes one soak: boot cluster, bootstrap the corpus, drive
// the op stream from Workers clients while the chaos loop injects
// faults, then emit the report. The returned Report is also written
// to cfg.Out as one JSON line. Run fails (error, nil report) only on
// harness problems — invariant violations are reported, not errored,
// so a CI job can upload the report and then assert on it.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.ZerberdPath == "" {
		return nil, errors.New("soak: Config.ZerberdPath is required")
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "zerber-soak-*")
		if err != nil {
			return nil, err
		}
		cfg.Dir = dir
	}
	start := time.Now()

	// Offline phase: corpus, merge plan, RSTF store, group keys. The
	// in-process server Setup builds is unused — the cluster of real
	// zerberd processes is the system under test.
	p := corpus.ProfileStudIP()
	p.NumDocs = cfg.CorpusDocs
	p.VocabSize = cfg.CorpusVocab
	c := corpus.Generate(p, cfg.Seed)
	zcfg := zerberr.DefaultConfig()
	zcfg.Seed = cfg.Seed
	zcfg.SkipBaseline = true
	sys, err := zerberr.Setup(c, zcfg)
	if err != nil {
		return nil, fmt.Errorf("soak: setup: %w", err)
	}

	secretFile, err := WriteSecret(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("soak: secret: %w", err)
	}
	secret, err := Secret(secretFile)
	if err != nil {
		return nil, err
	}

	r := &run{
		cfg:       cfg,
		sys:       sys,
		secret:    secret,
		orc:       newOracle(),
		searchLat: obs.NewHistogram(nil),
		writeLat:  obs.NewHistogram(nil),
		byClass:   make(map[string]uint64),
	}

	// Boot Shards×Replicas zerberd processes and wire the router over
	// the replica sets.
	boot := func(shard, gen, members int) (*shardState, error) {
		return bootShard(cfg, secretFile, secret, sys.Corpus.Groups, shard, gen, members)
	}
	shards := make([]*shardState, cfg.Shards)
	transports := make([]client.Transport, cfg.Shards)
	for i := range shards {
		s, err := boot(i, 0, cfg.Replicas)
		if err != nil {
			for _, prev := range shards[:i] {
				prev.stopAll(cfg.Logf)
			}
			return nil, err
		}
		shards[i] = s
		transports[i] = s.set
	}
	defer func() {
		for _, s := range shards {
			s.stopAll(cfg.Logf)
		}
	}()
	router, err := cluster.NewRouter(transports...)
	if err != nil {
		return nil, err
	}
	router.SetCache(cache.New(32 << 20))
	r.router = router
	r.checker = newEpochChecker(router)

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	toks, err := r.checker.Login(runCtx, soakUser)
	if err != nil {
		return nil, fmt.Errorf("soak: login: %w", err)
	}
	r.ch = &chaos{
		cfg:     cfg,
		router:  router,
		checker: r.checker,
		orc:     r.orc,
		shards:  shards,
		toks:    toks,
		logf:    cfg.Logf,
		boot:    boot,
	}

	// Bootstrap: index the whole corpus through the cluster, recording
	// every acknowledged sealed element in the oracle.
	if err := r.bootstrap(runCtx); err != nil {
		return nil, fmt.Errorf("soak: bootstrap: %w", err)
	}
	cfg.Logf("soak: bootstrap done: %d docs sealed into the oracle in %s",
		sys.Corpus.NumDocs(), time.Since(start).Round(time.Millisecond))

	// Drive: dispatcher fans the deterministic op stream to workers
	// partitioned by simulated user (one user's ops stay ordered);
	// chaos injects faults and runs quiesced identity checks.
	var wg sync.WaitGroup
	chans := make([]chan workload.Op, cfg.Workers)
	for w := range chans {
		chans[w] = make(chan workload.Op, 64)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := r.worker(runCtx, chans[w]); err != nil && runCtx.Err() == nil {
				cfg.Logf("soak: worker %d: %v", w, err)
			}
		}(w)
	}
	var chaosWG sync.WaitGroup
	if cfg.FaultEvery > 0 {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			r.ch.run(runCtx)
		}()
	}
	streamCfg := cfg.Stream
	issued := uint64(0)
	for op := range workload.Stream(sys.Corpus, streamCfg, cfg.Seed) {
		if runCtx.Err() != nil {
			break
		}
		if cfg.MaxOps > 0 && issued >= cfg.MaxOps {
			break
		}
		select {
		case chans[int(op.User)%cfg.Workers] <- op:
			issued++
		case <-runCtx.Done():
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	cancel()
	chaosWG.Wait()

	// Final quiesced identity check against the settled cluster.
	finalCtx, finalCancel := context.WithTimeout(context.Background(), 60*time.Second)
	r.ch.identityCheck(finalCtx)
	finalCancel()

	rep := r.report(time.Since(start))
	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, rep.JSON())
	}
	return rep, nil
}

// bootShard spawns one routing slot's member processes and builds the
// replica set over them.
func bootShard(cfg Config, secretFile string, secret []byte, groups, shard, gen, members int) (*shardState, error) {
	s := &shardState{gen: gen}
	mac := server.AdminMAC(secret)
	for m := 0; m < members; m++ {
		name := fmt.Sprintf("s%d-g%d-m%d", shard, gen, m)
		p, err := StartProc(ProcConfig{
			Binary:     cfg.ZerberdPath,
			Name:       name,
			DataDir:    filepath.Join(cfg.Dir, name),
			SecretFile: secretFile,
			TokenTTL:   24 * time.Hour,
			Users:      []string{groupsSpec(soakUser, groups)},
			Logf:       cfg.Logf,
		})
		if err != nil {
			s.stopAll(cfg.Logf)
			return nil, err
		}
		s.procs = append(s.procs, p)
		s.trans = append(s.trans, client.HTTP{
			BaseURL:  p.BaseURL(),
			Retry:    client.DefaultRetryPolicy(),
			AdminMAC: mac,
		})
	}
	ts := make([]client.Transport, len(s.trans))
	for i, t := range s.trans {
		ts[i] = t
	}
	set, err := replica.NewSet(ts[0], ts[1:]...)
	if err != nil {
		s.stopAll(cfg.Logf)
		return nil, err
	}
	s.set = set
	return s, nil
}

// newClient builds one worker's search client over the epoch-checked
// cluster transport and logs it in.
func (r *run) newClient(ctx context.Context) (*client.Client, map[int]crypt.Token, error) {
	cl, err := client.New(r.checker, client.Config{
		Plan:  r.sys.Plan,
		Store: r.sys.Store,
		Codec: r.sys.Config().Codec,
		Keys:  r.sys.Keys,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := cl.Login(ctx, soakUser); err != nil {
		return nil, nil, err
	}
	toks, err := r.checker.Login(ctx, soakUser)
	if err != nil {
		return nil, nil, err
	}
	byGrp := make(map[int]crypt.Token, len(toks))
	for _, tok := range toks {
		byGrp[tok.Group] = tok
	}
	return cl, byGrp, nil
}

// sealDoc seals one document's posting elements exactly like
// client.IndexDocument does, but returns the ops so the caller can
// mirror the acknowledged sealed bytes into the oracle (IndexDocument
// discards them, and randomized codecs cannot re-derive them).
func sealDoc(cl *client.Client, sys *zerberr.System, d *corpus.Document) ([]server.InsertOp, error) {
	key, ok := sys.Keys[d.Group]
	if !ok {
		return nil, fmt.Errorf("soak: no key for group %d", d.Group)
	}
	codec := sys.Config().Codec
	terms := make([]corpus.TermID, 0, len(d.TF))
	for t := range d.TF {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
	ops := make([]server.InsertOp, 0, len(terms))
	for _, term := range terms {
		score := rank.NormTF(d.TF[term], d.Length)
		sealed, err := codec.Seal(crypt.Element{Doc: d.ID, Term: term, Score: score}, key)
		if err != nil {
			return nil, err
		}
		ops = append(ops, server.InsertOp{
			List:    cl.ListFor(term),
			Element: server.StoredElement{Sealed: sealed, TRS: sys.Store.TRS(term, d.ID, score), Group: d.Group},
		})
	}
	return ops, nil
}

// bootstrap seals and uploads the whole corpus through the cluster,
// batched per group, and records every acknowledged element.
func (r *run) bootstrap(ctx context.Context) error {
	cl, byGrp, err := r.newClient(ctx)
	if err != nil {
		return err
	}
	byGroup := make(map[int][]server.InsertOp)
	for _, d := range r.sys.Corpus.Docs {
		if d.Length == 0 {
			continue
		}
		ops, err := sealDoc(cl, r.sys, d)
		if err != nil {
			return err
		}
		byGroup[d.Group] = append(byGroup[d.Group], ops...)
	}
	groups := make([]int, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		ops := byGroup[g]
		for start := 0; start < len(ops); start += server.MaxBatchOps {
			end := min(start+server.MaxBatchOps, len(ops))
			if err := r.checker.InsertBatch(ctx, byGrp[g], ops[start:end]); err != nil {
				return fmt.Errorf("group %d ops %d-%d: %w", g, start, end-1, err)
			}
			for _, op := range ops[start:end] {
				r.orc.insertAcked(op.List, op.Element.Sealed)
			}
		}
	}
	return nil
}

// worker drains one op channel against its own client. Each op runs
// under the chaos gate (shared), so the identity check can quiesce
// the cluster by taking it exclusively.
func (r *run) worker(ctx context.Context, ops <-chan workload.Op) error {
	cl, byGrp, err := r.newClient(ctx)
	if err != nil {
		return err
	}
	// docSeals remembers the exact acknowledged sealed bytes per
	// streamed document, so a later OpRemove targets what the insert
	// really uploaded.
	docSeals := make(map[corpus.DocID][]server.InsertOp)
	for op := range ops {
		if ctx.Err() != nil {
			// Keep draining so the dispatcher never blocks on a full
			// channel during shutdown.
			continue
		}
		r.ch.gate.RLock()
		r.execute(ctx, cl, byGrp, docSeals, op)
		r.ch.gate.RUnlock()
	}
	return nil
}

// execute runs one streamed op and folds the outcome into oracle and
// counters.
func (r *run) execute(ctx context.Context, cl *client.Client, byGrp map[int]crypt.Token, docSeals map[corpus.DocID][]server.InsertOp, op workload.Op) {
	r.ops.Add(1)
	switch op.Kind {
	case workload.OpSearch:
		var opts []client.SearchOption
		proved := r.cfg.ProofEvery > 0 && op.Seq%r.cfg.ProofEvery == 0
		if proved {
			opts = append(opts, client.WithProof())
			r.proved.Add(1)
		}
		t0 := time.Now()
		_, _, err := cl.Search(ctx, op.Terms, r.cfg.TopK, opts...)
		r.searchLat.Observe(float64(time.Since(t0).Microseconds()) / 1000)
		switch {
		case err == nil:
			r.searches.Add(1)
		case errors.Is(err, client.ErrProofInvalid):
			r.proofViolation(err)
		case ctx.Err() != nil:
			// Shutdown, not a server failure.
		default:
			r.countErr("search", err)
		}
	case workload.OpInsert:
		ops, err := sealDoc(cl, r.sys, op.Doc)
		if err != nil || len(ops) == 0 {
			if err != nil {
				r.countErr("seal", err)
			}
			return
		}
		t0 := time.Now()
		err = r.checker.InsertBatch(ctx, byGrp[op.Doc.Group], ops)
		r.writeLat.Observe(float64(time.Since(t0).Microseconds()) / 1000)
		if err == nil {
			r.inserts.Add(1)
			for _, o := range ops {
				r.orc.insertAcked(o.List, o.Element.Sealed)
			}
			docSeals[op.Doc.ID] = ops
			return
		}
		// Ambiguous: the batch (or part of it, mid-fault) may have
		// landed. Track every element as uncertain and never target
		// this document with a remove.
		for _, o := range ops {
			r.orc.insertFailed(o.List, o.Element.Sealed)
		}
		if ctx.Err() == nil {
			r.countErr("insert", err)
		}
	case workload.OpRemove:
		ins, ok := docSeals[op.Doc.ID]
		if !ok {
			// The matching insert failed (or predates MaxLiveDocsPerUser
			// eviction in a resumed stream); nothing certain to remove.
			r.removesSkipped.Add(1)
			return
		}
		delete(docSeals, op.Doc.ID)
		rops := make([]server.RemoveOp, len(ins))
		for i, o := range ins {
			rops[i] = server.RemoveOp{List: o.List, Sealed: o.Element.Sealed}
		}
		t0 := time.Now()
		err := r.checker.RemoveBatch(ctx, byGrp[op.Doc.Group], rops)
		r.writeLat.Observe(float64(time.Since(t0).Microseconds()) / 1000)
		if err == nil {
			r.removes.Add(1)
			for _, o := range rops {
				r.orc.removeAcked(o.List, o.Sealed)
			}
			return
		}
		for _, o := range rops {
			r.orc.removeFailed(o.List, o.Sealed)
		}
		if ctx.Err() == nil {
			r.countErr("remove", err)
		}
	}
}
