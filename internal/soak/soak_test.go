package soak

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/crypt"
	"zerberr/internal/server"
	"zerberr/internal/workload"
	"zerberr/internal/zerber"
)

// zerberdBin is the scratch zerberd every test in this package boots;
// TestMain builds it once.
var zerberdBin string

func TestMain(m *testing.M) {
	path, cleanup, err := BuildZerberd(context.Background(), "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "building zerberd: %v\n", err)
		os.Exit(1)
	}
	zerberdBin = path
	code := m.Run()
	cleanup()
	os.Exit(code)
}

// startScratch boots one zerberd on a scratch data dir with one
// all-groups test user and returns the proc plus its transport.
func startScratch(t *testing.T, name string) (*Proc, client.HTTP) {
	t.Helper()
	dir := t.TempDir()
	secretFile, err := WriteSecret(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := StartProc(ProcConfig{
		Binary:     zerberdBin,
		Name:       name,
		DataDir:    filepath.Join(dir, "data"),
		SecretFile: secretFile,
		TokenTTL:   time.Hour,
		Users:      []string{"tester=0,1"},
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.Alive() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			p.Stop(ctx)
		}
	})
	secret, err := Secret(secretFile)
	if err != nil {
		t.Fatal(err)
	}
	return p, client.HTTP{
		BaseURL:  p.BaseURL(),
		Retry:    client.DefaultRetryPolicy(),
		AdminMAC: server.AdminMAC(secret),
	}
}

// seedElements inserts n sealed elements into one list and returns
// the tokens plus the sealed payloads the server acknowledged.
func seedElements(t *testing.T, tr client.HTTP, list zerber.ListID, n int) ([]crypt.Token, [][]byte) {
	t.Helper()
	ctx := context.Background()
	toks, err := tr.Login(ctx, "tester")
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]server.InsertOp, n)
	sealed := make([][]byte, n)
	for i := range ops {
		sealed[i] = []byte(fmt.Sprintf("sealed-element-%03d", i))
		ops[i] = server.InsertOp{
			List:    list,
			Element: server.StoredElement{Sealed: sealed[i], TRS: float64(n-i) / float64(n), Group: toks[0].Group},
		}
	}
	if err := tr.InsertBatch(ctx, toks[0], ops); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	return toks, sealed
}

// requireServed asserts one member serves exactly the given sealed set
// on the list.
func requireServed(t *testing.T, tr client.HTTP, toks []crypt.Token, list zerber.ListID, sealed [][]byte) {
	t.Helper()
	served, err := pageList(context.Background(), tr, toks, list)
	if err != nil {
		t.Fatalf("pageList: %v", err)
	}
	if len(served) != len(sealed) {
		t.Fatalf("served %d elements, want %d", len(served), len(sealed))
	}
	for _, s := range sealed {
		if !served[string(s)] {
			t.Fatalf("acknowledged element %q lost", s)
		}
	}
}

func TestProcLifecycle(t *testing.T) {
	p, _ := startScratch(t, "lifecycle")
	if !p.Alive() {
		t.Fatal("freshly started proc not alive")
	}
	if p.Pid() == 0 {
		t.Fatal("alive proc has pid 0")
	}
	if err := p.Kill(); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if p.Alive() {
		t.Fatal("proc alive after SIGKILL")
	}
	if err := p.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if !p.Alive() {
		t.Fatal("proc not alive after restart")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if p.Alive() {
		t.Fatal("proc alive after graceful stop")
	}
}

// TestKillMidWALPreservesAckedWrites is the core restart-identity
// fault: SIGKILL immediately after acknowledged writes (no graceful
// snapshot), restart onto the same data dir, and require every
// acknowledged element back. Whatever the server promised before the
// kill must be recoverable from the WAL alone.
func TestKillMidWALPreservesAckedWrites(t *testing.T) {
	p, tr := startScratch(t, "killwal")
	const list = zerber.ListID(7)
	toks, sealed := seedElements(t, tr, list, 50)

	if err := p.Kill(); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if err := p.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	requireServed(t, tr, toks, list, sealed)
}

// TestGracefulStopPreservesAckedWrites is the same identity assertion
// over the clean path: SIGTERM (final snapshot) then restart.
func TestGracefulStopPreservesAckedWrites(t *testing.T) {
	p, tr := startScratch(t, "graceful")
	const list = zerber.ListID(3)
	toks, sealed := seedElements(t, tr, list, 50)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := p.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	requireServed(t, tr, toks, list, sealed)
}

// TestRepeatedKillRestartCycles hammers the kill/restart edge: each
// cycle adds writes, SIGKILLs, restarts, and requires the union of
// everything ever acknowledged.
func TestRepeatedKillRestartCycles(t *testing.T) {
	p, tr := startScratch(t, "cycles")
	const list = zerber.ListID(11)
	ctx := context.Background()
	toks, err := tr.Login(ctx, "tester")
	if err != nil {
		t.Fatal(err)
	}
	var all [][]byte
	for cycle := 0; cycle < 3; cycle++ {
		ops := make([]server.InsertOp, 20)
		for i := range ops {
			s := []byte(fmt.Sprintf("cycle-%d-element-%03d", cycle, i))
			all = append(all, s)
			ops[i] = server.InsertOp{
				List:    list,
				Element: server.StoredElement{Sealed: s, TRS: 0.5, Group: toks[0].Group},
			}
		}
		if err := tr.InsertBatch(ctx, toks[0], ops); err != nil {
			t.Fatalf("cycle %d: InsertBatch: %v", cycle, err)
		}
		if err := p.Kill(); err != nil {
			t.Fatalf("cycle %d: Kill: %v", cycle, err)
		}
		if err := p.Restart(); err != nil {
			t.Fatalf("cycle %d: Restart: %v", cycle, err)
		}
		requireServed(t, tr, toks, list, all)
	}
}

// TestOracleResolution covers the uncertainty protocol: ambiguous
// failures may resolve either way, acknowledged writes may not.
func TestOracleResolution(t *testing.T) {
	o := newOracle()
	const list = zerber.ListID(1)
	o.insertAcked(list, []byte("acked"))
	o.insertFailed(list, []byte("maybe"))

	// The server holding both is fine on any member.
	if vs := o.checkList(list, map[string]bool{"acked": true, "maybe": true}, "m0"); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
	// A replica missing the uncertain element is fine too.
	if vs := o.checkList(list, map[string]bool{"acked": true}, "m1"); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
	// Losing the acked element is a violation; serving a never-sent
	// element is a violation.
	if vs := o.checkList(list, map[string]bool{"maybe": true, "alien": true}, "m0"); len(vs) != 2 {
		t.Fatalf("want 2 violations, got %v", vs)
	}

	// Primary doesn't hold "maybe" -> confirmed rejected, dropped.
	o.resolveList(list, map[string]bool{"acked": true})
	present, uncertain := o.counts()
	if present != 1 || uncertain != 0 {
		t.Fatalf("counts = (%d,%d), want (1,0)", present, uncertain)
	}
	// An uncertain entry the primary DOES hold stays uncertain (a
	// replica that never saw the ambiguous write may lack it).
	o.insertFailed(list, []byte("maybe2"))
	o.resolveList(list, map[string]bool{"acked": true, "maybe2": true})
	if _, uncertain = o.counts(); uncertain != 1 {
		t.Fatalf("resolved entry the primary holds; want it kept uncertain")
	}

	// Ambiguous remove: present -> uncertainRemove; primary no longer
	// holding it confirms the remove applied.
	o.removeFailed(list, []byte("acked"))
	o.resolveList(list, map[string]bool{"maybe2": true})
	present, _ = o.counts()
	if present != 0 {
		t.Fatalf("confirmed remove left present = %d", present)
	}
}

// TestEpochCheckerFlagsRemintedVersion feeds the checker two different
// contents under one (list, version, window) and requires a violation
// — and none for honest re-serves.
func TestEpochCheckerFlagsRemintedVersion(t *testing.T) {
	c := newEpochChecker(nil)
	q := server.ListQuery{List: 5, Offset: 0, Count: 10}
	resp := server.QueryResponse{
		Version:  42,
		Elements: []server.StoredElement{{Sealed: []byte("a"), TRS: 0.9, Group: 0}},
	}
	c.observe(q, resp)
	c.observe(q, resp) // identical re-serve: fine
	if v := c.violations.Load(); v != 0 {
		t.Fatalf("honest re-serve flagged: %d violations", v)
	}
	forged := resp
	forged.Elements = []server.StoredElement{{Sealed: []byte("b"), TRS: 0.9, Group: 0}}
	c.observe(q, forged)
	if v := c.violations.Load(); v != 1 {
		t.Fatalf("reminted version not flagged: %d violations", v)
	}
	// Versionless and unchanged responses carry no epoch promise.
	c.observe(q, server.QueryResponse{Version: 0, Elements: forged.Elements})
	c.observe(q, server.QueryResponse{Version: 42, Unchanged: true})
	if v := c.violations.Load(); v != 1 {
		t.Fatalf("versionless/unchanged observation flagged: %d violations", v)
	}
}

// TestSoakSmoke is a bounded end-to-end run: tiny cluster, a few
// seconds of load, at least one forced fault, zero violations.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke boots a process cluster")
	}
	cfg := DefaultConfig()
	cfg.ZerberdPath = zerberdBin
	cfg.Dir = t.TempDir()
	cfg.Shards = 2
	cfg.Replicas = 2
	cfg.Workers = 2
	cfg.Duration = 8 * time.Second
	cfg.CorpusDocs = 80
	cfg.CorpusVocab = 1000
	cfg.FaultEvery = 2 * time.Second
	cfg.ProofEvery = 8
	cfg.Stream = workload.StreamConfig{Users: 10_000}
	cfg.Logf = t.Logf

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("report: %s", rep.JSON())
	if rep.Ops == 0 || rep.Searches == 0 {
		t.Fatal("soak drove no load")
	}
	if rep.PrimaryKills+rep.ReplicaKills == 0 {
		t.Fatal("no kill was injected")
	}
	if rep.Restarts == 0 {
		t.Fatal("no restart happened")
	}
	if rep.IdentityChecks == 0 {
		t.Fatal("no identity check ran")
	}
	if rep.ProvedSearches == 0 {
		t.Fatal("no proved search ran")
	}
	if !rep.OK {
		t.Fatalf("soak not OK: %s", rep.JSON())
	}
}
