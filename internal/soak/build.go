package soak

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
)

// BuildZerberd compiles the repo's zerberd into dir (a temp dir when
// empty) and returns the binary path plus a cleanup func. The soak
// harness needs a real executable to SIGKILL; callers that already
// have one (CI builds it once) pass it via Config.ZerberdPath instead.
func BuildZerberd(ctx context.Context, dir string) (path string, cleanup func(), err error) {
	cleanup = func() {}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "zerberd-bin-*")
		if err != nil {
			return "", cleanup, err
		}
		dir = tmp
		cleanup = func() { os.RemoveAll(tmp) }
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", cleanup, err
	}
	path = filepath.Join(dir, "zerberd")
	cmd := exec.CommandContext(ctx, "go", "build", "-o", path, "zerberr/cmd/zerberd")
	if out, err := cmd.CombinedOutput(); err != nil {
		cleanup()
		return "", func() {}, fmt.Errorf("soak: go build zerberd: %v: %s", err, out)
	}
	return path, cleanup, nil
}
