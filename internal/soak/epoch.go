package soak

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"zerberr/internal/client"
	"zerberr/internal/crypt"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// epochChecker wraps the cluster transport and enforces cache-epoch
// safety on every read that flows through it: the content served for
// one (list, version, offset, count) window must be identical every
// time it is observed — across server caches, router revalidation,
// replica hedging, SIGKILLs and restarts. A divergence means some
// layer re-minted a version for different content (exactly the bug
// the per-durable-dir version epoch exists to prevent) or served a
// stale window as current.
//
// The checker is a client.Transport, so every soak client and the
// identity check observe through it without any of them cooperating.
type epochChecker struct {
	t client.Transport

	mu   sync.Mutex
	seen map[windowKey]uint64 // -> content hash

	observed   atomic.Uint64
	violations atomic.Uint64
	resets     atomic.Uint64

	vmu    sync.Mutex
	sample []string // first few violation descriptions
}

// maxWindows bounds the fingerprint map; past it the map resets. A
// reset only forgets history (weakening, never faking, the check).
const maxWindows = 1 << 20

type windowKey struct {
	list    zerber.ListID
	version uint64
	offset  int
	count   int
}

func newEpochChecker(t client.Transport) *epochChecker {
	return &epochChecker{t: t, seen: make(map[windowKey]uint64)}
}

// contentHash fingerprints a served window's visible content.
func contentHash(resp server.QueryResponse) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, el := range resp.Elements {
		binary.BigEndian.PutUint64(b[:], uint64(len(el.Sealed)))
		h.Write(b[:])
		h.Write(el.Sealed)
		binary.BigEndian.PutUint64(b[:], uint64(int64(el.TRS*1e12)))
		h.Write(b[:])
		binary.BigEndian.PutUint64(b[:], uint64(el.Group))
		h.Write(b[:])
	}
	if resp.Exhausted {
		h.Write([]byte{1})
	}
	return h.Sum64()
}

// observe checks one response against the fingerprint registry.
// Unchanged markers carry no content and versionless responses (v=0,
// in-memory backends) carry no epoch promise; both pass through.
func (c *epochChecker) observe(q server.ListQuery, resp server.QueryResponse) {
	if resp.Unchanged || resp.Version == 0 {
		return
	}
	key := windowKey{list: q.List, version: resp.Version, offset: q.Offset, count: q.Count}
	hash := contentHash(resp)
	c.mu.Lock()
	if len(c.seen) >= maxWindows {
		c.seen = make(map[windowKey]uint64)
		c.resets.Add(1)
	}
	prev, ok := c.seen[key]
	if !ok {
		c.seen[key] = hash
	}
	c.mu.Unlock()
	c.observed.Add(1)
	if ok && prev != hash {
		c.violations.Add(1)
		c.vmu.Lock()
		if len(c.sample) < 8 {
			c.sample = append(c.sample, fmt.Sprintf(
				"list %d version %d window [%d,%d): two different contents observed",
				q.List, resp.Version, q.Offset, q.Offset+q.Count))
		}
		c.vmu.Unlock()
	}
}

func (c *epochChecker) samples() []string {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	return append([]string(nil), c.sample...)
}

// Login implements client.Transport.
func (c *epochChecker) Login(ctx context.Context, user string) ([]crypt.Token, error) {
	return c.t.Login(ctx, user)
}

// Insert implements client.Transport.
func (c *epochChecker) Insert(ctx context.Context, tok crypt.Token, list zerber.ListID, el server.StoredElement) error {
	return c.t.Insert(ctx, tok, list, el)
}

// Remove implements client.Transport.
func (c *epochChecker) Remove(ctx context.Context, tok crypt.Token, list zerber.ListID, sealed []byte) error {
	return c.t.Remove(ctx, tok, list, sealed)
}

// InsertBatch implements client.Transport.
func (c *epochChecker) InsertBatch(ctx context.Context, tok crypt.Token, ops []server.InsertOp) error {
	return c.t.InsertBatch(ctx, tok, ops)
}

// RemoveBatch implements client.Transport.
func (c *epochChecker) RemoveBatch(ctx context.Context, tok crypt.Token, ops []server.RemoveOp) error {
	return c.t.RemoveBatch(ctx, tok, ops)
}

// Query implements client.Transport.
func (c *epochChecker) Query(ctx context.Context, toks []crypt.Token, list zerber.ListID, offset, count int) (server.QueryResponse, int, error) {
	resp, n, err := c.t.Query(ctx, toks, list, offset, count)
	if err == nil {
		c.observe(server.ListQuery{List: list, Offset: offset, Count: count}, resp)
	}
	return resp, n, err
}

// QueryBatch implements client.Transport.
func (c *epochChecker) QueryBatch(ctx context.Context, toks []crypt.Token, queries []server.ListQuery) (client.BatchQueryResult, error) {
	res, err := c.t.QueryBatch(ctx, toks, queries)
	if err == nil && len(res.Responses) == len(queries) {
		for i, resp := range res.Responses {
			c.observe(queries[i], resp)
		}
	}
	return res, err
}

var _ client.Transport = (*epochChecker)(nil)
