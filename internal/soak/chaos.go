package soak

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/cluster"
	"zerberr/internal/crypt"
	"zerberr/internal/replica"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// shardState is the harness's bookkeeping for one routing slot: the
// replica set the router serves it through, and the processes plus
// per-member transports behind it. Migration replaces the whole
// state; kills and restarts mutate procs in place.
type shardState struct {
	set   *replica.Set
	procs []*Proc       // index 0 = primary
	trans []client.HTTP // parallel to procs
	gen   int           // bumped per migration (names fresh members)
}

// chaos is the fault injector plus invariant checker. It owns the
// quiesce gate: workers hold it shared per operation, the identity
// check holds it exclusively so it observes a cluster with no write
// in flight.
type chaos struct {
	cfg     Config
	router  *cluster.Router
	checker *epochChecker
	orc     *oracle
	shards  []*shardState
	gate    sync.RWMutex
	toks    []crypt.Token // all-groups read tokens for paging
	logf    func(format string, args ...interface{})
	// boot spawns a fresh replica set for one slot (migration target).
	boot func(shard, gen, members int) (*shardState, error)

	primaryKills     atomic.Uint64
	replicaKills     atomic.Uint64
	restarts         atomic.Uint64
	migrations       atomic.Uint64
	migrationsFailed atomic.Uint64
	resyncs          atomic.Uint64

	identityChecks     atomic.Uint64
	identityViolations atomic.Uint64

	vmu     sync.Mutex
	samples []string
}

// addViolations records identity violations with a bounded sample.
func (c *chaos) addViolations(vs []string) {
	if len(vs) == 0 {
		return
	}
	c.identityViolations.Add(uint64(len(vs)))
	c.vmu.Lock()
	for _, v := range vs {
		if len(c.samples) >= 8 {
			break
		}
		c.samples = append(c.samples, v)
	}
	c.vmu.Unlock()
	for _, v := range vs {
		c.logf("IDENTITY VIOLATION: %s", v)
	}
}

// run is the chaos loop: alternating fault classes on a rotating
// shard, each followed by recovery and a quiesced identity check. The
// order — primary kill, live migration, replica kill — guarantees a
// bounded run still covers at least one SIGKILL and one migration
// before repeating.
func (c *chaos) run(ctx context.Context) {
	kind := 0
	shard := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(c.cfg.FaultEvery):
		}
		switch kind % 3 {
		case 0:
			c.killMember(ctx, shard, 0)
		case 1:
			c.migrateShard(ctx, shard)
		case 2:
			// Kill the last member; with no replicas configured this
			// degrades to another primary kill.
			c.killMember(ctx, shard, len(c.shards[shard].procs)-1)
		}
		if ctx.Err() != nil {
			return
		}
		c.identityCheck(ctx)
		kind++
		shard = (shard + 1) % len(c.shards)
	}
}

// killMember SIGKILLs one member, leaves the cluster degraded for the
// configured downtime, restarts it and resyncs the set.
func (c *chaos) killMember(ctx context.Context, shard, member int) {
	s := c.shards[shard]
	p := s.procs[member]
	if !p.Alive() {
		return
	}
	role := "replica"
	if member == 0 {
		role = "primary"
		c.primaryKills.Add(1)
	} else {
		c.replicaKills.Add(1)
	}
	c.logf("chaos: SIGKILL %s %s of shard %d", role, p.Name, shard)
	if err := p.Kill(); err != nil {
		c.logf("chaos: kill %s: %v", p.Name, err)
		return
	}
	select {
	case <-ctx.Done():
	case <-time.After(c.cfg.FaultDowntime):
	}
	if err := p.Restart(); err != nil {
		c.logf("chaos: restart %s FAILED: %v", p.Name, err)
		return
	}
	c.restarts.Add(1)
	c.resyncSet(ctx, shard)
}

// resyncSet converges stale replicas onto the shard's primary.
func (c *chaos) resyncSet(ctx context.Context, shard int) {
	s := c.shards[shard]
	if s.set.Members() <= 1 {
		return
	}
	if err := s.set.Resync(ctx); err != nil {
		c.logf("chaos: resync shard %d: %v", shard, err)
		return
	}
	c.resyncs.Add(1)
}

// migrateShard performs a live migration of one routing slot onto a
// freshly booted replica set, then retires the old processes.
func (c *chaos) migrateShard(ctx context.Context, shard int) {
	s := c.shards[shard]
	c.logf("chaos: live-migrating shard %d (gen %d -> %d)", shard, s.gen, s.gen+1)
	fresh, err := c.boot(shard, s.gen+1, len(s.procs))
	if err != nil {
		c.logf("chaos: migration boot failed: %v", err)
		c.migrationsFailed.Add(1)
		return
	}
	rep, err := c.router.Migrate(ctx, shard, fresh.set)
	if err != nil {
		c.logf("chaos: migration of shard %d FAILED: %v", shard, err)
		c.migrationsFailed.Add(1)
		fresh.stopAll(c.logf)
		return
	}
	c.migrations.Add(1)
	c.logf("chaos: shard %d migrated: %d lists, %d elements, %d tail ops, epoch %d, barrier %s",
		shard, rep.Lists, rep.Elements, rep.TailOps, rep.Epoch, rep.BarrierDuration.Round(time.Millisecond))
	old := *s
	*s = *fresh
	// The import landed on the new primary and marked its replicas
	// stale; resync populates them before they take reads.
	c.resyncSet(ctx, shard)
	old.stopAll(c.logf)
}

// stopAll retires a shard state's processes gracefully.
func (s *shardState) stopAll(logf func(string, ...interface{})) {
	for _, p := range s.procs {
		stopCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := p.Stop(stopCtx); err != nil {
			logf("chaos: stopping %s: %v", p.Name, err)
		}
		cancel()
	}
}

// identityCheck quiesces the workload and verifies restart-identity:
// every member of every shard must serve exactly the oracle's
// acknowledged elements (uncertain ones may go either way), and the
// primary's view then settles the uncertainty. Stale replicas are
// resynced first, so the member sweep checks the invariant the
// replica layer actually promises — any read-eligible member holds
// every acknowledged write.
func (c *chaos) identityCheck(ctx context.Context) {
	c.gate.Lock()
	defer c.gate.Unlock()
	if ctx.Err() != nil {
		return
	}
	c.identityChecks.Add(1)
	start := time.Now()
	for shard := range c.shards {
		c.resyncSet(ctx, shard)
	}
	byShard := make(map[int][]zerber.ListID)
	for _, list := range c.orc.snapshotLists() {
		s := c.router.ShardFor(list)
		byShard[s] = append(byShard[s], list)
	}
	checked := 0
	for shard, lists := range byShard {
		s := c.shards[shard]
		for _, list := range lists {
			var primaryServed map[string]bool
			for m := range s.trans {
				if !s.procs[m].Alive() {
					continue
				}
				served, err := pageList(ctx, s.trans[m], c.toks, list)
				if err != nil {
					c.logf("chaos: identity check: list %d member %s: %v", list, s.procs[m].Name, err)
					continue
				}
				c.addViolations(c.orc.checkList(list, served, s.procs[m].Name))
				if m == 0 {
					primaryServed = served
				}
			}
			if primaryServed != nil {
				c.orc.resolveList(list, primaryServed)
			}
			checked++
		}
	}
	present, uncertain := c.orc.counts()
	c.logf("chaos: identity check over %d lists done in %s (oracle: %d present, %d uncertain)",
		checked, time.Since(start).Round(time.Millisecond), present, uncertain)
}

// pageList downloads one list's full visible content from one member
// as a set of sealed payloads. A list the member never created (all
// oracle entries uncertain) reads as empty.
func pageList(ctx context.Context, t client.Transport, toks []crypt.Token, list zerber.ListID) (map[string]bool, error) {
	served := make(map[string]bool)
	offset := 0
	for {
		resp, _, err := t.Query(ctx, toks, list, offset, 4096)
		if errors.Is(err, server.ErrUnknownList) {
			return served, nil
		}
		if err != nil {
			return nil, err
		}
		for _, el := range resp.Elements {
			served[string(el.Sealed)] = true
		}
		if resp.Exhausted {
			return served, nil
		}
		if len(resp.Elements) == 0 {
			return nil, fmt.Errorf("soak: list %d: empty page without exhaustion at offset %d", list, offset)
		}
		offset += len(resp.Elements)
	}
}
