package soak

import (
	"fmt"
	"sync"

	"zerberr/internal/zerber"
)

// entryState tracks one sealed element's acknowledged fate.
type entryState uint8

const (
	// statePresent: the cluster acknowledged the insert (and no
	// acknowledged remove followed). The element MUST be served.
	statePresent entryState = iota
	// stateUncertainInsert: an insert errored in a way that does not
	// prove it was rejected (fault mid-call, timeout, shard down). The
	// element MAY be present.
	stateUncertainInsert
	// stateUncertainRemove: a remove of a previously present element
	// errored ambiguously. The element MAY still be present.
	stateUncertainRemove
)

// oracle is the shadow of every write the soak run issued: per merged
// list, the sealed bytes the cluster acknowledged (present) or might
// hold (uncertain). The identity check compares cluster answers
// against it element-by-element — acknowledged writes must never be
// lost, and nothing the oracle never sent may appear.
//
// Uncertainty is essential under chaos: a SIGKILL can land after the
// server applied a write but before the client read the response, so
// a client-visible error proves nothing either way. Such elements are
// allowed in both worlds until a quiesced check observes the
// authoritative state and resolves them.
type oracle struct {
	mu    sync.Mutex
	lists map[zerber.ListID]map[string]entryState
	// counts of current entries per state (cheap report numbers).
	present   int
	uncertain int
}

func newOracle() *oracle {
	return &oracle{lists: make(map[zerber.ListID]map[string]entryState)}
}

// listOf returns (creating) one list's entry map.
func (o *oracle) listOf(list zerber.ListID) map[string]entryState {
	m := o.lists[list]
	if m == nil {
		m = make(map[string]entryState)
		o.lists[list] = m
	}
	return m
}

// set transitions one entry, maintaining the counters.
func (o *oracle) set(m map[string]entryState, sealed string, s entryState) {
	if prev, ok := m[sealed]; ok {
		o.drop(prev)
	}
	m[sealed] = s
	if s == statePresent {
		o.present++
	} else {
		o.uncertain++
	}
}

func (o *oracle) drop(s entryState) {
	if s == statePresent {
		o.present--
	} else {
		o.uncertain--
	}
}

// insertAcked records an acknowledged insert.
func (o *oracle) insertAcked(list zerber.ListID, sealed []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.set(o.listOf(list), string(sealed), statePresent)
}

// insertFailed records an ambiguous insert failure.
func (o *oracle) insertFailed(list zerber.ListID, sealed []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.set(o.listOf(list), string(sealed), stateUncertainInsert)
}

// removeAcked records an acknowledged remove: the element must be gone.
func (o *oracle) removeAcked(list zerber.ListID, sealed []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := o.listOf(list)
	if prev, ok := m[string(sealed)]; ok {
		o.drop(prev)
		delete(m, string(sealed))
	}
}

// removeFailed records an ambiguous remove failure of a previously
// present element.
func (o *oracle) removeFailed(list zerber.ListID, sealed []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.set(o.listOf(list), string(sealed), stateUncertainRemove)
}

// snapshotLists returns the IDs of every list the oracle has entries
// for (sorted order is the caller's business).
func (o *oracle) snapshotLists() []zerber.ListID {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]zerber.ListID, 0, len(o.lists))
	for l, m := range o.lists {
		if len(m) > 0 {
			out = append(out, l)
		}
	}
	return out
}

// counts reports current (present, uncertain) entry totals.
func (o *oracle) counts() (present, uncertain int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.present, o.uncertain
}

// checkList compares one list's served elements (as a set of sealed
// bytes) against the oracle and returns human-readable violations:
// a served element the oracle never sent, or a present entry the
// server lost. Must only be called while the workload is quiesced.
func (o *oracle) checkList(list zerber.ListID, served map[string]bool, member string) []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := o.lists[list]
	var out []string
	for sealed := range served {
		if _, ok := m[sealed]; !ok {
			out = append(out, fmt.Sprintf("list %d on %s: served element the oracle never inserted", list, member))
		}
	}
	for sealed, st := range m {
		if st == statePresent && !served[sealed] {
			out = append(out, fmt.Sprintf("list %d on %s: acknowledged element lost", list, member))
		}
	}
	return out
}

// resolveList settles one list's uncertain entries against the
// primary's authoritative served set: an uncertain insert the primary
// does not hold is confirmed rejected (dropped); an uncertain remove
// the primary no longer holds is confirmed applied (dropped). Entries
// the primary holds stay uncertain — replicas that never received the
// ambiguous write may legitimately lack them, so promoting to present
// would manufacture false violations on the next member check.
func (o *oracle) resolveList(list zerber.ListID, primaryServed map[string]bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := o.lists[list]
	for sealed, st := range m {
		if st == statePresent || primaryServed[sealed] {
			continue
		}
		o.drop(st)
		delete(m, sealed)
	}
}
