// Package proof implements the Merkle commitment scheme behind
// verifiable search: each merged posting list is committed as one
// binary Merkle tree per group over that group's rank-ordered run,
// the per-group roots are folded into a content root over the sorted
// group headers, and the content root is bound to the list's mutation
// version to form the list root a server advertises.
//
// The commitment lets an untrusted shard prove, per ranked window it
// serves, both inclusion (every returned element is committed at the
// claimed rank position of its group) and adjacency (the window is
// complete — the elements skipped before it and withheld after it
// provably rank outside it), reducing what a client must trust from
// "the server answered honestly" to "the server advertises one
// consistent root per (list, version)". Root authenticity is
// out-of-band by design: clients pin roots across the rounds of one
// search, replicas cross-check roots between members, and migration
// compares version-free content roots across a copy — a server that
// commits to a wrong index state is indistinguishable from a server
// whose index is that state, and is caught exactly when two of those
// channels disagree (or a full-window audit walks the commitment).
//
// Hashing is SHA-256 throughout with one-byte domain separation:
// 0x00 leaves, 0x01 interior nodes, 0x02 group headers, 0x03 the
// content root, 0x04 the version-bound list root. Trees follow the
// RFC 6962 shape (split at the largest power of two below the leaf
// count), so a contiguous leaf range has one deterministic multiproof.
package proof

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
)

// HashSize is the byte length of every digest in the scheme.
const HashSize = sha256.Size

// Hash is one SHA-256 digest. It marshals as lowercase hex on the
// wire (a JSON byte-array of 32 numbers would triple the proof size).
type Hash [HashSize]byte

// String renders the full digest as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short renders the digest truncated to 16 hex characters — the
// human-facing form stats tables and CLI output use.
func (h Hash) Short() string { return hex.EncodeToString(h[:8]) }

// MarshalJSON implements json.Marshaler (lowercase hex).
func (h Hash) MarshalJSON() ([]byte, error) {
	return json.Marshal(hex.EncodeToString(h[:]))
}

// UnmarshalJSON implements json.Unmarshaler, requiring exactly 64 hex
// characters.
func (h *Hash) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("proof: bad hash: %w", err)
	}
	if len(raw) != HashSize {
		return fmt.Errorf("proof: bad hash: %d bytes, want %d", len(raw), HashSize)
	}
	copy(h[:], raw)
	return nil
}

// Domain-separation prefixes. Every hash in the scheme starts with
// exactly one of these, so no input to one role can collide with an
// input to another.
const (
	domainLeaf    = 0x00
	domainNode    = 0x01
	domainHeader  = 0x02
	domainContent = 0x03
	domainList    = 0x04
)

// LeafHash commits one posting element: H(0x00 || TRS as 8-byte
// big-endian IEEE bits || uvarint(len(sealed)) || sealed). The group
// is deliberately absent — it is bound by which group's tree the leaf
// lives in — so a leaf's value survives merges and removals unchanged
// and commitments can be maintained incrementally: mutations move
// leaves, they never rehash them.
func LeafHash(trs float64, sealed []byte) Hash {
	h := sha256.New()
	var head [9]byte
	head[0] = domainLeaf
	binary.BigEndian.PutUint64(head[1:], math.Float64bits(trs))
	h.Write(head[:])
	var v [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(v[:], uint64(len(sealed)))
	h.Write(v[:n])
	h.Write(sealed)
	var out Hash
	h.Sum(out[:0])
	return out
}

// interiorHash combines two subtree roots: H(0x01 || left || right).
func interiorHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{domainNode})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// HeaderHash commits one group's run: H(0x02 || varint(group) ||
// uvarint(count) || root). Responses carry it opaque for groups
// outside the caller's view, hiding their counts and roots while
// still letting the caller rebuild the content root — and letting it
// check, from the group IDs carried in clear, that none of its own
// groups was smuggled into an opaque header.
func HeaderHash(group, count int, root Hash) Hash {
	h := sha256.New()
	var buf [1 + 2*binary.MaxVarintLen64]byte
	buf[0] = domainHeader
	n := 1 + binary.PutVarint(buf[1:], int64(group))
	n += binary.PutUvarint(buf[n:], uint64(count))
	h.Write(buf[:n])
	h.Write(root[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// HeaderEntry is one group's contribution to the content root: the
// group ID in clear plus its header hash.
type HeaderEntry struct {
	Group int
	HH    Hash
}

// ContentRoot folds the group headers — sorted by ascending group ID,
// empty groups omitted — into the list's version-free content digest:
// H(0x03 || uvarint(n) || n × (varint(group) || headerHash)). Being
// version-free makes it the cross-instance identity check: a migrated
// copy holding identical elements has an identical content root even
// though its mutation versions differ.
func ContentRoot(entries []HeaderEntry) Hash {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	buf[0] = domainContent
	h.Write(buf[:1])
	n := binary.PutUvarint(buf[:], uint64(len(entries)))
	h.Write(buf[:n])
	for _, e := range entries {
		n = binary.PutVarint(buf[:], int64(e.Group))
		h.Write(buf[:n])
		h.Write(e.HH[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// ListRoot binds a content root to the list's mutation version:
// H(0x04 || version as 8-byte big-endian || content). This is the
// digest proofs verify against — equal versions with equal roots
// guarantee identical committed content, the same contract the
// version-keyed caches rest on, now cryptographically enforceable.
func ListRoot(version uint64, content Hash) Hash {
	h := sha256.New()
	var buf [9]byte
	buf[0] = domainList
	binary.BigEndian.PutUint64(buf[1:], version)
	h.Write(buf[:])
	h.Write(content[:])
	var out Hash
	h.Sum(out[:0])
	return out
}
