package proof

import (
	"crypto/sha256"
	"math/bits"
)

// The tree shape is RFC 6962's: a tree over n > 1 leaves splits into
// a left subtree over the largest power of two strictly below n and a
// right subtree over the rest; a single leaf is its own root. The
// shape is a pure function of n, so prover and verifier agree on it
// from the leaf count alone, and a contiguous leaf range [lo, hi) has
// exactly one multiproof: the roots of the maximal subtrees disjoint
// from the range, in traversal (left-to-right) order.

// splitPoint returns the left-subtree width for n >= 2 leaves: the
// largest power of two strictly less than n.
func splitPoint(n int) int {
	return 1 << (bits.Len(uint(n-1)) - 1)
}

// emptyRoot is the root of a tree with no leaves: H(0x01) — no real
// interior node hashes a lone domain byte, so it collides with
// nothing. Commitments omit empty groups, so it never appears inside
// a header in practice; it exists so TreeRoot is total.
func emptyRoot() Hash {
	return Hash(sha256.Sum256([]byte{domainNode}))
}

// TreeRoot computes the root over the full leaf slice.
func TreeRoot(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return emptyRoot()
	}
	return subRoot(leaves, 0, len(leaves))
}

// subRoot computes the root of the subtree spanning leaves [a, b).
func subRoot(leaves []Hash, a, b int) Hash {
	if b-a == 1 {
		return leaves[a]
	}
	k := splitPoint(b - a)
	return interiorHash(subRoot(leaves, a, a+k), subRoot(leaves, a+k, b))
}

// RangeProof returns the multiproof for the contiguous leaf range
// [lo, hi) of the given leaves: the subtree roots a verifier holding
// only the range's leaves needs to rebuild the full root. Cost is
// O(n) leaf-level hashing in the worst case — acceptable because
// proofs are generated on demand, never on the unproven hot path.
// Requires 0 <= lo < hi <= len(leaves).
func RangeProof(leaves []Hash, lo, hi int) []Hash {
	return rangeProofStep(leaves, 0, len(leaves), lo, hi, nil)
}

func rangeProofStep(leaves []Hash, a, b, lo, hi int, out []Hash) []Hash {
	if a >= hi || b <= lo {
		// Disjoint from the range: one opaque subtree root.
		return append(out, subRoot(leaves, a, b))
	}
	if lo <= a && b <= hi {
		// Inside the range: the verifier rebuilds this from its leaves.
		return out
	}
	k := splitPoint(b - a)
	out = rangeProofStep(leaves, a, a+k, lo, hi, out)
	return rangeProofStep(leaves, a+k, b, lo, hi, out)
}

// VerifyRange rebuilds the root of an n-leaf tree from the leaves of
// the contiguous range [lo, hi) plus a RangeProof for it, reporting
// whether the reconstruction is well-formed (the proof holds exactly
// the hashes the shape demands — no more, no fewer). The caller
// compares the returned root against the committed one.
func VerifyRange(n, lo, hi int, rangeLeaves, path []Hash) (Hash, bool) {
	if lo < 0 || hi > n || lo >= hi || hi-lo != len(rangeLeaves) {
		return Hash{}, false
	}
	v := &rangeVerifier{leaves: rangeLeaves, path: path, lo: lo, hi: hi, ok: true}
	root := v.node(0, n)
	if !v.ok || len(v.path) != 0 {
		return Hash{}, false
	}
	return root, true
}

// rangeVerifier mirrors rangeProofStep's traversal, consuming proof
// hashes where the prover emitted them and range leaves inside the
// range.
type rangeVerifier struct {
	leaves []Hash
	path   []Hash
	lo, hi int
	ok     bool
}

func (v *rangeVerifier) node(a, b int) Hash {
	if a >= v.hi || b <= v.lo {
		if len(v.path) == 0 {
			v.ok = false
			return Hash{}
		}
		h := v.path[0]
		v.path = v.path[1:]
		return h
	}
	if b-a == 1 {
		return v.leaves[a-v.lo]
	}
	k := splitPoint(b - a)
	left := v.node(a, a+k)
	right := v.node(a+k, b)
	return interiorHash(left, right)
}
