package proof

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"testing"
)

// leaves returns n distinct deterministic leaf hashes.
func leaves(n int) []Hash {
	out := make([]Hash, n)
	for i := range out {
		out[i] = LeafHash(float64(n-i), []byte{byte(i), byte(n)})
	}
	return out
}

func TestSplitPoint(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 4, 6: 4, 7: 4, 8: 4, 9: 8, 16: 8, 17: 16, 33: 32}
	for n, want := range cases {
		if got := splitPoint(n); got != want {
			t.Errorf("splitPoint(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTreeRootShape(t *testing.T) {
	l := leaves(5)
	if TreeRoot(l[:1]) != l[0] {
		t.Error("single-leaf tree root is not the leaf")
	}
	if got, want := TreeRoot(l[:2]), interiorHash(l[0], l[1]); got != want {
		t.Error("2-leaf root mismatch")
	}
	// n=3 splits 2|1, n=5 splits 4|1 (RFC 6962 shape).
	if got, want := TreeRoot(l[:3]), interiorHash(interiorHash(l[0], l[1]), l[2]); got != want {
		t.Error("3-leaf root mismatch")
	}
	want5 := interiorHash(
		interiorHash(interiorHash(l[0], l[1]), interiorHash(l[2], l[3])),
		l[4])
	if got := TreeRoot(l); got != want5 {
		t.Error("5-leaf root mismatch")
	}
	if TreeRoot(nil) != emptyRoot() {
		t.Error("empty tree root is not emptyRoot")
	}
}

func TestRangeProofRoundTrip(t *testing.T) {
	for n := 1; n <= 16; n++ {
		l := leaves(n)
		root := TreeRoot(l)
		for lo := 0; lo < n; lo++ {
			for hi := lo + 1; hi <= n; hi++ {
				path := RangeProof(l, lo, hi)
				got, ok := VerifyRange(n, lo, hi, l[lo:hi], path)
				if !ok || got != root {
					t.Fatalf("n=%d [%d,%d): verify ok=%v root match=%v", n, lo, hi, ok, got == root)
				}
			}
		}
	}
}

func TestVerifyRangeRejects(t *testing.T) {
	l := leaves(7)
	root := TreeRoot(l)
	path := RangeProof(l, 2, 5)
	if _, ok := VerifyRange(7, 2, 5, l[2:5], path[:len(path)-1]); ok {
		t.Error("truncated path accepted")
	}
	if _, ok := VerifyRange(7, 2, 5, l[2:5], append(append([]Hash{}, path...), Hash{})); ok {
		t.Error("padded path accepted")
	}
	if _, ok := VerifyRange(7, 2, 5, l[2:4], path); ok {
		t.Error("wrong range width accepted")
	}
	if _, ok := VerifyRange(7, 5, 2, nil, path); ok {
		t.Error("inverted range accepted")
	}
	if _, ok := VerifyRange(7, 2, 8, l[2:7], path); ok {
		t.Error("range past n accepted")
	}
	bad := append([]Hash{}, l[2:5]...)
	bad[0][0] ^= 1
	if got, ok := VerifyRange(7, 2, 5, bad, path); ok && got == root {
		t.Error("tampered leaf rebuilt the committed root")
	}
	// A smaller claimed tree needs fewer path hashes, so the honest
	// n=7 proof must fail structurally over n=6. (A *larger* claimed n
	// can pass VerifyRange — path hashes are opaque, a leaf doubles as
	// a subtree root — which is why Count is bound by HeaderHash, not
	// by the range proof.)
	if _, ok := VerifyRange(6, 2, 5, l[2:5], path); ok {
		t.Error("n=6 consumed an n=7 proof cleanly")
	}
}

func TestHashJSON(t *testing.T) {
	h := LeafHash(1.5, []byte("x"))
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hash
	if err := json.Unmarshal(raw, &back); err != nil || back != h {
		t.Fatalf("round-trip: %v, equal=%v", err, back == h)
	}
	for _, bad := range []string{`"abc"`, `"zz"`, `42`, `""`, fmt.Sprintf("%q", h.String()+"00")} {
		if err := json.Unmarshal([]byte(bad), &back); err == nil {
			t.Errorf("accepted bad hash %s", bad)
		}
	}
	if len(h.String()) != 64 || len(h.Short()) != 16 {
		t.Error("hex render lengths wrong")
	}
}

func TestHashDistinctness(t *testing.T) {
	pairs := [][2]Hash{
		{LeafHash(1, []byte("ab")), LeafHash(2, []byte("ab"))},
		{LeafHash(1, []byte("ab")), LeafHash(1, []byte("ac"))},
		{LeafHash(1, []byte("a")), LeafHash(1, []byte("ab"))},
		{HeaderHash(1, 2, Hash{}), HeaderHash(2, 2, Hash{})},
		{HeaderHash(1, 2, Hash{}), HeaderHash(1, 3, Hash{})},
		{ContentRoot(nil), ContentRoot([]HeaderEntry{{Group: 1}})},
		{ListRoot(1, Hash{}), ListRoot(2, Hash{})},
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("pair %d collided", i)
		}
	}
	// Domain separation: a leaf over empty input, an interior over zero
	// hashes, a header, the content root and the list root all start
	// with different prefixes, so none can equal another by construction;
	// spot-check the degenerate inputs anyway.
	all := []Hash{LeafHash(0, nil), interiorHash(Hash{}, Hash{}), HeaderHash(0, 0, Hash{}), ContentRoot(nil), ListRoot(0, Hash{}), emptyRoot()}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[i] == all[j] {
				t.Errorf("domains %d and %d collided", i, j)
			}
		}
	}
}

// --- VerifyWindow: reference prover --------------------------------

// pEl is one committed element in the reference prover.
type pEl struct {
	trs    float64
	sealed []byte
	group  int
}

// buildWindow is an independent reference implementation of the proof
// generator: it commits the given groups, answers the ranked window
// [offset, offset+count) over the allowed view and constructs the
// exact proof an honest server would. VerifyWindow must accept its
// output and reject any mutation of it.
func buildWindow(version uint64, groups map[int][]pEl, allowed map[int]bool, offset, count int) (*Window, []WindowElement, bool) {
	runs := make(map[int][]pEl)
	var ids []int
	for g, els := range groups {
		if len(els) == 0 {
			continue
		}
		run := append([]pEl{}, els...)
		sort.Slice(run, func(i, j int) bool {
			return cmpRank(run[i].trs, run[i].sealed, run[j].trs, run[j].sealed) < 0
		})
		runs[g] = run
		ids = append(ids, g)
	}
	sort.Ints(ids)
	var merged []pEl
	for g, run := range runs {
		if allowed[g] {
			merged = append(merged, run...)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		return cmpRank(merged[i].trs, merged[i].sealed, merged[j].trs, merged[j].sealed) < 0
	})
	end := offset + count
	if end > len(merged) {
		end = len(merged)
	}
	start := offset
	if start > len(merged) {
		start = len(merged)
	}
	window := merged[start:end]
	exhausted := end == len(merged)

	// Per-group committed position of the window slice: count run
	// members inside the merged prefix and window.
	inPrefix := make(map[int]int)
	inWindow := make(map[int]int)
	for _, el := range merged[:start] {
		inPrefix[el.group]++
	}
	for _, el := range window {
		inWindow[el.group]++
	}

	w := &Window{Version: version}
	var entries []HeaderEntry
	for _, g := range ids {
		run := runs[g]
		lh := make([]Hash, len(run))
		for i, el := range run {
			lh[i] = LeafHash(el.trs, el.sealed)
		}
		root := TreeRoot(lh)
		hh := HeaderHash(g, len(run), root)
		entries = append(entries, HeaderEntry{Group: g, HH: hh})
		if !allowed[g] {
			op := hh
			w.Groups = append(w.Groups, GroupWindow{Group: g, Opaque: &op})
			continue
		}
		gw := GroupWindow{Group: g, Count: len(run), Root: &root,
			Start: inPrefix[g], End: inPrefix[g] + inWindow[g]}
		lo, hi := gw.Start, gw.End
		if gw.Start > 0 {
			p := run[gw.Start-1]
			gw.Pred = &Boundary{TRS: p.trs, Sealed: p.sealed}
			lo--
		}
		if gw.End < gw.Count {
			s := run[gw.End]
			gw.Succ = &Boundary{TRS: s.trs, Sealed: s.sealed}
			hi++
		}
		gw.Path = RangeProof(lh, lo, hi)
		w.Groups = append(w.Groups, gw)
	}
	w.Root = ListRoot(version, ContentRoot(entries))

	elems := make([]WindowElement, len(window))
	for i, el := range window {
		elems[i] = WindowElement{TRS: el.trs, Sealed: el.sealed, Group: el.group}
	}
	return w, elems, exhausted
}

// fixture is a three-group committed list; groups 1 and 3 are in the
// caller's view, group 2 is foreign.
func fixture() (map[int][]pEl, map[int]bool) {
	groups := map[int][]pEl{
		1: {
			{9.5, []byte("a1"), 1}, {7.0, []byte("a2"), 1}, {4.0, []byte("a3"), 1},
			{2.0, []byte("a4"), 1}, {1.0, []byte("a5"), 1},
		},
		2: {
			{8.0, []byte("b1"), 2}, {3.0, []byte("b2"), 2},
		},
		3: {
			{9.0, []byte("c1"), 3}, {6.0, []byte("c2"), 3}, {5.0, []byte("c3"), 3},
			{0.5, []byte("c4"), 3},
		},
	}
	allowed := map[int]bool{1: true, 3: true}
	return groups, allowed
}

func TestVerifyWindowAccepts(t *testing.T) {
	groups, allowed := fixture()
	// Visible merged order: a1 9.5, c1 9, a2 7, c2 6, c3 5, a3 4, a4 2, a5 1, c4 0.5.
	for _, q := range []struct{ offset, count int }{
		{0, 3}, {0, 9}, {0, 20}, {2, 4}, {5, 4}, {8, 1}, {9, 5}, {12, 3}, {0, 1}, {4, 1},
	} {
		w, elems, exhausted := buildWindow(7, groups, allowed, q.offset, q.count)
		if err := VerifyWindow(w, allowed, q.offset, q.count, elems, exhausted, 7); err != nil {
			t.Errorf("[%d,%d): honest window rejected: %v", q.offset, q.offset+q.count, err)
		}
	}
	// Single-group views, including one where the other committed
	// groups all travel opaque.
	for g := range allowed {
		view := map[int]bool{g: true}
		w, elems, exhausted := buildWindow(3, groups, view, 1, 2)
		if err := VerifyWindow(w, view, 1, 2, elems, exhausted, 3); err != nil {
			t.Errorf("single-group view %d rejected: %v", g, err)
		}
	}
}

func TestVerifyWindowJSONRoundTrip(t *testing.T) {
	groups, allowed := fixture()
	w, elems, exhausted := buildWindow(7, groups, allowed, 2, 4)
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Window
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := VerifyWindow(&back, allowed, 2, 4, elems, exhausted, 7); err != nil {
		t.Fatalf("window no longer verifies after JSON round-trip: %v", err)
	}
}

func TestVerifyWindowRejects(t *testing.T) {
	groups, allowed := fixture()
	build := func() (*Window, []WindowElement, bool) {
		return buildWindow(7, groups, allowed, 2, 4)
	}
	cases := []struct {
		name   string
		mutate func(w *Window, elems []WindowElement) (*Window, []WindowElement, int, int, bool, uint64)
	}{
		{"nil proof", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			return nil, e, 2, 4, false, 7
		}},
		{"version mismatch", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			return w, e, 2, 4, false, 8
		}},
		{"overfull window", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			return w, e, 2, len(e) - 1, false, 7
		}},
		{"reordered elements", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			e[0], e[1] = e[1], e[0]
			return w, e, 2, 4, false, 7
		}},
		{"tampered TRS", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			e[1].TRS += 0.25
			return w, e, 2, 4, false, 7
		}},
		{"tampered payload", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			e[2].Sealed = append([]byte{}, e[2].Sealed...)
			e[2].Sealed[0] ^= 1
			return w, e, 2, 4, false, 7
		}},
		{"dropped element", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			return w, e[:len(e)-1], 2, 4, false, 7
		}},
		{"dropped element claimed exhausted", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			return w, e[:len(e)-1], 2, 4, true, 7
		}},
		{"foreign group in element", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			e[0].Group = 2
			return w, e, 2, 4, false, 7
		}},
		{"wrong offset", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			return w, e, 3, 4, false, 7
		}},
		{"exhausted flag forged", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			return w, e, 2, 4, true, 7
		}},
		{"group headers reordered", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			w.Groups[0], w.Groups[1] = w.Groups[1], w.Groups[0]
			return w, e, 2, 4, false, 7
		}},
		{"dropped group header", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			w.Groups = w.Groups[:len(w.Groups)-1]
			return w, e, 2, 4, false, 7
		}},
		{"allowed group made opaque", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			for i := range w.Groups {
				if w.Groups[i].Group == 3 {
					hh := HeaderHash(3, w.Groups[i].Count, *w.Groups[i].Root)
					w.Groups[i] = GroupWindow{Group: 3, Opaque: &hh}
				}
			}
			// Keep only group-1 elements so the missing-proof check is
			// not what fires first.
			var kept []WindowElement
			for _, el := range e {
				if el.Group == 1 {
					kept = append(kept, el)
				}
			}
			return w, kept, 2, 4, false, 7
		}},
		{"opaque group with window fields", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			for i := range w.Groups {
				if w.Groups[i].Opaque != nil {
					w.Groups[i].Count = 2
				}
			}
			return w, e, 2, 4, false, 7
		}},
		{"tampered group root", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			for i := range w.Groups {
				if w.Groups[i].Root != nil {
					r := *w.Groups[i].Root
					r[0] ^= 1
					w.Groups[i].Root = &r
					break
				}
			}
			return w, e, 2, 4, false, 7
		}},
		{"truncated range proof", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			for i := range w.Groups {
				if len(w.Groups[i].Path) > 0 {
					w.Groups[i].Path = w.Groups[i].Path[:len(w.Groups[i].Path)-1]
					break
				}
			}
			return w, e, 2, 4, false, 7
		}},
		{"shifted group range", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			for i := range w.Groups {
				if w.Groups[i].Root != nil && w.Groups[i].Start > 0 {
					w.Groups[i].Start--
					break
				}
			}
			return w, e, 2, 4, false, 7
		}},
		{"inflated group count", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			for i := range w.Groups {
				if w.Groups[i].Root != nil {
					w.Groups[i].Count++
					break
				}
			}
			return w, e, 2, 4, false, 7
		}},
		{"boundary stripped", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			for i := range w.Groups {
				if w.Groups[i].Pred != nil {
					w.Groups[i].Pred = nil
					break
				}
			}
			return w, e, 2, 4, false, 7
		}},
		{"tampered root", func(w *Window, e []WindowElement) (*Window, []WindowElement, int, int, bool, uint64) {
			w.Root[0] ^= 1
			return w, e, 2, 4, false, 7
		}},
	}
	for _, tc := range cases {
		w, elems, _ := build()
		mw, me, off, cnt, exh, ver := tc.mutate(w, elems)
		err := VerifyWindow(mw, allowed, off, cnt, me, exh, ver)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error %v does not wrap ErrInvalid", tc.name, err)
		}
	}
	// Sanity: the unmutated window still verifies (build() is honest).
	w, elems, exhausted := build()
	if err := VerifyWindow(w, allowed, 2, 4, elems, exhausted, 7); err != nil {
		t.Fatalf("baseline window rejected: %v", err)
	}
}

// TestVerifyWindowBoundaryPinning is the adjacency attack: a server
// withholding a high-ranking element and substituting a lower one must
// be caught by the boundary checks even when every substituted element
// is genuinely committed.
func TestVerifyWindowBoundaryPinning(t *testing.T) {
	groups, allowed := fixture()
	// Honest [0,3) is a1, c1, a2. Serve a1, c1, c2 instead: c2 is
	// committed, the window is still rank-sorted, but a2 (TRS 7) was
	// skipped — group 1's Succ boundary must expose it.
	w, _, _ := buildWindow(7, groups, allowed, 0, 3)
	forged := []WindowElement{
		{TRS: 9.5, Sealed: []byte("a1"), Group: 1},
		{TRS: 9.0, Sealed: []byte("c1"), Group: 3},
		{TRS: 6.0, Sealed: []byte("c2"), Group: 3},
	}
	// The forged window needs forged per-group ranges too; rebuild them
	// the way a cheating server would (group 1 end=1, group 3 end=2)
	// and check some check still fires.
	runs := map[int][]pEl{}
	for g, els := range groups {
		run := append([]pEl{}, els...)
		sort.Slice(run, func(i, j int) bool {
			return cmpRank(run[i].trs, run[i].sealed, run[j].trs, run[j].sealed) < 0
		})
		runs[g] = run
	}
	for i := range w.Groups {
		gw := &w.Groups[i]
		if gw.Root == nil {
			continue
		}
		lh := make([]Hash, len(runs[gw.Group]))
		for j, el := range runs[gw.Group] {
			lh[j] = LeafHash(el.trs, el.sealed)
		}
		switch gw.Group {
		case 1:
			gw.Start, gw.End = 0, 1
		case 3:
			gw.Start, gw.End = 0, 2
		}
		lo, hi := gw.Start, gw.End
		gw.Pred, gw.Succ = nil, nil
		if gw.Start > 0 {
			p := runs[gw.Group][gw.Start-1]
			gw.Pred = &Boundary{TRS: p.trs, Sealed: p.sealed}
			lo--
		}
		if gw.End < gw.Count {
			s := runs[gw.Group][gw.End]
			gw.Succ = &Boundary{TRS: s.trs, Sealed: s.sealed}
			hi++
		}
		gw.Path = RangeProof(lh, lo, hi)
	}
	err := VerifyWindow(w, allowed, 0, 3, forged, false, 7)
	if err == nil {
		t.Fatal("withheld-element window accepted")
	}
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("error %v does not wrap ErrInvalid", err)
	}
}
