package proof

import (
	"bytes"
	"errors"
	"fmt"
)

// Boundary is one committed element revealed only to pin a window
// edge: the last element of a group's skipped prefix (Pred) or the
// first element of its withheld suffix (Succ). It carries exactly the
// fields the leaf hash commits to.
type Boundary struct {
	TRS    float64 `json:"trs"`
	Sealed []byte  `json:"sealed"`
}

// GroupWindow is one group's slice of a window proof. For a group in
// the caller's view ("proved") it carries the group's committed size,
// root and the window's position range with its boundaries and range
// multiproof. For any other group only the opaque header hash and the
// group ID travel — enough to rebuild the content root, nothing about
// the group's size or content.
type GroupWindow struct {
	Group int `json:"group"`
	// Opaque is the header hash of a group outside the caller's view;
	// nil marks a proved group. Exactly one of Opaque and Root is set.
	Opaque *Hash `json:"opaque,omitempty"`

	// Proved-group fields.
	Count int   `json:"count,omitempty"`
	Root  *Hash `json:"root,omitempty"`
	// Start and End delimit the window's committed positions in this
	// group's run: the window holds exactly the run's [Start, End)
	// slice, the run's first Start elements are the group's share of
	// the skipped offset prefix, and positions End.. are withheld as
	// ranking below the window.
	Start int       `json:"start,omitempty"`
	End   int       `json:"end,omitempty"`
	Pred  *Boundary `json:"pred,omitempty"`
	Succ  *Boundary `json:"succ,omitempty"`
	Path  []Hash    `json:"path,omitempty"`
}

// Window is the verifiable proof attached to one ranked query
// response: the list root for the version the window was served at,
// plus one GroupWindow per non-empty committed group.
type Window struct {
	Version uint64        `json:"version"`
	Root    Hash          `json:"root"`
	Groups  []GroupWindow `json:"groups,omitempty"`
}

// WindowElement is the verifier's view of one returned element — the
// fields the commitment binds plus the server-assigned group.
type WindowElement struct {
	TRS    float64
	Sealed []byte
	Group  int
}

// ErrInvalid is the root cause every failed verification wraps:
// errors.Is(err, ErrInvalid) identifies a proof rejection regardless
// of which check fired.
var ErrInvalid = errors.New("proof: verification failed")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// cmpRank orders by the server-visible rank relation: descending TRS,
// then ascending sealed bytes. Zero means equal — possible only for
// byte-identical ciphertexts, whose mutual order is unobservable.
func cmpRank(atrs float64, asealed []byte, btrs float64, bsealed []byte) int {
	if atrs != btrs {
		if atrs > btrs {
			return -1
		}
		return 1
	}
	return bytes.Compare(asealed, bsealed)
}

// VerifyWindow checks a window proof against the query that produced
// it: the caller's allowed groups, the requested (offset, count)
// range, and the response's elements, exhausted flag and version. On
// success the response window is provably the exact ranked
// [offset, offset+count) slice of the state committed under w.Root —
// inclusion (every element sits at its claimed committed position)
// and adjacency (the skipped prefix is exactly offset elements and
// every withheld element ranks at or below the window's last), up to
// reordering of byte-identical ciphertexts. What the root itself is
// bound to is the caller's problem: pin it across rounds, cross-check
// it between replicas, or audit it wholesale.
func VerifyWindow(w *Window, allowed map[int]bool, offset, count int, elems []WindowElement, exhausted bool, version uint64) error {
	if w == nil {
		return invalidf("no proof attached")
	}
	if w.Version != version {
		return invalidf("proof version %d, response version %d", w.Version, version)
	}
	if len(elems) > count {
		return invalidf("window holds %d elements, requested %d", len(elems), count)
	}
	// The merged window must be rank-sorted and stay inside the
	// caller's view; each group's subsequence is collected for its
	// range proof.
	segs := make(map[int][]WindowElement)
	for i, el := range elems {
		if allowed != nil && !allowed[el.Group] {
			return invalidf("element %d claims group %d outside the caller's view", i, el.Group)
		}
		if i > 0 && cmpRank(elems[i-1].TRS, elems[i-1].Sealed, el.TRS, el.Sealed) > 0 {
			return invalidf("window not rank-sorted at element %d", i)
		}
		segs[el.Group] = append(segs[el.Group], el)
	}
	entries := make([]HeaderEntry, 0, len(w.Groups))
	prevGroup := 0
	sumStart := 0
	allConsumed := true
	for i, gw := range w.Groups {
		if i > 0 && gw.Group <= prevGroup {
			return invalidf("group headers not strictly ascending at %d", gw.Group)
		}
		prevGroup = gw.Group
		if gw.Opaque != nil {
			// A group outside the view must stay fully opaque — and must
			// not be one of the caller's own groups in disguise.
			if allowed == nil || allowed[gw.Group] {
				return invalidf("group %d of the caller's view carried opaque", gw.Group)
			}
			if gw.Root != nil || gw.Count != 0 || gw.Start != 0 || gw.End != 0 ||
				gw.Pred != nil || gw.Succ != nil || len(gw.Path) != 0 {
				return invalidf("opaque group %d carries window fields", gw.Group)
			}
			entries = append(entries, HeaderEntry{Group: gw.Group, HH: *gw.Opaque})
			continue
		}
		if allowed != nil && !allowed[gw.Group] {
			return invalidf("proved group %d outside the caller's view", gw.Group)
		}
		if gw.Root == nil {
			return invalidf("group %d missing its root", gw.Group)
		}
		if gw.Count <= 0 || gw.Start < 0 || gw.Start > gw.End || gw.End > gw.Count {
			return invalidf("group %d range [%d,%d) of %d malformed", gw.Group, gw.Start, gw.End, gw.Count)
		}
		if (gw.Pred != nil) != (gw.Start > 0) {
			return invalidf("group %d prefix boundary presence inconsistent", gw.Group)
		}
		if (gw.Succ != nil) != (gw.End < gw.Count) {
			return invalidf("group %d suffix boundary presence inconsistent", gw.Group)
		}
		seg := segs[gw.Group]
		delete(segs, gw.Group)
		if len(seg) != gw.End-gw.Start {
			return invalidf("group %d window segment holds %d elements, range claims %d", gw.Group, len(seg), gw.End-gw.Start)
		}
		// Boundary ordering against the whole merged window: the last
		// skipped element must rank at or above the window's first, the
		// first withheld element at or below the window's last. With the
		// window sorted and each group's committed run sorted, this pins
		// every skipped and withheld element outside the window.
		if len(elems) > 0 {
			if gw.Pred != nil && cmpRank(gw.Pred.TRS, gw.Pred.Sealed, elems[0].TRS, elems[0].Sealed) > 0 {
				return invalidf("group %d skipped element ranks inside the window", gw.Group)
			}
			last := elems[len(elems)-1]
			if gw.Succ != nil && cmpRank(last.TRS, last.Sealed, gw.Succ.TRS, gw.Succ.Sealed) > 0 {
				return invalidf("group %d withheld element ranks inside the window", gw.Group)
			}
		}
		if gw.Succ != nil {
			allConsumed = false
		}
		// Rebuild the proved leaf range: boundaries included, so their
		// values are committed too, not just asserted.
		lo, hi := gw.Start, gw.End
		leaves := make([]Hash, 0, len(seg)+2)
		if gw.Pred != nil {
			leaves = append(leaves, LeafHash(gw.Pred.TRS, gw.Pred.Sealed))
			lo--
		}
		for _, el := range seg {
			leaves = append(leaves, LeafHash(el.TRS, el.Sealed))
		}
		if gw.Succ != nil {
			leaves = append(leaves, LeafHash(gw.Succ.TRS, gw.Succ.Sealed))
			hi++
		}
		root, ok := VerifyRange(gw.Count, lo, hi, leaves, gw.Path)
		if !ok || root != *gw.Root {
			return invalidf("group %d range proof does not bind to its root", gw.Group)
		}
		entries = append(entries, HeaderEntry{Group: gw.Group, HH: HeaderHash(gw.Group, gw.Count, *gw.Root)})
		sumStart += gw.Start
	}
	if len(segs) != 0 {
		return invalidf("window elements of %d group(s) carry no proof", len(segs))
	}
	// Completeness arithmetic. Non-empty window: the skipped prefix is
	// exactly offset elements. Empty window: every proved group sits
	// fully inside the prefix (Start = End = Count, enforced above via
	// empty segments and the exhausted check below), which must not
	// exceed the requested offset.
	if len(elems) > 0 {
		if sumStart != offset {
			return invalidf("skipped prefix holds %d elements, offset is %d", sumStart, offset)
		}
	} else if sumStart > offset {
		return invalidf("empty window but %d elements claimed before offset %d", sumStart, offset)
	}
	// A short window is only legitimate when every group ran dry, and
	// the response's exhausted flag must say exactly that.
	if len(elems) < count && !allConsumed {
		return invalidf("window short of count with elements withheld")
	}
	if exhausted != allConsumed {
		return invalidf("exhausted flag %v, proofs say %v", exhausted, allConsumed)
	}
	// Everything above bound the per-group claims; now bind the claims
	// to the advertised root.
	if got := ListRoot(w.Version, ContentRoot(entries)); got != w.Root {
		return invalidf("headers do not rebuild the advertised root")
	}
	return nil
}
