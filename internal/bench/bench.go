// Package bench is the experiment registry behind cmd/zerber-bench:
// every runnable artifact — the paper's figures, the extension
// experiments, the soak/chaos scenario — registers as a named
// Experiment, and the CLI resolves -run IDs against the registry
// instead of an ad-hoc switch. Unknown IDs fail loudly with the list
// of available names; nothing ever "runs nothing" silently.
package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"zerberr/internal/experiments"
)

// Row is one machine-readable measurement an experiment emits beside
// its rendered output: a named scalar with a unit and optional
// attributes. The CLI prints rows as aligned text (and they are what a
// harness would scrape, in contrast to the human-facing charts written
// to Env.Out).
type Row struct {
	// Name identifies the measurement, conventionally
	// "<experiment>.<metric>".
	Name string
	// Value is the measurement.
	Value float64
	// Unit names Value's unit ("ops", "ms", "bytes", ...).
	Unit string
	// Attrs carries optional dimensions (shard, fault class, ...).
	Attrs map[string]string
}

// Env is the shared environment experiments run against.
type Env struct {
	// Scale multiplies corpus sizes (1 = laptop defaults).
	Scale float64
	// Seed drives all generation deterministically.
	Seed uint64
	// Batched makes search-driving experiments use the batched v2
	// protocol for their timed loops instead of the serial v1 path.
	Batched bool
	// Out receives rendered experiment output (charts, tables, soak
	// reports). Defaults to io.Discard if nil.
	Out io.Writer
	// CSVDir, when non-empty, is where experiments that produce CSV
	// write their per-experiment files.
	CSVDir string
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...interface{})

	mu    sync.Mutex
	paper *experiments.Env
}

// Paper returns the lazily built internal/experiments environment, so
// the paper-figure experiments share corpora, systems and replays
// across one CLI invocation exactly as they did before the registry.
func (e *Env) Paper() *experiments.Env {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.paper == nil {
		e.paper = experiments.NewEnv(e.Scale, e.Seed)
		e.paper.Batched = e.Batched
		if e.Logf != nil {
			e.paper.Logf = e.Logf
		}
	}
	return e.paper
}

// logf logs progress if a logger is installed.
func (e *Env) logf(format string, args ...interface{}) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// output returns the experiment output sink.
func (e *Env) output() io.Writer {
	if e.Out == nil {
		return io.Discard
	}
	return e.Out
}

// Experiment is one registered runnable.
type Experiment struct {
	// Name is the -run ID.
	Name string
	// Doc is the one-line description -list prints.
	Doc string
	// Manual excludes the experiment from `-run all`; it only runs
	// when named explicitly (the soak scenario, which boots real
	// processes and runs for a configured wall-clock duration, is
	// Manual).
	Manual bool
	// Run executes the experiment and returns its measurements.
	Run func(ctx context.Context, env *Env) ([]Row, error)
}

// Registry holds experiments in registration order.
type Registry struct {
	mu     sync.Mutex
	order  []Experiment
	byName map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Register adds an experiment; empty names and duplicates are errors.
func (r *Registry) Register(e Experiment) error {
	if e.Name == "" {
		return fmt.Errorf("bench: experiment with empty name")
	}
	if e.Run == nil {
		return fmt.Errorf("bench: experiment %q has no Run", e.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[e.Name]; dup {
		return fmt.Errorf("bench: experiment %q registered twice", e.Name)
	}
	r.byName[e.Name] = len(r.order)
	r.order = append(r.order, e)
	return nil
}

// MustRegister is Register that panics, for wiring done at startup.
func (r *Registry) MustRegister(e Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Names lists registered experiment names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	for i, e := range r.order {
		out[i] = e.Name
	}
	return out
}

// All returns the registered experiments in registration order.
func (r *Registry) All() []Experiment {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Experiment(nil), r.order...)
}

// Lookup resolves a name; unknown names fail with the available list.
func (r *Registry) Lookup(name string) (Experiment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.order[i], nil
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (available: %s)",
		name, strings.Join(r.namesLocked(), ", "))
}

// namesLocked is Names without re-locking.
func (r *Registry) namesLocked() []string {
	out := make([]string, len(r.order))
	for i, e := range r.order {
		out[i] = e.Name
	}
	return out
}

// Default returns a registry with the full paper suite mounted. The
// CLI adds the soak experiment on top (its configuration is flag
// state owned by the command).
func Default() *Registry {
	r := NewRegistry()
	RegisterPaper(r)
	return r
}

// RegisterPaper mounts every internal/experiments artifact (the
// paper's figures and the DESIGN.md extension experiments) onto the
// registry. Each renders its charts/tables to Env.Out, writes CSV
// into Env.CSVDir when set, and returns one Row per data series
// summarizing what it produced.
func RegisterPaper(r *Registry) {
	for _, id := range experiments.IDs() {
		r.MustRegister(Experiment{
			Name: id,
			Doc:  experiments.Doc(id),
			Run:  paperRunner(id),
		})
	}
}

// paperRunner adapts one internal/experiments runner to the registry
// interface.
func paperRunner(id string) func(ctx context.Context, env *Env) ([]Row, error) {
	return func(ctx context.Context, env *Env) ([]Row, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := experiments.Run(id, env.Paper())
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(env.output(), res.Render())
		if env.CSVDir != "" {
			if err := writeCSV(env.CSVDir, res); err != nil {
				return nil, err
			}
		}
		rows := make([]Row, 0, len(res.Series))
		for _, s := range res.Series {
			rows = append(rows, Row{
				Name:  id + "." + sanitize(s.Name),
				Value: float64(len(s.X)),
				Unit:  "points",
			})
		}
		return rows, nil
	}
}

// writeCSV writes one experiment's series as <dir>/<id>.csv.
func writeCSV(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, res.ID+".csv"), []byte(res.CSV()), 0o644)
}

// sanitize turns a series title into a row-name fragment.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// Sort orders rows by name for stable output.
func Sort(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
}
