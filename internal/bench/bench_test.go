package bench

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"zerberr/internal/experiments"
)

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	run := func(context.Context, *Env) ([]Row, error) { return nil, nil }
	if err := r.Register(Experiment{Name: "a", Doc: "first", Run: run}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Experiment{Name: "b", Doc: "second", Run: run}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Experiment{Name: "a", Run: run}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(Experiment{Name: "", Run: run}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Register(Experiment{Name: "norun"}); err == nil {
		t.Fatal("nil Run accepted")
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names() = %v, want registration order [a b]", got)
	}
	e, err := r.Lookup("b")
	if err != nil || e.Doc != "second" {
		t.Fatalf("Lookup(b) = %+v, %v", e, err)
	}
}

func TestRegistryUnknownNameListsAvailable(t *testing.T) {
	r := NewRegistry()
	run := func(context.Context, *Env) ([]Row, error) { return nil, nil }
	r.MustRegister(Experiment{Name: "fig04", Run: run})
	r.MustRegister(Experiment{Name: "soak", Run: run})
	_, err := r.Lookup("fig99")
	if err == nil {
		t.Fatal("unknown experiment did not error")
	}
	for _, want := range []string{"fig99", "fig04", "soak"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-name error %q does not mention %q", err, want)
		}
	}
}

func TestDefaultRegistryCoversPaperSuite(t *testing.T) {
	r := Default()
	names := r.Names()
	if !reflect.DeepEqual(names, experiments.IDs()) {
		t.Fatalf("Default() names %v != experiments.IDs() %v", names, experiments.IDs())
	}
	for _, e := range r.All() {
		if e.Doc == "" {
			t.Fatalf("experiment %q has no doc line", e.Name)
		}
		if e.Manual {
			t.Fatalf("paper experiment %q is Manual; only the soak scenario should be", e.Name)
		}
	}
}

func TestPaperExperimentRendersAndWritesCSV(t *testing.T) {
	r := Default()
	e, err := r.Lookup("fig07")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	dir := t.TempDir()
	env := &Env{Scale: 1, Seed: 1, Out: &out, CSVDir: dir}
	rows, err := e.Run(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig07") {
		t.Fatalf("rendered output does not mention the experiment: %q", out.String())
	}
	if len(rows) == 0 {
		t.Fatal("paper experiment returned no rows")
	}
	for _, row := range rows {
		if !strings.HasPrefix(row.Name, "fig07.") || row.Value <= 0 {
			t.Fatalf("unexpected row %+v", row)
		}
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig07.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(csv) == 0 {
		t.Fatal("empty CSV written")
	}
}

func TestPaperExperimentHonorsCanceledContext(t *testing.T) {
	r := Default()
	e, err := r.Lookup("fig07")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, &Env{Scale: 1, Seed: 1}); err == nil {
		t.Fatal("canceled context did not stop the experiment")
	}
}
