// Package adversary implements the attack simulations of Sections 4.1
// and 6.2, turning the paper's qualitative security discussion into
// measured quantities:
//
//  1. Score-distribution attack: an adversary who compromised the
//     index server compares the visible per-element ranking values of
//     a merged posting list against per-term score statistics from
//     her background knowledge, attributing elements to terms by
//     maximum likelihood.
//  2. Follow-up-count attack: an adversary observing the query stream
//     counts the responses needed to satisfy a top-k query and
//     guesses which of the merged terms was queried.
//
// Both attacks report accuracy against ground truth plus the
// probability amplification of Definition 1, so the r-confidentiality
// claim becomes checkable: with the RSTF in place amplification should
// stay near 1 (and below r); with raw scores it explodes.
package adversary

import (
	"math"

	"zerberr/internal/corpus"
)

// Background is the adversary's statistical knowledge: per-term
// histograms of the server-visible ranking value, estimated from a
// corpus she controls (e.g. public documents or the published training
// statistics). Values are assumed to lie in [lo, hi].
type Background struct {
	lo, hi float64
	bins   int
	hist   map[corpus.TermID][]float64 // normalized densities per term
}

// NewBackground builds per-term histograms with the given bin count
// over [lo, hi]. Laplace smoothing keeps likelihoods finite for empty
// bins.
func NewBackground(scores map[corpus.TermID][]float64, bins int, lo, hi float64) *Background {
	if bins <= 0 {
		bins = 64
	}
	if hi <= lo {
		hi = lo + 1
	}
	b := &Background{lo: lo, hi: hi, bins: bins, hist: make(map[corpus.TermID][]float64, len(scores))}
	for t, xs := range scores {
		counts := make([]float64, bins)
		for _, x := range xs {
			counts[b.bin(x)]++
		}
		// Laplace smoothing and normalization to densities.
		total := float64(len(xs)) + float64(bins)
		for i := range counts {
			counts[i] = (counts[i] + 1) / total
		}
		b.hist[t] = counts
	}
	return b
}

func (b *Background) bin(x float64) int {
	i := int(float64(b.bins) * (x - b.lo) / (b.hi - b.lo))
	if i < 0 {
		i = 0
	}
	if i >= b.bins {
		i = b.bins - 1
	}
	return i
}

// Likelihood returns P(value | term) under the background model;
// terms without background mass get a uniform density.
func (b *Background) Likelihood(t corpus.TermID, x float64) float64 {
	h, ok := b.hist[t]
	if !ok {
		return 1 / float64(b.bins)
	}
	return h[b.bin(x)]
}

// Attribution is the outcome of the score-distribution attack on one
// merged list.
type Attribution struct {
	// Guess is the maximum-posterior term per element.
	Guess []corpus.TermID
	// Posterior holds, per element, the posterior probability of each
	// candidate term (indexed as in Candidates).
	Posterior [][]float64
	// Candidates echoes the candidate term order.
	Candidates []corpus.TermID
}

// Attribute runs the Bayesian attribution: for each observed ranking
// value, posterior(t) ∝ prior(t) × P(value | t). prior is typically
// p_t normalized within the merged list (Definition 2's view).
func Attribute(observed []float64, candidates []corpus.TermID, prior map[corpus.TermID]float64, bg *Background) Attribution {
	att := Attribution{
		Guess:      make([]corpus.TermID, len(observed)),
		Posterior:  make([][]float64, len(observed)),
		Candidates: append([]corpus.TermID(nil), candidates...),
	}
	for i, x := range observed {
		post := make([]float64, len(candidates))
		sum := 0.0
		for j, t := range candidates {
			p := prior[t] * bg.Likelihood(t, x)
			post[j] = p
			sum += p
		}
		if sum <= 0 {
			// Degenerate: fall back to the prior itself.
			for j, t := range candidates {
				post[j] = prior[t]
				sum += prior[t]
			}
		}
		best := 0
		for j := range post {
			post[j] /= sum
			if post[j] > post[best] {
				best = j
			}
		}
		att.Posterior[i] = post
		att.Guess[i] = candidates[best]
	}
	return att
}

// Accuracy returns the fraction of correctly attributed elements.
func Accuracy(guess, truth []corpus.TermID) float64 {
	if len(guess) == 0 || len(guess) != len(truth) {
		return 0
	}
	hit := 0
	for i := range guess {
		if guess[i] == truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(guess))
}

// PriorAccuracy returns the accuracy of the best prior-only guesser
// (always picking the most probable term), the baseline any attack
// must beat to have learned anything from the index.
func PriorAccuracy(truth []corpus.TermID, prior map[corpus.TermID]float64) float64 {
	if len(truth) == 0 {
		return 0
	}
	var best corpus.TermID
	bestP := math.Inf(-1)
	for t, p := range prior {
		if p > bestP {
			best, bestP = t, p
		}
	}
	hit := 0
	for _, t := range truth {
		if t == best {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// AmplificationStats summarizes posterior/prior ratios over elements:
// the empirical Definition 1 quantity for facts of the form "element i
// belongs to term t".
type AmplificationStats struct {
	// Mean and Max are over the true term of each element:
	// posterior_i(truth_i) / prior(truth_i).
	Mean, Max float64
}

// Amplification measures how much the index raised the adversary's
// confidence in the true attribution relative to her prior.
func Amplification(att Attribution, truth []corpus.TermID, prior map[corpus.TermID]float64) AmplificationStats {
	idx := make(map[corpus.TermID]int, len(att.Candidates))
	for j, t := range att.Candidates {
		idx[t] = j
	}
	var sum, max float64
	n := 0
	for i, t := range truth {
		j, ok := idx[t]
		if !ok || prior[t] <= 0 {
			continue
		}
		ratio := att.Posterior[i][j] / prior[t]
		sum += ratio
		if ratio > max {
			max = ratio
		}
		n++
	}
	if n == 0 {
		return AmplificationStats{}
	}
	return AmplificationStats{Mean: sum / float64(n), Max: max}
}

// RequestCountAttack models threat 2 of Section 4.1: the adversary
// observes how many responses a top-k query against a merged list
// consumed and guesses the queried term by maximum posterior,
// combining her prior with a count-match likelihood (a unit of
// expected-count mismatch costs countPenalty nats). When every merged
// term has the same expected count — BFM's design goal — the rule
// degenerates to the prior guesser, so the attack can never do worse
// than the baseline in expectation.
func RequestCountAttack(observed float64, expected, prior map[corpus.TermID]float64) corpus.TermID {
	const countPenalty = 3.0
	var best corpus.TermID
	bestScore := math.Inf(-1)
	first := true
	for t, e := range expected {
		p := prior[t]
		if p <= 0 {
			p = 1e-12
		}
		score := math.Log(p) - countPenalty*math.Abs(e-observed)
		if score > bestScore || (score == bestScore && (first || t < best)) {
			best, bestScore = t, score
			first = false
		}
	}
	return best
}
