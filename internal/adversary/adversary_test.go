package adversary

import (
	"math"
	"testing"

	"zerberr/internal/corpus"
	"zerberr/internal/stats"
)

// twoTermWorld builds background + observations for two terms with
// controllable separation: term 1's scores are drawn near loc1, term
// 2's near loc2 (both with jitter), so separation loc2-loc1 dictates
// attack difficulty.
func twoTermWorld(loc1, loc2 float64, n int, seed uint64) (bg *Background, observed []float64, truth []corpus.TermID) {
	g := stats.NewRNG(seed)
	gen := func(loc float64, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Mod(math.Abs(loc+0.05*g.NormFloat64()), 1)
		}
		return out
	}
	bgScores := map[corpus.TermID][]float64{
		1: gen(loc1, 2000),
		2: gen(loc2, 2000),
	}
	bg = NewBackground(bgScores, 64, 0, 1)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			observed = append(observed, gen(loc1, 1)[0])
			truth = append(truth, 1)
		} else {
			observed = append(observed, gen(loc2, 1)[0])
			truth = append(truth, 2)
		}
	}
	return bg, observed, truth
}

func uniformPrior() map[corpus.TermID]float64 {
	return map[corpus.TermID]float64{1: 0.5, 2: 0.5}
}

func TestAttributeSeparableDistributions(t *testing.T) {
	bg, observed, truth := twoTermWorld(0.2, 0.7, 400, 1)
	att := Attribute(observed, []corpus.TermID{1, 2}, uniformPrior(), bg)
	acc := Accuracy(att.Guess, truth)
	if acc < 0.95 {
		t.Fatalf("separable distributions: accuracy %v, want > 0.95", acc)
	}
	amp := Amplification(att, truth, uniformPrior())
	if amp.Mean < 1.5 {
		t.Fatalf("separable distributions: mean amplification %v, want well above 1", amp.Mean)
	}
}

func TestAttributeIdenticalDistributions(t *testing.T) {
	// Same location: the attack can do no better than the prior.
	bg, observed, truth := twoTermWorld(0.5, 0.5, 400, 2)
	att := Attribute(observed, []corpus.TermID{1, 2}, uniformPrior(), bg)
	acc := Accuracy(att.Guess, truth)
	if math.Abs(acc-0.5) > 0.1 {
		t.Fatalf("identical distributions: accuracy %v, want about 0.5", acc)
	}
	amp := Amplification(att, truth, uniformPrior())
	if amp.Mean > 1.25 {
		t.Fatalf("identical distributions: mean amplification %v, want near 1", amp.Mean)
	}
}

func TestAttributeRespectsPrior(t *testing.T) {
	bg, observed, _ := twoTermWorld(0.5, 0.5, 200, 3)
	skewed := map[corpus.TermID]float64{1: 0.9, 2: 0.1}
	att := Attribute(observed, []corpus.TermID{1, 2}, skewed, bg)
	ones := 0
	for _, gss := range att.Guess {
		if gss == 1 {
			ones++
		}
	}
	if ones < len(att.Guess)*8/10 {
		t.Fatalf("with 0.9 prior on term 1, only %d/%d guesses were term 1", ones, len(att.Guess))
	}
}

func TestPosteriorNormalized(t *testing.T) {
	bg, observed, _ := twoTermWorld(0.3, 0.6, 50, 4)
	att := Attribute(observed, []corpus.TermID{1, 2}, uniformPrior(), bg)
	for i, post := range att.Posterior {
		sum := 0.0
		for _, p := range post {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("element %d posterior sums to %v", i, sum)
		}
	}
}

func TestAccuracyEdge(t *testing.T) {
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	if Accuracy([]corpus.TermID{1}, []corpus.TermID{1, 2}) != 0 {
		t.Error("length mismatch should be 0")
	}
	if got := Accuracy([]corpus.TermID{1, 2}, []corpus.TermID{1, 1}); got != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", got)
	}
}

func TestPriorAccuracy(t *testing.T) {
	truth := []corpus.TermID{1, 1, 1, 2}
	prior := map[corpus.TermID]float64{1: 0.75, 2: 0.25}
	if got := PriorAccuracy(truth, prior); got != 0.75 {
		t.Errorf("PriorAccuracy = %v, want 0.75", got)
	}
	if got := PriorAccuracy(nil, prior); got != 0 {
		t.Errorf("empty PriorAccuracy = %v", got)
	}
}

func TestBackgroundUnknownTermUniform(t *testing.T) {
	bg := NewBackground(map[corpus.TermID][]float64{1: {0.5}}, 10, 0, 1)
	if got := bg.Likelihood(99, 0.3); got != 0.1 {
		t.Errorf("unknown term likelihood %v, want uniform 0.1", got)
	}
}

func TestBackgroundClampsOutOfRange(t *testing.T) {
	bg := NewBackground(map[corpus.TermID][]float64{1: {-5, 12}}, 4, 0, 1)
	if bg.Likelihood(1, -3) <= 0 || bg.Likelihood(1, 7) <= 0 {
		t.Error("out-of-range values should land in edge bins")
	}
}

func TestRequestCountAttack(t *testing.T) {
	expected := map[corpus.TermID]float64{
		10: 1, // frequent term: one request
		20: 5, // rare term: five requests
	}
	prior := map[corpus.TermID]float64{10: 0.8, 20: 0.2}
	if got := RequestCountAttack(1.2, expected, prior); got != 10 {
		t.Errorf("observed 1.2 requests: guessed %d, want 10", got)
	}
	if got := RequestCountAttack(4.5, expected, prior); got != 20 {
		t.Errorf("observed 4.5 requests: guessed %d, want 20", got)
	}
	// Identical expected counts (BFM): the rule must follow the prior.
	flat := map[corpus.TermID]float64{10: 2, 20: 2}
	if got := RequestCountAttack(2, flat, prior); got != 10 {
		t.Errorf("flat counts: guessed %d, want prior-best 10", got)
	}
}

func TestAmplificationEmpty(t *testing.T) {
	amp := Amplification(Attribution{}, nil, nil)
	if amp.Mean != 0 || amp.Max != 0 {
		t.Error("empty amplification should be zero")
	}
}
