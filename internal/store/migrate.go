package store

// Snapshot transfer and WAL-tail export: the storage hooks beneath
// live shard migration and replica resync (internal/cluster,
// internal/replica). A migration ships ExportSnapshot's atomic
// rank-ordered ZSNAP2 dump, the destination adopts it via
// ImportSnapshot, and TailSince hands over the mutations logged after
// the dump's sequence so the destination can catch up before the
// route flips. Everything shipped is content the source already held
// for an untrusted server — sealed payloads, TRS values, group IDs —
// so the transfer widens no leakage surface.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"zerberr/internal/zerber"
)

// Tail-export errors.
var (
	// ErrNoTail reports a TailSince against an engine that keeps no
	// operation log (Memory): callers must quiesce writes around a full
	// snapshot instead of replaying a tail.
	ErrNoTail = errors.New("store: backend keeps no operation log")
	// ErrTailTruncated reports that compaction already folded part of
	// the requested tail into a snapshot; the caller must re-export and
	// retry from the newer sequence.
	ErrTailTruncated = errors.New("store: requested tail already compacted")
)

// TailOp operation kinds.
const (
	TailOpInsert = "insert"
	TailOpRemove = "remove"
)

// TailOp is one logged mutation in wire-friendly form — what
// Backend.TailSince exports and the admin snapshot-transfer endpoints
// carry between shards.
type TailOp struct {
	Op     string        `json:"op"` // TailOpInsert | TailOpRemove
	List   zerber.ListID `json:"list"`
	Group  int           `json:"group,omitempty"` // insert only
	TRS    float64       `json:"trs,omitempty"`   // insert only
	Sealed []byte        `json:"sealed"`
}

// ExportSnapshot implements Backend for Memory. The engine keeps no
// log, so the covered sequence is 0 and the export is only
// point-in-time per list (per-list version and elements are read
// atomically); callers that need a globally consistent cut must pause
// writes around the call.
func (m *Memory) ExportSnapshot() ([]byte, uint64, error) {
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, 0, m); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), 0, nil
}

// ImportSnapshot implements Backend for Memory.
func (m *Memory) ImportSnapshot(data []byte) error {
	_, src, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	m.adopt(src)
	return nil
}

// TailSince implements Backend for Memory: there is no log.
func (m *Memory) TailSince(uint64) ([]TailOp, error) {
	return nil, ErrNoTail
}

// ExportSnapshot implements Backend for Durable: the dump covers
// exactly the operations logged up to the returned sequence. Writers
// wait out the encode (it holds d.mu); readers proceed.
func (d *Durable) ExportSnapshot() ([]byte, uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed.Load() {
		return nil, 0, ErrClosed
	}
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, d.seq, d.mem); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), d.seq, nil
}

// ImportSnapshot implements Backend for Durable: the imported state is
// persisted as this directory's snapshot — re-sequenced to the local
// WAL position so recovery semantics are unchanged — before memory
// adopts it and the WAL restarts empty. A crash before the snapshot
// rename leaves the old state intact; after it, recovery boots the
// imported state.
func (d *Durable) ImportSnapshot(data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	_, mem, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	// Settle in-flight group commits before truncating the log they
	// are writing to (no new ones can form — we hold d.mu).
	if d.committer != nil {
		_ = d.committer.drain()
	}
	// Keep this directory's epoch for lists minted after the import;
	// imported lists carry the source's persisted versions.
	mem.verBase = d.mem.verBase
	if err := writeSnapshot(filepath.Join(d.dir, snapFileName), d.seq, mem); err != nil {
		return fmt.Errorf("store: persisting imported snapshot: %w", err)
	}
	if err := d.wal.reset(); err != nil {
		return fmt.Errorf("store: truncating WAL after import: %w", err)
	}
	d.mem.adopt(mem)
	// The snapshot captured the imported state and the log restarted
	// empty: any earlier ambiguous write is moot, same as snapshotLocked.
	d.clearPoison()
	d.opsSinceSnap = 0
	d.walBase = d.seq
	return nil
}

// TailSince implements Backend for Durable: the decoded WAL records
// with sequence > after, in log order. Synchronous appends flush each
// record to the file before returning; with group commit the drain
// below is the barrier that flushes the queue — either way the scan
// under d.mu observes every logged operation.
func (d *Durable) TailSince(after uint64) ([]TailOp, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed.Load() {
		return nil, ErrClosed
	}
	if after >= d.seq {
		return nil, nil
	}
	if after < d.walBase {
		return nil, fmt.Errorf("%w: log restarts at seq %d, tail requested after %d", ErrTailTruncated, d.walBase, after)
	}
	if d.committer != nil {
		if err := d.committer.drain(); err != nil {
			return nil, fmt.Errorf("store: flushing commit queue for tail export: %w", err)
		}
	}
	var ops []TailOp
	err := readWALTail(filepath.Join(d.dir, walFileName), after, func(rec walRecord) {
		op := TailOp{List: rec.list, Sealed: rec.sealed}
		switch rec.op {
		case opInsert:
			op.Op, op.Group, op.TRS = TailOpInsert, rec.group, rec.trs
		case opRemove:
			op.Op = TailOpRemove
		}
		ops = append(ops, op)
	})
	if err != nil {
		return nil, err
	}
	return ops, nil
}

// readWALTail scans the log read-only and calls apply for every record
// with seq > afterSeq. Unlike recovery's replayWAL it tolerates
// nothing: the log belongs to a live store whose appends are fully
// flushed, so any framing damage is a real error, and the file is
// never modified.
func readWALTail(path string, afterSeq uint64, apply func(walRecord)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrBadWAL, err)
	}
	if string(magic) != string(walMagic) {
		return fmt.Errorf("%w: magic %q", ErrBadWAL, magic)
	}
	for {
		payloadLen, err := binary.ReadUvarint(br)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: torn length prefix on a live log: %v", ErrBadWAL, err)
		}
		if payloadLen > maxWALRecord {
			return fmt.Errorf("%w: record of %d bytes", ErrBadWAL, payloadLen)
		}
		frame := make([]byte, payloadLen+4)
		if _, err := io.ReadFull(br, frame); err != nil {
			return fmt.Errorf("%w: torn record on a live log: %v", ErrBadWAL, err)
		}
		payload, sum := frame[:payloadLen], binary.BigEndian.Uint32(frame[payloadLen:])
		if crc32.ChecksumIEEE(payload) != sum {
			return fmt.Errorf("%w: checksum mismatch on a live log", ErrBadWAL)
		}
		recs, err := decodeWALRecords(payload)
		if err != nil {
			return fmt.Errorf("%w: undecodable record: %v", ErrBadWAL, err)
		}
		for _, rec := range recs {
			if rec.seq > afterSeq {
				apply(rec)
			}
		}
	}
}
