package store

// Tests for the verifiable-read path: QueryProved windows verify under
// proof.VerifyWindow, match plain Query element-for-element, survive
// mutations incrementally, and commitments persist through snapshots
// and recovery.

import (
	"fmt"
	"reflect"
	"testing"

	"zerberr/internal/proof"
	"zerberr/internal/zerber"
)

// provedFixture loads a three-group list into a backend.
func provedFixture(t testing.TB, b Backend, list zerber.ListID) {
	t.Helper()
	els := []Element{
		el("a1", 9.5, 1), el("a2", 7.0, 1), el("a3", 4.0, 1), el("a4", 2.0, 1),
		el("b1", 8.0, 2), el("b2", 3.0, 2),
		el("c1", 9.0, 3), el("c2", 6.0, 3), el("c3", 5.0, 3), el("c4", 0.5, 3),
	}
	for _, e := range els {
		if err := b.Insert(list, e); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
}

// verifyProved runs both Query and QueryProved for one window, checks
// they agree exactly, and verifies the proof.
func verifyProved(t *testing.T, b Backend, list zerber.ListID, allowed map[int]bool, offset, count int) {
	t.Helper()
	plain, err := b.Query(list, allowed, offset, count)
	if err != nil {
		t.Fatalf("Query(%d,%d): %v", offset, count, err)
	}
	proved, err := b.QueryProved(list, allowed, offset, count)
	if err != nil {
		t.Fatalf("QueryProved(%d,%d): %v", offset, count, err)
	}
	if plain.Proof != nil {
		t.Fatal("plain Query carried a proof")
	}
	if proved.Proof == nil {
		t.Fatal("QueryProved carried no proof")
	}
	if !reflect.DeepEqual(plain.Elements, proved.Elements) ||
		plain.Exhausted != proved.Exhausted || plain.Version != proved.Version {
		t.Fatalf("proved window differs from plain:\nplain  %+v\nproved %+v", plain, proved)
	}
	elems := make([]proof.WindowElement, len(proved.Elements))
	for i, e := range proved.Elements {
		elems[i] = proof.WindowElement{TRS: e.TRS, Sealed: e.Sealed, Group: e.Group}
	}
	if err := proof.VerifyWindow(proved.Proof, allowed, offset, count, elems, proved.Exhausted, proved.Version); err != nil {
		t.Fatalf("VerifyWindow(%v,%d,%d): %v", allowed, offset, count, err)
	}
}

func TestQueryProvedContract(t *testing.T) {
	views := []map[int]bool{
		nil,
		{1: true, 3: true},
		{2: true},
		{1: true},
		{4: true}, // no visible elements at all
	}
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			provedFixture(t, b, 1)
			for _, allowed := range views {
				for _, q := range []struct{ offset, count int }{
					{0, 3}, {0, 100}, {2, 4}, {5, 5}, {9, 3}, {15, 2}, {0, 1},
				} {
					verifyProved(t, b, 1, allowed, q.offset, q.count)
				}
			}
			if _, err := b.QueryProved(99, nil, 0, 1); err != ErrUnknownList {
				t.Errorf("unknown list: got %v", err)
			}
			if _, err := b.Commitment(99); err != ErrUnknownList {
				t.Errorf("unknown list commitment: got %v", err)
			}
		})
	}
}

// TestQueryProvedIncremental checks the commitment is maintained, not
// rebuilt wholesale: after the first proved read materializes leaves,
// inserts and removals keep later proofs valid and move the root.
func TestQueryProvedIncremental(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			provedFixture(t, b, 1)
			allowed := map[int]bool{1: true, 2: true, 3: true}
			verifyProved(t, b, 1, allowed, 0, 4)
			c0, err := b.Commitment(1)
			if err != nil {
				t.Fatal(err)
			}

			if err := b.Insert(1, el("a0", 11.0, 1)); err != nil {
				t.Fatal(err)
			}
			verifyProved(t, b, 1, allowed, 0, 4)
			c1, err := b.Commitment(1)
			if err != nil {
				t.Fatal(err)
			}
			if c1.Root == c0.Root || c1.Content == c0.Content || c1.Version == c0.Version {
				t.Error("insert did not move the commitment")
			}
			if c1.Elements != c0.Elements+1 {
				t.Errorf("element count %d, want %d", c1.Elements, c0.Elements+1)
			}

			if err := b.Remove(1, []byte("b1"), nil); err != nil {
				t.Fatal(err)
			}
			verifyProved(t, b, 1, allowed, 0, 100)
			verifyProved(t, b, 1, map[int]bool{2: true}, 0, 100)
			c2, err := b.Commitment(1)
			if err != nil {
				t.Fatal(err)
			}
			if c2.Root == c1.Root || c2.Elements != c1.Elements-1 {
				t.Error("removal did not move the commitment")
			}

			// Removing a group's last element must drop its header from
			// the content root entirely.
			if err := b.Remove(1, []byte("b2"), nil); err != nil {
				t.Fatal(err)
			}
			verifyProved(t, b, 1, allowed, 0, 100)
			res, err := b.QueryProved(1, allowed, 0, 100)
			if err != nil {
				t.Fatal(err)
			}
			for _, gw := range res.Proof.Groups {
				if gw.Group == 2 {
					t.Error("emptied group still committed")
				}
			}
		})
	}
}

// TestCommitmentMigrationIdentity: two instances holding identical
// elements under different mutation histories share the content root
// but not the version-bound list root — the property migration's
// cut-over identity check rests on.
func TestCommitmentMigrationIdentity(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	provedFixture(t, a, 1)
	// Same elements, different insert order plus a remove — different
	// version trails, same final content.
	for _, e := range []Element{
		el("c4", 0.5, 3), el("b2", 3.0, 2), el("a4", 2.0, 1), el("zz", 1.0, 9),
		el("c3", 5.0, 3), el("a3", 4.0, 1), el("b1", 8.0, 2), el("c2", 6.0, 3),
		el("a2", 7.0, 1), el("c1", 9.0, 3), el("a1", 9.5, 1),
	} {
		if err := b.Insert(1, e); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Remove(1, []byte("zz"), nil); err != nil {
		t.Fatal(err)
	}
	ca, err := a.Commitment(1)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Commitment(1)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Content != cb.Content {
		t.Error("identical content, different content roots")
	}
	if ca.Version == cb.Version {
		t.Fatal("test premise broken: versions collided")
	}
	if ca.Root == cb.Root {
		t.Error("different versions, same list root")
	}
}

// TestCommitmentSurvivesRecovery: leaves materialized by a proved read
// are persisted by the snapshot (ZSNAP3) and recovered, so the content
// root is stable across restart and proofs keep verifying.
func TestCommitmentSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	provedFixture(t, d, 1)
	allowed := map[int]bool{1: true, 2: true, 3: true}
	verifyProved(t, d, 1, allowed, 1, 4)
	before, err := d.Commitment(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	after, err := d2.Commitment(1)
	if err != nil {
		t.Fatal(err)
	}
	if after.Content != before.Content {
		t.Errorf("content root moved across recovery: %s -> %s", before.Content.Short(), after.Content.Short())
	}
	if after.Version != before.Version {
		t.Errorf("version moved across recovery: %d -> %d", before.Version, after.Version)
	}
	if after.Root != before.Root {
		t.Error("list root moved across recovery")
	}
	verifyProved(t, d2, 1, allowed, 0, 100)
	verifyProved(t, d2, 1, map[int]bool{3: true}, 2, 2)

	// Mutations after recovery keep the recovered leaves consistent.
	if err := d2.Insert(1, el("post", 5.5, 2)); err != nil {
		t.Fatal(err)
	}
	verifyProved(t, d2, 1, allowed, 0, 100)
}

// TestSnapshotWithoutLeaves: a list nobody ever audited snapshots
// without leaves (no forced hashing), recovers fine, and its first
// proved read after recovery builds the commitment from scratch.
func TestSnapshotWithoutLeaves(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	provedFixture(t, d, 1)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	verifyProved(t, d2, 1, map[int]bool{1: true, 2: true, 3: true}, 0, 100)
}

// TestProvedWindowStableUnderConcurrentReads: proofs built under the
// write lock verify against the exact version they were read at even
// while writers interleave.
func TestProvedWindowStableUnderConcurrentReads(t *testing.T) {
	m := NewMemory()
	provedFixture(t, m, 1)
	allowed := map[int]bool{1: true, 2: true, 3: true}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			m.Insert(1, el(fmt.Sprintf("w%03d", i), float64(i%17), 1+i%3))
		}
	}()
	for i := 0; i < 100; i++ {
		res, err := m.QueryProved(1, allowed, i%5, 4)
		if err != nil {
			t.Fatal(err)
		}
		elems := make([]proof.WindowElement, len(res.Elements))
		for j, e := range res.Elements {
			elems[j] = proof.WindowElement{TRS: e.TRS, Sealed: e.Sealed, Group: e.Group}
		}
		if err := proof.VerifyWindow(res.Proof, allowed, i%5, 4, elems, res.Exhausted, res.Version); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	<-done
}
