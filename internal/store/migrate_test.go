package store

// Snapshot-transfer and WAL-tail tests: the storage contract live
// shard migration rests on. Export→import must reproduce content AND
// per-list versions bit-identically (version-keyed caches must stay
// coherent across a move), and TailSince must hand over exactly the
// operations logged after the exported sequence.

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"zerberr/internal/zerber"
)

func seedBackend(t *testing.T, b Backend, lists, perList int) {
	t.Helper()
	for l := 0; l < lists; l++ {
		for i := 0; i < perList; i++ {
			el := Element{
				Sealed: []byte(fmt.Sprintf("list%d-el%d", l, i)),
				TRS:    float64(i%7) * 0.125,
				Group:  i % 3,
			}
			if err := b.Insert(zerber.ListID(l), el); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// assertSameContent checks dst holds exactly src's lists, elements (in
// rank order) and versions.
func assertSameContent(t *testing.T, src, dst Backend) {
	t.Helper()
	assertSameContentWhere(t, src, dst, func(zerber.ListID) bool { return true })
}

// assertSameContentWhere is assertSameContent with version equality
// limited to lists satisfying checkVersion: lists minted fresh on both
// sides after a snapshot transfer carry each instance's own random
// epoch (content identical, counters intentionally disjoint).
func assertSameContentWhere(t *testing.T, src, dst Backend, checkVersion func(zerber.ListID) bool) {
	t.Helper()
	srcLists, err := src.Lists()
	if err != nil {
		t.Fatal(err)
	}
	dstLists, err := dst.Lists()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srcLists, dstLists) {
		t.Fatalf("lists diverge: %v vs %v", srcLists, dstLists)
	}
	for _, id := range srcLists {
		sv, err := src.Version(id)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := dst.Version(id)
		if err != nil {
			t.Fatal(err)
		}
		if sv != dv && checkVersion(id) {
			t.Fatalf("list %d: version %d vs %d", id, sv, dv)
		}
		var want, got []Element
		if err := src.View(id, func(e []Element) { want = append([]Element(nil), e...) }); err != nil {
			t.Fatal(err)
		}
		if err := dst.View(id, func(e []Element) { got = append([]Element(nil), e...) }); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("list %d: content diverges (%d vs %d elements)", id, len(want), len(got))
		}
	}
}

func TestSnapshotExportImportRoundTrip(t *testing.T) {
	for name, mk := range map[string]func(t *testing.T) Backend{
		"memory": func(t *testing.T) Backend { return NewMemory() },
		"durable": func(t *testing.T) Backend {
			d, err := OpenDurable(t.TempDir(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		},
	} {
		t.Run(name, func(t *testing.T) {
			src := mk(t)
			seedBackend(t, src, 4, 25)
			// A removal so versions are not simply element counts.
			if err := src.Remove(1, []byte("list1-el3"), nil); err != nil {
				t.Fatal(err)
			}
			data, _, err := src.ExportSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			dst := mk(t)
			seedBackend(t, dst, 2, 5) // pre-import content must vanish
			if err := dst.ImportSnapshot(data); err != nil {
				t.Fatal(err)
			}
			assertSameContent(t, src, dst)
			// Writes after the import keep versions in lockstep, since
			// the imported counters continue from the source's values.
			el := Element{Sealed: []byte("post-import"), TRS: 0.5, Group: 0}
			if err := src.Insert(2, el); err != nil {
				t.Fatal(err)
			}
			if err := dst.Insert(2, el); err != nil {
				t.Fatal(err)
			}
			assertSameContent(t, src, dst)
		})
	}
}

func TestDurableImportPersists(t *testing.T) {
	src, err := OpenDurable(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	seedBackend(t, src, 3, 10)
	data, _, err := src.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	dst, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedBackend(t, dst, 1, 4)
	if err := dst.ImportSnapshot(data); err != nil {
		t.Fatal(err)
	}
	// A write after the import must survive the reopen too (the WAL
	// restarted empty at the import's sequence).
	if err := dst.Insert(7, Element{Sealed: []byte("tail-write"), TRS: 1, Group: 0}); err != nil {
		t.Fatal(err)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertSameContent(t, src, mustWithout(t, re, 7))
	if n, _ := re.Len(7); n != 1 {
		t.Fatalf("post-import write lost across reopen: len=%d", n)
	}
}

// mustWithout views the backend minus one list, so recovered state can
// be compared against a source that never held it.
func mustWithout(t *testing.T, b Backend, drop zerber.ListID) Backend {
	t.Helper()
	m := NewMemory()
	lists, err := b.Lists()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range lists {
		if id == drop {
			continue
		}
		v, err := b.Version(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.View(id, func(e []Element) {
			m.load(id, append([]Element(nil), e...), true, v)
		}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestDurableTailSince(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	seedBackend(t, d, 2, 5)
	cut := d.Seq()
	if ops, err := d.TailSince(cut); err != nil || len(ops) != 0 {
		t.Fatalf("tail at head: %v ops, err=%v", len(ops), err)
	}
	// Three more operations: two inserts and a remove.
	if err := d.Insert(9, Element{Sealed: []byte("a"), TRS: 0.25, Group: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(9, Element{Sealed: []byte("b"), TRS: 0.75, Group: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(0, []byte("list0-el0"), nil); err != nil {
		t.Fatal(err)
	}
	ops, err := d.TailSince(cut)
	if err != nil {
		t.Fatal(err)
	}
	want := []TailOp{
		{Op: TailOpInsert, List: 9, Group: 1, TRS: 0.25, Sealed: []byte("a")},
		{Op: TailOpInsert, List: 9, Group: 2, TRS: 0.75, Sealed: []byte("b")},
		{Op: TailOpRemove, List: 0, Sealed: []byte("list0-el0")},
	}
	if !reflect.DeepEqual(ops, want) {
		t.Fatalf("tail = %+v, want %+v", ops, want)
	}
	// Replaying the tail onto a snapshot taken at the cut reproduces
	// the live state exactly — the migration invariant.
	// (Snapshot-at-cut was not kept; re-derive by import+replay onto a
	// fresh memory of the current export minus the tail is circular, so
	// just assert compaction invalidates old cuts instead.)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TailSince(cut); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("tail across a compaction: err=%v, want ErrTailTruncated", err)
	}
	if ops, err := d.TailSince(d.Seq()); err != nil || len(ops) != 0 {
		t.Fatalf("tail at compacted head: %v ops, err=%v", len(ops), err)
	}
}

func TestSnapshotTailReplayIdentity(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	seedBackend(t, d, 3, 8)
	data, seq, err := d.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Mutations after the export — the tail a migration must replay.
	seedBackend(t, d, 5, 3)
	if err := d.Remove(2, []byte("list2-el1"), nil); err != nil {
		t.Fatal(err)
	}
	tail, err := d.TailSince(seq)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewMemory()
	if err := dst.ImportSnapshot(data); err != nil {
		t.Fatal(err)
	}
	for _, op := range tail {
		switch op.Op {
		case TailOpInsert:
			err = dst.Insert(op.List, Element{Sealed: op.Sealed, TRS: op.TRS, Group: op.Group})
		case TailOpRemove:
			err = dst.Remove(op.List, op.Sealed, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	// Versions carry over exactly for every list the snapshot held;
	// lists 3 and 4 were minted after the export, so each side seeds
	// them with its own random epoch (content still identical).
	assertSameContentWhere(t, d, dst, func(id zerber.ListID) bool { return id < 3 })
}

func TestMemoryTailUnsupported(t *testing.T) {
	if _, err := NewMemory().TailSince(0); !errors.Is(err, ErrNoTail) {
		t.Fatalf("err=%v, want ErrNoTail", err)
	}
}

func TestImportRejectsCorruptSnapshot(t *testing.T) {
	m := NewMemory()
	seedBackend(t, m, 1, 3)
	data, _, err := m.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	dst := NewMemory()
	seedBackend(t, dst, 1, 2)
	if err := dst.ImportSnapshot(data); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err=%v, want ErrBadSnapshot", err)
	}
	// The failed import must leave the destination untouched.
	if n, _ := dst.NumElements(); n != 2 {
		t.Fatalf("failed import mutated the store: %d elements", n)
	}
}
