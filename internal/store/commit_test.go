package store

// Tests for the write-path overhaul: group commit, batched WAL
// records, and the durability contract they share with the synchronous
// per-operation path.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"zerberr/internal/zerber"
)

// walFrames walks a store's WAL file and returns how many framed
// records it holds and how many decoded operations they carry (a batch
// record counts its elements). It fails on any framing damage — the
// file under test is expected whole.
func walFrames(t *testing.T, dir string) (frames, ops int) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, walMagic) {
		t.Fatal("WAL missing magic")
	}
	rd := newByteCursor(data[len(walMagic):])
	for rd.remaining() > 0 {
		n, err := binary.ReadUvarint(rd)
		if err != nil {
			t.Fatalf("frame %d length: %v", frames, err)
		}
		payload, err := rd.take(int(n))
		if err != nil {
			t.Fatalf("frame %d payload: %v", frames, err)
		}
		crc, err := rd.take(4)
		if err != nil {
			t.Fatalf("frame %d crc: %v", frames, err)
		}
		if binary.BigEndian.Uint32(crc) != crc32.ChecksumIEEE(payload) {
			t.Fatalf("frame %d checksum mismatch", frames)
		}
		recs, err := decodeWALRecords(payload)
		if err != nil {
			t.Fatalf("frame %d decode: %v", frames, err)
		}
		frames++
		ops += len(recs)
	}
	return frames, ops
}

// TestInsertBatchSingleWALRecord pins the batched write's log cost: a
// 1000-element InsertBatch emits exactly one framed WAL record, bumps
// the list's version once per element, lands in the tail export in
// order, and survives a restart byte-identically.
func TestInsertBatchSingleWALRecord(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// One plain insert first, to learn the instance's version epoch.
	if err := d.Insert(1, el("probe", 1, 0)); err != nil {
		t.Fatal(err)
	}
	base := mustVersion(t, d, 1) - 1

	const n = 1000
	ops := make([]BatchInsert, n)
	for i := range ops {
		ops[i] = BatchInsert{List: 7, Element: el(fmt.Sprintf("b%04d", i), float64(i%97), i%5)}
	}
	if err := d.InsertBatch(ops); err != nil {
		t.Fatal(err)
	}
	frames, logged := walFrames(t, d.dir)
	if frames != 2 { // the probe's record + one batch record
		t.Fatalf("probe + %d-element batch logged as %d WAL records, want 2", n, frames)
	}
	if logged != n+1 {
		t.Fatalf("WAL carries %d operations, want %d", logged, n+1)
	}
	if v := mustVersion(t, d, 7); v != base+n {
		t.Fatalf("batch of %d bumped version to base+%d, want one bump per element", n, v-base)
	}
	// The tail export must see every element of the batch, in batch
	// order, as ordinary insert ops.
	tail, err := d.TailSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != n+1 {
		t.Fatalf("tail holds %d ops, want %d", len(tail), n+1)
	}
	for i, op := range tail[1:] {
		if op.Op != TailOpInsert || string(op.Sealed) != string(ops[i].Element.Sealed) {
			t.Fatalf("tail op %d: %q %q, want insert %q", i, op.Op, op.Sealed, ops[i].Element.Sealed)
		}
	}
	want := dump(t, d)
	wantVer := mustVersion(t, d, 7)

	// Replay identity, through both the synchronous and the grouped
	// open paths — a batched-record data dir is one data dir.
	d = reopen(t, d, Options{SnapshotEvery: -1})
	if got := dump(t, d); !reflect.DeepEqual(got, want) {
		t.Fatal("state after batched-WAL recovery differs")
	}
	if v := mustVersion(t, d, 7); v != wantVer {
		t.Fatalf("recovered version %d, want %d", v, wantVer)
	}
	d = reopen(t, d, Options{SnapshotEvery: -1, GroupCommitWindow: DefaultCommitWindow})
	if got := dump(t, d); !reflect.DeepEqual(got, want) {
		t.Fatal("state after grouped reopen differs")
	}
	if v := mustVersion(t, d, 7); v != wantVer {
		t.Fatalf("grouped reopen version %d, want %d", v, wantVer)
	}
}

// TestInsertBatchChunksOversizedRecord: a batch whose encoding would
// blow the single-record bound is split across records, invisibly to
// the caller.
func TestInsertBatchChunksOversizedRecord(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 6<<20) // 6 MiB sealed payload
	for i := range big {
		big[i] = byte(i)
	}
	ops := make([]BatchInsert, 4)
	for i := range ops {
		ops[i] = BatchInsert{List: 3, Element: Element{Sealed: big, TRS: float64(i), Group: i}}
	}
	if err := d.InsertBatch(ops); err != nil {
		t.Fatal(err)
	}
	frames, logged := walFrames(t, d.dir)
	if frames < 2 {
		t.Fatalf("4×6MiB batch logged as %d records, expected chunking", frames)
	}
	if logged != len(ops) {
		t.Fatalf("WAL carries %d operations, want %d", logged, len(ops))
	}
	want := dump(t, d)
	d = reopen(t, d, Options{SnapshotEvery: -1})
	if got := dump(t, d); !reflect.DeepEqual(got, want) {
		t.Fatal("chunked batch did not survive recovery")
	}
}

// TestGroupCommitReadDuringFsync is the lock-scope fix's proof: while
// a durable mutation sits in the commit window waiting for its fsync,
// a concurrent read of the same list completes — the list lock is
// released before the wait, so readers only ever wait on memory locks,
// never on the disk.
func TestGroupCommitReadDuringFsync(t *testing.T) {
	const window = 150 * time.Millisecond
	d, err := OpenDurable(t.TempDir(), Options{
		SnapshotEvery:     -1,
		FsyncEach:         true,
		GroupCommitWindow: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	seed := make([]BatchInsert, 4)
	for i := range seed {
		seed[i] = BatchInsert{List: 1, Element: el(fmt.Sprintf("g%d", i), float64(i), 0)}
	}
	if err := d.InsertBatch(seed); err != nil {
		t.Fatal(err)
	}

	removeDone := make(chan time.Time, 1)
	go func() {
		if err := d.Remove(1, []byte("g0"), nil); err != nil {
			t.Error(err)
		}
		removeDone <- time.Now()
	}()
	// Let the remove apply to memory and enqueue its record; it then
	// sits out the commit window before its fsync completes.
	time.Sleep(window / 5)
	res, err := d.Query(1, nil, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	queryDone := time.Now()
	if !queryDone.Before(<-removeDone) {
		t.Fatal("read blocked behind an in-flight group commit")
	}
	// Memory-ahead semantics: the pending remove is already visible.
	if len(res.Elements) != len(seed)-1 {
		t.Fatalf("query during commit saw %d elements, want %d", len(res.Elements), len(seed)-1)
	}
}

// TestGroupCommitTornCoalescedBuffer crashes a store mid-coalesced
// write: concurrent grouped appends build multi-record commit buffers,
// and the WAL is then truncated at frame boundaries and mid-frame.
// Recovery must keep exactly the fully-framed records and drop the
// torn tail, never failing — the frame, not the coalesced buffer, is
// the recovery unit.
func TestGroupCommitTornCoalescedBuffer(t *testing.T) {
	base := t.TempDir()
	master := filepath.Join(base, "master")
	d, err := OpenDurable(master, Options{
		SnapshotEvery:     -1,
		FsyncEach:         true,
		GroupCommitWindow: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 5
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := el(fmt.Sprintf("w%d-%d", w, i), float64(w*perWriter+i), w%3)
				if err := d.Insert(zerber.ListID(w%4), e); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	batch := make([]BatchInsert, 6)
	for i := range batch {
		batch[i] = BatchInsert{List: 9, Element: el(fmt.Sprintf("batch-%d", i), float64(i), 1)}
	}
	if err := d.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	full := dump(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(master, walFileName))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries and per-frame op counts are the ground truth for
	// what any byte-level truncation must recover.
	type frame struct {
		end int64 // offset just past the frame
		ops int   // cumulative operations through this frame
	}
	var boundaries []frame
	rd := newByteCursor(walBytes[len(walMagic):])
	total := 0
	for rd.remaining() > 0 {
		n, err := binary.ReadUvarint(rd)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := rd.take(int(n))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rd.take(4); err != nil {
			t.Fatal(err)
		}
		recs, err := decodeWALRecords(payload)
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
		boundaries = append(boundaries, frame{end: int64(len(walMagic) + rd.off), ops: total})
	}
	if total != writers*perWriter+len(batch) {
		t.Fatalf("WAL carries %d ops, want %d", total, writers*perWriter+len(batch))
	}

	// Cut at every boundary, one byte past it (torn length prefix), and
	// mid-frame — the shapes a crash mid-coalesced-write leaves behind.
	cuts := []int64{int64(len(walMagic))}
	prev := int64(len(walMagic))
	for _, f := range boundaries {
		cuts = append(cuts, f.end, f.end-1, prev+(f.end-prev)/2)
		prev = f.end
	}
	for _, cut := range cuts {
		if cut < int64(len(walMagic)) || cut > int64(len(walBytes)) {
			continue
		}
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walFileName), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		nd, err := OpenDurable(dir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		wantOps := 0
		for _, f := range boundaries {
			if f.end <= cut {
				wantOps = f.ops
			}
		}
		if got := mustNumElements(t, nd); got != wantOps {
			t.Fatalf("cut at %d: recovered %d ops, want the %d fully-framed ones", cut, got, wantOps)
		}
		// Everything recovered must be an element the full history
		// inserted (all ops here are inserts).
		for list, elems := range dump(t, nd) {
			wantList := make(map[string]bool, len(full[list]))
			for _, e := range full[list] {
				wantList[string(e.Sealed)] = true
			}
			for _, e := range elems {
				if !wantList[string(e.Sealed)] {
					t.Fatalf("cut at %d: recovered unknown element %q in list %d", cut, e.Sealed, list)
				}
			}
		}
		// Recovery leaves a consistent dir: a second open agrees.
		state := dump(t, nd)
		nd = reopen(t, nd, Options{})
		if !reflect.DeepEqual(dump(t, nd), state) {
			t.Fatalf("cut at %d: second recovery differs", cut)
		}
		nd.Close()
	}
}

// TestGroupCommitReplayEquivalence is the write-path property test:
// the same randomized history — singles, batches, removes — applied
// through the synchronous path, the grouped path, and the grouped
// fsync path must match a RAM-only reference before recovery and after
// it. Each durable is then reopened under a different commit
// configuration than wrote it, pinning that the on-disk format carries
// no trace of how it was committed.
func TestGroupCommitReplayEquivalence(t *testing.T) {
	opts := []Options{
		{SnapshotEvery: -1},
		{SnapshotEvery: -1, GroupCommitWindow: 50 * time.Microsecond},
		{SnapshotEvery: -1, FsyncEach: true, GroupCommitWindow: 200 * time.Microsecond},
	}
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ref := NewMemory()
			ds := make([]*Durable, len(opts))
			for i, opt := range opts {
				var err error
				if ds[i], err = OpenDurable(t.TempDir(), opt); err != nil {
					t.Fatal(err)
				}
			}
			all := make([]Backend, 0, len(ds)+1)
			all = append(all, ref)
			for _, d := range ds {
				all = append(all, d)
			}
			type liveEl struct {
				list   zerber.ListID
				sealed string
			}
			var live []liveEl
			for op := 0; op < 150; op++ {
				switch {
				case len(live) > 0 && rng.Intn(4) == 0: // remove
					i := rng.Intn(len(live))
					victim := live[i]
					live = append(live[:i], live[i+1:]...)
					for _, b := range all {
						if err := b.Remove(victim.list, []byte(victim.sealed), nil); err != nil {
							t.Fatalf("op %d: remove: %v", op, err)
						}
					}
				case rng.Intn(4) == 0: // batch insert
					batch := make([]BatchInsert, 1+rng.Intn(16))
					for i := range batch {
						list := zerber.ListID(rng.Intn(5))
						sealed := fmt.Sprintf("b%04d-%d", op, i)
						batch[i] = BatchInsert{List: list, Element: el(sealed, float64(rng.Intn(100)), rng.Intn(4))}
						live = append(live, liveEl{list, sealed})
					}
					for _, b := range all {
						if err := b.InsertBatch(batch); err != nil {
							t.Fatalf("op %d: batch: %v", op, err)
						}
					}
				default: // single insert
					list := zerber.ListID(rng.Intn(5))
					sealed := fmt.Sprintf("s%04d", op)
					e := el(sealed, float64(rng.Intn(100)), rng.Intn(4))
					for _, b := range all {
						if err := b.Insert(list, e); err != nil {
							t.Fatalf("op %d: insert: %v", op, err)
						}
					}
					live = append(live, liveEl{list, sealed})
				}
			}
			want := dump(t, ref)
			for i, d := range ds {
				if got := dump(t, d); !reflect.DeepEqual(got, want) {
					t.Fatalf("durable[%d] diverged from reference before recovery", i)
				}
			}
			// Reopen each under the next configuration in the ring.
			for i := range ds {
				ds[i] = reopen(t, ds[i], opts[(i+1)%len(opts)])
				if got := dump(t, ds[i]); !reflect.DeepEqual(got, want) {
					t.Fatalf("durable[%d] diverged after cross-config recovery", i)
				}
			}
		})
	}
}

// TestGroupCommitPoisonAndHeal is the poison test through the commit
// queue: a failed coalesced commit errors its waiter, sticks (later
// mutations are refused before touching the queue — a write after a
// possibly-torn run would bury the damage beyond torn-tail recovery),
// and a successful snapshot clears it. Unlike the synchronous path,
// the failed operation is already in memory — the healing snapshot
// persists it, which is the documented memory-ahead-of-log contract.
func TestGroupCommitPoisonAndHeal(t *testing.T) {
	var logged []string
	d, err := OpenDurable(t.TempDir(), Options{
		SnapshotEvery:     -1,
		GroupCommitWindow: DefaultCommitWindow,
		Logf:              func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Insert(1, el("ok", 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the committer's log handle (under its lock, the way
	// commitPending captures it).
	g := d.committer
	broken, err := os.Open(filepath.Join(d.dir, walFileName)) // read-only: writes fail
	if err != nil {
		t.Fatal(err)
	}
	g.mu.Lock()
	realWAL := g.w
	g.w = &wal{f: broken, bw: bufio.NewWriterSize(broken, 16)}
	g.mu.Unlock()

	if err := d.Insert(1, el("fails", 2, 0)); err == nil {
		t.Fatal("insert over broken WAL succeeded")
	}
	// Memory-ahead: the operation was applied at sequence assignment;
	// only its durability failed.
	if mustLen(t, d, 1) != 2 {
		t.Fatalf("list holds %d elements, want 2 (memory applies ahead of the log)", mustLen(t, d, 1))
	}
	// Sticky: refused before reaching the queue.
	if err := d.Insert(1, el("refused", 3, 0)); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("expected poisoned error, got %v", err)
	}
	if mustLen(t, d, 1) != 2 {
		t.Fatal("refused insert reached memory")
	}
	if len(logged) == 0 {
		t.Fatal("poisoning was not logged")
	}
	// Heal: restore the log and snapshot. The snapshot captures live
	// memory — including the failed-but-applied element — truncates the
	// ambiguous log, and clears both the store's and the committer's
	// sticky state.
	g.mu.Lock()
	g.w = realWAL
	g.mu.Unlock()
	broken.Close()
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(1, el("healed", 4, 0)); err != nil {
		t.Fatalf("insert after healing snapshot: %v", err)
	}
	want := dump(t, d)
	d = reopen(t, d, Options{GroupCommitWindow: DefaultCommitWindow})
	if got := dump(t, d); !reflect.DeepEqual(got, want) {
		t.Fatal("state after heal + recovery differs")
	}
}

// TestDurableLazyRecoveryStats pins the lazy fold-in contract: after a
// restart over a snapshot, every stats read — versions, lengths, list
// enumeration, totals — answers correctly from snapshot metadata
// without decoding a single untouched list, and the first query of a
// list materializes exactly that list.
func TestDurableLazyRecoveryStats(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const lists = 6
	for i := 0; i < 60; i++ {
		list := zerber.ListID(i % lists)
		if err := d.Insert(list, el(fmt.Sprintf("e%02d", i), float64(i), i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Remove(2, []byte("e02"), nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// A WAL tail past the snapshot: replay folds list 0 in eagerly,
	// the other lists must stay lazy.
	if err := d.Insert(0, el("tail-0", 99, 0)); err != nil {
		t.Fatal(err)
	}
	wantDump := dump(t, d)
	wantVers := make(map[zerber.ListID]uint64, lists)
	wantLens := make(map[zerber.ListID]int, lists)
	for i := zerber.ListID(0); i < lists; i++ {
		wantVers[i] = mustVersion(t, d, i)
		wantLens[i] = mustLen(t, d, i)
	}
	wantElems := mustNumElements(t, d)
	wantLists := mustNumLists(t, d)

	d = reopen(t, d, Options{SnapshotEvery: -1})
	// Stats first, before any query: they must come from metadata.
	if got := mustNumLists(t, d); got != wantLists {
		t.Fatalf("NumLists after recovery: %d, want %d", got, wantLists)
	}
	if got := mustNumElements(t, d); got != wantElems {
		t.Fatalf("NumElements after recovery: %d, want %d", got, wantElems)
	}
	for i := zerber.ListID(0); i < lists; i++ {
		if v := mustVersion(t, d, i); v != wantVers[i] {
			t.Fatalf("list %d version after recovery: %d, want %d", i, v, wantVers[i])
		}
		if n := mustLen(t, d, i); n != wantLens[i] {
			t.Fatalf("list %d len after recovery: %d, want %d", i, n, wantLens[i])
		}
	}
	// The stats reads above must not have materialized anything: only
	// list 0 (touched by WAL replay) is decoded.
	d.mem.mu.RLock()
	lazyLeft := len(d.mem.lazy)
	_, lazy5 := d.mem.lazy[5]
	d.mem.mu.RUnlock()
	if lazyLeft != lists-1 || !lazy5 {
		t.Fatalf("%d lists still lazy after stats reads, want %d (list 5 lazy: %v)", lazyLeft, lists-1, lazy5)
	}
	// First touch materializes; content is exact.
	res, err := d.Query(5, nil, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elements) != wantLens[5] {
		t.Fatalf("first query of lazy list: %d elements, want %d", len(res.Elements), wantLens[5])
	}
	d.mem.mu.RLock()
	_, stillLazy := d.mem.lazy[5]
	d.mem.mu.RUnlock()
	if stillLazy {
		t.Fatal("queried list still lazy")
	}
	if got := dump(t, d); !reflect.DeepEqual(got, wantDump) {
		t.Fatal("lazily recovered state differs")
	}
}

// TestDurableLazyConcurrentFirstTouch hammers a freshly recovered
// store from many goroutines at once — the materialize-once path must
// hold up under the race detector and every reader must see the full
// list.
func TestDurableLazyConcurrentFirstTouch(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const perList = 40
	for i := 0; i < 4*perList; i++ {
		if err := d.Insert(zerber.ListID(i%4), el(fmt.Sprintf("c%03d", i), float64(i), i%2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	d = reopen(t, d, Options{SnapshotEvery: -1})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := d.Query(zerber.ListID(w%4), nil, 0, perList)
			if err != nil {
				t.Error(err)
				return
			}
			if len(res.Elements) != perList {
				t.Errorf("worker %d: %d elements, want %d", w, len(res.Elements), perList)
			}
		}(w)
	}
	wg.Wait()
}
