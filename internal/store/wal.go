package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"zerberr/internal/zerber"
)

// Write-ahead log format (integers are unsigned varints unless noted,
// floats 64-bit IEEE big-endian — the serialization idiom of
// internal/index and internal/zerber):
//
//	file:    magic "ZWAL1" | record*
//	record:  payloadLen | payload | crc32-IEEE(payload) (4B big-endian)
//	payload: seq | op (1B) |
//	         op=insert: list | group (signed varint) | trs (8B) |
//	                    sealedLen | sealed
//	         op=remove: list | sealedLen | sealed
//	         op=insertBatch: count | count × (
//	             listDelta (signed varint, vs the previous entry's
//	             list; the first entry's delta is vs list 0) |
//	             group (signed varint) | trs (8B) |
//	             sealedLen | sealed )
//
// The sequence number ties the log to snapshots: a snapshot records
// the last sequence it contains, and recovery skips WAL records at or
// below it, so a crash between snapshot rename and log truncation
// cannot double-apply operations. The trailing CRC frames each record
// so recovery can detect a torn final write and truncate it away.
//
// An insertBatch record is N inserts under one frame: seq is the
// first element's sequence and the record consumes seq..seq+count-1,
// so a batch costs one length prefix, one CRC and (under group
// commit) one fsync instead of N. List IDs are delta-encoded against
// the previous entry — the ZIDX1 idiom — because batches are usually
// sorted or single-list. Torn-tail recovery is per frame: a torn
// batch drops whole, never half-applied.

var walMagic = []byte("ZWAL1")

const (
	opInsert      byte = 1
	opRemove      byte = 2
	opInsertBatch byte = 3

	// maxWALRecord bounds a single record's payload so a corrupted
	// length prefix cannot trigger a huge allocation during recovery.
	maxWALRecord = 1 << 28

	// maxBatchRecordBytes is where InsertBatch splits a batch into
	// multiple records: comfortably under maxWALRecord so a batch can
	// never encode into an unreplayable frame, large enough that any
	// realistic API batch (MaxBatchOps elements) stays one record.
	maxBatchRecordBytes = 1 << 24
)

// ErrBadWAL reports a corrupted write-ahead log (damage before the
// final record, which torn-write truncation cannot explain away).
var ErrBadWAL = errors.New("store: bad write-ahead log")

// walRecord is one logged operation in decoded form.
type walRecord struct {
	seq    uint64
	op     byte
	list   zerber.ListID
	group  int     // insert only
	trs    float64 // insert only
	sealed []byte
}

// appendFrame appends a payload in the on-disk framing — length
// prefix, payload, trailing CRC — to dst. Framing in place is what
// lets the group committer build a coalesced batch buffer without a
// per-record allocation.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// frameRecord wraps a payload in the on-disk framing, returning bytes
// ready for one contiguous write.
func frameRecord(payload []byte) []byte {
	return appendFrame(make([]byte, 0, binary.MaxVarintLen64+len(payload)+4), payload)
}

func encodeWALPayload(rec walRecord) []byte {
	return appendWALPayload(make([]byte, 0, 2*binary.MaxVarintLen64+len(rec.sealed)+16), rec)
}

// appendWALPayload encodes rec onto buf. The hot per-operation paths
// pass a pooled buffer: the payload is copied into the commit batch
// (or the WAL's buffered writer) before append returns, so the bytes
// never outlive the call and single-record inserts stay allocation
// free.
func appendWALPayload(buf []byte, rec walRecord) []byte {
	buf = binary.AppendUvarint(buf, rec.seq)
	buf = append(buf, rec.op)
	buf = binary.AppendUvarint(buf, uint64(rec.list))
	if rec.op == opInsert {
		buf = binary.AppendVarint(buf, int64(rec.group))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(rec.trs))
	}
	buf = binary.AppendUvarint(buf, uint64(len(rec.sealed)))
	buf = append(buf, rec.sealed...)
	return buf
}

// encodeWALBatchPayload encodes N inserts as one opInsertBatch
// payload. firstSeq is the first element's sequence; the record
// consumes firstSeq..firstSeq+len(ops)-1. Callers bound the batch so
// the payload stays under maxWALRecord.
func encodeWALBatchPayload(firstSeq uint64, ops []BatchInsert) []byte {
	size := 2*binary.MaxVarintLen64 + 1
	for i := range ops {
		size += 3*binary.MaxVarintLen64 + 8 + len(ops[i].Element.Sealed)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, firstSeq)
	buf = append(buf, opInsertBatch)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	prev := int64(0)
	for i := range ops {
		el := ops[i].Element
		list := int64(ops[i].List)
		buf = binary.AppendVarint(buf, list-prev)
		prev = list
		buf = binary.AppendVarint(buf, int64(el.Group))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(el.TRS))
		buf = binary.AppendUvarint(buf, uint64(len(el.Sealed)))
		buf = append(buf, el.Sealed...)
	}
	return buf
}

// decodeWALRecords decodes one framed payload into its operations: a
// single walRecord for insert/remove, count records (with consecutive
// sequences) for a batch. Decoding is all-or-nothing — a payload that
// fails mid-batch applies none of it, so replay's torn-tail tolerance
// stays frame-granular. Sealed bytes are copied out of the payload
// buffer.
func decodeWALRecords(payload []byte) ([]walRecord, error) {
	rd := newByteCursor(payload)
	seq, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, err
	}
	op, err := rd.ReadByte()
	if err != nil {
		return nil, err
	}
	switch op {
	case opInsert, opRemove:
		rec := walRecord{seq: seq, op: op}
		list, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, err
		}
		rec.list = zerber.ListID(list)
		if op == opInsert {
			group, err := binary.ReadVarint(rd)
			if err != nil {
				return nil, err
			}
			rec.group = int(group)
			f8, err := rd.take(8)
			if err != nil {
				return nil, err
			}
			rec.trs = math.Float64frombits(binary.BigEndian.Uint64(f8))
		}
		n, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, err
		}
		if n != uint64(rd.remaining()) {
			return nil, fmt.Errorf("sealed length %d, %d bytes remain", n, rd.remaining())
		}
		sealed, err := rd.take(int(n))
		if err != nil {
			return nil, err
		}
		rec.sealed = append([]byte(nil), sealed...)
		return []walRecord{rec}, nil
	case opInsertBatch:
		count, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, err
		}
		// Each entry costs at least 11 bytes (delta, group, trs,
		// sealedLen), so an absurd count cannot pass the payload it
		// arrived in — reject before allocating.
		if count > uint64(rd.remaining()) {
			return nil, fmt.Errorf("batch claims %d entries with %d bytes left", count, rd.remaining())
		}
		recs := make([]walRecord, 0, count)
		prev := int64(0)
		for i := uint64(0); i < count; i++ {
			delta, err := binary.ReadVarint(rd)
			if err != nil {
				return nil, err
			}
			prev += delta
			if prev < 0 {
				return nil, fmt.Errorf("batch entry %d: negative list id %d", i, prev)
			}
			group, err := binary.ReadVarint(rd)
			if err != nil {
				return nil, err
			}
			f8, err := rd.take(8)
			if err != nil {
				return nil, err
			}
			n, err := binary.ReadUvarint(rd)
			if err != nil {
				return nil, err
			}
			sealed, err := rd.take(int(n))
			if err != nil {
				return nil, err
			}
			recs = append(recs, walRecord{
				seq:    seq + i,
				op:     opInsert,
				list:   zerber.ListID(prev),
				group:  int(group),
				trs:    math.Float64frombits(binary.BigEndian.Uint64(f8)),
				sealed: append([]byte(nil), sealed...),
			})
		}
		if rd.remaining() != 0 {
			return nil, fmt.Errorf("batch leaves %d trailing bytes", rd.remaining())
		}
		return recs, nil
	default:
		return nil, fmt.Errorf("unknown op %d", op)
	}
}

// byteCursor is a minimal io.ByteReader over a slice with bulk takes.
type byteCursor struct {
	buf []byte
	off int
}

func newByteCursor(b []byte) *byteCursor { return &byteCursor{buf: b} }

func (c *byteCursor) ReadByte() (byte, error) {
	if c.off >= len(c.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := c.buf[c.off]
	c.off++
	return b, nil
}

func (c *byteCursor) take(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.buf) {
		return nil, io.ErrUnexpectedEOF
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *byteCursor) remaining() int { return len(c.buf) - c.off }

// wal is an append-only log open for writing.
type wal struct {
	f  *os.File
	bw *bufio.Writer
}

// createWAL truncates (or creates) the log at path, writes the header,
// and makes the directory entry durable — without the dir sync an OS
// crash on first boot could drop the file even after per-record
// fsyncs.
func createWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &wal{f: f, bw: bufio.NewWriter(f)}
	if _, err := w.bw.Write(walMagic); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.bw.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// openWALForAppend opens an existing, already-recovered log for
// further appends.
func openWALForAppend(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, bw: bufio.NewWriter(f)}, nil
}

// write pushes pre-framed bytes (one record, or a group committer's
// coalesced run of records) to the OS. The data is crash-consistent
// with respect to process death after write returns; call sync for
// durability across OS crashes too.
func (w *wal) write(frame []byte) error {
	if _, err := w.bw.Write(frame); err != nil {
		return err
	}
	return w.bw.Flush()
}

// reset truncates the log back to a bare header, in place on the live
// handle (the file is opened O_APPEND, so the next write lands at the
// new end). Callers must have synced first; buffered bytes are
// discarded.
func (w *wal) reset() error {
	w.bw.Reset(w.f)
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.bw.Write(walMagic); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// replayWAL reads the log at path and calls apply for every intact
// record with seq > afterSeq, in order. A torn final record (truncated
// frame or CRC mismatch at the tail) is tolerated: the file is
// truncated back to the last intact record and replay succeeds with
// what came before. Damage that is provably not a torn tail — intact
// framing around an undecodable payload followed by more data — is
// ErrBadWAL. It returns the highest sequence seen (afterSeq if none).
//
// A missing file is not an error: a fresh log is created.
func replayWAL(path string, afterSeq uint64, apply func(walRecord)) (maxSeq uint64, _ error) {
	maxSeq = afterSeq
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		w, err := createWAL(path)
		if err != nil {
			return maxSeq, err
		}
		return maxSeq, w.close()
	}
	if err != nil {
		return maxSeq, err
	}
	defer f.Close()

	cr := &countingReader{r: bufio.NewReader(f)}
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		// Shorter than the header: treat as torn at offset zero and
		// rebuild the header.
		return maxSeq, rewriteWALHeader(path)
	}
	if string(magic) != string(walMagic) {
		return maxSeq, fmt.Errorf("%w: magic %q", ErrBadWAL, magic)
	}

	goodEnd := cr.n // offset just past the last intact record
	for {
		payloadLen, err := binary.ReadUvarint(cr)
		if errors.Is(err, io.EOF) {
			return maxSeq, nil // clean end of log
		}
		if err != nil {
			break // torn length prefix
		}
		if payloadLen > maxWALRecord {
			return maxSeq, fmt.Errorf("%w: record of %d bytes", ErrBadWAL, payloadLen)
		}
		frame := make([]byte, payloadLen+4)
		if _, err := io.ReadFull(cr, frame); err != nil {
			break // torn payload or CRC
		}
		payload, sum := frame[:payloadLen], binary.BigEndian.Uint32(frame[payloadLen:])
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn write caught by the checksum
		}
		recs, err := decodeWALRecords(payload)
		if err != nil {
			// The frame and CRC are intact, so this is not a torn
			// write: only tolerate it at the very end of the file.
			if cr.n == fileSize(f) {
				break
			}
			return maxSeq, fmt.Errorf("%w: undecodable record at offset %d: %v", ErrBadWAL, goodEnd, err)
		}
		goodEnd = cr.n
		for _, rec := range recs {
			if rec.seq > afterSeq {
				apply(rec)
			}
			if rec.seq > maxSeq {
				maxSeq = rec.seq
			}
		}
	}
	// Torn tail: drop everything past the last intact record.
	return maxSeq, os.Truncate(path, goodEnd)
}

// rewriteWALHeader resets a log too short to hold its magic.
func rewriteWALHeader(path string) error {
	w, err := createWAL(path)
	if err != nil {
		return err
	}
	return w.close()
}

func fileSize(f *os.File) int64 {
	fi, err := f.Stat()
	if err != nil {
		return -1
	}
	return fi.Size()
}

// countingReader counts consumed bytes so recovery knows where the
// last intact record ended.
type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}
