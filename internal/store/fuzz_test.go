package store

// FuzzSnapshotDecode hardens crash recovery against arbitrary
// snapshot bytes: whatever is on disk — torn writes, bit rot, an
// attacker-controlled file — decoding must either fail cleanly with
// ErrBadSnapshot or produce a store whose lists can be queried, proved
// and re-encoded without panicking. The committed seed corpus under
// testdata/fuzz pins the interesting shapes: every format generation
// (ZSNAP1/2/3), leaf blocks, and framing damage.

import (
	"bytes"
	"errors"
	"testing"
)

// encodeToBytes snapshots a Memory into a byte slice.
func encodeToBytes(t testing.TB, seq uint64, m *Memory) []byte {
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, seq, m); err != nil {
		t.Fatalf("encodeSnapshot: %v", err)
	}
	return buf.Bytes()
}

func FuzzSnapshotDecode(f *testing.F) {
	// Live seeds spanning the format: empty store, plain lists, a list
	// with a materialized leaf block, and damaged variants of each.
	f.Add([]byte{})
	f.Add([]byte("ZSNAP3"))
	f.Add([]byte("ZSNAP9junkjunkjunk"))

	empty := NewMemory()
	f.Add(encodeToBytes(f, 0, empty))

	plain := NewMemory()
	for _, e := range []Element{el("s1", 2.5, 0), el("s2", 1.5, 1), el("s3", 0.5, 0)} {
		plain.Insert(1, e)
		plain.Insert(7, e)
	}
	plainBytes := encodeToBytes(f, 42, plain)
	f.Add(plainBytes)

	committed := NewMemory()
	provedFixture(f, committed, 3)
	if _, err := committed.Commitment(3); err != nil {
		f.Fatal(err)
	}
	leafy := encodeToBytes(f, 99, committed)
	f.Add(leafy)

	// Damaged variants: truncations, a flipped body byte, a flipped CRC.
	f.Add(leafy[:len(leafy)/2])
	f.Add(leafy[:len(leafy)-2])
	flipped := append([]byte{}, leafy...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	badCRC := append([]byte{}, plainBytes...)
	badCRC[len(badCRC)-1] ^= 0xff
	f.Add(badCRC)

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, m, err := decodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("decode error outside ErrBadSnapshot: %v", err)
			}
			return
		}
		// A decode that succeeded must yield a fully usable store:
		// queries, proofs, commitments and a re-encode all exercise the
		// lazily decoded regions.
		lists, err := m.Lists()
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range lists {
			if _, err := m.Query(id, nil, 0, 5); err != nil {
				t.Fatalf("list %d query: %v", id, err)
			}
			if _, err := m.QueryProved(id, map[int]bool{0: true}, 1, 3); err != nil {
				t.Fatalf("list %d proved query: %v", id, err)
			}
			if _, err := m.Commitment(id); err != nil {
				t.Fatalf("list %d commitment: %v", id, err)
			}
			if _, err := m.Len(id); err != nil {
				t.Fatalf("list %d len: %v", id, err)
			}
		}
		reenc := encodeToBytes(t, seq, m)
		if _, _, err := decodeSnapshot(reenc); err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
	})
}
