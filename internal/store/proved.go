package store

// Verifiable reads: the audit-on-demand side of the store. A list's
// Merkle commitment (internal/proof) is materialized the first time
// anything proved touches the list — the unproven hot path never
// hashes — and maintained incrementally from then on: compact hashes
// only freshly folded elements, removals splice leaves, snapshots
// persist them. QueryProved serves the same window Query would (same
// elements, same Exhausted, same Version) plus a proof that the
// window is the exact ranked slice of the committed state.

import (
	"sort"

	"zerberr/internal/proof"
	"zerberr/internal/zerber"
)

// Commitment is a list's current Merkle commitment.
type Commitment struct {
	// Version is the mutation version the commitment was taken at.
	Version uint64
	// Elements is the list's total element count across all groups.
	Elements int
	// Content is the version-free content root: equal iff two lists
	// hold identical elements in identical rank order, regardless of
	// their mutation histories. Migration's differential verify
	// compares it across a copy.
	Content proof.Hash
	// Root is the version-bound list root window proofs verify
	// against: proof.ListRoot(Version, Content).
	Root proof.Hash
}

// ensureCommittedLocked folds every group's pending buffer in and
// materializes missing leaf hashes. Callers hold the write lock.
func (ml *mergedList) ensureCommittedLocked() {
	for _, g := range ml.groups {
		g.compact()
		if !g.hashed {
			g.leaves = leafHashes(g.sorted)
			g.hashed = true
			g.rootOK = false
		}
	}
}

// groupRootLocked returns the group's cached Merkle root, rebuilding
// it after mutations. Callers hold the write lock with the group
// compacted and hashed.
func (g *groupList) groupRootLocked() proof.Hash {
	if !g.rootOK {
		g.root = proof.TreeRoot(g.leaves)
		g.rootOK = true
	}
	return g.root
}

// headerInfo is one non-empty group's header material, used both for
// building response windows and for the content root.
type headerInfo struct {
	gid   int
	g     *groupList
	count int
	root  proof.Hash
	hh    proof.Hash
}

// commitLocked returns the list's sorted group headers plus its
// content and list roots, reusing per-group root caches and the
// per-version list-level cache. Callers hold the write lock with
// every group committed (ensureCommittedLocked).
func (ml *mergedList) commitLocked() ([]headerInfo, proof.Hash, proof.Hash) {
	gids := make([]int, 0, len(ml.groups))
	for gid, g := range ml.groups {
		if len(g.sorted) == 0 {
			continue
		}
		gids = append(gids, gid)
	}
	sort.Ints(gids)
	headers := make([]headerInfo, len(gids))
	entries := make([]proof.HeaderEntry, len(gids))
	for i, gid := range gids {
		g := ml.groups[gid]
		root := g.groupRootLocked()
		hh := proof.HeaderHash(gid, len(g.sorted), root)
		headers[i] = headerInfo{gid: gid, g: g, count: len(g.sorted), root: root, hh: hh}
		entries[i] = proof.HeaderEntry{Group: gid, HH: hh}
	}
	if !ml.commitOK || ml.commitVer != ml.version {
		ml.commitContent = proof.ContentRoot(entries)
		ml.commitRoot = proof.ListRoot(ml.version, ml.commitContent)
		ml.commitVer = ml.version
		ml.commitOK = true
	}
	return headers, ml.commitContent, ml.commitRoot
}

// QueryProved implements Backend: Query plus a window proof, built
// atomically with the window under the list's write lock (the proof
// must commit exactly the version the window was read at). The write
// lock — where Query often gets away with a read lock — is the price
// of the audit path, not of the hot one.
func (m *Memory) QueryProved(list zerber.ListID, allowed map[int]bool, offset, count int) (QueryResult, error) {
	if offset < 0 {
		offset = 0
	}
	if count < 0 {
		count = 0
	}
	ml := m.list(list, false)
	if ml == nil {
		return QueryResult{}, ErrUnknownList
	}
	ml.mu.Lock()
	defer ml.mu.Unlock()
	ml.ensureCommittedLocked()
	res, cursors := ml.queryCursorsLocked(allowed, offset, count, true)
	res.Version = ml.version
	headers, _, listRoot := ml.commitLocked()
	w := &proof.Window{Version: ml.version, Root: listRoot, Groups: make([]proof.GroupWindow, 0, len(headers))}
	for _, h := range headers {
		if allowed != nil && !allowed[h.gid] {
			// Outside the caller's view: only the opaque header hash
			// travels — no count, no root, no content.
			hh := h.hh
			w.Groups = append(w.Groups, proof.GroupWindow{Group: h.gid, Opaque: &hh})
			continue
		}
		cur := cursors[h.gid]
		root := h.root
		gw := proof.GroupWindow{Group: h.gid, Count: h.count, Root: &root, Start: cur[0], End: cur[1]}
		lo, hi := cur[0], cur[1]
		if gw.Start > 0 {
			pred := h.g.sorted[gw.Start-1]
			gw.Pred = &proof.Boundary{TRS: pred.TRS, Sealed: pred.Sealed}
			lo--
		}
		if gw.End < gw.Count {
			succ := h.g.sorted[gw.End]
			gw.Succ = &proof.Boundary{TRS: succ.TRS, Sealed: succ.Sealed}
			hi++
		}
		gw.Path = proof.RangeProof(h.g.leaves, lo, hi)
		w.Groups = append(w.Groups, gw)
	}
	res.Proof = w
	return res, nil
}

// Commitment implements Backend. Like QueryProved it materializes the
// list's leaves on first touch and reuses them afterwards.
func (m *Memory) Commitment(list zerber.ListID) (Commitment, error) {
	ml := m.list(list, false)
	if ml == nil {
		return Commitment{}, ErrUnknownList
	}
	ml.mu.Lock()
	defer ml.mu.Unlock()
	ml.ensureCommittedLocked()
	_, content, root := ml.commitLocked()
	return Commitment{Version: ml.version, Elements: ml.total, Content: content, Root: root}, nil
}

// viewCommitted is viewVersioned plus the merged window's aligned
// leaf hashes when every group's leaves are already materialized
// (leaves is nil otherwise — the caller persists none rather than
// forcing a full hash of a list nobody ever audited). The snapshot
// encoder is the caller.
func (m *Memory) viewCommitted(list zerber.ListID, fn func(version uint64, elems []Element, leaves []proof.Hash)) error {
	ml := m.list(list, false)
	if ml == nil {
		return ErrUnknownList
	}
	unlock := ml.lockSorted(nil)
	defer unlock()
	hashedAll := true
	for _, g := range ml.groups {
		if len(g.sorted) > 0 && !g.hashed {
			hashedAll = false
			break
		}
	}
	if !hashedAll {
		res := ml.queryLocked(nil, 0, ml.total+1)
		fn(ml.version, res.Elements, nil)
		return nil
	}
	elems, leaves := ml.mergedLeavesLocked()
	fn(ml.version, elems, leaves)
	return nil
}

// mergedLeavesLocked materializes the full merged rank order together
// with each element's leaf hash. Callers hold the list lock with all
// groups compacted and hashed. The merge is the same total order
// queryLocked uses (rless), so the element order matches what a
// leafless snapshot would have written.
func (ml *mergedList) mergedLeavesLocked() ([]Element, []proof.Hash) {
	runs := make([]*groupList, 0, len(ml.groups))
	total := 0
	for _, g := range ml.groups {
		if len(g.sorted) == 0 {
			continue
		}
		runs = append(runs, g)
		total += len(g.sorted)
	}
	elems := make([]Element, 0, total)
	leaves := make([]proof.Hash, 0, total)
	cur := make([]int, len(runs))
	for len(elems) < total {
		best := -1
		for i, g := range runs {
			if cur[i] >= len(g.sorted) {
				continue
			}
			if best < 0 || rless(g.sorted[cur[i]], runs[best].sorted[cur[best]]) {
				best = i
			}
		}
		g := runs[best]
		elems = append(elems, g.sorted[cur[best]].Element)
		leaves = append(leaves, g.leaves[cur[best]])
		cur[best]++
	}
	return elems, leaves
}

// decodeListLeaves reinterprets a persisted leaf block (n × HashSize
// bytes) as leaf hashes. Unlike sealed payloads the hashes are copied
// out of the (possibly mmap-backed) region: leaf slices are spliced
// and appended by later mutations, which must never write through to
// a shared snapshot mapping.
func decodeListLeaves(raw []byte, n int) []proof.Hash {
	if len(raw) != n*proof.HashSize {
		return nil
	}
	leaves := make([]proof.Hash, n)
	for i := range leaves {
		copy(leaves[i][:], raw[i*proof.HashSize:])
	}
	return leaves
}

// QueryProved implements Backend for Durable by delegating to the
// recovered in-memory state; the commitment is maintained there and
// persisted by the next snapshot.
func (d *Durable) QueryProved(list zerber.ListID, allowed map[int]bool, offset, count int) (QueryResult, error) {
	if d.closed.Load() {
		return QueryResult{}, ErrClosed
	}
	return d.mem.QueryProved(list, allowed, offset, count)
}

// Commitment implements Backend for Durable.
func (d *Durable) Commitment(list zerber.ListID) (Commitment, error) {
	if d.closed.Load() {
		return Commitment{}, ErrClosed
	}
	return d.mem.Commitment(list)
}
