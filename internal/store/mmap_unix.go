//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only into memory. Recovery decodes the
// snapshot straight out of the page cache: framing validation walks
// the mapping once sequentially, and each lazily loaded list's sealed
// bytes fault in only when a query first touches it.
//
// The mapping is intentionally never unmapped. Sealed payloads served
// to queries alias it (QueryResult documents that aliasing), so its
// lifetime is the process's; a later snapshot rewrite renames a fresh
// file into place, leaving at most one superseded mapping resident
// per open, bounded by the old snapshot's size — the same residency a
// ReadFile-based recovery would hold as heap.
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, nil
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("store: snapshot too large to map: %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Filesystems without mmap support fall back to a plain read.
		return os.ReadFile(path)
	}
	return data, nil
}
