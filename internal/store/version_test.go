package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"zerberr/internal/zerber"
)

// mustVersion reads a list's version or fails the test.
func mustVersion(t *testing.T, b Backend, list zerber.ListID) uint64 {
	t.Helper()
	v, err := b.Version(list)
	if err != nil {
		t.Fatalf("Version(%d): %v", list, err)
	}
	return v
}

// TestVersionCounting pins the counter semantics every backend must
// share: unknown lists error, each insert and each successful remove
// bumps by exactly one over the list's epoch base, failed removes
// leave the counter alone, and Query reports the version its window
// was read at.
func TestVersionCounting(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := b.Version(1); !errors.Is(err, ErrUnknownList) {
				t.Fatalf("Version of unknown list: %v, want ErrUnknownList", err)
			}
			if err := b.Insert(1, el("v0", 0, 0)); err != nil {
				t.Fatal(err)
			}
			base := mustVersion(t, b, 1) - 1 // per-instance random epoch
			for i := 1; i < 5; i++ {
				if err := b.Insert(1, el(fmt.Sprintf("v%d", i), float64(i), i%2)); err != nil {
					t.Fatal(err)
				}
				if v := mustVersion(t, b, 1); v != base+uint64(i+1) {
					t.Fatalf("after %d inserts: version %d, want base+%d", i+1, v, i+1)
				}
			}
			if err := b.Remove(1, []byte("v3"), nil); err != nil {
				t.Fatal(err)
			}
			if v := mustVersion(t, b, 1); v != base+6 {
				t.Fatalf("after remove: version %d, want base+6", v)
			}
			// A remove that fails (no match, or vetoed by the ACL
			// predicate) changes nothing, so it must not bump.
			if err := b.Remove(1, []byte("absent"), nil); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Remove(absent): %v", err)
			}
			if err := b.Remove(1, []byte("v4"), func(int) bool { return false }); !errors.Is(err, ErrDenied) {
				t.Fatalf("Remove(denied): %v", err)
			}
			if v := mustVersion(t, b, 1); v != base+6 {
				t.Fatalf("after failed removes: version %d, want base+6", v)
			}
			res, err := b.Query(1, nil, 0, 10)
			if err != nil {
				t.Fatal(err)
			}
			if res.Version != base+6 {
				t.Fatalf("Query version %d, want base+6", res.Version)
			}
			// Versions are per list, counted from the shared epoch.
			if err := b.Insert(2, el("other", 1, 0)); err != nil {
				t.Fatal(err)
			}
			if v := mustVersion(t, b, 2); v != base+1 {
				t.Fatalf("second list version %d, want base+1", v)
			}
			if v := mustVersion(t, b, 1); v != base+6 {
				t.Fatalf("first list perturbed by second: version %d, want base+6", v)
			}
		})
	}
}

// TestVersionEpochAcrossInstances: two fresh RAM-only stores given the
// same mutation history must (with overwhelming probability) not agree
// on versions — the per-instance epoch is what stops a restarted
// RAM-only shard from re-counting its way back to a version an
// out-of-process window cache observed before the restart, with
// different content behind it.
func TestVersionEpochAcrossInstances(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	for _, m := range []*Memory{a, b} {
		if err := m.Insert(1, el("same", 1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	va, vb := mustVersion(t, a, 1), mustVersion(t, b, 1)
	if va == vb {
		t.Fatalf("two instances agree on version %d — epoch missing (2^-32 flake; rerun to confirm)", va)
	}
	if va>>32 == 0 || vb>>32 == 0 {
		t.Fatalf("epoch bits empty: %d, %d (2^-32 flake per instance; rerun to confirm)", va, vb)
	}
}

// TestVersionSurvivesRecovery is the cache-safety property of the
// durable engine: the mutation counter recovered from snapshot + WAL
// replay equals the pre-shutdown counter exactly, in every mix of
// snapshot coverage and WAL tail. If recovery restarted the counter
// instead, later mutations could climb it back to a pre-crash value
// with different content, and a version-keyed cache would serve
// pre-crash windows as current.
func TestVersionSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: mutations folded into a snapshot (7 inserts, 2 removes
	// -> version 9 with 5 elements).
	for i := 0; i < 7; i++ {
		if err := d.Insert(3, el(fmt.Sprintf("s%d", i), float64(i), i%3)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{"s1", "s4"} {
		if err := d.Remove(3, []byte(p), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Phase 2: more mutations living only in the WAL tail.
	for i := 7; i < 10; i++ {
		if err := d.Insert(3, el(fmt.Sprintf("s%d", i), float64(i), i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Remove(3, []byte("s8"), nil); err != nil {
		t.Fatal(err)
	}
	want := mustVersion(t, d, 3) // epoch + 9 snapshotted + 4 logged
	wantRes0, err := d.Query(3, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want != wantRes0.Version {
		t.Fatalf("Version (%d) and Query version (%d) disagree", want, wantRes0.Version)
	}
	wantRes, err := d.Query(3, nil, 0, 100)
	if err != nil {
		t.Fatal(err)
	}

	d = reopen(t, d, Options{SnapshotEvery: -1})
	got := mustVersion(t, d, 3)
	if got != want {
		t.Fatalf("recovered version %d, want %d", got, want)
	}
	gotRes, err := d.Query(3, nil, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.Version != want {
		t.Fatalf("recovered Query version %d, want %d", gotRes.Version, want)
	}
	if len(gotRes.Elements) != len(wantRes.Elements) {
		t.Fatalf("recovered %d elements, want %d", len(gotRes.Elements), len(wantRes.Elements))
	}
	// Equal versions must mean equal content — the cache invariant.
	for i := range gotRes.Elements {
		if string(gotRes.Elements[i].Sealed) != string(wantRes.Elements[i].Sealed) {
			t.Fatalf("element %d diverged after recovery", i)
		}
	}
	// Post-recovery mutations keep climbing, so a window cached at the
	// pre-crash version can never be revalidated against new content.
	if err := d.Insert(3, el("post", 99, 0)); err != nil {
		t.Fatal(err)
	}
	if v := mustVersion(t, d, 3); v != want+1 {
		t.Fatalf("post-recovery version %d, want %d", v, want+1)
	}

	// And once more through a second recovery: the counter is stable
	// under repeated replay, not just the first.
	d = reopen(t, d, Options{})
	if v := mustVersion(t, d, 3); v != want+1 {
		t.Fatalf("second recovery version %d, want %d", v, want+1)
	}
}

// TestVersionUntouchedByFailedRemove: a Remove whose WAL append fails
// must leave the list exactly as it was — content and version. The
// removal commits to memory and the log atomically under the list
// lock, so there is no rollback path that burns unlogged version
// bumps; if there were, a crash while the log is poisoned would let
// recovery re-mint an observed version with different content, and a
// version-keyed cache (a cluster router outlives the server process)
// could revalidate a stale window.
func TestVersionUntouchedByFailedRemove(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 4; i++ {
		if err := d.Insert(5, el(fmt.Sprintf("r%d", i), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	wantVer := mustVersion(t, d, 5)
	wantRes, err := d.Query(5, nil, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the log the way the poison test does: a read-only
	// handle makes the next append's flush fail.
	realWAL := d.wal
	broken, err := os.Open(filepath.Join(d.dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	d.wal = &wal{f: broken, bw: bufio.NewWriterSize(broken, 16)}
	if err := d.Remove(5, []byte("r2"), nil); err == nil {
		t.Fatal("remove over broken WAL succeeded")
	}
	broken.Close()
	d.wal = realWAL
	if v := mustVersion(t, d, 5); v != wantVer {
		t.Fatalf("failed remove moved the version: %d, want %d", v, wantVer)
	}
	gotRes, err := d.Query(5, nil, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRes.Elements) != len(wantRes.Elements) {
		t.Fatalf("failed remove changed content: %d elements, want %d", len(gotRes.Elements), len(wantRes.Elements))
	}
	for i := range gotRes.Elements {
		if string(gotRes.Elements[i].Sealed) != string(wantRes.Elements[i].Sealed) {
			t.Fatalf("failed remove changed element %d", i)
		}
	}
}

// TestVersionLegacySnapshot: a ZSNAP1-era snapshot (no recorded
// versions) still loads, recovering each list at version = element
// count — the lowest counter a live list of that size can have had —
// and mutations climb from there.
func TestVersionLegacySnapshot(t *testing.T) {
	// Hand-encode a v1 snapshot: seq | numLists | listID | numElems |
	// elems, no version field, CRC-framed under the old magic.
	body := binary.AppendUvarint(nil, 41) // seq
	body = binary.AppendUvarint(body, 1)  // one list
	body = binary.AppendUvarint(body, 9)  // list ID
	body = binary.AppendUvarint(body, 2)  // two elements
	for _, e := range []Element{el("a", 2, 0), el("b", 1, 1)} {
		body = binary.AppendVarint(body, int64(e.Group))
		body = binary.BigEndian.AppendUint64(body, math.Float64bits(e.TRS))
		body = binary.AppendUvarint(body, uint64(len(e.Sealed)))
		body = append(body, e.Sealed...)
	}
	raw := append([]byte(nil), snapMagicV1...)
	raw = append(raw, body...)
	raw = binary.BigEndian.AppendUint32(raw, crc32.ChecksumIEEE(body))
	path := filepath.Join(t.TempDir(), snapFileName)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	seq, m, err := readSnapshot(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 41 {
		t.Fatalf("seq %d, want 41", seq)
	}
	if v := mustVersion(t, m, 9); v != 2 {
		t.Fatalf("legacy seed: version %d, want 2", v)
	}
	if err := m.Insert(9, el("c", 3, 0)); err != nil {
		t.Fatal(err)
	}
	if v := mustVersion(t, m, 9); v != 3 {
		t.Fatalf("legacy seed after insert: version %d, want 3", v)
	}
}
