package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"zerberr/internal/obs"
	"zerberr/internal/zerber"
)

// File names inside a Durable data directory.
const (
	walFileName   = "wal.zwal"
	snapFileName  = "snapshot.zsnap"
	lockFileName  = "LOCK"
	epochFileName = "epoch"
)

// Options tunes a Durable store. The zero value is a sensible default.
type Options struct {
	// SnapshotEvery is how many logged operations trigger an automatic
	// snapshot (which compacts the WAL). Zero means DefaultSnapshotEvery;
	// negative disables automatic snapshots (explicit Snapshot and the
	// WAL still provide durability).
	SnapshotEvery int
	// FsyncEach forces an fsync after every logged operation. Without
	// it, records are pushed to the OS per operation (surviving process
	// crashes) and fsynced on Snapshot and Close (an OS crash can lose
	// the tail written since). The torn-record recovery path handles
	// whatever the crash leaves behind either way.
	FsyncEach bool
	// GroupCommitWindow enables group commit: appenders publish records
	// into a commit queue and a single committer writes them as one
	// coalesced buffer — under FsyncEach, one fsync per window of at
	// most this duration — unblocking each waiter only after its
	// record's write (and fsync) completed. Zero keeps the synchronous
	// per-record path. Callers wanting the default batching pass
	// DefaultCommitWindow explicitly (zerberd's -commit-window does).
	//
	// With a window, a mutation is applied to memory when its sequence
	// is assigned and its caller unblocked when the commit lands, so a
	// commit failure can leave an op visible in memory but not on disk;
	// the store poisons itself at that point (mutations refused, the
	// healing snapshot persists the live state), so the window never
	// widens silently.
	GroupCommitWindow time.Duration
	// SnapshotReadAll forces snapshot recovery to read the file into
	// memory up front instead of mmap-ing it (benchmark baselines,
	// diagnostics). The default mmap path defers per-list decoding and
	// lets first-touch page faults pull only what queries need.
	SnapshotReadAll bool
	// Logf, when set, receives operational warnings the store cannot
	// return to any caller (automatic-snapshot failures, WAL poisoning).
	Logf func(format string, args ...any)
	// Obs, when set, receives the store's durability metrics: WAL
	// append and fsync latency histograms, snapshot timings and
	// outcomes, and the WAL-poisoned gauge (see the Metric* constants).
	// Nil disables instrumentation entirely — the hot path then pays
	// only nil checks, no clock reads.
	Obs *obs.Registry
}

// Metric names the store registers on Options.Obs. Exported so the
// stats endpoint (and tests) can locate the families without string
// drift.
const (
	MetricWALAppendSeconds = "zerber_wal_append_seconds"
	MetricWALFsyncSeconds  = "zerber_wal_fsync_seconds"
	MetricSnapshotSeconds  = "zerber_snapshot_seconds"
	MetricSnapshotsTotal   = "zerber_snapshots_total"
	MetricWALRecordsTotal  = "zerber_wal_records_total"
	MetricWALPoisoned      = "zerber_wal_poisoned"
)

// durableMetrics holds the handles Durable observes into. All fields
// are nil when Options.Obs is nil (every obs method is nil-safe, and
// timed sections additionally gate their clock reads).
type durableMetrics struct {
	walAppend  *obs.Histogram
	walFsync   *obs.Histogram
	snapshot   *obs.Histogram
	snapOK     *obs.Counter
	snapErr    *obs.Counter
	walRecords *obs.Counter
	poisoned   *obs.Gauge
}

func newDurableMetrics(r *obs.Registry) durableMetrics {
	if r == nil {
		return durableMetrics{}
	}
	return durableMetrics{
		walAppend:  r.Histogram(MetricWALAppendSeconds, "WAL record append latency (frame+checksum+write, no fsync)", nil),
		walFsync:   r.Histogram(MetricWALFsyncSeconds, "WAL fsync latency", nil),
		snapshot:   r.Histogram(MetricSnapshotSeconds, "full snapshot write+compact latency", nil),
		snapOK:     r.Counter(MetricSnapshotsTotal, "snapshots attempted by result", obs.Label{Name: "result", Value: "ok"}),
		snapErr:    r.Counter(MetricSnapshotsTotal, "snapshots attempted by result", obs.Label{Name: "result", Value: "error"}),
		walRecords: r.Counter(MetricWALRecordsTotal, "records appended to the WAL (a batched insert counts once)"),
		poisoned:   r.Gauge(MetricWALPoisoned, "1 while the WAL refuses mutations after a write failure"),
	}
}

// DefaultSnapshotEvery is the automatic compaction threshold.
const DefaultSnapshotEvery = 1 << 16

// DefaultCommitWindow is the group-commit window servers use unless
// tuned: long enough to coalesce concurrent appenders' fsyncs, short
// enough to stay invisible next to a network round-trip.
const DefaultCommitWindow = 200 * time.Microsecond

// Durable is a crash-safe Backend: a Memory store whose mutations are
// write-ahead logged, periodically folded into an atomic snapshot, and
// replayed on startup. All methods are safe for concurrent use.
type Durable struct {
	mem *Memory
	dir string
	opt Options
	met durableMetrics

	mu           sync.Mutex // serializes mutations, log appends, snapshots
	wal          *wal
	lock         *os.File // held flock on the data directory
	seq          uint64   // sequence of the last logged operation
	walBase      uint64   // sequence the live WAL restarted at (last compaction)
	opsSinceSnap int
	lastSnapErr  error // most recent automatic-snapshot failure, if any

	// committer owns WAL writes when GroupCommitWindow > 0; nil keeps
	// the synchronous per-record path.
	committer *groupCommitter

	// walErr is the sticky log-write failure, set when the on-disk
	// state is ambiguous. It lives under its own mutex — not d.mu —
	// because the committer goroutine sets it while snapshot/drain
	// paths hold d.mu waiting on that same goroutine. hasPoison
	// mirrors walErr != nil so the per-mutation health check is one
	// atomic load, not a lock round-trip.
	poisonMu  sync.Mutex
	walErr    error
	hasPoison atomic.Bool

	// closed is atomic so the read path can refuse service after Close
	// without serializing on mu (which mutations and snapshots hold for
	// their full duration).
	closed atomic.Bool
}

// OpenDurable opens (or initializes) the store in dir, recovering
// state from the snapshot plus the WAL tail. A torn final WAL record —
// the normal residue of a crash mid-append — is truncated away and
// recovery returns everything up to the last complete operation.
func OpenDurable(dir string, opt Options) (*Durable, error) {
	if opt.SnapshotEvery == 0 {
		opt.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	lock, err := lockDir(filepath.Join(dir, lockFileName))
	if err != nil {
		return nil, fmt.Errorf("store: locking %s: %w", dir, err)
	}
	fail := func(err error) (*Durable, error) {
		unlockDir(lock)
		return nil, err
	}
	snapSeq, mem, err := readSnapshot(filepath.Join(dir, snapFileName), opt.SnapshotReadAll)
	if err != nil {
		return fail(fmt.Errorf("store: loading snapshot: %w", err))
	}
	// The version epoch is fixed per data directory (created on first
	// open, durable before any mutation can be logged): WAL replay
	// re-creates post-snapshot lists with the same epoch it used live,
	// so a recovered store reports bit-identical versions — replay
	// reproduces the identical mutation history, which is exactly when
	// version reuse is sound. Only wiping the directory (content gone)
	// mints a new epoch.
	epoch, err := loadOrCreateEpoch(filepath.Join(dir, epochFileName))
	if err != nil {
		return fail(fmt.Errorf("store: version epoch: %w", err))
	}
	mem.verBase = epoch
	walPath := filepath.Join(dir, walFileName)
	maxSeq, err := replayWAL(walPath, snapSeq, func(rec walRecord) {
		switch rec.op {
		case opInsert:
			mem.insert(rec.list, Element{Sealed: rec.sealed, TRS: rec.trs, Group: rec.group})
		case opRemove:
			// A remove that no longer matches (its insert was folded
			// into the snapshot differently, or the log was truncated
			// between the pair) is a no-op, not corruption.
			_, _ = mem.remove(rec.list, rec.sealed, nil, nil)
		}
	})
	if err != nil {
		return fail(fmt.Errorf("store: replaying WAL: %w", err))
	}
	w, err := openWALForAppend(walPath)
	if err != nil {
		return fail(fmt.Errorf("store: opening WAL: %w", err))
	}
	d := &Durable{mem: mem, dir: dir, opt: opt, met: newDurableMetrics(opt.Obs), wal: w, lock: lock, seq: maxSeq, walBase: snapSeq}
	if opt.GroupCommitWindow > 0 {
		d.committer = newGroupCommitter(w, opt.GroupCommitWindow, opt.FsyncEach, d.met, d.poison)
	}
	return d, nil
}

// loadOrCreateEpoch reads the directory's persisted version epoch, or
// mints and durably writes one on first open (8 bytes big-endian;
// written to a temp file and renamed so a crash mid-create leaves
// either nothing or a complete epoch).
func loadOrCreateEpoch(path string) (uint64, error) {
	raw, err := os.ReadFile(path)
	if err == nil {
		if len(raw) != 8 {
			return 0, fmt.Errorf("epoch file is %d bytes, want 8", len(raw))
		}
		return binary.BigEndian.Uint64(raw), nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return 0, err
	}
	epoch := uint64(rand.Uint32()) << 32
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], epoch)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp)
	if _, err := f.Write(buf[:]); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return epoch, syncDir(filepath.Dir(path))
}

// appendLocked logs one payload that consumes ops sequence numbers
// (1 for a plain record, the batch size for opInsertBatch; the caller
// encoded firstSeq = d.seq+1 into it). Callers hold d.mu.
//
// With group commit the framed record is handed to the committer and
// a wait function returned: it blocks until the record's coalesced
// write — and, under FsyncEach, its fsync — completed, and reports
// the commit's outcome. Callers invoke it after releasing d.mu and
// every list lock, so readers never stall behind an fsync. Without a
// committer the record is written synchronously and wait is nil.
//
// A failed write leaves the on-disk log in an ambiguous state: the
// record may be partially written (a later append would turn that
// torn tail into mid-file corruption) or fully framed yet reported
// failed (a reused sequence number would make recovery double-apply).
// So any write failure poisons the log — mutations are refused until
// a snapshot succeeds, which captures the live state, truncates the
// log in place, and clears the poison. Under group commit the failure
// can additionally surface after the op was applied to memory; the
// healing snapshot persists that live state, so memory and disk
// re-converge rather than diverge further.
func (d *Durable) appendLocked(payload []byte, ops int) (wait func() error, err error) {
	if werr := d.poisoned(); werr != nil {
		return nil, fmt.Errorf("store: WAL poisoned by earlier failure (snapshot to recover): %w", werr)
	}
	if d.committer != nil {
		b, opened := d.committer.enqueue(payload)
		d.met.walRecords.Inc()
		d.seq += uint64(ops)
		d.opsSinceSnap += ops
		return func() error { return d.committer.waitFor(b, opened) }, nil
	}
	var start time.Time
	if d.met.walAppend != nil {
		start = time.Now()
	}
	if err := d.wal.write(frameRecord(payload)); err != nil {
		d.poison(err)
		return nil, fmt.Errorf("store: appending WAL record: %w", err)
	}
	if d.met.walAppend != nil {
		d.met.walAppend.Observe(time.Since(start).Seconds())
	}
	d.met.walRecords.Inc()
	// The record is framed in the OS; the sequences are consumed
	// whether or not the sync below succeeds.
	d.seq += uint64(ops)
	d.opsSinceSnap += ops
	if d.opt.FsyncEach {
		if d.met.walFsync != nil {
			start = time.Now()
		}
		if err := d.wal.sync(); err != nil {
			d.poison(err)
			return nil, fmt.Errorf("store: syncing WAL: %w", err)
		}
		if d.met.walFsync != nil {
			d.met.walFsync.Observe(time.Since(start).Seconds())
		}
	}
	return nil, nil
}

// walPayloadPool recycles the per-operation payload encode buffers of
// Insert and Remove. appendLocked copies the payload (into the commit
// batch, or through frameRecord into the buffered writer) before it
// returns, so the buffer is dead by then and a logged single-record
// mutation allocates nothing for its encoding.
var walPayloadPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// recycleWALPayload returns a pooled encode buffer, keeping grown
// capacity up to a bound so one giant sealed blob doesn't pin memory.
func recycleWALPayload(pp *[]byte, payload []byte) {
	if cap(payload) <= 1<<16 {
		*pp = payload[:0]
	}
	walPayloadPool.Put(pp)
}

// poison records a log-write failure. Safe from any goroutine (the
// committer calls it without d.mu); only the first failure is kept.
func (d *Durable) poison(err error) {
	d.poisonMu.Lock()
	first := d.walErr == nil
	if first {
		d.walErr = err
		d.hasPoison.Store(true)
	}
	d.poisonMu.Unlock()
	if !first {
		return
	}
	d.met.poisoned.Set(1)
	if d.opt.Logf != nil {
		d.opt.Logf("store: WAL write failed, refusing further mutations until a snapshot succeeds: %v", err)
	}
}

// poisoned reports the sticky log-write failure, if any.
func (d *Durable) poisoned() error {
	if !d.hasPoison.Load() {
		return nil
	}
	d.poisonMu.Lock()
	defer d.poisonMu.Unlock()
	return d.walErr
}

// clearPoison forgets the failure after a successful snapshot or
// import made the log whole again.
func (d *Durable) clearPoison() {
	d.poisonMu.Lock()
	d.walErr = nil
	d.hasPoison.Store(false)
	d.poisonMu.Unlock()
	d.met.poisoned.Set(0)
	if d.committer != nil {
		d.committer.reset()
	}
}

// maybeSnapshotLocked compacts when the op threshold is crossed. A
// failure here never propagates to the mutation that tripped it — the
// mutation is already durably logged, and failing it would make the
// client retry a write that took effect. The error is kept for
// LastSnapshotError and the snapshot retried a full interval later
// (the WAL keeps growing meanwhile, so nothing is lost).
func (d *Durable) maybeSnapshotLocked() {
	if d.opt.SnapshotEvery < 0 || d.opsSinceSnap < d.opt.SnapshotEvery {
		return
	}
	d.lastSnapErr = d.snapshotLocked()
	d.opsSinceSnap = 0
	if d.lastSnapErr != nil && d.opt.Logf != nil {
		d.opt.Logf("store: automatic snapshot failed (will retry in %d ops): %v", d.opt.SnapshotEvery, d.lastSnapErr)
	}
}

// LastSnapshotError reports the most recent automatic-snapshot
// failure, or nil. A later successful snapshot clears it.
func (d *Durable) LastSnapshotError() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastSnapErr
}

// Name implements Backend.
func (d *Durable) Name() string { return "durable" }

// Insert implements Backend: validate nothing (inserts always apply),
// log, then mutate memory — still under d.mu, so memory-apply order
// equals log order and recovery replays the identical history. Under
// group commit the caller then waits out its record's commit after
// d.mu (and every list lock) is released.
func (d *Durable) Insert(list zerber.ListID, el Element) error {
	d.mu.Lock()
	if d.closed.Load() {
		d.mu.Unlock()
		return ErrClosed
	}
	pp := walPayloadPool.Get().(*[]byte)
	payload := appendWALPayload((*pp)[:0], walRecord{seq: d.seq + 1, op: opInsert, list: list, group: el.Group, trs: el.TRS, sealed: el.Sealed})
	wait, err := d.appendLocked(payload, 1)
	recycleWALPayload(pp, payload)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.mem.insert(list, el)
	d.maybeSnapshotLocked()
	d.mu.Unlock()
	if wait != nil {
		return wait()
	}
	return nil
}

// InsertBatch implements Backend: the whole batch is logged as one
// opInsertBatch record (chunked only if its encoding would breach the
// record size bound) and applied to memory element by element, each
// bumping its list's version exactly as N single Inserts would. One
// record means one length prefix, one CRC, one commit-queue entry and
// — under FsyncEach — one fsync for the entire batch.
func (d *Durable) InsertBatch(ops []BatchInsert) error {
	if len(ops) == 0 {
		return nil
	}
	d.mu.Lock()
	if d.closed.Load() {
		d.mu.Unlock()
		return ErrClosed
	}
	var waits []func() error
	for len(ops) > 0 {
		n, size := 0, 0
		for n < len(ops) {
			opSize := 3*16 + 8 + len(ops[n].Element.Sealed) // conservative encoded bound
			if n > 0 && size+opSize > maxBatchRecordBytes {
				break
			}
			size += opSize
			n++
		}
		chunk := ops[:n]
		ops = ops[n:]
		payload := encodeWALBatchPayload(d.seq+1, chunk)
		wait, err := d.appendLocked(payload, len(chunk))
		if err != nil {
			d.mu.Unlock()
			return err
		}
		if wait != nil {
			waits = append(waits, wait)
		}
		for i := range chunk {
			d.mem.insert(chunk[i].List, chunk[i].Element)
		}
	}
	d.maybeSnapshotLocked()
	d.mu.Unlock()
	for _, wait := range waits {
		if err := wait(); err != nil {
			return err
		}
	}
	return nil
}

// Remove implements Backend. The removal commits to memory and the
// log as one step under the list's write lock: the ACL predicate
// observes the victim, the record is appended, and only a successful
// append mutates the list. So an ACL-rejected removal never reaches
// the log, a failed append leaves the list — content *and* version —
// exactly as it was (no rollback that would burn unlogged version
// bumps; recovery must be able to reproduce every version a reader
// may have observed), and no reader can ever see a removal the log
// does not hold.
//
// At window=0 readers of the same list wait out the append — a
// buffered write normally, a real fsync under FsyncEach. That is
// deliberate: moving the fsync after the lock would let a reader
// observe a version whose record the OS may still lose. With group
// commit only the enqueue happens under the locks; the commit wait
// runs after both d.mu and the list lock are released, so an fsync in
// flight never stalls a reader — the reader-visible durability there
// matches FsyncEach=false (a record a reader observed may still be in
// the commit queue when the OS dies), which is the documented trade
// of turning the window on.
func (d *Durable) Remove(list zerber.ListID, sealed []byte, allow func(group int) bool) error {
	d.mu.Lock()
	if d.closed.Load() {
		d.mu.Unlock()
		return ErrClosed
	}
	var wait func() error
	_, err := d.mem.remove(list, sealed, allow, func(Element) error {
		pp := walPayloadPool.Get().(*[]byte)
		payload := appendWALPayload((*pp)[:0], walRecord{seq: d.seq + 1, op: opRemove, list: list, sealed: sealed})
		var aerr error
		wait, aerr = d.appendLocked(payload, 1)
		recycleWALPayload(pp, payload)
		return aerr
	})
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.maybeSnapshotLocked()
	d.mu.Unlock()
	if wait != nil {
		return wait()
	}
	return nil
}

// Snapshot writes the full state atomically and truncates the WAL —
// the compaction step. Safe to call at any time; concurrent reads
// proceed, concurrent mutations wait.
func (d *Durable) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	return d.snapshotLocked()
}

func (d *Durable) snapshotLocked() (err error) {
	if d.met.snapshot != nil {
		start := time.Now()
		defer func() {
			d.met.snapshot.Observe(time.Since(start).Seconds())
			if err == nil {
				d.met.snapOK.Inc()
			} else {
				d.met.snapErr.Inc()
			}
		}()
	}
	// Outstanding group-commit batches must settle before the snapshot
	// claims seq; drain is safe here because the committer never takes
	// d.mu. A failed drain has already poisoned the log, and the
	// snapshot itself is then the recovery path.
	if d.committer != nil {
		_ = d.committer.drain()
	}
	// With a healthy log, put it on disk before the snapshot claims
	// its sequence. With a poisoned log the snapshot itself is the
	// recovery path — it is fsynced and holds everything up to seq —
	// so a failing sync must not block it.
	if err := d.wal.sync(); err != nil && d.poisoned() == nil {
		return fmt.Errorf("store: syncing WAL before snapshot: %w", err)
	}
	if err := writeSnapshot(filepath.Join(d.dir, snapFileName), d.seq, d.mem); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	// The snapshot is durable and carries seq, so the log can restart
	// empty. The reset happens in place on the live handle — if it
	// fails, the old log stays valid (recovery skips records at or
	// below the snapshot sequence, the same property that makes a
	// crash between rename and truncation safe) and appends continue.
	if err := d.wal.reset(); err != nil {
		return fmt.Errorf("store: truncating WAL: %w", err)
	}
	// The snapshot captured the live state and the log restarted
	// empty, so any earlier ambiguous write is moot.
	d.clearPoison()
	d.opsSinceSnap = 0
	d.walBase = d.seq
	return nil
}

// Reads answer from memory but refuse a closed store: after Close the
// WAL is gone and the in-RAM state is no longer maintained, so
// answering would silently serve a frozen index. Mutations take the
// same stance via d.mu; reads check the atomic flag instead so they
// never queue behind a snapshot.

// Query implements Backend.
func (d *Durable) Query(list zerber.ListID, allowed map[int]bool, offset, count int) (QueryResult, error) {
	if d.closed.Load() {
		return QueryResult{}, ErrClosed
	}
	return d.mem.Query(list, allowed, offset, count)
}

// Version implements Backend. Versions survive restarts: snapshots
// record each list's counter and WAL replay re-applies the logged
// mutations (each bumping it once), so the recovered counter equals
// the pre-crash one and keeps climbing from there — a cached window
// keyed by an old version can never be revalidated by coincidence.
func (d *Durable) Version(list zerber.ListID) (uint64, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	return d.mem.Version(list)
}

// View implements Backend.
func (d *Durable) View(list zerber.ListID, fn func(elems []Element)) error {
	if d.closed.Load() {
		return ErrClosed
	}
	return d.mem.View(list, fn)
}

// Len implements Backend.
func (d *Durable) Len(list zerber.ListID) (int, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	return d.mem.Len(list)
}

// Lists implements Backend.
func (d *Durable) Lists() ([]zerber.ListID, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	return d.mem.Lists()
}

// NumLists implements Backend.
func (d *Durable) NumLists() (int, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	return d.mem.NumLists()
}

// NumElements implements Backend.
func (d *Durable) NumElements() (int, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	return d.mem.NumElements()
}

// Seq returns the sequence number of the last logged operation
// (diagnostics, tests).
func (d *Durable) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Close flushes and fsyncs the WAL and releases the store. The data
// directory can be reopened afterwards.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed.Swap(true) {
		return nil
	}
	var err error
	if d.committer != nil {
		err = d.committer.drain()
		d.committer.stop()
	}
	if cerr := d.wal.close(); err == nil {
		err = cerr
	}
	if uerr := unlockDir(d.lock); err == nil {
		err = uerr
	}
	if err != nil {
		return fmt.Errorf("store: closing: %w", err)
	}
	return nil
}

var _ Backend = (*Durable)(nil)
