package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"zerberr/internal/proof"
	"zerberr/internal/zerber"
)

// Snapshot format (integers are unsigned varints unless noted, floats
// 64-bit IEEE big-endian):
//
//	magic "ZSNAP3" | body | crc32-IEEE(body) (4B big-endian)
//	body: seq | numLists |
//	  numLists × ( listID | version | numElems |
//	    numElems × ( group (signed varint) | trs (8B) |
//	                 sealedLen | sealed ) |
//	    leafFlag (1B: 0 or 1) |
//	    leafFlag × ( numElems × leafHash (32B) ) )
//
// Elements are written in rank order, so recovery can serve queries
// without re-sorting. seq is the last WAL sequence number the snapshot
// contains; recovery replays only WAL records beyond it. version is
// the list's mutation counter at snapshot time (Backend.Version):
// persisting it keeps versions monotonic across restarts, the property
// the query-result cache's invalidation rests on. The leaf block
// persists the list's Merkle commitment leaves (internal/proof) in
// the same merged rank order, present only when the live list had
// them materialized — a restarted shard recommits without re-hashing
// a single payload, and a list nobody ever audited pays no leaf
// bytes. Snapshots are written to a temp file and renamed into place,
// so a crash mid-write leaves the previous snapshot intact.
//
// Two older formats are still readable: "ZSNAP2" (identical minus the
// leaf block) and "ZSNAP1" (additionally minus the per-list version;
// its lists recover with version = numElems, the lowest counter a
// live list of that size can ever have had).

var snapMagic = []byte("ZSNAP3")

// Older snapshot formats, accepted on read.
var (
	snapMagicV2 = []byte("ZSNAP2")
	snapMagicV1 = []byte("ZSNAP1")
)

// ErrBadSnapshot reports a corrupted or truncated snapshot file.
var ErrBadSnapshot = errors.New("store: bad snapshot")

// writeSnapshot atomically replaces the snapshot at path with the
// given state.
func writeSnapshot(path string, seq uint64, m *Memory) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after a successful rename
	if err := encodeSnapshot(f, seq, m); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

func encodeSnapshot(f io.Writer, seq uint64, m *Memory) error {
	bw := bufio.NewWriter(f)
	if _, err := bw.Write(snapMagic); err != nil {
		return err
	}
	// Tee the body through the checksum so the trailing CRC covers
	// exactly what a reader will verify.
	sum := crc32.NewIEEE()
	w := io.MultiWriter(bw, sum)
	var vbuf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(vbuf[:], v)
		_, err := w.Write(vbuf[:n])
		return err
	}
	writeVarint := func(v int64) error {
		n := binary.PutVarint(vbuf[:], v)
		_, err := w.Write(vbuf[:n])
		return err
	}
	if err := writeUvarint(seq); err != nil {
		return err
	}
	lists, err := m.Lists()
	if err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(lists))); err != nil {
		return err
	}
	var f8 [8]byte
	for _, id := range lists {
		var viewErr error
		// Version, elements and leaves are read under one lock
		// acquisition (viewCommitted), so a live export — writers
		// active on other lists — can never pair a version with
		// another version's content.
		err := m.viewCommitted(id, func(version uint64, elems []Element, leaves []proof.Hash) {
			if viewErr = writeUvarint(uint64(id)); viewErr != nil {
				return
			}
			if viewErr = writeUvarint(version); viewErr != nil {
				return
			}
			if viewErr = writeUvarint(uint64(len(elems))); viewErr != nil {
				return
			}
			for _, el := range elems {
				if viewErr = writeVarint(int64(el.Group)); viewErr != nil {
					return
				}
				binary.BigEndian.PutUint64(f8[:], math.Float64bits(el.TRS))
				if _, viewErr = w.Write(f8[:]); viewErr != nil {
					return
				}
				if viewErr = writeUvarint(uint64(len(el.Sealed))); viewErr != nil {
					return
				}
				if _, viewErr = w.Write(el.Sealed); viewErr != nil {
					return
				}
			}
			if leaves == nil {
				_, viewErr = w.Write([]byte{0})
				return
			}
			if _, viewErr = w.Write([]byte{1}); viewErr != nil {
				return
			}
			for i := range leaves {
				if _, viewErr = w.Write(leaves[i][:]); viewErr != nil {
					return
				}
			}
		})
		if err != nil {
			// The list vanished between Lists and View (unreachable
			// today — lists are never dropped — but kept defensive);
			// write it as empty to keep the count honest.
			if errors.Is(err, ErrUnknownList) {
				if err := writeUvarint(uint64(id)); err != nil {
					return err
				}
				if err := writeUvarint(0); err != nil {
					return err
				}
				if err := writeUvarint(0); err != nil {
					return err
				}
				if _, err := w.Write([]byte{0}); err != nil {
					return err
				}
				continue
			}
			return err
		}
		if viewErr != nil {
			return viewErr
		}
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], sum.Sum32())
	if _, err := bw.Write(crc[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// readSnapshot loads the snapshot at path into a fresh Memory. A
// missing file yields an empty store at sequence zero — a first boot.
//
// The default path mmaps the file, so the decode below validates
// framing against page-cache-backed memory and the per-list element
// bytes are faulted in only when a list is first touched. readAll
// forces a plain up-front read instead (benchmark baselines, callers
// that want no mapping).
func readSnapshot(path string, readAll bool) (seq uint64, m *Memory, _ error) {
	var (
		data []byte
		err  error
	)
	if readAll {
		data, err = os.ReadFile(path)
	} else {
		data, err = mapFile(path)
	}
	if errors.Is(err, os.ErrNotExist) {
		return 0, NewMemory(), nil
	}
	if err != nil {
		return 0, nil, err
	}
	return decodeSnapshot(data)
}

// decodeSnapshot parses a ZSNAP3 (or legacy ZSNAP2/ZSNAP1) dump into
// a fresh Memory — the shared core of crash recovery and snapshot
// import. It validates the whole dump (CRC, then per-element framing)
// but builds no list: each list is registered lazily with its
// validated byte region, and decoding happens on first touch.
// Recovery cost at open is therefore one sequential scan, with zero
// per-element allocation.
func decodeSnapshot(data []byte) (seq uint64, m *Memory, _ error) {
	m = NewMemory()
	if len(data) < len(snapMagic)+4 {
		return 0, nil, fmt.Errorf("%w: missing magic", ErrBadSnapshot)
	}
	hasVersions, hasLeaves := true, true
	switch string(data[:len(snapMagic)]) {
	case string(snapMagic):
	case string(snapMagicV2):
		hasLeaves = false
	case string(snapMagicV1):
		hasVersions, hasLeaves = false, false
	default:
		return 0, nil, fmt.Errorf("%w: missing magic", ErrBadSnapshot)
	}
	body := data[len(snapMagic) : len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	rd := newByteCursor(body)
	seq, err := binary.ReadUvarint(rd)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	numLists, err := binary.ReadUvarint(rd)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	for i := uint64(0); i < numLists; i++ {
		id, err := binary.ReadUvarint(rd)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: list %d: %v", ErrBadSnapshot, i, err)
		}
		var version uint64
		if hasVersions {
			if version, err = binary.ReadUvarint(rd); err != nil {
				return 0, nil, fmt.Errorf("%w: list %d: %v", ErrBadSnapshot, i, err)
			}
		}
		n, err := binary.ReadUvarint(rd)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: list %d: %v", ErrBadSnapshot, i, err)
		}
		if n > uint64(rd.remaining()) {
			return 0, nil, fmt.Errorf("%w: list %d claims %d elements with %d bytes left", ErrBadSnapshot, i, n, rd.remaining())
		}
		// Walk the list's elements validating only framing — no Element
		// is built, no byte copied. The validated region is what the
		// lazy list decodes on first touch.
		start := rd.off
		for j := uint64(0); j < n; j++ {
			if _, err := binary.ReadVarint(rd); err != nil {
				return 0, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
			if _, err := rd.take(8); err != nil {
				return 0, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
			sl, err := binary.ReadUvarint(rd)
			if err != nil {
				return 0, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
			if _, err := rd.take(int(sl)); err != nil {
				return 0, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
		}
		if !hasVersions {
			// Legacy snapshot: the counter was not recorded. numElems is
			// the lowest value a live list of this size can have had
			// (every element cost at least one insert), so it is the
			// safest monotone seed available.
			version = n
		}
		elemRegion := body[start:rd.off]
		var leafRegion []byte
		if hasLeaves {
			flag, err := rd.take(1)
			if err != nil {
				return 0, nil, fmt.Errorf("%w: list %d leaf flag: %v", ErrBadSnapshot, i, err)
			}
			switch flag[0] {
			case 0:
			case 1:
				if n > uint64(rd.remaining())/proof.HashSize {
					return 0, nil, fmt.Errorf("%w: list %d claims %d leaves with %d bytes left", ErrBadSnapshot, i, n, rd.remaining())
				}
				leafRegion, err = rd.take(int(n) * proof.HashSize)
				if err != nil {
					return 0, nil, fmt.Errorf("%w: list %d leaves: %v", ErrBadSnapshot, i, err)
				}
			default:
				return 0, nil, fmt.Errorf("%w: list %d leaf flag %d", ErrBadSnapshot, i, flag[0])
			}
		}
		m.loadLazy(zerber.ListID(id), elemRegion, int(n), version, leafRegion)
	}
	if rd.remaining() != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, rd.remaining())
	}
	return seq, m, nil
}

// decodeListElements decodes one list's element region that
// decodeSnapshot already validated. Sealed slices alias raw — for an
// mmap-backed snapshot that is the zero-copy making recovery pay only
// for the lists queries touch; the store never rewrites sealed bytes,
// so the aliases stay valid for the store's lifetime (the same
// contract QueryResult documents). The region was framing-checked at
// load, so decode errors are impossible; an invariant violation here
// would surface as an index panic, deliberately loud.
func decodeListElements(raw []byte, n int) []Element {
	rd := newByteCursor(raw)
	elems := make([]Element, n)
	for j := range elems {
		group, _ := binary.ReadVarint(rd)
		f8, _ := rd.take(8)
		sl, _ := binary.ReadUvarint(rd)
		sealed, _ := rd.take(int(sl))
		elems[j] = Element{
			Sealed: sealed,
			TRS:    math.Float64frombits(binary.BigEndian.Uint64(f8)),
			Group:  int(group),
		}
	}
	return elems
}

// syncDir fsyncs a directory so a rename within it is durable.
// Best-effort: some platforms refuse to sync directories.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
