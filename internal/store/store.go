// Package store provides the storage engines behind the untrusted
// index server: a Backend interface over merged posting lists, the
// original RAM-only implementation (Memory), and a durable engine
// (Durable) that layers a CRC-framed write-ahead log and periodic
// snapshots on top of it so a server restart recovers the full index.
//
// Everything a backend stores is already safe to outsource: sealed
// payloads, transformed relevance scores and group IDs (Section 3.1 of
// the paper — the index servers are "largely untrusted" and hold the
// index on outsourced storage). Durability therefore adds no new
// leakage; it only changes where the sealed bytes live.
package store

import (
	"errors"
	"sort"
	"sync"

	"zerberr/internal/zerber"
)

// Element is one stored posting element: ciphertext plus the
// server-visible ranking and ACL fields. server.StoredElement aliases
// this type, so the wire format is unchanged.
type Element struct {
	// Sealed is the encrypted (doc, term, score) payload.
	Sealed []byte `json:"sealed"`
	// TRS is the transformed relevance score the server ranks by.
	TRS float64 `json:"trs"`
	// Group is the collaboration group owning the element.
	Group int `json:"group"`
}

// Less orders elements by descending TRS. Ties are broken by the
// sealed payload bytes, which are indistinguishable from random to the
// server — so tie order carries no term information.
func Less(a, b Element) bool {
	if a.TRS != b.TRS {
		return a.TRS > b.TRS
	}
	return string(a.Sealed) < string(b.Sealed)
}

// Errors returned by backends. The server layer translates these into
// its own API errors.
var (
	// ErrUnknownList reports an operation on a list the backend does
	// not hold.
	ErrUnknownList = errors.New("store: unknown posting list")
	// ErrNotFound reports a Remove for an element the list does not
	// hold.
	ErrNotFound = errors.New("store: element not found")
	// ErrDenied reports a Remove vetoed by the caller's allow
	// predicate.
	ErrDenied = errors.New("store: remove denied")
	// ErrClosed reports an operation on a closed backend.
	ErrClosed = errors.New("store: backend closed")
	// ErrLocked reports a data directory already owned by another
	// live Durable instance (possibly in another process).
	ErrLocked = errors.New("store: data directory locked by another process")
)

// Backend is the storage engine beneath server.Server. All
// implementations are safe for concurrent use; access control and
// authentication stay in the server layer above.
type Backend interface {
	// Name identifies the engine ("memory", "durable") for
	// diagnostics such as the /v2/stats endpoint.
	Name() string
	// Insert stores an element into the given merged list, creating
	// the list if needed.
	Insert(list zerber.ListID, el Element) error
	// Remove deletes the element whose sealed payload matches exactly.
	// Before deleting it calls allow with the element's group; a false
	// return aborts with ErrDenied (the ACL check must observe the
	// element atomically with its removal). A nil allow permits all.
	Remove(list zerber.ListID, sealed []byte, allow func(group int) bool) error
	// View calls fn with the list's elements in rank order (descending
	// TRS). The slice is only valid during the call: fn must not
	// retain or mutate it.
	View(list zerber.ListID, fn func(elems []Element)) error
	// Len reports how many elements the list holds (0 if absent).
	Len(list zerber.ListID) int
	// Lists returns the IDs of all known lists in ascending order.
	// Lists emptied by removals remain known.
	Lists() []zerber.ListID
	// NumLists reports how many merged lists exist, including emptied
	// ones.
	NumLists() int
	// NumElements reports the total number of stored elements.
	NumElements() int
	// Close releases the backend's resources, flushing any buffered
	// state to stable storage first.
	Close() error
}

// Memory is the RAM-only backend: the server's original storage,
// factored out. It is the recovery target for Durable and the default
// for tests and experiments.
type Memory struct {
	mu    sync.RWMutex
	lists map[zerber.ListID]*mergedList
}

// mergedList holds one merged posting list sorted by descending TRS.
// Inserts append and mark the list dirty; the sort is re-established
// lazily before the next read, so bulk loading stays O(n log n).
type mergedList struct {
	elems []Element
	dirty bool
}

// NewMemory creates an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{lists: make(map[zerber.ListID]*mergedList)}
}

// Name implements Backend.
func (m *Memory) Name() string { return "memory" }

// Insert implements Backend. It never fails.
func (m *Memory) Insert(list zerber.ListID, el Element) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.insertLocked(list, el)
	return nil
}

func (m *Memory) insertLocked(list zerber.ListID, el Element) {
	ml := m.lists[list]
	if ml == nil {
		ml = &mergedList{}
		m.lists[list] = ml
	}
	ml.elems = append(ml.elems, el)
	ml.dirty = true
}

// Remove implements Backend. A list emptied by removals stays present
// (and keeps answering queries with an empty, exhausted view) — the
// original server semantics.
func (m *Memory) Remove(list zerber.ListID, sealed []byte, allow func(group int) bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := m.removeLocked(list, sealed, allow)
	return err
}

// removeLocked deletes the matching element and returns it so a
// caller whose follow-up work fails can reinsert it (Durable's WAL
// rollback).
func (m *Memory) removeLocked(list zerber.ListID, sealed []byte, allow func(group int) bool) (Element, error) {
	ml := m.lists[list]
	if ml == nil {
		return Element{}, ErrUnknownList
	}
	for i, el := range ml.elems {
		if string(el.Sealed) != string(sealed) {
			continue
		}
		if allow != nil && !allow(el.Group) {
			return Element{}, ErrDenied
		}
		ml.elems = append(ml.elems[:i], ml.elems[i+1:]...)
		return el, nil
	}
	return Element{}, ErrNotFound
}

// ensureSorted re-sorts a dirty list. Callers must hold the write
// lock.
func (ml *mergedList) ensureSorted() {
	if !ml.dirty {
		return
	}
	sort.SliceStable(ml.elems, func(i, j int) bool { return Less(ml.elems[i], ml.elems[j]) })
	ml.dirty = false
}

// View implements Backend, upgrading to the write lock only when the
// list needs re-sorting.
func (m *Memory) View(list zerber.ListID, fn func(elems []Element)) error {
	m.mu.RLock()
	ml := m.lists[list]
	if ml == nil {
		m.mu.RUnlock()
		return ErrUnknownList
	}
	if !ml.dirty {
		defer m.mu.RUnlock()
		fn(ml.elems)
		return nil
	}
	m.mu.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	ml = m.lists[list]
	if ml == nil {
		return ErrUnknownList
	}
	ml.ensureSorted()
	fn(ml.elems)
	return nil
}

// Len implements Backend.
func (m *Memory) Len(list zerber.ListID) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if ml := m.lists[list]; ml != nil {
		return len(ml.elems)
	}
	return 0
}

// Lists implements Backend.
func (m *Memory) Lists() []zerber.ListID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]zerber.ListID, 0, len(m.lists))
	for id := range m.lists {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumLists implements Backend.
func (m *Memory) NumLists() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.lists)
}

// NumElements implements Backend.
func (m *Memory) NumElements() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, ml := range m.lists {
		n += len(ml.elems)
	}
	return n
}

// Close implements Backend. Memory holds no external resources.
func (m *Memory) Close() error { return nil }

// load replaces a list's contents wholesale (snapshot recovery). The
// elements are assumed already rank-sorted when sorted is true. Empty
// lists are kept present, mirroring live state after removals.
func (m *Memory) load(list zerber.ListID, elems []Element, sorted bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lists[list] = &mergedList{elems: elems, dirty: !sorted && len(elems) > 0}
}

var _ Backend = (*Memory)(nil)
