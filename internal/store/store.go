// Package store provides the storage engines behind the untrusted
// index server: a Backend interface over merged posting lists, the
// original RAM-only implementation (Memory), and a durable engine
// (Durable) that layers a CRC-framed write-ahead log and periodic
// snapshots on top of it so a server restart recovers the full index.
//
// Everything a backend stores is already safe to outsource: sealed
// payloads, transformed relevance scores and group IDs (Section 3.1 of
// the paper — the index servers are "largely untrusted" and hold the
// index on outsourced storage). Durability therefore adds no new
// leakage; it only changes where the sealed bytes live.
//
// Each merged list is kept as one sorted sub-list per group. The group
// ID is server-visible anyway (it is what access control filters on),
// so the decomposition leaks nothing new, and it is what makes the hot
// path cheap: a ranked range filtered by the caller's groups is a
// k-way merge over only the allowed sub-lists that skips straight to
// the requested offset, O(offset·polylog + count·k) instead of a scan
// over the whole merged list.
package store

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"sync"

	"zerberr/internal/proof"
	"zerberr/internal/zerber"
)

// Element is one stored posting element: ciphertext plus the
// server-visible ranking and ACL fields. server.StoredElement aliases
// this type, so the wire format is unchanged.
type Element struct {
	// Sealed is the encrypted (doc, term, score) payload.
	Sealed []byte `json:"sealed"`
	// TRS is the transformed relevance score the server ranks by.
	TRS float64 `json:"trs"`
	// Group is the collaboration group owning the element.
	Group int `json:"group"`
}

// Less orders elements by descending TRS. Ties are broken by the
// sealed payload bytes, which are indistinguishable from random to the
// server — so tie order carries no term information.
func Less(a, b Element) bool {
	if a.TRS != b.TRS {
		return a.TRS > b.TRS
	}
	return string(a.Sealed) < string(b.Sealed)
}

// Errors returned by backends. The server layer translates these into
// its own API errors.
var (
	// ErrUnknownList reports an operation on a list the backend does
	// not hold.
	ErrUnknownList = errors.New("store: unknown posting list")
	// ErrNotFound reports a Remove for an element the list does not
	// hold.
	ErrNotFound = errors.New("store: element not found")
	// ErrDenied reports a Remove vetoed by the caller's allow
	// predicate.
	ErrDenied = errors.New("store: remove denied")
	// ErrClosed reports an operation on a closed backend.
	ErrClosed = errors.New("store: backend closed")
	// ErrLocked reports a data directory already owned by another
	// live Durable instance (possibly in another process).
	ErrLocked = errors.New("store: data directory locked by another process")
)

// QueryResult is one ranked range of a merged list, filtered to the
// caller's groups.
type QueryResult struct {
	// Elements are the range's elements in rank order. Their Sealed
	// slices alias the store's own buffers — callers must not mutate
	// them (the store itself never rewrites payload bytes in place, so
	// the aliases stay valid across later inserts and removals).
	Elements []Element
	// Exhausted reports that no visible element exists beyond the
	// range, i.e. the filtered view holds at most offset+count
	// elements.
	Exhausted bool
	// Version is the list's mutation version the range was read at
	// (see Backend.Version). It is observed atomically with Elements,
	// so a result cache keyed by it can never mix content from two
	// versions.
	Version uint64
	// Proof is the window's Merkle proof, set only by QueryProved and
	// observed atomically with Elements and Version. Plain Query never
	// sets it, so unproven results are byte-identical to before the
	// commitment scheme existed. Version-keyed caches may hold proved
	// results and serve them to unproven callers with Proof stripped —
	// the proof memoizes for free under the same key.
	Proof *proof.Window
}

// BatchInsert is one element of an InsertBatch call.
type BatchInsert struct {
	List    zerber.ListID
	Element Element
}

// Backend is the storage engine beneath server.Server. All
// implementations are safe for concurrent use; access control and
// authentication stay in the server layer above.
type Backend interface {
	// Name identifies the engine ("memory", "durable") for
	// diagnostics such as the /v2/stats endpoint.
	Name() string
	// Insert stores an element into the given merged list, creating
	// the list if needed.
	Insert(list zerber.ListID, el Element) error
	// InsertBatch stores many elements as one operation. Logged
	// engines append a single batched WAL record for the whole batch
	// (splitting only when the encoding would breach the record size
	// bound), so a bulk load costs one framing, one commit-queue entry
	// and one fsync instead of N. Observable semantics are exactly N
	// Inserts in slice order: one version bump per element, identical
	// recovery. An empty batch is a no-op.
	InsertBatch(ops []BatchInsert) error
	// Remove deletes the element whose sealed payload matches exactly.
	// Before deleting it calls allow with the element's group; a false
	// return aborts with ErrDenied (the ACL check must observe the
	// element atomically with its removal). A nil allow permits all.
	Remove(list zerber.ListID, sealed []byte, allow func(group int) bool) error
	// Query returns up to count elements starting at offset within the
	// list's rank order restricted to the allowed groups (nil allows
	// every group). It is the server's hot path: the cost is the skip
	// to offset plus the size of the range, not the length of the
	// list. offset must be non-negative and count positive.
	Query(list zerber.ListID, allowed map[int]bool, offset, count int) (QueryResult, error)
	// QueryProved is Query plus a Merkle window proof in the result's
	// Proof field: inclusion and adjacency for the returned range
	// against the list's committed root at the result's version. It is
	// the audit path, deliberately off the hot one — the first proved
	// read of a list hashes its elements into leaves; later reads
	// reuse them incrementally.
	QueryProved(list zerber.ListID, allowed map[int]bool, offset, count int) (QueryResult, error)
	// Commitment reports the list's current Merkle commitment — the
	// version-free content root (cross-instance identity checks, e.g.
	// migration's differential verify) and the version-bound list root
	// proofs verify against. Unknown lists are ErrUnknownList.
	Commitment(list zerber.ListID) (Commitment, error)
	// Version reports the list's mutation version: a per-list counter,
	// monotonic within a backend instance, bumped by every content
	// change (insert or successful remove). The durable backend
	// persists it through snapshots and WAL replay; fresh lists seed it
	// with a random per-instance epoch in the high bits, so no version
	// is ever reused across restarts either. Two reads of one list
	// returning the same version are guaranteed to have observed
	// identical content, which is what makes version-keyed result
	// caching sound. Unknown lists are ErrUnknownList.
	Version(list zerber.ListID) (uint64, error)
	// View calls fn with the list's elements in rank order (descending
	// TRS). The slice is only valid during the call: fn must not
	// retain or mutate it. It materializes the full merged list —
	// maintenance paths (snapshots, remove pre-flights) use it; ranged
	// reads should use Query.
	View(list zerber.ListID, fn func(elems []Element)) error
	// Len reports how many elements the list holds (0 if absent).
	Len(list zerber.ListID) (int, error)
	// Lists returns the IDs of all known lists in ascending order.
	// Lists emptied by removals remain known.
	Lists() ([]zerber.ListID, error)
	// NumLists reports how many merged lists exist, including emptied
	// ones.
	NumLists() (int, error)
	// NumElements reports the total number of stored elements.
	NumElements() (int, error)
	// ExportSnapshot returns a point-in-time ZSNAP2 dump of the whole
	// backend — every list in rank order with its mutation version —
	// plus the WAL sequence the dump covers (0 for engines without a
	// log). The dump is self-verifying (CRC-framed) and is what live
	// shard migration ships; see migrate.go.
	ExportSnapshot() (data []byte, seq uint64, err error)
	// ImportSnapshot replaces the backend's entire contents with a
	// ZSNAP2 dump produced by ExportSnapshot, carrying the source's
	// per-list versions along so version-keyed caches stay coherent
	// across the move. Durable engines persist the imported state
	// before adopting it.
	ImportSnapshot(data []byte) error
	// TailSince returns the mutations logged after the given sequence,
	// in order — the WAL tail a migration replays on top of a shipped
	// snapshot. Engines without a log return ErrNoTail; a logged engine
	// whose compaction already dropped part of the requested range
	// returns ErrTailTruncated (re-export and try again).
	TailSince(seq uint64) ([]TailOp, error)
	// Close releases the backend's resources, flushing any buffered
	// state to stable storage first.
	Close() error
}

// Memory is the RAM-only backend: the server's original storage,
// reworked around per-group sorted sub-lists. It is the recovery
// target for Durable and the default for tests and experiments.
//
// Locking is two-level: Memory.mu guards only the map of lists (lists
// are created, never dropped), and every merged list carries its own
// RWMutex — so concurrent sub-queries of a batch touching different
// lists never contend, and readers of one list contend only with
// writers of that list.
type Memory struct {
	mu    sync.RWMutex
	lists map[zerber.ListID]*mergedList
	// lazy holds snapshot-loaded lists not yet touched: the list's raw
	// element region of the snapshot body (possibly an mmap alias)
	// plus enough metadata — count, version — to answer the stats
	// surface without decoding anything. The first real access
	// materializes the list into lists; a list is in exactly one of
	// the two maps. This is what makes recovery latency independent of
	// how many lists the snapshot holds: OpenDurable folds in only the
	// lists the WAL tail touches, and a restarted shard answers its
	// first query after decoding one list, not all of them.
	lazy map[zerber.ListID]*lazyList
	// verBase seeds every freshly created list's version counter: a
	// random per-instance epoch in the high 32 bits. A restarted
	// RAM-only server (or a list recovered only from the WAL tail)
	// therefore cannot re-reach a version observed before the restart
	// by re-counting to it — which is what lets an out-of-process
	// window cache (the cluster router) trust version equality across
	// its shards' lifetimes. Lists loaded from a snapshot keep their
	// persisted absolute counter instead.
	verBase uint64
}

// relem is a stored element plus its list-local insertion sequence.
// The sequence breaks exact (TRS, sealed) ties by insertion order —
// the order the original stable full-list sort produced — so the
// per-group decomposition is observationally identical to the old
// single sorted slice.
type relem struct {
	Element
	seq uint64
}

// rless is the total order the read path merges by: descending TRS,
// then sealed bytes, then insertion order. Sequences are unique within
// a list, so no two of its elements compare equal.
func rless(a, b relem) bool {
	if a.TRS != b.TRS {
		return a.TRS > b.TRS
	}
	if c := bytes.Compare(a.Sealed, b.Sealed); c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

// mergedList holds one merged posting list as one sorted sub-list per
// group. Inserts append to the group's pending buffer; a read of that
// group first folds the buffer in (sort the pending tail, merge two
// sorted runs) — O(n + p·log p) instead of the old full O(n·log n)
// re-sort, and only for groups the read actually touches.
type mergedList struct {
	mu      sync.RWMutex
	groups  map[int]*groupList
	total   int
	nextSeq uint64
	// version counts content changes (inserts and successful removes).
	// Reads report it so ranged windows can be cached under a key that
	// a later mutation transparently invalidates.
	version uint64
	// commitVer/commitOK cache the list-level commitment (content and
	// list root) for one version; a version bump is the invalidation,
	// exactly as for cached query windows.
	commitVer     uint64
	commitOK      bool
	commitContent proof.Hash
	commitRoot    proof.Hash
}

// groupList is one group's slice of a merged list.
type groupList struct {
	sorted  []relem // rless-ordered
	pending []relem // unsorted recent inserts, folded in on read
	// leaves mirrors sorted with each element's commitment leaf hash
	// (see internal/proof). It stays unmaterialized (hashed false)
	// until the list's first proved read or commitment — audit on
	// demand, the unproven hot path never hashes — and is maintained
	// incrementally from then on: compact hashes only the pending
	// tail, removals splice, snapshots persist the hashes so recovery
	// recommits without re-hashing.
	leaves []proof.Hash
	hashed bool
	// root caches the Merkle root over leaves; rootOK is dropped by
	// any mutation of sorted.
	root   proof.Hash
	rootOK bool
}

// dirty reports whether a read of this group must first fold the
// pending buffer in.
func (g *groupList) dirty() bool { return len(g.pending) > 0 }

// compact folds the pending buffer into the sorted run. Callers hold
// the list's write lock. When the group's leaves are materialized the
// merge carries them along, hashing only the pending tail — the
// incremental maintenance that keeps commitments cheap at fold time.
func (g *groupList) compact() {
	if len(g.pending) == 0 {
		return
	}
	g.rootOK = false
	sort.Slice(g.pending, func(i, j int) bool { return rless(g.pending[i], g.pending[j]) })
	if len(g.sorted) == 0 {
		g.sorted = g.pending
		g.pending = nil
		if g.hashed {
			g.leaves = leafHashes(g.sorted)
		}
		return
	}
	merged := make([]relem, 0, len(g.sorted)+len(g.pending))
	var mleaves []proof.Hash
	if g.hashed {
		mleaves = make([]proof.Hash, 0, cap(merged))
	}
	i, j := 0, 0
	for i < len(g.sorted) && j < len(g.pending) {
		if rless(g.pending[j], g.sorted[i]) {
			merged = append(merged, g.pending[j])
			if g.hashed {
				mleaves = append(mleaves, proof.LeafHash(g.pending[j].TRS, g.pending[j].Sealed))
			}
			j++
		} else {
			merged = append(merged, g.sorted[i])
			if g.hashed {
				mleaves = append(mleaves, g.leaves[i])
			}
			i++
		}
	}
	if g.hashed {
		mleaves = append(mleaves, g.leaves[i:]...)
		for _, r := range g.pending[j:] {
			mleaves = append(mleaves, proof.LeafHash(r.TRS, r.Sealed))
		}
		g.leaves = mleaves
	}
	merged = append(merged, g.sorted[i:]...)
	merged = append(merged, g.pending[j:]...)
	g.sorted = merged
	g.pending = nil
}

// leafHashes commits every element of a sorted run.
func leafHashes(run []relem) []proof.Hash {
	leaves := make([]proof.Hash, len(run))
	for i, r := range run {
		leaves[i] = proof.LeafHash(r.TRS, r.Sealed)
	}
	return leaves
}

// lazyList is a snapshot-loaded list awaiting first use: raw is its
// validated element region of the snapshot body, count and version
// the metadata the stats surface answers from. The Once makes
// same-list racers share a single decode.
type lazyList struct {
	once    sync.Once
	ml      *mergedList
	raw     []byte
	count   int
	version uint64
	// rawLeaves is the snapshot's persisted leaf-hash block (count ×
	// HashSize bytes, merged rank order), nil when the snapshot was
	// written before the list's commitment ever materialized.
	rawLeaves []byte
}

// NewMemory creates an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{
		lists:   make(map[zerber.ListID]*mergedList),
		lazy:    make(map[zerber.ListID]*lazyList),
		verBase: uint64(rand.Uint32()) << 32,
	}
}

// Name implements Backend.
func (m *Memory) Name() string { return "memory" }

// list returns the merged list, materializing a lazily loaded one on
// this first touch, creating a fresh one when create is set.
func (m *Memory) list(id zerber.ListID, create bool) *mergedList {
	m.mu.RLock()
	ml := m.lists[id]
	lz := m.lazy[id]
	m.mu.RUnlock()
	if ml != nil {
		return ml
	}
	if lz != nil {
		return m.materialize(id, lz)
	}
	if !create {
		return nil
	}
	m.mu.Lock()
	ml = m.lists[id]
	lz = m.lazy[id]
	if ml == nil && lz == nil {
		ml = &mergedList{groups: make(map[int]*groupList), version: m.verBase}
		m.lists[id] = ml
	}
	m.mu.Unlock()
	if ml != nil {
		return ml
	}
	return m.materialize(id, lz)
}

// materialize decodes a lazily loaded list and publishes it. The
// decode runs outside m.mu — first touches of different lists decode
// in parallel, and a long fold-in never blocks lookups of other
// lists.
func (m *Memory) materialize(id zerber.ListID, lz *lazyList) *mergedList {
	lz.once.Do(func() {
		lz.ml = newMergedListFrom(decodeListElements(lz.raw, lz.count), true, lz.version, decodeListLeaves(lz.rawLeaves, lz.count))
		m.mu.Lock()
		// Publish only if this lazy entry still owns the slot: an
		// ImportSnapshot may have swapped the maps mid-decode, and the
		// pre-import list must not resurrect over imported state (the
		// toucher still gets the pre-import view it started on, same
		// as a reader holding a list pointer across an import).
		if m.lazy[id] == lz {
			m.lists[id] = lz.ml
			delete(m.lazy, id)
		}
		m.mu.Unlock()
		lz.raw = nil
		lz.rawLeaves = nil
	})
	return lz.ml
}

// loadLazy registers a snapshot list region for deferred decoding
// (snapshot recovery and import). rawLeaves, when non-nil, is the
// persisted leaf-hash block the materialized list recommits from.
func (m *Memory) loadLazy(id zerber.ListID, raw []byte, count int, version uint64, rawLeaves []byte) {
	m.mu.Lock()
	m.lazy[id] = &lazyList{raw: raw, count: count, version: version, rawLeaves: rawLeaves}
	m.mu.Unlock()
}

// Insert implements Backend. It never fails.
func (m *Memory) Insert(list zerber.ListID, el Element) error {
	m.insert(list, el)
	return nil
}

// InsertBatch implements Backend. Memory keeps no log, so the batch
// is simply its inserts in order.
func (m *Memory) InsertBatch(ops []BatchInsert) error {
	for i := range ops {
		m.insert(ops[i].List, ops[i].Element)
	}
	return nil
}

// insert appends the element to its group's pending buffer — O(1); the
// sort debt is paid by the next read of that group, as one merge of
// two sorted runs.
func (m *Memory) insert(list zerber.ListID, el Element) {
	ml := m.list(list, true)
	ml.mu.Lock()
	g := ml.groups[el.Group]
	if g == nil {
		g = &groupList{}
		ml.groups[el.Group] = g
	}
	g.pending = append(g.pending, relem{Element: el, seq: ml.nextSeq})
	ml.nextSeq++
	ml.total++
	ml.version++
	ml.mu.Unlock()
}

// Remove implements Backend. A list emptied by removals stays present
// (and keeps answering queries with an empty, exhausted view) — the
// original server semantics.
func (m *Memory) Remove(list zerber.ListID, sealed []byte, allow func(group int) bool) error {
	_, err := m.remove(list, sealed, allow, nil)
	return err
}

// remove deletes the rank-first element whose payload matches. The ACL
// predicate observes exactly the element that would be removed. A
// non-nil commit runs after the ACL accepts and before anything
// changes, still under the list's write lock — Durable's WAL append
// lives there, so memory content, the version counter and the log
// advance atomically with respect to every reader: a failed commit
// aborts with the list (and its version) untouched and nothing
// intermediate ever observable.
func (m *Memory) remove(list zerber.ListID, sealed []byte, allow func(group int) bool, commit func(Element) error) (Element, error) {
	ml := m.list(list, false)
	if ml == nil {
		return Element{}, ErrUnknownList
	}
	ml.mu.Lock()
	defer ml.mu.Unlock()
	// Locate the rank-first match across every group's sorted run and
	// pending buffer. Within a sorted run the first index match is the
	// group's earliest; pending buffers are scanned in full.
	var (
		bestG   *groupList
		bestIdx = -1
		bestPen bool
		best    relem
	)
	consider := func(g *groupList, r relem, idx int, pending bool) {
		if bestG == nil || rless(r, best) {
			bestG, bestIdx, bestPen, best = g, idx, pending, r
		}
	}
	for _, g := range ml.groups {
		for idx, r := range g.sorted {
			if bytes.Equal(r.Sealed, sealed) {
				consider(g, r, idx, false)
				break
			}
		}
		for idx, r := range g.pending {
			if bytes.Equal(r.Sealed, sealed) {
				consider(g, r, idx, true)
			}
		}
	}
	if bestG == nil {
		return Element{}, ErrNotFound
	}
	if allow != nil && !allow(best.Group) {
		return Element{}, ErrDenied
	}
	if commit != nil {
		if err := commit(best.Element); err != nil {
			return Element{}, err
		}
	}
	if bestPen {
		bestG.pending = append(bestG.pending[:bestIdx], bestG.pending[bestIdx+1:]...)
	} else {
		bestG.sorted = append(bestG.sorted[:bestIdx], bestG.sorted[bestIdx+1:]...)
		if bestG.hashed {
			bestG.leaves = append(bestG.leaves[:bestIdx], bestG.leaves[bestIdx+1:]...)
		}
		bestG.rootOK = false
	}
	ml.total--
	ml.version++
	return best.Element, nil
}

// lockSorted takes the list lock with the allowed groups' pending
// buffers folded in: the read lock when they are already clean, the
// write lock (compacting) otherwise. It returns the unlock function.
func (ml *mergedList) lockSorted(allowed map[int]bool) func() {
	ml.mu.RLock()
	clean := true
	for gid, g := range ml.groups {
		if (allowed == nil || allowed[gid]) && g.dirty() {
			clean = false
			break
		}
	}
	if clean {
		return ml.mu.RUnlock
	}
	ml.mu.RUnlock()
	ml.mu.Lock()
	for gid, g := range ml.groups {
		if allowed == nil || allowed[gid] {
			g.compact()
		}
	}
	return ml.mu.Unlock
}

// Query implements Backend. Out-of-contract arguments are clamped
// (negative offset reads from the top, like the scan it replaced)
// rather than trusted into slice arithmetic.
func (m *Memory) Query(list zerber.ListID, allowed map[int]bool, offset, count int) (QueryResult, error) {
	if offset < 0 {
		offset = 0
	}
	if count < 0 {
		count = 0
	}
	ml := m.list(list, false)
	if ml == nil {
		return QueryResult{}, ErrUnknownList
	}
	unlock := ml.lockSorted(allowed)
	defer unlock()
	res := ml.queryLocked(allowed, offset, count)
	res.Version = ml.version
	return res, nil
}

// Version implements Backend. A lazily loaded list answers from its
// snapshot metadata without materializing: version probes (cache
// revalidation, stats) must stay cheap on a freshly restarted shard.
func (m *Memory) Version(list zerber.ListID) (uint64, error) {
	m.mu.RLock()
	ml := m.lists[list]
	lz := m.lazy[list]
	m.mu.RUnlock()
	if ml == nil {
		if lz == nil {
			return 0, ErrUnknownList
		}
		return lz.version, nil
	}
	ml.mu.RLock()
	defer ml.mu.RUnlock()
	return ml.version, nil
}

// queryLocked answers a ranged read over the allowed groups' sorted
// runs. Callers hold the list lock with those runs compacted.
func (ml *mergedList) queryLocked(allowed map[int]bool, offset, count int) QueryResult {
	res, _ := ml.queryCursorsLocked(allowed, offset, count, false)
	return res
}

// queryCursorsLocked is queryLocked plus, when withCursors is set,
// the per-group committed position range [start, end) the window
// occupies in each allowed non-empty group — exactly what a window
// proof commits to. Cursor capture rides the query's own skip and
// merge, so proving adds no second pass over the runs.
func (ml *mergedList) queryCursorsLocked(allowed map[int]bool, offset, count int, withCursors bool) (QueryResult, map[int][2]int) {
	var lists [][]relem
	var gids []int
	visible := 0
	for gid, g := range ml.groups {
		if allowed != nil && !allowed[gid] {
			continue
		}
		if len(g.sorted) == 0 {
			continue
		}
		lists = append(lists, g.sorted)
		gids = append(gids, gid)
		visible += len(g.sorted)
	}
	var cursors map[int][2]int
	if withCursors {
		cursors = make(map[int][2]int, len(lists))
	}
	// Exhausted iff at most count visible elements remain past offset.
	// Phrased as a subtraction (both operands are bounded by stored
	// sizes) so a huge wire-supplied count cannot overflow offset+count.
	res := QueryResult{Exhausted: visible-offset <= count}
	if offset >= visible {
		// The whole filtered view sits inside the skipped prefix.
		if withCursors {
			for i, run := range lists {
				cursors[gids[i]] = [2]int{len(run), len(run)}
			}
		}
		return res, cursors
	}
	n := min(count, visible-offset)
	if len(lists) == 1 {
		// One allowed group: the filtered view is the run itself.
		run := lists[0]
		res.Elements = make([]Element, n)
		for i := range res.Elements {
			res.Elements[i] = run[offset+i].Element
		}
		if withCursors {
			cursors[gids[0]] = [2]int{offset, offset + n}
		}
		return res, cursors
	}
	// Skip the cursors straight to the offset cut, then merge only the
	// window: each output element costs one k-wide minimum scan and a
	// single copy (payloads are aliased, never duplicated).
	cur := make([]int, len(lists))
	skipMerged(lists, cur, offset)
	var starts []int
	if withCursors {
		starts = append([]int(nil), cur...)
	}
	res.Elements = make([]Element, 0, n)
	for len(res.Elements) < n {
		best := -1
		for i, run := range lists {
			if cur[i] >= len(run) {
				continue
			}
			if best < 0 || rless(run[cur[i]], lists[best][cur[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		res.Elements = append(res.Elements, lists[best][cur[best]].Element)
		cur[best]++
	}
	if withCursors {
		for i := range lists {
			cursors[gids[i]] = [2]int{starts[i], cur[i]}
		}
	}
	return res, cursors
}

// skipMerged advances the cursors past the first skip elements of the
// merged view of the runs without visiting them one by one. Each round
// probes every run with enough elements left at depth step =
// remaining/active; the run whose probe ranks earliest may skip all
// step elements at once: at most step-1 elements of each other run can
// rank before that probe, so its global rank is under remaining and
// everything skipped stays inside the merged prefix. remaining decays
// geometrically, so the skip costs O(k²·log offset) comparisons for k
// runs rather than O(offset).
func skipMerged(lists [][]relem, cur []int, skip int) {
	remaining := skip
	for remaining > 0 {
		active := 0
		for i, run := range lists {
			if cur[i] < len(run) {
				active++
			}
		}
		if active == 0 {
			return
		}
		step := remaining / active
		best := -1
		if step > 1 {
			for i, run := range lists {
				if len(run)-cur[i] < step {
					continue
				}
				if best < 0 || rless(run[cur[i]+step-1], lists[best][cur[best]+step-1]) {
					best = i
				}
			}
		}
		if best >= 0 {
			cur[best] += step
			remaining -= step
			continue
		}
		// Tail (or no run has step elements left): pop the earliest
		// head.
		for i, run := range lists {
			if cur[i] >= len(run) {
				continue
			}
			if best < 0 || rless(run[cur[i]], lists[best][cur[best]]) {
				best = i
			}
		}
		cur[best]++
		remaining--
	}
}

// View implements Backend: it materializes the full merged list in
// rank order. Ranged reads should use Query; View remains for the
// whole-list paths (snapshot encoding, remove pre-flights, the
// adversary's view).
func (m *Memory) View(list zerber.ListID, fn func(elems []Element)) error {
	return m.viewVersioned(list, func(_ uint64, elems []Element) { fn(elems) })
}

// viewVersioned is View plus the list's mutation version, both read
// under one lock acquisition — the atomicity a live snapshot export
// needs so a dump can never pair one version with another version's
// elements.
func (m *Memory) viewVersioned(list zerber.ListID, fn func(version uint64, elems []Element)) error {
	ml := m.list(list, false)
	if ml == nil {
		return ErrUnknownList
	}
	unlock := ml.lockSorted(nil)
	defer unlock()
	res := ml.queryLocked(nil, 0, ml.total+1)
	fn(ml.version, res.Elements)
	return nil
}

// Len implements Backend. Lazily loaded lists answer from snapshot
// metadata without materializing.
func (m *Memory) Len(list zerber.ListID) (int, error) {
	m.mu.RLock()
	ml := m.lists[list]
	lz := m.lazy[list]
	m.mu.RUnlock()
	if ml == nil {
		if lz == nil {
			return 0, nil
		}
		return lz.count, nil
	}
	ml.mu.RLock()
	defer ml.mu.RUnlock()
	return ml.total, nil
}

// Lists implements Backend.
func (m *Memory) Lists() ([]zerber.ListID, error) {
	m.mu.RLock()
	out := make([]zerber.ListID, 0, len(m.lists)+len(m.lazy))
	for id := range m.lists {
		out = append(out, id)
	}
	for id := range m.lazy {
		out = append(out, id)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// NumLists implements Backend.
func (m *Memory) NumLists() (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.lists) + len(m.lazy), nil
}

// NumElements implements Backend.
func (m *Memory) NumElements() (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, ml := range m.lists {
		ml.mu.RLock()
		n += ml.total
		ml.mu.RUnlock()
	}
	for _, lz := range m.lazy {
		n += lz.count
	}
	return n, nil
}

// Close implements Backend. Memory holds no external resources.
func (m *Memory) Close() error { return nil }

// load replaces a list's contents wholesale (snapshot recovery). The
// elements are assumed already rank-sorted when sorted is true — their
// slice order then becomes the tie-breaking insertion order, exactly
// what the stable sort that produced the snapshot encoded. Empty lists
// are kept present, mirroring live state after removals. version seeds
// the list's mutation counter with the value the snapshot recorded, so
// recovery resumes the counter instead of restarting it (a restarted
// counter could re-reach an old version with different content,
// validating stale cached windows).
func (m *Memory) load(list zerber.ListID, elems []Element, sorted bool, version uint64) {
	ml := newMergedListFrom(elems, sorted, version, nil)
	m.mu.Lock()
	m.lists[list] = ml
	delete(m.lazy, list)
	m.mu.Unlock()
}

// newMergedListFrom builds a merged list from a slice of elements —
// the shared core of load and lazy materialization. leaves, when
// non-nil, carries elems' persisted commitment leaf hashes (aligned
// with elems; requires sorted) and is distributed to the groups so
// the recovered list recommits without re-hashing a single payload.
func newMergedListFrom(elems []Element, sorted bool, version uint64, leaves []proof.Hash) *mergedList {
	ml := &mergedList{groups: make(map[int]*groupList), version: version}
	if !sorted || len(leaves) != len(elems) {
		leaves = nil
	}
	for i, el := range elems {
		g := ml.groups[el.Group]
		if g == nil {
			g = &groupList{hashed: leaves != nil}
			ml.groups[el.Group] = g
		}
		r := relem{Element: el, seq: ml.nextSeq}
		if sorted {
			// A group's subsequence of a rank-sorted slice is itself
			// sorted under rless (sequences ascend with slice order).
			g.sorted = append(g.sorted, r)
			if leaves != nil {
				g.leaves = append(g.leaves, leaves[i])
			}
		} else {
			g.pending = append(g.pending, r)
		}
		ml.nextSeq++
		ml.total++
	}
	return ml
}

// adopt swaps in another Memory's list maps wholesale (snapshot
// import). Readers that already hold a merged-list pointer finish on
// the pre-import state; verBase stays this instance's own, so lists
// minted after the import cannot collide with pre-import versions.
func (m *Memory) adopt(src *Memory) {
	m.mu.Lock()
	m.lists = src.lists
	m.lazy = src.lazy
	m.mu.Unlock()
}

var _ Backend = (*Memory)(nil)
