//go:build !unix

package store

import "os"

// mapFile is the portable fallback behind the same interface as the
// unix mmap path: read the whole snapshot into memory up front.
func mapFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
