package store

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"zerberr/internal/zerber"
)

// reopen closes d and opens the same directory again.
func reopen(t *testing.T, d *Durable, opt Options) *Durable {
	t.Helper()
	dir := d.dir
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	nd, err := OpenDurable(dir, opt)
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	t.Cleanup(func() { nd.Close() })
	return nd
}

func TestDurableRestartRecoversState(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := d.Insert(zerber.ListID(i%7), el(fmt.Sprintf("p%03d", i), float64(i%13), i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Remove(0, []byte("p000"), nil); err != nil {
		t.Fatal(err)
	}
	want := dump(t, d)
	d = reopen(t, d, Options{})
	if got := dump(t, d); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state differs:\ngot  %v\nwant %v", got, want)
	}
	// And again: recovery itself must leave a reopenable directory.
	d = reopen(t, d, Options{})
	if got := dump(t, d); !reflect.DeepEqual(got, want) {
		t.Fatal("second recovery differs")
	}
}

// TestDurableTornFinalRecord writes N operations, truncates the WAL at
// every byte offset inside the final record, reopens, and asserts the
// store recovers exactly the N-1 prefix each time.
func TestDurableTornFinalRecord(t *testing.T) {
	const n = 20
	base := t.TempDir()
	build := func(dir string) (prefix map[zerber.ListID][]Element, sizes []int64) {
		d, err := OpenDurable(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if i == n-1 {
				prefix = dump(t, d)
			}
			if err := d.Insert(zerber.ListID(i%3), el(fmt.Sprintf("payload-%02d", i), float64(i), i%2)); err != nil {
				t.Fatal(err)
			}
			fi, err := os.Stat(filepath.Join(dir, walFileName))
			if err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, fi.Size())
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return prefix, sizes
	}
	master := filepath.Join(base, "master")
	prefix, sizes := build(master)
	walBytes, err := os.ReadFile(filepath.Join(master, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	lastStart, lastEnd := sizes[n-2], sizes[n-1]
	if int64(len(walBytes)) != lastEnd {
		t.Fatalf("wal is %d bytes, expected %d", len(walBytes), lastEnd)
	}
	for cut := lastStart + 1; cut < lastEnd; cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walFileName), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDurable(dir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		got := dump(t, d)
		if !reflect.DeepEqual(got, prefix) {
			t.Fatalf("cut at %d: recovered %d elements, want the %d-op prefix", cut, mustNumElements(t, d), n-1)
		}
		// The torn tail must be gone: appending afterwards and
		// reopening must still work.
		if err := d.Insert(99, el("after-crash", 1, 0)); err != nil {
			t.Fatal(err)
		}
		d = reopen(t, d, Options{})
		if mustLen(t, d, 99) != 1 {
			t.Fatalf("cut at %d: post-crash append lost", cut)
		}
		d.Close()
	}
}

// TestDurableTruncatedToAnyPrefix cuts the WAL at arbitrary offsets
// (not just inside the final record) and checks recovery never fails
// and always yields a prefix of the operation history.
func TestDurableTruncatedToAnyPrefix(t *testing.T) {
	const n = 12
	base := t.TempDir()
	master := filepath.Join(base, "master")
	d, err := OpenDurable(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var states []map[zerber.ListID][]Element // states[i] = after i ops
	var sizes []int64                        // sizes[i] = WAL size after i ops
	states = append(states, dump(t, d))
	fi, _ := os.Stat(filepath.Join(master, walFileName))
	sizes = append(sizes, fi.Size())
	for i := 0; i < n; i++ {
		if err := d.Insert(zerber.ListID(i%2), el(fmt.Sprintf("e%02d", i), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
		states = append(states, dump(t, d))
		fi, err := os.Stat(filepath.Join(master, walFileName))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}
	d.Close()
	walBytes, err := os.ReadFile(filepath.Join(master, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(walBytes)); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walFileName), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDurable(dir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		// The recovered state must be states[k] for the largest k with
		// sizes[k] <= cut: every fully-written record survives, every
		// partial one is dropped.
		k := 0
		for i, s := range sizes {
			if s <= cut {
				k = i
			}
		}
		if got := dump(t, d); !reflect.DeepEqual(got, states[k]) {
			t.Fatalf("cut at %d: state is not the %d-op prefix", cut, k)
		}
		d.Close()
	}
}

func TestDurableSnapshotCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := d.Insert(1, el(fmt.Sprintf("e%02d", i), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	big, _ := os.Stat(filepath.Join(dir, walFileName))
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	small, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if small.Size() != int64(len(walMagic)) {
		t.Fatalf("WAL after snapshot is %d bytes, want bare header (was %d)", small.Size(), big.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName)); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	want := dump(t, d)
	d = reopen(t, d, Options{})
	if got := dump(t, d); !reflect.DeepEqual(got, want) {
		t.Fatal("state after snapshot-only recovery differs")
	}
}

// TestDurableStaleWALAfterSnapshot simulates a crash between the
// snapshot rename and the WAL truncation: the old log survives next to
// the new snapshot. Sequence numbers must prevent double-apply.
func TestDurableStaleWALAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := d.Insert(zerber.ListID(i%4), el(fmt.Sprintf("e%02d", i), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	staleWAL, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := dump(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Undo the truncation: put the pre-snapshot log back.
	if err := os.WriteFile(filepath.Join(dir, walFileName), staleWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	nd, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if got := dump(t, nd); !reflect.DeepEqual(got, want) {
		t.Fatalf("stale WAL double-applied: %d elements, want %d", mustNumElements(t, nd), 30)
	}
}

// TestDurableRandomizedRoundTrip is the snapshot/WAL property test: a
// randomized insert/remove sequence with snapshots at random points
// must leave Durable equal to a plain Memory reference, before and
// after recovery.
func TestDurableRandomizedRoundTrip(t *testing.T) {
	windows := []time.Duration{0, 50 * time.Microsecond, DefaultCommitWindow}
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			opt := Options{
				SnapshotEvery:     25 + rng.Intn(50),
				FsyncEach:         seed%2 == 0,
				GroupCommitWindow: windows[seed%int64(len(windows))],
			}
			d, err := OpenDurable(t.TempDir(), opt)
			if err != nil {
				t.Fatal(err)
			}
			ref := NewMemory()
			live := make([][2]interface{}, 0) // (list, sealed) of inserted elements
			for op := 0; op < 400; op++ {
				switch {
				case len(live) > 0 && rng.Intn(3) == 0: // remove
					i := rng.Intn(len(live))
					list, sealed := live[i][0].(zerber.ListID), live[i][1].(string)
					live = append(live[:i], live[i+1:]...)
					errD := d.Remove(list, []byte(sealed), nil)
					errR := ref.Remove(list, []byte(sealed), nil)
					if (errD == nil) != (errR == nil) {
						t.Fatalf("op %d: remove divergence: durable=%v ref=%v", op, errD, errR)
					}
				case rng.Intn(40) == 0: // explicit snapshot
					if err := d.Snapshot(); err != nil {
						t.Fatal(err)
					}
				default: // insert
					list := zerber.ListID(rng.Intn(6))
					sealed := fmt.Sprintf("s%04d-%d", op, rng.Intn(1000))
					e := el(sealed, float64(rng.Intn(100)), rng.Intn(4))
					if err := d.Insert(list, e); err != nil {
						t.Fatal(err)
					}
					if err := ref.Insert(list, e); err != nil {
						t.Fatal(err)
					}
					live = append(live, [2]interface{}{list, sealed})
				}
			}
			want := dump(t, ref)
			if got := dump(t, d); !reflect.DeepEqual(got, want) {
				t.Fatal("durable diverged from reference before recovery")
			}
			d = reopen(t, d, opt)
			if got := dump(t, d); !reflect.DeepEqual(got, want) {
				t.Fatal("durable diverged from reference after recovery")
			}
		})
	}
}

func TestDurableClosedOps(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := d.Insert(1, el("x", 1, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert on closed: %v", err)
	}
	if err := d.Remove(1, []byte("x"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Remove on closed: %v", err)
	}
	if err := d.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot on closed: %v", err)
	}
}

// Reads must refuse a closed store too: the WAL is gone and the in-RAM
// state is frozen, so answering would silently serve a stale index
// (the bug: View/Len/Lists/NumLists/NumElements bypassed the closed
// check and kept answering from memory).
func TestDurableReadsAfterClose(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(1, el("x", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Query(1, nil, 0, 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query on closed: %v", err)
	}
	if err := d.View(1, func([]Element) { t.Fatal("View ran on closed store") }); !errors.Is(err, ErrClosed) {
		t.Fatalf("View on closed: %v", err)
	}
	if n, err := d.Len(1); !errors.Is(err, ErrClosed) || n != 0 {
		t.Fatalf("Len on closed: n=%d err=%v", n, err)
	}
	if ids, err := d.Lists(); !errors.Is(err, ErrClosed) || ids != nil {
		t.Fatalf("Lists on closed: ids=%v err=%v", ids, err)
	}
	if n, err := d.NumLists(); !errors.Is(err, ErrClosed) || n != 0 {
		t.Fatalf("NumLists on closed: n=%d err=%v", n, err)
	}
	if n, err := d.NumElements(); !errors.Is(err, ErrClosed) || n != 0 {
		t.Fatalf("NumElements on closed: n=%d err=%v", n, err)
	}
}

func TestDurableDataDirLocked(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open: %v, want ErrLocked", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the lock: the directory is reopenable.
	nd, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	nd.Close()
}

// TestDurableWALPoisonAndHeal forces a log-write failure (closing the
// WAL file out from under the store), checks mutations are refused
// while the on-disk state is ambiguous, and that a successful
// snapshot clears the poison.
func TestDurableWALPoisonAndHeal(t *testing.T) {
	var logged []string
	d, err := OpenDurable(t.TempDir(), Options{
		SnapshotEvery: -1,
		Logf:          func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Insert(1, el("ok", 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the log: swap in a wal whose file handle is closed, so
	// the next append's flush fails. Keep the real handle to restore
	// writability for the healing snapshot.
	realWAL := d.wal
	broken, err := os.Open(filepath.Join(d.dir, walFileName)) // read-only: writes fail
	if err != nil {
		t.Fatal(err)
	}
	d.wal = &wal{f: broken, bw: bufio.NewWriterSize(broken, 16)}
	if err := d.Insert(1, el("fails", 2, 0)); err == nil {
		t.Fatal("insert over broken WAL succeeded")
	}
	if mustLen(t, d, 1) != 1 {
		t.Fatal("failed insert reached memory")
	}
	// Poisoned: even valid mutations are refused now.
	if err := d.Insert(1, el("refused", 3, 0)); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("expected poisoned error, got %v", err)
	}
	if len(logged) == 0 {
		t.Fatal("poisoning was not logged")
	}
	// Heal: restore a writable log and snapshot.
	broken.Close()
	d.wal = realWAL
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(1, el("healed", 4, 0)); err != nil {
		t.Fatalf("insert after healing snapshot: %v", err)
	}
	want := dump(t, d)
	d = reopen(t, d, Options{})
	if got := dump(t, d); !reflect.DeepEqual(got, want) {
		t.Fatal("state after heal + recovery differs")
	}
}

func TestDurableCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(1, el("x", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	path := filepath.Join(dir, snapFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, Options{}); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupt snapshot: %v", err)
	}
}
