package store

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"zerberr/internal/zerber"
)

// backends returns a fresh instance of every Backend implementation so
// the contract tests run against each.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	d, err := OpenDurable(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	// The grouped instance routes every append through the commit
	// queue (FsyncEach makes the committer actually wait out the
	// window), so the whole contract suite doubles as a group-commit
	// correctness suite.
	g, err := OpenDurable(t.TempDir(), Options{FsyncEach: true, GroupCommitWindow: 50 * time.Microsecond})
	if err != nil {
		t.Fatalf("OpenDurable (grouped): %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return map[string]Backend{"memory": NewMemory(), "durable": d, "durable-grouped": g}
}

func el(payload string, trs float64, group int) Element {
	return Element{Sealed: []byte(payload), TRS: trs, Group: group}
}

// mustLen, mustLists, mustNumLists and mustNumElements unwrap the
// error-returning stats reads for tests running against live (never
// closed) backends.
func mustLen(t *testing.T, b Backend, id zerber.ListID) int {
	t.Helper()
	n, err := b.Len(id)
	if err != nil {
		t.Fatalf("Len(%d): %v", id, err)
	}
	return n
}

func mustLists(t *testing.T, b Backend) []zerber.ListID {
	t.Helper()
	ids, err := b.Lists()
	if err != nil {
		t.Fatalf("Lists: %v", err)
	}
	return ids
}

func mustNumLists(t *testing.T, b Backend) int {
	t.Helper()
	n, err := b.NumLists()
	if err != nil {
		t.Fatalf("NumLists: %v", err)
	}
	return n
}

func mustNumElements(t *testing.T, b Backend) int {
	t.Helper()
	n, err := b.NumElements()
	if err != nil {
		t.Fatalf("NumElements: %v", err)
	}
	return n
}

// dump extracts the full ranked state of a backend for comparison.
func dump(t *testing.T, b Backend) map[zerber.ListID][]Element {
	t.Helper()
	out := make(map[zerber.ListID][]Element)
	for _, id := range mustLists(t, b) {
		if err := b.View(id, func(elems []Element) {
			cp := make([]Element, len(elems))
			for i, e := range elems {
				cp[i] = Element{Sealed: append([]byte(nil), e.Sealed...), TRS: e.TRS, Group: e.Group}
			}
			out[id] = cp
		}); err != nil {
			t.Fatalf("View(%d): %v", id, err)
		}
	}
	return out
}

func TestBackendInsertViewRankOrder(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			ins := []Element{el("c", 1.0, 0), el("a", 3.0, 0), el("b", 2.0, 1), el("d", 3.0, 1)}
			for _, e := range ins {
				if err := b.Insert(7, e); err != nil {
					t.Fatalf("Insert: %v", err)
				}
			}
			var got []string
			if err := b.View(7, func(elems []Element) {
				for _, e := range elems {
					got = append(got, string(e.Sealed))
				}
			}); err != nil {
				t.Fatalf("View: %v", err)
			}
			// Descending TRS; the 3.0 tie breaks on sealed bytes.
			want := []string{"a", "d", "b", "c"}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rank order %v, want %v", got, want)
			}
			if mustLen(t, b, 7) != 4 || mustNumLists(t, b) != 1 || mustNumElements(t, b) != 4 {
				t.Fatalf("Len=%d NumLists=%d NumElements=%d", mustLen(t, b, 7), mustNumLists(t, b), mustNumElements(t, b))
			}
		})
	}
}

func TestBackendRemove(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Insert(1, el("x", 1, 5)); err != nil {
				t.Fatal(err)
			}
			if err := b.Remove(9, []byte("x"), nil); !errors.Is(err, ErrUnknownList) {
				t.Fatalf("unknown list: %v", err)
			}
			if err := b.Remove(1, []byte("nope"), nil); !errors.Is(err, ErrNotFound) {
				t.Fatalf("not found: %v", err)
			}
			denied := -1
			if err := b.Remove(1, []byte("x"), func(g int) bool { denied = g; return false }); !errors.Is(err, ErrDenied) {
				t.Fatalf("denied: %v", err)
			}
			if denied != 5 {
				t.Fatalf("allow saw group %d, want 5", denied)
			}
			if mustLen(t, b, 1) != 1 {
				t.Fatal("denied remove must not delete")
			}
			if err := b.Remove(1, []byte("x"), func(g int) bool { return g == 5 }); err != nil {
				t.Fatalf("allowed remove: %v", err)
			}
			// The emptied list stays known (seed server semantics: a
			// query gets an empty exhausted view, not unknown-list).
			if mustNumLists(t, b) != 1 || mustLen(t, b, 1) != 0 {
				t.Fatalf("after remove: NumLists=%d Len=%d", mustNumLists(t, b), mustLen(t, b, 1))
			}
			viewed := false
			if err := b.View(1, func(elems []Element) { viewed = len(elems) == 0 }); err != nil || !viewed {
				t.Fatalf("View of emptied list: err=%v sawEmpty=%v", err, viewed)
			}
		})
	}
}

func TestBackendLists(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, id := range []zerber.ListID{9, 2, 5} {
				if err := b.Insert(id, el(fmt.Sprintf("p%d", id), 1, 0)); err != nil {
					t.Fatal(err)
				}
			}
			want := []zerber.ListID{2, 5, 9}
			if got := mustLists(t, b); !reflect.DeepEqual(got, want) {
				t.Fatalf("Lists() = %v, want %v", got, want)
			}
		})
	}
}

func TestBackendConcurrentAccess(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			done := make(chan error, 8)
			for w := 0; w < 4; w++ {
				go func(w int) {
					for i := 0; i < 50; i++ {
						if err := b.Insert(zerber.ListID(w%2), el(fmt.Sprintf("w%d-%d", w, i), float64(i), 0)); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(w)
				go func() {
					for i := 0; i < 50; i++ {
						_ = b.View(0, func([]Element) {})
						_, _ = b.NumElements()
					}
					done <- nil
				}()
			}
			for i := 0; i < 8; i++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			if n := mustNumElements(t, b); n != 200 {
				t.Fatalf("NumElements = %d, want 200", n)
			}
		})
	}
}
