package store

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"zerberr/internal/zerber"
)

// shadowStore is the differential-test oracle: an independent
// reimplementation of the pre-rework read path. Lists are kept in
// insertion order and every read stable-sorts a copy (descending TRS,
// sealed tie-break, insertion order last) and filter-scans it — the
// naive O(list) path the per-group structure replaced. If the k-way
// merge ever diverges from this in any observable way, the randomized
// driver below catches it.
type shadowStore struct {
	lists map[zerber.ListID][]shadowElem
	seq   uint64
}

type shadowElem struct {
	el  Element
	seq uint64
}

func newShadow() *shadowStore {
	return &shadowStore{lists: make(map[zerber.ListID][]shadowElem)}
}

func (s *shadowStore) insert(list zerber.ListID, el Element) {
	s.lists[list] = append(s.lists[list], shadowElem{el: el, seq: s.seq})
	s.seq++
}

// ranked returns the list's elements in the order the old sorted
// slice held them: a stable sort of insertion order under Less.
func (s *shadowStore) ranked(list zerber.ListID) []shadowElem {
	elems := append([]shadowElem(nil), s.lists[list]...)
	sort.SliceStable(elems, func(i, j int) bool { return Less(elems[i].el, elems[j].el) })
	return elems
}

// remove deletes the rank-first matching element, mirroring a remove
// against the (sorted) old slice. Reports whether anything matched.
func (s *shadowStore) remove(list zerber.ListID, sealed []byte) bool {
	for _, cand := range s.ranked(list) {
		if !bytes.Equal(cand.el.Sealed, sealed) {
			continue
		}
		kept := s.lists[list][:0]
		for _, e := range s.lists[list] {
			if e.seq != cand.seq {
				kept = append(kept, e)
			}
		}
		s.lists[list] = kept
		return true
	}
	return false
}

// query is the old filter-scan, verbatim in shape: walk the ranked
// list, count visible elements, emit the window, decide Exhausted by
// whether anything visible remains past it.
func (s *shadowStore) query(list zerber.ListID, allowed map[int]bool, offset, count int) (QueryResult, bool) {
	if _, ok := s.lists[list]; !ok {
		return QueryResult{}, false
	}
	var out []Element
	seen := 0
	for _, e := range s.ranked(list) {
		if allowed != nil && !allowed[e.el.Group] {
			continue
		}
		if seen >= offset {
			if len(out) >= count {
				return QueryResult{Elements: out}, true
			}
			out = append(out, e.el)
		}
		seen++
	}
	return QueryResult{Elements: out, Exhausted: true}, true
}

// TestQueryDifferential drives randomized inserts, removes and ranged
// reads against every backend and the shadow oracle in lockstep: the
// per-group merged read path must return element-for-element identical
// results (same bytes, same order, same Exhausted) as the naive
// filter-scan it replaced.
func TestQueryDifferential(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			oracle := newShadow()
			lists := []zerber.ListID{1, 2, 3}
			// Few distinct TRS values so rank ties (broken by sealed
			// bytes) are common, plus occasional payload reuse across
			// groups so the insertion-order tie-break is exercised too.
			var payloads []string
			nextPayload := 0
			randomEl := func() Element {
				var p string
				if len(payloads) > 0 && rng.Intn(8) == 0 {
					p = payloads[rng.Intn(len(payloads))]
				} else {
					p = fmt.Sprintf("p%04d", nextPayload)
					nextPayload++
					payloads = append(payloads, p)
				}
				return Element{
					Sealed: []byte(p),
					TRS:    float64(rng.Intn(8)) / 8,
					Group:  rng.Intn(5),
				}
			}
			randomAllowed := func() map[int]bool {
				switch rng.Intn(10) {
				case 0:
					return nil // unfiltered (the View path's view)
				case 1:
					return map[int]bool{} // no visible groups
				}
				allowed := make(map[int]bool)
				for g := 0; g < 5; g++ {
					if rng.Intn(2) == 0 {
						allowed[g] = true
					}
				}
				return allowed
			}
			check := func(step int) {
				list := lists[rng.Intn(len(lists))]
				if rng.Intn(20) == 0 {
					list = 99 // sometimes unknown
				}
				allowed := randomAllowed()
				offset := rng.Intn(40)
				count := 1 + rng.Intn(25)
				want, known := oracle.query(list, allowed, offset, count)
				got, err := b.Query(list, allowed, offset, count)
				if !known {
					if err != ErrUnknownList {
						t.Fatalf("step %d: unknown list err = %v", step, err)
					}
					return
				}
				if err != nil {
					t.Fatalf("step %d: Query: %v", step, err)
				}
				if got.Exhausted != want.Exhausted {
					t.Fatalf("step %d: list %d allowed %v offset %d count %d: exhausted %v, want %v",
						step, list, allowed, offset, count, got.Exhausted, want.Exhausted)
				}
				if len(got.Elements) != len(want.Elements) {
					t.Fatalf("step %d: list %d allowed %v offset %d count %d: %d elements, want %d",
						step, list, allowed, offset, count, len(got.Elements), len(want.Elements))
				}
				for i := range got.Elements {
					if !reflect.DeepEqual(got.Elements[i], want.Elements[i]) {
						t.Fatalf("step %d: list %d allowed %v offset %d count %d: element %d = %+v, want %+v",
							step, list, allowed, offset, count, i, got.Elements[i], want.Elements[i])
					}
				}
			}
			for step := 0; step < 1500; step++ {
				switch {
				case rng.Intn(4) != 0: // 3/4 inserts
					list := lists[rng.Intn(len(lists))]
					e := randomEl()
					oracle.insert(list, e)
					if err := b.Insert(list, e); err != nil {
						t.Fatalf("step %d: Insert: %v", step, err)
					}
				default:
					list := lists[rng.Intn(len(lists))]
					var sealed []byte
					if len(payloads) > 0 {
						sealed = []byte(payloads[rng.Intn(len(payloads))])
					} else {
						sealed = []byte("never")
					}
					removed := oracle.remove(list, sealed)
					err := b.Remove(list, sealed, nil)
					if removed && err != nil {
						t.Fatalf("step %d: Remove(%q): %v", step, sealed, err)
					}
					if !removed && err == nil {
						t.Fatalf("step %d: Remove(%q) succeeded, oracle had no match", step, sealed)
					}
				}
				check(step)
				if step%97 == 0 {
					if d, ok := b.(*Durable); ok {
						if err := d.Snapshot(); err != nil {
							t.Fatalf("step %d: Snapshot: %v", step, err)
						}
					}
				}
			}
		})
	}
}

// TestQueryDeepOffsets pins the skip path on a larger single list:
// every (offset, count) window across group subsets must match the
// oracle, including offsets far past the visible prefix.
func TestQueryDeepOffsets(t *testing.T) {
	m := NewMemory()
	oracle := newShadow()
	rng := rand.New(rand.NewSource(11))
	const n = 5000
	for i := 0; i < n; i++ {
		e := Element{
			Sealed: []byte(fmt.Sprintf("e%05d", i)),
			TRS:    float64(rng.Intn(64)) / 64,
			Group:  rng.Intn(6),
		}
		oracle.insert(7, e)
		if err := m.Insert(7, e); err != nil {
			t.Fatal(err)
		}
	}
	allowedSets := []map[int]bool{
		nil,
		{0: true},
		{1: true, 4: true},
		{0: true, 2: true, 3: true, 5: true},
	}
	for _, allowed := range allowedSets {
		for _, offset := range []int{0, 1, 17, 500, 2500, 4999, 5000, 9000} {
			for _, count := range []int{1, 10, 256, 5000} {
				want, _ := oracle.query(7, allowed, offset, count)
				got, err := m.Query(7, allowed, offset, count)
				if err != nil {
					t.Fatal(err)
				}
				if got.Exhausted != want.Exhausted || !reflect.DeepEqual(got.Elements, want.Elements) {
					t.Fatalf("allowed %v offset %d count %d: got %d elements (exhausted=%v), want %d (exhausted=%v)",
						allowed, offset, count, len(got.Elements), got.Exhausted, len(want.Elements), want.Exhausted)
				}
			}
		}
	}
}

// TestConcurrentQueryPerListLocks exercises the per-list locking:
// queries, views, stats and mutations race across several lists (so
// list-lock acquisition interleaves with map growth) — run under
// -race in CI. Assertions are minimal; the value is the interleaving.
func TestConcurrentQueryPerListLocks(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			const writers, readers, perWorker = 4, 4, 200
			var wg sync.WaitGroup
			errs := make(chan error, writers+readers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						list := zerber.ListID(i % 3)
						el := Element{
							Sealed: []byte(fmt.Sprintf("w%d-%d", w, i)),
							TRS:    float64(i%37) / 37,
							Group:  i % 4,
						}
						if err := b.Insert(list, el); err != nil {
							errs <- err
							return
						}
						if i%10 == 9 {
							if err := b.Remove(list, el.Sealed, nil); err != nil {
								errs <- err
								return
							}
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					allowed := map[int]bool{r % 4: true, (r + 1) % 4: true}
					for i := 0; i < perWorker; i++ {
						list := zerber.ListID(i % 3)
						res, err := b.Query(list, allowed, i%50, 1+i%20)
						if err != nil && err != ErrUnknownList {
							errs <- err
							return
						}
						for j := 1; j < len(res.Elements); j++ {
							if Less(res.Elements[j], res.Elements[j-1]) {
								errs <- fmt.Errorf("unordered result at %d", j)
								return
							}
						}
						if i%25 == 0 {
							_ = b.View(list, func([]Element) {})
							if _, err := b.NumElements(); err != nil {
								errs <- err
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			total := writers * perWorker
			removed := writers * (perWorker / 10)
			if n := mustNumElements(t, b); n != total-removed {
				t.Fatalf("NumElements = %d, want %d", n, total-removed)
			}
		})
	}
}

// Out-of-contract arguments must clamp, not panic: a negative offset
// reads from the top (like the scan the merge replaced) on both the
// single-group fast path and the multi-group merge.
func TestQueryClampsBadArguments(t *testing.T) {
	m := NewMemory()
	for i := 0; i < 10; i++ {
		if err := m.Insert(1, Element{Sealed: []byte(fmt.Sprintf("e%d", i)), TRS: float64(i), Group: i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	for _, allowed := range []map[int]bool{{0: true}, {0: true, 1: true}} {
		got, err := m.Query(1, allowed, -5, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Query(1, allowed, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("allowed %v: negative offset diverged from offset 0", allowed)
		}
		if res, err := m.Query(1, allowed, 0, -1); err != nil || len(res.Elements) != 0 {
			t.Fatalf("allowed %v: negative count: %v, %d elements", allowed, err, len(res.Elements))
		}
		// A huge count must not overflow the exhaustion arithmetic:
		// the whole visible remainder comes back, exhausted.
		if res, err := m.Query(1, allowed, 1, math.MaxInt); err != nil || !res.Exhausted {
			t.Fatalf("allowed %v: max count: err=%v exhausted=%v", allowed, err, res.Exhausted)
		}
	}
}
