//go:build unix

package store

import (
	"os"
	"syscall"
)

// lockDir takes an exclusive flock on the data directory's LOCK file
// so two Durable instances cannot interleave appends into one WAL.
// The kernel releases the lock when the process dies, so a crashed
// owner never blocks recovery.
func lockDir(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, ErrLocked
	}
	return f, nil
}

func unlockDir(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
