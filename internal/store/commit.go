package store

// Group commit: the write-path refactor that makes "durable" cost
// close to "in memory" under concurrency. Appenders (serialized on
// Durable.mu) publish pre-framed records into the committer's open
// batch; each batch is written as one coalesced buffer and — under
// FsyncEach — pays one fsync for every waiter in it. A waiter is
// unblocked only after its batch's write (and fsync, when configured)
// has completed, so the durability contract per record is exactly the
// synchronous path's; only the cost is amortized.
//
// Who performs the write depends on what is being amortized:
//
//   - Without FsyncEach a commit is just a buffered write, so the
//     batch's first enqueuer becomes its **leader**: once the previous
//     batch settles it claims the open batch and commits it on its own
//     goroutine, later enqueuers (followers) spin briefly and park.
//     No handoff to a dedicated goroutine means no extra context
//     switches on the hot path, and the previous commit's in-flight
//     write is the natural collection window.
//   - With FsyncEach and a window, a dedicated committer goroutine
//     wakes on the first enqueue, sleeps out the commit window so the
//     batch collects waiters, and pays one fsync for all of them. A
//     leader can't do that job without burning its caller's latency on
//     strangers' records beyond the window it owes anyway.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// commitBatch is one coalesced run of framed records and the channel
// its waiters block on. err is written before committed flips and
// never after; committed lets waiters poll cheaply (a few yields
// usually outlast a buffered write) before paying a channel park.
type commitBatch struct {
	buf       []byte
	done      chan struct{}
	committed atomic.Bool
	err       error
}

// wait blocks until the batch is committed and returns its outcome —
// the follower side: spin through a few scheduler yields (the commit
// is a microsecond-scale buffered write in leader mode), then park.
func (b *commitBatch) wait() error {
	for i := 0; i < 8; i++ {
		if b.committed.Load() {
			return b.err
		}
		runtime.Gosched()
	}
	<-b.done
	return b.err
}

// groupCommitter owns the WAL writes of a Durable opened with a
// non-zero GroupCommitWindow. It never takes Durable.mu — drain runs
// under that lock and waits on the committer, so the committer taking
// it would deadlock.
type groupCommitter struct {
	window time.Duration
	fsync  bool
	met    durableMetrics
	// onErr reports a failed commit (it poisons the owning store). It
	// is called before the failed batch's waiters are released, so a
	// waiter that saw its error — or a drainer that saw all batches
	// settle — also sees the poison.
	onErr func(error)

	mu       sync.Mutex
	w        *wal         // swapped only by tests, under mu
	cur      *commitBatch // open batch accepting appends, nil when none
	inflight *commitBatch // batch being committed, nil when none
	// failed is the first commit error, sticky until reset: once a
	// batch may have left a torn run mid-file, later writes would bury
	// the damage where torn-tail recovery cannot reach it, and acked
	// records after the gap would silently vanish on replay. Only a
	// snapshot (which truncates the log) clears it.
	failed error
	// free recycles a settled batch's buffer (committed, no longer
	// referenced) so steady-state batches allocate nothing but their
	// struct and channel.
	free []byte

	// Daemon mode (FsyncEach with a window) only; nil otherwise.
	wake    chan struct{}
	quit    chan struct{}
	stopped chan struct{}
}

func newGroupCommitter(w *wal, window time.Duration, fsync bool, met durableMetrics, onErr func(error)) *groupCommitter {
	g := &groupCommitter{
		window: window,
		fsync:  fsync,
		met:    met,
		onErr:  onErr,
		w:      w,
	}
	if g.daemon() {
		g.wake = make(chan struct{}, 1)
		g.quit = make(chan struct{})
		g.stopped = make(chan struct{})
		go g.run()
	}
	return g
}

// daemon reports whether a dedicated committer goroutine drives
// commits (fsync amortization wants a real collection window); in
// leader mode the first enqueuer of each batch commits it instead.
func (g *groupCommitter) daemon() bool { return g.fsync && g.window > 0 }

// enqueue frames one payload into the open batch (opening one if
// needed) and returns the batch to wait on plus whether the caller
// opened it — the opener leads the batch's commit in leader mode.
// Callers hold Durable.mu, which is what keeps enqueue ordering equal
// to sequence-number ordering.
func (g *groupCommitter) enqueue(payload []byte) (b *commitBatch, opened bool) {
	g.mu.Lock()
	b = g.cur
	if b == nil {
		b = &commitBatch{buf: g.free, done: make(chan struct{})}
		g.free = nil
		g.cur = b
		opened = true
		if g.wake != nil {
			select {
			case g.wake <- struct{}{}:
			default:
			}
		}
	}
	b.buf = appendFrame(b.buf, payload)
	g.mu.Unlock()
	return b, opened
}

// waitFor blocks until b is committed: as its leader when the caller
// opened it in leader mode, as a follower otherwise.
func (g *groupCommitter) waitFor(b *commitBatch, opened bool) error {
	if opened && !g.daemon() {
		return g.leadWait(b)
	}
	return b.wait()
}

// leadWait is the leader side of a commit: once the previous batch
// has settled (its leader clears inflight), claim the open batch and
// commit it on this goroutine. The spin is bounded by the previous
// batch's buffered write — leader mode never fsyncs per batch — and
// each yield lets concurrent appenders grow the batch this leader is
// about to write, which is the collection window.
func (g *groupCommitter) leadWait(b *commitBatch) error {
	prev := -1
	for !b.committed.Load() {
		g.mu.Lock()
		if g.inflight == nil && g.cur == b {
			if n := len(b.buf); n != prev {
				// Still collecting: every yield lets already-runnable
				// appenders add their records to the batch this leader
				// is about to write. Claim once the growth stalls —
				// this costs no wall time a sleep would, Gosched only
				// runs goroutines that are ready anyway.
				prev = n
				g.mu.Unlock()
				runtime.Gosched()
				continue
			}
			g.cur = nil
			g.inflight = b
			w, failed := g.w, g.failed
			g.mu.Unlock()
			g.settle(b, w, failed)
			break
		}
		g.mu.Unlock()
		runtime.Gosched()
	}
	return b.err
}

// run is the daemon committer: wake on the first record, let the
// commit window fill the batch, commit, repeat.
func (g *groupCommitter) run() {
	defer close(g.stopped)
	for {
		select {
		case <-g.quit:
			g.commitPending() // settle any stragglers so no waiter leaks
			return
		case <-g.wake:
		}
		// The window exists to amortize the fsync: collect more
		// waiters per sync.
		t := time.NewTimer(g.window)
		select {
		case <-t.C:
		case <-g.quit:
			t.Stop()
			g.commitPending()
			return
		}
		g.commitPending()
	}
}

// commitPending takes the open batch, whatever its size, and settles
// it. New appends land in a fresh batch meanwhile.
func (g *groupCommitter) commitPending() {
	g.mu.Lock()
	b := g.cur
	g.cur = nil
	g.inflight = b
	w, failed := g.w, g.failed
	g.mu.Unlock()
	if b == nil {
		return
	}
	g.settle(b, w, failed)
}

// settle commits one claimed batch (unless the log is already
// failed), records any failure, and releases the batch's waiters.
// The caller has moved b from cur to inflight.
func (g *groupCommitter) settle(b *commitBatch, w *wal, failed error) {
	var err error
	if failed != nil {
		err = fmt.Errorf("store: WAL poisoned by earlier group-commit failure (snapshot to recover): %w", failed)
	} else if err = g.commit(w, b.buf); err != nil {
		g.mu.Lock()
		g.failed = err
		g.mu.Unlock()
		g.onErr(err)
	}
	b.err = err
	b.committed.Store(true)
	close(b.done)
	g.mu.Lock()
	g.inflight = nil
	// Recycle the committed buffer for the next batch; a giant batch
	// (an oversized InsertBatch flush) is let go rather than pinned.
	if g.free == nil && cap(b.buf) <= 1<<20 {
		g.free = b.buf[:0]
	}
	g.mu.Unlock()
}

// commit writes one coalesced buffer and makes it durable per the
// store's fsync policy.
func (g *groupCommitter) commit(w *wal, buf []byte) error {
	var start time.Time
	if g.met.walAppend != nil {
		start = time.Now()
	}
	if err := w.write(buf); err != nil {
		return err
	}
	if g.met.walAppend != nil {
		g.met.walAppend.Observe(time.Since(start).Seconds())
	}
	if g.fsync {
		if g.met.walFsync != nil {
			start = time.Now()
		}
		if err := w.sync(); err != nil {
			return err
		}
		if g.met.walFsync != nil {
			g.met.walFsync.Observe(time.Since(start).Seconds())
		}
	}
	return nil
}

// drain blocks until every record enqueued so far has been committed
// (or failed) and returns the sticky failure, if any. Callers hold
// Durable.mu, so no new batches can form while it waits — snapshots,
// tail exports and Close use it as their write barrier.
//
// An open batch that nobody has claimed is settled by the drainer
// itself when there is no daemon: its leader may be the very
// goroutine draining (a mutation that tripped an automatic snapshot
// drains before it ever reaches its commit wait), and a leader that
// is someone else cannot claim faster than the drainer anyway —
// whoever wins the claim race settles, the loser sees committed.
func (g *groupCommitter) drain() error {
	for {
		g.mu.Lock()
		if b := g.inflight; b != nil {
			// Another goroutine is mid-settle; let it finish.
			g.mu.Unlock()
			<-b.done
			continue
		}
		b := g.cur
		if b == nil {
			failed := g.failed
			g.mu.Unlock()
			return failed
		}
		if g.daemon() {
			g.mu.Unlock()
			<-b.done
			continue
		}
		g.cur = nil
		g.inflight = b
		w, failed := g.w, g.failed
		g.mu.Unlock()
		g.settle(b, w, failed)
	}
}

// reset clears the sticky failure — called only after a successful
// snapshot has captured the live state and truncated the log, which
// makes any earlier ambiguous write moot.
func (g *groupCommitter) reset() {
	g.mu.Lock()
	g.failed = nil
	g.mu.Unlock()
}

// stop terminates the daemon committer, settling any still-queued
// batch first; a no-op in leader mode. Callers drain (under
// Durable.mu) before stopping, so leader-mode batches are settled.
func (g *groupCommitter) stop() {
	if g.quit == nil {
		return
	}
	close(g.quit)
	<-g.stopped
}
