//go:build !unix

package store

import "os"

// Non-unix platforms run without the flock guard; the data directory
// must not be shared between processes.
func lockDir(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}

func unlockDir(f *os.File) error { return f.Close() }
