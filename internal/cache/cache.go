// Package cache provides the query-result cache shared by the index
// server and the cluster router: a sharded, byte-bounded LRU of ranked
// windows, keyed by everything that determines a window's content —
// the merged list, the allowed-group set, the (offset, count) range
// and the list's mutation version (store.Backend.Version).
//
// Versioned keys make invalidation free: a mutation bumps the list's
// version, so every window cached under the old version simply stops
// matching (a transparent miss) and ages out of the LRU. Nothing is
// ever served stale, and cached results are element-identical to what
// the uncached read path returns for the same version.
//
// Payloads are aliased, never copied: an entry holds the same Element
// slice (and the same sealed-byte buffers) the store handed out. The
// store never rewrites payload bytes in place, so the aliases stay
// valid for the life of the entry.
//
// Confidentiality: a key is (list ID, group IDs, offset, count,
// version) — exactly the fields of the requests the untrusted server
// already serves, plus a mutation count it could maintain anyway. The
// cache therefore observes nothing the Section 3.1 threat model does
// not already grant the server, and adds no new leakage.
package cache

import (
	"hash/maphash"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"zerberr/internal/proof"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

// Key identifies one cached ranked window. Two queries with equal keys
// are guaranteed the same answer: the version pins the list content,
// Groups pins the visibility filter, Offset/Count pin the range.
type Key struct {
	List zerber.ListID
	// Groups is the canonical allowed-group set — use GroupsKey.
	Groups string
	Offset int
	Count  int
	// Version is the list version the window was read at. The cluster
	// router, which learns versions only from responses, stores its
	// entries under Version 0 and checks the entry's own result version
	// instead (see Cache doc on both usages).
	Version uint64
}

// GroupsKey canonicalizes an allowed-group set: sorted IDs joined by
// ",", "*" for nil (no filter), "" for the empty set. Server and
// router derive it the same way, so their keys agree.
func GroupsKey(allowed map[int]bool) string {
	if allowed == nil {
		return "*"
	}
	ids := make([]int, 0, len(allowed))
	for g := range allowed {
		ids = append(ids, g)
	}
	sort.Ints(ids)
	var b strings.Builder
	for i, g := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(g))
	}
	return b.String()
}

// Stats is a point-in-time view of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries
	// displaced by capacity pressure (replacing a key in place is not
	// an eviction).
	Hits, Misses, Evictions uint64
	// Entries and Bytes describe current occupancy; Capacity is the
	// configured byte bound.
	Entries int
	Bytes   int64
	// Capacity is the configured maximum payload bytes.
	Capacity int64
}

// numShards spreads lock contention; keys are distributed by hash.
const numShards = 16

// entryOverhead is the accounted fixed cost of one entry beyond its
// payload bytes (map slot, list node, headers). An estimate — the
// bound is a sizing knob, not an allocator contract.
const entryOverhead = 128

// elementOverhead is the accounted per-element cost beyond the sealed
// payload (slice header, TRS, group).
const elementOverhead = 40

// Cache is a sharded LRU of ranked windows. All methods are safe for
// concurrent use. The zero value is not usable; call New.
type Cache struct {
	seed     maphash.Seed
	capacity int64
	shards   [numShards]shard

	hits, misses, evictions atomic.Uint64
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry
	// LRU ring: head.next is most recent, head.prev least recent.
	head  entry
	bytes int64
}

type entry struct {
	key        Key
	res        store.QueryResult
	bytes      int64
	prev, next *entry
}

// New creates a cache bounded by maxBytes of accounted payload. Each
// shard takes an equal slice of the budget, so one entry can never
// exceed maxBytes/16. maxBytes <= 0 yields a cache that stores
// nothing (every Get is a miss) — callers wanting "off" should keep a
// nil *Cache instead.
func New(maxBytes int64) *Cache {
	c := &Cache{seed: maphash.MakeSeed(), capacity: maxBytes}
	for i := range c.shards {
		s := &c.shards[i]
		s.entries = make(map[Key]*entry)
		s.head.prev = &s.head
		s.head.next = &s.head
	}
	return c
}

// shardFor hashes the key onto a shard.
func (c *Cache) shardFor(k Key) *shard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(k.List))
	put(uint64(k.Offset))
	put(uint64(k.Count))
	put(k.Version)
	h.WriteString(k.Groups)
	return &c.shards[h.Sum64()%numShards]
}

// cost accounts an entry's bytes: payloads plus bookkeeping estimates.
// A memoized window proof is charged too — its hashes and boundary
// payloads are real resident bytes, and proved entries would otherwise
// look free to the LRU.
func cost(k Key, res store.QueryResult) int64 {
	n := int64(entryOverhead + len(k.Groups))
	for _, el := range res.Elements {
		n += int64(len(el.Sealed) + elementOverhead)
	}
	if w := res.Proof; w != nil {
		n += entryOverhead
		for _, gw := range w.Groups {
			n += entryOverhead + int64(len(gw.Path)+2)*proof.HashSize
			if gw.Pred != nil {
				n += int64(len(gw.Pred.Sealed) + elementOverhead)
			}
			if gw.Succ != nil {
				n += int64(len(gw.Succ.Sealed) + elementOverhead)
			}
		}
	}
	return n
}

// Get returns the window cached under k, if any, and refreshes its
// recency. The result's Elements alias the cached (and therefore the
// store's) buffers — callers must not mutate them.
func (c *Cache) Get(k Key) (store.QueryResult, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return store.QueryResult{}, false
	}
	s.moveFront(e)
	res := e.res
	s.mu.Unlock()
	c.hits.Add(1)
	return res, true
}

// Put stores the window under k, evicting least-recently-used entries
// until the shard fits its budget. A window too large for the shard
// budget is not cached at all. Storing under an existing key replaces
// the entry (the router's Version-0 keys are refreshed this way).
func (c *Cache) Put(k Key, res store.QueryResult) {
	s := c.shardFor(k)
	n := cost(k, res)
	budget := c.capacity / numShards
	if n > budget {
		return
	}
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.bytes += n - e.bytes
		e.res, e.bytes = res, n
		s.moveFront(e)
	} else {
		e := &entry{key: k, res: res, bytes: n}
		s.entries[k] = e
		s.bytes += n
		s.pushFront(e)
	}
	for s.bytes > budget {
		lru := s.head.prev
		s.unlink(lru)
		delete(s.entries, lru.key)
		s.bytes -= lru.bytes
		c.evictions.Add(1)
	}
	s.mu.Unlock()
}

// Stats returns the counters and occupancy. Occupancy is summed under
// the shard locks; the atomic counters are read without one, so a
// concurrent Get can make Hits+Misses momentarily disagree with what
// occupancy implies — fine for diagnostics.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Capacity:  c.capacity,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// List-manipulation helpers; callers hold the shard lock.

func (s *shard) pushFront(e *entry) {
	e.prev = &s.head
	e.next = s.head.next
	e.prev.next = e
	e.next.prev = e
}

func (s *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (s *shard) moveFront(e *entry) {
	if s.head.next == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
