package cache

import (
	"fmt"
	"sync"
	"testing"

	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

func window(payloads ...string) store.QueryResult {
	res := store.QueryResult{}
	for i, p := range payloads {
		res.Elements = append(res.Elements, store.Element{Sealed: []byte(p), TRS: float64(i), Group: i % 3})
	}
	return res
}

func key(list zerber.ListID, groups string, offset, count int, version uint64) Key {
	return Key{List: list, Groups: groups, Offset: offset, Count: count, Version: version}
}

func TestGroupsKey(t *testing.T) {
	cases := []struct {
		allowed map[int]bool
		want    string
	}{
		{nil, "*"},
		{map[int]bool{}, ""},
		{map[int]bool{4: true}, "4"},
		{map[int]bool{7: true, 0: true, 3: true}, "0,3,7"},
	}
	for _, c := range cases {
		if got := GroupsKey(c.allowed); got != c.want {
			t.Errorf("GroupsKey(%v) = %q, want %q", c.allowed, got, c.want)
		}
	}
	// Canonical: two maps with the same members agree regardless of
	// construction order.
	a := map[int]bool{1: true, 2: true, 9: true}
	b := map[int]bool{9: true, 1: true, 2: true}
	if GroupsKey(a) != GroupsKey(b) {
		t.Fatal("GroupsKey not canonical")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	k := key(3, "0,2", 10, 5, 17)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	res := window("aa", "bb")
	res.Exhausted = true
	res.Version = 17
	c.Put(k, res)
	got, ok := c.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !got.Exhausted || got.Version != 17 || len(got.Elements) != 2 {
		t.Fatalf("got %+v", got)
	}
	// Aliased, not copied: same backing buffers.
	if &got.Elements[0].Sealed[0] != &res.Elements[0].Sealed[0] {
		t.Fatal("payload was copied")
	}
	// A different version is a different key — the invalidation rule.
	if _, ok := c.Get(key(3, "0,2", 10, 5, 18)); ok {
		t.Fatal("hit across versions")
	}
	// So are different groups, offsets and counts.
	for _, miss := range []Key{
		key(3, "0", 10, 5, 17),
		key(3, "0,2", 11, 5, 17),
		key(3, "0,2", 10, 6, 17),
		key(4, "0,2", 10, 5, 17),
	} {
		if _, ok := c.Get(miss); ok {
			t.Fatalf("hit on %+v", miss)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 6 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReplaceInPlace(t *testing.T) {
	c := New(1 << 20)
	k := key(1, "*", 0, 10, 0) // router-style version-agnostic key
	first := window("old")
	first.Version = 5
	c.Put(k, first)
	second := window("new", "newer")
	second.Version = 6
	c.Put(k, second)
	got, ok := c.Get(k)
	if !ok || got.Version != 6 || len(got.Elements) != 2 {
		t.Fatalf("replace: ok=%v got %+v", ok, got)
	}
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats after replace: %+v", st)
	}
}

// TestEvictionLRU forces one shard over budget and checks the least
// recently used window leaves first, with byte accounting intact.
func TestEvictionLRU(t *testing.T) {
	// Per-shard budget = total/16. Each entry below costs
	// entryOverhead + len("*") + 64 + elementOverhead = 233 bytes, so 4
	// fit per shard and inserting more evicts.
	c := New(16 * 1000)
	payload := func(i int) string { return fmt.Sprintf("%064d", i) }
	// All keys identical except version -> hashing may spread them; to
	// pin one shard, find versions that land on the same shard.
	target := c.shardFor(key(1, "*", 0, 1, 0))
	var versions []uint64
	for v := uint64(0); len(versions) < 6; v++ {
		if c.shardFor(key(1, "*", 0, 1, v)) == target {
			versions = append(versions, v)
		}
	}
	for i, v := range versions[:5] {
		c.Put(key(1, "*", 0, 1, v), window(payload(i)))
	}
	// 5 entries * 233 > 1000: the first (LRU) must be gone.
	if _, ok := c.Get(key(1, "*", 0, 1, versions[0])); ok {
		t.Fatal("LRU entry survived over-budget insert")
	}
	if _, ok := c.Get(key(1, "*", 0, 1, versions[4])); !ok {
		t.Fatal("most recent entry evicted")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	// Touching an old entry protects it: re-Get versions[1], insert
	// another, and versions[1] must outlive versions[2].
	if _, ok := c.Get(key(1, "*", 0, 1, versions[1])); !ok {
		t.Fatal("entry 1 already gone")
	}
	c.Put(key(1, "*", 0, 1, versions[5]), window(payload(5)))
	if _, ok := c.Get(key(1, "*", 0, 1, versions[1])); !ok {
		t.Fatal("recently-touched entry evicted before older one")
	}
	if _, ok := c.Get(key(1, "*", 0, 1, versions[2])); ok {
		t.Fatal("older entry survived while budget forced eviction")
	}
}

// TestOversizedWindowNotCached: a window larger than a shard budget is
// skipped rather than evicting the whole shard for nothing.
func TestOversizedWindowNotCached(t *testing.T) {
	c := New(16 * 256) // 256 bytes per shard
	big := window(string(make([]byte, 4096)))
	k := key(1, "*", 0, 1, 1)
	c.Put(k, big)
	if _, ok := c.Get(k); ok {
		t.Fatal("oversized window cached")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestZeroCapacity: a zero/negative budget caches nothing but stays
// safe to use.
func TestZeroCapacity(t *testing.T) {
	for _, capBytes := range []int64{0, -1} {
		c := New(capBytes)
		c.Put(key(1, "*", 0, 1, 1), window("x"))
		if _, ok := c.Get(key(1, "*", 0, 1, 1)); ok {
			t.Fatalf("capacity %d cached an entry", capBytes)
		}
	}
}

// TestConcurrentAccess hammers all operations from many goroutines —
// run under -race in CI. Correctness assertion: any hit must return
// the window that was stored under exactly that key.
func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 18)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key(zerber.ListID(i%7), "0,1", i%5, 1+(i/3)%3, uint64(i%11))
				if i%3 == 0 {
					res := window(fmt.Sprintf("v%d", k.Version))
					res.Version = k.Version
					c.Put(k, res)
				} else if got, ok := c.Get(k); ok {
					if got.Version != k.Version {
						t.Errorf("hit returned version %d for key version %d", got.Version, k.Version)
						return
					}
					if want := fmt.Sprintf("v%d", k.Version); string(got.Elements[0].Sealed) != want {
						t.Errorf("hit returned %q, want %q", got.Elements[0].Sealed, want)
						return
					}
				}
				if i%500 == 0 {
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
}
