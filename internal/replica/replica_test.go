package replica

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/crypt"
	"zerberr/internal/server"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

const testSecret = "replica-test-secret"

// newSeededServer builds an in-process server holding `perList`
// elements in each of `lists` lists.
func newSeededServer(t *testing.T, lists, perList int) *server.Server {
	t.Helper()
	s := server.New([]byte(testSecret), time.Hour)
	seedInto(t, s, lists, perList)
	return s
}

func seedInto(t *testing.T, s *server.Server, lists, perList int) {
	t.Helper()
	s.RegisterUser("u", 0, 1)
	toks := login(t, s)
	for l := 0; l < lists; l++ {
		for i := 0; i < perList; i++ {
			el := server.StoredElement{
				Sealed: []byte(fmt.Sprintf("l%d-e%d", l, i)),
				TRS:    float64(i),
				Group:  i % 2,
			}
			if err := s.Insert(context.Background(), toks[i%2], zerber.ListID(l), el); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func login(t *testing.T, s *server.Server) []crypt.Token {
	t.Helper()
	toks, err := s.Login(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

// faultTransport fails every operation with a transport-style error.
type faultTransport struct{ err error }

func (f faultTransport) Login(context.Context, string) ([]crypt.Token, error) { return nil, f.err }
func (f faultTransport) Insert(context.Context, crypt.Token, zerber.ListID, server.StoredElement) error {
	return f.err
}
func (f faultTransport) Query(context.Context, []crypt.Token, zerber.ListID, int, int) (server.QueryResponse, int, error) {
	return server.QueryResponse{}, 0, f.err
}
func (f faultTransport) Remove(context.Context, crypt.Token, zerber.ListID, []byte) error {
	return f.err
}
func (f faultTransport) QueryBatch(context.Context, []crypt.Token, []server.ListQuery) (client.BatchQueryResult, error) {
	return client.BatchQueryResult{}, f.err
}
func (f faultTransport) InsertBatch(context.Context, crypt.Token, []server.InsertOp) error {
	return f.err
}
func (f faultTransport) RemoveBatch(context.Context, crypt.Token, []server.RemoveOp) error {
	return f.err
}

// stallTransport answers reads only after `after` (or fails with the
// context's error if canceled first) — a live-but-slow primary.
type stallTransport struct {
	client.Transport
	after time.Duration
}

func (st stallTransport) Query(ctx context.Context, toks []crypt.Token, list zerber.ListID, offset, count int) (server.QueryResponse, int, error) {
	select {
	case <-time.After(st.after):
		return st.Transport.Query(ctx, toks, list, offset, count)
	case <-ctx.Done():
		return server.QueryResponse{}, 0, ctx.Err()
	}
}

func (st stallTransport) QueryBatch(ctx context.Context, toks []crypt.Token, queries []server.ListQuery) (client.BatchQueryResult, error) {
	select {
	case <-time.After(st.after):
		return st.Transport.QueryBatch(ctx, toks, queries)
	case <-ctx.Done():
		return client.BatchQueryResult{}, ctx.Err()
	}
}

// failWrites forwards reads (and the admin surface) but fails every
// mutation.
type failWrites struct{ client.Local }

func (f failWrites) Insert(context.Context, crypt.Token, zerber.ListID, server.StoredElement) error {
	return errors.New("replica write lost")
}

// TestFailoverRead is the acceptance scenario: a killed primary no
// longer fails queries once a replica is configured. The hedge timer
// is pinned high to prove the fault path (not the timer) drives the
// failover.
func TestFailoverRead(t *testing.T) {
	ctx := context.Background()
	repSrv := newSeededServer(t, 2, 8)
	set, err := NewSet(
		faultTransport{errors.New("dial tcp: connection refused")},
		client.Local{S: repSrv},
	)
	if err != nil {
		t.Fatal(err)
	}
	set.SetHedgeDelay(time.Minute)
	toks := login(t, repSrv)
	got, _, err := set.Query(ctx, toks, 0, 0, 8)
	if err != nil {
		t.Fatalf("query with a dead primary and a live replica: %v", err)
	}
	want, err := repSrv.Query(ctx, toks, 0, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Elements, want.Elements) {
		t.Fatalf("failover answer diverges from the replica's own:\n%+v\n%+v", got.Elements, want.Elements)
	}
	st := set.Stats()
	if st.Failovers != 1 || st.HedgeWins != 1 || st.Hedges != 0 {
		t.Fatalf("stats = %+v, want exactly one failover win and no timer hedge", st)
	}
}

// TestHedgedReadIdentity: a stalled (but alive) primary, a fast
// replica, and the hedged answer must be element-identical to the
// direct one. The stalled loser is canceled and never counted as a
// fault.
func TestHedgedReadIdentity(t *testing.T) {
	ctx := context.Background()
	priSrv := newSeededServer(t, 2, 8)
	repSrv := newSeededServer(t, 2, 8)
	set, err := NewSet(
		stallTransport{Transport: client.Local{S: priSrv}, after: 30 * time.Second},
		client.Local{S: repSrv},
	)
	if err != nil {
		t.Fatal(err)
	}
	set.SetHedgeDelay(2 * time.Millisecond)
	toks := login(t, priSrv)
	got, _, err := set.Query(ctx, toks, 1, 0, 8)
	if err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	want, err := repSrv.Query(ctx, toks, 1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Elements, want.Elements) {
		t.Fatalf("hedged answer diverges from the direct one:\n%+v\n%+v", got.Elements, want.Elements)
	}
	st := set.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want one hedge and one hedge win", st)
	}
	// The canceled loser is neutral: no failover was recorded and the
	// primary is not on a path to demotion.
	if st.Failovers != 0 || st.PrimaryDemoted {
		t.Fatalf("stats = %+v: the hedge loser was counted as a fault", st)
	}
}

func TestWriteFansOutToReplicas(t *testing.T) {
	ctx := context.Background()
	pri := newSeededServer(t, 1, 0)
	rep := newSeededServer(t, 1, 0)
	set, err := NewSet(client.Local{S: pri}, client.Local{S: rep})
	if err != nil {
		t.Fatal(err)
	}
	toks := login(t, pri)
	el := server.StoredElement{Sealed: []byte("fan"), TRS: 1, Group: 0}
	if err := set.Insert(ctx, toks[0], 5, el); err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*server.Server{"primary": pri, "replica": rep} {
		resp, err := s.Query(ctx, login(t, s), 5, 0, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(resp.Elements) != 1 || string(resp.Elements[0].Sealed) != "fan" {
			t.Fatalf("%s did not receive the fanned write: %+v", name, resp.Elements)
		}
	}
}

func TestReplicaWriteFaultMarksStale(t *testing.T) {
	ctx := context.Background()
	pri := newSeededServer(t, 1, 0)
	rep := newSeededServer(t, 1, 0)
	set, err := NewSet(client.Local{S: pri}, failWrites{client.Local{S: rep}})
	if err != nil {
		t.Fatal(err)
	}
	toks := login(t, pri)
	// The write succeeds (the primary accepted it) even though the
	// replica lost it.
	if err := set.Insert(ctx, toks[0], 0, server.StoredElement{Sealed: []byte("x"), TRS: 1, Group: 0}); err != nil {
		t.Fatalf("a replica fault must not fail the write: %v", err)
	}
	st := set.Stats()
	if st.Stale != 1 || st.WriteFaults != 1 {
		t.Fatalf("stats = %+v, want the replica stale after one write fault", st)
	}
	// Reads never touch the stale replica: pin an immediate hedge and
	// query repeatedly — the answer must always be the primary's
	// (which holds the element the replica lost).
	set.SetHedgeDelay(0)
	for i := 0; i < 20; i++ {
		resp, _, err := set.Query(ctx, toks, 0, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Elements) != 1 {
			t.Fatalf("read %d served by the stale replica: %+v", i, resp.Elements)
		}
	}
}

func TestDeterministicAnswerWinsImmediately(t *testing.T) {
	ctx := context.Background()
	pri := newSeededServer(t, 1, 3)
	rep := newSeededServer(t, 1, 3)
	set, err := NewSet(client.Local{S: pri}, client.Local{S: rep})
	if err != nil {
		t.Fatal(err)
	}
	toks := login(t, pri)
	_, _, err = set.Query(ctx, toks, 99, 0, 10)
	if !errors.Is(err, server.ErrUnknownList) {
		t.Fatalf("err = %v, want ErrUnknownList", err)
	}
	st := set.Stats()
	if st.Failovers != 0 || st.Hedges != 0 {
		t.Fatalf("stats = %+v: an application answer must not trigger failover", st)
	}
}

func TestPrimaryDemotionAfterFaultRun(t *testing.T) {
	ctx := context.Background()
	rep := newSeededServer(t, 1, 4)
	set, err := NewSet(faultTransport{errors.New("down")}, client.Local{S: rep})
	if err != nil {
		t.Fatal(err)
	}
	set.SetHedgeDelay(time.Minute)
	toks := login(t, rep)
	for i := 0; i < DemoteAfter; i++ {
		if _, _, err := set.Query(ctx, toks, 0, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	if st := set.Stats(); !st.PrimaryDemoted || st.Failovers != DemoteAfter {
		t.Fatalf("stats = %+v, want the primary demoted after %d fault reads", set.Stats(), DemoteAfter)
	}
	// Demoted: the replica is tried first, so the next read involves no
	// failover and no hedge win.
	before := set.Stats()
	if _, _, err := set.Query(ctx, toks, 0, 0, 4); err != nil {
		t.Fatal(err)
	}
	after := set.Stats()
	if after.Failovers != before.Failovers || after.HedgeWins != before.HedgeWins {
		t.Fatalf("demoted read still raced the primary first: %+v -> %+v", before, after)
	}
}

func TestAllMembersFaulted(t *testing.T) {
	set, err := NewSet(faultTransport{errors.New("down-a")}, faultTransport{errors.New("down-b")})
	if err != nil {
		t.Fatal(err)
	}
	set.SetHedgeDelay(0)
	_, _, err = set.Query(context.Background(), nil, 0, 0, 1)
	if err == nil {
		t.Fatal("a read with every member down reported success")
	}
}

func TestNewSetRejectsDuplicates(t *testing.T) {
	s := newSeededServer(t, 1, 1)
	l := client.Local{S: s}
	if _, err := NewSet(l, l); err == nil {
		t.Fatal("a set with the primary wired in twice was accepted")
	}
	h := client.HTTP{BaseURL: "http://shard-a:8021"}
	if _, err := NewSet(h, client.HTTP{BaseURL: "http://shard-a:8021", AdminMAC: "x"}); err == nil {
		t.Fatal("two HTTP transports for one base URL were accepted")
	}
	if _, err := NewSet(h, client.HTTP{BaseURL: "http://shard-b:8021"}); err != nil {
		t.Fatalf("distinct members rejected: %v", err)
	}
}

func TestResync(t *testing.T) {
	for name, mkPrimary := range map[string]func(t *testing.T) *server.Server{
		"memory": func(t *testing.T) *server.Server {
			return server.New([]byte(testSecret), time.Hour)
		},
		"durable": func(t *testing.T) *server.Server {
			b, err := store.OpenDurable(t.TempDir(), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			s := server.NewWithBackend([]byte(testSecret), time.Hour, b)
			t.Cleanup(func() { s.Close() })
			return s
		},
	} {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			pri := mkPrimary(t)
			seedInto(t, pri, 2, 6)
			rep := newSeededServer(t, 0, 0)
			set, err := NewSet(client.Local{S: pri}, failWrites{client.Local{S: rep}})
			if err != nil {
				t.Fatal(err)
			}
			toks := login(t, pri)
			// One lost write marks the replica stale.
			if err := set.Insert(ctx, toks[0], 0, server.StoredElement{Sealed: []byte("lost"), TRS: 9, Group: 0}); err != nil {
				t.Fatal(err)
			}
			if set.Stats().Stale != 1 {
				t.Fatalf("stats = %+v, want one stale replica", set.Stats())
			}
			if err := set.Resync(ctx); err != nil {
				t.Fatal(err)
			}
			if st := set.Stats(); st.Stale != 0 || st.Resyncs != 1 {
				t.Fatalf("stats after resync = %+v", st)
			}
			// The replica now mirrors the primary exactly — versions
			// included, which is what keeps hedged answers revalidatable
			// against windows the primary served.
			priD, err := pri.Digest(ctx)
			if err != nil {
				t.Fatal(err)
			}
			repD, err := rep.Digest(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(priD, repD) {
				t.Fatalf("digests diverge after resync:\n%+v\n%+v", priD, repD)
			}
		})
	}
}
