package replica

// Hedged and failover reads: one read races the set's members. The
// first eligible member is tried immediately; a hedge timer launches
// the same operation on the next member when the answer is slow, and a
// member fault skips the timer and fails over at once. First success
// (or first deterministic application answer) wins and cancels the
// rest. Accounting is deliberately one-sided: a hedge loser canceled
// because someone else won is never recorded as a fault — hedging must
// not poison the health signal that tuned it.

import (
	"context"
	"fmt"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/server"
)

// attempt is one member's answer inside a read race.
type attempt[T any] struct {
	idx int
	v   T
	err error
}

// raceRead runs op against the set's members with hedging and
// failover. It is a package function because Go methods cannot be
// generic; it is the read path behind Login, Query and QueryBatch.
func raceRead[T any](ctx context.Context, s *Set, op func(ctx context.Context, t client.Transport) (T, error)) (T, error) {
	var zero T
	order := s.readOrder()
	first := order[0]
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to the member count: losers park their answers and exit
	// even after the race has been decided.
	ch := make(chan attempt[T], len(order))
	next := 0
	launch := func() {
		m := s.members[order[next]]
		idx := order[next]
		next++
		go func() {
			v, err := op(rctx, m.t)
			ch <- attempt[T]{idx: idx, v: v, err: err}
		}()
	}
	launch()
	var timerC <-chan time.Time
	var timer *time.Timer
	if next < len(order) {
		timer = time.NewTimer(s.hedgeDelay())
		defer timer.Stop()
		timerC = timer.C
	}
	pending := 1
	var firstFault error
	for {
		select {
		case <-ctx.Done():
			return zero, ctx.Err()
		case <-timerC:
			s.hedges.Add(1)
			launch()
			pending++
			if next < len(order) {
				timer.Reset(s.hedgeDelay())
			} else {
				timerC = nil
			}
		case a := <-ch:
			pending--
			switch {
			case a.err == nil:
				s.members[a.idx].consecFails.Store(0)
				if a.idx != first {
					s.hedgeWins.Add(1)
				}
				return a.v, nil
			case !failoverWorthy(a.err):
				// A deterministic application answer (bad token, unknown
				// list, forbidden, rate-limited): every member would say
				// the same, and the member answering proves it alive.
				s.members[a.idx].consecFails.Store(0)
				return zero, a.err
			}
			// A genuine member fault: note it and fail over immediately
			// rather than waiting out the hedge timer.
			s.members[a.idx].consecFails.Add(1)
			if firstFault == nil {
				firstFault = a.err
			}
			if next < len(order) {
				s.failovers.Add(1)
				launch()
				pending++
			} else if pending == 0 {
				return zero, fmt.Errorf("replica: every member faulted: %w", firstFault)
			}
		}
	}
}

// readOrder is the member rotation for one read: the primary first —
// unless its consecutive-fault run demoted it, in which case it is
// tried last — then the live replicas. Stale replicas never serve
// reads. There is always at least one entry (a set with every replica
// stale reads from the primary, demoted or not).
func (s *Set) readOrder() []int {
	order := make([]int, 0, len(s.members))
	demoted := len(s.members) > 1 && s.members[0].consecFails.Load() >= DemoteAfter
	if !demoted {
		order = append(order, 0)
	}
	for i := 1; i < len(s.members); i++ {
		if !s.members[i].stale.Load() {
			order = append(order, i)
		}
	}
	if demoted {
		order = append(order, 0)
	}
	return order
}

// failoverWorthy reports whether a member's error indicts the member
// (fail over to the next one) rather than the request (return it).
// Transport failures, internal errors and overload are member faults;
// everything with a deterministic application meaning is an answer.
// Context errors map to CodeInternal and are failover-worthy here: on
// an individual attempt they mean that member timed out. (A canceled
// parent context short-circuits the race before accounting.)
func failoverWorthy(err error) bool {
	switch server.ErrorCode(err) {
	case server.CodeInternal, server.CodeOverloaded:
		return true
	}
	return false
}
