// Package replica turns one logical index shard into a small replica
// set: a primary transport plus N replicas holding the same lists.
// The Set is itself a client.Transport, so a cluster Router (or any
// other caller) treats it as one shard.
//
// Writes are synchronous primary-first: the primary must accept the
// operation (its rejection is the caller's answer), then the operation
// fans concurrently to every live replica before the write returns. A
// replica that misses a write — fault, timeout, operator restart — is
// marked stale and excluded from reads until Resync copies the
// primary's state back over it. That invariant is what makes replica
// answers trustworthy without revalidation: any member eligible for a
// read has applied every acknowledged write.
//
// Reads race the members: the first is sent immediately, and a hedge
// timer (latency-derived when the router seeds it, DefaultHedgeDelay
// otherwise) launches the same operation on the next member if no
// answer arrives in time. A member fault fails over immediately
// instead of waiting for the timer. The first success wins and cancels
// the losers; a canceled loser is never counted as a fault. A
// deterministic application answer (auth failure, unknown list,
// forbidden) also wins immediately — every member would answer it the
// same way, so racing on is pure waste.
//
// Replication changes nothing about what servers learn: every member
// stores exactly the sealed payloads, TRS values and group IDs the
// single-server deployment stores, so N replicas are N instances of
// the same adversary model, not a new one (see DESIGN.md "Replication
// & migration").
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/crypt"
	"zerberr/internal/obs"
	"zerberr/internal/proof"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// DefaultHedgeDelay is the hedge timer when nothing better is known.
// Far above a healthy in-rack round trip (so hedges stay rare) and far
// below a caller-visible stall.
const DefaultHedgeDelay = 20 * time.Millisecond

// DemoteAfter is the consecutive-fault run after which the primary is
// read last instead of first (writes still require it — the set does
// no election; a dead primary fails writes until the operator migrates
// or restarts it).
const DemoteAfter = 3

// Metric names a Set registers via SetObs. The router attaches the
// shard label; the families themselves carry no list or term identity.
const (
	MetricHedgedReads    = "zerber_replica_hedged_reads_total"
	MetricHedgeWins      = "zerber_replica_hedge_wins_total"
	MetricFailoverReads  = "zerber_replica_failover_reads_total"
	MetricWriteFaults    = "zerber_replica_write_faults_total"
	MetricStaleMembers   = "zerber_replica_stale_members"
	MetricRootMismatches = "zerber_replica_root_mismatches_total"
)

// member is one transport of the set plus its liveness state.
type member struct {
	t client.Transport
	// consecFails is the current run of read faults (reset by any
	// answer). The primary's run drives demotion.
	consecFails atomic.Int64
	// stale marks a replica that missed a write (or was imported over);
	// stale members take no reads until Resync. Never set on the
	// primary.
	stale atomic.Bool
}

// Set is a replica set over one logical shard. All methods are safe
// for concurrent use.
type Set struct {
	members []*member
	// writeMu orders writes against resync's catch-up barrier: writes
	// hold it shared, the final catch-up phase of Resync holds it
	// exclusively so no write lands between tail replay and the
	// replica's return to the read rotation.
	writeMu sync.RWMutex

	delay         atomic.Pointer[delayFn]
	delayExplicit atomic.Bool

	// roots pins the last Merkle list root seen per list across all
	// members: any two members answering a proved read at the same
	// list version must commit to the same root, so a hedged or
	// failover answer cannot silently come from a diverged replica
	// (checkRoot).
	rootMu sync.Mutex
	roots  map[zerber.ListID]rootPin

	hedges         atomic.Uint64
	hedgeWins      atomic.Uint64
	failovers      atomic.Uint64
	writeFaults    atomic.Uint64
	resyncs        atomic.Uint64
	rootMismatches atomic.Uint64
}

// rootPin is the newest committed root the set has observed for one
// list.
type rootPin struct {
	version uint64
	root    proof.Hash
}

type delayFn func() time.Duration

// NewSet builds a replica set from a primary and its replicas. Every
// member must be distinct — wiring one server in twice fakes
// redundancy (client.TransportIdentity decides).
func NewSet(primary client.Transport, replicas ...client.Transport) (*Set, error) {
	if primary == nil {
		return nil, errors.New("replica: nil primary transport")
	}
	all := append([]client.Transport{primary}, replicas...)
	seen := make(map[any]int, len(all))
	s := &Set{members: make([]*member, 0, len(all))}
	for i, t := range all {
		if t == nil {
			return nil, fmt.Errorf("replica: nil transport at member %d", i)
		}
		id := client.TransportIdentity(t)
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("replica: members %d and %d are the same transport", prev, i)
		}
		seen[id] = i
		s.members = append(s.members, &member{t: t})
	}
	return s, nil
}

// Primary returns the primary member's transport.
func (s *Set) Primary() client.Transport { return s.members[0].t }

// Members reports the set size (primary included).
func (s *Set) Members() int { return len(s.members) }

// SetHedgeDelay pins the hedge timer. Zero hedges immediately (read
// all members at once); use for tests or known-bad primaries.
func (s *Set) SetHedgeDelay(d time.Duration) {
	fn := delayFn(func() time.Duration { return d })
	s.delayExplicit.Store(true)
	s.delay.Store(&fn)
}

// SeedHedgeDelay installs a dynamic hedge-delay source (the router
// derives one from the shard's observed latency). A no-op after
// SetHedgeDelay: an explicit operator choice outranks the heuristic.
func (s *Set) SeedHedgeDelay(f func() time.Duration) {
	if f == nil || s.delayExplicit.Load() {
		return
	}
	fn := delayFn(f)
	s.delay.Store(&fn)
}

// hedgeDelay resolves the current hedge timer; negative sources fall
// back to the default.
func (s *Set) hedgeDelay() time.Duration {
	if f := s.delay.Load(); f != nil {
		if d := (*f)(); d >= 0 {
			return d
		}
	}
	return DefaultHedgeDelay
}

// Stats is a point-in-time snapshot of the set's counters.
type Stats struct {
	Members        int    `json:"members"`
	Stale          int    `json:"stale"`
	PrimaryDemoted bool   `json:"primary_demoted"`
	Hedges         uint64 `json:"hedges"`
	HedgeWins      uint64 `json:"hedge_wins"`
	Failovers      uint64 `json:"failovers"`
	WriteFaults    uint64 `json:"write_faults"`
	Resyncs        uint64 `json:"resyncs"`
	// RootMismatches counts proved answers whose Merkle root disagreed
	// with another member's at the same list version — evidence of a
	// diverged (or lying) member.
	RootMismatches uint64 `json:"root_mismatches,omitempty"`
}

// Stats snapshots the counters.
func (s *Set) Stats() Stats {
	return Stats{
		Members:        len(s.members),
		Stale:          s.staleCount(),
		PrimaryDemoted: s.members[0].consecFails.Load() >= DemoteAfter,
		Hedges:         s.hedges.Load(),
		HedgeWins:      s.hedgeWins.Load(),
		Failovers:      s.failovers.Load(),
		WriteFaults:    s.writeFaults.Load(),
		Resyncs:        s.resyncs.Load(),
		RootMismatches: s.rootMismatches.Load(),
	}
}

func (s *Set) staleCount() int {
	n := 0
	for _, m := range s.members[1:] {
		if m.stale.Load() {
			n++
		}
	}
	return n
}

// SetObs registers the set's metric families, sampled at scrape time.
// The caller supplies identifying labels (the router passes the shard
// index); the label vocabulary must stay inside the scrape allowlist.
func (s *Set) SetObs(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.CounterFunc(MetricHedgedReads, "reads that launched a hedge to another member",
		func() float64 { return float64(s.hedges.Load()) }, labels...)
	reg.CounterFunc(MetricHedgeWins, "reads answered by a member other than the first tried",
		func() float64 { return float64(s.hedgeWins.Load()) }, labels...)
	reg.CounterFunc(MetricFailoverReads, "reads failed over after a member fault",
		func() float64 { return float64(s.failovers.Load()) }, labels...)
	reg.CounterFunc(MetricWriteFaults, "replica write fan-out faults (each marks the replica stale)",
		func() float64 { return float64(s.writeFaults.Load()) }, labels...)
	reg.GaugeFunc(MetricStaleMembers, "replicas currently excluded from reads pending resync",
		func() float64 { return float64(s.staleCount()) }, labels...)
	reg.CounterFunc(MetricRootMismatches, "proved answers whose Merkle root disagreed across members at one list version",
		func() float64 { return float64(s.rootMismatches.Load()) }, labels...)
}

// checkRoot cross-checks one proved answer against the set-wide root
// registry: members answering the same list version must commit to
// the same root. A mismatch is returned as a plain error — it maps to
// CodeInternal and is therefore failover-worthy, so the race moves on
// to the next member instead of serving a diverged answer. Unproven
// answers (nil window) pass through; older-version answers are
// ignored rather than compared, since a read racing a write can
// legitimately observe a member pre-write.
func (s *Set) checkRoot(list zerber.ListID, w *proof.Window) error {
	if w == nil {
		return nil
	}
	s.rootMu.Lock()
	defer s.rootMu.Unlock()
	pin, ok := s.roots[list]
	switch {
	case ok && pin.version == w.Version:
		if pin.root != w.Root {
			s.rootMismatches.Add(1)
			return fmt.Errorf("replica: list %d version %d: members committed two different roots", list, w.Version)
		}
	case !ok || w.Version > pin.version:
		if s.roots == nil {
			s.roots = make(map[zerber.ListID]rootPin)
		}
		s.roots[list] = rootPin{version: w.Version, root: w.Root}
	}
	return nil
}

// write runs one mutation primary-first, then fans it to the live
// replicas. The primary's answer is the caller's answer; a replica
// fault only marks that replica stale.
func (s *Set) write(ctx context.Context, op func(ctx context.Context, t client.Transport) error) error {
	s.writeMu.RLock()
	defer s.writeMu.RUnlock()
	if err := op(ctx, s.members[0].t); err != nil {
		return err
	}
	if len(s.members) == 1 {
		return nil
	}
	var wg sync.WaitGroup
	for i := 1; i < len(s.members); i++ {
		m := s.members[i]
		if m.stale.Load() {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := op(ctx, m.t); err != nil {
				// Any miss — fault, overload, caller cancellation — means
				// the replica no longer holds every acknowledged write;
				// out of the rotation until Resync proves otherwise.
				s.writeFaults.Add(1)
				m.stale.Store(true)
			}
		}()
	}
	wg.Wait()
	return nil
}

// Insert implements client.Transport.
func (s *Set) Insert(ctx context.Context, tok crypt.Token, list zerber.ListID, el server.StoredElement) error {
	return s.write(ctx, func(ctx context.Context, t client.Transport) error {
		return t.Insert(ctx, tok, list, el)
	})
}

// Remove implements client.Transport.
func (s *Set) Remove(ctx context.Context, tok crypt.Token, list zerber.ListID, sealed []byte) error {
	return s.write(ctx, func(ctx context.Context, t client.Transport) error {
		return t.Remove(ctx, tok, list, sealed)
	})
}

// InsertBatch implements client.Transport.
func (s *Set) InsertBatch(ctx context.Context, tok crypt.Token, ops []server.InsertOp) error {
	return s.write(ctx, func(ctx context.Context, t client.Transport) error {
		return t.InsertBatch(ctx, tok, ops)
	})
}

// RemoveBatch implements client.Transport.
func (s *Set) RemoveBatch(ctx context.Context, tok crypt.Token, ops []server.RemoveOp) error {
	return s.write(ctx, func(ctx context.Context, t client.Transport) error {
		return t.RemoveBatch(ctx, tok, ops)
	})
}

// Login implements client.Transport. Tokens are signed with the
// cluster-wide secret, so any member's answer is valid everywhere.
func (s *Set) Login(ctx context.Context, user string) ([]crypt.Token, error) {
	return raceRead(ctx, s, func(ctx context.Context, t client.Transport) ([]crypt.Token, error) {
		return t.Login(ctx, user)
	})
}

// Query implements client.Transport.
func (s *Set) Query(ctx context.Context, toks []crypt.Token, list zerber.ListID, offset, count int) (server.QueryResponse, int, error) {
	type qres struct {
		resp server.QueryResponse
		n    int
	}
	r, err := raceRead(ctx, s, func(ctx context.Context, t client.Transport) (qres, error) {
		resp, n, err := t.Query(ctx, toks, list, offset, count)
		if err == nil {
			err = s.checkRoot(list, resp.Proof)
		}
		return qres{resp, n}, err
	})
	return r.resp, r.n, err
}

// QueryBatch implements client.Transport. Proved sub-query answers
// are cross-checked against the set's root registry before the race
// accepts them, so a hedge or failover winner cannot hand back state
// the rest of the set never committed to.
func (s *Set) QueryBatch(ctx context.Context, toks []crypt.Token, queries []server.ListQuery) (client.BatchQueryResult, error) {
	return raceRead(ctx, s, func(ctx context.Context, t client.Transport) (client.BatchQueryResult, error) {
		res, err := t.QueryBatch(ctx, toks, queries)
		if err != nil {
			return res, err
		}
		for i, resp := range res.Responses {
			if i >= len(queries) {
				break
			}
			if err := s.checkRoot(queries[i].List, resp.Proof); err != nil {
				return client.BatchQueryResult{}, err
			}
		}
		return res, nil
	})
}

var _ client.Transport = (*Set)(nil)
