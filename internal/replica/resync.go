package replica

// Resync and the set's admin surface. A Set delegates the ShardAdmin
// snapshot-transfer calls to its primary — a migration that exports
// "the shard" exports the primary's state — with one twist: admin
// mutations (import, applied ops) leave the replicas holding old
// state, so they are marked stale and Resync brings them back.
//
// Resync itself is the bulk-copy-then-barrier shape live migration
// uses: ship the primary's atomic snapshot while writes keep flowing,
// then take the write barrier only for the WAL-tail catch-up, so the
// pause is proportional to the write rate during the copy, not to the
// index size. After a resync the replica holds the primary's per-list
// versions verbatim (the snapshot carries them) and every later write
// fans to both, so the members answer version-identical responses —
// what makes a hedged answer revalidatable against a retained window
// for free.

import (
	"context"
	"errors"
	"fmt"

	"zerberr/internal/client"
	"zerberr/internal/server"
)

// errNoAdmin reports a member transport without the ShardAdmin
// surface.
var errNoAdmin = errors.New("replica: transport has no admin surface")

// admin returns the primary's admin surface.
func (s *Set) admin() (client.ShardAdmin, error) {
	a, ok := s.members[0].t.(client.ShardAdmin)
	if !ok {
		return nil, fmt.Errorf("%w (primary %T)", errNoAdmin, s.members[0].t)
	}
	return a, nil
}

// ExportSnapshot implements client.ShardAdmin via the primary.
func (s *Set) ExportSnapshot(ctx context.Context) (server.SnapshotExport, error) {
	a, err := s.admin()
	if err != nil {
		return server.SnapshotExport{}, err
	}
	return a.ExportSnapshot(ctx)
}

// ImportSnapshot implements client.ShardAdmin: the primary adopts the
// state and every replica is marked stale until Resync copies it over.
func (s *Set) ImportSnapshot(ctx context.Context, data []byte) error {
	a, err := s.admin()
	if err != nil {
		return err
	}
	if err := a.ImportSnapshot(ctx, data); err != nil {
		return err
	}
	s.markReplicasStale()
	return nil
}

// TailSince implements client.ShardAdmin via the primary.
func (s *Set) TailSince(ctx context.Context, seq uint64) ([]server.TailOp, error) {
	a, err := s.admin()
	if err != nil {
		return nil, err
	}
	return a.TailSince(ctx, seq)
}

// ApplyOps implements client.ShardAdmin: the primary applies the tail
// and every replica is marked stale until Resync.
func (s *Set) ApplyOps(ctx context.Context, ops []server.TailOp) error {
	a, err := s.admin()
	if err != nil {
		return err
	}
	if err := a.ApplyOps(ctx, ops); err != nil {
		return err
	}
	s.markReplicasStale()
	return nil
}

// Digest implements client.ShardAdmin via the primary.
func (s *Set) Digest(ctx context.Context) ([]server.ListDigest, error) {
	a, err := s.admin()
	if err != nil {
		return nil, err
	}
	return a.Digest(ctx)
}

func (s *Set) markReplicasStale() {
	for _, m := range s.members[1:] {
		m.stale.Store(true)
	}
}

// Resync copies the primary's state onto every stale replica and
// returns them to the read rotation. Replicas that resync cleanly come
// back even when others fail; the first failure is reported.
func (s *Set) Resync(ctx context.Context) error {
	if s.staleCount() == 0 {
		return nil
	}
	pa, err := s.admin()
	if err != nil {
		return err
	}
	var firstErr error
	for _, m := range s.members[1:] {
		if !m.stale.Load() {
			continue
		}
		ra, ok := m.t.(client.ShardAdmin)
		if !ok {
			err = fmt.Errorf("%w (replica %T)", errNoAdmin, m.t)
		} else {
			err = s.resyncOne(ctx, pa, ra, m)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// resyncOne brings one replica current: bulk snapshot copy under live
// writes, then the write barrier for the tail catch-up. The replica is
// marked live before the barrier lifts, so no write can slip between
// "caught up" and "back in rotation".
func (s *Set) resyncOne(ctx context.Context, pa, ra client.ShardAdmin, m *member) error {
	exp, err := pa.ExportSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("replica: resync export: %w", err)
	}
	if err := ra.ImportSnapshot(ctx, exp.Data); err != nil {
		return fmt.Errorf("replica: resync import: %w", err)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	caughtUp := false
	if exp.Tailable {
		ops, terr := pa.TailSince(ctx, exp.Seq)
		if terr == nil {
			if len(ops) > 0 {
				terr = ra.ApplyOps(ctx, ops)
			}
			caughtUp = terr == nil
		}
		// A truncated or failed tail falls through to the quiesced full
		// copy below — slower, never wrong.
	}
	if !caughtUp {
		// Writes are paused, so a fresh export is exact on its own.
		exp, err = pa.ExportSnapshot(ctx)
		if err != nil {
			return fmt.Errorf("replica: resync re-export: %w", err)
		}
		if err := ra.ImportSnapshot(ctx, exp.Data); err != nil {
			return fmt.Errorf("replica: resync re-import: %w", err)
		}
	}
	m.consecFails.Store(0)
	m.stale.Store(false)
	s.resyncs.Add(1)
	return nil
}

var _ client.ShardAdmin = (*Set)(nil)
