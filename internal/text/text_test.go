package text

import (
	"reflect"
	"testing"
)

func TestTokenizerBasic(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Analyze("Hello, World! hello-again")
	want := []string{"hello", "world", "hello", "again"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Analyze = %v, want %v", got, want)
	}
}

func TestTokenizerStopwords(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Analyze("the quick brown fox and the lazy dog")
	want := []string{"quick", "brown", "fox", "lazy", "dog"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Analyze = %v, want %v", got, want)
	}
}

func TestTokenizerNoStopwords(t *testing.T) {
	tok := &Tokenizer{}
	got := tok.Analyze("the cat")
	want := []string{"the", "cat"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Analyze = %v, want %v", got, want)
	}
}

func TestTokenizerLengthLimits(t *testing.T) {
	tok := &Tokenizer{MinLen: 3, MaxLen: 5}
	got := tok.Analyze("ab abc abcde abcdef x")
	want := []string{"abc", "abcde"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Analyze = %v, want %v", got, want)
	}
}

func TestTokenizerUnicode(t *testing.T) {
	tok := &Tokenizer{}
	got := tok.Analyze("Vergütung zählt! ÜBER")
	want := []string{"vergütung", "zählt", "über"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Analyze = %v, want %v", got, want)
	}
}

func TestTokenizerDigits(t *testing.T) {
	tok := &Tokenizer{}
	got := tok.Analyze("rev2 2024 x1")
	want := []string{"rev2", "2024", "x1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Analyze = %v, want %v", got, want)
	}
}

func TestTokenizerEmpty(t *testing.T) {
	tok := NewTokenizer()
	if got := tok.Analyze(""); len(got) != 0 {
		t.Fatalf("Analyze(\"\") = %v, want empty", got)
	}
	if got := tok.Analyze("!!! ---"); len(got) != 0 {
		t.Fatalf("Analyze(punct) = %v, want empty", got)
	}
}

func TestTermCounts(t *testing.T) {
	tf, n := TermCounts([]string{"a", "b", "a", "c", "a"})
	if n != 5 {
		t.Fatalf("docLen = %d, want 5", n)
	}
	if tf["a"] != 3 || tf["b"] != 1 || tf["c"] != 1 {
		t.Fatalf("tf = %v", tf)
	}
}

func TestDefaultStopwordsIsCopy(t *testing.T) {
	a := DefaultStopwords()
	a["zzz"] = true
	b := DefaultStopwords()
	if b["zzz"] {
		t.Fatal("DefaultStopwords returned shared state")
	}
}
