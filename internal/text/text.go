// Package text provides the lightweight text-analysis substrate used
// when indexing real documents in the examples and CLI: tokenization,
// case folding and stopword removal. The synthetic corpora used by the
// experiment harness bypass this package entirely.
package text

import (
	"strings"
	"unicode"
)

// Analyzer turns raw text into index terms.
type Analyzer interface {
	// Analyze returns the terms of the given text, in order of
	// appearance, after normalization and filtering.
	Analyze(text string) []string
}

// Tokenizer is the default Analyzer: it lowercases, splits on any rune
// that is neither a letter nor a digit, drops tokens outside
// [MinLen, MaxLen] and removes stopwords.
type Tokenizer struct {
	// MinLen and MaxLen bound accepted token lengths in runes.
	// Zero values default to 2 and 40.
	MinLen, MaxLen int
	// Stopwords are dropped after lowercasing. Nil means no stopword
	// filtering; DefaultStopwords provides a small English list.
	Stopwords map[string]bool
}

// NewTokenizer returns a Tokenizer with default limits and the default
// English stopword list.
func NewTokenizer() *Tokenizer {
	return &Tokenizer{MinLen: 2, MaxLen: 40, Stopwords: DefaultStopwords()}
}

// Analyze implements Analyzer.
func (t *Tokenizer) Analyze(text string) []string {
	minLen := t.MinLen
	if minLen == 0 {
		minLen = 2
	}
	maxLen := t.MaxLen
	if maxLen == 0 {
		maxLen = 40
	}
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		n := len([]rune(tok))
		if n < minLen || n > maxLen {
			return
		}
		if t.Stopwords != nil && t.Stopwords[tok] {
			return
		}
		out = append(out, tok)
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// DefaultStopwords returns a fresh copy of a small English stopword
// set. Callers may mutate the returned map freely.
func DefaultStopwords() map[string]bool {
	words := []string{
		"a", "an", "and", "are", "as", "at", "be", "but", "by", "for",
		"if", "in", "into", "is", "it", "no", "not", "of", "on", "or",
		"such", "that", "the", "their", "then", "there", "these",
		"they", "this", "to", "was", "will", "with",
	}
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

// TermCounts folds an analyzed token stream into (term -> frequency)
// counts plus the total token count, which is the document length |d|
// used by the paper's Equation 4.
func TermCounts(tokens []string) (tf map[string]int, docLen int) {
	tf = make(map[string]int)
	for _, tok := range tokens {
		tf[tok]++
	}
	return tf, len(tokens)
}
