package workload

// Stream extends the static Generate → *Log shape to the unbounded,
// closed-loop shape the soak harness drives: an infinite, seeded,
// resumable sequence of mixed search/insert/remove operations issued
// by a Zipf-distributed population of simulated users (millions by
// default — the head users dominate the op stream, the long tail
// appears once or twice, like a real web workload).

import (
	"iter"

	"zerberr/internal/corpus"
	"zerberr/internal/stats"
)

// OpKind classifies one streamed operation.
type OpKind uint8

const (
	// OpSearch is a multi-term top-k query.
	OpSearch OpKind = iota
	// OpInsert indexes a fresh synthetic document owned by the user.
	OpInsert
	// OpRemove deletes a document a previous OpInsert of the same user
	// emitted (Op.Doc points at that exact document, so the consumer
	// can correlate by Doc.ID without bookkeeping of its own).
	OpRemove
)

// String names the kind for logs and reports.
func (k OpKind) String() string {
	switch k {
	case OpSearch:
		return "search"
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	}
	return "unknown"
}

// Op is one operation of the stream.
type Op struct {
	// Seq is the operation's position in the stream (the resume
	// cursor: Stream with Config.Start = s yields the suffix of the
	// same stream starting at Seq == s).
	Seq uint64
	// User is the simulated user identity issuing the op. Identities
	// are Zipf ranks over Config.Users: user 0 is the most active.
	User uint64
	// Kind selects which of the following fields is meaningful.
	Kind OpKind
	// Terms is the query (OpSearch).
	Terms []corpus.TermID
	// Doc is the document to index (OpInsert) or the previously
	// inserted document to delete (OpRemove).
	Doc *corpus.Document
}

// StreamConfig parameterizes Stream. The zero value takes the
// defaults documented per field.
type StreamConfig struct {
	// Users is the simulated user population (default 1,000,000).
	Users int
	// UserZipfS is the user-activity exponent (default 1.0): a few
	// head users issue most of the traffic.
	UserZipfS float64
	// SearchFrac, InsertFrac and RemoveFrac are the op mix (defaults
	// 0.90/0.07/0.03; they are normalized if they do not sum to 1). A
	// remove drawn for a user with no live inserted documents is
	// emitted as an insert instead, so the mutation volume is
	// preserved and every OpRemove targets a document that is really
	// live.
	SearchFrac, InsertFrac, RemoveFrac float64
	// MeanTerms, ZipfS, QueryVocab and RankNoise parameterize the
	// query-term sampler exactly like Config (defaults 2.4, 1.1,
	// quarter of the vocabulary, 0.35).
	MeanTerms  float64
	ZipfS      float64
	QueryVocab int
	RankNoise  float64
	// DocMeanTerms is the mean number of distinct terms per inserted
	// document (default 12).
	DocMeanTerms float64
	// Groups bounds the collaboration-group space documents are
	// assigned to (a user always inserts into user % Groups); zero
	// means the corpus's group count.
	Groups int
	// FirstDocID is the first document ID minted for inserted
	// documents; zero means just past the corpus (so streamed IDs
	// never collide with indexed corpus documents).
	FirstDocID corpus.DocID
	// MaxLiveDocsPerUser bounds the per-user set of removable
	// documents (default 32): when full, the oldest tracked document
	// is forgotten (it simply stops being a remove candidate).
	MaxLiveDocsPerUser int
	// Start is the resume cursor: ops with Seq < Start are generated
	// (the stream's internal state must replay) but not yielded.
	Start uint64
}

// DefaultStreamConfig returns the soak-harness defaults.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Users:      1_000_000,
		UserZipfS:  1.0,
		SearchFrac: 0.90,
		InsertFrac: 0.07,
		RemoveFrac: 0.03,
	}
}

// withDefaults fills zero fields against the corpus.
func (cfg StreamConfig) withDefaults(c *corpus.Corpus) StreamConfig {
	def := DefaultStreamConfig()
	if cfg.Users <= 0 {
		cfg.Users = def.Users
	}
	if cfg.UserZipfS <= 0 {
		cfg.UserZipfS = def.UserZipfS
	}
	if cfg.SearchFrac <= 0 && cfg.InsertFrac <= 0 && cfg.RemoveFrac <= 0 {
		cfg.SearchFrac, cfg.InsertFrac, cfg.RemoveFrac = def.SearchFrac, def.InsertFrac, def.RemoveFrac
	}
	if sum := cfg.SearchFrac + cfg.InsertFrac + cfg.RemoveFrac; sum > 0 && sum != 1 {
		cfg.SearchFrac /= sum
		cfg.InsertFrac /= sum
		cfg.RemoveFrac /= sum
	}
	if cfg.MeanTerms <= 0 {
		cfg.MeanTerms = 2.4
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.RankNoise <= 0 {
		cfg.RankNoise = 0.35
	}
	if cfg.DocMeanTerms <= 0 {
		cfg.DocMeanTerms = 12
	}
	if cfg.Groups <= 0 {
		cfg.Groups = c.Groups
	}
	if cfg.Groups <= 0 {
		cfg.Groups = 1
	}
	if cfg.FirstDocID == 0 {
		cfg.FirstDocID = corpus.DocID(c.NumDocs())
	}
	if cfg.MaxLiveDocsPerUser <= 0 {
		cfg.MaxLiveDocsPerUser = 32
	}
	return cfg
}

// Stream yields an endless operation stream against the corpus. The
// stream is deterministic per (cfg, seed): two streams built from the
// same arguments yield identical operations, which is what makes a
// soak run reproducible and the stream resumable — to continue after
// op N, rebuild with Config.Start = N and the suffix is identical to
// what an uninterrupted stream would have yielded (internal state is
// replayed, no ops are re-emitted).
//
// The sequence is single-use and infinite; consumers range and break.
func Stream(c *corpus.Corpus, cfg StreamConfig, seed uint64) iter.Seq[Op] {
	return func(yield func(Op) bool) {
		cfg = cfg.withDefaults(c)
		g := stats.NewRNG(seed).Split("workload-stream")
		ts := newTermSampler(c, cfg.QueryVocab, cfg.ZipfS, cfg.RankNoise, g)
		if !ts.ok() {
			return
		}
		userZ := stats.NewZipf(g, cfg.Users, cfg.UserZipfS)
		// live tracks each user's removable documents. Bounded per
		// user; across users it grows with the set of users that ever
		// inserted, which the Zipf head keeps concentrated in practice.
		live := make(map[uint64][]*corpus.Document)
		nextDoc := cfg.FirstDocID
		synth := func(user uint64) *corpus.Document {
			n := queryLength(g, cfg.DocMeanTerms)
			terms := ts.draw(n)
			tf := make(map[corpus.TermID]int, len(terms))
			total := 0
			for _, t := range terms {
				f := 1 + g.Intn(4)
				tf[t] = f
				total += f
			}
			d := &corpus.Document{
				ID:     nextDoc,
				Group:  int(user % uint64(cfg.Groups)),
				Length: total * 25, // plausible NormTF normalizer
				TF:     tf,
			}
			nextDoc++
			return d
		}
		insert := func(user uint64) Op {
			d := synth(user)
			docs := append(live[user], d)
			if len(docs) > cfg.MaxLiveDocsPerUser {
				docs = docs[1:] // forget the oldest remove candidate
			}
			live[user] = docs
			return Op{User: user, Kind: OpInsert, Doc: d}
		}
		for seq := uint64(0); ; seq++ {
			user := uint64(userZ.Next())
			r := g.Float64()
			var op Op
			switch {
			case r < cfg.SearchFrac:
				op = Op{User: user, Kind: OpSearch, Terms: ts.draw(queryLength(g, cfg.MeanTerms))}
			case r < cfg.SearchFrac+cfg.InsertFrac:
				op = insert(user)
			default:
				docs := live[user]
				if len(docs) == 0 {
					// Nothing of this user's to remove yet: keep the
					// mutation budget by inserting instead.
					op = insert(user)
					break
				}
				i := g.Intn(len(docs))
				d := docs[i]
				live[user] = append(docs[:i:i], docs[i+1:]...)
				op = Op{User: user, Kind: OpRemove, Doc: d}
			}
			op.Seq = seq
			if seq >= cfg.Start && !yield(op) {
				return
			}
		}
	}
}
