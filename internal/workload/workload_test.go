package workload

import (
	"math"
	"testing"

	"zerberr/internal/corpus"
)

func testCorpus(seed uint64) *corpus.Corpus {
	p := corpus.ProfileStudIP()
	p.NumDocs = 300
	p.VocabSize = 3000
	return corpus.Generate(p, seed)
}

func TestGenerateDeterministic(t *testing.T) {
	c := testCorpus(1)
	a := Generate(c, DefaultConfig(), 7)
	b := Generate(c, DefaultConfig(), 7)
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("lengths differ")
	}
	for i := range a.Queries {
		if len(a.Queries[i].Terms) != len(b.Queries[i].Terms) {
			t.Fatalf("query %d differs", i)
		}
		for j := range a.Queries[i].Terms {
			if a.Queries[i].Terms[j] != b.Queries[i].Terms[j] {
				t.Fatalf("query %d term %d differs", i, j)
			}
		}
	}
}

func TestMeanQueryLength(t *testing.T) {
	c := testCorpus(2)
	cfg := DefaultConfig()
	cfg.NumQueries = 20000
	log := Generate(c, cfg, 1)
	total := 0
	for _, q := range log.Queries {
		if len(q.Terms) < 1 {
			t.Fatal("empty query generated")
		}
		total += len(q.Terms)
	}
	mean := float64(total) / float64(len(log.Queries))
	if math.Abs(mean-2.4) > 0.15 {
		t.Fatalf("mean query length %v, want about 2.4", mean)
	}
	if total != log.TermOccurrences() {
		t.Fatalf("TermOccurrences %d, counted %d", log.TermOccurrences(), total)
	}
}

func TestQueriesUseDistinctTermsWithin(t *testing.T) {
	c := testCorpus(3)
	log := Generate(c, DefaultConfig(), 2)
	for i, q := range log.Queries[:500] {
		seen := map[corpus.TermID]bool{}
		for _, term := range q.Terms {
			if seen[term] {
				t.Fatalf("query %d repeats term %d", i, term)
			}
			seen[term] = true
		}
	}
}

func TestZipfHeadDominatesWorkload(t *testing.T) {
	// Figure 10's premise: the most frequent queries carry nearly the
	// whole workload.
	c := testCorpus(4)
	log := Generate(c, DefaultConfig(), 3)
	terms := log.TermsByFreq()
	if len(terms) < 100 {
		t.Fatalf("only %d distinct query terms", len(terms))
	}
	head := 0
	for _, term := range terms[:len(terms)/10] {
		head += log.Freq(term)
	}
	frac := float64(head) / float64(log.TermOccurrences())
	if frac < 0.6 {
		t.Fatalf("top-10%% of terms carry %v of the workload, want > 0.6", frac)
	}
}

func TestQueryFrequencyCorrelatesWithDF(t *testing.T) {
	// Imperfect but positive correlation between df rank and query
	// frequency (Section 5.2: "document frequencies and query
	// frequencies are correlated, though some frequent terms are
	// rarely queried").
	c := testCorpus(5)
	log := Generate(c, DefaultConfig(), 4)
	byDF := c.TermsByDF()
	headDF := byDF[:200]
	tailStart := len(byDF) / 2
	tailDF := byDF[tailStart : tailStart+200]
	headQ, tailQ := 0, 0
	for i := range headDF {
		headQ += log.Freq(headDF[i])
		tailQ += log.Freq(tailDF[i])
	}
	if headQ <= 2*tailQ {
		t.Fatalf("head-df terms queried %d times, tail-df %d: correlation too weak", headQ, tailQ)
	}
	// But not perfect: at least one head-df term should be rarer in
	// queries than some term far below it in df rank.
	inverted := false
	for i := 0; i < 50 && !inverted; i++ {
		for j := 100; j < 200; j++ {
			if log.Freq(byDF[j]) > log.Freq(byDF[i]) {
				inverted = true
				break
			}
		}
	}
	if !inverted {
		t.Fatal("df rank and query rank identical everywhere: RankNoise had no effect")
	}
}

func TestSingleTermStream(t *testing.T) {
	c := testCorpus(6)
	cfg := DefaultConfig()
	cfg.NumQueries = 100
	log := Generate(c, cfg, 5)
	stream := log.SingleTermStream()
	if len(stream) != log.TermOccurrences() {
		t.Fatalf("stream has %d terms, want %d", len(stream), log.TermOccurrences())
	}
}

func TestQueryVocabBound(t *testing.T) {
	c := testCorpus(7)
	cfg := DefaultConfig()
	cfg.QueryVocab = 50
	log := Generate(c, cfg, 6)
	if log.DistinctTerms() > 50 {
		t.Fatalf("log uses %d distinct terms, want <= 50", log.DistinctTerms())
	}
}

func TestCostModel(t *testing.T) {
	c := testCorpus(8)
	cfg := DefaultConfig()
	cfg.NumQueries = 1000
	log := Generate(c, cfg, 7)
	// Two synthetic lists: term -> list 0 if even, 1 if odd.
	model := CostModel{
		ElementsPerQuery: map[uint32]float64{0: 10, 1: 30},
		ListOf: func(t corpus.TermID) (uint32, bool) {
			return uint32(t) % 2, true
		},
	}
	got := model.TotalCost(log)
	// Recompute naively.
	want := 0.0
	for _, term := range log.TermsByFreq() {
		cost := 10.0
		if term%2 == 1 {
			cost = 30.0
		}
		want += cost * float64(log.Freq(term))
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalCost = %v, want %v", got, want)
	}
}

func TestPositionEstimate(t *testing.T) {
	// Eq. 11: k × (Σ df) / df(t).
	if got := PositionEstimate(10, 50, 500); got != 100 {
		t.Fatalf("PositionEstimate = %v, want 100", got)
	}
	if got := PositionEstimate(10, 0, 500); got != 0 {
		t.Fatalf("df=0: %v, want 0", got)
	}
}

func TestGenerateEmptyCorpus(t *testing.T) {
	c := corpus.Ingest(nil, nil)
	log := Generate(c, DefaultConfig(), 1)
	if len(log.Queries) != 0 && log.DistinctTerms() != 0 {
		t.Fatal("empty corpus should give empty log")
	}
}
