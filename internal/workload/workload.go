// Package workload models the query side of the evaluation: a
// synthetic web-search-style query log standing in for the 7M-query
// log of Section 6.1.3 (Zipf-distributed query frequencies, imperfect
// correlation with document frequency, multi-term queries averaging
// 2.4 terms) and the Equation 9 workload cost model.
package workload

import (
	"math"
	"sort"

	"zerberr/internal/corpus"
	"zerberr/internal/stats"
)

// Query is one entry of the log.
type Query struct {
	Terms []corpus.TermID
}

// Log is a generated query workload plus its per-term frequency
// profile.
type Log struct {
	Queries []Query
	// freq counts how often each term occurs across the log.
	freq map[corpus.TermID]int
	// totalTermOccurrences is the sum of freq values.
	totalTermOccurrences int
}

// Config parameterizes the generator.
type Config struct {
	// NumQueries is the log length. The paper's log has 7M queries;
	// experiments default to a laptop-friendly scale.
	NumQueries int
	// MeanTerms is the mean query length (paper: 2.4).
	MeanTerms float64
	// QueryVocab bounds how many distinct terms appear in queries
	// (paper: 135K distinct query terms); zero means a quarter of the
	// corpus vocabulary.
	QueryVocab int
	// ZipfS is the query-popularity exponent (head-heavy; the paper's
	// Figure 10 shows the most frequent queries carrying nearly the
	// whole workload).
	ZipfS float64
	// RankNoise controls the imperfect correlation between document
	// frequency and query frequency: each term's query-popularity rank
	// is its df rank perturbed by a lognormal factor. Zero means 0.35.
	// Larger values decorrelate further ("some frequent terms are
	// rarely queried", Section 5.2 / [15]).
	RankNoise float64
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{
		NumQueries: 20000,
		MeanTerms:  2.4,
		ZipfS:      1.1,
		RankNoise:  0.35,
	}
}

// Generate builds a deterministic query log against the corpus: terms
// that exist in the collection are queried with Zipf-distributed
// frequencies whose ranking loosely follows document frequency.
func Generate(c *corpus.Corpus, cfg Config, seed uint64) *Log {
	g := stats.NewRNG(seed).Split("workload")
	if cfg.NumQueries <= 0 {
		cfg.NumQueries = DefaultConfig().NumQueries
	}
	if cfg.MeanTerms <= 0 {
		cfg.MeanTerms = 2.4
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.RankNoise <= 0 {
		cfg.RankNoise = 0.35
	}
	ts := newTermSampler(c, cfg.QueryVocab, cfg.ZipfS, cfg.RankNoise, g)
	if !ts.ok() {
		return &Log{freq: map[corpus.TermID]int{}}
	}
	log := &Log{
		Queries: make([]Query, cfg.NumQueries),
		freq:    make(map[corpus.TermID]int),
	}
	for i := range log.Queries {
		terms := ts.draw(queryLength(g, cfg.MeanTerms))
		log.Queries[i] = Query{Terms: terms}
		for _, t := range terms {
			log.freq[t]++
			log.totalTermOccurrences++
		}
	}
	return log
}

// termSampler draws query terms Zipf-distributed over a noisy
// df-derived popularity ranking. It is the shared sampling core of
// Generate (static logs) and Stream (unbounded op streams); both build
// it from their own RNG, so their streams stay independent yet
// per-seed deterministic.
type termSampler struct {
	ranked []corpus.TermID
	zipf   *stats.Zipf
}

// newTermSampler ranks the corpus's queried vocabulary (df order
// perturbed multiplicatively by lognormal noise — the imperfect
// df/query-frequency correlation of Section 5.2) and arms a finite
// Zipf sampler over the ranks. The noise draws consume g in rank
// order, so Generate's output for a given seed is unchanged by the
// factoring.
func newTermSampler(c *corpus.Corpus, queryVocab int, zipfS, rankNoise float64, g *stats.RNG) *termSampler {
	byDF := c.TermsByDF()
	vocab := queryVocab
	if vocab <= 0 {
		vocab = len(byDF) / 4
	}
	if vocab > len(byDF) {
		vocab = len(byDF)
	}
	if vocab == 0 {
		return &termSampler{}
	}
	type ranked struct {
		term corpus.TermID
		key  float64
	}
	rankedTerms := make([]ranked, vocab)
	for i := 0; i < vocab; i++ {
		noisy := float64(i+1) * g.LogNormal(0, rankNoise)
		rankedTerms[i] = ranked{term: byDF[i], key: noisy}
	}
	sort.Slice(rankedTerms, func(i, j int) bool {
		if rankedTerms[i].key != rankedTerms[j].key {
			return rankedTerms[i].key < rankedTerms[j].key
		}
		return rankedTerms[i].term < rankedTerms[j].term
	})
	out := &termSampler{ranked: make([]corpus.TermID, vocab), zipf: stats.NewZipf(g, vocab, zipfS)}
	for i, r := range rankedTerms {
		out.ranked[i] = r.term
	}
	return out
}

// ok reports whether the corpus had any queryable vocabulary.
func (ts *termSampler) ok() bool { return len(ts.ranked) > 0 }

// draw samples n distinct terms (clamped to the queryable vocabulary).
func (ts *termSampler) draw(n int) []corpus.TermID {
	if n > len(ts.ranked) {
		n = len(ts.ranked)
	}
	terms := make([]corpus.TermID, 0, n)
	seen := make(map[corpus.TermID]bool, n)
	for len(terms) < n {
		t := ts.ranked[ts.zipf.Next()]
		if seen[t] {
			continue
		}
		seen[t] = true
		terms = append(terms, t)
	}
	return terms
}

// queryLength draws a positive query length with the given mean:
// 1 + Poisson(mean-1), sampled by inversion.
func queryLength(g *stats.RNG, mean float64) int {
	lambda := mean - 1
	if lambda <= 0 {
		return 1
	}
	// Knuth's algorithm; lambda is small (~1.4).
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.Float64()
		if p <= l {
			return 1 + k
		}
		k++
		if k > 50 {
			return 1 + k
		}
	}
}

// Freq returns how often the term occurs across the log's queries.
func (l *Log) Freq(t corpus.TermID) int { return l.freq[t] }

// TermOccurrences returns the total number of term occurrences in the
// log (multi-term queries count each term once per occurrence).
func (l *Log) TermOccurrences() int { return l.totalTermOccurrences }

// DistinctTerms returns how many distinct terms the log queries.
func (l *Log) DistinctTerms() int { return len(l.freq) }

// TermsByFreq returns the queried terms in decreasing log frequency.
func (l *Log) TermsByFreq() []corpus.TermID {
	out := make([]corpus.TermID, 0, len(l.freq))
	for t := range l.freq {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if l.freq[out[i]] != l.freq[out[j]] {
			return l.freq[out[i]] > l.freq[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// SingleTermStream flattens the log into the per-term query sequence
// Zerber+R actually executes ("a multi-term query as a sequence of
// single-term queries", Section 6.1.3).
func (l *Log) SingleTermStream() []corpus.TermID {
	var out []corpus.TermID
	for _, q := range l.Queries {
		out = append(out, q.Terms...)
	}
	return out
}

// CostModel computes the Equation 9 total workload cost
// Q ≈ Σ_lists [ N(L) × Σ_{j∈L} q_j ], where N(L) is the retrieval
// cost charged per query against merged list L (elements fetched to
// satisfy top-k, Equation 11) and q_j are query frequencies.
type CostModel struct {
	// ElementsPerQuery maps each merged-list id to N(L).
	ElementsPerQuery map[uint32]float64
	// ListOf maps a term to its merged list.
	ListOf func(corpus.TermID) (uint32, bool)
}

// TotalCost evaluates the model against a log.
func (m CostModel) TotalCost(l *Log) float64 {
	perList := make(map[uint32]int)
	for t, q := range l.freq {
		if list, ok := m.ListOf(t); ok {
			perList[list] += q
		}
	}
	total := 0.0
	for list, qsum := range perList {
		total += m.ElementsPerQuery[list] * float64(qsum)
	}
	return total
}

// PositionEstimate implements Equation 10/11: the expected number of
// elements to retrieve from a merged list to obtain a term's top-k
// under uniform TRS mixing, k × (Σ_{t'∈L} df(t')) / df(t).
func PositionEstimate(k int, dfTerm int, dfListTotal int) float64 {
	if dfTerm <= 0 {
		return 0
	}
	return float64(k) * float64(dfListTotal) / float64(dfTerm)
}
