package workload

import (
	"math"
	"reflect"
	"testing"

	"zerberr/internal/corpus"
)

// collect drains the first n ops of a stream.
func collect(c *corpus.Corpus, cfg StreamConfig, seed uint64, n int) []Op {
	out := make([]Op, 0, n)
	for op := range Stream(c, cfg, seed) {
		out = append(out, op)
		if len(out) == n {
			break
		}
	}
	return out
}

func TestStreamDeterministicPerSeed(t *testing.T) {
	c := testCorpus(1)
	cfg := DefaultStreamConfig()
	a := collect(c, cfg, 7, 5000)
	b := collect(c, cfg, 7, 5000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (cfg, seed) produced two different streams")
	}
	other := collect(c, cfg, 8, 5000)
	same := 0
	for i := range a {
		if a[i].Kind == other[i].Kind && a[i].User == other[i].User {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical stream")
	}
}

func TestStreamResume(t *testing.T) {
	c := testCorpus(2)
	cfg := DefaultStreamConfig()
	full := collect(c, cfg, 3, 3000)
	cfg.Start = 1000
	resumed := collect(c, cfg, 3, 2000)
	if !reflect.DeepEqual(full[1000:], resumed) {
		t.Fatal("Stream with Start=1000 is not the suffix of the uninterrupted stream")
	}
	if resumed[0].Seq != 1000 {
		t.Fatalf("resumed stream starts at Seq %d, want 1000", resumed[0].Seq)
	}
}

func TestStreamOpRatioMixing(t *testing.T) {
	c := testCorpus(3)
	cfg := DefaultStreamConfig()
	cfg.SearchFrac, cfg.InsertFrac, cfg.RemoveFrac = 0.70, 0.20, 0.10
	const n = 30000
	ops := collect(c, cfg, 5, n)
	var counts [3]int
	for _, op := range ops {
		counts[op.Kind]++
	}
	searchFrac := float64(counts[OpSearch]) / n
	if math.Abs(searchFrac-0.70) > 0.02 {
		t.Fatalf("search fraction %.3f, want about 0.70", searchFrac)
	}
	// Removes of users with nothing live fall back to inserts, so the
	// mutation total is exact and removes only approach their share.
	mutFrac := float64(counts[OpInsert]+counts[OpRemove]) / n
	if math.Abs(mutFrac-0.30) > 0.02 {
		t.Fatalf("mutation fraction %.3f, want about 0.30", mutFrac)
	}
	if counts[OpRemove] == 0 {
		t.Fatal("no removes in 30k ops at RemoveFrac=0.10")
	}
}

func TestStreamRemovesTargetLiveDocs(t *testing.T) {
	c := testCorpus(4)
	cfg := DefaultStreamConfig()
	cfg.SearchFrac, cfg.InsertFrac, cfg.RemoveFrac = 0.50, 0.25, 0.25
	live := make(map[corpus.DocID]uint64) // doc -> inserting user
	seen := make(map[corpus.DocID]bool)
	for _, op := range collect(c, cfg, 11, 20000) {
		switch op.Kind {
		case OpInsert:
			if op.Doc == nil || len(op.Doc.TF) == 0 {
				t.Fatalf("op %d: insert with empty document", op.Seq)
			}
			if seen[op.Doc.ID] {
				t.Fatalf("op %d: document ID %d minted twice", op.Seq, op.Doc.ID)
			}
			if int(op.Doc.ID) < c.NumDocs() {
				t.Fatalf("op %d: streamed doc ID %d collides with the corpus", op.Seq, op.Doc.ID)
			}
			seen[op.Doc.ID] = true
			live[op.Doc.ID] = op.User
		case OpRemove:
			owner, ok := live[op.Doc.ID]
			if !ok {
				t.Fatalf("op %d: remove of doc %d that is not live (double remove or never inserted)", op.Seq, op.Doc.ID)
			}
			if owner != op.User {
				t.Fatalf("op %d: user %d removes doc %d owned by user %d", op.Seq, op.User, op.Doc.ID, owner)
			}
			delete(live, op.Doc.ID)
		case OpSearch:
			if len(op.Terms) == 0 {
				t.Fatalf("op %d: empty search", op.Seq)
			}
		}
	}
}

func TestStreamZipfianUsers(t *testing.T) {
	c := testCorpus(5)
	cfg := DefaultStreamConfig()
	cfg.Users = 100000
	perUser := make(map[uint64]int)
	for _, op := range collect(c, cfg, 9, 20000) {
		perUser[op.User]++
	}
	if perUser[0] <= 20000/1000 {
		t.Fatalf("head user issued %d of 20000 ops — not a Zipf head", perUser[0])
	}
	if len(perUser) < 100 {
		t.Fatalf("only %d distinct users in 20000 ops — no tail", len(perUser))
	}
}
