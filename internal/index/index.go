// Package index implements the ordinary inverted index of Figure 1:
// the non-confidential baseline that Zerber+R is measured against.
// Posting lists keep their elements sorted by relevance score so the
// top-k results of a term are a prefix of its list, exactly the
// pruning property the paper's introduction describes. The package
// also provides a compact varint serialization.
package index

import (
	"sort"

	"zerberr/internal/corpus"
	"zerberr/internal/rank"
)

// Posting is one element of a posting list: a document reference plus
// the raw statistics its relevance score derives from.
type Posting struct {
	Doc    corpus.DocID
	TF     uint32
	DocLen uint32
}

// NormTF returns the posting's Equation 4 relevance score.
func (p Posting) NormTF() float64 {
	if p.DocLen == 0 {
		return 0
	}
	return float64(p.TF) / float64(p.DocLen)
}

// postingLess orders postings by descending score, breaking ties by
// ascending document ID so lists are deterministic.
func postingLess(a, b Posting) bool {
	sa, sb := a.NormTF(), b.NormTF()
	if sa != sb {
		return sa > sb
	}
	return a.Doc < b.Doc
}

// Index is an in-memory inverted index over bag-of-words documents.
// The zero value is empty and ready to use. Index is not safe for
// concurrent mutation; concurrent readers are fine once built.
type Index struct {
	lists   map[corpus.TermID][]Posting
	numDocs int
}

// New returns an empty index.
func New() *Index {
	return &Index{lists: make(map[corpus.TermID][]Posting)}
}

// Build indexes every document of the corpus.
func Build(c *corpus.Corpus) *Index {
	ix := New()
	for _, d := range c.Docs {
		ix.Add(d)
	}
	return ix
}

// Add inserts one document, keeping every touched posting list sorted
// by score. Re-adding a document ID is not detected; callers own
// ID uniqueness.
func (ix *Index) Add(d *corpus.Document) {
	if ix.lists == nil {
		ix.lists = make(map[corpus.TermID][]Posting)
	}
	ix.numDocs++
	for t, tf := range d.TF {
		p := Posting{Doc: d.ID, TF: uint32(tf), DocLen: uint32(d.Length)}
		list := ix.lists[t]
		pos := sort.Search(len(list), func(i int) bool { return !postingLess(list[i], p) })
		list = append(list, Posting{})
		copy(list[pos+1:], list[pos:])
		list[pos] = p
		ix.lists[t] = list
	}
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.numDocs }

// DF returns the document frequency of a term.
func (ix *Index) DF(t corpus.TermID) int { return len(ix.lists[t]) }

// NumTerms returns the number of distinct indexed terms.
func (ix *Index) NumTerms() int { return len(ix.lists) }

// Postings returns the score-sorted posting list of t. The returned
// slice is shared; callers must not modify it.
func (ix *Index) Postings(t corpus.TermID) []Posting { return ix.lists[t] }

// Terms returns all indexed term IDs in ascending order.
func (ix *Index) Terms() []corpus.TermID {
	out := make([]corpus.TermID, 0, len(ix.lists))
	for t := range ix.lists {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopK answers a single-term top-k query by taking the k-prefix of the
// score-sorted posting list — the ordinary index's pruning shortcut.
func (ix *Index) TopK(t corpus.TermID, k int) []rank.Result {
	list := ix.lists[t]
	if k > len(list) {
		k = len(list)
	}
	out := make([]rank.Result, 0, k)
	for _, p := range list[:k] {
		out = append(out, rank.Result{Doc: p.Doc, Score: p.NormTF()})
	}
	return out
}

// Search answers a multi-term query by accumulating per-term
// contributions under the given scorer (nil means TF×IDF, the
// baseline's native model) and selecting the k best documents.
func (ix *Index) Search(terms []corpus.TermID, k int, scorer rank.Scorer) []rank.Result {
	if scorer == nil {
		scorer = rank.TFIDFScorer{}
	}
	acc := make(map[corpus.DocID]float64)
	for _, t := range terms {
		df := ix.DF(t)
		for _, p := range ix.lists[t] {
			acc[p.Doc] += scorer.Score(int(p.TF), int(p.DocLen), df, ix.numDocs)
		}
	}
	return rank.TopK(acc, k)
}
