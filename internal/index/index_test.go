package index

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"sort"
	"testing"

	"zerberr/internal/corpus"
	"zerberr/internal/rank"
)

func doc(id corpus.DocID, group int, terms map[corpus.TermID]int) *corpus.Document {
	n := 0
	for _, tf := range terms {
		n += tf
	}
	return &corpus.Document{ID: id, Group: group, Length: n, TF: terms}
}

func testCorpus() *corpus.Corpus {
	p := corpus.ProfileStudIP()
	p.NumDocs = 250
	p.VocabSize = 2500
	return corpus.Generate(p, 77)
}

func TestPostingListsSorted(t *testing.T) {
	c := testCorpus()
	ix := Build(c)
	for _, term := range ix.Terms() {
		list := ix.Postings(term)
		for i := 1; i < len(list); i++ {
			a, b := list[i-1], list[i]
			if a.NormTF() < b.NormTF() {
				t.Fatalf("term %d: postings unsorted at %d (%v < %v)", term, i, a.NormTF(), b.NormTF())
			}
			if a.NormTF() == b.NormTF() && a.Doc >= b.Doc {
				t.Fatalf("term %d: tie not broken by doc ID at %d", term, i)
			}
		}
	}
}

func TestDFMatchesCorpus(t *testing.T) {
	c := testCorpus()
	ix := Build(c)
	for term := corpus.TermID(0); term < 200; term++ {
		if got, want := ix.DF(term), c.DF(term); got != want {
			t.Fatalf("term %d: index DF %d, corpus DF %d", term, got, want)
		}
	}
	if ix.NumDocs() != c.NumDocs() {
		t.Fatalf("NumDocs %d, want %d", ix.NumDocs(), c.NumDocs())
	}
}

func TestTopKIsPrefixAndCorrect(t *testing.T) {
	c := testCorpus()
	ix := Build(c)
	term := c.TermsByDF()[3]
	k := 10
	got := ix.TopK(term, k)
	if len(got) != k {
		t.Fatalf("TopK returned %d results, want %d", len(got), k)
	}
	// Against naive: rank all docs containing the term by NormTF.
	type pair struct {
		doc   corpus.DocID
		score float64
	}
	var all []pair
	for _, p := range c.Postings(term) {
		all = append(all, pair{p.Doc, p.NormTF()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].doc < all[j].doc
	})
	for i := 0; i < k; i++ {
		if got[i].Doc != all[i].doc || math.Abs(got[i].Score-all[i].score) > 1e-12 {
			t.Fatalf("rank %d: got %+v, want %+v", i, got[i], all[i])
		}
	}
}

func TestTopKShortList(t *testing.T) {
	ix := New()
	ix.Add(doc(1, 0, map[corpus.TermID]int{5: 2}))
	got := ix.TopK(5, 10)
	if len(got) != 1 {
		t.Fatalf("TopK = %v", got)
	}
	if got2 := ix.TopK(999, 10); len(got2) != 0 {
		t.Fatalf("TopK of absent term = %v", got2)
	}
}

func TestIncrementalAddMatchesBuild(t *testing.T) {
	c := testCorpus()
	built := Build(c)
	incr := New()
	// Add in a scrambled order; sorted lists must come out identical.
	order := make([]int, c.NumDocs())
	for i := range order {
		order[i] = (i*7 + 3) % c.NumDocs()
	}
	seen := make(map[int]bool)
	for _, i := range order {
		if !seen[i] {
			seen[i] = true
			incr.Add(c.Docs[i])
		}
	}
	for i := range order {
		if !seen[i] {
			incr.Add(c.Docs[i])
		}
	}
	if !reflect.DeepEqual(built.Terms(), incr.Terms()) {
		t.Fatal("term sets differ")
	}
	for _, term := range built.Terms() {
		if !reflect.DeepEqual(built.Postings(term), incr.Postings(term)) {
			t.Fatalf("term %d: lists differ between batch and incremental build", term)
		}
	}
}

func TestSearchMultiTermTFIDF(t *testing.T) {
	ix := New()
	ix.Add(doc(1, 0, map[corpus.TermID]int{10: 4, 11: 1})) // len 5
	ix.Add(doc(2, 0, map[corpus.TermID]int{10: 1}))        // len 1
	ix.Add(doc(3, 0, map[corpus.TermID]int{11: 3, 12: 3})) // len 6
	got := ix.Search([]corpus.TermID{10, 11}, 3, nil)
	if len(got) != 3 {
		t.Fatalf("Search returned %d results", len(got))
	}
	idf10 := rank.IDF(3, 2)
	idf11 := rank.IDF(3, 2)
	want := map[corpus.DocID]float64{
		1: 0.8*idf10 + 0.2*idf11,
		2: 1.0 * idf10,
		3: 0.5 * idf11,
	}
	for _, r := range got {
		if math.Abs(r.Score-want[r.Doc]) > 1e-12 {
			t.Fatalf("doc %d score %v, want %v", r.Doc, r.Score, want[r.Doc])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("Search results not sorted")
		}
	}
}

func TestSearchNormTFScorer(t *testing.T) {
	ix := New()
	ix.Add(doc(1, 0, map[corpus.TermID]int{10: 1, 11: 1}))
	ix.Add(doc(2, 0, map[corpus.TermID]int{10: 2}))
	got := ix.Search([]corpus.TermID{10}, 2, rank.NormTFScorer{})
	if got[0].Doc != 2 || got[0].Score != 1.0 {
		t.Fatalf("got %+v", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	c := testCorpus()
	ix := Build(c)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != ix.NumDocs() || got.NumTerms() != ix.NumTerms() {
		t.Fatalf("round trip: %d docs %d terms, want %d %d", got.NumDocs(), got.NumTerms(), ix.NumDocs(), ix.NumTerms())
	}
	for _, term := range ix.Terms() {
		if !reflect.DeepEqual(got.Postings(term), ix.Postings(term)) {
			t.Fatalf("term %d differs after round trip", term)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not an index"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("empty: err = %v, want ErrBadFormat", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	c := testCorpus()
	ix := Build(c)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{6, buf.Len() / 2, buf.Len() - 1} {
		if _, err := Read(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestZeroValueIndexUsable(t *testing.T) {
	var ix Index
	ix.Add(doc(1, 0, map[corpus.TermID]int{2: 1}))
	if ix.DF(2) != 1 {
		t.Fatal("zero-value Index not usable after Add")
	}
}

func TestEmptyIndexRoundTrip(t *testing.T) {
	ix := New()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != 0 || got.NumTerms() != 0 {
		t.Fatal("empty index round trip not empty")
	}
}
