package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"zerberr/internal/corpus"
)

// Serialization format (all integers unsigned varints):
//
//	magic "ZIDX1" | numDocs | numTerms |
//	  numTerms × ( termID | listLen | listLen × (doc tf docLen) )
//
// Terms are written in ascending ID order; postings keep their
// score-sorted order so a reader can serve top-k immediately.

var indexMagic = []byte("ZIDX1")

// ErrBadFormat reports a corrupted or truncated serialized index.
var ErrBadFormat = errors.New("index: bad serialized format")

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(indexMagic); err != nil {
		return cw.n, err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(ix.numDocs)); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(len(ix.lists))); err != nil {
		return cw.n, err
	}
	for _, t := range ix.Terms() {
		list := ix.lists[t]
		if err := writeUvarint(uint64(t)); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(uint64(len(list))); err != nil {
			return cw.n, err
		}
		for _, p := range list {
			if err := writeUvarint(uint64(p.Doc)); err != nil {
				return cw.n, err
			}
			if err := writeUvarint(uint64(p.TF)); err != nil {
				return cw.n, err
			}
			if err := writeUvarint(uint64(p.DocLen)); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read deserializes an index previously written with WriteTo.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if string(magic) != string(indexMagic) {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	readUvarint := func() (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		return v, nil
	}
	numDocs, err := readUvarint()
	if err != nil {
		return nil, err
	}
	numTerms, err := readUvarint()
	if err != nil {
		return nil, err
	}
	ix := New()
	ix.numDocs = int(numDocs)
	for i := uint64(0); i < numTerms; i++ {
		term, err := readUvarint()
		if err != nil {
			return nil, err
		}
		listLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if listLen > uint64(numDocs) {
			return nil, fmt.Errorf("%w: posting list longer than collection (%d > %d)", ErrBadFormat, listLen, numDocs)
		}
		list := make([]Posting, listLen)
		for j := range list {
			doc, err := readUvarint()
			if err != nil {
				return nil, err
			}
			tf, err := readUvarint()
			if err != nil {
				return nil, err
			}
			docLen, err := readUvarint()
			if err != nil {
				return nil, err
			}
			list[j] = Posting{Doc: corpus.DocID(doc), TF: uint32(tf), DocLen: uint32(docLen)}
		}
		ix.lists[corpus.TermID(term)] = list
	}
	return ix, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
