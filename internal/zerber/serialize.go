package zerber

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"zerberr/internal/corpus"
)

// Serialization format (integers are unsigned varints, floats 64-bit
// IEEE big-endian):
//
//	magic "ZPLN1" | r(8B) | numLists |
//	  numLists × ( numTerms | numTerms × ( termID | p(8B) ) )
//
// The plan is the dictionary artifact group members receive; in a
// deployment it travels encrypted (see crypt.SealBytes).

var planMagic = []byte("ZPLN1")

// ErrBadPlanFormat reports a corrupted or truncated serialized plan.
var ErrBadPlanFormat = errors.New("zerber: bad serialized plan format")

// WriteTo serializes the plan. It implements io.WriterTo.
func (m *MergePlan) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(planMagic); err != nil {
		return cw.n, err
	}
	var f8 [8]byte
	var vbuf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(vbuf[:], v)
		_, err := bw.Write(vbuf[:n])
		return err
	}
	writeFloat := func(v float64) error {
		binary.BigEndian.PutUint64(f8[:], math.Float64bits(v))
		_, err := bw.Write(f8[:])
		return err
	}
	if err := writeFloat(m.r); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(len(m.lists))); err != nil {
		return cw.n, err
	}
	for _, terms := range m.lists {
		if err := writeUvarint(uint64(len(terms))); err != nil {
			return cw.n, err
		}
		for _, t := range terms {
			if err := writeUvarint(uint64(t)); err != nil {
				return cw.n, err
			}
			if err := writeFloat(m.p[t]); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadPlan deserializes a plan written with WriteTo and verifies its
// r-confidentiality invariant before returning it.
func ReadPlan(r io.Reader) (*MergePlan, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(planMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadPlanFormat, err)
	}
	if string(magic) != string(planMagic) {
		return nil, fmt.Errorf("%w: magic %q", ErrBadPlanFormat, magic)
	}
	var f8 [8]byte
	readFloat := func() (float64, error) {
		if _, err := io.ReadFull(br, f8[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadPlanFormat, err)
		}
		return math.Float64frombits(binary.BigEndian.Uint64(f8[:])), nil
	}
	readUvarint := func() (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadPlanFormat, err)
		}
		return v, nil
	}
	rv, err := readFloat()
	if err != nil {
		return nil, err
	}
	if rv <= 0 || math.IsNaN(rv) || math.IsInf(rv, 0) {
		return nil, fmt.Errorf("%w: invalid r %v", ErrBadPlanFormat, rv)
	}
	numLists, err := readUvarint()
	if err != nil {
		return nil, err
	}
	const maxLists = 1 << 28
	if numLists > maxLists {
		return nil, fmt.Errorf("%w: %d lists", ErrBadPlanFormat, numLists)
	}
	m := &MergePlan{
		r:      rv,
		assign: make(map[corpus.TermID]ListID),
		p:      make(map[corpus.TermID]float64),
	}
	for li := uint64(0); li < numLists; li++ {
		n, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if n > maxLists {
			return nil, fmt.Errorf("%w: list %d claims %d terms", ErrBadPlanFormat, li, n)
		}
		terms := make([]corpus.TermID, n)
		for j := range terms {
			tid, err := readUvarint()
			if err != nil {
				return nil, err
			}
			p, err := readFloat()
			if err != nil {
				return nil, err
			}
			t := corpus.TermID(tid)
			terms[j] = t
			m.assign[t] = ListID(li)
			m.p[t] = p
		}
		m.lists = append(m.lists, terms)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPlanFormat, err)
	}
	return m, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
