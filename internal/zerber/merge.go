// Package zerber re-implements the substrate Zerber+R builds on: the
// r-confidential merged inverted index of Zerr et al., "Zerber:
// r-Confidential Indexing for Distributed Documents" (EDBT 2008),
// reference [22] of the Zerber+R paper.
//
// Posting lists of different terms are merged until, per Definition 2,
// the summed term probabilities of each merged list reach 1/r, which
// bounds an adversary's probability amplification for tying a posting
// element to a term. The paper's BFM (Breadth First Merging) scheme
// additionally keeps terms of similar document frequency together, so
// query-time follow-up request counts do not distinguish the merged
// terms (Section 5.2 of Zerber+R).
package zerber

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"zerberr/internal/corpus"
	"zerberr/internal/stats"
)

// ListID identifies a merged posting list.
type ListID uint32

// TermProb is a term with its occurrence probability p_t, the
// normalized document frequency df(t)/|D| of Definition 2.
type TermProb struct {
	Term corpus.TermID
	P    float64
}

// FromCorpus extracts the (term, p_t) pairs of all corpus terms with
// non-zero document frequency, sorted by decreasing probability (ties
// by ascending term ID). This is the published statistic merging
// operates on.
func FromCorpus(c *corpus.Corpus) []TermProb {
	terms := c.TermsByDF()
	out := make([]TermProb, len(terms))
	for i, t := range terms {
		out[i] = TermProb{Term: t, P: c.PT(t)}
	}
	return out
}

// MergePlan maps every term to its merged posting list. It is the
// client-side dictionary artifact created at index initialization.
type MergePlan struct {
	r      float64
	assign map[corpus.TermID]ListID
	lists  [][]corpus.TermID
	p      map[corpus.TermID]float64
}

// ErrInfeasible is returned when the total term probability mass
// cannot support even one r-confidential merged list.
var ErrInfeasible = errors.New("zerber: total term probability below 1/r, no r-confidential merge exists")

// R returns the confidentiality parameter the plan was built for.
func (m *MergePlan) R() float64 { return m.r }

// NumLists returns the number of merged posting lists.
func (m *MergePlan) NumLists() int { return len(m.lists) }

// ListOf returns the merged list holding term t.
func (m *MergePlan) ListOf(t corpus.TermID) (ListID, bool) {
	l, ok := m.assign[t]
	return l, ok
}

// Terms returns the terms merged into list l. The returned slice is
// shared; callers must not modify it.
func (m *MergePlan) Terms(l ListID) []corpus.TermID {
	if int(l) >= len(m.lists) {
		return nil
	}
	return m.lists[l]
}

// P returns the recorded occurrence probability of term t.
func (m *MergePlan) P(t corpus.TermID) float64 { return m.p[t] }

// ListMass returns Σ p_t over the terms of list l (the Definition 2
// left-hand side).
func (m *MergePlan) ListMass(l ListID) float64 {
	sum := 0.0
	for _, t := range m.Terms(l) {
		sum += m.p[t]
	}
	return sum
}

// AllTerms returns every assigned term in ascending ID order.
func (m *MergePlan) AllTerms() []corpus.TermID {
	out := make([]corpus.TermID, 0, len(m.assign))
	for t := range m.assign {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Verify checks the Definition 2 invariant on every merged list
// (Σ p_t ≥ 1/r, up to a small numeric tolerance) plus structural
// consistency (each term in exactly one list, assignments matching the
// list contents).
func (m *MergePlan) Verify() error {
	const tol = 1e-9
	seen := make(map[corpus.TermID]ListID, len(m.assign))
	for li, terms := range m.lists {
		if len(terms) == 0 {
			return fmt.Errorf("zerber: list %d is empty", li)
		}
		sum := 0.0
		for _, t := range terms {
			if prev, dup := seen[t]; dup {
				return fmt.Errorf("zerber: term %d in lists %d and %d", t, prev, li)
			}
			seen[t] = ListID(li)
			if got, ok := m.assign[t]; !ok || got != ListID(li) {
				return fmt.Errorf("zerber: term %d assignment inconsistent", t)
			}
			sum += m.p[t]
		}
		if sum+tol < 1/m.r {
			return fmt.Errorf("zerber: list %d mass %v violates r-confidentiality (need >= %v)", li, sum, 1/m.r)
		}
	}
	if len(seen) != len(m.assign) {
		return fmt.Errorf("zerber: %d terms assigned but %d appear in lists", len(m.assign), len(seen))
	}
	return nil
}

// build closes contiguous runs over the given term order until each
// run reaches the required mass. A trailing underweight run is folded
// into the previously closed list so the invariant holds everywhere.
func build(order []TermProb, r float64, targetMass float64) (*MergePlan, error) {
	if r <= 0 {
		return nil, errors.New("zerber: r must be positive")
	}
	need := 1 / r
	if targetMass < need {
		targetMass = need
	}
	total := 0.0
	for _, tp := range order {
		total += tp.P
	}
	if total < need {
		return nil, ErrInfeasible
	}
	m := &MergePlan{
		r:      r,
		assign: make(map[corpus.TermID]ListID, len(order)),
		p:      make(map[corpus.TermID]float64, len(order)),
	}
	var run []corpus.TermID
	sum := 0.0
	for _, tp := range order {
		run = append(run, tp.Term)
		m.p[tp.Term] = tp.P
		sum += tp.P
		if sum >= targetMass {
			m.lists = append(m.lists, run)
			run = nil
			sum = 0
		}
	}
	if len(run) > 0 {
		if sum >= need {
			m.lists = append(m.lists, run)
		} else {
			// Fold the underweight tail into the last closed list.
			last := len(m.lists) - 1
			m.lists[last] = append(m.lists[last], run...)
		}
	}
	for li, terms := range m.lists {
		for _, t := range terms {
			m.assign[t] = ListID(li)
		}
	}
	return m, nil
}

// BFM performs Breadth First Merging: terms are taken in decreasing
// document-frequency order and cut into contiguous runs, each closed
// as soon as its summed probability reaches 1/r. Contiguity in df
// order is what gives every merged list terms of similar frequency
// distribution, the property Zerber+R's query-answering heuristic
// relies on.
func BFM(order []TermProb, r float64) (*MergePlan, error) {
	sorted := sortByP(order)
	return build(sorted, r, 0)
}

// BFMTarget is BFM with a bound on the number of merged lists: runs
// are widened uniformly (to mass max(total/maxLists, 1/r)) so at most
// maxLists lists are produced. The paper's evaluation uses indexes
// with 32K merged posting lists.
func BFMTarget(order []TermProb, r float64, maxLists int) (*MergePlan, error) {
	if maxLists <= 0 {
		return nil, errors.New("zerber: maxLists must be positive")
	}
	sorted := sortByP(order)
	total := 0.0
	for _, tp := range sorted {
		total += tp.P
	}
	return build(sorted, r, total/float64(maxLists))
}

// GreedyMerge is the balanced-greedy baseline (LPT scheduling): it
// fixes a list count near half the feasible maximum and assigns each
// term, in decreasing probability order, to the currently lightest
// list. The result balances list masses but mixes frequency tiers
// inside each list — the opposite trade to BFM, quantified by the
// ablation experiment. Any list left under 1/r is folded into the
// heaviest list so Definition 2 still holds everywhere.
func GreedyMerge(order []TermProb, r float64) (*MergePlan, error) {
	if r <= 0 {
		return nil, errors.New("zerber: r must be positive")
	}
	sorted := sortByP(order)
	need := 1 / r
	total := 0.0
	for _, tp := range sorted {
		total += tp.P
	}
	if total < need {
		return nil, ErrInfeasible
	}
	numLists := int(total * r / 2)
	if numLists < 1 {
		numLists = 1
	}
	if numLists > len(sorted) {
		numLists = len(sorted)
	}
	m := &MergePlan{
		r:      r,
		assign: make(map[corpus.TermID]ListID, len(sorted)),
		p:      make(map[corpus.TermID]float64, len(sorted)),
	}
	m.lists = make([][]corpus.TermID, numLists)
	masses := make([]float64, numLists)
	// A min-heap over (mass, list index) keeps the lightest list at
	// the root.
	h := &massHeap{}
	for i := 0; i < numLists; i++ {
		heap.Push(h, massEntry{mass: 0, list: i})
	}
	for _, tp := range sorted {
		m.p[tp.Term] = tp.P
		e := heap.Pop(h).(massEntry)
		m.lists[e.list] = append(m.lists[e.list], tp.Term)
		masses[e.list] += tp.P
		e.mass = masses[e.list]
		heap.Push(h, e)
	}
	// Chain underweight lists together until each combination reaches
	// 1/r, so no single list absorbs all the shortfall.
	kept := make([][]corpus.TermID, 0, numLists)
	var pending []corpus.TermID
	pendingMass := 0.0
	for li, terms := range m.lists {
		switch {
		case len(terms) == 0:
			// skip empty lists (more lists than terms)
		case masses[li] >= need:
			kept = append(kept, terms)
		default:
			pending = append(pending, terms...)
			pendingMass += masses[li]
			if pendingMass >= need {
				kept = append(kept, pending)
				pending = nil
				pendingMass = 0
			}
		}
	}
	m.lists = kept
	if len(pending) > 0 {
		// A final underweight remainder folds into the last kept list.
		if len(m.lists) == 0 {
			m.lists = append(m.lists, nil)
		}
		last := len(m.lists) - 1
		m.lists[last] = append(m.lists[last], pending...)
	}
	for li, terms := range m.lists {
		for _, t := range terms {
			m.assign[t] = ListID(li)
		}
	}
	return m, nil
}

// massEntry is one heap node of GreedyMerge.
type massEntry struct {
	mass float64
	list int
}

type massHeap []massEntry

func (h massHeap) Len() int { return len(h) }
func (h massHeap) Less(i, j int) bool {
	if h[i].mass != h[j].mass {
		return h[i].mass < h[j].mass
	}
	return h[i].list < h[j].list
}
func (h massHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *massHeap) Push(x interface{}) { *h = append(*h, x.(massEntry)) }
func (h *massHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RandomMerge is the ablation baseline: terms are shuffled before the
// contiguous cut, so merged lists mix arbitrary frequencies. It still
// satisfies Definition 2 but leaks through follow-up request counts
// (the attack Section 5.2 of the paper describes).
func RandomMerge(order []TermProb, r float64, seed uint64) (*MergePlan, error) {
	shuffled := append([]TermProb(nil), order...)
	g := stats.NewRNG(seed).Split("randommerge")
	g.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	return build(shuffled, r, 0)
}

// sortByP returns the pairs sorted by decreasing probability, ties by
// ascending term ID, without modifying the input.
func sortByP(order []TermProb) []TermProb {
	sorted := append([]TermProb(nil), order...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].P != sorted[j].P {
			return sorted[i].P > sorted[j].P
		}
		return sorted[i].Term < sorted[j].Term
	})
	return sorted
}
