package zerber

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"zerberr/internal/corpus"
	"zerberr/internal/stats"
)

func testTerms(n int, seed uint64) []TermProb {
	g := stats.NewRNG(seed)
	z := stats.NewZipf(g, n, 1.0)
	out := make([]TermProb, n)
	for i := range out {
		// Zipf-ish probabilities scaled to look like document
		// frequencies: head terms near 0.9, tail near 1/n.
		out[i] = TermProb{Term: corpus.TermID(i), P: math.Min(0.95, 200*z.Prob(i))}
	}
	return out
}

func testCorpus() *corpus.Corpus {
	p := corpus.ProfileStudIP()
	p.NumDocs = 300
	p.VocabSize = 3000
	return corpus.Generate(p, 55)
}

func TestBFMSatisfiesDefinition2(t *testing.T) {
	for _, r := range []float64{1.5, 4, 16, 64} {
		plan, err := BFM(testTerms(2000, 1), r)
		if err != nil {
			t.Fatalf("r=%v: %v", r, err)
		}
		if err := plan.Verify(); err != nil {
			t.Fatalf("r=%v: %v", r, err)
		}
		for l := 0; l < plan.NumLists(); l++ {
			if mass := plan.ListMass(ListID(l)); mass+1e-9 < 1/r {
				t.Fatalf("r=%v list %d mass %v < 1/r", r, l, mass)
			}
		}
	}
}

func TestBFMCoversAllTerms(t *testing.T) {
	terms := testTerms(500, 2)
	plan, err := BFM(terms, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range terms {
		if _, ok := plan.ListOf(tp.Term); !ok {
			t.Fatalf("term %d not assigned", tp.Term)
		}
	}
	if got := len(plan.AllTerms()); got != len(terms) {
		t.Fatalf("AllTerms has %d entries, want %d", got, len(terms))
	}
}

func TestBFMGroupsSimilarFrequencies(t *testing.T) {
	// BFM lists must be contiguous runs in df order: the max p of list
	// i+1 must not exceed the min p of list i.
	plan, err := BFM(testTerms(2000, 3), 16)
	if err != nil {
		t.Fatal(err)
	}
	prevMin := math.Inf(1)
	for l := 0; l < plan.NumLists(); l++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, term := range plan.Terms(ListID(l)) {
			p := plan.P(term)
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
		if hi > prevMin+1e-12 {
			t.Fatalf("list %d max p %v exceeds previous list min %v: not frequency-contiguous", l, hi, prevMin)
		}
		prevMin = lo
	}
}

func TestBFMFrequentTermsAloneInList(t *testing.T) {
	// A term with p >= 1/r should close its own list immediately.
	terms := []TermProb{{0, 0.9}, {1, 0.8}, {2, 0.05}, {3, 0.04}, {4, 0.5}}
	plan, err := BFM(terms, 2) // need mass 0.5
	if err != nil {
		t.Fatal(err)
	}
	for _, head := range []corpus.TermID{0, 1} {
		l, _ := plan.ListOf(head)
		if got := len(plan.Terms(l)); got != 1 {
			t.Fatalf("head term %d shares a list with %d terms", head, got-1)
		}
	}
	// Term 4 closes its own run but then absorbs the underweight tail
	// (terms 2 and 3), so it ends up with exactly those companions.
	l4, _ := plan.ListOf(4)
	if got := len(plan.Terms(l4)); got != 3 {
		t.Fatalf("last list has %d terms, want 3 (term 4 + folded tail)", got)
	}
}

func TestBFMFoldsUnderweightTail(t *testing.T) {
	terms := []TermProb{{0, 0.6}, {1, 0.6}, {2, 0.01}}
	plan, err := BFM(terms, 2) // need 0.5; term 2 alone would violate
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	l2, _ := plan.ListOf(2)
	if len(plan.Terms(l2)) < 2 {
		t.Fatal("underweight tail term got its own list")
	}
}

func TestBFMInfeasible(t *testing.T) {
	terms := []TermProb{{0, 0.01}, {1, 0.01}}
	if _, err := BFM(terms, 2); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := BFM(terms, -1); err == nil {
		t.Fatal("negative r accepted")
	}
}

func TestBFMTargetBoundsListCount(t *testing.T) {
	terms := testTerms(3000, 4)
	plan, err := BFMTarget(terms, 64, 40)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumLists() > 40 {
		t.Fatalf("got %d lists, want <= 40", plan.NumLists())
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := BFMTarget(terms, 64, 0); err == nil {
		t.Fatal("maxLists=0 accepted")
	}
}

func TestRandomMergeSatisfiesDefinition2(t *testing.T) {
	plan, err := RandomMerge(testTerms(2000, 5), 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMergeMixesFrequencies(t *testing.T) {
	// Unlike BFM, random merging should produce at least one list
	// whose term probabilities span a wide ratio.
	plan, err := RandomMerge(testTerms(2000, 6), 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	mixed := false
	for l := 0; l < plan.NumLists(); l++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, term := range plan.Terms(ListID(l)) {
			p := plan.P(term)
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
		if len(plan.Terms(ListID(l))) > 1 && hi/lo > 20 {
			mixed = true
			break
		}
	}
	if !mixed {
		t.Fatal("random merge produced only frequency-homogeneous lists")
	}
}

func TestRandomMergeDeterministicPerSeed(t *testing.T) {
	terms := testTerms(300, 7)
	a, err := RandomMerge(terms, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomMerge(terms, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range terms {
		la, _ := a.ListOf(tp.Term)
		lb, _ := b.ListOf(tp.Term)
		if la != lb {
			t.Fatal("same seed produced different plans")
		}
	}
}

func TestFromCorpusSortedAndComplete(t *testing.T) {
	c := testCorpus()
	tps := FromCorpus(c)
	if len(tps) != c.DistinctTerms() {
		t.Fatalf("FromCorpus has %d terms, corpus has %d distinct", len(tps), c.DistinctTerms())
	}
	for i := 1; i < len(tps); i++ {
		if tps[i].P > tps[i-1].P {
			t.Fatal("FromCorpus not sorted by decreasing probability")
		}
	}
	for _, tp := range tps[:50] {
		if math.Abs(tp.P-c.PT(tp.Term)) > 1e-12 {
			t.Fatalf("term %d: p=%v, corpus PT=%v", tp.Term, tp.P, c.PT(tp.Term))
		}
	}
}

func TestEndToEndCorpusMerge(t *testing.T) {
	c := testCorpus()
	plan, err := BFM(FromCorpus(c), 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if plan.NumLists() < 2 {
		t.Fatalf("only %d merged lists for a 3000-term corpus", plan.NumLists())
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	plan, err := BFM(testTerms(100, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: shrink a recorded probability so a list underflows.
	victim := plan.lists[len(plan.lists)-1][0]
	plan.p[victim] = 0
	if err := plan.Verify(); err == nil {
		t.Fatal("Verify accepted an underweight list")
	}
}

func TestVerifyCatchesDuplicateAssignment(t *testing.T) {
	plan, err := BFM(testTerms(100, 9), 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumLists() < 2 {
		t.Skip("need two lists")
	}
	dup := plan.lists[0][0]
	plan.lists[1] = append(plan.lists[1], dup)
	if err := plan.Verify(); err == nil {
		t.Fatal("Verify accepted a duplicated term")
	}
}

func TestPlanSerializeRoundTrip(t *testing.T) {
	plan, err := BFM(FromCorpus(testCorpus()), 32)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := plan.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d, buffer %d", n, buf.Len())
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLists() != plan.NumLists() || got.R() != plan.R() {
		t.Fatal("plan shape changed in round trip")
	}
	for _, term := range plan.AllTerms() {
		la, _ := plan.ListOf(term)
		lb, ok := got.ListOf(term)
		if !ok || la != lb {
			t.Fatalf("term %d: assignment changed in round trip", term)
		}
	}
}

func TestReadPlanRejectsGarbage(t *testing.T) {
	if _, err := ReadPlan(bytes.NewReader([]byte("junk plan bytes"))); !errors.Is(err, ErrBadPlanFormat) {
		t.Fatalf("err = %v, want ErrBadPlanFormat", err)
	}
}

func TestReadPlanRejectsTruncated(t *testing.T) {
	plan, err := BFM(testTerms(200, 10), 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := plan.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{4, 12, buf.Len() / 2, buf.Len() - 2} {
		if _, err := ReadPlan(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestMergeInvariantQuick(t *testing.T) {
	f := func(seed uint64, rRaw uint8, nRaw uint16) bool {
		r := 1.5 + float64(rRaw%40)
		n := 50 + int(nRaw%1000)
		plan, err := BFM(testTerms(n, seed), r)
		if errors.Is(err, ErrInfeasible) {
			return true
		}
		if err != nil {
			return false
		}
		return plan.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMergeSatisfiesDefinition2(t *testing.T) {
	for _, r := range []float64{2, 8, 32} {
		plan, err := GreedyMerge(testTerms(1500, 30), r)
		if err != nil {
			t.Fatalf("r=%v: %v", r, err)
		}
		if err := plan.Verify(); err != nil {
			t.Fatalf("r=%v: %v", r, err)
		}
	}
}

func TestGreedyMergeNoGiantLists(t *testing.T) {
	terms := testTerms(2000, 31)
	const r = 16.0
	plan, err := GreedyMerge(terms, r)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumLists() < 3 {
		t.Skipf("only %d lists", plan.NumLists())
	}
	maxItem := 0.0
	for _, tp := range terms {
		maxItem = math.Max(maxItem, tp.P)
	}
	// Underweight folding must chain, never pile everything into one
	// list: every list stays below one max item plus a few quanta.
	for l := 0; l < plan.NumLists(); l++ {
		if m := plan.ListMass(ListID(l)); m > maxItem+3/r {
			t.Fatalf("list %d mass %v exceeds max item %v + 3/r", l, m, maxItem)
		}
	}
}

func TestGreedyMergeListsOverlapInFrequency(t *testing.T) {
	// BFM partitions the frequency axis into disjoint contiguous
	// bands; balanced greedy interleaves, so different lists cover
	// overlapping probability ranges.
	plan, err := GreedyMerge(testTerms(2000, 32), 16)
	if err != nil {
		t.Fatal(err)
	}
	type rng struct{ lo, hi float64 }
	var ranges []rng
	for l := 0; l < plan.NumLists(); l++ {
		terms := plan.Terms(ListID(l))
		if len(terms) < 2 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, term := range terms {
			p := plan.P(term)
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
		ranges = append(ranges, rng{lo, hi})
	}
	if len(ranges) < 2 {
		t.Skip("not enough multi-term lists")
	}
	overlaps := 0
	for i := 1; i < len(ranges); i++ {
		a, b := ranges[i-1], ranges[i]
		if math.Min(a.hi, b.hi) > math.Max(a.lo, b.lo) {
			overlaps++
		}
	}
	if overlaps < len(ranges)/4 {
		t.Fatalf("only %d/%d adjacent list pairs overlap in frequency — looks contiguous like BFM", overlaps, len(ranges)-1)
	}
}

func TestGreedyMergeCoversAllTerms(t *testing.T) {
	terms := testTerms(700, 33)
	plan, err := GreedyMerge(terms, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range terms {
		if _, ok := plan.ListOf(tp.Term); !ok {
			t.Fatalf("term %d unassigned", tp.Term)
		}
	}
}

func TestGreedyMergeInfeasible(t *testing.T) {
	if _, err := GreedyMerge([]TermProb{{0, 0.01}}, 2); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	if _, err := GreedyMerge(testTerms(10, 34), -2); err == nil {
		t.Fatal("negative r accepted")
	}
}
