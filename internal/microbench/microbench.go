// Package microbench hosts the key micro-benchmarks in library form,
// so the go-test bench harness (bench_store_test.go, bench_test.go)
// and `zerber-bench -json` execute the same code: what CI gates with
// benchstat and what BENCH_*.json snapshots record is one suite, not
// two drifting copies.
//
// Every benchmark is an ordinary func(*testing.B); the test files
// mount them under b.Run sub-benchmarks and zerber-bench drives them
// through testing.Benchmark. Shared fixtures (the 120k-element list,
// the indexed search system) are built once per process.
package microbench

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	zerberr "zerberr"
	"zerberr/internal/cache"
	"zerberr/internal/client"
	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/obs"
	"zerberr/internal/proof"
	"zerberr/internal/replica"
	"zerberr/internal/server"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

// Bench is one named micro-benchmark of the suite.
type Bench struct {
	Name string
	F    func(b *testing.B)
}

// Suite lists the benchmarks `zerber-bench -json` runs, in order. The
// names mirror the go-test benchmark tree (BenchmarkX/sub).
func Suite() []Bench {
	return []Bench{
		{"QueryFollowup/indexed", QueryFollowupIndexed},
		{"QueryFollowup/scan", QueryFollowupScan},
		{"QueryCached/hit", QueryCachedHit},
		{"QueryCached/uncached", QueryCachedUncached},
		{"QueryInstrumented/hit", QueryInstrumentedHit},
		{"ProofQuery/proved", ProofQueryProved},
		{"ProofQuery/verify", ProofQueryVerify},
		{"StoreAppend", StoreAppend},
		{"StoreAppendParallel/window=0", StoreAppendParallelSync},
		{"StoreAppendParallel/grouped", StoreAppendParallelGrouped},
		{"StoreMemoryInsert", MemoryInsert},
		{"StoreRecover/first-query/mmap", StoreRecoverMmap},
		{"StoreRecover/first-query/readall", StoreRecoverReadAll},
		{"SearchSerialVsBatched/inproc/serial", SearchSerial},
		{"SearchSerialVsBatched/inproc/batched", SearchBatched},
		{"HedgedQuery/healthy", HedgedQueryHealthy},
		{"HedgedQuery/failover", HedgedQueryFailover},
	}
}

// --- shared 120k-element list fixture -------------------------------

const (
	fixtureElems  = 120_000
	fixtureGroups = 8
	fixtureList   = zerber.ListID(7)
)

// followupRounds is the Section 5.2 doubling tail a progressive query
// replays at depth: the windows a repeated query re-requests.
var followupRounds = []struct{ Offset, Count int }{
	{10_000, 1_000},
	{20_000, 2_000},
	{40_000, 4_000},
}

var fixtureAllowed = map[int]bool{0: true, 2: true, 4: true, 6: true}

type listFixture struct {
	mem   *store.Memory
	elems []store.Element // rank-sorted copy for the scan baseline
}

var (
	listOnce sync.Once
	listFix  *listFixture
)

// bigList builds (once) a 120k-element merged list spread over 8
// groups, warmed so the per-group runs are compacted, plus the
// rank-sorted slice the scan baseline walks.
func bigList() *listFixture {
	listOnce.Do(func() {
		rng := rand.New(rand.NewSource(3))
		m := store.NewMemory()
		elems := make([]store.Element, fixtureElems)
		for i := range elems {
			sealed := make([]byte, 64)
			rng.Read(sealed)
			elems[i] = store.Element{Sealed: sealed, TRS: rng.Float64(), Group: i % fixtureGroups}
			if err := m.Insert(fixtureList, elems[i]); err != nil {
				panic(err)
			}
		}
		// Fold the pending buffers in, as a warmed server would have,
		// and pre-sort the baseline's slice: the old path paid its full
		// re-sort on the first read after an insert, so steady state is
		// the favorable comparison for it.
		if _, err := m.Query(fixtureList, fixtureAllowed, 0, 1); err != nil {
			panic(err)
		}
		sort.SliceStable(elems, func(i, j int) bool { return store.Less(elems[i], elems[j]) })
		listFix = &listFixture{mem: m, elems: elems}
	})
	return listFix
}

// ScanQuery is the pre-rework read path, kept as the benchmark
// baseline (and mirrored by the store's differential-test oracle): a
// filter-scan over the whole sorted merged list with a per-element
// payload copy for the returned window.
func ScanQuery(elems []store.Element, allowed map[int]bool, offset, count int) ([]store.Element, bool) {
	var out []store.Element
	seen := 0
	for _, el := range elems {
		if !allowed[el.Group] {
			continue
		}
		if seen >= offset {
			if len(out) >= count {
				return out, false
			}
			cp := el
			cp.Sealed = append([]byte(nil), el.Sealed...)
			out = append(out, cp)
		}
		seen++
	}
	return out, true
}

// QueryFollowupIndexed measures the per-group sorted read path on the
// deep follow-up rounds (each iteration runs the three rounds).
func QueryFollowupIndexed(b *testing.B) {
	f := bigList()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range followupRounds {
			res, err := f.mem.Query(fixtureList, fixtureAllowed, r.Offset, r.Count)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Elements) != r.Count {
				b.Fatalf("offset %d: %d elements", r.Offset, len(res.Elements))
			}
		}
	}
}

// QueryFollowupScan is the same workload over the scan baseline.
func QueryFollowupScan(b *testing.B) {
	f := bigList()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range followupRounds {
			out, _ := ScanQuery(f.elems, fixtureAllowed, r.Offset, r.Count)
			if len(out) != r.Count {
				b.Fatalf("offset %d: %d elements", r.Offset, len(out))
			}
		}
	}
}

// --- cached-server fixture ------------------------------------------

type serverFixture struct {
	cached       *server.Server
	uncached     *server.Server
	instrumented *server.Server
	toks         []crypt.Token
}

var (
	srvOnce sync.Once
	srvFix  *serverFixture
)

// servers builds (once) two servers over the same warmed 120k-element
// backend — one with a result cache, one without — and a logged-in
// token set covering half the groups, mirroring the follow-up
// workload's visibility.
func servers() *serverFixture {
	srvOnce.Do(func() {
		f := bigList()
		secret := []byte("microbench-secret")
		cached := server.NewWithBackend(secret, time.Hour, f.mem)
		cached.SetCache(cache.New(64 << 20))
		uncached := server.NewWithBackend(secret, time.Hour, f.mem)
		// The instrumented server is the cached one with the full ops
		// plane armed: a live metrics registry (per-round histogram
		// observations on every query) and admission control with a
		// rate far above the workload, so every op pays the token-bucket
		// check without ever being refused. Its delta over QueryCached/hit
		// is the ops plane's whole hot-path cost.
		instrumented := server.NewWithBackend(secret, time.Hour, f.mem)
		instrumented.SetCache(cache.New(64 << 20))
		instrumented.SetObs(obs.NewRegistry())
		instrumented.SetAdmission(&server.AdmissionConfig{PerUserRate: 1e12, MaxInFlight: 1 << 20})
		cached.RegisterUser("bench", 0, 2, 4, 6)
		instrumented.RegisterUser("bench", 0, 2, 4, 6)
		toks, err := cached.Login(context.Background(), "bench")
		if err != nil {
			panic(err)
		}
		srvFix = &serverFixture{cached: cached, uncached: uncached, instrumented: instrumented, toks: toks}
	})
	return srvFix
}

// queryCached drives the repeated-query path — the same deep follow-up
// windows over and over, as hot terms see — against the given server.
func queryCached(b *testing.B, s *server.Server, toks []crypt.Token) {
	ctx := context.Background()
	// Warm outside the timer (fills the cache on the cached server).
	for _, r := range followupRounds {
		if _, err := s.Query(ctx, toks, fixtureList, r.Offset, r.Count); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range followupRounds {
			resp, err := s.Query(ctx, toks, fixtureList, r.Offset, r.Count)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Elements) != r.Count {
				b.Fatalf("offset %d: %d elements", r.Offset, len(resp.Elements))
			}
		}
	}
}

// QueryCachedHit is the repeated-query path with the result cache on:
// after the warm-up, every window is a version-checked cache hit.
func QueryCachedHit(b *testing.B) {
	f := servers()
	queryCached(b, f.cached, f.toks)
}

// QueryCachedUncached is the identical workload with no cache — every
// repetition pays the full probe-and-merge read.
func QueryCachedUncached(b *testing.B) {
	f := servers()
	queryCached(b, f.uncached, f.toks)
}

// QueryInstrumentedHit is QueryCachedHit with metrics and admission
// armed: every query passes the per-user token bucket and lands a
// histogram observation. CI compares it against QueryCached/hit to
// bound the ops plane's hot-path overhead.
func QueryInstrumentedHit(b *testing.B) {
	f := servers()
	queryCached(b, f.instrumented, f.toks)
}

// --- verifiable reads -----------------------------------------------

// ProofQueryProved prices the audit path at steady state: QueryProved
// over the warmed 120k-element list, replaying the same deep follow-up
// windows as QueryCached. The commitment's leaves are materialized
// once outside the timer (first-touch cost, paid per list lifetime),
// so the measured cost is window assembly plus range-multiproof
// generation — the delta over QueryFollowup/indexed is what an audited
// window costs the server.
func ProofQueryProved(b *testing.B) {
	f := bigList()
	if _, err := f.mem.QueryProved(fixtureList, fixtureAllowed, 0, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range followupRounds {
			res, err := f.mem.QueryProved(fixtureList, fixtureAllowed, r.Offset, r.Count)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Elements) != r.Count || res.Proof == nil {
				b.Fatalf("offset %d: %d elements, proof %v", r.Offset, len(res.Elements), res.Proof != nil)
			}
		}
	}
}

// ProofQueryVerify prices the client side: VerifyWindow over the
// deepest follow-up window (4k elements plus boundaries) — the
// per-round cost a WithProof search pays before decrypting anything.
func ProofQueryVerify(b *testing.B) {
	f := bigList()
	r := followupRounds[len(followupRounds)-1]
	res, err := f.mem.QueryProved(fixtureList, fixtureAllowed, r.Offset, r.Count)
	if err != nil {
		b.Fatal(err)
	}
	elems := make([]proof.WindowElement, len(res.Elements))
	for i, el := range res.Elements {
		elems[i] = proof.WindowElement{TRS: el.TRS, Sealed: el.Sealed, Group: el.Group}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proof.VerifyWindow(res.Proof, fixtureAllowed, r.Offset, r.Count, elems, res.Exhausted, res.Version); err != nil {
			b.Fatal(err)
		}
	}
}

// --- storage-engine appends -----------------------------------------

// BenchElement builds a posting element with a sealed payload of
// realistic size (crypt.SealElement emits ~60-70 bytes). Exported so
// the go-test bench files (BenchmarkStoreRecover) feed the same
// element shape this suite appends.
func BenchElement(i int) store.Element {
	sealed := make([]byte, 64)
	for j := range sealed {
		sealed[j] = byte(i >> (j % 4 * 8))
	}
	return store.Element{Sealed: sealed, TRS: float64(i % 997), Group: i % 8}
}

// writeFsync makes the write benchmarks pay an fsync per commit; see
// SetWriteFsync.
var writeFsync bool

// SetWriteFsync switches the write benchmarks (StoreAppend,
// StoreAppendParallel) to FsyncEach mode. `zerber-bench -fsync-each`
// sets it before the suite runs, so JSON snapshots can record the
// real-disk durability cost — and the amortization group commit buys
// against it — instead of only the buffered-write path.
func SetWriteFsync(on bool) { writeFsync = on }

// StoreAppend measures the durable insert hot path (one WAL record
// framed, checksummed and pushed per op; no snapshots; fsync per op
// only under SetWriteFsync).
func StoreAppend(b *testing.B) { storeAppend(b, writeFsync) }

// StoreAppendFsync is StoreAppend with an fsync per operation.
func StoreAppendFsync(b *testing.B) { storeAppend(b, true) }

func storeAppend(b *testing.B, fsync bool) {
	dir, err := os.MkdirTemp("", "microbench-wal-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	d, err := store.OpenDurable(dir, store.Options{SnapshotEvery: -1, FsyncEach: fsync})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Insert(zerber.ListID(i%64), BenchElement(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// StoreAppendParallelSync measures concurrent durable inserts through
// the synchronous per-operation commit path (GroupCommitWindow zero):
// every appender pays its own WAL write (and fsync, under
// SetWriteFsync) while holding the store lock.
func StoreAppendParallelSync(b *testing.B) { storeAppendParallel(b, 0) }

// StoreAppendParallelGrouped is the same concurrent workload through
// the group committer at the default window: appenders publish into
// the commit queue and share one coalesced write (and one fsync) per
// batch. The CI gate compares it against StoreMemoryInsert — the
// write-path overhaul's whole point is keeping this within a small
// factor of the RAM-only floor.
func StoreAppendParallelGrouped(b *testing.B) {
	storeAppendParallel(b, store.DefaultCommitWindow)
}

func storeAppendParallel(b *testing.B, window time.Duration) {
	dir, err := os.MkdirTemp("", "microbench-wal-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	d, err := store.OpenDurable(dir, store.Options{
		SnapshotEvery:     -1,
		FsyncEach:         writeFsync,
		GroupCommitWindow: window,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	var ctr atomic.Int64
	b.ReportAllocs()
	// A shard serves many concurrent request handlers regardless of
	// core count — oversubscribe so the commit queue sees the
	// contention group commit exists for (GOMAXPROCS writers on a
	// small box degenerate to one record per batch).
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(ctr.Add(1))
			if err := d.Insert(zerber.ListID(i%64), BenchElement(i)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// MemoryInsert is the RAM-only insert floor under StoreAppend.
func MemoryInsert(b *testing.B) {
	m := store.NewMemory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Insert(zerber.ListID(i%64), BenchElement(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- cold-start recovery --------------------------------------------

const (
	recoverElems = 100_000
	recoverLists = 512
)

var (
	recoverOnce sync.Once
	recoverDir  string
	recoverErr  error
)

// recoverFixture builds (once) a data dir whose snapshot holds 100k
// elements across 512 lists, the cold-start workload of the recovery
// benchmarks. The dir outlives the benchmarks (shared fixture, no
// per-run cleanup hook) and is reclaimed with the OS temp dir.
func recoverFixture() (string, error) {
	recoverOnce.Do(func() {
		dir, err := os.MkdirTemp("", "microbench-recover-*")
		if err != nil {
			recoverErr = err
			return
		}
		d, err := store.OpenDurable(dir, store.Options{SnapshotEvery: -1})
		if err != nil {
			recoverErr = err
			return
		}
		batch := make([]store.BatchInsert, 0, 4096)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			err := d.InsertBatch(batch)
			batch = batch[:0]
			return err
		}
		for i := 0; i < recoverElems; i++ {
			batch = append(batch, store.BatchInsert{
				List:    zerber.ListID(i % recoverLists),
				Element: BenchElement(i),
			})
			if len(batch) == cap(batch) {
				if recoverErr = flush(); recoverErr != nil {
					return
				}
			}
		}
		if recoverErr = flush(); recoverErr != nil {
			return
		}
		if recoverErr = d.Snapshot(); recoverErr != nil {
			return
		}
		if recoverErr = d.Close(); recoverErr != nil {
			return
		}
		recoverDir = dir
	})
	return recoverDir, recoverErr
}

// StoreRecoverMmap measures time-to-first-query after a restart on the
// default recovery path: the snapshot is mmapped, framing is validated
// in one sequential scan, and only the queried list's elements are
// decoded — the other 511 lists stay raw bytes.
func StoreRecoverMmap(b *testing.B) { storeRecover(b, false) }

// StoreRecoverReadAll is the same cold start with SnapshotReadAll: the
// whole snapshot is read into the heap up front (the pre-mmap
// behavior, kept as the baseline the CI gate compares against).
func StoreRecoverReadAll(b *testing.B) { storeRecover(b, true) }

func storeRecover(b *testing.B, readAll bool) {
	dir, err := recoverFixture()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := store.OpenDurable(dir, store.Options{SnapshotEvery: -1, SnapshotReadAll: readAll})
		if err != nil {
			b.Fatal(err)
		}
		res, err := d.Query(zerber.ListID(i%recoverLists), nil, 0, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Elements) != 10 {
			b.Fatalf("first query returned %d elements", len(res.Elements))
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- hedged replica reads -------------------------------------------

// downTransport is a permanently dead shard member: every call is an
// unclassified error, which the replica layer treats as a fault worth
// failing over.
type downTransport struct{}

var errDown = errors.New("microbench: member down")

func (downTransport) Login(context.Context, string) ([]crypt.Token, error) { return nil, errDown }
func (downTransport) Insert(context.Context, crypt.Token, zerber.ListID, server.StoredElement) error {
	return errDown
}
func (downTransport) Query(context.Context, []crypt.Token, zerber.ListID, int, int) (server.QueryResponse, int, error) {
	return server.QueryResponse{}, 0, errDown
}
func (downTransport) Remove(context.Context, crypt.Token, zerber.ListID, []byte) error {
	return errDown
}
func (downTransport) QueryBatch(context.Context, []crypt.Token, []server.ListQuery) (client.BatchQueryResult, error) {
	return client.BatchQueryResult{}, errDown
}
func (downTransport) InsertBatch(context.Context, crypt.Token, []server.InsertOp) error {
	return errDown
}
func (downTransport) RemoveBatch(context.Context, crypt.Token, []server.RemoveOp) error {
	return errDown
}

type replicaFixture struct {
	healthy  *replica.Set // live primary: hedge timer armed, never fires
	failover *replica.Set // dead primary: every read pays the failover hop
}

var (
	replMembers = 2
	replOnce    sync.Once
	replFix     *replicaFixture
)

// SetReplicaMembers sizes the hedged-query fixture's replica sets
// (primary + N-1 replicas; minimum 2). Call before the first
// HedgedQuery benchmark runs — `zerber-bench -replicas N` does.
func SetReplicaMembers(n int) {
	if n >= 2 {
		replMembers = n
	}
}

// replicaSets builds (once) two replica sets over the shared warmed
// backend: one healthy (the hedging machinery's steady-state overhead)
// and one whose primary is down (the failover path's cost). Every
// member is its own server over the same backend, so answers are
// identical regardless of who wins the race.
func replicaSets() *replicaFixture {
	replOnce.Do(func() {
		f := servers()
		secret := []byte("microbench-secret")
		replicas := make([]client.Transport, replMembers-1)
		for i := range replicas {
			replicas[i] = client.Local{S: server.NewWithBackend(secret, time.Hour, bigList().mem)}
		}
		healthy, err := replica.NewSet(client.Local{S: f.cached}, replicas...)
		if err != nil {
			panic(err)
		}
		failover, err := replica.NewSet(downTransport{}, replicas...)
		if err != nil {
			panic(err)
		}
		replFix = &replicaFixture{healthy: healthy, failover: failover}
	})
	return replFix
}

// hedgedQuery drives the deep follow-up window through a replica set.
func hedgedQuery(b *testing.B, set *replica.Set) {
	f := servers()
	ctx := context.Background()
	r := followupRounds[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, _, err := set.Query(ctx, f.toks, fixtureList, r.Offset, r.Count)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Elements) != r.Count {
			b.Fatalf("%d elements", len(resp.Elements))
		}
	}
}

// HedgedQueryHealthy measures a replica-set read with a healthy
// primary: the hedge timer is armed and torn down every read but never
// fires, so the delta over QueryCached/hit is the hedging machinery's
// steady-state cost.
func HedgedQueryHealthy(b *testing.B) { hedgedQuery(b, replicaSets().healthy) }

// HedgedQueryFailover is the same read with the primary down: the
// first reads pay the fault plus the failover hop, then demotion
// (replica.DemoteAfter) routes subsequent reads straight to the
// replica — the steady-state price of riding out a dead primary.
func HedgedQueryFailover(b *testing.B) { hedgedQuery(b, replicaSets().failover) }

// --- end-to-end search ----------------------------------------------

type searchFixture struct {
	sys     *zerberr.System
	cl      *client.Client
	queries [][]corpus.TermID
}

var (
	searchOnce sync.Once
	searchFix  *searchFixture
	searchErr  error
)

// searchSystem builds (once) a small indexed deployment and a
// logged-in client, the multi-term query workload of the
// serial-vs-batched comparison.
func searchSystem() (*searchFixture, error) {
	searchOnce.Do(func() {
		p := corpus.ProfileStudIP()
		p.NumDocs = 400
		p.VocabSize = 4000
		c := corpus.Generate(p, 5)
		cfg := zerberr.DefaultConfig()
		cfg.Seed = 5
		cfg.Codec = crypt.Compact64Codec{}
		sys, err := zerberr.Setup(c, cfg)
		if err == nil {
			err = sys.IndexAll()
		}
		if err != nil {
			searchErr = err
			return
		}
		cl, err := sys.NewClient(SearchUser)
		if err != nil {
			searchErr = err
			return
		}
		terms := sys.Corpus.TermsByDF()
		searchFix = &searchFixture{
			sys: sys,
			cl:  cl,
			queries: [][]corpus.TermID{
				{terms[0], terms[20], terms[200]},
				{terms[5], terms[50], terms[300], terms[len(terms)/2]},
			},
		}
	})
	return searchFix, searchErr
}

// SearchUser is the registered reader of the SearchSystem fixture: a
// transport-building caller logs in as it.
const SearchUser = "microbench-searcher"

// SearchSystem exposes the shared indexed deployment and query
// workload, so the go-test harness can mount transport variants (the
// HTTP legs of BenchmarkSearchSerialVsBatched) over the exact fixture
// the suite's in-process entries measure.
func SearchSystem() (*zerberr.System, [][]corpus.TermID, error) {
	f, err := searchSystem()
	if err != nil {
		return nil, nil, err
	}
	return f.sys, f.queries, nil
}

// RunSearch drives the shared multi-term search workload against any
// logged-in client — the single loop behind the suite's in-process
// entries and the go-test harness's HTTP variants, so the measured
// workload cannot drift between them. Reports round-trips and
// list-requests per query alongside ns/op.
func RunSearch(b *testing.B, cl *client.Client, queries [][]corpus.TermID, serial bool) {
	var opts []client.SearchOption
	if serial {
		opts = append(opts, client.WithSerial())
	}
	ctx := context.Background()
	rounds, requests := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := cl.Search(ctx, queries[i%len(queries)], 10, opts...)
		if err != nil {
			b.Fatal(err)
		}
		rounds += st.Rounds
		requests += st.Requests
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "round-trips/query")
	b.ReportMetric(float64(requests)/float64(b.N), "list-requests/query")
}

func searchBench(b *testing.B, serial bool) {
	f, err := searchSystem()
	if err != nil {
		b.Fatal(err)
	}
	RunSearch(b, f.cl, f.queries, serial)
}

// SearchSerial is an in-process multi-term search over the serial v1
// protocol (one round-trip per list request).
func SearchSerial(b *testing.B) { searchBench(b, true) }

// SearchBatched is the same workload over the batched v2 protocol.
func SearchBatched(b *testing.B) { searchBench(b, false) }
