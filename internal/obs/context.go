package obs

import (
	"context"
	"encoding/hex"
	"log/slog"
	"math/rand/v2"
)

// Request-ID and logger propagation. The v3 API threads a
// context.Context through every layer already, so a request-scoped
// slog.Logger (carrying the request ID and whatever attrs the edge
// attached) rides along for free: the HTTP middleware calls
// WithLogger once per request, and any layer below logs through
// Logger(ctx) without knowing where the request entered.

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyLogger
)

// NewRequestID returns a fresh 16-hex-char request ID. IDs are random
// (not sequential) so two shards' logs can be merged without
// collisions, but they are identifiers, not secrets — math/rand is
// deliberate, the hot path should not drain the kernel entropy pool.
func NewRequestID() string {
	var b [8]byte
	v := rand.Uint64()
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestID returns the context's request ID, or "" if none was
// attached.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// WithLogger attaches a request-scoped logger to the context.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxKeyLogger, l)
}

// Logger returns the context's request-scoped logger, falling back to
// slog.Default() so callers can always log unconditionally.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(ctxKeyLogger).(*slog.Logger); ok && l != nil {
		return l
	}
	return slog.Default()
}
