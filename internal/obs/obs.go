// Package obs is the observability foundation of the ops plane: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms — all atomic, lock-cheap on the hot path) with a
// Prometheus-text-format encoder, plus request-ID generation and
// log/slog context helpers that thread a request-scoped logger through
// the context-first (v3) API.
//
// Confidentiality: metric names and label values are chosen by the
// instrumenting code and must aggregate over lists and terms — an
// endpoint name, a status class, a shard index. Nothing in this
// package ever labels by term identity, list ID or user name, so the
// ops plane observes only what the Section 3.1 threat model already
// grants the untrusted server (request timing and volume). The
// /metrics scrape test asserts the label allowlist.
//
// All metric methods are nil-receiver safe: un-instrumented code paths
// (no registry installed) call through nil handles and pay one branch,
// which is what keeps instrumentation overhead under the 5% budget —
// see BenchmarkInstrumentedQuery.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric at
// creation time.
type Label struct {
	Name, Value string
}

// metricKind discriminates the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. Creation (Counter, Gauge, ...) takes a lock;
// updates on the returned handles are atomic. Creation is idempotent:
// asking for an existing (name, labels) pair returns the same handle,
// so independently initialized components can share families.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in first-registration order
}

type family struct {
	help     string
	kind     metricKind
	byLabels map[string]exposable
}

// exposable is anything a family can render.
type exposable interface {
	expose(w io.Writer, name, labels string)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes a label set ({a="1",b="2"} sorted by name)
// for identity and exposition.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register finds or creates the family and the metric under it. mk is
// called only when the (name, labels) pair is new.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, mk func() exposable) exposable {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{help: help, kind: kind, byLabels: make(map[string]exposable)}
		r.families[name] = fam
		r.order = append(r.order, name)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, fam.kind))
	}
	key := labelKey(labels)
	if m, ok := fam.byLabels[key]; ok {
		return m
	}
	m := mk()
	fam.byLabels[key] = m
	return m
}

// Counter creates (or finds) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, labels, func() exposable { return &Counter{} })
	if m == nil {
		return nil
	}
	return m.(*Counter)
}

// Gauge creates (or finds) an integer gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, labels, func() exposable { return &Gauge{} })
	if m == nil {
		return nil
	}
	return m.(*Gauge)
}

// Histogram creates (or finds) a fixed-bucket histogram. buckets are
// the ascending upper bounds (an implicit +Inf bucket is appended);
// nil means LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	m := r.register(name, help, kindHistogram, labels, func() exposable { return newHistogram(buckets) })
	if m == nil {
		return nil
	}
	return m.(*Histogram)
}

// CounterFunc registers a counter whose value is sampled at scrape
// time — for components that already maintain their own counters
// (e.g. the query-result cache's hit/miss totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, labels, func() exposable { return funcMetric(fn) })
}

// GaugeFunc registers a gauge sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, func() exposable { return funcMetric(fn) })
}

// FindHistogram returns a histogram registered earlier under exactly
// (name, labels), or nil — how the stats endpoint reads percentiles
// out of families other layers registered.
func (r *Registry) FindHistogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok || fam.kind != kindHistogram {
		return nil
	}
	h, _ := fam.byLabels[labelKey(labels)].(*Histogram)
	return h
}

// WritePrometheus renders every family in Prometheus text exposition
// format (HELP, TYPE, then one line per metric).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		fam := r.families[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, fam.help, name, fam.kind)
		// Stable output: label sets in sorted order.
		keys := make([]string, 0, len(fam.byLabels))
		for k := range fam.byLabels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fam.byLabels[k].expose(w, name, k)
		}
	}
}

// Handler serves the registry at GET /metrics in text exposition
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// --- counter ---------------------------------------------------------

// Counter is a monotonically increasing counter. The nil receiver is
// a no-op, so un-instrumented paths need no branching at call sites.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) expose(w io.Writer, name, labels string) {
	writeSample(w, name, labels, formatFloat(float64(c.v.Load())))
}

// --- gauge -----------------------------------------------------------

// Gauge is an integer gauge (in-flight requests, consecutive
// failures). Nil receiver is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.AddDelta(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.AddDelta(-1) }

// AddDelta adds n (may be negative).
func (g *Gauge) AddDelta(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) expose(w io.Writer, name, labels string) {
	writeSample(w, name, labels, strconv.FormatInt(g.v.Load(), 10))
}

// --- sampled funcs ---------------------------------------------------

type funcMetric func() float64

func (f funcMetric) expose(w io.Writer, name, labels string) {
	writeSample(w, name, labels, formatFloat(f()))
}

// --- histogram -------------------------------------------------------

// LatencyBuckets is the default latency histogram layout: 50µs to 10s,
// roughly ×2.5 per step — wide enough to hold both a cache-hit query
// round and a degraded WAL fsync.
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (seconds, for latencies). Observe is wait-free: one binary search,
// one atomic add per bucket, one CAS loop for the sum. Nil receiver
// is a no-op.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Uint64
}

// NewHistogram builds a standalone histogram outside any registry —
// for components that track latency internally (the cluster router's
// per-shard hedge-delay seed) and only optionally expose quantiles via
// scrape-time samplers. buckets as in Registry.Histogram; nil means
// LatencyBuckets.
func NewHistogram(buckets []float64) *Histogram { return newHistogram(buckets) }

func newHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket
// layout by linear interpolation inside the target bucket — the same
// estimate PromQL's histogram_quantile produces. Returns 0 with no
// observations; values in the +Inf bucket clamp to the highest finite
// bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) expose(w io.Writer, name, labels string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", joinLabels(labels, `le="`+formatFloat(b)+`"`), strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), strconv.FormatUint(cum, 10))
	writeSample(w, name+"_sum", labels, formatFloat(h.Sum()))
	writeSample(w, name+"_count", labels, strconv.FormatUint(h.count.Load(), 10))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(w io.Writer, name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
