package obs

import (
	"context"
	"log/slog"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests served", Label{"endpoint", "/v2/query"})
	c.Add(3)
	g := r.Gauge("test_inflight", "in-flight requests")
	g.Inc()
	g.Inc()
	g.Dec()
	r.GaugeFunc("test_sampled", "sampled at scrape", func() float64 { return 2.5 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total requests served",
		"# TYPE test_requests_total counter",
		`test_requests_total{endpoint="/v2/query"} 3`,
		"# TYPE test_inflight gauge",
		"test_inflight 1",
		"test_sampled 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "h", Label{"x", "1"})
	b := r.Counter("test_total", "h", Label{"x", "1"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("test_total", "h", Label{"x", "2"})
	if other == a {
		t.Fatal("distinct label sets share a counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_total", "h")
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	c.Inc()
	g := r.Gauge("x", "h")
	g.Set(7)
	h := r.Histogram("x_seconds", "h", nil)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics accumulated state")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatal("nil registry produced exposition output")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.01, 0.1, 1})
	// 100 observations in [0, 0.01), 0 in (0.01, 0.1], 0 rest.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got := h.Sum(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Sum = %g, want 0.5", got)
	}
	// Every observation is in the first bucket, so all quantiles
	// interpolate inside [0, 0.01].
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got <= 0 || got > 0.01 {
			t.Fatalf("Quantile(%g) = %g, want in (0, 0.01]", q, got)
		}
	}
	h.Observe(5) // lands in +Inf; quantile clamps to highest bound
	if got := h.Quantile(0.999); got != 1 {
		t.Fatalf("Quantile past the last bound = %g, want clamp to 1", got)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.01"} 100`,
		`test_seconds_bucket{le="0.1"} 100`,
		`test_seconds_bucket{le="1"} 100`,
		`test_seconds_bucket{le="+Inf"} 101`,
		"test_seconds_count 101",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", nil)
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*each {
		t.Fatalf("Count = %d, want %d", got, goroutines*each)
	}
	if got := h.Sum(); math.Abs(got-float64(goroutines*each)*0.001) > 1e-6 {
		t.Fatalf("Sum = %g drifted under concurrency", got)
	}
}

func TestFindHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "h", nil, Label{"shard", "0"})
	if got := r.FindHistogram("test_seconds", Label{"shard", "0"}); got != h {
		t.Fatal("FindHistogram did not return the registered histogram")
	}
	if got := r.FindHistogram("test_seconds", Label{"shard", "1"}); got != nil {
		t.Fatal("FindHistogram invented a histogram for an unknown label set")
	}
	if got := r.FindHistogram("absent"); got != nil {
		t.Fatal("FindHistogram invented a family")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "h", Label{"path", `a"b\c`}).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if want := `test_total{path="a\"b\\c"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("escaped exposition missing %q:\n%s", want, b.String())
	}
}

func TestRequestIDs(t *testing.T) {
	seen := map[string]bool{}
	idRe := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if !idRe.MatchString(id) {
			t.Fatalf("request ID %q not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("request ID %q repeated", id)
		}
		seen[id] = true
	}
	ctx := WithRequestID(context.Background(), "abc")
	if got := RequestID(ctx); got != "abc" {
		t.Fatalf("RequestID = %q, want abc", got)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID on bare context = %q, want empty", got)
	}
}

func TestContextLogger(t *testing.T) {
	if Logger(context.Background()) != slog.Default() {
		t.Fatal("bare context did not fall back to slog.Default")
	}
	l := slog.New(slog.DiscardHandler)
	ctx := WithLogger(context.Background(), l)
	if Logger(ctx) != l {
		t.Fatal("context logger not returned")
	}
}
