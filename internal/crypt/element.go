package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"zerberr/internal/corpus"
)

// Element is the plaintext content of one posting element: the
// document and term identifiers plus the raw relevance score of
// Equation 4, all of which must be hidden from the index server.
// The server-visible TRS travels alongside the sealed element, not
// inside it.
type Element struct {
	Doc   corpus.DocID
	Term  corpus.TermID
	Score float64
}

// ElementCodec seals and opens posting elements under a group key.
// Implementations have a fixed wire size so response byte counts are
// predictable (Section 6.6).
type ElementCodec interface {
	// Seal encrypts the element.
	Seal(el Element, key GroupKey) ([]byte, error)
	// Open decrypts and validates a sealed element.
	Open(ct []byte, key GroupKey) (Element, error)
	// WireSize returns the sealed element size in bytes.
	WireSize() int
	// Name identifies the codec in artifacts and experiment output.
	Name() string
}

// ErrDecrypt reports a failed decryption: wrong key, tampering or a
// malformed ciphertext.
var ErrDecrypt = errors.New("crypt: cannot decrypt element")

// GCMCodec is the secure default codec: AES-256-GCM with a random
// nonce over the 16-byte packed element. Wire size: 12 (nonce) + 16
// (payload) + 16 (tag) = 44 bytes.
type GCMCodec struct {
	// Rand supplies nonces; nil means crypto/rand.Reader.
	Rand io.Reader
}

const gcmPayload = 16

// Name implements ElementCodec.
func (GCMCodec) Name() string { return "aes-gcm" }

// WireSize implements ElementCodec.
func (GCMCodec) WireSize() int { return 12 + gcmPayload + 16 }

func gcmFor(key GroupKey) (cipher.AEAD, error) {
	sub := key.subkey("element/gcm")
	block, err := aes.NewCipher(sub[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Seal implements ElementCodec.
func (c GCMCodec) Seal(el Element, key GroupKey) ([]byte, error) {
	aead, err := gcmFor(key)
	if err != nil {
		return nil, err
	}
	rnd := c.Rand
	if rnd == nil {
		rnd = rand.Reader
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rnd, nonce); err != nil {
		return nil, fmt.Errorf("crypt: nonce: %w", err)
	}
	var pt [gcmPayload]byte
	binary.BigEndian.PutUint32(pt[0:4], uint32(el.Doc))
	binary.BigEndian.PutUint32(pt[4:8], uint32(el.Term))
	binary.BigEndian.PutUint64(pt[8:16], math.Float64bits(el.Score))
	out := make([]byte, 0, c.WireSize())
	out = append(out, nonce...)
	return aead.Seal(out, nonce, pt[:], nil), nil
}

// Open implements ElementCodec.
func (c GCMCodec) Open(ct []byte, key GroupKey) (Element, error) {
	aead, err := gcmFor(key)
	if err != nil {
		return Element{}, err
	}
	if len(ct) != c.WireSize() {
		return Element{}, fmt.Errorf("%w: wrong size %d", ErrDecrypt, len(ct))
	}
	ns := aead.NonceSize()
	pt, err := aead.Open(nil, ct[:ns], ct[ns:], nil)
	if err != nil {
		return Element{}, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	if len(pt) != gcmPayload {
		return Element{}, fmt.Errorf("%w: payload size %d", ErrDecrypt, len(pt))
	}
	return Element{
		Doc:   corpus.DocID(binary.BigEndian.Uint32(pt[0:4])),
		Term:  corpus.TermID(binary.BigEndian.Uint32(pt[4:8])),
		Score: math.Float64frombits(binary.BigEndian.Uint64(pt[8:16])),
	}, nil
}

// Compact64Codec packs (doc:24, term:20, quantized score:20) into
// exactly 8 bytes and encrypts them with a 4-round Feistel permutation
// whose round function is AES-based. This reproduces the paper's
// Section 6.6 assumption of 64-bit posting elements for bandwidth
// accounting.
//
// Security note: a 64-bit block with no authentication tag trades
// integrity and block-level indistinguishability for wire size —
// exactly the trade the 2009 system made. Production deployments
// should prefer GCMCodec; the experiments use Compact64Codec only for
// byte-accounting parity with the paper.
type Compact64Codec struct{}

// Name implements ElementCodec.
func (Compact64Codec) Name() string { return "compact64" }

// WireSize implements ElementCodec.
func (Compact64Codec) WireSize() int { return 8 }

// Compact64 field widths.
const (
	compactDocBits   = 24
	compactTermBits  = 20
	compactScoreBits = 20
	scoreQuantMax    = 1<<compactScoreBits - 1
)

// ErrFieldOverflow reports an element that does not fit the compact
// 64-bit layout.
var ErrFieldOverflow = errors.New("crypt: element exceeds compact64 field widths")

// QuantizeScore maps a relevance score in [0,1] to the 20-bit level
// the compact codec stores. Scores outside [0,1] are clamped.
func QuantizeScore(s float64) uint32 {
	if s < 0 || math.IsNaN(s) {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return uint32(math.Round(s * scoreQuantMax))
}

// DequantizeScore inverts QuantizeScore up to quantization error
// (about 5e-7, far below score gaps at realistic document lengths).
func DequantizeScore(q uint32) float64 {
	return float64(q) / scoreQuantMax
}

// Seal implements ElementCodec.
func (Compact64Codec) Seal(el Element, key GroupKey) ([]byte, error) {
	if el.Doc >= 1<<compactDocBits || el.Term >= 1<<compactTermBits {
		return nil, fmt.Errorf("%w: doc %d term %d", ErrFieldOverflow, el.Doc, el.Term)
	}
	q := uint64(QuantizeScore(el.Score))
	block := uint64(el.Doc)<<(compactTermBits+compactScoreBits) |
		uint64(el.Term)<<compactScoreBits | q
	enc, err := feistelEncrypt(block, key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, enc)
	return out, nil
}

// Open implements ElementCodec.
func (Compact64Codec) Open(ct []byte, key GroupKey) (Element, error) {
	if len(ct) != 8 {
		return Element{}, fmt.Errorf("%w: wrong size %d", ErrDecrypt, len(ct))
	}
	block, err := feistelDecrypt(binary.BigEndian.Uint64(ct), key)
	if err != nil {
		return Element{}, err
	}
	doc := corpus.DocID(block >> (compactTermBits + compactScoreBits) & (1<<compactDocBits - 1))
	term := corpus.TermID(block >> compactScoreBits & (1<<compactTermBits - 1))
	q := uint32(block & scoreQuantMax)
	return Element{Doc: doc, Term: term, Score: DequantizeScore(q)}, nil
}

// feistelRounds is the number of Feistel rounds; four rounds of a
// strong PRF yield a strong pseudorandom permutation (Luby-Rackoff).
const feistelRounds = 4

// feistelRound computes the AES-based round function F(half, round).
func feistelRound(block cipher.Block, half uint32, round int) uint32 {
	var in, out [aes.BlockSize]byte
	binary.BigEndian.PutUint32(in[0:4], half)
	in[4] = byte(round)
	copy(in[5:], "zerberr/feistel")
	block.Encrypt(out[:], in[:])
	return binary.BigEndian.Uint32(out[:4])
}

func feistelCipher(key GroupKey) (cipher.Block, error) {
	sub := key.subkey("element/feistel")
	return aes.NewCipher(sub[:])
}

// feistelEncrypt applies the 4-round balanced Feistel network to a
// 64-bit block.
func feistelEncrypt(v uint64, key GroupKey) (uint64, error) {
	block, err := feistelCipher(key)
	if err != nil {
		return 0, err
	}
	l, r := uint32(v>>32), uint32(v)
	for round := 0; round < feistelRounds; round++ {
		l, r = r, l^feistelRound(block, r, round)
	}
	return uint64(l)<<32 | uint64(r), nil
}

// feistelDecrypt inverts feistelEncrypt.
func feistelDecrypt(v uint64, key GroupKey) (uint64, error) {
	block, err := feistelCipher(key)
	if err != nil {
		return 0, err
	}
	l, r := uint32(v>>32), uint32(v)
	for round := feistelRounds - 1; round >= 0; round-- {
		l, r = r^feistelRound(block, l, round), l
	}
	return uint64(l)<<32 | uint64(r), nil
}
