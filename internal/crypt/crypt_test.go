package crypt

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"zerberr/internal/corpus"
)

func testKey() GroupKey { return KeyFromPassphrase("test-group") }

func codecs() []ElementCodec {
	return []ElementCodec{GCMCodec{}, Compact64Codec{}}
}

func TestKeyFromPassphraseDeterministic(t *testing.T) {
	a := KeyFromPassphrase("secret")
	b := KeyFromPassphrase("secret")
	c := KeyFromPassphrase("other")
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same passphrase gave different keys")
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different passphrases gave the same key")
	}
}

func TestNewGroupKeyRandom(t *testing.T) {
	a, err := NewGroupKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGroupKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two random keys identical")
	}
}

func TestKeyFromBytes(t *testing.T) {
	raw := bytes.Repeat([]byte{7}, KeySize)
	k, err := KeyFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k.Bytes(), raw) {
		t.Fatal("round trip failed")
	}
	if _, err := KeyFromBytes([]byte{1, 2}); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestElementRoundTrip(t *testing.T) {
	for _, codec := range codecs() {
		el := Element{Doc: 12345, Term: 678, Score: 0.0625}
		ct, err := codec.Seal(el, testKey())
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if len(ct) != codec.WireSize() {
			t.Fatalf("%s: wire size %d, want %d", codec.Name(), len(ct), codec.WireSize())
		}
		got, err := codec.Open(ct, testKey())
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if got.Doc != el.Doc || got.Term != el.Term {
			t.Fatalf("%s: ids changed: %+v", codec.Name(), got)
		}
		if math.Abs(got.Score-el.Score) > 1e-6 {
			t.Fatalf("%s: score %v, want %v", codec.Name(), got.Score, el.Score)
		}
	}
}

func TestElementWrongKeyFails(t *testing.T) {
	el := Element{Doc: 1, Term: 2, Score: 0.5}
	// GCM must reject outright.
	ct, err := GCMCodec{}.Seal(el, testKey())
	if err != nil {
		t.Fatal(err)
	}
	gcm := GCMCodec{}
	if _, err := gcm.Open(ct, KeyFromPassphrase("wrong")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("GCM wrong key: err = %v, want ErrDecrypt", err)
	}
	// Compact64 is unauthenticated by design: wrong key yields garbage,
	// not an error — document that behaviour here.
	ct2, err := Compact64Codec{}.Seal(el, testKey())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Compact64Codec{}.Open(ct2, KeyFromPassphrase("wrong"))
	if err != nil {
		t.Fatal(err)
	}
	if got == el {
		t.Fatal("compact64 decrypted correctly under the wrong key")
	}
}

func TestGCMTamperDetected(t *testing.T) {
	ct, err := GCMCodec{}.Seal(Element{Doc: 9, Term: 9, Score: 0.9}, testKey())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ct); i += 7 {
		mangled := append([]byte(nil), ct...)
		mangled[i] ^= 0x80
		if _, err := (GCMCodec{}).Open(mangled, testKey()); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("tampering byte %d not detected", i)
		}
	}
}

func TestGCMNonDeterministic(t *testing.T) {
	el := Element{Doc: 3, Term: 4, Score: 0.25}
	a, _ := GCMCodec{}.Seal(el, testKey())
	b, _ := GCMCodec{}.Seal(el, testKey())
	if bytes.Equal(a, b) {
		t.Fatal("two GCM seals of the same element identical (nonce reuse?)")
	}
}

func TestOpenRejectsWrongSizes(t *testing.T) {
	for _, codec := range codecs() {
		for _, n := range []int{0, 1, codec.WireSize() - 1, codec.WireSize() + 1} {
			if _, err := codec.Open(make([]byte, n), testKey()); err == nil {
				t.Fatalf("%s accepted %d-byte ciphertext", codec.Name(), n)
			}
		}
	}
}

func TestCompact64FieldOverflow(t *testing.T) {
	cases := []Element{
		{Doc: 1 << compactDocBits, Term: 0, Score: 0},
		{Doc: 0, Term: 1 << compactTermBits, Score: 0},
	}
	for _, el := range cases {
		if _, err := (Compact64Codec{}).Seal(el, testKey()); !errors.Is(err, ErrFieldOverflow) {
			t.Fatalf("overflow %+v: err = %v, want ErrFieldOverflow", el, err)
		}
	}
}

func TestQuantizeScore(t *testing.T) {
	if QuantizeScore(0) != 0 {
		t.Fatal("QuantizeScore(0) != 0")
	}
	if QuantizeScore(1) != scoreQuantMax {
		t.Fatal("QuantizeScore(1) != max")
	}
	if QuantizeScore(-5) != 0 || QuantizeScore(5) != scoreQuantMax {
		t.Fatal("clamping failed")
	}
	if QuantizeScore(math.NaN()) != 0 {
		t.Fatal("NaN not clamped")
	}
	for _, s := range []float64{0.001, 0.1, 0.333, 0.999} {
		got := DequantizeScore(QuantizeScore(s))
		if math.Abs(got-s) > 1.0/scoreQuantMax {
			t.Fatalf("quantization error at %v: %v", s, got)
		}
	}
}

func TestQuantizePreservesOrderQuick(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 1)
		b = math.Mod(math.Abs(b), 1)
		if a > b {
			a, b = b, a
		}
		return QuantizeScore(a) <= QuantizeScore(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeistelBijective(t *testing.T) {
	key := testKey()
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 2000; i++ {
		v := i * 0x9e3779b97f4a7c15
		enc, err := feistelEncrypt(v, key)
		if err != nil {
			t.Fatal(err)
		}
		if seen[enc] {
			t.Fatalf("feistel collision at input %d", i)
		}
		seen[enc] = true
		dec, err := feistelDecrypt(enc, key)
		if err != nil {
			t.Fatal(err)
		}
		if dec != v {
			t.Fatalf("feistel round trip failed: %d -> %d -> %d", v, enc, dec)
		}
	}
}

func TestFeistelRoundTripQuick(t *testing.T) {
	key := testKey()
	f := func(v uint64) bool {
		enc, err := feistelEncrypt(v, key)
		if err != nil {
			return false
		}
		dec, err := feistelDecrypt(enc, key)
		return err == nil && dec == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElementRoundTripQuick(t *testing.T) {
	key := testKey()
	for _, codec := range codecs() {
		codec := codec
		f := func(doc uint32, term uint32, sRaw uint32) bool {
			el := Element{
				Doc:   corpus.DocID(doc % (1 << compactDocBits)),
				Term:  corpus.TermID(term % (1 << compactTermBits)),
				Score: float64(sRaw%1000000) / 1000000,
			}
			ct, err := codec.Seal(el, key)
			if err != nil {
				return false
			}
			got, err := codec.Open(ct, key)
			if err != nil {
				return false
			}
			return got.Doc == el.Doc && got.Term == el.Term && math.Abs(got.Score-el.Score) < 1e-5
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
	}
}

func TestSealOpenBytes(t *testing.T) {
	msg := []byte("the merge plan dictionary travels encrypted")
	sealed, err := SealBytes(msg, testKey(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenBytes(sealed, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("artifact round trip failed")
	}
	if _, err := OpenBytes(sealed, KeyFromPassphrase("wrong")); !errors.Is(err, ErrDecrypt) {
		t.Fatal("wrong key accepted for artifact")
	}
	sealed[len(sealed)-1] ^= 1
	if _, err := OpenBytes(sealed, testKey()); !errors.Is(err, ErrDecrypt) {
		t.Fatal("tampered artifact accepted")
	}
	if _, err := OpenBytes([]byte{1, 2}, testKey()); !errors.Is(err, ErrDecrypt) {
		t.Fatal("truncated artifact accepted")
	}
}

func TestTokens(t *testing.T) {
	secret := []byte("server-secret")
	now := time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)
	tok := IssueToken(secret, "john", 3, now.Add(time.Hour))
	if !VerifyToken(secret, tok, now) {
		t.Fatal("valid token rejected")
	}
	if VerifyToken(secret, tok, now.Add(2*time.Hour)) {
		t.Fatal("expired token accepted")
	}
	if VerifyToken([]byte("other-secret"), tok, now) {
		t.Fatal("token accepted under wrong secret")
	}
	forged := tok
	forged.Group = 4
	if VerifyToken(secret, forged, now) {
		t.Fatal("forged group accepted")
	}
	forged2 := tok
	forged2.User = "eve"
	if VerifyToken(secret, forged2, now) {
		t.Fatal("forged user accepted")
	}
	forged3 := tok
	forged3.Expiry = tok.Expiry.Add(time.Hour)
	if VerifyToken(secret, forged3, now) {
		t.Fatal("extended expiry accepted")
	}
}

func TestSubkeysIndependent(t *testing.T) {
	k := testKey()
	a := k.subkey("purpose-a")
	b := k.subkey("purpose-b")
	if bytes.Equal(a[:], b[:]) {
		t.Fatal("different purposes share a subkey")
	}
	if bytes.Equal(a[:], k.Bytes()) {
		t.Fatal("subkey equals master key")
	}
}
