// Package crypt provides the cryptographic substrate of the Zerber
// index: per-group keys, posting-element codecs (an authenticated
// AES-GCM codec and a compact 64-bit codec matching the paper's
// Section 6.6 wire-size assumption), sealing of dictionary artifacts,
// and HMAC authentication tokens for the index server.
package crypt

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// KeySize is the byte length of group keys (AES-256).
const KeySize = 32

// GroupKey is a symmetric key shared by the members of one
// collaboration group. Only key holders can decrypt the group's
// posting elements; the index server never sees a key.
type GroupKey struct {
	k [KeySize]byte
}

// NewGroupKey generates a fresh random key from r (nil means
// crypto/rand.Reader).
func NewGroupKey(r io.Reader) (GroupKey, error) {
	if r == nil {
		r = rand.Reader
	}
	var gk GroupKey
	if _, err := io.ReadFull(r, gk.k[:]); err != nil {
		return GroupKey{}, fmt.Errorf("crypt: generating group key: %w", err)
	}
	return gk, nil
}

// KeyFromPassphrase derives a deterministic key from a passphrase via
// iterated SHA-256 with a domain-separation tag. Intended for tests,
// examples and CLI convenience, not as a hardened KDF.
func KeyFromPassphrase(pass string) GroupKey {
	var gk GroupKey
	sum := sha256.Sum256([]byte("zerberr/group-key/v1|" + pass))
	for i := 0; i < 4096; i++ {
		sum = sha256.Sum256(sum[:])
	}
	gk.k = sum
	return gk
}

// KeyFromBytes builds a key from exactly KeySize raw bytes.
func KeyFromBytes(b []byte) (GroupKey, error) {
	if len(b) != KeySize {
		return GroupKey{}, errors.New("crypt: group key must be 32 bytes")
	}
	var gk GroupKey
	copy(gk.k[:], b)
	return gk, nil
}

// Bytes returns a copy of the raw key material.
func (gk GroupKey) Bytes() []byte {
	out := make([]byte, KeySize)
	copy(out, gk.k[:])
	return out
}

// subkey derives an independent key for the given purpose label, so
// the element codec, artifact sealing and MACs never share key
// material directly.
func (gk GroupKey) subkey(purpose string) [KeySize]byte {
	h := sha256.New()
	h.Write([]byte("zerberr/subkey/v1|"))
	h.Write([]byte(purpose))
	h.Write([]byte{'|'})
	h.Write(gk.k[:])
	var out [KeySize]byte
	copy(out[:], h.Sum(nil))
	return out
}
