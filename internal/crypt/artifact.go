package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// SealBytes encrypts an arbitrary artifact (merge-plan dictionary,
// RSTF store, …) for the members of a group with AES-256-GCM. The
// output is nonce ‖ ciphertext ‖ tag.
func SealBytes(plaintext []byte, key GroupKey, rnd io.Reader) ([]byte, error) {
	sub := key.subkey("artifact/gcm")
	block, err := aes.NewCipher(sub[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rnd, nonce); err != nil {
		return nil, fmt.Errorf("crypt: nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, plaintext, nil), nil
}

// OpenBytes decrypts an artifact sealed with SealBytes.
func OpenBytes(sealed []byte, key GroupKey) ([]byte, error) {
	sub := key.subkey("artifact/gcm")
	block, err := aes.NewCipher(sub[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(sealed) < aead.NonceSize() {
		return nil, fmt.Errorf("%w: artifact too short", ErrDecrypt)
	}
	pt, err := aead.Open(nil, sealed[:aead.NonceSize()], sealed[aead.NonceSize():], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	return pt, nil
}

// Token is an authentication token the index server issues to a user:
// an HMAC over (user, group, expiry) under the server's secret. The
// server validates tokens on every query and update (Section 4.1's
// "the user first authenticates herself to an index server").
type Token struct {
	User   string
	Group  int
	Expiry time.Time
	MAC    []byte
}

// tokenMAC computes the HMAC binding the token fields to the secret.
func tokenMAC(secret []byte, user string, group int, expiry time.Time) []byte {
	h := hmac.New(sha256.New, secret)
	h.Write([]byte("zerberr/token/v1|"))
	h.Write([]byte(user))
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(int64(group)))
	binary.BigEndian.PutUint64(b[8:16], uint64(expiry.Unix()))
	h.Write(b[:])
	return h.Sum(nil)
}

// IssueToken creates a token for the user's membership in group,
// valid until expiry.
func IssueToken(secret []byte, user string, group int, expiry time.Time) Token {
	return Token{User: user, Group: group, Expiry: expiry, MAC: tokenMAC(secret, user, group, expiry)}
}

// VerifyToken reports whether the token is authentic under the secret
// and unexpired at time now.
func VerifyToken(secret []byte, tok Token, now time.Time) bool {
	if now.After(tok.Expiry) {
		return false
	}
	want := tokenMAC(secret, tok.User, tok.Group, tok.Expiry)
	return hmac.Equal(want, tok.MAC)
}
