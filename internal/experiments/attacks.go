package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	zerberr "zerberr"
	"zerberr/internal/adversary"
	"zerberr/internal/client"
	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/stats"
	"zerberr/internal/workload"
	"zerberr/internal/zerber"
)

// attackCorpus is a dedicated smaller collection so the attack
// experiments can build several full systems (with and without RSTF,
// BFM and random merge) quickly and independently of Env.Scale.
func attackCorpus(seed uint64) *corpus.Corpus {
	p := corpus.ProfileStudIP()
	p.NumDocs = 800
	p.VocabSize = 8000
	return corpus.Generate(p, seed)
}

func attackSystem(c *corpus.Corpus, seed uint64, identity, randomMerge bool, jitter float64) (*zerberr.System, error) {
	cfg := zerberr.DefaultConfig()
	cfg.Seed = seed
	cfg.Codec = crypt.Compact64Codec{}
	cfg.SkipBaseline = true
	cfg.IdentityStore = identity
	cfg.RandomMerge = randomMerge
	cfg.TRSJitter = jitter
	// Strong confidentiality setting: r=4 forces even mid-frequency
	// (well-trained) terms into multi-term merged lists, which is the
	// regime worth attacking — under large r frequent terms sit in
	// singleton lists and threat 1 degenerates.
	cfg.R = 4
	sys, err := zerberr.Setup(c, cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.IndexAll(); err != nil {
		return nil, err
	}
	return sys, nil
}

// attackView is the adversary's view of one system plus the
// experiment's ground truth.
type attackView struct {
	sys *zerberr.System
	// bg models per-term distributions from the adversary's own
	// comparable corpus (used for the composition attack).
	bg *adversary.Background
	// bgEl is her per-element attribution tool: for TRS systems it is
	// built from the published RSTF's own training atoms; for the
	// identity system it equals bg.
	bgEl       *adversary.Background
	bgScores   map[corpus.TermID][]float64
	trainDocs  map[corpus.DocID]bool
	trainN     map[corpus.TermID]int
	observable func(float64) float64 // visible TRS -> attack feature space
}

// newAttackView prepares the adversary's knowledge about a system.
// Her background B is an independent comparable corpus ("general
// language statistics" in the paper's terms — same domain, documents
// she can read), whose per-term score statistics she transforms into
// the server-visible domain: for the TRS system she applies the public
// RSTF store; for the identity system she works in log-score space,
// which resolves the multiplicative differences between term score
// distributions.
func newAttackView(sys *zerberr.System, background *corpus.Corpus) *attackView {
	v := &attackView{
		sys:       sys,
		trainDocs: make(map[corpus.DocID]bool),
		trainN:    make(map[corpus.TermID]int),
	}
	for _, id := range sys.Split.Train {
		v.trainDocs[id] = true
	}
	logSpace := sys.Store.Identity()
	v.observable = func(x float64) float64 {
		if logSpace {
			return math.Log10(math.Max(x, 1e-7))
		}
		return x
	}
	allDocs := make([]corpus.DocID, background.NumDocs())
	for i := range allDocs {
		allDocs[i] = corpus.DocID(i)
	}
	v.bgScores = make(map[corpus.TermID][]float64)
	lo, hi := 0.0, 0.0
	if logSpace {
		lo = -7
	}
	for t, xs := range corpus.TrainingScores(background, allDocs) {
		v.trainN[t] = len(xs)
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = v.observable(sys.Store.TRS(t, 0, x))
			if out[i] > hi {
				hi = out[i]
			}
		}
		v.bgScores[t] = out
	}
	if hi <= lo {
		hi = lo + 1
	}
	v.bg = adversary.NewBackground(v.bgScores, 256, lo, hi)
	if logSpace {
		v.bgEl = v.bg
	} else {
		// The published RSTF's training atoms, mapped through the
		// transform itself: exactly where training-document elements
		// land in TRS space.
		atomScores := make(map[corpus.TermID][]float64, sys.Store.Len())
		for _, t := range sys.Store.Terms() {
			f := sys.Store.Get(t)
			atoms := f.TrainingPoints()
			out := make([]float64, len(atoms))
			for i, mu := range atoms {
				out[i] = f.Transform(mu)
			}
			atomScores[t] = out
		}
		v.bgEl = adversary.NewBackground(atomScores, 256, 0, 1)
	}
	return v
}

// eligibleLists returns multi-term merged lists whose terms all have
// at least minTrain training observations and at least minElems stored
// elements.
func (v *attackView) eligibleLists(minTrain, minElems, maxLists int) []zerber.ListID {
	var out []zerber.ListID
	for _, listID := range v.sys.Server.Lists() {
		if len(out) >= maxLists {
			break
		}
		terms := v.sys.Plan.Terms(zerber.ListID(listID))
		if len(terms) < 2 {
			continue
		}
		ok := true
		for _, t := range terms {
			if v.trainN[t] < minTrain {
				ok = false
				break
			}
		}
		if !ok || v.sys.Server.ListLen(zerber.ListID(listID)) < minElems {
			continue
		}
		out = append(out, zerber.ListID(listID))
	}
	return out
}

// decryptList returns the visible values, true terms and training
// membership of a list's elements (ground truth via the experiment's
// omniscient key access).
func (v *attackView) decryptList(list zerber.ListID) (observed []float64, truth []corpus.TermID, fromTrain []bool, err error) {
	codec := crypt.Compact64Codec{}
	snap, err := v.sys.Server.Snapshot(list)
	if err != nil {
		return nil, nil, nil, err
	}
	observed = make([]float64, len(snap))
	truth = make([]corpus.TermID, len(snap))
	fromTrain = make([]bool, len(snap))
	for i, el := range snap {
		observed[i] = v.observable(el.TRS)
		plain, err2 := codec.Open(el.Sealed, v.sys.Keys[el.Group])
		if err2 != nil {
			return nil, nil, nil, err2
		}
		truth[i] = plain.Term
		fromTrain[i] = v.trainDocs[plain.Doc]
	}
	return observed, truth, fromTrain, nil
}

// listPrior returns the Definition 2 within-list prior p_t/Σp.
func (v *attackView) listPrior(terms []corpus.TermID) map[corpus.TermID]float64 {
	prior := make(map[corpus.TermID]float64, len(terms))
	sum := 0.0
	for _, t := range terms {
		sum += v.sys.Plan.P(t)
	}
	for _, t := range terms {
		prior[t] = v.sys.Plan.P(t) / sum
	}
	return prior
}

// compositionAttack is the paper's threat 1 at the list level ("undo
// the posting list merging"): for each two-term merged list the
// adversary knows a candidate set — the true terms plus decoys of
// similar document frequency — and picks the candidate PAIR whose
// df-weighted mixture maximizes the likelihood of the list's visible
// value multiset. Returns the mean fraction of true terms recovered
// and the random-pair baseline.
//
// Elements of the RSTF's training documents are excluded: their
// separate (and much larger) leak is measured by the
// element-attribution rows; this attack measures the intended
// protection regime where indexed documents were not part of the
// published transform's sample.
func compositionAttack(v *attackView, lists []zerber.ListID, decoysPerList int) (acc, chance float64, measured int, err error) {
	byDF := v.sys.Corpus.TermsByDF()
	for _, list := range lists {
		terms := v.sys.Plan.Terms(list)
		if len(terms) != 2 {
			continue
		}
		allObserved, _, fromTrain, err2 := v.decryptList(list)
		if err2 != nil {
			return 0, 0, 0, err2
		}
		observed := make([]float64, 0, len(allObserved))
		for i, x := range allObserved {
			if !fromTrain[i] {
				observed = append(observed, x)
			}
		}
		if len(observed) < 20 {
			continue
		}
		// Decoys: trained terms of similar df to EACH true term (so a
		// frequency-mixed list gets a fair candidate set around both
		// frequency tiers).
		inList := map[corpus.TermID]bool{terms[0]: true, terms[1]: true}
		candidates := append([]corpus.TermID(nil), terms...)
		used := map[corpus.TermID]bool{terms[0]: true, terms[1]: true}
		for _, target := range terms {
			dfTarget := v.sys.Corpus.DF(target)
			type cand struct {
				t    corpus.TermID
				dist int
			}
			var pool []cand
			for _, t := range byDF {
				if !used[t] && v.trainN[t] >= 8 {
					d := v.sys.Corpus.DF(t) - dfTarget
					if d < 0 {
						d = -d
					}
					pool = append(pool, cand{t, d})
				}
			}
			sort.Slice(pool, func(i, j int) bool {
				if pool[i].dist != pool[j].dist {
					return pool[i].dist < pool[j].dist
				}
				return pool[i].t < pool[j].t
			})
			for i := 0; i < decoysPerList/2 && i < len(pool); i++ {
				candidates = append(candidates, pool[i].t)
				used[pool[i].t] = true
			}
		}
		// Best mixture pair by summed log-likelihood.
		bestLL := math.Inf(-1)
		var bestA, bestB corpus.TermID
		for i := 0; i < len(candidates); i++ {
			for j := i + 1; j < len(candidates); j++ {
				a, b := candidates[i], candidates[j]
				wa := float64(v.sys.Corpus.DF(a))
				wb := float64(v.sys.Corpus.DF(b))
				wa, wb = wa/(wa+wb), wb/(wa+wb)
				ll := 0.0
				for _, x := range observed {
					ll += math.Log(wa*v.bg.Likelihood(a, x) + wb*v.bg.Likelihood(b, x))
				}
				if ll > bestLL {
					bestLL, bestA, bestB = ll, a, b
				}
			}
		}
		hit := 0
		if inList[bestA] {
			hit++
		}
		if inList[bestB] {
			hit++
		}
		acc += float64(hit) / 2
		chance += 2 / float64(len(candidates))
		measured++
	}
	if measured == 0 {
		return 0, 0, 0, fmt.Errorf("attacks: no eligible two-term lists for composition attack")
	}
	return acc / float64(measured), chance / float64(measured), measured, nil
}

// elementAttack runs per-element Bayesian attribution, reporting
// accuracy, prior accuracy and Definition 1 amplification separately
// for elements of training documents and the rest.
type elementAttackResult struct {
	trainAcc, trainPrior, trainAmp    float64
	nonAcc, nonPrior, nonAmp, nonAmpM float64
	nTrain, nNon                      int
}

func elementAttack(v *attackView, lists []zerber.ListID) (elementAttackResult, error) {
	var res elementAttackResult
	var trainAmpW, nonAmpW float64
	for _, list := range lists {
		terms := v.sys.Plan.Terms(list)
		observed, truth, fromTrain, err := v.decryptList(list)
		if err != nil {
			return res, err
		}
		prior := v.listPrior(terms)
		att := adversary.Attribute(observed, terms, prior, v.bgEl)
		idx := make(map[corpus.TermID]int, len(terms))
		for j, t := range att.Candidates {
			idx[t] = j
		}
		var bestPrior corpus.TermID
		bp := -1.0
		for t, p := range prior {
			if p > bp || (p == bp && t < bestPrior) {
				bestPrior, bp = t, p
			}
		}
		for i := range truth {
			hit := 0.0
			if att.Guess[i] == truth[i] {
				hit = 1
			}
			priorHit := 0.0
			if truth[i] == bestPrior {
				priorHit = 1
			}
			amp := att.Posterior[i][idx[truth[i]]] / prior[truth[i]]
			if fromTrain[i] {
				res.trainAcc += hit
				res.trainPrior += priorHit
				trainAmpW += amp
				res.nTrain++
			} else {
				res.nonAcc += hit
				res.nonPrior += priorHit
				nonAmpW += amp
				if amp > res.nonAmpM {
					res.nonAmpM = amp
				}
				res.nNon++
			}
		}
	}
	if res.nTrain > 0 {
		res.trainAcc /= float64(res.nTrain)
		res.trainPrior /= float64(res.nTrain)
		res.trainAmp = trainAmpW / float64(res.nTrain)
	}
	if res.nNon > 0 {
		res.nonAcc /= float64(res.nNon)
		res.nonPrior /= float64(res.nNon)
		res.nonAmp = nonAmpW / float64(res.nNon)
	}
	return res, nil
}

// requestAttackOn runs the threat-2 attack: the adversary observes the
// request count of a top-k query against a merged list and guesses the
// queried term via the Equation 10/11 expected counts.
func requestAttackOn(sys *zerberr.System, maxProbes int) (acc, prior float64, probes int, err error) {
	cl, err := sys.NewClient("attack-prober")
	if err != nil {
		return 0, 0, 0, err
	}
	const k, b = 10, 10
	var accSum, priorSum float64
	for _, listID := range sys.Server.Lists() {
		if probes >= maxProbes {
			break
		}
		terms := sys.Plan.Terms(zerber.ListID(listID))
		if len(terms) < 2 {
			continue
		}
		// Adversary's expected request counts per candidate term from
		// public df statistics (Eq. 10/11 + the doubling protocol).
		listDF := 0
		for _, t := range terms {
			listDF += sys.Corpus.DF(t)
		}
		expected := make(map[corpus.TermID]float64, len(terms))
		for _, t := range terms {
			pos := workload.PositionEstimate(k, sys.Corpus.DF(t), listDF)
			n := 1
			covered := b
			for float64(covered) < pos && covered < listDF {
				covered += b << n
				n++
			}
			expected[t] = float64(n)
		}
		priorMap := make(map[corpus.TermID]float64, len(terms))
		sum := 0.0
		for _, t := range terms {
			sum += sys.Plan.P(t)
		}
		for _, t := range terms {
			priorMap[t] = sys.Plan.P(t) / sum
		}
		// Probe every merged term once (the adversary watches real
		// queries; probing uniformly is the hardest case for her).
		// Under uniform probing the prior-only guesser names one fixed
		// term per list, so its expected accuracy is 1/|terms|.
		for _, t := range terms {
			if probes >= maxProbes {
				break
			}
			if sys.Corpus.DF(t) == 0 {
				continue
			}
			_, st, err := cl.Search(context.Background(), []corpus.TermID{t}, k,
				client.WithSerial(), client.WithInitialResponse(b))
			if err != nil {
				return 0, 0, 0, err
			}
			guess := adversary.RequestCountAttack(float64(st.Requests), expected, priorMap)
			if guess == t {
				accSum++
			}
			priorSum += 1 / float64(len(terms))
			probes++
		}
	}
	if probes == 0 {
		return 0, 0, 0, fmt.Errorf("attacks: no probes executed")
	}
	return accSum / float64(probes), priorSum / float64(probes), probes, nil
}

// AttackSimulations is extension experiment Ext-B: it measures the
// Section 4.1 threats against systems with and without the RSTF and
// with BFM vs random merging, so the paper's security claims become
// numbers. Three findings are reported:
//
//  1. List-composition attack (threat 1 as the paper frames it:
//     "undo the posting list merging"): strong against plain scores,
//     near chance against TRS.
//  2. Per-element attribution on non-training documents: near the
//     prior for both systems (most postings carry tf=1 and are
//     intrinsically anonymous), with TRS at or below plain scores and
//     amplification within Definition 1's bound.
//  3. Residual leak: elements of the RSTF's own training documents are
//     re-identifiable under TRS, because the published transform pins
//     their exact quantile positions — a limitation the paper does not
//     evaluate.
func AttackSimulations(e *Env) (*Result, error) {
	c := attackCorpus(e.Seed)
	const minTrain = 15
	plainSys, err := attackSystem(c, e.Seed, true, false, 0)
	if err != nil {
		return nil, err
	}
	trsSys, err := attackSystem(c, e.Seed, false, false, 0)
	if err != nil {
		return nil, err
	}
	// Frequency-mixed merging (the paper's Figure 3 scenario: "and"
	// merged with "imClone") with and without the RSTF.
	plainRandSys, err := attackSystem(c, e.Seed, true, true, 0)
	if err != nil {
		return nil, err
	}
	trsRandSys, err := attackSystem(c, e.Seed, false, true, 0)
	if err != nil {
		return nil, err
	}
	// The adversary's own comparable corpus: same generator profile,
	// independent seed — twice the size of the indexed collection.
	bgProfile := corpus.ProfileStudIP()
	bgProfile.NumDocs = 1600
	bgProfile.VocabSize = 8000
	bgCorpus := corpus.Generate(bgProfile, e.Seed+0x5eed)
	plainView := newAttackView(plainSys, bgCorpus)
	trsView := newAttackView(trsSys, bgCorpus)
	plainRandView := newAttackView(plainRandSys, bgCorpus)
	trsRandView := newAttackView(trsRandSys, bgCorpus)
	plainLists := plainView.eligibleLists(minTrain, 40, 60)
	trsLists := trsView.eligibleLists(minTrain, 40, 60)
	plainRandLists := plainRandView.eligibleLists(1, 40, 120)
	trsRandLists := trsRandView.eligibleLists(1, 40, 120)

	res := &Result{
		ID:      "attacks",
		Title:   "Ext-B: adversary simulations (Definition 1 quantified)",
		Headers: []string{"attack", "system", "adversary accuracy", "baseline", "mean amplification"},
	}

	// 1. Composition attack. Frequency-mixed lists are where plain
	// scores leak composition ("frequent terms are more probably
	// located in the head of the merged posting list"); BFM's
	// similar-frequency lists blunt the attack even without the RSTF.
	prAcc, prChance, prLists, err := compositionAttack(plainRandView, plainRandLists, 8)
	if err != nil {
		return nil, err
	}
	trAcc, trChance, trLists, err := compositionAttack(trsRandView, trsRandLists, 8)
	if err != nil {
		return nil, err
	}
	pAcc, pChance, pLists, err := compositionAttack(plainView, plainLists, 8)
	if err != nil {
		return nil, err
	}
	tAcc, tChance, tLists, err := compositionAttack(trsView, trsLists, 8)
	if err != nil {
		return nil, err
	}
	// The countermeasure to extension finding 2: per-element TRS
	// jitter spreads shared score atoms. To be effective the width
	// must exceed the typical per-term TRS gap (~1/df), which costs
	// local rank swaps near the top-k boundary — measured below.
	jitterSys, err := attackSystem(c, e.Seed, false, false, 2e-2)
	if err != nil {
		return nil, err
	}
	jitterView := newAttackView(jitterSys, bgCorpus)
	jitterLists := jitterView.eligibleLists(minTrain, 40, 60)
	jAcc, jChance, jLists, err := compositionAttack(jitterView, jitterLists, 8)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows,
		[]interface{}{"list composition", "plain scores, random merge", prAcc, prChance, "-"},
		[]interface{}{"list composition", "TRS, random merge", trAcc, trChance, "-"},
		[]interface{}{"list composition", "plain scores, BFM", pAcc, pChance, "-"},
		[]interface{}{"list composition", "TRS, BFM", tAcc, tChance, "-"},
		[]interface{}{"list composition", "TRS + jitter, BFM", jAcc, jChance, "-"},
	)

	// 2 + 3. Per-element attribution split by training membership.
	pEl, err := elementAttack(plainView, plainLists)
	if err != nil {
		return nil, err
	}
	tEl, err := elementAttack(trsView, trsLists)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows,
		[]interface{}{"element attribution (non-train)", "plain scores (no RSTF)", pEl.nonAcc, pEl.nonPrior, pEl.nonAmp},
		[]interface{}{"element attribution (non-train)", "Zerber+R (TRS)", tEl.nonAcc, tEl.nonPrior, tEl.nonAmp},
		[]interface{}{"element attribution (train docs)", "plain scores (no RSTF)", pEl.trainAcc, pEl.trainPrior, pEl.trainAmp},
		[]interface{}{"element attribution (train docs)", "Zerber+R (TRS)", tEl.trainAcc, tEl.trainPrior, tEl.trainAmp},
	)

	// Threat 2: request-count attack, BFM vs random merge.
	bAcc, bPrior, bProbes, err := requestAttackOn(trsSys, 400)
	if err != nil {
		return nil, err
	}
	rAcc, rPrior, rProbes, err := requestAttackOn(trsRandSys, 400)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows,
		[]interface{}{"request-count", "BFM merging", bAcc, bPrior, "-"},
		[]interface{}{"request-count", "random merging", rAcc, rPrior, "-"},
	)

	res.Series = []stats.Series{{
		Name: "advantage over baseline (composition: plain+rand, TRS+rand, plain+BFM, TRS+BFM; request: BFM, random)",
		X:    []float64{1, 2, 3, 4, 5, 6},
		Y:    []float64{prAcc - prChance, trAcc - trChance, pAcc - pChance, tAcc - tChance, bAcc - bPrior, rAcc - rPrior},
	}}
	res.Notes = append(res.Notes,
		fmt.Sprintf("composition attack on %d/%d (random merge, small sample) and %d/%d (BFM) two-term lists; request attack on %d/%d probes", prLists, trLists, pLists, tLists, bProbes, rProbes),
		"BFM already blunts value-only composition attacks on its own: similar-frequency merged terms share their bulk (tf=1) score statistics, so plain+BFM sits at chance",
		fmt.Sprintf("r = %.0f: Definition 1 demands amplification ≤ r; per-element attribution outside the training sample measures %.2f (TRS) vs %.2f (plain), max %.1f (TRS) — the paper's claim holds at the element level", trsSys.Plan.R(), tEl.nonAmp, pEl.nonAmp, tEl.nonAmpM),
		fmt.Sprintf("extension finding 1: elements of the RSTF's own training documents are re-identified with %.0f%% accuracy under TRS (prior %.0f%%) — the published transform memorizes their quantiles; train on a held-out, non-indexed sample", tEl.trainAcc*100, tEl.trainPrior*100),
		fmt.Sprintf("countermeasure: 2e-2 TRS jitter drops the fine-structure composition attack to %.2f vs %.2f chance on %d lists; the cost is local rank swaps for score pairs whose TRS gap is below the jitter width", jAcc, jChance, jLists),
		"extension finding 2: normalized-TF supports are discrete (score atoms like 1/|d| shared by all terms), and a published per-term RSTF maps those shared atoms to term-specific TRS positions — a fine-structure fingerprint that lets list composition be recovered (TRS rows) even though the TRS envelope is uniform; rank-preserving TRS jitter would close this channel",
		"request-count attack: BFM keeps follow-up counts indistinguishable (advantage near 0) exactly as Section 5.2 argues; random merging leaks the queried term's frequency tier")
	return res, nil
}
