package experiments

import (
	"fmt"

	"zerberr/internal/plot"
	"zerberr/internal/stats"
	"zerberr/internal/workload"
)

// Fig10WorkloadConcentration reproduces Figure 10: query terms in
// decreasing frequency order (log X) against the cumulative top-10
// workload cost they account for (Equation 9).
func Fig10WorkloadConcentration(e *Env) (*Result, error) {
	sys, err := e.System("odp")
	if err != nil {
		return nil, err
	}
	log, err := e.Workload("odp")
	if err != nil {
		return nil, err
	}
	// N(L): expected elements per top-10 query against each merged
	// list (Equation 11), using the merge plan's df statistics.
	listDF := make(map[uint32]int)
	for _, t := range sys.Plan.AllTerms() {
		l, _ := sys.Plan.ListOf(t)
		listDF[uint32(l)] += sys.Corpus.DF(t)
	}
	terms := log.TermsByFreq()
	var xs, ys []float64
	cum := 0.0
	for i, t := range terms {
		l, ok := sys.Plan.ListOf(t)
		if !ok {
			continue
		}
		cost := workload.PositionEstimate(10, sys.Corpus.DF(t), listDF[uint32(l)])
		cum += cost * float64(log.Freq(t))
		xs = append(xs, float64(i+1))
		ys = append(ys, cum)
	}
	if len(ys) == 0 {
		return nil, fmt.Errorf("fig10: empty workload")
	}
	total := ys[len(ys)-1]
	for i := range ys {
		ys[i] = ys[i] / total * 100
	}
	// Where do 50% and 90% of the workload land?
	idx50, idx90 := -1, -1
	for i, y := range ys {
		if idx50 < 0 && y >= 50 {
			idx50 = i
		}
		if idx90 < 0 && y >= 90 {
			idx90 = i
		}
	}
	res := &Result{
		ID:        "fig10",
		Title:     "Figure 10: cumulative top-10 workload vs query-term rank",
		ChartOpts: plot.Options{LogX: true, XLabel: "query terms by decreasing frequency (log)", YLabel: "cumulative workload %"},
		Series:    []stats.Series{{Name: "cumulative workload (Eq. 9)", X: xs, Y: ys}},
		Headers:   []string{"distinct query terms", "terms covering 50%", "terms covering 90%"},
		Rows:      [][]interface{}{{len(xs), idx50 + 1, idx90 + 1}},
	}
	res.Notes = append(res.Notes,
		"paper: the most frequent queries constitute nearly the whole query workload",
		fmt.Sprintf("measured: %.1f%% of distinct terms already account for half the workload", float64(idx50+1)/float64(len(xs))*100))
	return res, nil
}

// Fig11BandwidthOverhead reproduces Figure 11: average bandwidth
// overhead (Equation 13) as a function of the initial response size b,
// for k = 1, 10, 50, on both test collections.
func Fig11BandwidthOverhead(e *Env) (*Result, error) {
	res := &Result{
		ID:        "fig11",
		Title:     "Figure 11: average bandwidth overhead vs initial response size",
		ChartOpts: plot.Options{LogX: true, LogY: true, XLabel: "initial response size b", YLabel: "AvBO (Eq. 13)"},
		Headers:   []string{"collection", "k", "best b", "AvBO at best b", "AvBO at b=k"},
	}
	for _, profile := range []string{"studip", "odp"} {
		rp, err := e.Replay(profile)
		if err != nil {
			return nil, err
		}
		for _, k := range replayKs {
			xs := make([]float64, 0, len(replayBs))
			ys := make([]float64, 0, len(replayBs))
			bestB, bestV := 0, 0.0
			var atK float64
			for _, b := range replayBs {
				v := rp.avgBandwidthOverhead(k, b)
				xs = append(xs, float64(b))
				ys = append(ys, v)
				if bestB == 0 || v < bestV {
					bestB, bestV = b, v
				}
				if b == k {
					atK = v
				}
			}
			res.Series = append(res.Series, stats.Series{
				Name: fmt.Sprintf("%s k=%d", profile, k),
				X:    xs, Y: ys,
			})
			res.Rows = append(res.Rows, []interface{}{profile, k, bestB, bestV, atK})
		}
	}
	res.Notes = append(res.Notes,
		"paper: minimal bandwidth overhead is achieved around b = k; larger initial responses only add overhead",
		"the b-grid is {1,2,5,10,20,50,100}; 'best b' should track k")
	return res, nil
}

// Fig12RequestCounts reproduces Figure 12: the average number of
// requests needed for top-k results as a function of b.
func Fig12RequestCounts(e *Env) (*Result, error) {
	res := &Result{
		ID:        "fig12",
		Title:     "Figure 12: average number of requests vs initial response size",
		ChartOpts: plot.Options{LogX: true, XLabel: "initial response size b", YLabel: "avg requests"},
		Headers:   []string{"collection", "k", "avg requests at b=10", "avg requests at b=100"},
	}
	for _, profile := range []string{"studip", "odp"} {
		rp, err := e.Replay(profile)
		if err != nil {
			return nil, err
		}
		for _, k := range replayKs {
			xs := make([]float64, 0, len(replayBs))
			ys := make([]float64, 0, len(replayBs))
			for _, b := range replayBs {
				xs = append(xs, float64(b))
				ys = append(ys, rp.avgRequests(k, b))
			}
			res.Series = append(res.Series, stats.Series{
				Name: fmt.Sprintf("%s k=%d", profile, k),
				X:    xs, Y: ys,
			})
			res.Rows = append(res.Rows, []interface{}{profile, k, rp.avgRequests(k, 10), rp.avgRequests(k, 100)})
		}
	}
	res.Notes = append(res.Notes,
		"paper: with an initial response of about 10 elements, most top-10 queries finish within 2 requests",
		"requests fall monotonically with b; the price is the Figure 11 bandwidth overhead")
	return res, nil
}

// Fig13QueryEfficiency reproduces Figure 13: the distribution of
// QRatio_eff = k/TRes over the workload for k=10 and b ∈ {10,20,50}.
func Fig13QueryEfficiency(e *Env) (*Result, error) {
	res := &Result{
		ID:        "fig13",
		Title:     "Figure 13: efficiency in query answering (k=10)",
		ChartOpts: plot.Options{XLabel: "query terms in workload (%), ordered by QRatio", YLabel: "QRatio_eff (Eq. 14)"},
		Headers:   []string{"collection", "b", "share at QRatio=1", "median QRatio", "mean QRatio"},
	}
	const k = 10
	for _, profile := range []string{"studip", "odp"} {
		rp, err := e.Replay(profile)
		if err != nil {
			return nil, err
		}
		for _, b := range []int{10, 20, 50} {
			xs, ys := rp.qratioCurve(k, b, 100)
			res.Series = append(res.Series, stats.Series{
				Name: fmt.Sprintf("%s b=%d", profile, b),
				X:    xs, Y: ys,
			})
			atOne := 0.0
			for i, y := range ys {
				if y >= 0.999 {
					atOne = xs[i]
				}
			}
			res.Rows = append(res.Rows, []interface{}{profile, b, atOne, median(ys), stats.Mean(ys)})
		}
	}
	res.Notes = append(res.Notes,
		"paper: with b=10 around 60% of the (workload-weighted) queries run at QRatio=1, i.e. as cheaply as an ordinary index",
		"paper: b=20 halves the efficiency of the formerly optimal queries (QRatio 0.5); b=50 worse still")
	return res, nil
}

func median(xs []float64) float64 { return stats.Median(xs) }
