// Package experiments regenerates every evaluation artifact of the
// paper — Figures 4, 5, 7, 8, 9, 10, 11, 12, 13 and the Section 6.6
// bandwidth/throughput analysis — plus the extension experiments
// documented in DESIGN.md (multi-term accuracy, quantified attacks,
// ablations). Each experiment is a named Runner producing a Result
// that renders as an ASCII chart, a table and notes comparing the
// measured shape against what the paper reports.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	zerberr "zerberr"
	"zerberr/internal/client"
	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/plot"
	"zerberr/internal/stats"
	"zerberr/internal/workload"
)

// Result is the rendered outcome of one experiment.
type Result struct {
	ID     string
	Title  string
	Series []stats.Series
	// Headers/Rows hold an optional summary table.
	Headers []string
	Rows    [][]interface{}
	// Notes record paper-reported vs measured observations.
	Notes []string
	// ChartOpts controls rendering; zero value means defaults.
	ChartOpts plot.Options
}

// Render formats the result for a terminal.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n\n", r.ID, r.Title)
	if len(r.Series) > 0 {
		b.WriteString(plot.Chart(r.Title, r.Series, r.ChartOpts))
		b.WriteByte('\n')
	}
	if len(r.Headers) > 0 {
		b.WriteString(plot.Table(r.Headers, r.Rows))
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result's series as CSV.
func (r *Result) CSV() string { return plot.CSV(r.Series) }

// Runner executes one experiment against a shared environment.
type Runner func(e *Env) (*Result, error)

// Env lazily builds and caches the systems, workloads and replays the
// experiments share, so running the full suite sets everything up only
// once per collection profile.
type Env struct {
	// Scale multiplies corpus sizes (1 = laptop defaults; the
	// paper-sized collections are roughly 4× for Stud IP and 30× for
	// ODP).
	Scale float64
	// Seed drives all generation deterministically.
	Seed uint64
	// Quiet suppresses progress logging to Logf.
	Logf func(format string, args ...interface{})
	// Batched makes search-driving experiments use the batched v2
	// protocol (client.Search) for their timed loops instead of the
	// serial v1 path (cmd/zerber-bench -batched).
	Batched bool

	mu      sync.Mutex
	systems map[string]*zerberr.System
	clients map[string]*client.Client
	logs    map[string]*workload.Log
	replays map[string]*replay
}

// NewEnv creates an environment.
func NewEnv(scale float64, seed uint64) *Env {
	if scale <= 0 {
		scale = 1
	}
	return &Env{
		Scale:   scale,
		Seed:    seed,
		Logf:    func(string, ...interface{}) {},
		systems: make(map[string]*zerberr.System),
		clients: make(map[string]*client.Client),
		logs:    make(map[string]*workload.Log),
		replays: make(map[string]*replay),
	}
}

// profileByName resolves the two evaluation collections.
func profileByName(name string) (corpus.Profile, error) {
	switch name {
	case "studip":
		return corpus.ProfileStudIP(), nil
	case "odp":
		return corpus.ProfileODP(), nil
	default:
		return corpus.Profile{}, fmt.Errorf("experiments: unknown profile %q (want studip or odp)", name)
	}
}

// System returns the fully indexed Zerber+R deployment for a profile,
// building it on first use. Experiments use the compact 64-bit codec
// for byte parity with Section 6.6.
func (e *Env) System(profile string) (*zerberr.System, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if sys, ok := e.systems[profile]; ok {
		return sys, nil
	}
	p, err := profileByName(profile)
	if err != nil {
		return nil, err
	}
	p = p.Scale(e.Scale)
	e.Logf("building %s system (%d docs, %d vocab)...", profile, p.NumDocs, p.VocabSize)
	c := corpus.Generate(p, e.Seed)
	cfg := zerberr.DefaultConfig()
	cfg.Seed = e.Seed
	cfg.Codec = crypt.Compact64Codec{}
	sys, err := zerberr.Setup(c, cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.IndexAll(); err != nil {
		return nil, err
	}
	e.systems[profile] = sys
	e.Logf("%s system ready: %d elements in %d merged lists", profile, sys.Server.NumElements(), sys.Server.NumLists())
	return sys, nil
}

// Client returns a shared all-groups reader client for the profile.
func (e *Env) Client(profile string) (*client.Client, error) {
	sys, err := e.System(profile)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cl, ok := e.clients[profile]; ok {
		return cl, nil
	}
	cl, err := sys.NewClient("experiments-reader")
	if err != nil {
		return nil, err
	}
	e.clients[profile] = cl
	return cl, nil
}

// Workload returns the profile's query log, generating it on first
// use.
func (e *Env) Workload(profile string) (*workload.Log, error) {
	sys, err := e.System(profile)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if l, ok := e.logs[profile]; ok {
		return l, nil
	}
	cfg := workload.DefaultConfig()
	cfg.NumQueries = int(20000 * e.Scale)
	if cfg.NumQueries < 2000 {
		cfg.NumQueries = 2000
	}
	l := workload.Generate(sys.Corpus, cfg, e.Seed)
	e.logs[profile] = l
	return l, nil
}

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"fig04":     Fig04TFDistribution,
	"fig05":     Fig05NormTFDistribution,
	"fig07":     Fig07GaussianSum,
	"fig08":     Fig08ExampleRSTF,
	"fig09":     Fig09SigmaSelection,
	"fig10":     Fig10WorkloadConcentration,
	"fig11":     Fig11BandwidthOverhead,
	"fig12":     Fig12RequestCounts,
	"fig13":     Fig13QueryEfficiency,
	"bandwidth": BandwidthAnalysis,
	"accuracy":  MultiTermAccuracy,
	"attacks":   AttackSimulations,
	"ablation":  Ablations,
}

// docs gives each experiment a one-line description without having
// to run it (Result.Title is only known after the fact, and some
// titles embed generated data).
var docs = map[string]string{
	"fig04":     "Figure 4: log-log plot of TF distributions",
	"fig05":     "Figure 5: log-log plot of normalized TF distributions",
	"fig07":     "Figure 7: probability distribution from 5 training values",
	"fig08":     "Figure 8: example RSTF for a sampled term",
	"fig09":     "Figure 9: TRS variance vs sigma",
	"fig10":     "Figure 10: cumulative top-10 workload vs query-term rank",
	"fig11":     "Figure 11: average bandwidth overhead vs initial response size",
	"fig12":     "Figure 12: average number of requests vs initial response size",
	"fig13":     "Figure 13: efficiency in query answering (k=10)",
	"bandwidth": "Section 6.6: network bandwidth and throughput (ODP)",
	"accuracy":  "Ext-A: multi-term ranking accuracy (top-10 overlap, Stud IP)",
	"attacks":   "Ext-B: adversary simulations (Definition 1 quantified)",
	"ablation":  "Ext-C: ablations of design choices",
}

// Doc returns the experiment's one-line description.
func Doc(id string) string { return docs[id] }

// IDs lists all experiment IDs in run order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, e *Env) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(e)
}
