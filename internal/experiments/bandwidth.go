package experiments

import (
	"context"
	"fmt"
	"time"

	"zerberr/internal/client"
	"zerberr/internal/corpus"
	"zerberr/internal/stats"
)

// Section 6.6 constants from the paper's measurements, used for the
// comparison table.
const (
	paperSnippetBytes     = 250  // per result snippet incl. XML
	paperTermsPerQuery    = 2.4  // mean query length
	paperGoogleTop10KB    = 15.0 // reported competitor responses
	paperAltavistaTop10KB = 37.0
	paperYahooTop10KB     = 59.0
	paperElementsPerTerm  = 85.0  // ODP elements per query term
	paperQueriesPerSecond = 750.0 // on the 2009 testbed
	paperTop10ResponseKB  = 3.5
	paperElementSizeBits  = 64
)

// BandwidthAnalysis reproduces the Section 6.6 bandwidth and
// throughput analysis on the ODP collection: posting elements per
// query term, bytes per response, queries per second, and the
// comparison against 2009-era web search responses.
func BandwidthAnalysis(e *Env) (*Result, error) {
	rp, err := e.Replay("odp")
	if err != nil {
		return nil, err
	}
	cl, err := e.Client("odp")
	if err != nil {
		return nil, err
	}
	log, err := e.Workload("odp")
	if err != nil {
		return nil, err
	}
	const k, b = 10, 10
	avgElems := rp.avgElements(k, b)
	elementBytes := cl.Codec().WireSize()
	perTermKB := avgElems * float64(elementBytes) / 1024
	snippetsKB := float64(k*paperSnippetBytes) / 1024
	top10KB := perTermKB*paperTermsPerQuery + snippetsKB

	// Throughput: time the protocol over a slice of the real stream.
	// With Batched (zerber-bench -batched) the loop instead drives
	// whole queries through the batched v2 path.
	stream := log.SingleTermStream()
	n := len(stream)
	if n > 4000 {
		n = 4000
	}
	var termQPS float64
	if e.Batched {
		covered := 0
		start := time.Now()
		for _, q := range log.Queries {
			if covered >= n {
				break
			}
			if _, _, err := cl.Search(context.Background(), q.Terms, k); err != nil {
				return nil, fmt.Errorf("bandwidth: %w", err)
			}
			covered += len(q.Terms)
		}
		elapsed := time.Since(start)
		termQPS = float64(covered) / elapsed.Seconds()
		n = covered
	} else {
		start := time.Now()
		for _, term := range stream[:n] {
			if _, _, err := cl.Search(context.Background(), []corpus.TermID{term}, k,
				client.WithSerial(), client.WithInitialResponse(b)); err != nil {
				return nil, fmt.Errorf("bandwidth: %w", err)
			}
		}
		elapsed := time.Since(start)
		termQPS = float64(n) / elapsed.Seconds()
	}
	queryQPS := termQPS / paperTermsPerQuery

	// Round-trip savings of the batched v2 protocol: a multi-term
	// query's serial cost is Σ per-term requests, its batched cost is
	// the max follow-up depth across terms (one QueryBatch per round).
	multi := 0
	serialReq, batchedRounds := 0, 0
	for _, q := range log.Queries {
		if len(q.Terms) < 2 {
			continue
		}
		if multi >= 200 {
			break
		}
		_, serial, err := cl.Search(context.Background(), q.Terms, k, client.WithSerial())
		if err != nil {
			return nil, fmt.Errorf("bandwidth: serial search: %w", err)
		}
		_, batched, err := cl.Search(context.Background(), q.Terms, k)
		if err != nil {
			return nil, fmt.Errorf("bandwidth: batched search: %w", err)
		}
		serialReq += serial.Requests
		batchedRounds += batched.Rounds
		multi++
	}

	res := &Result{
		ID:      "bandwidth",
		Title:   "Section 6.6: network bandwidth and throughput (ODP)",
		Headers: []string{"quantity", "paper", "measured"},
		Rows: [][]interface{}{
			{"posting elements per query term (k=10, b=10)", paperElementsPerTerm, avgElems},
			{"bytes per posting element", float64(paperElementSizeBits / 8), float64(elementBytes)},
			{"response per query term (KB)", 0.7, perTermKB},
			{"top-10 snippets (KB)", 2.5, snippetsKB},
			{"total top-10 response (KB)", paperTop10ResponseKB, top10KB},
			{"queries per second (one server)", paperQueriesPerSecond, queryQPS},
			{"Google top-10 response (KB, from paper)", paperGoogleTop10KB, paperGoogleTop10KB},
			{"Altavista top-10 response (KB, from paper)", paperAltavistaTop10KB, paperAltavistaTop10KB},
			{"Yahoo top-10 response (KB, from paper)", paperYahooTop10KB, paperYahooTop10KB},
		},
		Series: []stats.Series{{
			Name: "top-10 response KB (zerber+r, google, altavista, yahoo)",
			X:    []float64{1, 2, 3, 4},
			Y:    []float64{top10KB, paperGoogleTop10KB, paperAltavistaTop10KB, paperYahooTop10KB},
		}},
	}
	if multi > 0 {
		avgSerial := float64(serialReq) / float64(multi)
		avgBatched := float64(batchedRounds) / float64(multi)
		res.Rows = append(res.Rows,
			[]interface{}{"serial v1 round-trips per multi-term query", 0.0, avgSerial},
			[]interface{}{"batched v2 round-trips per multi-term query", 0.0, avgBatched},
			[]interface{}{"round-trip savings factor (serial/batched)", 0.0, avgSerial / avgBatched},
		)
		res.Series = append(res.Series, stats.Series{
			Name: "round-trips per multi-term query (serial v1, batched v2)",
			X:    []float64{1, 2},
			Y:    []float64{avgSerial, avgBatched},
		})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"round-trip comparison over %d multi-term queries: batching collapses each round to one exchange covering every still-open list (no paper counterpart — rows show 0)", multi))
	}
	res.Notes = append(res.Notes,
		"paper: ~85 elements/query term at 64 bits each ≈ 0.7 KB; with 2.5 KB of snippets the top-10 response is ~3.5 KB, well under 2009 search engines",
		"absolute QPS depends on hardware; the paper's 750 q/s was measured on a 2×2.0 GHz 2009 machine",
		fmt.Sprintf("measured on %d protocol runs over the real query stream", n))
	return res, nil
}
