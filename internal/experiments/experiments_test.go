package experiments

import (
	"strings"
	"sync"
	"testing"

	"zerberr/internal/corpus"
)

// sharedEnv is built once per test binary: experiments share systems,
// so the suite exercises the cache too.
var (
	envOnce sync.Once
	envInst *Env
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment environments are slow; skipping in -short mode")
	}
	envOnce.Do(func() {
		envInst = NewEnv(0.1, 7)
	})
	return envInst
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"ablation", "accuracy", "attacks", "bandwidth",
		"fig04", "fig05", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", NewEnv(1, 1)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func runAndRender(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, testEnv(t))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result ID %q, want %q", res.ID, id)
	}
	out := res.Render()
	if !strings.Contains(out, res.Title) {
		t.Fatalf("%s render missing title", id)
	}
	return res
}

func TestFig04(t *testing.T) {
	res := runAndRender(t, "fig04")
	if len(res.Series) != 2 {
		t.Fatalf("fig04 has %d series", len(res.Series))
	}
	// Both tail slopes must be negative (decaying distributions).
	for _, row := range res.Rows {
		if slope := row[2].(float64); slope >= 0 {
			t.Fatalf("fig04 %v tail slope %v not negative", row[0], slope)
		}
	}
}

func TestFig05(t *testing.T) {
	res := runAndRender(t, "fig05")
	if len(res.Series) != 2 {
		t.Fatalf("fig05 has %d series", len(res.Series))
	}
	// Term-specificity: medians differ.
	m0 := res.Rows[0][2].(float64)
	m1 := res.Rows[1][2].(float64)
	if m0 == m1 {
		t.Fatal("fig05 probe terms have identical medians: no term specificity")
	}
}

func TestFig07(t *testing.T) {
	res := runAndRender(t, "fig07")
	if len(res.Series) != 6 { // 5 bells + accumulated
		t.Fatalf("fig07 has %d series, want 6", len(res.Series))
	}
	sum := res.Series[5]
	peak := 0.0
	for _, y := range sum.Y {
		if y > peak {
			peak = y
		}
	}
	if peak <= 0 {
		t.Fatal("fig07 accumulated density is flat")
	}
}

func TestFig08(t *testing.T) {
	res := runAndRender(t, "fig08")
	ys := res.Series[0].Y
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-1e-12 {
			t.Fatal("fig08 RSTF curve not monotone")
		}
	}
	if ys[0] < 0 || ys[len(ys)-1] > 1 {
		t.Fatal("fig08 RSTF outside [0,1]")
	}
}

func TestFig09(t *testing.T) {
	res := runAndRender(t, "fig09")
	best := res.Rows[0][0].(float64)
	minVar := res.Rows[0][1].(float64)
	loVar := res.Rows[0][2].(float64)
	if !(minVar < loVar) {
		t.Fatalf("fig09: optimum %v not better than smallest-sigma variance %v", minVar, loVar)
	}
	if best <= 0 {
		t.Fatalf("fig09: nonsensical optimal sigma %v", best)
	}
}

func TestFig10(t *testing.T) {
	res := runAndRender(t, "fig10")
	ys := res.Series[0].Y
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-1e-9 {
			t.Fatal("fig10 cumulative curve not monotone")
		}
	}
	// Head concentration: first 10% of terms should carry > 40% of the
	// workload.
	idx := len(ys) / 10
	if idx > 0 && ys[idx] < 40 {
		t.Fatalf("fig10: first 10%% of terms carry only %.1f%% of workload", ys[idx])
	}
}

func TestFig11MinimumNearK(t *testing.T) {
	res := runAndRender(t, "fig11")
	if len(res.Series) != 6 {
		t.Fatalf("fig11 has %d series, want 6", len(res.Series))
	}
	// The paper's headline: best b tracks k. Allow one grid step of
	// slack (the grid is {1,2,5,10,20,50,100}).
	for _, row := range res.Rows {
		k := row[1].(int)
		bestB := row[2].(int)
		if bestB > 4*k || k > 10*bestB {
			t.Fatalf("fig11 %v k=%d: best b=%d too far from k", row[0], k, bestB)
		}
	}
}

func TestFig12Monotone(t *testing.T) {
	res := runAndRender(t, "fig12")
	for _, s := range res.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-9 {
				t.Fatalf("fig12 %s: requests increased with larger b", s.Name)
			}
		}
	}
	// At b=100 almost everything should finish in one request.
	for _, row := range res.Rows {
		if at100 := row[3].(float64); at100 > 2.5 {
			t.Fatalf("fig12 %v k=%v: %v requests at b=100", row[0], row[1], at100)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	res := runAndRender(t, "fig13")
	if len(res.Series) != 6 {
		t.Fatalf("fig13 has %d series, want 6", len(res.Series))
	}
	for _, s := range res.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-9 {
				t.Fatalf("fig13 %s not non-increasing", s.Name)
			}
		}
		if s.Y[0] > 1.000001 {
			t.Fatalf("fig13 %s starts above 1", s.Name)
		}
	}
	// b=10 should give more queries at QRatio=1 than b=50 on the same
	// collection (rows are ordered b=10,20,50 per profile).
	for _, prof := range []int{0, 3} {
		at10 := res.Rows[prof][2].(float64)
		at50 := res.Rows[prof+2][2].(float64)
		if at10 < at50 {
			t.Fatalf("fig13: b=10 share at QRatio=1 (%v) below b=50 (%v)", at10, at50)
		}
	}
}

func TestBandwidth(t *testing.T) {
	res := runAndRender(t, "bandwidth")
	if len(res.Rows) < 6 {
		t.Fatalf("bandwidth table has %d rows", len(res.Rows))
	}
	// Per-element bytes must match the compact codec (paper parity).
	if got := res.Rows[1][2].(float64); got != 8 {
		t.Fatalf("bandwidth: element bytes %v, want 8", got)
	}
	// Throughput must be positive.
	if qps := res.Rows[5][2].(float64); qps <= 0 {
		t.Fatalf("bandwidth: qps %v", qps)
	}
}

func TestAccuracy(t *testing.T) {
	res := runAndRender(t, "accuracy")
	vsTFIDF := res.Rows[0][1].(float64)
	vsNormTF := res.Rows[1][1].(float64)
	if vsNormTF < vsTFIDF-0.05 {
		t.Fatalf("accuracy: overlap vs IDF-free (%v) should be at least vs TF-IDF (%v)", vsNormTF, vsTFIDF)
	}
	// The missing-IDF trade-off is real and substantial on a Zipf-heavy
	// synthetic corpus; the check only guards against total collapse.
	if vsTFIDF < 0.1 {
		t.Fatalf("accuracy: overlap vs TF-IDF %v implausibly low", vsTFIDF)
	}
	if vsNormTF < 0.5 {
		t.Fatalf("accuracy: overlap vs IDF-free %v too low", vsNormTF)
	}
}

// attackRow finds a row by its (attack, system) labels.
func attackRow(t *testing.T, res *Result, attack, system string) []interface{} {
	t.Helper()
	for _, row := range res.Rows {
		if row[0] == attack && row[1] == system {
			return row
		}
	}
	t.Fatalf("attacks: no row for (%s, %s); rows: %v", attack, system, res.Rows)
	return nil
}

func TestAttacks(t *testing.T) {
	res := runAndRender(t, "attacks")
	if len(res.Rows) != 11 {
		t.Fatalf("attacks table has %d rows, want 11", len(res.Rows))
	}
	// Threat 1a: list composition. BFM's similar-frequency merging
	// keeps the value-only attack near chance on plain scores (merged
	// terms share their bulk statistics — that is BFM working).
	plainBFM := attackRow(t, res, "list composition", "plain scores, BFM")
	bfmCompAdv := plainBFM[2].(float64) - plainBFM[3].(float64)
	if bfmCompAdv > 0.15 {
		t.Fatalf("attacks: plain+BFM composition advantage %.3f, want near chance", bfmCompAdv)
	}
	// Extension finding: the published per-term RSTF maps the shared
	// score atoms to term-specific TRS positions, creating a
	// fine-structure fingerprint the plain index did not have.
	trsBFM := attackRow(t, res, "list composition", "TRS, BFM")
	trsCompAdv := trsBFM[2].(float64) - trsBFM[3].(float64)
	if trsCompAdv < bfmCompAdv+0.1 {
		t.Fatalf("attacks: TRS fine-structure composition advantage %.3f not above plain %.3f — finding disappeared", trsCompAdv, bfmCompAdv)
	}
	// And the jitter countermeasure must close most of that channel.
	jit := attackRow(t, res, "list composition", "TRS + jitter, BFM")
	jitAdv := jit[2].(float64) - jit[3].(float64)
	if jitAdv > trsCompAdv/2 {
		t.Fatalf("attacks: jittered composition advantage %.3f not well below unjittered %.3f", jitAdv, trsCompAdv)
	}
	// Threat 1b: per-element attribution outside the training sample —
	// amplification must respect Definition 1 (r=4 here) and stay
	// small for TRS.
	trsEl := attackRow(t, res, "element attribution (non-train)", "Zerber+R (TRS)")
	if amp := trsEl[4].(float64); amp > 1.5 {
		t.Fatalf("attacks: TRS non-train amplification %.3f should stay near 1", amp)
	}
	// Residual leak on training documents must be present (that is the
	// extension finding) and much larger under TRS than the non-train
	// attribution.
	trsTrain := attackRow(t, res, "element attribution (train docs)", "Zerber+R (TRS)")
	leak := trsTrain[2].(float64) - trsTrain[3].(float64)
	if leak < 0.2 {
		t.Fatalf("attacks: training-doc leak %.3f unexpectedly small — finding disappeared", leak)
	}
	// Threat 2: random merging must leak through request counts while
	// BFM stays near its prior.
	bfm := attackRow(t, res, "request-count", "BFM merging")
	random := attackRow(t, res, "request-count", "random merging")
	bfmAdv := bfm[2].(float64) - bfm[3].(float64)
	randAdv := random[2].(float64) - random[3].(float64)
	if randAdv < bfmAdv+0.05 {
		t.Fatalf("attacks: request-count advantage random (%.3f) not clearly above BFM (%.3f)", randAdv, bfmAdv)
	}
	if bfmAdv > 0.1 {
		t.Fatalf("attacks: BFM request-count advantage %.3f, want near zero", bfmAdv)
	}
}

func TestAblation(t *testing.T) {
	res := runAndRender(t, "ablation")
	var rstfVar, rawVar, bfmSpread, randSpread float64
	for _, row := range res.Rows {
		switch {
		case row[0] == "transform" && row[1] == "Gaussian-sum RSTF":
			rstfVar = row[3].(float64)
		case row[0] == "transform" && row[1] == "identity (raw scores)":
			rawVar = row[3].(float64)
		case row[0] == "merge" && row[1] == "BFM":
			bfmSpread = row[3].(float64)
		case row[0] == "merge" && row[1] == "random":
			randSpread = row[3].(float64)
		}
	}
	if !(rstfVar < rawVar/5) {
		t.Fatalf("ablation: RSTF variance %v not far below raw %v", rstfVar, rawVar)
	}
	if !(bfmSpread < randSpread) {
		t.Fatalf("ablation: BFM df spread %v not below random %v", bfmSpread, randSpread)
	}
}

func TestSampleTerms(t *testing.T) {
	terms := make([]corpus.TermID, 100)
	freq := func(t corpus.TermID) int { return 1000 - int(t) }
	for i := range terms {
		terms[i] = corpus.TermID(i)
	}
	// Under cap: identity.
	all := sampleTerms(terms, freq, 200)
	if len(all) != 100 {
		t.Fatalf("under cap: %d samples", len(all))
	}
	totalW := 0.0
	for _, s := range all {
		totalW += s.weight
	}
	// Over cap: weights must still sum to the full workload.
	sampled := sampleTerms(terms, freq, 20)
	if len(sampled) > 25 {
		t.Fatalf("over cap: %d samples", len(sampled))
	}
	sampledW := 0.0
	for _, s := range sampled {
		sampledW += s.weight
	}
	if sampledW != totalW {
		t.Fatalf("sampled weight %v != total %v", sampledW, totalW)
	}
}
