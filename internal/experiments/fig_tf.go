package experiments

import (
	"fmt"
	"math"

	"zerberr/internal/corpus"
	"zerberr/internal/plot"
	"zerberr/internal/stats"
)

// pickFrequentAndModerate selects the analogues of the paper's
// "nicht" (very frequent) and "management" (less frequent) probe
// terms: the highest-df term, and a term roughly two orders of
// magnitude down the df ranking.
func pickFrequentAndModerate(c *corpus.Corpus) (frequent, moderate corpus.TermID) {
	byDF := c.TermsByDF()
	frequent = byDF[0]
	idx := len(byDF) / 20
	if idx < 1 {
		idx = len(byDF) - 1
	}
	moderate = byDF[idx]
	// Ensure the moderate term still has enough observations to plot.
	for idx > 1 && c.DF(byDF[idx]) < 30 {
		idx /= 2
	}
	moderate = byDF[idx]
	return frequent, moderate
}

// tailSlope fits a power law from the modal bin onward (the decaying
// branch the paper's log-log plots show).
func tailSlope(xs, ys []float64) (float64, error) {
	if len(ys) == 0 {
		return math.NaN(), stats.ErrDegenerateFit
	}
	mode := 0
	for i, y := range ys {
		if y > ys[mode] {
			mode = i
		}
	}
	fit, err := stats.FitPowerLaw(xs[mode:], ys[mode:])
	if err != nil {
		return math.NaN(), err
	}
	return fit.Slope, nil
}

// Fig04TFDistribution reproduces Figure 4: log-log raw term-frequency
// distributions of a frequent and a less frequent term.
func Fig04TFDistribution(e *Env) (*Result, error) {
	sys, err := e.System("studip")
	if err != nil {
		return nil, err
	}
	c := sys.Corpus
	frequent, moderate := pickFrequentAndModerate(c)
	res := &Result{
		ID:        "fig04",
		Title:     "Figure 4: log-log plot of TF distributions",
		ChartOpts: plot.Options{LogX: true, LogY: true, XLabel: "term frequency", YLabel: "#documents"},
		Headers:   []string{"term", "df", "tail slope"},
	}
	for _, probe := range []struct {
		name string
		term corpus.TermID
	}{
		{"frequent", frequent},
		{"less frequent", moderate},
	} {
		counts := stats.FreqCount(c.TFValues(probe.term))
		xs, ys := stats.LogBin(counts, 1.5)
		res.Series = append(res.Series, stats.Series{
			Name: fmt.Sprintf("%s (%s)", probe.name, c.Term(probe.term)),
			X:    xs, Y: ys,
		})
		slope, err := tailSlope(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("fig04: fitting %s: %w", probe.name, err)
		}
		res.Rows = append(res.Rows, []interface{}{probe.name, c.DF(probe.term), slope})
		if slope >= 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("WARNING: %s term tail slope %.2f is not decaying", probe.name, slope))
		}
	}
	res.Notes = append(res.Notes,
		"paper: both terms decay roughly linearly on the log-log plot (power law), with term-specific slope and value range",
		"terms are distinguishable by slope and range — the leak motivating the RSTF")
	return res, nil
}

// Fig05NormTFDistribution reproduces Figure 5: log-log normalized-TF
// distributions of the same two terms — no longer power law but still
// term-specific.
func Fig05NormTFDistribution(e *Env) (*Result, error) {
	sys, err := e.System("studip")
	if err != nil {
		return nil, err
	}
	c := sys.Corpus
	frequent, moderate := pickFrequentAndModerate(c)
	res := &Result{
		ID:        "fig05",
		Title:     "Figure 5: log-log plot of normalized TF distributions",
		ChartOpts: plot.Options{LogX: true, LogY: true, XLabel: "normalized TF (×10⁶)", YLabel: "#documents"},
		Headers:   []string{"term", "df", "median normTF", "p90 normTF"},
	}
	for _, probe := range []struct {
		name string
		term corpus.TermID
	}{
		{"frequent", frequent},
		{"less frequent", moderate},
	} {
		vals := c.NormTFValues(probe.term)
		// Bucket the continuous scores onto an integer micro-scale so
		// the same log-binning machinery applies.
		scaled := make([]int, len(vals))
		for i, v := range vals {
			scaled[i] = int(v * 1e6)
		}
		counts := stats.FreqCount(scaled)
		xs, ys := stats.LogBin(counts, 1.5)
		res.Series = append(res.Series, stats.Series{
			Name: fmt.Sprintf("%s (%s)", probe.name, c.Term(probe.term)),
			X:    xs, Y: ys,
		})
		res.Rows = append(res.Rows, []interface{}{
			probe.name, c.DF(probe.term),
			stats.Median(vals), stats.Percentile(vals, 90),
		})
	}
	// The leak: the two distributions occupy different ranges.
	med0 := res.Rows[0][2].(float64)
	med1 := res.Rows[1][2].(float64)
	res.Notes = append(res.Notes,
		fmt.Sprintf("median normalized TF differs by %.1f× between the probe terms — term-specific, as the paper observes", math.Max(med0, med1)/math.Min(med0, med1)),
		"paper: normalized TF is no longer power law but remains term-specific, so storing it plainly still identifies terms")
	return res, nil
}
