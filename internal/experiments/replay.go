package experiments

import (
	"context"
	"fmt"
	"sort"

	"zerberr/internal/client"
	"zerberr/internal/corpus"
)

// The replay grid: every (k, b) combination Figures 11-13 need.
var (
	replayKs = []int{1, 10, 50}
	replayBs = []int{1, 2, 5, 10, 20, 50, 100}
)

// termSample is one sampled distinct query term with its workload
// weight (how many query occurrences it represents).
type termSample struct {
	term   corpus.TermID
	weight float64
}

// replayPoint records the protocol cost of one (term, k, b) run.
type replayPoint struct {
	term      corpus.TermID
	weight    float64
	elements  int // TRes: total posting elements returned
	requests  int
	exhausted bool
}

// replay caches protocol costs for a profile across the whole grid.
type replay struct {
	points map[[2]int][]replayPoint // key: {k, b}
}

// sampleTerms bounds replay cost: all distinct query terms when few,
// otherwise the frequency head exactly plus a systematic stride sample
// of the tail with compensating weights.
func sampleTerms(terms []corpus.TermID, freq func(corpus.TermID) int, cap int) []termSample {
	if cap <= 0 {
		cap = 1200
	}
	if len(terms) <= cap {
		out := make([]termSample, len(terms))
		for i, t := range terms {
			out[i] = termSample{term: t, weight: float64(freq(t))}
		}
		return out
	}
	head := cap / 2
	out := make([]termSample, 0, cap)
	for _, t := range terms[:head] {
		out = append(out, termSample{term: t, weight: float64(freq(t))})
	}
	tail := terms[head:]
	stride := (len(tail) + head - 1) / head
	for i := 0; i < len(tail); i += stride {
		// The sampled term stands for its whole stride block; weight
		// by the block's total frequency for an unbiased estimate.
		blockWeight := 0
		for j := i; j < i+stride && j < len(tail); j++ {
			blockWeight += freq(tail[j])
		}
		out = append(out, termSample{term: tail[i], weight: float64(blockWeight)})
	}
	return out
}

// Replay executes (or returns the cached) protocol replay for the
// profile over the full grid.
func (e *Env) Replay(profile string) (*replay, error) {
	e.mu.Lock()
	if rp, ok := e.replays[profile]; ok {
		e.mu.Unlock()
		return rp, nil
	}
	e.mu.Unlock()

	log, err := e.Workload(profile)
	if err != nil {
		return nil, err
	}
	cl, err := e.Client(profile)
	if err != nil {
		return nil, err
	}
	samples := sampleTerms(log.TermsByFreq(), log.Freq, 1200)
	e.Logf("replaying %s: %d sampled terms × %d k × %d b", profile, len(samples), len(replayKs), len(replayBs))
	rp := &replay{points: make(map[[2]int][]replayPoint)}
	for _, k := range replayKs {
		for _, b := range replayBs {
			pts := make([]replayPoint, 0, len(samples))
			for _, s := range samples {
				_, st, err := cl.Search(context.Background(), []corpus.TermID{s.term}, k,
					client.WithSerial(), client.WithInitialResponse(b))
				if err != nil {
					return nil, fmt.Errorf("experiments: replay term %d k=%d b=%d: %w", s.term, k, b, err)
				}
				pts = append(pts, replayPoint{
					term:      s.term,
					weight:    s.weight,
					elements:  st.Elements,
					requests:  st.Requests,
					exhausted: st.Exhausted,
				})
			}
			rp.points[[2]int{k, b}] = pts
		}
	}
	e.mu.Lock()
	e.replays[profile] = rp
	e.mu.Unlock()
	return rp, nil
}

// avgBandwidthOverhead computes Equation 13 over the weighted sample:
// mean of TRes(q)/k.
func (rp *replay) avgBandwidthOverhead(k, b int) float64 {
	pts := rp.points[[2]int{k, b}]
	num, den := 0.0, 0.0
	for _, p := range pts {
		num += p.weight * float64(p.elements) / float64(k)
		den += p.weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// avgRequests computes the weighted mean request count (Figure 12).
func (rp *replay) avgRequests(k, b int) float64 {
	pts := rp.points[[2]int{k, b}]
	num, den := 0.0, 0.0
	for _, p := range pts {
		num += p.weight * float64(p.requests)
		den += p.weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// avgElements is the weighted mean TRes (Section 6.6's "posting
// elements returned per query term").
func (rp *replay) avgElements(k, b int) float64 {
	return rp.avgBandwidthOverhead(k, b) * float64(k)
}

// qratioCurve returns the Figure 13 distribution: QRatio_eff = k/TRes
// per query occurrence, ordered descending (the paper orders query
// terms by efficiency), evaluated at `points` evenly spaced workload
// percentiles.
func (rp *replay) qratioCurve(k, b, points int) (xs, ys []float64) {
	pts := rp.points[[2]int{k, b}]
	type wq struct {
		q float64
		w float64
	}
	var all []wq
	totalW := 0.0
	for _, p := range pts {
		tres := p.elements
		if tres < 1 {
			tres = 1
		}
		q := float64(k) / float64(tres)
		if q > 1 {
			q = 1 // a response shorter than k cannot beat the baseline
		}
		all = append(all, wq{q: q, w: p.weight})
		totalW += p.weight
	}
	if totalW == 0 {
		return nil, nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].q > all[j].q })
	xs = make([]float64, 0, points)
	ys = make([]float64, 0, points)
	cum := 0.0
	i := 0
	for p := 1; p <= points; p++ {
		target := float64(p) / float64(points) * totalW
		for i < len(all)-1 && cum+all[i].w < target {
			cum += all[i].w
			i++
		}
		xs = append(xs, float64(p)/float64(points)*100)
		ys = append(ys, all[i].q)
	}
	return xs, ys
}
