package experiments

import (
	"fmt"
	"math"

	"zerberr/internal/corpus"
	"zerberr/internal/plot"
	"zerberr/internal/rstf"
	"zerberr/internal/stats"
)

// Fig07GaussianSum reproduces Figure 7: the probability density
// modelled from five training values — one Gaussian-like bell per
// value (solid lines in the paper) and their accumulated sum (dashed).
func Fig07GaussianSum(e *Env) (*Result, error) {
	training := []float64{0.12, 0.18, 0.22, 0.40, 0.55}
	const sigma = 40
	sum, err := rstf.New(training, sigma)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:        "fig07",
		Title:     "Figure 7: probability distribution from 5 training values",
		ChartOpts: plot.Options{XLabel: "relevance score", YLabel: "probability density"},
	}
	grid := linspace(0, 0.7, 200)
	// Individual bells.
	for i, mu := range training {
		single, err := rstf.New([]float64{mu}, sigma)
		if err != nil {
			return nil, err
		}
		ys := make([]float64, len(grid))
		for j, x := range grid {
			// Scale per-bell density by 1/N so bells visually stack to
			// the sum, as in the paper's figure.
			ys[j] = single.Density(x) / float64(len(training))
		}
		res.Series = append(res.Series, stats.Series{Name: fmt.Sprintf("bell μ=%.2f", mu), X: grid, Y: ys})
		_ = i
	}
	ys := make([]float64, len(grid))
	for j, x := range grid {
		ys[j] = sum.Density(x)
	}
	res.Series = append(res.Series, stats.Series{Name: "accumulated density", X: grid, Y: ys})
	res.Notes = append(res.Notes,
		"paper: the dashed accumulated curve peaks where training values cluster (here around 0.12-0.22)",
		"the density of training points in a region encodes the probability of unseen values there (Section 5.1.1)")
	return res, nil
}

// probeTermWithSamples picks a term with a rich training sample for
// the RSTF illustration figures (the paper uses the German term
// "Vergütung").
func probeTermWithSamples(c *corpus.Corpus, train map[corpus.TermID][]float64, minSamples int) (corpus.TermID, []float64) {
	byDF := c.TermsByDF()
	// Prefer a mid-frequency term: skip stopword-like heads.
	for _, t := range byDF[len(byDF)/100:] {
		if len(train[t]) >= minSamples {
			return t, train[t]
		}
	}
	// Fall back to the best-sampled term.
	var best corpus.TermID
	bestN := 0
	for t, xs := range train {
		if len(xs) > bestN {
			best, bestN = t, len(xs)
		}
	}
	return best, train[best]
}

// Fig08ExampleRSTF reproduces Figure 8: the trained transformation
// curve of one term, mapping input relevance scores to TRS in [0,1].
func Fig08ExampleRSTF(e *Env) (*Result, error) {
	sys, err := e.System("studip")
	if err != nil {
		return nil, err
	}
	train := corpus.TrainingScores(sys.Corpus, sys.Split.Train)
	term, _ := probeTermWithSamples(sys.Corpus, train, 40)
	f := sys.Store.Get(term)
	if f == nil {
		return nil, fmt.Errorf("fig08: probe term %d has no trained RSTF", term)
	}
	lo, hi := trainRange(train[term])
	grid := linspace(math.Max(0, lo-0.2*(hi-lo)), hi+0.2*(hi-lo), 300)
	ys := make([]float64, len(grid))
	for i, x := range grid {
		ys[i] = f.Transform(x)
	}
	res := &Result{
		ID:        "fig08",
		Title:     fmt.Sprintf("Figure 8: example RSTF for term %q", sys.Corpus.Term(term)),
		ChartOpts: plot.Options{XLabel: "input relevance score", YLabel: "output TRS"},
		Series:    []stats.Series{{Name: "RSTF", X: grid, Y: ys}},
		Headers:   []string{"term", "training points", "sigma", "TRS(min)", "TRS(max)"},
		Rows: [][]interface{}{{
			sys.Corpus.Term(term), f.N(), f.Sigma(), ys[0], ys[len(ys)-1],
		}},
	}
	res.Notes = append(res.Notes,
		"paper: the curve is monotone, steepest where training scores are densest, and spans [0,1]",
		"steep regions spread crowded score areas over a wider TRS range — the uniformization at work")
	return res, nil
}

// Fig09SigmaSelection reproduces Figure 9: TRS variance in the control
// set as a function of σ — decreasing, minimum at the optimum, then
// rising into overfitting.
func Fig09SigmaSelection(e *Env) (*Result, error) {
	sys, err := e.System("studip")
	if err != nil {
		return nil, err
	}
	train := corpus.TrainingScores(sys.Corpus, sys.Split.Train)
	control := corpus.TrainingScores(sys.Corpus, sys.Split.Control)
	// Use the best-calibrated term: the one maximizing the smaller of
	// its train/control sample sizes (scale-independent choice).
	var term corpus.TermID
	best := 0
	for t, tr := range train {
		n := len(control[t])
		if len(tr) < n {
			n = len(tr)
		}
		if n > best {
			best, term = n, t
		}
	}
	if best < 5 {
		return nil, fmt.Errorf("fig09: best term has only %d train/control samples", best)
	}
	bestSigma, bestVar, curve, err := rstf.SelectSigma(train[term], control[term], nil)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(curve))
	ys := make([]float64, len(curve))
	for i, p := range curve {
		xs[i] = p.Sigma
		ys[i] = p.Variance
	}
	res := &Result{
		ID:        "fig09",
		Title:     fmt.Sprintf("Figure 9: TRS variance vs σ (term %q)", sys.Corpus.Term(term)),
		ChartOpts: plot.Options{LogX: true, LogY: true, XLabel: "sigma", YLabel: "variance vs uniform"},
		Series:    []stats.Series{{Name: "control-set variance", X: xs, Y: ys}},
		Headers:   []string{"optimal sigma", "min variance", "variance at smallest sigma", "variance at largest sigma"},
		Rows:      [][]interface{}{{bestSigma, bestVar, ys[0], ys[len(ys)-1]}},
	}
	res.Notes = append(res.Notes,
		"paper: variance first falls with growing sigma, reaches a minimum at the optimal sigma, then overfitting destroys uniformness",
		fmt.Sprintf("paper reports min variance < 2e-5 on their (much larger) control sets; measured %.3g on %d control points", bestVar, len(control[term])))
	return res, nil
}

// linspace returns n evenly spaced values over [lo, hi].
func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// trainRange returns the min and max of a sample.
func trainRange(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
