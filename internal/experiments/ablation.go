package experiments

import (
	"fmt"
	"math"

	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/rstf"
	"zerberr/internal/stats"
)

// Ablations is extension experiment Ext-C: it isolates the design
// choices DESIGN.md calls out.
//
//	(a) transform: Gaussian-sum RSTF vs exact-ECDF vs identity —
//	    uniformness of the TRS each produces on held-out documents;
//	(b) merge strategy: BFM vs random — within-list spread of expected
//	    follow-up counts (the request-count leak surface);
//	(c) codec: wire size of the authenticated AES-GCM codec vs the
//	    paper's 64-bit compact codec.
func Ablations(e *Env) (*Result, error) {
	sys, err := e.System("studip")
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "ablation",
		Title: "Ext-C: ablations of design choices",
	}

	// (a) Transform quality on the held-out Rest split.
	train := corpus.TrainingScores(sys.Corpus, sys.Split.Train)
	eval := corpus.TrainingScores(sys.Corpus, sys.Split.Rest)
	const minSamples = 50
	var rstfVars, ecdfVars, rawVars []float64
	for t, scores := range eval {
		f := sys.Store.Get(t)
		if f == nil || len(scores) < minSamples {
			continue
		}
		ec, err := rstf.NewECDFTransform(train[t])
		if err != nil {
			continue
		}
		a := make([]float64, len(scores))
		b := make([]float64, len(scores))
		for i, x := range scores {
			a[i] = f.Transform(x)
			b[i] = ec.Transform(x)
		}
		rstfVars = append(rstfVars, stats.VarianceFromUniform(a))
		ecdfVars = append(ecdfVars, stats.VarianceFromUniform(b))
		rawVars = append(rawVars, stats.VarianceFromUniform(scores))
	}
	if len(rstfVars) == 0 {
		return nil, fmt.Errorf("ablation: no terms with %d+ held-out samples", minSamples)
	}
	// The paper's named future work: direct sigma estimation instead of
	// cross-validation.
	var directVars []float64
	for t, scores := range eval {
		if sys.Store.Get(t) == nil || len(scores) < minSamples {
			continue
		}
		f, err := rstf.New(train[t], rstf.DirectSigma(train[t]))
		if err != nil {
			continue
		}
		a := make([]float64, len(scores))
		for i, x := range scores {
			a[i] = f.Transform(x)
		}
		directVars = append(directVars, stats.VarianceFromUniform(a))
	}
	res.Headers = []string{"ablation", "variant", "metric", "value"}
	res.Rows = append(res.Rows,
		[]interface{}{"transform", "Gaussian-sum RSTF (cross-validated sigma)", "mean TRS variance vs uniform", stats.Mean(rstfVars)},
		[]interface{}{"transform", "Gaussian-sum RSTF (direct sigma)", "mean TRS variance vs uniform", stats.Mean(directVars)},
		[]interface{}{"transform", "exact ECDF", "mean TRS variance vs uniform", stats.Mean(ecdfVars)},
		[]interface{}{"transform", "identity (raw scores)", "mean TRS variance vs uniform", stats.Mean(rawVars)},
	)

	// (b) Merge strategy: spread of expected request counts per list.
	bfmSpread := requestSpread(sys.Corpus, func(t corpus.TermID) (uint32, bool) {
		l, ok := sys.Plan.ListOf(t)
		return uint32(l), ok
	}, sys.Plan.AllTerms())
	// Random merge on the same term statistics.
	randPlanSys, err := attackSystem(attackCorpus(e.Seed), e.Seed, false, true, 0)
	if err != nil {
		return nil, err
	}
	randSpread := requestSpread(randPlanSys.Corpus, func(t corpus.TermID) (uint32, bool) {
		l, ok := randPlanSys.Plan.ListOf(t)
		return uint32(l), ok
	}, randPlanSys.Plan.AllTerms())
	res.Rows = append(res.Rows,
		[]interface{}{"merge", "BFM", "mean within-list df ratio (max/min)", bfmSpread},
		[]interface{}{"merge", "random", "mean within-list df ratio (max/min)", randSpread},
	)

	// (c) Codec wire sizes.
	gcm := crypt.GCMCodec{}
	compact := crypt.Compact64Codec{}
	res.Rows = append(res.Rows,
		[]interface{}{"codec", gcm.Name(), "bytes per sealed element", float64(gcm.WireSize())},
		[]interface{}{"codec", compact.Name(), "bytes per sealed element", float64(compact.WireSize())},
		[]interface{}{"codec", "overhead factor", "gcm/compact", float64(gcm.WireSize()) / float64(compact.WireSize())},
	)

	res.Notes = append(res.Notes,
		"transform: lower variance is better; both RSTF and ECDF uniformize (RSTF generalizes to unseen scores), raw scores do not",
		"direct sigma (plug-in bandwidth rule, the paper's Section 5.1.3 future work) approaches the cross-validated optimum without the expensive search",
		"merge: a within-list df ratio near 1 means merged terms need similar follow-up counts (BFM's goal); random merging mixes frequencies by orders of magnitude",
		"codec: authenticated encryption costs 5.5× the paper's 64-bit elements — the integrity/bandwidth trade a deployment must choose")
	return res, nil
}

// requestSpread computes the mean, over multi-term merged lists, of
// the max/min document-frequency ratio among the list's terms — a
// direct proxy for how distinguishable their follow-up counts are.
func requestSpread(c *corpus.Corpus, listOf func(corpus.TermID) (uint32, bool), terms []corpus.TermID) float64 {
	byList := make(map[uint32][]int)
	for _, t := range terms {
		if l, ok := listOf(t); ok {
			if df := c.DF(t); df > 0 {
				byList[l] = append(byList[l], df)
			}
		}
	}
	var sum float64
	n := 0
	for _, dfs := range byList {
		if len(dfs) < 2 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, df := range dfs {
			lo = math.Min(lo, float64(df))
			hi = math.Max(hi, float64(df))
		}
		sum += hi / lo
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
