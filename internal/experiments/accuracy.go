package experiments

import (
	"context"
	"fmt"

	"zerberr/internal/rank"
	"zerberr/internal/stats"
)

// MultiTermAccuracy is extension experiment Ext-A: it quantifies the
// accuracy trade-off of Section 3.2 — Zerber+R answers multi-term
// queries as sequences of single-term queries without IDF, so its
// rankings drift from the TF×IDF baseline. Measured as top-10 overlap
// on the workload's multi-term queries.
func MultiTermAccuracy(e *Env) (*Result, error) {
	sys, err := e.System("studip")
	if err != nil {
		return nil, err
	}
	cl, err := e.Client("studip")
	if err != nil {
		return nil, err
	}
	log, err := e.Workload("studip")
	if err != nil {
		return nil, err
	}
	const k = 10
	var vsTFIDF, vsNormTF, normTFvsTFIDF []float64
	ran := 0
	for _, q := range log.Queries {
		if len(q.Terms) < 2 {
			continue
		}
		if ran >= 300 {
			break
		}
		ran++
		confidential, _, err := cl.Search(context.Background(), q.Terms, k)
		if err != nil {
			return nil, fmt.Errorf("accuracy: %w", err)
		}
		tfidf := sys.Baseline.Search(q.Terms, k, rank.TFIDFScorer{})
		normtf := sys.Baseline.Search(q.Terms, k, rank.NormTFScorer{})
		vsTFIDF = append(vsTFIDF, rank.Overlap(confidential, tfidf))
		vsNormTF = append(vsNormTF, rank.Overlap(confidential, normtf))
		normTFvsTFIDF = append(normTFvsTFIDF, rank.Overlap(normtf, tfidf))
	}
	if ran == 0 {
		return nil, fmt.Errorf("accuracy: no multi-term queries in workload")
	}
	res := &Result{
		ID:      "accuracy",
		Title:   "Ext-A: multi-term ranking accuracy (top-10 overlap, Stud IP)",
		Headers: []string{"comparison", "mean overlap@10", "median", "p10"},
		Rows: [][]interface{}{
			{"Zerber+R vs TF×IDF baseline", stats.Mean(vsTFIDF), stats.Median(vsTFIDF), stats.Percentile(vsTFIDF, 10)},
			{"Zerber+R vs IDF-free full scan", stats.Mean(vsNormTF), stats.Median(vsNormTF), stats.Percentile(vsNormTF, 10)},
			{"IDF-free full scan vs TF×IDF", stats.Mean(normTFvsTFIDF), stats.Median(normTFvsTFIDF), stats.Percentile(normTFvsTFIDF, 10)},
		},
		Series: []stats.Series{
			overlapHistogram("vs TF×IDF", vsTFIDF),
			overlapHistogram("vs IDF-free", vsNormTF),
		},
	}
	res.ChartOpts.XLabel = "overlap@10"
	res.ChartOpts.YLabel = "queries"
	res.Notes = append(res.Notes,
		fmt.Sprintf("measured over %d multi-term queries", ran),
		"paper (Sections 3.2, 8): single-term accuracy is exact; multi-term accuracy 'slightly decreases' without IDF — the drop vs TF×IDF quantifies that trade-off",
		"the 'vs IDF-free' row isolates protocol truncation (per-term top-k instead of full lists) from the missing-IDF effect")
	return res, nil
}

// overlapHistogram buckets overlap values into 11 bins (0, 0.1, ... 1).
func overlapHistogram(name string, vals []float64) stats.Series {
	h := stats.NewHistogram(0, 1.0000001, 11)
	for _, v := range vals {
		h.Add(v)
	}
	xs := make([]float64, 11)
	ys := make([]float64, 11)
	for i := 0; i < 11; i++ {
		xs[i] = h.BinCenter(i)
		ys[i] = float64(h.Bins[i])
	}
	return stats.Series{Name: name, X: xs, Y: ys}
}
