package server

// Server-side admission control: per-user token-bucket rate limiting
// and load shedding. Admission answers before work is done — a
// rate-limited request costs one map lookup, a shed request is refused
// before its body is even decoded — so an overloaded server degrades
// by answering 429/503 with a Retry-After hint instead of queueing
// until every client times out. The self-healing client transport
// (internal/client) parses the hint and retries with backoff.
//
// Rate limiting is enforced inside the server operations (after token
// validation), so it covers in-process transports too; load shedding
// is enforced at the HTTP edge, where rejecting early is cheapest.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission errors. Both carry a Retry-After hint via RetryAfterHint;
// the HTTP layer maps them to 429/503 with a Retry-After header.
var (
	// ErrRateLimited reports that the authenticated user exceeded the
	// per-user request rate.
	ErrRateLimited = errors.New("server: per-user rate limit exceeded")
	// ErrOverloaded reports that the server shed the request because
	// too much work was already in flight.
	ErrOverloaded = errors.New("server: overloaded, request shed")
)

// retryHintError decorates an error with a suggested client backoff.
type retryHintError struct {
	err   error
	after time.Duration
}

func (e *retryHintError) Error() string { return e.err.Error() }
func (e *retryHintError) Unwrap() error { return e.err }

// withRetryHint wraps err with a Retry-After suggestion.
func withRetryHint(err error, after time.Duration) error {
	return &retryHintError{err: err, after: after}
}

// RetryAfterHint extracts the backoff suggestion attached to an
// admission error, if any.
func RetryAfterHint(err error) (time.Duration, bool) {
	var rh *retryHintError
	if errors.As(err, &rh) {
		return rh.after, true
	}
	return 0, false
}

// AdmissionConfig tunes the server's admission control. The zero
// value of each field disables the corresponding mechanism.
type AdmissionConfig struct {
	// PerUserRate is the sustained operations/second each
	// authenticated user may issue; <= 0 disables rate limiting. One
	// API call costs one token regardless of batch size — batching is
	// the encouraged behavior, so it is not taxed.
	PerUserRate float64
	// Burst is the token-bucket capacity (how far a user may briefly
	// exceed the sustained rate); <= 0 defaults to max(PerUserRate, 1).
	Burst float64
	// MaxInFlight bounds concurrently served HTTP requests; past it
	// new requests are shed with 503 before their bodies are decoded.
	// <= 0 disables shedding.
	MaxInFlight int
	// MaxTrackedUsers bounds the bucket table (defense against a
	// flood of distinct names); 0 means 16384. When full, buckets
	// that have refilled to capacity are swept — dropping a full
	// bucket loses nothing.
	MaxTrackedUsers int
}

// bucket is one user's token bucket. Guarded by admission.mu.
type bucket struct {
	tokens float64
	last   time.Time
}

// admission is the installed admission state.
type admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	buckets map[string]*bucket
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.PerUserRate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.MaxTrackedUsers <= 0 {
		cfg.MaxTrackedUsers = 16384
	}
	return &admission{cfg: cfg, buckets: make(map[string]*bucket)}
}

// admit spends one token from the user's bucket, or returns
// ErrRateLimited with a hint for when the next token accrues. The
// caller supplies the clock reading (every operation has already read
// the server clock for token validation — re-reading it here would be
// a second clock call on the hot path).
func (a *admission) admit(user string, now time.Time) error {
	if a == nil || a.cfg.PerUserRate <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[user]
	if b == nil {
		if len(a.buckets) >= a.cfg.MaxTrackedUsers {
			a.sweepLocked(now)
		}
		b = &bucket{tokens: a.cfg.Burst, last: now}
		a.buckets[user] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * a.cfg.PerUserRate
		if b.tokens > a.cfg.Burst {
			b.tokens = a.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return nil
	}
	wait := time.Duration((1 - b.tokens) / a.cfg.PerUserRate * float64(time.Second))
	return withRetryHint(fmt.Errorf("%w: user over %g ops/s", ErrRateLimited, a.cfg.PerUserRate), wait)
}

// sweepLocked drops buckets that have refilled to capacity — their
// owners are idle, and a re-created bucket starts full anyway, so
// nothing observable is lost. If every user is active the table stays
// over target until someone goes idle; tracked users are
// authenticated, so the cardinality is the registered-user count, not
// attacker-controlled.
func (a *admission) sweepLocked(now time.Time) {
	for user, b := range a.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*a.cfg.PerUserRate >= a.cfg.Burst-1e-9 {
			delete(a.buckets, user)
		}
	}
}

// SetAdmission installs (or, with nil config, removes) admission
// control. Safe to call while serving; requests observe the old or
// the new policy, never a mix.
func (s *Server) SetAdmission(cfg *AdmissionConfig) {
	if cfg == nil {
		s.adm.Store(nil)
		return
	}
	s.adm.Store(newAdmission(*cfg))
}

// admit applies the per-user rate limit for one authenticated API
// call; the rejection is also counted on the ops metrics. now is the
// clock reading the operation already took for token validation —
// SetClock (tests) applies through it.
func (s *Server) admit(user string, now time.Time) error {
	a := s.adm.Load()
	if a == nil {
		return nil
	}
	if err := a.admit(user, now); err != nil {
		if m := s.met.Load(); m != nil {
			m.rateLimited.Inc()
		}
		return err
	}
	return nil
}

// admissionMaxInFlight reports the shed bound, or 0 when shedding is
// off (no admission installed or MaxInFlight unset).
func (s *Server) admissionMaxInFlight() int {
	a := s.adm.Load()
	if a == nil {
		return 0
	}
	return a.cfg.MaxInFlight
}
