package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"zerberr/internal/crypt"
	"zerberr/internal/zerber"
)

var secret = []byte("test-secret")

func newServer() *Server {
	s := New(secret, time.Hour)
	s.RegisterUser("john", 0, 1)
	s.RegisterUser("alice", 1)
	return s
}

func el(trs float64, group int, payload string) StoredElement {
	return StoredElement{Sealed: []byte(payload), TRS: trs, Group: group}
}

func mustLogin(t *testing.T, s *Server, user string) []crypt.Token {
	t.Helper()
	toks, err := s.Login(context.Background(), user)
	if err != nil {
		t.Fatalf("login %s: %v", user, err)
	}
	return toks
}

func TestLoginIssuesGroupTokens(t *testing.T) {
	s := newServer()
	toks := mustLogin(t, s, "john")
	if len(toks) != 2 {
		t.Fatalf("john got %d tokens, want 2", len(toks))
	}
	if toks[0].Group != 0 || toks[1].Group != 1 {
		t.Fatalf("tokens for groups %d,%d", toks[0].Group, toks[1].Group)
	}
	if _, err := s.Login(context.Background(), "nobody"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user err = %v", err)
	}
}

func TestInsertRequiresMatchingGroupToken(t *testing.T) {
	s := newServer()
	alice := mustLogin(t, s, "alice") // group 1 only
	if err := s.Insert(context.Background(), alice[0], 7, el(0.5, 1, "x")); err != nil {
		t.Fatalf("legit insert failed: %v", err)
	}
	if err := s.Insert(context.Background(), alice[0], 7, el(0.5, 0, "y")); !errors.Is(err, ErrForbidden) {
		t.Fatalf("cross-group insert err = %v, want ErrForbidden", err)
	}
	forged := alice[0]
	forged.Group = 0
	if err := s.Insert(context.Background(), forged, 7, el(0.5, 0, "z")); !errors.Is(err, ErrAuth) {
		t.Fatalf("forged token err = %v, want ErrAuth", err)
	}
	if err := s.Insert(context.Background(), alice[0], 7, StoredElement{TRS: 1, Group: 1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty payload err = %v, want ErrBadRequest", err)
	}
}

func TestQuerySortedByTRS(t *testing.T) {
	s := newServer()
	john := mustLogin(t, s, "john")
	for i, trs := range []float64{0.2, 0.9, 0.5, 0.7, 0.1} {
		if err := s.Insert(context.Background(), john[0], 1, el(trs, 0, string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := s.Query(context.Background(), john, 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Exhausted {
		t.Fatal("expected exhausted response")
	}
	want := []float64{0.9, 0.7, 0.5, 0.2, 0.1}
	if len(resp.Elements) != len(want) {
		t.Fatalf("got %d elements", len(resp.Elements))
	}
	for i, e := range resp.Elements {
		if e.TRS != want[i] {
			t.Fatalf("rank %d TRS %v, want %v", i, e.TRS, want[i])
		}
	}
}

func TestQueryPagination(t *testing.T) {
	s := newServer()
	john := mustLogin(t, s, "john")
	for i := 0; i < 10; i++ {
		if err := s.Insert(context.Background(), john[0], 1, el(float64(i)/10, 0, string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	// First batch of 3: not exhausted.
	r1, err := s.Query(context.Background(), john, 1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Elements) != 3 || r1.Exhausted {
		t.Fatalf("batch1: %d elements exhausted=%v", len(r1.Elements), r1.Exhausted)
	}
	// Follow-up (doubling): offset 3, count 6 -> 6 elements, one left.
	r2, err := s.Query(context.Background(), john, 1, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Elements) != 6 || r2.Exhausted {
		t.Fatalf("batch2: %d elements exhausted=%v", len(r2.Elements), r2.Exhausted)
	}
	// Final element.
	r3, err := s.Query(context.Background(), john, 1, 9, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Elements) != 1 || !r3.Exhausted {
		t.Fatalf("batch3: %d elements exhausted=%v", len(r3.Elements), r3.Exhausted)
	}
	// Exact-boundary fetch is exhausted too.
	r4, err := s.Query(context.Background(), john, 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Exhausted {
		t.Fatal("exact-length fetch should be exhausted")
	}
	// Ranks must be consistent across batches.
	prev := 1.1
	for _, batch := range [][]StoredElement{r1.Elements, r2.Elements, r3.Elements} {
		for _, e := range batch {
			if e.TRS > prev {
				t.Fatal("pagination broke rank order")
			}
			prev = e.TRS
		}
	}
}

func TestQueryACLFiltering(t *testing.T) {
	s := newServer()
	john := mustLogin(t, s, "john")   // groups 0,1
	alice := mustLogin(t, s, "alice") // group 1
	s.RegisterUser("bob", 2)
	bob := mustLogin(t, s, "bob")
	if err := s.Insert(context.Background(), john[0], 5, el(0.9, 0, "g0-high")); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(context.Background(), john[1], 5, el(0.5, 1, "g1-mid")); err != nil {
		t.Fatal(err)
	}
	// Alice sees only group 1.
	resp, err := s.Query(context.Background(), alice, 5, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Elements) != 1 || resp.Elements[0].Group != 1 {
		t.Fatalf("alice sees %v", resp.Elements)
	}
	// John sees both, ranked.
	respJ, err := s.Query(context.Background(), john, 5, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(respJ.Elements) != 2 || respJ.Elements[0].TRS != 0.9 {
		t.Fatalf("john sees %v", respJ.Elements)
	}
	// Bob (group 2) sees nothing but the list exists.
	respB, err := s.Query(context.Background(), bob, 5, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(respB.Elements) != 0 || !respB.Exhausted {
		t.Fatalf("bob sees %v", respB.Elements)
	}
}

func TestQueryRejections(t *testing.T) {
	s := newServer()
	john := mustLogin(t, s, "john")
	if _, err := s.Query(context.Background(), john, 99, 0, 10); !errors.Is(err, ErrUnknownList) {
		t.Fatalf("unknown list err = %v", err)
	}
	if err := s.Insert(context.Background(), john[0], 1, el(0.5, 0, "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(context.Background(), john, 1, -1, 10); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative offset err = %v", err)
	}
	if _, err := s.Query(context.Background(), john, 1, 0, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero count err = %v", err)
	}
	if _, err := s.Query(context.Background(), nil, 1, 0, 10); err != nil {
		// No tokens: allowed, sees nothing.
		t.Fatalf("tokenless query err = %v", err)
	}
	resp, _ := s.Query(context.Background(), nil, 1, 0, 10)
	if len(resp.Elements) != 0 {
		t.Fatal("tokenless query saw elements")
	}
}

func TestExpiredTokenRejected(t *testing.T) {
	s := New(secret, time.Minute)
	s.RegisterUser("john", 0)
	base := time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)
	s.SetClock(func() time.Time { return base })
	john := mustLogin(t, s, "john")
	if err := s.Insert(context.Background(), john[0], 1, el(0.5, 0, "x")); err != nil {
		t.Fatal(err)
	}
	s.SetClock(func() time.Time { return base.Add(2 * time.Minute) })
	if _, err := s.Query(context.Background(), john, 1, 0, 10); !errors.Is(err, ErrAuth) {
		t.Fatalf("expired token err = %v, want ErrAuth", err)
	}
}

func TestTieBreakBySealedBytes(t *testing.T) {
	s := newServer()
	john := mustLogin(t, s, "john")
	for _, payload := range []string{"bbb", "aaa", "ccc"} {
		if err := s.Insert(context.Background(), john[0], 1, el(0.5, 0, payload)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := s.Query(context.Background(), john, 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{string(resp.Elements[0].Sealed), string(resp.Elements[1].Sealed), string(resp.Elements[2].Sealed)}
	if got[0] != "aaa" || got[1] != "bbb" || got[2] != "ccc" {
		t.Fatalf("tie order %v", got)
	}
}

func TestStatsAndSnapshot(t *testing.T) {
	s := newServer()
	john := mustLogin(t, s, "john")
	if err := s.Insert(context.Background(), john[0], 1, el(0.5, 0, "x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(context.Background(), john[0], 2, el(0.6, 0, "y")); err != nil {
		t.Fatal(err)
	}
	if s.NumLists() != 2 || s.NumElements() != 2 || s.ListLen(1) != 1 {
		t.Fatalf("stats: lists=%d elements=%d len1=%d", s.NumLists(), s.NumElements(), s.ListLen(1))
	}
	snap, err := s.Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || string(snap[0].Sealed) != "x" {
		t.Fatalf("snapshot = %v", snap)
	}
	// Snapshot must be a copy.
	snap[0].Sealed[0] = 'z'
	snap2, err := s.Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap2[0].Sealed) != "x" {
		t.Fatal("snapshot aliased server memory")
	}
	if _, err := s.Snapshot(99); !errors.Is(err, ErrUnknownList) {
		t.Fatalf("snapshot of unknown list: err = %v, want ErrUnknownList", err)
	}
	lists := s.Lists()
	if len(lists) != 2 || lists[0] != 1 || lists[1] != 2 {
		t.Fatalf("Lists = %v", lists)
	}
}

// Query responses alias the store's sealed payloads (the read path no
// longer copies every payload per round); the contract is that the
// store never rewrites payload bytes in place, so a held response
// stays intact across later inserts and removals.
func TestQueryResponseStableAcrossMutations(t *testing.T) {
	s := newServer()
	john := mustLogin(t, s, "john")
	if err := s.Insert(context.Background(), john[0], 1, el(0.5, 0, "orig")); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Query(context.Background(), john, 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := s.Insert(context.Background(), john[0], 1, el(float64(i)/64, 0, fmt.Sprintf("later-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove(context.Background(), john[0], 1, []byte("later-0")); err != nil {
		t.Fatal(err)
	}
	if string(resp.Elements[0].Sealed) != "orig" {
		t.Fatalf("held response corrupted by later mutations: %q", resp.Elements[0].Sealed)
	}
}

var _ = zerber.ListID(0)

func TestConcurrentInsertQuery(t *testing.T) {
	s := newServer()
	john := mustLogin(t, s, "john")
	done := make(chan error, 8)
	// Four writers and four readers hammer the same lists.
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				el := StoredElement{
					Sealed: []byte{byte(w), byte(i), byte(i >> 8), 1},
					TRS:    float64(i%100) / 100,
					Group:  0,
				}
				if err := s.Insert(context.Background(), john[0], zerber.ListID(i%3), el); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for r := 0; r < 4; r++ {
		go func() {
			for i := 0; i < 200; i++ {
				if _, err := s.Query(context.Background(), john, zerber.ListID(i%3), 0, 10); err != nil &&
					!errors.Is(err, ErrUnknownList) {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// All inserts landed and every list is served in sorted order.
	if got := s.NumElements(); got != 4*200 {
		t.Fatalf("lost inserts: %d elements, want 800", got)
	}
	for _, list := range s.Lists() {
		resp, err := s.Query(context.Background(), john, list, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(resp.Elements); i++ {
			if resp.Elements[i].TRS > resp.Elements[i-1].TRS {
				t.Fatalf("list %d unsorted after concurrent load", list)
			}
		}
	}
}
