package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"zerberr/internal/crypt"
	"zerberr/internal/obs"
	"zerberr/internal/zerber"
)

// HTTP transport: a thin JSON layer over the in-process API, so the
// index server can be outsourced onto a remote host (cmd/zerberd) and
// exercised by clients over the network. Every handler threads the
// request's context into the server call, so a disconnecting client
// (or a cmd/zerberd drain timeout) cancels the server-side work it
// started.
//
// v1 — one operation per round-trip, kept for compatibility:
//
//	POST /v1/login   {"user": "john"}                     -> {"tokens": [...]}
//	POST /v1/insert  {"token": ..., "list": 3, "element": ...} -> {}
//	POST /v1/query   {"tokens": [...], "list": 3,
//	                  "offset": 0, "count": 10}           -> QueryResponse
//	POST /v1/remove  {"token": ..., "list": 3, "sealed": ...} -> {}
//	GET  /v1/stats                                        -> {"lists":n,"elements":m}
//
// v2 — batched operations with structured {code, error} envelopes
// (see DESIGN.md "Wire protocol v2" for the error-code registry):
//
//	POST /v2/query   {"tokens": [...], "queries": [{list,offset,count}...]}
//	                                                      -> {"responses": [QueryResponse...]}
//	POST /v2/insert  {"token": ..., "ops": [{list,element}...]} -> {}
//	POST /v2/remove  {"token": ..., "ops": [{list,sealed}...]}  -> {}
//	GET  /v2/stats   -> {"lists","elements","backend","per_list":[{list,elements}...]}

// LoginRequest is the /v1/login payload.
type LoginRequest struct {
	User string `json:"user"`
}

// LoginResponse carries the issued group tokens.
type LoginResponse struct {
	Tokens []crypt.Token `json:"tokens"`
}

// InsertRequest is the /v1/insert payload.
type InsertRequest struct {
	Token   crypt.Token   `json:"token"`
	List    zerber.ListID `json:"list"`
	Element StoredElement `json:"element"`
}

// RemoveRequest is the /v1/remove payload.
type RemoveRequest struct {
	Token  crypt.Token   `json:"token"`
	List   zerber.ListID `json:"list"`
	Sealed []byte        `json:"sealed"`
}

// QueryRequest is the /v1/query payload.
type QueryRequest struct {
	Tokens []crypt.Token `json:"tokens"`
	List   zerber.ListID `json:"list"`
	Offset int           `json:"offset"`
	Count  int           `json:"count"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	Lists    int `json:"lists"`
	Elements int `json:"elements"`
}

// QueryBatchRequest is the /v2/query payload.
type QueryBatchRequest struct {
	Tokens  []crypt.Token `json:"tokens"`
	Queries []ListQuery   `json:"queries"`
}

// QueryBatchResponse carries one QueryResponse per sub-query, in
// request order.
type QueryBatchResponse struct {
	Responses []QueryResponse `json:"responses"`
}

// InsertBatchRequest is the /v2/insert payload.
type InsertBatchRequest struct {
	Token crypt.Token `json:"token"`
	Ops   []InsertOp  `json:"ops"`
}

// RemoveBatchRequest is the /v2/remove payload.
type RemoveBatchRequest struct {
	Token crypt.Token `json:"token"`
	Ops   []RemoveOp  `json:"ops"`
}

// CacheStatsV2 is the query-result cache section of the /v2/stats
// payload.
type CacheStatsV2 struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Capacity  int64  `json:"capacity"`
}

// StatsV2Response is the /v2/stats payload.
type StatsV2Response struct {
	Lists    int        `json:"lists"`
	Elements int        `json:"elements"`
	Backend  string     `json:"backend"`
	PerList  []ListStat `json:"per_list"`
	// Cache carries the query-result cache counters; absent when no
	// cache is installed.
	Cache *CacheStatsV2 `json:"cache,omitempty"`
	// Ops carries the operational signals (uptime, query latency
	// quantiles, admission counters); absent when no metrics registry
	// is installed. `zerber status` renders it.
	Ops *OpsStats `json:"ops,omitempty"`
}

// errorBody is the v1 JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// ErrorV2 is the v2 structured error envelope: a machine-readable
// code from the registry below, the human-readable message, and — for
// batch failures — the index of the offending operation.
type ErrorV2 struct {
	Code  string `json:"code"`
	Error string `json:"error"`
	Index *int   `json:"index,omitempty"`
}

// v2 error codes. The HTTP client transport maps them back onto the
// sentinel errors, so in-process and remote callers observe identical
// error identities.
const (
	CodeBadToken     = "bad_token"
	CodeTokenExpired = "token_expired"
	CodeForbidden    = "forbidden"
	CodeUnknownUser  = "unknown_user"
	CodeUnknownList  = "unknown_list"
	CodeNotFound     = "not_found"
	CodeBadRequest   = "bad_request"
	CodeRateLimited  = "rate_limited"
	CodeOverloaded   = "overloaded"
	CodeInternal     = "internal"
)

// ErrorCode maps a server error onto its v2 wire code.
func ErrorCode(err error) string {
	switch {
	case errors.Is(err, ErrTokenExpired):
		return CodeTokenExpired
	case errors.Is(err, ErrAuth):
		return CodeBadToken
	case errors.Is(err, ErrForbidden):
		return CodeForbidden
	case errors.Is(err, ErrUnknownUser):
		return CodeUnknownUser
	case errors.Is(err, ErrUnknownList):
		return CodeUnknownList
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	case errors.Is(err, ErrRateLimited):
		return CodeRateLimited
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	}
	return CodeInternal
}

// SentinelForCode is ErrorCode's inverse: the sentinel error a wire
// code stands for, or nil for internal/unknown codes.
func SentinelForCode(code string) error {
	switch code {
	case CodeBadToken:
		return ErrAuth
	case CodeTokenExpired:
		return ErrTokenExpired
	case CodeForbidden:
		return ErrForbidden
	case CodeUnknownUser:
		return ErrUnknownUser
	case CodeUnknownList:
		return ErrUnknownList
	case CodeNotFound:
		return ErrNotFound
	case CodeBadRequest:
		return ErrBadRequest
	case CodeRateLimited:
		return ErrRateLimited
	case CodeOverloaded:
		return ErrOverloaded
	}
	return nil
}

// Handler returns the HTTP API for the server. Every endpoint runs
// under the ops middleware (instrument): a request ID is generated and
// echoed as X-Request-Id, a request-scoped structured logger rides the
// context, the in-flight bound sheds excess load before bodies are
// decoded, and — with a registry installed via SetObs (call it before
// Handler) — per-endpoint latency histograms and status-code counters
// are recorded. GET /metrics then serves the registry in Prometheus
// text exposition format.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(method, path string, h http.HandlerFunc) {
		mux.Handle(method+" "+path, s.instrument(path, h))
	}
	handle("POST", "/v1/login", func(w http.ResponseWriter, r *http.Request) {
		var req LoginRequest
		if !decode(w, r, &req) {
			return
		}
		toks, err := s.Login(r.Context(), req.User)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, LoginResponse{Tokens: toks})
	})
	handle("POST", "/v1/insert", func(w http.ResponseWriter, r *http.Request) {
		var req InsertRequest
		if !decode(w, r, &req) {
			return
		}
		if err := s.Insert(r.Context(), req.Token, req.List, req.Element); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	handle("POST", "/v1/remove", func(w http.ResponseWriter, r *http.Request) {
		var req RemoveRequest
		if !decode(w, r, &req) {
			return
		}
		if err := s.Remove(r.Context(), req.Token, req.List, req.Sealed); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	handle("POST", "/v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Query(r.Context(), req.Tokens, req.List, req.Offset, req.Count)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	handle("GET", "/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.StatsV2(r.Context())
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, StatsResponse{Lists: st.Lists, Elements: st.Elements})
	})
	handle("POST", "/v2/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryBatchRequest
		if !decodeV2(w, r, &req) {
			return
		}
		resps, err := s.QueryBatch(r.Context(), req.Tokens, req.Queries)
		if err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, QueryBatchResponse{Responses: resps})
	})
	handle("POST", "/v2/insert", func(w http.ResponseWriter, r *http.Request) {
		var req InsertBatchRequest
		if !decodeV2(w, r, &req) {
			return
		}
		if err := s.InsertBatch(r.Context(), req.Token, req.Ops); err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	handle("POST", "/v2/remove", func(w http.ResponseWriter, r *http.Request) {
		var req RemoveBatchRequest
		if !decodeV2(w, r, &req) {
			return
		}
		if err := s.RemoveBatch(r.Context(), req.Token, req.Ops); err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	handle("GET", "/v2/stats", func(w http.ResponseWriter, r *http.Request) {
		// ?roots=1 opts into per-list Merkle roots: an audit signal
		// that materializes every list's commitment, so it is never
		// paid for by plain monitoring scrapes.
		stats := s.StatsV2
		if r.URL.Query().Get("roots") == "1" {
			stats = s.StatsV2Roots
		}
		st, err := stats(r.Context())
		if err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	// v3 admin plane: snapshot transfer for migration and replica
	// resync. MAC-gated (AdminMAC), toggleable via SetAdminEnabled.
	s.registerAdmin(handle)
	if reg := s.Obs(); reg != nil {
		// Deliberately outside the middleware: scrapes must not be
		// shed, must not skew the latency families, and need no
		// request-scoped logging.
		mux.Handle("GET /metrics", reg.Handler())
	}
	return mux
}

// statusRecorder captures the response status for the middleware's
// metrics and access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument is the per-endpoint ops middleware; see Handler. endpoint
// is the route path — the only identity the metrics and logs carry
// (never a list ID, term or user name).
func (s *Server) instrument(endpoint string, next http.HandlerFunc) http.Handler {
	endpointLabel := obs.Label{Name: "endpoint", Value: endpoint}
	// Pre-create the endpoint's families so a scrape sees them (at
	// zero) from boot, not from first traffic — the CI smoke test
	// greps a freshly started server.
	if m := s.met.Load(); m != nil {
		m.reg.Histogram(MetricHTTPRequestSeconds, httpLatencyHelp, nil, endpointLabel)
		m.reg.Counter(MetricHTTPRequestsTotal, httpRequestsHelp, endpointLabel, obs.Label{Name: "code", Value: "200"})
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Drain whatever the handler (or a shed rejection) left unread
		// so the connection can be reused; rate-limited requests in
		// particular are refused before their bodies are decoded.
		defer func() { _, _ = io.Copy(io.Discard, io.LimitReader(r.Body, 1<<20)) }()
		n := s.inflight.Add(1)
		defer s.inflight.Add(-1)
		m := s.met.Load()
		if m != nil {
			m.inFlight.Inc()
			defer m.inFlight.Dec()
		}
		id := obs.NewRequestID()
		w.Header().Set("X-Request-Id", id)
		logger := s.baseLogger().With("request_id", id, "endpoint", endpoint)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if max := s.admissionMaxInFlight(); max > 0 && n > int64(max) {
			if m != nil {
				m.shed.Inc()
			}
			err := withRetryHint(fmt.Errorf("%w: %d requests already in flight", ErrOverloaded, max), time.Second)
			if strings.HasPrefix(endpoint, "/v2") {
				writeErrV2(rec, err)
			} else {
				writeErr(rec, err)
			}
		} else {
			ctx := obs.WithLogger(obs.WithRequestID(r.Context(), id), logger)
			next(rec, r.WithContext(ctx))
		}
		elapsed := time.Since(start)
		if m != nil {
			m.reg.Histogram(MetricHTTPRequestSeconds, httpLatencyHelp, nil, endpointLabel).Observe(elapsed.Seconds())
			m.reg.Counter(MetricHTTPRequestsTotal, httpRequestsHelp, endpointLabel,
				obs.Label{Name: "code", Value: strconv.Itoa(rec.status)}).Inc()
		}
		switch {
		case rec.status >= 500:
			logger.Warn("request failed", "status", rec.status, "duration", elapsed)
		case rec.status >= 400:
			logger.Info("request rejected", "status", rec.status, "duration", elapsed)
		default:
			logger.Debug("request served", "status", rec.status, "duration", elapsed)
		}
	})
}

const (
	httpLatencyHelp  = "HTTP request latency by endpoint"
	httpRequestsHelp = "HTTP requests by endpoint and status code"
)

func decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func decodeV2(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorV2{Code: CodeBadRequest, Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// statusFor maps a server error onto its HTTP status (shared by the
// v1 and v2 error writers).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrAuth):
		return http.StatusUnauthorized
	case errors.Is(err, ErrForbidden):
		return http.StatusForbidden
	case errors.Is(err, ErrUnknownUser), errors.Is(err, ErrUnknownList), errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// setRetryAfter adds the Retry-After header on admission rejections.
// The value is the server's own hint rounded up to whole seconds (the
// header's granularity), minimum 1. Every 429/503 path — single-op,
// batch, shed — funnels through writeErr/writeErrV2, so every such
// response carries the header.
func setRetryAfter(w http.ResponseWriter, err error, status int) {
	if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
		return
	}
	secs := int64(1)
	if hint, ok := RetryAfterHint(err); ok {
		if s := int64(math.Ceil(hint.Seconds())); s > secs {
			secs = s
		}
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func writeErr(w http.ResponseWriter, err error) {
	status := statusFor(err)
	setRetryAfter(w, err, status)
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func writeErrV2(w http.ResponseWriter, err error) {
	env := ErrorV2{Code: ErrorCode(err), Error: err.Error()}
	var be *BatchError
	if errors.As(err, &be) {
		idx := be.Index
		env.Index = &idx
	}
	status := statusFor(err)
	setRetryAfter(w, err, status)
	writeJSON(w, status, env)
}

func writeJSON(w http.ResponseWriter, status int, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
