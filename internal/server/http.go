package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"zerberr/internal/crypt"
	"zerberr/internal/zerber"
)

// HTTP transport: a thin JSON layer over the in-process API, so the
// index server can be outsourced onto a remote host (cmd/zerberd) and
// exercised by clients over the network.
//
//	POST /v1/login   {"user": "john"}                     -> {"tokens": [...]}
//	POST /v1/insert  {"token": ..., "list": 3, "element": ...} -> {}
//	POST /v1/query   {"tokens": [...], "list": 3,
//	                  "offset": 0, "count": 10}           -> QueryResponse
//	GET  /v1/stats                                        -> {"lists":n,"elements":m}

// LoginRequest is the /v1/login payload.
type LoginRequest struct {
	User string `json:"user"`
}

// LoginResponse carries the issued group tokens.
type LoginResponse struct {
	Tokens []crypt.Token `json:"tokens"`
}

// InsertRequest is the /v1/insert payload.
type InsertRequest struct {
	Token   crypt.Token   `json:"token"`
	List    zerber.ListID `json:"list"`
	Element StoredElement `json:"element"`
}

// RemoveRequest is the /v1/remove payload.
type RemoveRequest struct {
	Token  crypt.Token   `json:"token"`
	List   zerber.ListID `json:"list"`
	Sealed []byte        `json:"sealed"`
}

// QueryRequest is the /v1/query payload.
type QueryRequest struct {
	Tokens []crypt.Token `json:"tokens"`
	List   zerber.ListID `json:"list"`
	Offset int           `json:"offset"`
	Count  int           `json:"count"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	Lists    int `json:"lists"`
	Elements int `json:"elements"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/login", func(w http.ResponseWriter, r *http.Request) {
		var req LoginRequest
		if !decode(w, r, &req) {
			return
		}
		toks, err := s.Login(req.User)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, LoginResponse{Tokens: toks})
	})
	mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) {
		var req InsertRequest
		if !decode(w, r, &req) {
			return
		}
		if err := s.Insert(req.Token, req.List, req.Element); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("POST /v1/remove", func(w http.ResponseWriter, r *http.Request) {
		var req RemoveRequest
		if !decode(w, r, &req) {
			return
		}
		if err := s.Remove(req.Token, req.List, req.Sealed); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Query(req.Tokens, req.List, req.Offset, req.Count)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, StatsResponse{Lists: s.NumLists(), Elements: s.NumElements()})
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrAuth):
		status = http.StatusUnauthorized
	case errors.Is(err, ErrForbidden):
		status = http.StatusForbidden
	case errors.Is(err, ErrUnknownUser), errors.Is(err, ErrUnknownList), errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
