package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"zerberr/internal/crypt"
	"zerberr/internal/zerber"
)

// HTTP transport: a thin JSON layer over the in-process API, so the
// index server can be outsourced onto a remote host (cmd/zerberd) and
// exercised by clients over the network. Every handler threads the
// request's context into the server call, so a disconnecting client
// (or a cmd/zerberd drain timeout) cancels the server-side work it
// started.
//
// v1 — one operation per round-trip, kept for compatibility:
//
//	POST /v1/login   {"user": "john"}                     -> {"tokens": [...]}
//	POST /v1/insert  {"token": ..., "list": 3, "element": ...} -> {}
//	POST /v1/query   {"tokens": [...], "list": 3,
//	                  "offset": 0, "count": 10}           -> QueryResponse
//	POST /v1/remove  {"token": ..., "list": 3, "sealed": ...} -> {}
//	GET  /v1/stats                                        -> {"lists":n,"elements":m}
//
// v2 — batched operations with structured {code, error} envelopes
// (see DESIGN.md "Wire protocol v2" for the error-code registry):
//
//	POST /v2/query   {"tokens": [...], "queries": [{list,offset,count}...]}
//	                                                      -> {"responses": [QueryResponse...]}
//	POST /v2/insert  {"token": ..., "ops": [{list,element}...]} -> {}
//	POST /v2/remove  {"token": ..., "ops": [{list,sealed}...]}  -> {}
//	GET  /v2/stats   -> {"lists","elements","backend","per_list":[{list,elements}...]}

// LoginRequest is the /v1/login payload.
type LoginRequest struct {
	User string `json:"user"`
}

// LoginResponse carries the issued group tokens.
type LoginResponse struct {
	Tokens []crypt.Token `json:"tokens"`
}

// InsertRequest is the /v1/insert payload.
type InsertRequest struct {
	Token   crypt.Token   `json:"token"`
	List    zerber.ListID `json:"list"`
	Element StoredElement `json:"element"`
}

// RemoveRequest is the /v1/remove payload.
type RemoveRequest struct {
	Token  crypt.Token   `json:"token"`
	List   zerber.ListID `json:"list"`
	Sealed []byte        `json:"sealed"`
}

// QueryRequest is the /v1/query payload.
type QueryRequest struct {
	Tokens []crypt.Token `json:"tokens"`
	List   zerber.ListID `json:"list"`
	Offset int           `json:"offset"`
	Count  int           `json:"count"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	Lists    int `json:"lists"`
	Elements int `json:"elements"`
}

// QueryBatchRequest is the /v2/query payload.
type QueryBatchRequest struct {
	Tokens  []crypt.Token `json:"tokens"`
	Queries []ListQuery   `json:"queries"`
}

// QueryBatchResponse carries one QueryResponse per sub-query, in
// request order.
type QueryBatchResponse struct {
	Responses []QueryResponse `json:"responses"`
}

// InsertBatchRequest is the /v2/insert payload.
type InsertBatchRequest struct {
	Token crypt.Token `json:"token"`
	Ops   []InsertOp  `json:"ops"`
}

// RemoveBatchRequest is the /v2/remove payload.
type RemoveBatchRequest struct {
	Token crypt.Token `json:"token"`
	Ops   []RemoveOp  `json:"ops"`
}

// CacheStatsV2 is the query-result cache section of the /v2/stats
// payload.
type CacheStatsV2 struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Capacity  int64  `json:"capacity"`
}

// StatsV2Response is the /v2/stats payload.
type StatsV2Response struct {
	Lists    int        `json:"lists"`
	Elements int        `json:"elements"`
	Backend  string     `json:"backend"`
	PerList  []ListStat `json:"per_list"`
	// Cache carries the query-result cache counters; absent when no
	// cache is installed.
	Cache *CacheStatsV2 `json:"cache,omitempty"`
}

// errorBody is the v1 JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// ErrorV2 is the v2 structured error envelope: a machine-readable
// code from the registry below, the human-readable message, and — for
// batch failures — the index of the offending operation.
type ErrorV2 struct {
	Code  string `json:"code"`
	Error string `json:"error"`
	Index *int   `json:"index,omitempty"`
}

// v2 error codes. The HTTP client transport maps them back onto the
// sentinel errors, so in-process and remote callers observe identical
// error identities.
const (
	CodeBadToken     = "bad_token"
	CodeTokenExpired = "token_expired"
	CodeForbidden    = "forbidden"
	CodeUnknownUser  = "unknown_user"
	CodeUnknownList  = "unknown_list"
	CodeNotFound     = "not_found"
	CodeBadRequest   = "bad_request"
	CodeInternal     = "internal"
)

// ErrorCode maps a server error onto its v2 wire code.
func ErrorCode(err error) string {
	switch {
	case errors.Is(err, ErrTokenExpired):
		return CodeTokenExpired
	case errors.Is(err, ErrAuth):
		return CodeBadToken
	case errors.Is(err, ErrForbidden):
		return CodeForbidden
	case errors.Is(err, ErrUnknownUser):
		return CodeUnknownUser
	case errors.Is(err, ErrUnknownList):
		return CodeUnknownList
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	}
	return CodeInternal
}

// SentinelForCode is ErrorCode's inverse: the sentinel error a wire
// code stands for, or nil for internal/unknown codes.
func SentinelForCode(code string) error {
	switch code {
	case CodeBadToken:
		return ErrAuth
	case CodeTokenExpired:
		return ErrTokenExpired
	case CodeForbidden:
		return ErrForbidden
	case CodeUnknownUser:
		return ErrUnknownUser
	case CodeUnknownList:
		return ErrUnknownList
	case CodeNotFound:
		return ErrNotFound
	case CodeBadRequest:
		return ErrBadRequest
	}
	return nil
}

// Handler returns the HTTP API for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/login", func(w http.ResponseWriter, r *http.Request) {
		var req LoginRequest
		if !decode(w, r, &req) {
			return
		}
		toks, err := s.Login(r.Context(), req.User)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, LoginResponse{Tokens: toks})
	})
	mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) {
		var req InsertRequest
		if !decode(w, r, &req) {
			return
		}
		if err := s.Insert(r.Context(), req.Token, req.List, req.Element); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("POST /v1/remove", func(w http.ResponseWriter, r *http.Request) {
		var req RemoveRequest
		if !decode(w, r, &req) {
			return
		}
		if err := s.Remove(r.Context(), req.Token, req.List, req.Sealed); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Query(r.Context(), req.Tokens, req.List, req.Offset, req.Count)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.StatsV2(r.Context())
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, StatsResponse{Lists: st.Lists, Elements: st.Elements})
	})
	mux.HandleFunc("POST /v2/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryBatchRequest
		if !decodeV2(w, r, &req) {
			return
		}
		resps, err := s.QueryBatch(r.Context(), req.Tokens, req.Queries)
		if err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, QueryBatchResponse{Responses: resps})
	})
	mux.HandleFunc("POST /v2/insert", func(w http.ResponseWriter, r *http.Request) {
		var req InsertBatchRequest
		if !decodeV2(w, r, &req) {
			return
		}
		if err := s.InsertBatch(r.Context(), req.Token, req.Ops); err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("POST /v2/remove", func(w http.ResponseWriter, r *http.Request) {
		var req RemoveBatchRequest
		if !decodeV2(w, r, &req) {
			return
		}
		if err := s.RemoveBatch(r.Context(), req.Token, req.Ops); err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("GET /v2/stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.StatsV2(r.Context())
		if err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func decodeV2(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorV2{Code: CodeBadRequest, Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// statusFor maps a server error onto its HTTP status (shared by the
// v1 and v2 error writers).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrAuth):
		return http.StatusUnauthorized
	case errors.Is(err, ErrForbidden):
		return http.StatusForbidden
	case errors.Is(err, ErrUnknownUser), errors.Is(err, ErrUnknownList), errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
}

func writeErrV2(w http.ResponseWriter, err error) {
	env := ErrorV2{Code: ErrorCode(err), Error: err.Error()}
	var be *BatchError
	if errors.As(err, &be) {
		idx := be.Index
		env.Index = &idx
	}
	writeJSON(w, statusFor(err), env)
}

func writeJSON(w http.ResponseWriter, status int, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
