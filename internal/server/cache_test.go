package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"zerberr/internal/cache"
	"zerberr/internal/server"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

// oracleWindow is the shadow oracle: an independent filter-scan over
// the fully materialized rank-ordered list (the pre-rework read path),
// the same shape the store's own differential test checks against.
func oracleWindow(t *testing.T, b store.Backend, list zerber.ListID, allowed map[int]bool, offset, count int) ([]store.Element, bool) {
	t.Helper()
	var all []store.Element
	if err := b.View(list, func(elems []store.Element) {
		all = append([]store.Element(nil), elems...)
	}); err != nil {
		t.Fatalf("View(%d): %v", list, err)
	}
	var out []store.Element
	seen := 0
	for _, el := range all {
		if !allowed[el.Group] {
			continue
		}
		if seen >= offset {
			if len(out) >= count {
				return out, false
			}
			out = append(out, el)
		}
		seen++
	}
	return out, true
}

func sameElements(got []server.StoredElement, want []store.Element) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Group != want[i].Group || got[i].TRS != want[i].TRS ||
			string(got[i].Sealed) != string(want[i].Sealed) {
			return false
		}
	}
	return true
}

// TestCachedQueryDifferential races queries against a cached server
// with concurrent inserts and removes mutating the backend underneath
// (run under -race in CI). The invariant under concurrency: whenever a
// cached response and an uncached backend read carry the same list
// version, they must be element-identical. After the writers quiesce,
// every window — served twice, so the second pass is a guaranteed
// cache hit — must match the shadow-oracle filter-scan exactly.
func TestCachedQueryDifferential(t *testing.T) {
	const (
		lists     = 3
		numGroups = 5
	)
	backend := store.NewMemory()
	s := server.NewWithBackend([]byte("cache-differential-secret"), time.Hour, backend)
	s.SetCache(cache.New(4 << 20))
	s.RegisterUser("reader", 0, 2, 4)
	ctx := context.Background()
	toks, err := s.Login(ctx, "reader")
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[int]bool{0: true, 2: true, 4: true}

	// Seed every list so readers never race list creation.
	for l := 0; l < lists; l++ {
		for i := 0; i < 50; i++ {
			el := store.Element{Sealed: []byte(fmt.Sprintf("seed-%d-%04d", l, i)), TRS: float64(i%17) / 17, Group: i % numGroups}
			if err := backend.Insert(zerber.ListID(l), el); err != nil {
				t.Fatal(err)
			}
		}
	}

	const writers, readers = 3, 4
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	var matchedCmp int64
	var cmpMu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var mine [][2]string // (list, payload) pairs eligible for removal
			for i := 0; i < 400; i++ {
				list := zerber.ListID(rng.Intn(lists))
				if len(mine) > 0 && rng.Intn(5) == 0 {
					j := rng.Intn(len(mine))
					var l zerber.ListID
					fmt.Sscanf(mine[j][0], "%d", &l)
					if err := backend.Remove(l, []byte(mine[j][1]), nil); err != nil {
						errc <- fmt.Errorf("writer %d: remove: %w", w, err)
						return
					}
					mine = append(mine[:j], mine[j+1:]...)
					continue
				}
				p := fmt.Sprintf("w%d-%04d", w, i)
				el := store.Element{Sealed: []byte(p), TRS: rng.Float64(), Group: rng.Intn(numGroups)}
				if err := backend.Insert(list, el); err != nil {
					errc <- fmt.Errorf("writer %d: insert: %w", w, err)
					return
				}
				mine = append(mine, [2]string{fmt.Sprint(list), p})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < 400; i++ {
				list := zerber.ListID(rng.Intn(lists))
				offset, count := rng.Intn(60), 1+rng.Intn(30)
				resp, err := s.Query(ctx, toks, list, offset, count)
				if err != nil {
					errc <- fmt.Errorf("reader %d: cached query: %w", r, err)
					return
				}
				direct, err := backend.Query(list, allowed, offset, count)
				if err != nil {
					errc <- fmt.Errorf("reader %d: direct query: %w", r, err)
					return
				}
				// Writers may have squeezed a mutation between the two
				// reads; the invariant is only claimed per version.
				if resp.Version != direct.Version {
					continue
				}
				if !sameElements(resp.Elements, direct.Elements) || resp.Exhausted != direct.Exhausted {
					errc <- fmt.Errorf("reader %d: version %d window (%d,%d,%d) diverged: cached %d elements (exhausted=%v), direct %d (exhausted=%v)",
						r, resp.Version, list, offset, count, len(resp.Elements), resp.Exhausted, len(direct.Elements), direct.Exhausted)
					return
				}
				cmpMu.Lock()
				matchedCmp++
				cmpMu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if matchedCmp == 0 {
		t.Fatal("no version-matched comparisons happened; test is vacuous")
	}

	// Quiesced: every window must equal the shadow oracle, twice (the
	// repeat is a guaranteed cache hit serving the same aliased
	// buffers).
	before, ok := s.CacheStats()
	if !ok {
		t.Fatal("no cache stats")
	}
	for l := 0; l < lists; l++ {
		list := zerber.ListID(l)
		for _, offset := range []int{0, 1, 7, 25, 100, 10_000} {
			for _, count := range []int{1, 10, 64} {
				want, wantExh := oracleWindow(t, backend, list, allowed, offset, count)
				for pass := 0; pass < 2; pass++ {
					resp, err := s.Query(ctx, toks, list, offset, count)
					if err != nil {
						t.Fatalf("list %d offset %d count %d pass %d: %v", list, offset, count, pass, err)
					}
					if !sameElements(resp.Elements, want) || resp.Exhausted != wantExh {
						t.Fatalf("list %d offset %d count %d pass %d: %d elements (exhausted=%v), oracle %d (exhausted=%v)",
							list, offset, count, pass, len(resp.Elements), resp.Exhausted, len(want), wantExh)
					}
				}
			}
		}
	}
	after, _ := s.CacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("quiesced repeats produced no cache hits: before %+v after %+v", before, after)
	}
}

// TestQueryBatchIfVersion pins the conditional sub-query protocol:
// matching IfVersion yields Unchanged with no elements, a stale one
// yields the full window with the new version, and a mutation in a
// group outside the caller's visibility still invalidates (the
// version is per list, deliberately conservative).
func TestQueryBatchIfVersion(t *testing.T) {
	s := server.New([]byte("if-version-secret"), time.Hour)
	s.RegisterUser("u", 0, 1)
	ctx := context.Background()
	toks, err := s.Login(ctx, "u")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		el := server.StoredElement{Sealed: []byte(fmt.Sprintf("e%02d", i)), TRS: float64(i) / 20, Group: i % 2}
		if err := s.Insert(ctx, toks[i%2], 1, el); err != nil {
			t.Fatal(err)
		}
	}
	base, err := s.QueryBatch(ctx, toks, []server.ListQuery{{List: 1, Offset: 0, Count: 5}})
	if err != nil {
		t.Fatal(err)
	}
	resp := base[0]
	if resp.Version == 0 || resp.Unchanged {
		t.Fatalf("unconditional response: %+v", resp)
	}

	// Same version -> Unchanged, no payload.
	ver := resp.Version
	cond, err := s.QueryBatch(ctx, toks, []server.ListQuery{{List: 1, Offset: 0, Count: 5, IfVersion: &ver}})
	if err != nil {
		t.Fatal(err)
	}
	if !cond[0].Unchanged || cond[0].Version != ver || cond[0].Elements != nil {
		t.Fatalf("conditional hit: %+v", cond[0])
	}

	// Mutate (group 1 — outside or inside visibility, the per-list
	// version bumps either way), then the same conditional must serve
	// the full window at the new version.
	if err := s.Insert(ctx, toks[1], 1, server.StoredElement{Sealed: []byte("fresh"), TRS: 0.99, Group: 1}); err != nil {
		t.Fatal(err)
	}
	cond2, err := s.QueryBatch(ctx, toks, []server.ListQuery{{List: 1, Offset: 0, Count: 5, IfVersion: &ver}})
	if err != nil {
		t.Fatal(err)
	}
	if cond2[0].Unchanged || cond2[0].Version != ver+1 || len(cond2[0].Elements) != 5 {
		t.Fatalf("conditional miss: unchanged=%v version=%d (want %d) elements=%d",
			cond2[0].Unchanged, cond2[0].Version, ver+1, len(cond2[0].Elements))
	}
	if string(cond2[0].Elements[0].Sealed) != "fresh" {
		t.Fatalf("full window after mutation misses the new top element: %q", cond2[0].Elements[0].Sealed)
	}
}

// TestStatsV2CacheCounters: /v2/stats carries the cache section only
// when a cache is installed, and the counters move.
func TestStatsV2CacheCounters(t *testing.T) {
	s := server.New([]byte("stats-cache-secret"), time.Hour)
	s.RegisterUser("u", 0)
	ctx := context.Background()
	toks, err := s.Login(ctx, "u")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(ctx, toks[0], 1, server.StoredElement{Sealed: []byte("x"), TRS: 0.5, Group: 0}); err != nil {
		t.Fatal(err)
	}
	st, err := s.StatsV2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache != nil {
		t.Fatalf("cache section without a cache: %+v", st.Cache)
	}
	s.SetCache(cache.New(1 << 20))
	for i := 0; i < 3; i++ {
		if _, err := s.Query(ctx, toks, 1, 0, 5); err != nil {
			t.Fatal(err)
		}
	}
	st, err = s.StatsV2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil {
		t.Fatal("no cache section with a cache installed")
	}
	if st.Cache.Misses != 1 || st.Cache.Hits != 2 || st.Cache.Entries != 1 {
		t.Fatalf("cache counters: %+v", st.Cache)
	}
	if st.Cache.Capacity != 1<<20 || st.Cache.Bytes == 0 {
		t.Fatalf("cache sizing: %+v", st.Cache)
	}
}
