package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"zerberr/internal/store"
)

// TestHTTPQueryIdenticalAfterRestart is the acceptance path for the
// durable backend: load a server over HTTP, tear it down, start a new
// server over the same data directory, and demand byte-identical
// /v1/query results.
func TestHTTPQueryIdenticalAfterRestart(t *testing.T) {
	dir := t.TempDir()
	queryBody := QueryRequest{List: 4, Offset: 0, Count: 10}

	query := func(ts *httptest.Server, toks LoginResponse) QueryResponse {
		t.Helper()
		queryBody.Tokens = toks.Tokens
		resp := post(t, ts, "/v1/query", queryBody)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}
	login := func(ts *httptest.Server) LoginResponse {
		t.Helper()
		resp := post(t, ts, "/v1/login", LoginRequest{User: "john"})
		defer resp.Body.Close()
		var lr LoginResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		return lr
	}
	boot := func() (*Server, *httptest.Server) {
		t.Helper()
		d, err := store.OpenDurable(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := NewWithBackend(secret, time.Hour, d)
		s.RegisterUser("john", 0, 1)
		return s, httptest.NewServer(s.Handler())
	}

	s, ts := boot()
	lr := login(ts)
	for i, trs := range []float64{0.9, 0.1, 0.5, 0.7} {
		resp := post(t, ts, "/v1/insert", InsertRequest{
			Token: lr.Tokens[i%2],
			List:  4,
			Element: StoredElement{
				Sealed: []byte{byte(i), 0xEE},
				TRS:    trs,
				Group:  i % 2,
			},
		})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d status %d", i, resp.StatusCode)
		}
	}
	before := query(ts, lr)
	if len(before.Elements) != 4 || !before.Exhausted {
		t.Fatalf("pre-restart query: %+v", before)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart the daemon": new server, same data directory.
	s2, ts2 := boot()
	defer ts2.Close()
	defer s2.Close()
	after := query(ts2, login(ts2))
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("query results changed across restart:\nbefore %+v\nafter  %+v", before, after)
	}
}
