// Package server implements the untrusted Zerber+R index server of
// Section 5.2: it stores merged posting lists whose elements carry an
// opaque sealed payload plus a plaintext transformed relevance score
// (TRS), keeps each list sorted by TRS, authenticates users, enforces
// group access control, and serves ranked ranges of posting elements
// so clients can run the progressive top-k protocol.
//
// The server never sees group keys, raw relevance scores, term
// identities or document identities — only list IDs, group IDs, TRS
// values and ciphertext.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"zerberr/internal/crypt"
	"zerberr/internal/zerber"
)

// StoredElement is what the server keeps and returns per posting
// element: ciphertext plus the server-visible ranking and ACL fields.
type StoredElement struct {
	// Sealed is the encrypted (doc, term, score) payload.
	Sealed []byte `json:"sealed"`
	// TRS is the transformed relevance score the server ranks by.
	TRS float64 `json:"trs"`
	// Group is the collaboration group owning the element; the server
	// filters on it per user.
	Group int `json:"group"`
}

// QueryResponse is one batch of the progressive protocol.
type QueryResponse struct {
	// Elements are the next ranked elements visible to the caller.
	Elements []StoredElement `json:"elements"`
	// Exhausted reports that no further elements remain beyond this
	// batch for the caller's access rights.
	Exhausted bool `json:"exhausted"`
}

// Errors returned by server operations.
var (
	ErrAuth        = errors.New("server: authentication failed")
	ErrForbidden   = errors.New("server: group not covered by presented tokens")
	ErrUnknownUser = errors.New("server: unknown user")
	ErrUnknownList = errors.New("server: unknown posting list")
	ErrBadRequest  = errors.New("server: bad request")
)

// Server is an in-memory index server. All methods are safe for
// concurrent use.
type Server struct {
	mu       sync.RWMutex
	secret   []byte
	tokenTTL time.Duration
	now      func() time.Time
	members  map[string]map[int]bool
	lists    map[zerber.ListID]*mergedList
}

// mergedList holds one merged posting list sorted by descending TRS.
// Inserts append and mark the list dirty; the sort is re-established
// lazily before the next read, so bulk loading stays O(n log n).
type mergedList struct {
	elems []StoredElement
	dirty bool
}

// New creates a server with the given token-signing secret. tokenTTL
// bounds token lifetime (zero means one hour).
func New(secret []byte, tokenTTL time.Duration) *Server {
	if tokenTTL <= 0 {
		tokenTTL = time.Hour
	}
	return &Server{
		secret:   append([]byte(nil), secret...),
		tokenTTL: tokenTTL,
		now:      time.Now,
		members:  make(map[string]map[int]bool),
		lists:    make(map[zerber.ListID]*mergedList),
	}
}

// SetClock overrides the server clock (tests).
func (s *Server) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// RegisterUser records the user's group memberships (the enterprise
// directory of the Section 2 scenario). Repeated calls extend the
// membership set.
func (s *Server) RegisterUser(user string, groups ...int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.members[user]
	if m == nil {
		m = make(map[int]bool)
		s.members[user] = m
	}
	for _, g := range groups {
		m[g] = true
	}
}

// Login authenticates a user and issues one token per group
// membership. (Password verification is out of scope — the paper
// assumes an enterprise authentication layer; we model its outcome.)
func (s *Server) Login(user string) ([]crypt.Token, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	groups, ok := s.members[user]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	sorted := make([]int, 0, len(groups))
	for g := range groups {
		sorted = append(sorted, g)
	}
	sort.Ints(sorted)
	expiry := s.now().Add(s.tokenTTL)
	toks := make([]crypt.Token, len(sorted))
	for i, g := range sorted {
		toks[i] = crypt.IssueToken(s.secret, user, g, expiry)
	}
	return toks, nil
}

// allowedGroups validates the presented tokens and returns the set of
// groups they grant. Invalid or expired tokens are an authentication
// error, not silently dropped.
func (s *Server) allowedGroups(toks []crypt.Token) (map[int]bool, error) {
	now := s.now()
	allowed := make(map[int]bool, len(toks))
	for _, tok := range toks {
		if !crypt.VerifyToken(s.secret, tok, now) {
			return nil, fmt.Errorf("%w: invalid token for user %q group %d", ErrAuth, tok.User, tok.Group)
		}
		allowed[tok.Group] = true
	}
	return allowed, nil
}

// Insert stores a sealed posting element into the given merged list.
// The presented token must cover the element's group (Section 5:
// "The index server authenticates the user, checks his group
// membership and accepts the update if appropriate").
func (s *Server) Insert(tok crypt.Token, list zerber.ListID, el StoredElement) error {
	if el.Sealed == nil {
		return fmt.Errorf("%w: empty payload", ErrBadRequest)
	}
	allowed, err := s.allowedGroups([]crypt.Token{tok})
	if err != nil {
		return err
	}
	if !allowed[el.Group] {
		return fmt.Errorf("%w: token group %d, element group %d", ErrForbidden, tok.Group, el.Group)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ml := s.lists[list]
	if ml == nil {
		ml = &mergedList{}
		s.lists[list] = ml
	}
	ml.insert(el)
	return nil
}

// insert appends the element; rank order is re-established lazily.
func (ml *mergedList) insert(el StoredElement) {
	ml.elems = append(ml.elems, el)
	ml.dirty = true
}

// ensureSorted re-sorts a dirty list. Callers must hold the write
// lock.
func (ml *mergedList) ensureSorted() {
	if !ml.dirty {
		return
	}
	sort.SliceStable(ml.elems, func(i, j int) bool { return elementLess(ml.elems[i], ml.elems[j]) })
	ml.dirty = false
}

// elementLess orders by descending TRS. Ties are broken by the sealed
// payload bytes, which are indistinguishable from random to the
// server — so tie order carries no term information.
func elementLess(a, b StoredElement) bool {
	if a.TRS != b.TRS {
		return a.TRS > b.TRS
	}
	return string(a.Sealed) < string(b.Sealed)
}

// normalize re-sorts the list if needed, upgrading to the write lock
// only when there is work to do.
func (s *Server) normalize(list zerber.ListID) {
	s.mu.RLock()
	ml := s.lists[list]
	dirty := ml != nil && ml.dirty
	s.mu.RUnlock()
	if !dirty {
		return
	}
	s.mu.Lock()
	if ml := s.lists[list]; ml != nil {
		ml.ensureSorted()
	}
	s.mu.Unlock()
}

// Query returns up to count elements of the list starting at offset
// within the caller's access-filtered, TRS-ranked view. The client
// drives the progressive doubling of Section 5.2 by growing count
// across follow-up requests; the server only serves ranked ranges.
func (s *Server) Query(toks []crypt.Token, list zerber.ListID, offset, count int) (QueryResponse, error) {
	if offset < 0 || count <= 0 {
		return QueryResponse{}, fmt.Errorf("%w: offset %d count %d", ErrBadRequest, offset, count)
	}
	allowed, err := s.allowedGroups(toks)
	if err != nil {
		return QueryResponse{}, err
	}
	s.normalize(list)
	s.mu.RLock()
	defer s.mu.RUnlock()
	ml := s.lists[list]
	if ml == nil {
		return QueryResponse{}, fmt.Errorf("%w: %d", ErrUnknownList, list)
	}
	var out []StoredElement
	seen := 0
	for _, el := range ml.elems {
		if !allowed[el.Group] {
			continue
		}
		if seen >= offset {
			if len(out) >= count {
				// One extra visible element exists: not exhausted.
				return QueryResponse{Elements: out}, nil
			}
			cp := el
			cp.Sealed = append([]byte(nil), el.Sealed...)
			out = append(out, cp)
		}
		seen++
	}
	return QueryResponse{Elements: out, Exhausted: true}, nil
}

// ErrNotFound reports a Remove for an element the list does not hold.
var ErrNotFound = errors.New("server: element not found")

// Remove deletes the element whose sealed payload matches exactly,
// provided the presented token covers the element's group. Deletion is
// how index updates stay unlimited (Section 7): the owner re-indexes a
// changed document after removing its old elements. The server still
// learns nothing — it matches opaque bytes.
func (s *Server) Remove(tok crypt.Token, list zerber.ListID, sealed []byte) error {
	if len(sealed) == 0 {
		return fmt.Errorf("%w: empty payload", ErrBadRequest)
	}
	allowed, err := s.allowedGroups([]crypt.Token{tok})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ml := s.lists[list]
	if ml == nil {
		return fmt.Errorf("%w: %d", ErrUnknownList, list)
	}
	for i, el := range ml.elems {
		if string(el.Sealed) != string(sealed) {
			continue
		}
		if !allowed[el.Group] {
			return fmt.Errorf("%w: element of group %d", ErrForbidden, el.Group)
		}
		ml.elems = append(ml.elems[:i], ml.elems[i+1:]...)
		return nil
	}
	return fmt.Errorf("%w in list %d", ErrNotFound, list)
}

// ListLen reports how many elements the list holds in total
// (administrative/diagnostic; experiments use it for cost accounting).
func (s *Server) ListLen(list zerber.ListID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ml := s.lists[list]; ml != nil {
		return len(ml.elems)
	}
	return 0
}

// NumLists reports how many merged lists hold at least one element.
func (s *Server) NumLists() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.lists)
}

// NumElements reports the total number of stored posting elements.
func (s *Server) NumElements() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ml := range s.lists {
		n += len(ml.elems)
	}
	return n
}

// Snapshot returns a copy of a list's elements in rank order
// (adversary's view of a compromised server; used by the attack
// experiments).
func (s *Server) Snapshot(list zerber.ListID) []StoredElement {
	s.normalize(list)
	s.mu.RLock()
	defer s.mu.RUnlock()
	ml := s.lists[list]
	if ml == nil {
		return nil
	}
	out := make([]StoredElement, len(ml.elems))
	for i, el := range ml.elems {
		out[i] = el
		out[i].Sealed = append([]byte(nil), el.Sealed...)
	}
	return out
}

// Lists returns the IDs of all non-empty lists in ascending order.
func (s *Server) Lists() []zerber.ListID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]zerber.ListID, 0, len(s.lists))
	for id := range s.lists {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
