// Package server implements the untrusted Zerber+R index server of
// Section 5.2: it stores merged posting lists whose elements carry an
// opaque sealed payload plus a plaintext transformed relevance score
// (TRS), keeps each list sorted by TRS, authenticates users, enforces
// group access control, and serves ranked ranges of posting elements
// so clients can run the progressive top-k protocol.
//
// The server never sees group keys, raw relevance scores, term
// identities or document identities — only list IDs, group IDs, TRS
// values and ciphertext. Storage is pluggable (internal/store): the
// default backend keeps lists in RAM; store.Durable adds a write-ahead
// log and snapshots so a restarted server recovers its index.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zerberr/internal/cache"
	"zerberr/internal/crypt"
	"zerberr/internal/proof"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

// StoredElement is what the server keeps and returns per posting
// element: ciphertext plus the server-visible ranking and ACL fields.
// It aliases store.Element so backends and the wire format agree.
type StoredElement = store.Element

// QueryResponse is one batch of the progressive protocol.
type QueryResponse struct {
	// Elements are the next ranked elements visible to the caller.
	// Their Sealed slices alias the store's buffers (the backend never
	// rewrites payload bytes in place, so they stay valid); in-process
	// callers must not mutate them. HTTP callers get their own decoded
	// copies.
	Elements []StoredElement `json:"elements"`
	// Exhausted reports that no further elements remain beyond this
	// batch for the caller's access rights.
	Exhausted bool `json:"exhausted"`
	// Version is the list's mutation version the range was served at
	// (store.Backend.Version). Callers may hold on to the response and
	// later revalidate it for free with ListQuery.IfVersion: an equal
	// version guarantees identical content. Always set (0 only for
	// legacy empty lists that have never been mutated).
	Version uint64 `json:"version,omitempty"`
	// Unchanged reports that the sub-query carried an IfVersion equal
	// to the list's current version: the caller's retained window is
	// still exact, so Elements and Exhausted are omitted. (This covers
	// a retained proof too: equal versions commit to identical state.)
	Unchanged bool `json:"unchanged,omitempty"`
	// Proof is the window's Merkle proof, present exactly when the
	// sub-query asked for one (ListQuery.Proof). Proof-less responses
	// are byte-identical to pre-proof servers.
	Proof *proof.Window `json:"proof,omitempty"`
}

// Errors returned by server operations.
var (
	ErrAuth        = errors.New("server: authentication failed")
	ErrForbidden   = errors.New("server: group not covered by presented tokens")
	ErrUnknownUser = errors.New("server: unknown user")
	ErrUnknownList = errors.New("server: unknown posting list")
	ErrBadRequest  = errors.New("server: bad request")
)

// ErrTokenExpired is the expiry case of ErrAuth: the token's MAC is
// authentic but its lifetime is over. It unwraps to ErrAuth, so
// callers matching ErrAuth keep working; the v2 wire protocol carries
// the distinction as the "token_expired" error code.
var ErrTokenExpired = fmt.Errorf("%w: token expired", ErrAuth)

// ErrNotFound reports a Remove for an element the list does not hold.
var ErrNotFound = errors.New("server: element not found")

// Server is an index server over a pluggable storage backend. All
// methods are safe for concurrent use. Request-serving methods take a
// context (API v3) and honor cancellation between units of work —
// a canceled batch stops launching sub-queries and applying further
// operations; see each method for its partial-effect semantics.
type Server struct {
	mu       sync.RWMutex // guards members and now; the backend locks itself
	secret   []byte
	tokenTTL time.Duration
	now      func() time.Time
	members  map[string]map[int]bool
	backend  store.Backend
	// results is the optional query-result cache (nil = off). Atomic so
	// the read path never takes s.mu for it.
	results atomic.Pointer[cache.Cache]
	// met/adm/logger are the ops plane: metrics handles (SetObs),
	// admission control (SetAdmission) and the structured logger
	// (SetLogger). All atomic for lock-free hot-path loads; all nil
	// by default, costing un-instrumented servers one load each.
	met    metPtr
	adm    admPtr
	logger loggerPtr
	// inflight counts HTTP requests currently being served; the shed
	// bound compares against it, and the metrics gauge mirrors it. Kept
	// on the server (not serverMetrics) so shedding works with no
	// registry installed.
	inflight atomic.Int64
	// adminOff disables the /v3/admin endpoints (SetAdminEnabled).
	// Inverted so the zero value keeps them on.
	adminOff atomic.Bool
}

// New creates a server with the given token-signing secret and an
// in-memory backend. tokenTTL bounds token lifetime (zero means one
// hour).
func New(secret []byte, tokenTTL time.Duration) *Server {
	return NewWithBackend(secret, tokenTTL, store.NewMemory())
}

// NewWithBackend creates a server over an explicit storage backend —
// store.NewMemory() for the RAM-only server, store.OpenDurable for a
// crash-safe one. The server owns the backend from here on; close it
// through Server.Close.
func NewWithBackend(secret []byte, tokenTTL time.Duration, backend store.Backend) *Server {
	if tokenTTL <= 0 {
		tokenTTL = time.Hour
	}
	return &Server{
		secret:   append([]byte(nil), secret...),
		tokenTTL: tokenTTL,
		now:      time.Now,
		members:  make(map[string]map[int]bool),
		backend:  backend,
	}
}

// Close flushes and releases the storage backend.
func (s *Server) Close() error { return s.backend.Close() }

// SetCache installs (or, with nil, removes) a query-result cache. The
// cache is consulted by Query and QueryBatch under version-stamped
// keys, so it is always transparent: a mutation bumps the list version
// and every window cached before it stops matching. A cache may be
// installed or swapped while the server is serving traffic.
func (s *Server) SetCache(c *cache.Cache) { s.results.Store(c) }

// CacheStats reports the query-result cache counters; ok is false when
// no cache is installed.
func (s *Server) CacheStats() (cache.Stats, bool) {
	c := s.results.Load()
	if c == nil {
		return cache.Stats{}, false
	}
	return c.Stats(), true
}

// SetClock overrides the server clock (tests).
func (s *Server) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// clock returns the current clock function under the read lock.
func (s *Server) clock() func() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// RegisterUser records the user's group memberships (the enterprise
// directory of the Section 2 scenario). Repeated calls extend the
// membership set.
func (s *Server) RegisterUser(user string, groups ...int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.members[user]
	if m == nil {
		m = make(map[int]bool)
		s.members[user] = m
	}
	for _, g := range groups {
		m[g] = true
	}
}

// Login authenticates a user and issues one token per group
// membership. (Password verification is out of scope — the paper
// assumes an enterprise authentication layer; we model its outcome.)
func (s *Server) Login(ctx context.Context, user string) ([]crypt.Token, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	groups, ok := s.members[user]
	sorted := make([]int, 0, len(groups))
	for g := range groups {
		sorted = append(sorted, g)
	}
	now := s.now
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	t := now()
	// Rate-limit only known users: keying buckets by arbitrary
	// unauthenticated names would let a flood of garbage logins grow
	// the bucket table. (Outside s.mu.)
	if err := s.admit(user, t); err != nil {
		return nil, err
	}
	sort.Ints(sorted)
	expiry := t.Add(s.tokenTTL)
	toks := make([]crypt.Token, len(sorted))
	for i, g := range sorted {
		toks[i] = crypt.IssueToken(s.secret, user, g, expiry)
	}
	return toks, nil
}

// allowedGroups validates the presented tokens and returns the set of
// groups they grant, plus the clock reading it validated against (so
// callers can admit and time the round without re-reading the clock).
// Invalid or expired tokens are an authentication error, not silently
// dropped.
func (s *Server) allowedGroups(toks []crypt.Token) (map[int]bool, time.Time, error) {
	now := s.clock()()
	allowed := make(map[int]bool, len(toks))
	for _, tok := range toks {
		// Verify the MAC first (now = Expiry is never "after" expiry),
		// then the lifetime, so expiry is only reported for authentic
		// tokens and a forged expiry cannot probe the distinction.
		if !crypt.VerifyToken(s.secret, tok, tok.Expiry) {
			return nil, now, fmt.Errorf("%w: invalid token for user %q group %d", ErrAuth, tok.User, tok.Group)
		}
		if now.After(tok.Expiry) {
			return nil, now, fmt.Errorf("%w: user %q group %d", ErrTokenExpired, tok.User, tok.Group)
		}
		allowed[tok.Group] = true
	}
	return allowed, now, nil
}

// Insert stores a sealed posting element into the given merged list.
// The presented token must cover the element's group (Section 5:
// "The index server authenticates the user, checks his group
// membership and accepts the update if appropriate").
func (s *Server) Insert(ctx context.Context, tok crypt.Token, list zerber.ListID, el StoredElement) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if el.Sealed == nil {
		return fmt.Errorf("%w: empty payload", ErrBadRequest)
	}
	allowed, now, err := s.allowedGroups([]crypt.Token{tok})
	if err != nil {
		return err
	}
	if err := s.admit(tok.User, now); err != nil {
		return err
	}
	if !allowed[el.Group] {
		return fmt.Errorf("%w: token group %d, element group %d", ErrForbidden, tok.Group, el.Group)
	}
	if err := s.backend.Insert(list, el); err != nil {
		return err
	}
	if m := s.met.Load(); m != nil {
		m.inserts.Inc()
	}
	return nil
}

// Query returns up to count elements of the list starting at offset
// within the caller's access-filtered, TRS-ranked view. The client
// drives the progressive doubling of Section 5.2 by growing count
// across follow-up requests; the server only serves ranked ranges.
func (s *Server) Query(ctx context.Context, toks []crypt.Token, list zerber.ListID, offset, count int) (QueryResponse, error) {
	if err := ctx.Err(); err != nil {
		return QueryResponse{}, err
	}
	if offset < 0 || count <= 0 {
		return QueryResponse{}, fmt.Errorf("%w: offset %d count %d", ErrBadRequest, offset, count)
	}
	allowed, now, err := s.allowedGroups(toks)
	if err != nil {
		return QueryResponse{}, err
	}
	if err := s.admit(userOf(toks), now); err != nil {
		return QueryResponse{}, err
	}
	defer s.met.Load().endRound(1, now)
	return s.queryAllowed(allowed, list, offset, count, nil, false)
}

// userOf keys the rate limiter: the presenting user of a validated
// token set (one user presents all their group tokens together). The
// key is never used as a metric label — buckets aggregate per user,
// metrics aggregate over everyone.
func userOf(toks []crypt.Token) string {
	if len(toks) == 0 {
		return ""
	}
	return toks[0].User
}

// queryAllowed is Query past token validation: batch sub-queries
// share one validated group set instead of re-verifying the tokens
// per sub-query. The access-filtered ranked range is the backend's
// own hot path (per-group sorted sub-lists merged from the requested
// offset), so a sub-query costs the range, not the list.
//
// With a cache installed, the window is looked up under the list's
// current version first; a hit skips the backend read entirely and is
// element-identical to it (equal versions guarantee equal content). A
// non-nil ifVersion equal to the current version short-circuits even
// further: the caller has the window already, so only (Version,
// Unchanged) comes back.
//
// withProof asks for the window's Merkle proof. Cache entries are
// shared across both forms under the same key: a proved entry serves
// unproven callers with the proof stripped, and an unproven hit under
// a proof request falls through to the backend's proved read and
// upgrades the entry in place (same version, so the elements are
// identical — only the proof is new).
func (s *Server) queryAllowed(allowed map[int]bool, list zerber.ListID, offset, count int, ifVersion *uint64, withProof bool) (QueryResponse, error) {
	c := s.results.Load()
	var key cache.Key
	if c != nil {
		// Built once per sub-query; only the Version field differs
		// between the lookup and a later fill.
		key = cache.Key{List: list, Groups: cache.GroupsKey(allowed), Offset: offset, Count: count}
	}
	if c != nil || ifVersion != nil {
		ver, err := s.backend.Version(list)
		switch {
		case errors.Is(err, store.ErrUnknownList):
			return QueryResponse{}, fmt.Errorf("%w: %d", ErrUnknownList, list)
		case err != nil:
			return QueryResponse{}, err
		}
		if ifVersion != nil && *ifVersion == ver {
			return QueryResponse{Version: ver, Unchanged: true}, nil
		}
		if c != nil {
			key.Version = ver
			if res, ok := c.Get(key); ok && (!withProof || res.Proof != nil) {
				return queryResponseOf(res, withProof), nil
			}
		}
	}
	var res store.QueryResult
	var err error
	if withProof {
		res, err = s.backend.QueryProved(list, allowed, offset, count)
	} else {
		res, err = s.backend.Query(list, allowed, offset, count)
	}
	if errors.Is(err, store.ErrUnknownList) {
		return QueryResponse{}, fmt.Errorf("%w: %d", ErrUnknownList, list)
	}
	if err != nil {
		return QueryResponse{}, err
	}
	if withProof {
		if m := s.met.Load(); m != nil {
			m.proved.Inc()
		}
	}
	if c != nil {
		// Keyed by the version the backend read the window at (observed
		// atomically with it), which may already be newer than the
		// version checked above — either way the entry is exact for its
		// key. Payloads are aliased into the cache, never copied. A
		// proved result memoizes its proof under the same key.
		key.Version = res.Version
		c.Put(key, res)
	}
	return queryResponseOf(res, withProof), nil
}

// queryResponseOf shapes a backend (or cached) result into the wire
// response, stripping the memoized proof unless the caller asked for
// one — proof-off responses stay byte-identical to pre-proof servers.
func queryResponseOf(res store.QueryResult, withProof bool) QueryResponse {
	resp := QueryResponse{Elements: res.Elements, Exhausted: res.Exhausted, Version: res.Version}
	if withProof {
		resp.Proof = res.Proof
	}
	return resp
}

// Remove deletes the element whose sealed payload matches exactly,
// provided the presented token covers the element's group. Deletion is
// how index updates stay unlimited (Section 7): the owner re-indexes a
// changed document after removing its old elements. The server still
// learns nothing — it matches opaque bytes.
func (s *Server) Remove(ctx context.Context, tok crypt.Token, list zerber.ListID, sealed []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(sealed) == 0 {
		return fmt.Errorf("%w: empty payload", ErrBadRequest)
	}
	allowed, now, err := s.allowedGroups([]crypt.Token{tok})
	if err != nil {
		return err
	}
	if err := s.admit(tok.User, now); err != nil {
		return err
	}
	if err := s.removeAllowed(allowed, list, sealed); err != nil {
		return err
	}
	if m := s.met.Load(); m != nil {
		m.removes.Inc()
	}
	return nil
}

// removeAllowed is Remove past token validation; batch operations
// share one validated group set.
func (s *Server) removeAllowed(allowed map[int]bool, list zerber.ListID, sealed []byte) error {
	deniedGroup := 0
	err := s.backend.Remove(list, sealed, func(group int) bool {
		if allowed[group] {
			return true
		}
		deniedGroup = group
		return false
	})
	switch {
	case errors.Is(err, store.ErrUnknownList):
		return fmt.Errorf("%w: %d", ErrUnknownList, list)
	case errors.Is(err, store.ErrDenied):
		return fmt.Errorf("%w: element of group %d", ErrForbidden, deniedGroup)
	case errors.Is(err, store.ErrNotFound):
		return fmt.Errorf("%w in list %d", ErrNotFound, list)
	}
	return err
}

// ListLen reports how many elements the list holds in total
// (administrative/diagnostic; experiments use it for cost accounting).
// Best-effort: a failing backend (e.g. closed) reads as zero — use
// StatsV2 when the error matters.
func (s *Server) ListLen(list zerber.ListID) int {
	n, _ := s.backend.Len(list)
	return n
}

// NumLists reports how many merged lists exist. Best-effort, like
// ListLen.
func (s *Server) NumLists() int {
	n, _ := s.backend.NumLists()
	return n
}

// NumElements reports the total number of stored posting elements.
// Best-effort, like ListLen.
func (s *Server) NumElements() int {
	n, _ := s.backend.NumElements()
	return n
}

// BackendName reports the storage engine behind the server
// ("memory", "durable").
func (s *Server) BackendName() string { return s.backend.Name() }

// Snapshot returns a copy of a list's elements in rank order
// (adversary's view of a compromised server; used by the attack
// experiments). An unknown list is ErrUnknownList and a failing
// backend propagates, so callers can tell "empty" from "failed".
func (s *Server) Snapshot(list zerber.ListID) ([]StoredElement, error) {
	var out []StoredElement
	err := s.backend.View(list, func(elems []StoredElement) {
		out = make([]StoredElement, len(elems))
		for i, el := range elems {
			out[i] = el
			out[i].Sealed = append([]byte(nil), el.Sealed...)
		}
	})
	if errors.Is(err, store.ErrUnknownList) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownList, list)
	}
	if err != nil {
		return nil, fmt.Errorf("server: snapshot of list %d: %w", list, err)
	}
	return out, nil
}

// Lists returns the IDs of all known lists in ascending order.
// Best-effort, like ListLen.
func (s *Server) Lists() []zerber.ListID {
	out, _ := s.backend.Lists()
	return out
}
