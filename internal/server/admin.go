package server

// Admin plane: the snapshot-transfer API beneath live shard migration
// and replica resync (internal/cluster, internal/replica). A peer
// holding the cluster's shared secret can export this shard's atomic
// ZSNAP2 dump, import one, fetch the WAL tail logged after a dump's
// sequence, apply a decoded tail, and fetch a per-list content digest
// for differential verification across a cut-over.
//
// Access control is deliberately not token-based: tokens authorize
// per-group reads and writes, while these calls move whole-index state
// between servers. They are gated by an HMAC derived from the token
// secret itself (AdminMAC) — exactly the set of parties that already
// operate the fleet — and everything they move is content the source
// server already held in its untrusted role (sealed payloads, TRS
// values, group IDs), so the admin plane widens no leakage surface.

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"zerberr/internal/cache"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

// TailOp aliases the store's decoded WAL mutation so the wire format
// and the storage hook agree (the StoredElement idiom).
type TailOp = store.TailOp

// SnapshotExport is one shard's exported state: the self-verifying
// ZSNAP2 dump, the WAL sequence it covers, and whether the shard can
// serve TailSince for sequences at or beyond Seq (a durable backend
// can; a RAM-only one cannot, so its export is only consistent if the
// caller paused writes around it).
type SnapshotExport struct {
	Data     []byte
	Seq      uint64
	Tailable bool
}

// ListDigest summarizes one list for differential verification: its
// mutation version, element count and the hex Merkle content root
// over the rank-ordered (group, trs, sealed) content (the same
// commitment window proofs verify against).
type ListDigest struct {
	List     zerber.ListID `json:"list"`
	Version  uint64        `json:"version"`
	Elements int           `json:"elements"`
	Sum      string        `json:"sum"`
}

// TailResponse carries a WAL tail between shards.
type TailResponse struct {
	Ops []TailOp `json:"ops"`
}

// ApplyOpsRequest is the /v3/admin/ops payload.
type ApplyOpsRequest struct {
	Ops []TailOp `json:"ops"`
}

// DigestResponse is the /v3/admin/digest payload.
type DigestResponse struct {
	Lists []ListDigest `json:"lists"`
}

// maxAdminOps bounds one ApplyOps request; longer tails are chunked by
// the caller.
const maxAdminOps = 1 << 20

// maxImportBytes bounds an imported snapshot body.
const maxImportBytes = 1 << 30

// AdminMAC derives the admin-plane credential from the token-signing
// secret: hex(HMAC-SHA256(secret, "zerber-admin-v1")). Shards of one
// cluster share the secret, so they (and the operator's tooling) can
// derive it; nobody else can. Sent as the X-Zerber-Admin header.
func AdminMAC(secret []byte) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte("zerber-admin-v1"))
	return hex.EncodeToString(mac.Sum(nil))
}

// SetAdminEnabled toggles the admin endpoints (default enabled). A
// disabled admin plane answers 404, indistinguishable from a build
// that never mounted it.
func (s *Server) SetAdminEnabled(on bool) { s.adminOff.Store(!on) }

// ExportSnapshot returns the shard's full state as an atomic ZSNAP2
// dump. Tailable reports whether TailSince can later serve the
// mutations logged after Seq.
func (s *Server) ExportSnapshot(ctx context.Context) (SnapshotExport, error) {
	if err := ctx.Err(); err != nil {
		return SnapshotExport{}, err
	}
	data, seq, err := s.backend.ExportSnapshot()
	if err != nil {
		return SnapshotExport{}, fmt.Errorf("server: exporting snapshot: %w", err)
	}
	// Capability probe: a log-keeping backend answers a beyond-head
	// tail with an empty slice in O(1); a log-less one with ErrNoTail.
	_, terr := s.backend.TailSince(math.MaxUint64)
	if m := s.met.Load(); m != nil {
		m.snapExports.Inc()
	}
	return SnapshotExport{Data: data, Seq: seq, Tailable: terr == nil}, nil
}

// ImportSnapshot replaces the shard's entire contents with a dump
// produced by ExportSnapshot, dropping any result-cache state the old
// contents may still validate under a colliding version epoch.
func (s *Server) ImportSnapshot(ctx context.Context, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("%w: empty snapshot", ErrBadRequest)
	}
	if err := s.backend.ImportSnapshot(data); err != nil {
		if errors.Is(err, store.ErrBadSnapshot) {
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return fmt.Errorf("server: importing snapshot: %w", err)
	}
	// The cache keys on (list, groups, window, version); imported
	// versions come from another instance's epoch, so entries cached
	// against the pre-import content can no longer be trusted to miss.
	if c := s.results.Load(); c != nil {
		s.SetCache(cache.New(c.Stats().Capacity))
	}
	if m := s.met.Load(); m != nil {
		m.snapImports.Inc()
	}
	return nil
}

// TailSince returns the mutations logged after seq (see
// store.Backend.TailSince for the ErrNoTail / ErrTailTruncated
// contract, surfaced here as ErrBadRequest-wrapped errors so remote
// callers can tell them from transport faults).
func (s *Server) TailSince(ctx context.Context, seq uint64) ([]TailOp, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ops, err := s.backend.TailSince(seq)
	if err != nil {
		if errors.Is(err, store.ErrNoTail) || errors.Is(err, store.ErrTailTruncated) {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return nil, fmt.Errorf("server: reading tail: %w", err)
	}
	if m := s.met.Load(); m != nil {
		m.tailOps.Add(uint64(len(ops)))
	}
	return ops, nil
}

// ApplyOps applies a decoded WAL tail in order through the normal
// mutation path, so versions advance on the destination exactly as
// they did on the source. Consecutive inserts are applied as one
// backend batch — on a durable destination a replayed tail costs one
// WAL record (and one fsync) per insert run, not per element, which is
// what keeps replica resync and migration catch-up cheap. The error
// carries the offending index as a BatchError (for a failed insert
// run, its first index); operations before it are applied (the caller
// re-syncs or discards the shard on failure — migration never flips a
// route without a clean digest match).
func (s *Server) ApplyOps(ctx context.Context, ops []TailOp) error {
	if len(ops) > maxAdminOps {
		return fmt.Errorf("%w: %d ops exceed the %d per-request bound", ErrBadRequest, len(ops), maxAdminOps)
	}
	for i := 0; i < len(ops); {
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		switch op := ops[i]; op.Op {
		case store.TailOpInsert:
			run := i + 1
			for run < len(ops) && ops[run].Op == store.TailOpInsert {
				run++
			}
			batch := make([]store.BatchInsert, 0, run-i)
			for _, op := range ops[i:run] {
				batch = append(batch, store.BatchInsert{
					List:    op.List,
					Element: store.Element{Sealed: op.Sealed, TRS: op.TRS, Group: op.Group},
				})
			}
			if err = s.backend.InsertBatch(batch); err != nil {
				return &BatchError{Index: i, Err: err}
			}
			i = run
			continue
		case store.TailOpRemove:
			err = s.backend.Remove(op.List, op.Sealed, nil)
			if errors.Is(err, store.ErrNotFound) || errors.Is(err, store.ErrUnknownList) {
				// A remove whose insert the snapshot already folded away
				// is a no-op, the same stance WAL replay takes.
				err = nil
			}
		default:
			err = fmt.Errorf("%w: unknown op %q", ErrBadRequest, op.Op)
		}
		if err != nil {
			return &BatchError{Index: i, Err: err}
		}
		i++
	}
	if m := s.met.Load(); m != nil {
		m.opsApplied.Add(uint64(len(ops)))
	}
	return nil
}

// Digest summarizes every list for differential verification. Sum is
// the hex Merkle content root (internal/proof): version-free, equal
// iff two lists hold identical elements in identical rank order, and
// the same leaf hashing window proofs verify against — so a migration
// cut-over check is a cryptographic identity, not a checksum. The
// result is only a consistent whole-shard cut while writes are paused
// (the migration barrier, the replica resync lock); individual list
// entries are always internally consistent.
func (s *Server) Digest(ctx context.Context) ([]ListDigest, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lists, err := s.backend.Lists()
	if err != nil {
		return nil, fmt.Errorf("server: listing: %w", err)
	}
	out := make([]ListDigest, 0, len(lists))
	for _, id := range lists {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cm, err := s.backend.Commitment(id)
		if err != nil {
			return nil, fmt.Errorf("server: digesting list: %w", err)
		}
		out = append(out, ListDigest{
			List:     id,
			Version:  cm.Version,
			Elements: cm.Elements,
			Sum:      cm.Content.String(),
		})
	}
	return out, nil
}

// adminAuthed enforces the MAC gate (and the enable toggle) for one
// admin request.
func (s *Server) adminAuthed(w http.ResponseWriter, r *http.Request) bool {
	if s.adminOff.Load() {
		http.NotFound(w, r)
		return false
	}
	got := r.Header.Get("X-Zerber-Admin")
	want := AdminMAC(s.secret)
	if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
		writeErrV2(w, fmt.Errorf("%w: missing or wrong admin MAC", ErrAuth))
		return false
	}
	return true
}

// registerAdmin mounts the admin-plane endpoints (Handler calls it).
func (s *Server) registerAdmin(handle func(method, path string, h http.HandlerFunc)) {
	handle("GET", "/v3/admin/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if !s.adminAuthed(w, r) {
			return
		}
		exp, err := s.ExportSnapshot(r.Context())
		if err != nil {
			writeErrV2(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Zerber-Seq", strconv.FormatUint(exp.Seq, 10))
		tailable := "0"
		if exp.Tailable {
			tailable = "1"
		}
		w.Header().Set("X-Zerber-Tailable", tailable)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(exp.Data)
	})
	handle("PUT", "/v3/admin/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if !s.adminAuthed(w, r) {
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxImportBytes))
		if err != nil {
			writeErrV2(w, fmt.Errorf("%w: reading snapshot body: %v", ErrBadRequest, err))
			return
		}
		if err := s.ImportSnapshot(r.Context(), data); err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	handle("GET", "/v3/admin/tail", func(w http.ResponseWriter, r *http.Request) {
		if !s.adminAuthed(w, r) {
			return
		}
		after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
		if err != nil {
			writeErrV2(w, fmt.Errorf("%w: bad after parameter: %v", ErrBadRequest, err))
			return
		}
		ops, err := s.TailSince(r.Context(), after)
		if err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, TailResponse{Ops: ops})
	})
	handle("POST", "/v3/admin/ops", func(w http.ResponseWriter, r *http.Request) {
		if !s.adminAuthed(w, r) {
			return
		}
		var req ApplyOpsRequest
		if !decodeV2(w, r, &req) {
			return
		}
		if err := s.ApplyOps(r.Context(), req.Ops); err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	handle("GET", "/v3/admin/digest", func(w http.ResponseWriter, r *http.Request) {
		if !s.adminAuthed(w, r) {
			return
		}
		lists, err := s.Digest(r.Context())
		if err != nil {
			writeErrV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, DigestResponse{Lists: lists})
	})
}
