package server

// Ops-plane wiring for the index server: metric families, the
// /metrics endpoint and the extended stats section. See DESIGN.md
// "Ops plane" for the metric inventory and the no-extra-leakage
// argument (everything aggregates over lists and terms; the label
// vocabulary is endpoints, status classes and result kinds only).

import (
	"log/slog"
	"sync/atomic"
	"time"

	"zerberr/internal/obs"
	"zerberr/internal/store"
)

// Metric names the server registers on the obs registry. Exported so
// the scrape smoke tests and the stats endpoint share one vocabulary.
const (
	MetricQueryRoundSeconds  = "zerber_query_round_seconds"
	MetricQueriesTotal       = "zerber_queries_total"
	MetricProvedQueries      = "zerber_proved_queries_total"
	MetricMutationsTotal     = "zerber_mutations_total"
	MetricHTTPRequestSeconds = "zerber_http_request_seconds"
	MetricHTTPRequestsTotal  = "zerber_http_requests_total"
	MetricHTTPInFlight       = "zerber_http_inflight_requests"
	MetricRateLimitedTotal   = "zerber_requests_rate_limited_total"
	MetricShedTotal          = "zerber_requests_shed_total"
	MetricCacheHitsTotal     = "zerber_cache_hits_total"
	MetricCacheMissesTotal   = "zerber_cache_misses_total"
	MetricCacheEvictsTotal   = "zerber_cache_evictions_total"
	MetricCacheBytes         = "zerber_cache_bytes"
	MetricUptimeSeconds      = "zerber_uptime_seconds"
	// Admin-plane families (snapshot transfer beneath migration and
	// replica resync). Registered at SetObs time so a scrape sees them
	// from boot — the CI migration smoke greps a fresh server.
	MetricAdminSnapshotExports = "zerber_admin_snapshot_exports_total"
	MetricAdminSnapshotImports = "zerber_admin_snapshot_imports_total"
	MetricAdminTailOps         = "zerber_admin_tail_ops_total"
	MetricAdminOpsApplied      = "zerber_admin_ops_applied_total"
)

// serverMetrics holds the handles the request path observes into.
// All obs methods are nil-safe, so a nil *serverMetrics pointer (no
// registry installed) only costs the atomic load.
type serverMetrics struct {
	reg         *obs.Registry
	start       time.Time
	queryRound  *obs.Histogram // one protocol round (Query or QueryBatch)
	queries     *obs.Counter   // sub-queries served
	proved      *obs.Counter   // sub-queries served with a window proof
	inserts     *obs.Counter
	removes     *obs.Counter
	rateLimited *obs.Counter
	shed        *obs.Counter
	inFlight    *obs.Gauge
	snapExports *obs.Counter // admin snapshot exports served
	snapImports *obs.Counter // admin snapshot imports accepted
	tailOps     *obs.Counter // WAL-tail operations served
	opsApplied  *obs.Counter // admin-applied tail operations
}

// SetObs installs a metrics registry: the server registers its query
// and admission families plus scrape-time samplers over the result
// cache, and Handler will serve the whole registry at GET /metrics.
// Call before Handler so the HTTP middleware can pre-create its
// per-endpoint families. Nil removes instrumentation.
func (s *Server) SetObs(reg *obs.Registry) {
	if reg == nil {
		s.met.Store(nil)
		return
	}
	m := &serverMetrics{
		reg:         reg,
		start:       time.Now(),
		queryRound:  reg.Histogram(MetricQueryRoundSeconds, "server-side latency of one protocol round (a Query or QueryBatch call)", nil),
		queries:     reg.Counter(MetricQueriesTotal, "ranked-range sub-queries served"),
		proved:      reg.Counter(MetricProvedQueries, "sub-queries served with a Merkle window proof"),
		inserts:     reg.Counter(MetricMutationsTotal, "accepted mutations by op", obs.Label{Name: "op", Value: "insert"}),
		removes:     reg.Counter(MetricMutationsTotal, "accepted mutations by op", obs.Label{Name: "op", Value: "remove"}),
		rateLimited: reg.Counter(MetricRateLimitedTotal, "requests refused by the per-user rate limit"),
		shed:        reg.Counter(MetricShedTotal, "requests shed by the in-flight bound"),
		inFlight:    reg.Gauge(MetricHTTPInFlight, "HTTP requests currently being served"),
		snapExports: reg.Counter(MetricAdminSnapshotExports, "admin snapshot exports served"),
		snapImports: reg.Counter(MetricAdminSnapshotImports, "admin snapshot imports accepted"),
		tailOps:     reg.Counter(MetricAdminTailOps, "WAL-tail operations served to admin peers"),
		opsApplied:  reg.Counter(MetricAdminOpsApplied, "tail operations applied through the admin plane"),
	}
	reg.GaugeFunc(MetricUptimeSeconds, "seconds since the metrics registry was installed", func() float64 {
		return time.Since(m.start).Seconds()
	})
	// The cache maintains its own counters; sample them at scrape
	// time. The funcs read through the atomic cache pointer, so an
	// installed-later or swapped cache is picked up transparently.
	cacheCounter := func(pick func(CacheStatsV2) float64) func() float64 {
		return func() float64 {
			cs, ok := s.CacheStats()
			if !ok {
				return 0
			}
			return pick(CacheStatsV2{
				Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
				Entries: cs.Entries, Bytes: cs.Bytes, Capacity: cs.Capacity,
			})
		}
	}
	reg.CounterFunc(MetricCacheHitsTotal, "query-result cache hits", cacheCounter(func(c CacheStatsV2) float64 { return float64(c.Hits) }))
	reg.CounterFunc(MetricCacheMissesTotal, "query-result cache misses", cacheCounter(func(c CacheStatsV2) float64 { return float64(c.Misses) }))
	reg.CounterFunc(MetricCacheEvictsTotal, "query-result cache evictions", cacheCounter(func(c CacheStatsV2) float64 { return float64(c.Evictions) }))
	reg.GaugeFunc(MetricCacheBytes, "query-result cache resident bytes", cacheCounter(func(c CacheStatsV2) float64 { return float64(c.Bytes) }))
	s.met.Store(m)
}

// Obs returns the installed metrics registry, or nil.
func (s *Server) Obs() *obs.Registry {
	if m := s.met.Load(); m != nil {
		return m.reg
	}
	return nil
}

// SetLogger installs the structured logger request-scoped loggers
// derive from (nil restores slog.Default).
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		s.logger.Store(nil)
		return
	}
	s.logger.Store(l)
}

// baseLogger is the logger the HTTP middleware derives per-request
// loggers from.
func (s *Server) baseLogger() *slog.Logger {
	if l := s.logger.Load(); l != nil {
		return l
	}
	return slog.Default()
}

// endRound records one protocol round: its server-side latency since
// `start` (the clock reading token validation took at the top of the
// round) plus the number of sub-queries it carried. Nil-safe and
// allocation-free, so `defer s.met.Load().endRound(...)` costs an
// atomic load and one deferred call on un-instrumented servers — the
// shape that keeps BenchmarkInstrumentedQuery inside its budget.
func (m *serverMetrics) endRound(subQueries int, start time.Time) {
	if m == nil {
		return
	}
	m.queries.Add(uint64(subQueries))
	m.queryRound.Observe(time.Since(start).Seconds())
}

// OpsStats is the operational section of /v2/stats: the signals
// `zerber status` renders without scraping /metrics. Latencies are
// estimated from the fixed-bucket histograms (same math PromQL's
// histogram_quantile uses); zero values mean "no observations yet"
// or "not instrumented".
type OpsStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int64   `json:"in_flight"`
	QueryRounds   uint64  `json:"query_rounds"`
	QueryP50      float64 `json:"query_p50_seconds"`
	QueryP95      float64 `json:"query_p95_seconds"`
	QueryP99      float64 `json:"query_p99_seconds"`
	WALFsyncP99   float64 `json:"wal_fsync_p99_seconds,omitempty"`
	WALAppendP99  float64 `json:"wal_append_p99_seconds,omitempty"`
	RateLimited   uint64  `json:"rate_limited"`
	Shed          uint64  `json:"shed"`
}

// opsStats assembles the OpsStats section, or nil when no registry is
// installed.
func (s *Server) opsStats() *OpsStats {
	m := s.met.Load()
	if m == nil {
		return nil
	}
	o := &OpsStats{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight.Value(),
		QueryRounds:   m.queryRound.Count(),
		QueryP50:      m.queryRound.Quantile(0.50),
		QueryP95:      m.queryRound.Quantile(0.95),
		QueryP99:      m.queryRound.Quantile(0.99),
		RateLimited:   m.rateLimited.Value(),
		Shed:          m.shed.Value(),
	}
	// The durable store registers its WAL families on the same
	// registry; absent (RAM-only backend) they read as zero.
	o.WALFsyncP99 = m.reg.FindHistogram(store.MetricWALFsyncSeconds).Quantile(0.99)
	o.WALAppendP99 = m.reg.FindHistogram(store.MetricWALAppendSeconds).Quantile(0.99)
	return o
}

// metrics-aware atomic holders live on Server (server.go); the
// aliases below keep the field types out of the main struct clutter.
type (
	metPtr    = atomic.Pointer[serverMetrics]
	admPtr    = atomic.Pointer[admission]
	loggerPtr = atomic.Pointer[slog.Logger]
)
