package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"zerberr/internal/crypt"
	"zerberr/internal/zerber"
)

// newCancelServer builds a server holding a few lists and returns it
// with a logged-in user's tokens.
func newCancelServer(t *testing.T) (*Server, []crypt.Token) {
	t.Helper()
	s := New([]byte("ctx-secret"), time.Hour)
	s.RegisterUser("u", 0)
	toks, err := s.Login(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	for list := 0; list < 8; list++ {
		el := StoredElement{Sealed: []byte{byte(list)}, TRS: 0.5, Group: 0}
		if err := s.Insert(context.Background(), toks[0], zerber.ListID(list), el); err != nil {
			t.Fatal(err)
		}
	}
	return s, toks
}

// TestServerMethodsPreCanceledContext verifies every request-serving
// method rejects an already-canceled context with context.Canceled
// rather than doing work.
func TestServerMethodsPreCanceledContext(t *testing.T) {
	s, toks := newCancelServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := s.Login(ctx, "u"); !errors.Is(err, context.Canceled) {
		t.Errorf("Login err = %v", err)
	}
	el := StoredElement{Sealed: []byte{200}, TRS: 0.1, Group: 0}
	if err := s.Insert(ctx, toks[0], 0, el); !errors.Is(err, context.Canceled) {
		t.Errorf("Insert err = %v", err)
	}
	if _, err := s.Query(ctx, toks, 0, 0, 10); !errors.Is(err, context.Canceled) {
		t.Errorf("Query err = %v", err)
	}
	if err := s.Remove(ctx, toks[0], 0, []byte{0}); !errors.Is(err, context.Canceled) {
		t.Errorf("Remove err = %v", err)
	}
	if _, err := s.QueryBatch(ctx, toks, []ListQuery{{List: 0, Offset: 0, Count: 10}}); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryBatch err = %v", err)
	}
	if err := s.InsertBatch(ctx, toks[0], []InsertOp{{List: 0, Element: el}}); !errors.Is(err, context.Canceled) {
		t.Errorf("InsertBatch err = %v", err)
	}
	if err := s.RemoveBatch(ctx, toks[0], []RemoveOp{{List: 0, Sealed: []byte{0}}}); !errors.Is(err, context.Canceled) {
		t.Errorf("RemoveBatch err = %v", err)
	}
	if _, err := s.StatsV2(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("StatsV2 err = %v", err)
	}
	// Sanity: the index was untouched by the canceled writes.
	if n := s.NumElements(); n != 8 {
		t.Fatalf("canceled operations changed the index: %d elements, want 8", n)
	}
}

// TestQueryBatchSubErrorStillPrecise confirms the sibling-abort path
// keeps reporting a real sub-query failure with a batch index rather
// than masking it as a cancellation.
func TestQueryBatchSubErrorStillPrecise(t *testing.T) {
	s, toks := newCancelServer(t)
	queries := []ListQuery{
		{List: 0, Offset: 0, Count: 10},
		{List: 999, Offset: 0, Count: 10}, // unknown list
		{List: 1, Offset: 0, Count: 10},
	}
	_, err := s.QueryBatch(context.Background(), toks, queries)
	if !errors.Is(err, ErrUnknownList) {
		t.Fatalf("QueryBatch err = %v, want ErrUnknownList", err)
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("failure not attributed to op 1: %v", err)
	}
}
