package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"zerberr/internal/crypt"
)

// decodeV2Err reads a v2 error envelope off a response.
func decodeV2Err(t *testing.T, resp *http.Response) ErrorV2 {
	t.Helper()
	var env ErrorV2
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding v2 error envelope: %v", err)
	}
	resp.Body.Close()
	return env
}

func TestHTTPV2BatchedRoundTrip(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("john", 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := post(t, ts, "/v1/login", LoginRequest{User: "john"})
	var lr LoginResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tok := lr.Tokens[0]

	// Batched insert: four elements across two lists, one round-trip.
	ins := InsertBatchRequest{Token: tok, Ops: []InsertOp{
		{List: 1, Element: StoredElement{Sealed: []byte{1}, TRS: 0.9, Group: 0}},
		{List: 1, Element: StoredElement{Sealed: []byte{2}, TRS: 0.4, Group: 0}},
		{List: 2, Element: StoredElement{Sealed: []byte{3}, TRS: 0.7, Group: 0}},
		{List: 2, Element: StoredElement{Sealed: []byte{4}, TRS: 0.2, Group: 0}},
	}}
	r := post(t, ts, "/v2/insert", ins)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("batched insert status %d", r.StatusCode)
	}
	r.Body.Close()

	// Batched query: both lists in one exchange, responses in request
	// order, each ranked.
	qr := QueryBatchRequest{Tokens: lr.Tokens, Queries: []ListQuery{
		{List: 2, Offset: 0, Count: 10},
		{List: 1, Offset: 0, Count: 1},
	}}
	r = post(t, ts, "/v2/query", qr)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("batched query status %d", r.StatusCode)
	}
	var qbr QueryBatchResponse
	if err := json.NewDecoder(r.Body).Decode(&qbr); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(qbr.Responses) != 2 {
		t.Fatalf("got %d responses, want 2", len(qbr.Responses))
	}
	if got := qbr.Responses[0]; len(got.Elements) != 2 || !got.Exhausted || got.Elements[0].TRS != 0.7 {
		t.Fatalf("list 2 response %+v", got)
	}
	if got := qbr.Responses[1]; len(got.Elements) != 1 || got.Exhausted || got.Elements[0].TRS != 0.9 {
		t.Fatalf("list 1 response %+v", got)
	}

	// v2 stats: per-list counts and the backend name.
	sr, err := http.Get(ts.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsV2Response
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if st.Backend != "memory" || st.Lists != 2 || st.Elements != 4 {
		t.Fatalf("stats %+v", st)
	}
	if len(st.PerList) != 2 || st.PerList[0].List != 1 || st.PerList[0].Elements != 2 ||
		st.PerList[1].List != 2 || st.PerList[1].Elements != 2 {
		t.Fatalf("per-list stats %+v", st.PerList)
	}

	// Batched remove drains list 1.
	r = post(t, ts, "/v2/remove", RemoveBatchRequest{Token: tok, Ops: []RemoveOp{
		{List: 1, Sealed: []byte{1}},
		{List: 1, Sealed: []byte{2}},
	}})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("batched remove status %d", r.StatusCode)
	}
	r.Body.Close()
	if s.ListLen(1) != 0 || s.ListLen(2) != 2 {
		t.Fatalf("after remove: list1=%d list2=%d", s.ListLen(1), s.ListLen(2))
	}
}

func TestHTTPV2StructuredErrors(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("john", 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := post(t, ts, "/v1/login", LoginRequest{User: "john"})
	var lr LoginResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tok := lr.Tokens[0]
	if err := s.Insert(context.Background(), tok, 5, StoredElement{Sealed: []byte{9}, TRS: 0.5, Group: 0}); err != nil {
		t.Fatal(err)
	}

	// Expired token: authentic MAC, lifetime over -> token_expired.
	s.SetClock(func() time.Time { return time.Now().Add(2 * time.Hour) })
	r := post(t, ts, "/v2/query", QueryBatchRequest{Tokens: lr.Tokens, Queries: []ListQuery{{List: 5, Count: 10}}})
	if r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("expired token status %d", r.StatusCode)
	}
	if env := decodeV2Err(t, r); env.Code != CodeTokenExpired {
		t.Fatalf("expired token code %q", env.Code)
	}
	s.SetClock(time.Now)

	// Forged token: bad_token.
	forged := tok
	forged.Group = 7
	r = post(t, ts, "/v2/query", QueryBatchRequest{Tokens: []crypt.Token{forged}, Queries: []ListQuery{{List: 5, Count: 10}}})
	if env := decodeV2Err(t, r); env.Code != CodeBadToken {
		t.Fatalf("forged token code %q", env.Code)
	}

	// Unknown list / bad request inside a batch carry the op index.
	r = post(t, ts, "/v2/query", QueryBatchRequest{Tokens: lr.Tokens, Queries: []ListQuery{
		{List: 5, Count: 10},
		{List: 99, Count: 10},
	}})
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown list status %d", r.StatusCode)
	}
	if env := decodeV2Err(t, r); env.Code != CodeUnknownList || env.Index == nil || *env.Index != 1 {
		t.Fatalf("unknown list envelope %+v", env)
	}
}

func TestHTTPV2PartialFailureAtomic(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("john", 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := post(t, ts, "/v1/login", LoginRequest{User: "john"})
	var lr LoginResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Op 2 targets a group the token does not cover: the whole batch
	// must be rejected with its index and nothing applied.
	r := post(t, ts, "/v2/insert", InsertBatchRequest{Token: lr.Tokens[0], Ops: []InsertOp{
		{List: 1, Element: StoredElement{Sealed: []byte{1}, TRS: 0.9, Group: 0}},
		{List: 1, Element: StoredElement{Sealed: []byte{2}, TRS: 0.8, Group: 0}},
		{List: 2, Element: StoredElement{Sealed: []byte{3}, TRS: 0.7, Group: 5}},
	}})
	if r.StatusCode != http.StatusForbidden {
		t.Fatalf("partial failure status %d", r.StatusCode)
	}
	env := decodeV2Err(t, r)
	if env.Code != CodeForbidden || env.Index == nil || *env.Index != 2 {
		t.Fatalf("partial failure envelope %+v", env)
	}
	if s.NumElements() != 0 {
		t.Fatalf("%d elements applied from a rejected batch", s.NumElements())
	}
}

func TestBatchErrorUnwraps(t *testing.T) {
	err := &BatchError{Index: 3, Err: ErrForbidden}
	if !errors.Is(err, ErrForbidden) {
		t.Fatal("BatchError does not unwrap to its sentinel")
	}
	if ErrorCode(err) != CodeForbidden {
		t.Fatalf("ErrorCode(BatchError) = %q", ErrorCode(err))
	}
	if !errors.Is(ErrTokenExpired, ErrAuth) {
		t.Fatal("ErrTokenExpired must unwrap to ErrAuth")
	}
}

func TestRemoveBatchDuplicatePayloadAtomic(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("john", 0)
	toks, err := s.Login(context.Background(), "john")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(context.Background(), toks[0], 3, StoredElement{Sealed: []byte{7}, TRS: 0.5, Group: 0}); err != nil {
		t.Fatal(err)
	}
	// Two ops name the single stored instance: the pre-flight must
	// reject the batch (index 1) without removing anything.
	err = s.RemoveBatch(context.Background(), toks[0], []RemoveOp{
		{List: 3, Sealed: []byte{7}},
		{List: 3, Sealed: []byte{7}},
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("duplicate-payload batch err = %v, want ErrNotFound", err)
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("duplicate-payload batch err = %v, want index 1", err)
	}
	if s.ListLen(3) != 1 {
		t.Fatalf("rejected batch removed elements: list holds %d", s.ListLen(3))
	}
}

func TestBatchSizeCap(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("john", 0)
	toks, err := s.Login(context.Background(), "john")
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]ListQuery, MaxBatchOps+1)
	for i := range queries {
		queries[i] = ListQuery{List: 1, Count: 1}
	}
	if _, err := s.QueryBatch(context.Background(), toks, queries); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized query batch err = %v, want ErrBadRequest", err)
	}
	ops := make([]InsertOp, MaxBatchOps+1)
	for i := range ops {
		ops[i] = InsertOp{List: 1, Element: StoredElement{Sealed: []byte{1}, Group: 0}}
	}
	if err := s.InsertBatch(context.Background(), toks[0], ops); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized insert batch err = %v, want ErrBadRequest", err)
	}
	if s.NumElements() != 0 {
		t.Fatal("oversized batch partially applied")
	}
}
