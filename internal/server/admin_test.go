package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"zerberr/internal/cache"
	"zerberr/internal/obs"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

func seedServer(t *testing.T, s *Server, lists, perList int) {
	t.Helper()
	s.RegisterUser("owner", 0, 1, 2)
	toks, err := s.Login(context.Background(), "owner")
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lists; l++ {
		for i := 0; i < perList; i++ {
			el := StoredElement{Sealed: []byte{byte(l), byte(i)}, TRS: float64(i), Group: i % 3}
			if err := s.Insert(context.Background(), toks[i%3], zerber.ListID(l), el); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestAdminSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	src := New([]byte("secret"), time.Hour)
	seedServer(t, src, 3, 9)
	exp, err := src.ExportSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Tailable {
		t.Fatal("a memory-backed server claims a tail")
	}
	dst := New([]byte("secret"), time.Hour)
	if err := dst.ImportSnapshot(ctx, exp.Data); err != nil {
		t.Fatal(err)
	}
	srcD, err := src.Digest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dstD, err := dst.Digest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srcD, dstD) {
		t.Fatalf("digests diverge:\n%+v\n%+v", srcD, dstD)
	}
}

func TestAdminApplyOps(t *testing.T) {
	ctx := context.Background()
	s := New([]byte("secret"), time.Hour)
	ops := []TailOp{
		{Op: store.TailOpInsert, List: 4, Group: 1, TRS: 0.5, Sealed: []byte("a")},
		{Op: store.TailOpInsert, List: 4, Group: 2, TRS: 0.25, Sealed: []byte("b")},
		{Op: store.TailOpRemove, List: 4, Sealed: []byte("b")},
		// Removing what a snapshot already folded away is a no-op.
		{Op: store.TailOpRemove, List: 4, Sealed: []byte("never-inserted")},
	}
	if err := s.ApplyOps(ctx, ops); err != nil {
		t.Fatal(err)
	}
	if n := s.ListLen(4); n != 1 {
		t.Fatalf("list holds %d elements, want 1", n)
	}
	err := s.ApplyOps(ctx, []TailOp{{Op: "frobnicate", List: 1, Sealed: []byte("x")}})
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 0 || !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown op: err=%v, want indexed ErrBadRequest", err)
	}
}

// TestAdminApplyOpsBatchesInsertRuns pins the resync/migration write
// cost: a replayed tail's consecutive inserts reach a durable backend
// as one batched operation per run, so the whole tail costs one WAL
// record per insert run (plus one per remove), not one per element.
func TestAdminApplyOpsBatchesInsertRuns(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	backend, err := store.OpenDurable(t.TempDir(), store.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithBackend([]byte("secret"), time.Hour, backend)
	defer s.Close()
	var ops []TailOp
	for i := 0; i < 50; i++ {
		ops = append(ops, TailOp{Op: store.TailOpInsert, List: 1, Group: i % 3, TRS: float64(i), Sealed: []byte(fmt.Sprintf("a%02d", i))})
	}
	ops = append(ops, TailOp{Op: store.TailOpRemove, List: 1, Sealed: []byte("a00")})
	for i := 0; i < 30; i++ {
		ops = append(ops, TailOp{Op: store.TailOpInsert, List: 2, Group: 0, TRS: float64(i), Sealed: []byte(fmt.Sprintf("b%02d", i))})
	}
	if err := s.ApplyOps(ctx, ops); err != nil {
		t.Fatal(err)
	}
	if n := s.ListLen(1); n != 49 {
		t.Fatalf("list 1 holds %d elements, want 49", n)
	}
	if n := s.ListLen(2); n != 30 {
		t.Fatalf("list 2 holds %d elements, want 30", n)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	// Two insert runs + one remove = three WAL records for 81 ops.
	if !strings.Contains(buf.String(), store.MetricWALRecordsTotal+" 3") {
		t.Fatalf("applying %d ops did not log as 3 WAL records; metrics:\n%s", len(ops), buf.String())
	}
}

func TestAdminHTTPMACGate(t *testing.T) {
	s := New([]byte("secret"), time.Hour)
	seedServer(t, s, 1, 3)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(mac string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v3/admin/digest", nil)
		if mac != "" {
			req.Header.Set("X-Zerber-Admin", mac)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := get(""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no MAC: status %d, want 401", resp.StatusCode)
	}
	if resp := get(AdminMAC([]byte("wrong-secret"))); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong MAC: status %d, want 401", resp.StatusCode)
	}
	if resp := get(AdminMAC([]byte("secret"))); resp.StatusCode != http.StatusOK {
		t.Fatalf("right MAC: status %d, want 200", resp.StatusCode)
	}
	s.SetAdminEnabled(false)
	if resp := get(AdminMAC([]byte("secret"))); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled admin plane: status %d, want 404", resp.StatusCode)
	}
	s.SetAdminEnabled(true)
	if resp := get(AdminMAC([]byte("secret"))); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-enabled admin plane: status %d, want 200", resp.StatusCode)
	}
}

func TestAdminHTTPSnapshotTransfer(t *testing.T) {
	dir := t.TempDir()
	backend, err := store.OpenDurable(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := NewWithBackend([]byte("secret"), time.Hour, backend)
	defer src.Close()
	seedServer(t, src, 2, 6)
	srv := httptest.NewServer(src.Handler())
	defer srv.Close()
	mac := AdminMAC([]byte("secret"))

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v3/admin/snapshot", nil)
	req.Header.Set("X-Zerber-Admin", mac)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Zerber-Tailable") != "1" {
		t.Fatalf("durable export not tailable: %q", resp.Header.Get("X-Zerber-Tailable"))
	}
	if resp.Header.Get("X-Zerber-Seq") != "12" {
		t.Fatalf("seq header %q, want 12 (the seeded operations)", resp.Header.Get("X-Zerber-Seq"))
	}

	dst := New([]byte("secret"), time.Hour)
	dsrv := httptest.NewServer(dst.Handler())
	defer dsrv.Close()
	req, _ = http.NewRequest(http.MethodPut, dsrv.URL+"/v3/admin/snapshot", bytes.NewReader(data))
	req.Header.Set("X-Zerber-Admin", mac)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import: status %d: %s", resp.StatusCode, body)
	}
	srcD, err := src.Digest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dstD, err := dst.Digest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srcD, dstD) {
		t.Fatalf("digests diverge after HTTP transfer:\n%+v\n%+v", srcD, dstD)
	}
}

func TestAdminImportPurgesResultCache(t *testing.T) {
	ctx := context.Background()
	s := New([]byte("secret"), time.Hour)
	s.SetCache(cache.New(1 << 20))
	seedServer(t, s, 1, 5)
	toks := mustLogin(t, s, "owner")
	if _, err := s.Query(ctx, toks, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if st, ok := s.CacheStats(); !ok || st.Entries == 0 {
		t.Fatal("warm-up query did not populate the cache")
	}
	other := New([]byte("secret"), time.Hour)
	seedServer(t, other, 1, 2)
	exp, err := other.ExportSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ImportSnapshot(ctx, exp.Data); err != nil {
		t.Fatal(err)
	}
	if st, ok := s.CacheStats(); !ok || st.Entries != 0 {
		t.Fatalf("import left %d cache entries behind", st.Entries)
	}
	resp, err := s.Query(ctx, toks, 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Elements) != 2 {
		t.Fatalf("post-import query sees %d elements, want the imported 2", len(resp.Elements))
	}
}
