package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func TestRetryHintRoundTrip(t *testing.T) {
	err := withRetryHint(ErrRateLimited, 1500*time.Millisecond)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatal("hint wrapper must unwrap to the sentinel")
	}
	d, ok := RetryAfterHint(err)
	if !ok || d != 1500*time.Millisecond {
		t.Fatalf("hint = %v, %v", d, ok)
	}
	if _, ok := RetryAfterHint(ErrRateLimited); ok {
		t.Fatal("bare sentinel carries no hint")
	}
}

func TestRateLimiterFakeClock(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("alice", 0)
	now := time.Unix(1_000_000, 0)
	s.SetClock(func() time.Time { return now })
	s.SetAdmission(&AdmissionConfig{PerUserRate: 1, Burst: 2})

	ctx := context.Background()
	// Burst of 2, then the bucket is dry.
	for i := 0; i < 2; i++ {
		if _, err := s.Login(ctx, "alice"); err != nil {
			t.Fatalf("login %d within burst: %v", i, err)
		}
	}
	_, err := s.Login(ctx, "alice")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst login: %v", err)
	}
	hint, ok := RetryAfterHint(err)
	if !ok || hint <= 0 || hint > time.Second {
		t.Fatalf("hint = %v, %v; want (0, 1s]", hint, ok)
	}
	// One second refills one token at 1 op/s.
	now = now.Add(time.Second)
	if _, err := s.Login(ctx, "alice"); err != nil {
		t.Fatalf("login after refill: %v", err)
	}
	_, err = s.Login(ctx, "alice")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second login after single refill: %v", err)
	}
	// Unknown users are rejected before the limiter, so garbage names
	// never grow the bucket table.
	if _, err := s.Login(ctx, "mallory"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user: %v", err)
	}
	// SetAdmission(nil) removes the limit.
	s.SetAdmission(nil)
	for i := 0; i < 10; i++ {
		if _, err := s.Login(ctx, "alice"); err != nil {
			t.Fatalf("login with limiter removed: %v", err)
		}
	}
}

func TestRateLimiterIsPerUser(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("alice", 0)
	s.RegisterUser("bob", 0)
	now := time.Unix(1_000_000, 0)
	s.SetClock(func() time.Time { return now })
	s.SetAdmission(&AdmissionConfig{PerUserRate: 1, Burst: 1})

	ctx := context.Background()
	if _, err := s.Login(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Login(ctx, "alice"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("alice over budget: %v", err)
	}
	// Bob has his own bucket.
	if _, err := s.Login(ctx, "bob"); err != nil {
		t.Fatalf("bob must not share alice's bucket: %v", err)
	}
}

// TestRateLimitHTTP asserts the 429 wire contract on single-op and
// batch endpoints: status, v2 code, and a Retry-After header on every
// path.
func TestRateLimitHTTP(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("alice", 0)
	now := time.Unix(1_000_000, 0)
	s.SetClock(func() time.Time { return now })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Log in before the limiter is armed, so the tokens are in hand.
	resp := post(t, ts, "/v1/login", LoginRequest{User: "alice"})
	var lr LoginResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("response carries no X-Request-Id")
	}

	s.SetAdmission(&AdmissionConfig{PerUserRate: 0.25, Burst: 1})

	checkLimited := func(t *testing.T, resp *http.Response, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", resp.StatusCode)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
		}
		if wantCode != "" {
			var env ErrorV2
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			if env.Code != wantCode {
				t.Fatalf("code = %q, want %q", env.Code, wantCode)
			}
		}
	}

	// Spend the single burst token, then every path must answer 429.
	resp = post(t, ts, "/v1/query", QueryRequest{Tokens: lr.Tokens, List: 1, Offset: 0, Count: 1})
	resp.Body.Close() // 404 unknown list — the token was still spent

	resp = post(t, ts, "/v1/query", QueryRequest{Tokens: lr.Tokens, List: 1, Offset: 0, Count: 1})
	checkLimited(t, resp, "")

	resp = post(t, ts, "/v2/query", QueryBatchRequest{Tokens: lr.Tokens, Queries: []ListQuery{{List: 1, Count: 1}}})
	checkLimited(t, resp, CodeRateLimited)

	resp = post(t, ts, "/v2/insert", InsertBatchRequest{Token: lr.Tokens[0], Ops: []InsertOp{
		{List: 1, Element: StoredElement{Sealed: []byte{1}, Group: 0}},
	}})
	checkLimited(t, resp, CodeRateLimited)

	resp = post(t, ts, "/v2/remove", RemoveBatchRequest{Token: lr.Tokens[0], Ops: []RemoveOp{
		{List: 1, Sealed: []byte{1}},
	}})
	checkLimited(t, resp, CodeRateLimited)

	// At 0.25 ops/s a dry bucket needs ~4s for the next token; the
	// hint must say so rather than defaulting to 1.
	resp = post(t, ts, "/v1/query", QueryRequest{Tokens: lr.Tokens, List: 1, Offset: 0, Count: 1})
	defer resp.Body.Close()
	if ra, _ := strconv.Atoi(resp.Header.Get("Retry-After")); ra < 2 {
		t.Fatalf("Retry-After = %q, want the limiter's own wait (>= 2s)", resp.Header.Get("Retry-After"))
	}
}

// TestLoadShedHTTP occupies the single in-flight slot with a request
// whose body never finishes decoding, then asserts further requests
// are shed with 503 + Retry-After before their bodies are read, and
// that completing the stuck request reopens admission.
func TestLoadShedHTTP(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("alice", 0)
	s.SetAdmission(&AdmissionConfig{MaxInFlight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	stuck := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", pr)
		if err != nil {
			stuck <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		stuck <- err
	}()

	// The stuck request holds the slot once its handler blocks in
	// decode; poll until a probe is shed.
	var resp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		resp, err = http.Get(ts.URL + "/v2/stats")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("probe was never shed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q on shed response", resp.Header.Get("Retry-After"))
	}
	var env ErrorV2
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Code != CodeOverloaded {
		t.Fatalf("code = %q, want %q", env.Code, CodeOverloaded)
	}

	// Unstick the occupying request (empty body -> 400, fine) and the
	// server must admit again.
	pw.Close()
	if err := <-stuck; err != nil {
		t.Fatalf("stuck request: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v2/stats")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server still shedding after slot freed (status %d)", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShedDrainsBody sends an oversized body into a saturated server
// over a reused connection: if the middleware failed to drain refused
// requests, the second request on the connection would stall or the
// transport would tear the connection down.
func TestShedDrainsBody(t *testing.T) {
	s := New(secret, time.Hour)
	s.SetAdmission(&AdmissionConfig{PerUserRate: 0.001, Burst: 1})
	s.RegisterUser("alice", 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	toks, err := s.Login(context.Background(), "alice") // spends the burst token
	if err != nil {
		t.Fatal(err)
	}
	// Same client (connection pool) for both: the first 429's unread
	// body must not poison the keep-alive connection.
	for i := 0; i < 2; i++ {
		big := make([]InsertOp, 512)
		for j := range big {
			big[j] = InsertOp{List: 1, Element: StoredElement{Sealed: []byte{byte(j), 1, 2, 3}, Group: 0}}
		}
		resp := post(t, ts, "/v2/insert", InsertBatchRequest{Token: toks[0], Ops: big})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d, want 429", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
