package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func post(t *testing.T, ts *httptest.Server, path string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPEndToEnd(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("john", 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Login.
	resp := post(t, ts, "/v1/login", LoginRequest{User: "john"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login status %d", resp.StatusCode)
	}
	var lr LoginResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(lr.Tokens) != 1 {
		t.Fatalf("got %d tokens", len(lr.Tokens))
	}

	// Insert two elements.
	for i, trs := range []float64{0.3, 0.8} {
		r := post(t, ts, "/v1/insert", InsertRequest{
			Token: lr.Tokens[0],
			List:  4,
			Element: StoredElement{
				Sealed: []byte{byte(i), 1, 2, 3},
				TRS:    trs,
				Group:  0,
			},
		})
		if r.StatusCode != http.StatusOK {
			t.Fatalf("insert status %d", r.StatusCode)
		}
		r.Body.Close()
	}

	// Query them back, ranked.
	r := post(t, ts, "/v1/query", QueryRequest{Tokens: lr.Tokens, List: 4, Offset: 0, Count: 10})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", r.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(qr.Elements) != 2 || !qr.Exhausted {
		t.Fatalf("query response %+v", qr)
	}
	if qr.Elements[0].TRS != 0.8 || qr.Elements[1].TRS != 0.3 {
		t.Fatal("HTTP query not ranked")
	}

	// Stats.
	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if st.Lists != 1 || st.Elements != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := New(secret, time.Hour)
	s.RegisterUser("john", 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		path   string
		body   interface{}
		status int
	}{
		{"/v1/login", LoginRequest{User: "ghost"}, http.StatusNotFound},
		{"/v1/query", QueryRequest{List: 9, Count: 5}, http.StatusNotFound},
		{"/v1/query", QueryRequest{List: 9, Count: -1}, http.StatusBadRequest},
		{"/v1/insert", InsertRequest{List: 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		r := post(t, ts, tc.path, tc.body)
		if r.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.path, r.StatusCode, tc.status)
		}
		var eb errorBody
		if err := json.NewDecoder(r.Body).Decode(&eb); err == nil && r.StatusCode != http.StatusOK && eb.Error == "" {
			t.Errorf("%s: empty error body", tc.path)
		}
		r.Body.Close()
	}

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Forged token over HTTP.
	lr := post(t, ts, "/v1/login", LoginRequest{User: "john"})
	var login LoginResponse
	if err := json.NewDecoder(lr.Body).Decode(&login); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	forged := login.Tokens[0]
	forged.Group = 5
	r := post(t, ts, "/v1/insert", InsertRequest{
		Token:   forged,
		List:    1,
		Element: StoredElement{Sealed: []byte{1}, TRS: 0.1, Group: 5},
	})
	if r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("forged token status %d, want 401", r.StatusCode)
	}
	r.Body.Close()
}
