package server

// Differential tests for audit-on-demand: proved sub-queries carry a
// verifying window, while proof-off traffic stays byte-for-byte what a
// pre-proof server produced — even after the cache memoized a proof
// for the very same window.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zerberr/internal/cache"
	"zerberr/internal/crypt"
	"zerberr/internal/proof"
)

// proofTestServer builds a cached server with one three-group list
// and a user in groups 0 and 1 (group 2 stays foreign).
func proofTestServer(t *testing.T) (*Server, *httptest.Server, []crypt.Token) {
	t.Helper()
	s := New(secret, time.Hour)
	s.SetCache(cache.New(4 << 20))
	s.RegisterUser("auditor", 0, 1)
	s.RegisterUser("writer", 0, 1, 2)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp := post(t, ts, "/v1/login", LoginRequest{User: "writer"})
	var wr LoginResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// One token per group membership; inserts need the matching one.
	byGroup := map[int]crypt.Token{}
	for _, tok := range wr.Tokens {
		byGroup[tok.Group] = tok
	}
	els := map[int][]StoredElement{
		0: {{Sealed: []byte("a1"), TRS: 0.9, Group: 0}, {Sealed: []byte("a2"), TRS: 0.5, Group: 0}},
		1: {{Sealed: []byte("b1"), TRS: 0.8, Group: 1}, {Sealed: []byte("b2"), TRS: 0.3, Group: 1}},
		2: {{Sealed: []byte("c1"), TRS: 0.7, Group: 2}},
	}
	for g, batch := range els {
		ins := InsertBatchRequest{Token: byGroup[g]}
		for _, el := range batch {
			ins.Ops = append(ins.Ops, InsertOp{List: 1, Element: el})
		}
		r := post(t, ts, "/v2/insert", ins)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("group %d insert status %d", g, r.StatusCode)
		}
		r.Body.Close()
	}

	resp = post(t, ts, "/v1/login", LoginRequest{User: "auditor"})
	var lr LoginResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return s, ts, lr.Tokens
}

// rawQuery posts one batched query and returns the raw response body.
func rawQuery(t *testing.T, ts *httptest.Server, tokens []crypt.Token, q ListQuery) []byte {
	t.Helper()
	r := post(t, ts, "/v2/query", QueryBatchRequest{Tokens: tokens, Queries: []ListQuery{q}})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", r.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	return buf.Bytes()
}

func TestHTTPProofRoundTrip(t *testing.T) {
	_, ts, tokens := proofTestServer(t)
	raw := rawQuery(t, ts, tokens, ListQuery{List: 1, Offset: 1, Count: 2, Proof: true})
	var qbr QueryBatchResponse
	if err := json.Unmarshal(raw, &qbr); err != nil {
		t.Fatal(err)
	}
	if len(qbr.Responses) != 1 {
		t.Fatalf("%d responses", len(qbr.Responses))
	}
	resp := qbr.Responses[0]
	if resp.Proof == nil {
		t.Fatal("proved query returned no proof")
	}
	// Visible ranked order for groups {0,1}: a1 .9, b1 .8, a2 .5, b2 .3.
	if len(resp.Elements) != 2 || string(resp.Elements[0].Sealed) != "b1" || string(resp.Elements[1].Sealed) != "a2" {
		t.Fatalf("window %+v", resp.Elements)
	}
	allowed := map[int]bool{0: true, 1: true}
	elems := make([]proof.WindowElement, len(resp.Elements))
	for i, el := range resp.Elements {
		elems[i] = proof.WindowElement{TRS: el.TRS, Sealed: el.Sealed, Group: el.Group}
	}
	if err := proof.VerifyWindow(resp.Proof, allowed, 1, 2, elems, resp.Exhausted, resp.Version); err != nil {
		t.Fatalf("window served over HTTP does not verify: %v", err)
	}
	// The foreign group travels opaque: group 2's header must carry no
	// count, root or boundaries.
	var sawForeign bool
	for _, gw := range resp.Proof.Groups {
		if gw.Group != 2 {
			continue
		}
		sawForeign = true
		if gw.Opaque == nil || gw.Root != nil || gw.Count != 0 || gw.Pred != nil || gw.Succ != nil || len(gw.Path) != 0 {
			t.Fatalf("foreign group leaked window fields: %+v", gw)
		}
	}
	if !sawForeign {
		t.Fatal("foreign group missing from the commitment")
	}
}

// TestProofOffByteIdentical is the compatibility differential: the
// bytes of an unproven response must not change when proofs enter the
// picture — neither from the backend path nor from a cache entry that
// meanwhile memoized a proof for the same (list, version, window).
func TestProofOffByteIdentical(t *testing.T) {
	_, ts, tokens := proofTestServer(t)
	q := ListQuery{List: 1, Offset: 0, Count: 3}

	before := rawQuery(t, ts, tokens, q)
	if strings.Contains(string(before), `"proof"`) {
		t.Fatalf("unproven response mentions proof: %s", before)
	}

	// Exercise the proved path for the identical window; the cache now
	// holds a proved entry under the same version key.
	proved := rawQuery(t, ts, tokens, ListQuery{List: 1, Offset: 0, Count: 3, Proof: true})
	if !strings.Contains(string(proved), `"proof"`) {
		t.Fatal("proved response carries no proof")
	}

	after := rawQuery(t, ts, tokens, q)
	if !bytes.Equal(before, after) {
		t.Fatalf("proof-off bytes changed after proof memoization:\nbefore %s\nafter  %s", before, after)
	}

	// And the proved window for the same query must still verify when
	// served out of the cache (memoized proof, not a rebuild).
	proved2 := rawQuery(t, ts, tokens, ListQuery{List: 1, Offset: 0, Count: 3, Proof: true})
	if !bytes.Equal(proved, proved2) {
		t.Fatal("memoized proved response differs from the first")
	}
}

// TestStatsRoots: /v2/stats stays root-free by default and exposes
// per-list commitment digests only with ?roots=1.
func TestStatsRoots(t *testing.T) {
	_, ts, _ := proofTestServer(t)
	plain, err := http.Get(ts.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsV2Response
	if err := json.NewDecoder(plain.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	plain.Body.Close()
	if len(st.PerList) != 1 || st.PerList[0].Root != "" {
		t.Fatalf("default stats carry roots: %+v", st.PerList)
	}

	rooted, err := http.Get(ts.URL + "/v2/stats?roots=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(rooted.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	rooted.Body.Close()
	if len(st.PerList) != 1 {
		t.Fatalf("per-list stats %+v", st.PerList)
	}
	ls := st.PerList[0]
	if len(ls.Root) != 16 || ls.Version == 0 || ls.Elements != 5 {
		t.Fatalf("rooted stats %+v", ls)
	}
}
