package server

// Batched (v2) operations: the progressive protocol of Section 5.2 is
// inherently multi-round, and a multi-term query runs one follow-up
// loop per term. v1 forced every round of every term onto its own
// round-trip; the batch API lets a client cover every still-open list
// with a single exchange per round, and lets writers upload a whole
// document's posting elements at once. Sub-queries of one batch are
// executed concurrently — they only take read views of the backend,
// so the fan-out is safe — and a canceled context or a failing
// sub-query aborts the siblings that have not started yet.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"zerberr/internal/crypt"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

// ListQuery is one sub-query of a batched query: a ranked range of one
// merged posting list.
type ListQuery struct {
	List   zerber.ListID `json:"list"`
	Offset int           `json:"offset"`
	Count  int           `json:"count"`
	// IfVersion, when set, makes the sub-query conditional: if the
	// list's current version equals it, the response is just {Version,
	// Unchanged: true} and the caller reuses the window it retained
	// from an earlier response (the cluster router does this per
	// shard). Any other version serves the full window as usual. An
	// Unchanged answer to a proved sub-query carries no proof either:
	// equal versions commit to identical state, so the retained proof
	// still verifies.
	IfVersion *uint64 `json:"if_version,omitempty"`
	// Proof asks for the window's Merkle proof (QueryResponse.Proof).
	// Unproven sub-queries are byte-identical to pre-proof servers.
	Proof bool `json:"proof,omitempty"`
}

// InsertOp is one element upload of a batched insert.
type InsertOp struct {
	List    zerber.ListID `json:"list"`
	Element StoredElement `json:"element"`
}

// RemoveOp is one element deletion of a batched remove.
type RemoveOp struct {
	List   zerber.ListID `json:"list"`
	Sealed []byte        `json:"sealed"`
}

// BatchError reports which operation of a batch failed. It unwraps to
// the underlying sentinel, so errors.Is(err, ErrForbidden) etc. keep
// working on batched paths.
type BatchError struct {
	// Index is the position of the failing operation in the request
	// batch (for cluster fan-out, the position in the client's
	// original batch, not the shard-local one).
	Index int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("batch op %d: %v", e.Index, e.Err) }

func (e *BatchError) Unwrap() error { return e.Err }

// MaxBatchOps bounds how many operations or sub-queries one batch may
// carry; larger batches are rejected as bad requests. It caps the
// work (and, for queries, the goroutines) a single authenticated
// request can demand, and is far above what the client-side protocol
// generates per round.
const MaxBatchOps = 4096

// checkBatchSize rejects empty and oversized batches.
func checkBatchSize(n int) error {
	if n == 0 {
		return fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	if n > MaxBatchOps {
		return fmt.Errorf("%w: batch of %d operations exceeds the maximum %d", ErrBadRequest, n, MaxBatchOps)
	}
	return nil
}

// QueryBatch answers every sub-query under one token validation,
// executing them concurrently (bounded by GOMAXPROCS). Responses are
// returned in request order.
//
// The context is checked between sub-queries: canceling it stops
// launching new ones and the batch fails with the context's error. A
// failing sub-query likewise cancels the siblings that have not
// started, and the batch fails with a *BatchError carrying the lowest
// index among the sub-queries that actually ran and failed (malformed
// sub-queries are still rejected up front with a precise index before
// anything runs).
func (s *Server) QueryBatch(ctx context.Context, toks []crypt.Token, queries []ListQuery) ([]QueryResponse, error) {
	if err := checkBatchSize(len(queries)); err != nil {
		return nil, err
	}
	// Validate every sub-query before running any, so a malformed
	// batch fails as a unit with a precise index.
	for i, q := range queries {
		if q.Offset < 0 || q.Count <= 0 {
			return nil, &BatchError{Index: i, Err: fmt.Errorf("%w: offset %d count %d", ErrBadRequest, q.Offset, q.Count)}
		}
	}
	allowed, now, err := s.allowedGroups(toks)
	if err != nil {
		return nil, err
	}
	if err := s.admit(userOf(toks), now); err != nil {
		return nil, err
	}
	defer s.met.Load().endRound(len(queries), now)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// subCtx aborts siblings on the first sub-query failure; the
	// caller's ctx aborting flows through it too.
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]QueryResponse, len(queries))
	errs := make([]error, len(queries))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, q := range queries {
		if err := subCtx.Err(); err != nil {
			errs[i] = err
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q ListQuery) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := subCtx.Err(); err != nil {
				errs[i] = err
				return
			}
			out[i], errs[i] = s.queryAllowed(allowed, q.List, q.Offset, q.Count, q.IfVersion, q.Proof)
			if errs[i] != nil {
				cancel()
			}
		}(i, q)
	}
	wg.Wait()
	// Caller cancellation wins and is reported as the plain context
	// error — no batch index, since no single operation is at fault.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Otherwise the first real failure; sibling slots aborted by our
	// own cancel carry context.Canceled and are skipped.
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, &BatchError{Index: i, Err: err}
		}
	}
	// Invariant guard, not a live code path: a slot can only hold
	// context.Canceled after cancel() fired, which implies either a
	// real failure (returned above) or caller cancellation (returned
	// before that). If the precedence contract ever drifts, fail
	// loudly rather than hand back zero-valued responses.
	for i, err := range errs {
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
	}
	return out, nil
}

// InsertBatch stores a batch of sealed posting elements under one
// token. The whole batch is validated (payloads present, token covers
// every element's group) before any element is applied, so a bad
// operation fails the batch atomically with its index. The validated
// batch is then handed to the backend as one operation — on a durable
// store that is a single batched WAL record and (under group commit)
// one fsync for the whole upload — so a storage failure is a failure
// of the batch as a unit, not of an index within it.
func (s *Server) InsertBatch(ctx context.Context, tok crypt.Token, ops []InsertOp) error {
	if err := checkBatchSize(len(ops)); err != nil {
		return err
	}
	allowed, now, err := s.allowedGroups([]crypt.Token{tok})
	if err != nil {
		return err
	}
	if err := s.admit(tok.User, now); err != nil {
		return err
	}
	batch := make([]store.BatchInsert, len(ops))
	for i, op := range ops {
		if op.Element.Sealed == nil {
			return &BatchError{Index: i, Err: fmt.Errorf("%w: empty payload", ErrBadRequest)}
		}
		if !allowed[op.Element.Group] {
			return &BatchError{Index: i, Err: fmt.Errorf("%w: token group %d, element group %d", ErrForbidden, tok.Group, op.Element.Group)}
		}
		batch[i] = store.BatchInsert{List: op.List, Element: op.Element}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.backend.InsertBatch(batch); err != nil {
		return err
	}
	if m := s.met.Load(); m != nil {
		m.inserts.Add(uint64(len(ops)))
	}
	return nil
}

// RemoveBatch deletes a batch of elements under one token. Every
// operation is checked first — payload present, element found, token
// covers its group — and only a fully valid batch is applied, so one
// bad operation fails the batch atomically with its index. (The check
// and the apply are two passes; a concurrent writer racing the batch
// can still surface an apply-time error, also index-precise, and a
// context canceled mid-apply leaves earlier removals applied.)
func (s *Server) RemoveBatch(ctx context.Context, tok crypt.Token, ops []RemoveOp) error {
	if err := checkBatchSize(len(ops)); err != nil {
		return err
	}
	allowed, now, err := s.allowedGroups([]crypt.Token{tok})
	if err != nil {
		return err
	}
	if err := s.admit(tok.User, now); err != nil {
		return err
	}
	for i, op := range ops {
		if len(op.Sealed) == 0 {
			return &BatchError{Index: i, Err: fmt.Errorf("%w: empty payload", ErrBadRequest)}
		}
	}
	// Pre-flight: every victim must exist and be removable, one list
	// view per distinct list. Instances are counted, not just looked
	// up, so a batch naming the same payload more often than the list
	// holds it is rejected up front rather than failing mid-apply.
	byList := make(map[zerber.ListID][]int)
	for i, op := range ops {
		byList[op.List] = append(byList[op.List], i)
	}
	for list, idxs := range byList {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Only the batch's own payloads are tracked during the scan,
		// so the pre-flight allocates O(batch), not O(list).
		wanted := make(map[string]bool, len(idxs))
		for _, i := range idxs {
			wanted[string(ops[i].Sealed)] = true
		}
		groups := make(map[string]int, len(wanted))
		instances := make(map[string]int, len(wanted))
		err := s.backend.View(list, func(elems []StoredElement) {
			for _, el := range elems {
				if !wanted[string(el.Sealed)] {
					continue
				}
				groups[string(el.Sealed)] = el.Group
				instances[string(el.Sealed)]++
			}
		})
		if err != nil {
			return &BatchError{Index: idxs[0], Err: fmt.Errorf("%w: %d", ErrUnknownList, list)}
		}
		for _, i := range idxs {
			sealed := string(ops[i].Sealed)
			group, ok := groups[sealed]
			if !ok {
				return &BatchError{Index: i, Err: fmt.Errorf("%w in list %d", ErrNotFound, list)}
			}
			if !allowed[group] {
				return &BatchError{Index: i, Err: fmt.Errorf("%w: element of group %d", ErrForbidden, group)}
			}
			if instances[sealed] == 0 {
				return &BatchError{Index: i, Err: fmt.Errorf("%w in list %d (payload named more often than stored)", ErrNotFound, list)}
			}
			instances[sealed]--
		}
	}
	var applied uint64
	defer func() {
		if m := s.met.Load(); m != nil {
			m.removes.Add(applied)
		}
	}()
	for i, op := range ops {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.removeAllowed(allowed, op.List, op.Sealed); err != nil {
			return &BatchError{Index: i, Err: err}
		}
		applied++
	}
	return nil
}

// ListStat is one list's entry in the v2 stats.
type ListStat struct {
	List     zerber.ListID `json:"list"`
	Elements int           `json:"elements"`
	// Version and Root are the list's current mutation version and
	// truncated Merkle list root, present only when the caller opted
	// into roots (GET /v2/stats?roots=1, StatsV2Roots). Computing a
	// root materializes the list's commitment, so the default stats
	// path never pays for it.
	Version uint64 `json:"version,omitempty"`
	Root    string `json:"root,omitempty"`
}

// StatsV2 reports the totals plus per-list element counts (ascending
// list ID) and the storage backend name. Backend failures (e.g. a
// closed store) propagate instead of reading as an empty index; the
// context is checked between per-list reads.
func (s *Server) StatsV2(ctx context.Context) (StatsV2Response, error) {
	return s.statsV2(ctx, false)
}

// StatsV2Roots is StatsV2 plus each list's Merkle commitment (Version
// and truncated Root per list). It materializes every list's leaves —
// an audit operation, not a monitoring one.
func (s *Server) StatsV2Roots(ctx context.Context) (StatsV2Response, error) {
	return s.statsV2(ctx, true)
}

func (s *Server) statsV2(ctx context.Context, roots bool) (StatsV2Response, error) {
	lists, err := s.backend.Lists()
	if err != nil {
		return StatsV2Response{}, err
	}
	per := make([]ListStat, 0, len(lists))
	elements := 0
	for _, l := range lists {
		if err := ctx.Err(); err != nil {
			return StatsV2Response{}, err
		}
		st := ListStat{List: l}
		if roots {
			cm, err := s.backend.Commitment(l)
			if err != nil {
				return StatsV2Response{}, err
			}
			st.Elements = cm.Elements
			st.Version = cm.Version
			st.Root = cm.Root.Short()
		} else {
			n, err := s.backend.Len(l)
			if err != nil {
				return StatsV2Response{}, err
			}
			st.Elements = n
		}
		per = append(per, st)
		elements += st.Elements
	}
	sort.Slice(per, func(i, j int) bool { return per[i].List < per[j].List })
	resp := StatsV2Response{
		Lists:    len(lists),
		Elements: elements,
		Backend:  s.backend.Name(),
		PerList:  per,
	}
	if cs, ok := s.CacheStats(); ok {
		resp.Cache = &CacheStatsV2{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			Bytes:     cs.Bytes,
			Capacity:  cs.Capacity,
		}
	}
	resp.Ops = s.opsStats()
	return resp, nil
}
