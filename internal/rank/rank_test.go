package rank

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"zerberr/internal/corpus"
	"zerberr/internal/stats"
)

func TestNormTF(t *testing.T) {
	if got := NormTF(3, 12); got != 0.25 {
		t.Errorf("NormTF(3,12) = %v, want 0.25", got)
	}
	if got := NormTF(3, 0); got != 0 {
		t.Errorf("NormTF with empty doc = %v, want 0", got)
	}
}

func TestIDF(t *testing.T) {
	if got := IDF(100, 10); math.Abs(got-math.Log(10)) > 1e-12 {
		t.Errorf("IDF(100,10) = %v, want ln(10)", got)
	}
	if got := IDF(100, 0); got != 0 {
		t.Errorf("IDF with df=0 = %v, want 0", got)
	}
	if got := IDF(0, 5); got != 0 {
		t.Errorf("IDF with empty collection = %v, want 0", got)
	}
	if got := IDF(100, 100); got != 0 {
		t.Errorf("IDF of universal term = %v, want 0", got)
	}
}

func TestScorers(t *testing.T) {
	n := NormTFScorer{}
	if got := n.Score(2, 8, 50, 100); got != 0.25 {
		t.Errorf("NormTFScorer = %v, want 0.25", got)
	}
	ti := TFIDFScorer{}
	want := 0.25 * math.Log(2)
	if got := ti.Score(2, 8, 50, 100); math.Abs(got-want) > 1e-12 {
		t.Errorf("TFIDFScorer = %v, want %v", got, want)
	}
}

func TestTopKBasic(t *testing.T) {
	scores := map[corpus.DocID]float64{1: 0.5, 2: 0.9, 3: 0.1, 4: 0.7}
	got := TopK(scores, 2)
	want := []Result{{Doc: 2, Score: 0.9}, {Doc: 4, Score: 0.7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
}

func TestTopKTieBreaksByDocID(t *testing.T) {
	scores := map[corpus.DocID]float64{9: 0.5, 3: 0.5, 7: 0.5}
	got := TopK(scores, 2)
	want := []Result{{Doc: 3, Score: 0.5}, {Doc: 7, Score: 0.5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
}

func TestTopKEdge(t *testing.T) {
	if got := TopK(nil, 5); got != nil {
		t.Errorf("TopK(nil) = %v", got)
	}
	if got := TopK(map[corpus.DocID]float64{1: 1}, 0); got != nil {
		t.Errorf("TopK(k=0) = %v", got)
	}
	got := TopK(map[corpus.DocID]float64{1: 1, 2: 2}, 10)
	if len(got) != 2 {
		t.Errorf("TopK with k > n returned %d results", len(got))
	}
}

func TestTopKMatchesNaiveSortQuick(t *testing.T) {
	g := stats.NewRNG(31)
	f := func(seed uint16, kRaw uint8) bool {
		n := 1 + int(seed%200)
		k := 1 + int(kRaw%20)
		scores := make(map[corpus.DocID]float64, n)
		for i := 0; i < n; i++ {
			scores[corpus.DocID(i)] = math.Round(g.Float64()*10) / 10 // force ties
		}
		got := TopK(scores, k)

		type pair struct {
			doc   corpus.DocID
			score float64
		}
		all := make([]pair, 0, n)
		for d, s := range scores {
			all = append(all, pair{d, s})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].score != all[j].score {
				return all[i].score > all[j].score
			}
			return all[i].doc < all[j].doc
		})
		if k > len(all) {
			k = len(all)
		}
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i].Doc != all[i].doc || got[i].Score != all[i].score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulate(t *testing.T) {
	dst := map[corpus.DocID]float64{1: 0.5}
	Accumulate(dst, []Result{{Doc: 1, Score: 0.25}, {Doc: 2, Score: 0.1}})
	if dst[1] != 0.75 || dst[2] != 0.1 {
		t.Fatalf("Accumulate = %v", dst)
	}
}

func TestTopKList(t *testing.T) {
	rs := []Result{{Doc: 1, Score: 0.2}, {Doc: 2, Score: 0.9}, {Doc: 3, Score: 0.5}}
	got := TopKList(rs, 2)
	want := []Result{{Doc: 2, Score: 0.9}, {Doc: 3, Score: 0.5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopKList = %v, want %v", got, want)
	}
}

func TestOverlap(t *testing.T) {
	a := []Result{{Doc: 1}, {Doc: 2}, {Doc: 3}}
	b := []Result{{Doc: 2}, {Doc: 3}, {Doc: 4}}
	if got := Overlap(a, b); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Overlap = %v, want 2/3", got)
	}
	if got := Overlap(a, a); got != 1 {
		t.Errorf("self Overlap = %v, want 1", got)
	}
	if got := Overlap(nil, nil); got != 1 {
		t.Errorf("empty Overlap = %v, want 1", got)
	}
	if got := Overlap(a, nil); got != 0 {
		t.Errorf("disjoint Overlap = %v, want 0", got)
	}
}

func TestOverlapAsymmetricLengths(t *testing.T) {
	a := []Result{{Doc: 1}, {Doc: 2}}
	b := []Result{{Doc: 1}, {Doc: 2}, {Doc: 3}, {Doc: 4}}
	if got := Overlap(a, b); got != 0.5 {
		t.Errorf("Overlap = %v, want 0.5 (normalized by longer list)", got)
	}
}
