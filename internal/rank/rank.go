// Package rank implements the relevance-score calculations of Section
// 3.2: the IDF-free normalized term frequency of Equation 4 that
// Zerber+R stores per posting element, the TF×IDF vector-space scoring
// of Equation 3 used by the plaintext baseline, and top-k selection
// and rank-agreement helpers.
package rank

import (
	"container/heap"
	"math"

	"zerberr/internal/corpus"
)

// Result is one ranked retrieval result.
type Result struct {
	Doc   corpus.DocID
	Score float64
}

// NormTF returns the Equation 4 relevance score rscore(q,d) =
// TF_q / |d|. It returns 0 for an empty document.
func NormTF(tf, docLen int) float64 {
	if docLen == 0 {
		return 0
	}
	return float64(tf) / float64(docLen)
}

// IDF returns the inverse document frequency log(|D| / n_d(t)) used by
// Equation 3. It returns 0 when the term is absent or the collection
// empty, so an unknown term contributes nothing.
func IDF(numDocs, df int) float64 {
	if df <= 0 || numDocs <= 0 {
		return 0
	}
	return math.Log(float64(numDocs) / float64(df))
}

// Scorer computes a per-term, per-document relevance contribution.
type Scorer interface {
	// Score returns the contribution of a term occurring tf times in a
	// document of length docLen, where the term appears in df of the
	// numDocs collection documents.
	Score(tf, docLen, df, numDocs int) float64
}

// NormTFScorer is the confidential scoring model of Equation 4: no
// collection statistics, exact for single-term queries.
type NormTFScorer struct{}

// Score implements Scorer.
func (NormTFScorer) Score(tf, docLen, df, numDocs int) float64 {
	return NormTF(tf, docLen)
}

// TFIDFScorer is the Equation 3 vector-space baseline that leaks
// collection statistics; Zerber+R gives it up for confidentiality.
type TFIDFScorer struct{}

// Score implements Scorer.
func (TFIDFScorer) Score(tf, docLen, df, numDocs int) float64 {
	return NormTF(tf, docLen) * IDF(numDocs, df)
}

// weaker reports whether a ranks below b: lower score, with ties
// broken so that larger DocIDs are weaker (keeping results
// deterministic).
func weaker(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

// resultHeap is a min-heap under weaker, so the root is the weakest
// kept result.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return weaker(h[i], h[j]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK selects the k highest-scoring documents from the accumulated
// score map, sorted by descending score (ties by ascending DocID).
// k <= 0 or an empty map yields nil.
func TopK(scores map[corpus.DocID]float64, k int) []Result {
	if k <= 0 || len(scores) == 0 {
		return nil
	}
	h := make(resultHeap, 0, k)
	for doc, s := range scores {
		r := Result{Doc: doc, Score: s}
		if len(h) < k {
			heap.Push(&h, r)
		} else if weaker(h[0], r) {
			h[0] = r
			heap.Fix(&h, 0)
		}
	}
	out := make([]Result, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Result)
	}
	return out
}

// TopKList selects the k best from an explicit result slice.
func TopKList(results []Result, k int) []Result {
	m := make(map[corpus.DocID]float64, len(results))
	for _, r := range results {
		m[r.Doc] = r.Score
	}
	return TopK(m, k)
}

// Accumulate adds per-term contributions into dst, summing scores per
// document (the Equation 3 outer sum over query terms).
func Accumulate(dst map[corpus.DocID]float64, contributions []Result) {
	for _, r := range contributions {
		dst[r.Doc] += r.Score
	}
}

// Overlap returns |a ∩ b| / k where the intersection is over document
// IDs of the two top-k lists and k is the longer list's length. It is
// the rank-agreement measure used by the multi-term accuracy
// experiment (Ext-A). Two empty lists overlap fully.
func Overlap(a, b []Result) float64 {
	k := len(a)
	if len(b) > k {
		k = len(b)
	}
	if k == 0 {
		return 1
	}
	inA := make(map[corpus.DocID]bool, len(a))
	for _, r := range a {
		inA[r.Doc] = true
	}
	common := 0
	for _, r := range b {
		if inA[r.Doc] {
			common++
		}
	}
	return float64(common) / float64(k)
}
