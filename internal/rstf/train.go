package rstf

import (
	"math"
	"sort"

	"zerberr/internal/stats"
)

// SigmaScore is one point of the Figure 9 cross-validation curve:
// the uniformness variance achieved on the control set by a given σ.
type SigmaScore struct {
	Sigma    float64
	Variance float64
}

// DefaultSigmaGrid returns the log-spaced steepness grid searched by
// SelectSigma: 2^2 .. 2^24. The low end over-smooths; the high end
// memorizes the training sample (normalized-TF scores are discrete, so
// very narrow bells turn the transform into a step function whose gaps
// clump unseen control values — the overfitting branch of Figure 9).
func DefaultSigmaGrid() []float64 {
	var grid []float64
	for e := 2; e <= 24; e++ {
		grid = append(grid, math.Pow(2, float64(e)))
	}
	return grid
}

// SelectSigma performs the Section 5.1.3 cross-validation: for every σ
// in the grid it trains an RSTF on train, transforms the control
// sample, and measures the variance of the TRS distribution with
// respect to a uniform distribution. It returns the best σ, its
// variance, and the whole curve (for Figure 9). A nil grid means
// DefaultSigmaGrid. SelectSigma returns ErrNoTraining if either
// sample is empty.
func SelectSigma(train, control []float64, grid []float64) (float64, float64, []SigmaScore, error) {
	if len(train) == 0 || len(control) == 0 {
		return 0, 0, nil, ErrNoTraining
	}
	if grid == nil {
		grid = DefaultSigmaGrid()
	}
	bestSigma := grid[0]
	bestVar := math.Inf(1)
	curve := make([]SigmaScore, 0, len(grid))
	trs := make([]float64, len(control))
	for _, sigma := range grid {
		f, err := New(train, sigma)
		if err != nil {
			return 0, 0, nil, err
		}
		for i, x := range control {
			trs[i] = f.Transform(x)
		}
		v := stats.VarianceFromUniform(trs)
		curve = append(curve, SigmaScore{Sigma: sigma, Variance: v})
		if v < bestVar {
			bestVar = v
			bestSigma = sigma
		}
	}
	return bestSigma, bestVar, curve, nil
}

// Train builds an RSTF for one term, selecting σ by cross-validation
// when the control sample has at least minControl points and falling
// back to DefaultSigma otherwise.
func Train(train, control []float64, grid []float64, minControl int) (*RSTF, error) {
	if len(control) >= minControl && len(control) > 0 {
		sigma, _, _, err := SelectSigma(train, control, grid)
		if err != nil {
			return nil, err
		}
		return New(train, sigma)
	}
	return New(train, DefaultSigma(train))
}

// DirectSigma estimates a good steepness without cross-validation —
// the direction Section 5.1.3 names as future work ("finding a method
// for directly determining an optimal σ"). It is the plug-in
// bandwidth rule for kernel CDF estimation: bandwidth
// h ≈ c·s·N^(−1/3) with s a robust scale estimate (IQR/1.349, falling
// back to the standard deviation, then to the range), converted to
// logistic steepness via the 1.702 logistic/Gaussian factor. The
// Ext-C ablation quantifies how close it lands to the
// cross-validated optimum.
func DirectSigma(training []float64) float64 {
	n := len(training)
	if n < 2 {
		return 100
	}
	sorted := append([]float64(nil), training...)
	sort.Float64s(sorted)
	iqr := sorted[(3*n)/4] - sorted[n/4]
	scale := iqr / 1.349
	if scale <= 0 {
		scale = stats.StdDev(training)
	}
	if scale <= 0 {
		scale = sorted[n-1] - sorted[0]
	}
	if scale <= 0 {
		return 100
	}
	const c = 1.0
	h := c * scale * math.Pow(float64(n), -1.0/3.0)
	return 1.702 / h
}

// ECDFTransform is the ablation baseline of [21]-style exact order
// mapping: the empirical CDF of the training sample. It shares the
// RSTF's three required properties but memorizes the sample exactly
// (the limiting case of σ→∞).
type ECDFTransform struct {
	e *stats.ECDF
}

// NewECDFTransform builds the baseline from a training sample.
func NewECDFTransform(training []float64) (*ECDFTransform, error) {
	if len(training) == 0 {
		return nil, ErrNoTraining
	}
	return &ECDFTransform{e: stats.NewECDF(training)}, nil
}

// Transform implements Transformer.
func (t *ECDFTransform) Transform(x float64) float64 { return t.e.Eval(x) }
