package rstf

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"

	"zerberr/internal/corpus"
	"zerberr/internal/stats"
)

// StoreConfig parameterizes Store training.
type StoreConfig struct {
	// Grid is the σ cross-validation grid; nil means DefaultSigmaGrid.
	Grid []float64
	// MinControl is the minimum number of control observations a term
	// needs for per-term σ cross-validation; below it DefaultSigma is
	// used. Zero means 10.
	MinControl int
	// FallbackSeed keys the deterministic pseudo-random TRS assigned
	// to terms absent from the training set (Section 5.1.1: "Terms
	// found later ... are assumed to be rare and can therefore be
	// assigned a random TRS").
	FallbackSeed uint64
	// Jitter, when positive, adds a deterministic per-element offset
	// uniform in (−Jitter/2, +Jitter/2) to every TRS. This closes the
	// shared-score-atom fingerprint channel the Ext-B attack
	// experiment uncovered (all elements sharing one score no longer
	// share one TRS) at the cost of order flips between scores whose
	// TRS images lie within Jitter of each other — to be effective it
	// must exceed the typical per-term TRS gap (~1/df), so local rank
	// swaps near the top-k boundary are the price. This is an
	// extension beyond the paper.
	Jitter float64
	// Parallelism bounds the training worker pool; zero means
	// runtime.GOMAXPROCS(0).
	Parallelism int
}

// Store holds the published per-term RSTFs created in the offline
// pre-computing phase of Section 5 plus the random-TRS fallback for
// unseen terms. A Store is immutable after TrainStore and safe for
// concurrent use.
type Store struct {
	terms        map[corpus.TermID]*RSTF
	fallbackSeed uint64
	jitter       float64
	// identity short-circuits TRS to the raw (clamped) score. It
	// models the insecure "ordered index with plain relevance scores"
	// of Sections 3.3-3.4, used as the attack baseline.
	identity bool
}

// NewIdentityStore returns a store whose TRS is the raw relevance
// score clamped to [0,1]: the no-RSTF baseline an adversary can
// exploit. It is used by the security experiments, never by a real
// deployment.
func NewIdentityStore() *Store {
	return &Store{terms: map[corpus.TermID]*RSTF{}, identity: true}
}

// Identity reports whether this store bypasses transformation.
func (s *Store) Identity() bool { return s.identity }

// TrainStore trains one RSTF per term appearing in trainScores, using
// controlScores for σ cross-validation where available. This is the
// index-initialization step: it runs once; afterwards inserts and
// updates are unlimited (Section 7, Related Work).
func TrainStore(trainScores, controlScores map[corpus.TermID][]float64, cfg StoreConfig) *Store {
	if cfg.MinControl == 0 {
		cfg.MinControl = 10
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Deterministic term order for reproducible iteration; results are
	// per-term independent so scheduling cannot change them.
	ids := make([]corpus.TermID, 0, len(trainScores))
	for t := range trainScores {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make(map[corpus.TermID]*RSTF, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	ch := make(chan corpus.TermID)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				f, err := Train(trainScores[t], controlScores[t], cfg.Grid, cfg.MinControl)
				if err != nil {
					continue // empty training sample: term stays on fallback
				}
				mu.Lock()
				out[t] = f
				mu.Unlock()
			}
		}()
	}
	for _, t := range ids {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return &Store{terms: out, fallbackSeed: cfg.FallbackSeed, jitter: cfg.Jitter}
}

// NewStore assembles a store from pre-trained functions (used by the
// deserializer and tests).
func NewStore(terms map[corpus.TermID]*RSTF, fallbackSeed uint64) *Store {
	if terms == nil {
		terms = make(map[corpus.TermID]*RSTF)
	}
	return &Store{terms: terms, fallbackSeed: fallbackSeed}
}

// Has reports whether the term was seen in training.
func (s *Store) Has(t corpus.TermID) bool { _, ok := s.terms[t]; return ok }

// Get returns the term's RSTF, or nil if it was not trained.
func (s *Store) Get(t corpus.TermID) *RSTF { return s.terms[t] }

// Len returns the number of trained terms.
func (s *Store) Len() int { return len(s.terms) }

// Terms returns the trained term IDs in ascending order.
func (s *Store) Terms() []corpus.TermID {
	ids := make([]corpus.TermID, 0, len(s.terms))
	for t := range s.terms {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TRS computes the transformed relevance score for a posting element
// of term t in document doc with raw relevance score x. Trained terms
// go through their RSTF; unseen terms receive a deterministic
// pseudo-random TRS keyed by (seed, term, doc) so that re-indexing the
// same element yields the same TRS.
func (s *Store) TRS(t corpus.TermID, doc corpus.DocID, x float64) float64 {
	if s.identity {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	if f, ok := s.terms[t]; ok {
		v := f.Transform(x)
		if s.jitter > 0 {
			v += (s.fallbackTRS(t, doc) - 0.5) * s.jitter
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
		}
		return v
	}
	return s.fallbackTRS(t, doc)
}

// Jitter returns the configured per-element jitter width (0 = off).
func (s *Store) Jitter() float64 { return s.jitter }

// fallbackTRS maps (seed, term, doc) to a uniform value in [0,1).
func (s *Store) fallbackTRS(t corpus.TermID, doc corpus.DocID) float64 {
	h := fnv.New64a()
	var buf [20]byte
	binary.BigEndian.PutUint64(buf[0:8], s.fallbackSeed)
	binary.BigEndian.PutUint32(buf[8:12], uint32(t))
	binary.BigEndian.PutUint32(buf[12:16], uint32(doc))
	binary.BigEndian.PutUint32(buf[16:20], 0x5a52) // domain tag
	h.Write(buf[:])
	// 53 mantissa bits -> uniform in [0,1)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// UniformnessReport measures, per trained term, how uniformly the
// store transforms the given evaluation scores; it returns the mean
// variance-from-uniform across terms with at least minSamples
// observations. This is the store-level security health check of
// Section 6.2.
func (s *Store) UniformnessReport(eval map[corpus.TermID][]float64, minSamples int) (meanVariance float64, measured int) {
	sum := 0.0
	for t, scores := range eval {
		f, ok := s.terms[t]
		if !ok || len(scores) < minSamples {
			continue
		}
		trs := make([]float64, len(scores))
		for i, x := range scores {
			trs[i] = f.Transform(x)
		}
		v := stats.VarianceFromUniform(trs)
		if !math.IsNaN(v) {
			sum += v
			measured++
		}
	}
	if measured == 0 {
		return math.NaN(), 0
	}
	return sum / float64(measured), measured
}
