package rstf

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"zerberr/internal/corpus"
	"zerberr/internal/stats"
)

func trainedStore(t *testing.T, seed uint64) *Store {
	t.Helper()
	p := corpus.ProfileStudIP()
	p.NumDocs = 400
	p.VocabSize = 4000
	c := corpus.Generate(p, seed)
	split := corpus.NewSplit(c, 0.4, 0.33, seed)
	train := corpus.TrainingScores(c, split.Train)
	control := corpus.TrainingScores(c, split.Control)
	return TrainStore(train, control, StoreConfig{FallbackSeed: 42})
}

func TestTrainStoreCoversTrainingTerms(t *testing.T) {
	s := trainedStore(t, 1)
	if s.Len() == 0 {
		t.Fatal("store trained no terms")
	}
	for _, term := range s.Terms() {
		f := s.Get(term)
		if f == nil || f.N() == 0 {
			t.Fatalf("term %d has no RSTF", term)
		}
		if f.Sigma() <= 0 {
			t.Fatalf("term %d sigma %v", term, f.Sigma())
		}
	}
}

func TestTrainStoreDeterministicAcrossParallelism(t *testing.T) {
	p := corpus.ProfileStudIP()
	p.NumDocs = 150
	p.VocabSize = 1500
	c := corpus.Generate(p, 5)
	split := corpus.NewSplit(c, 0.4, 0.33, 5)
	train := corpus.TrainingScores(c, split.Train)
	control := corpus.TrainingScores(c, split.Control)
	a := TrainStore(train, control, StoreConfig{FallbackSeed: 1, Parallelism: 1})
	b := TrainStore(train, control, StoreConfig{FallbackSeed: 1, Parallelism: 8})
	if a.Len() != b.Len() {
		t.Fatalf("store sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for _, term := range a.Terms() {
		fa, fb := a.Get(term), b.Get(term)
		if fa.Sigma() != fb.Sigma() || fa.N() != fb.N() {
			t.Fatalf("term %d differs across parallelism", term)
		}
	}
}

func TestStoreTRSRangeAndDeterminism(t *testing.T) {
	s := trainedStore(t, 2)
	g := stats.NewRNG(3)
	for i := 0; i < 500; i++ {
		term := corpus.TermID(g.Intn(4000))
		doc := corpus.DocID(g.Intn(400))
		x := g.Float64() * 0.3
		v1 := s.TRS(term, doc, x)
		v2 := s.TRS(term, doc, x)
		if v1 != v2 {
			t.Fatalf("TRS not deterministic for term %d", term)
		}
		if v1 < 0 || v1 > 1 {
			t.Fatalf("TRS %v outside [0,1]", v1)
		}
	}
}

func TestFallbackTRSUniform(t *testing.T) {
	s := NewStore(nil, 7)
	var vals []float64
	for doc := corpus.DocID(0); doc < 3000; doc++ {
		vals = append(vals, s.TRS(999999, doc, 0.5))
	}
	v := stats.VarianceFromUniform(vals)
	if v > 1e-3 {
		t.Fatalf("fallback TRS variance from uniform = %v, want small", v)
	}
}

func TestFallbackTRSKeyedBySeed(t *testing.T) {
	a := NewStore(nil, 1)
	b := NewStore(nil, 2)
	if a.TRS(5, 10, 0.5) == b.TRS(5, 10, 0.5) {
		t.Fatal("different seeds yielded identical fallback TRS")
	}
}

func TestUniformnessReport(t *testing.T) {
	s := trainedStore(t, 4)
	p := corpus.ProfileStudIP()
	p.NumDocs = 400
	p.VocabSize = 4000
	c := corpus.Generate(p, 4)
	split := corpus.NewSplit(c, 0.4, 0.33, 4)
	eval := corpus.TrainingScores(c, split.Rest)
	// minSamples=100 keeps the order-statistics noise floor
	// (about 1/(6(n+2)) for a perfectly uniform sample) around 2e-3,
	// so a mean below 6e-3 demonstrates near-uniform transforms.
	mean, n := s.UniformnessReport(eval, 100)
	if n == 0 {
		t.Fatal("no terms measured")
	}
	if math.IsNaN(mean) || mean > 6e-3 {
		t.Fatalf("mean variance %v over %d terms, want < 6e-3", mean, n)
	}
}

func TestUniformnessReportEmpty(t *testing.T) {
	s := NewStore(nil, 1)
	mean, n := s.UniformnessReport(nil, 1)
	if n != 0 || !math.IsNaN(mean) {
		t.Fatalf("empty report = (%v, %d)", mean, n)
	}
}

func TestStoreSerializeRoundTrip(t *testing.T) {
	s := trainedStore(t, 6)
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d, buffer %d", n, buf.Len())
	}
	got, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip lost terms: %d vs %d", got.Len(), s.Len())
	}
	for _, term := range s.Terms() {
		for _, x := range []float64{0.01, 0.05, 0.2} {
			if a, b := s.TRS(term, 1, x), got.TRS(term, 1, x); a != b {
				t.Fatalf("term %d: TRS differs after round trip (%v vs %v)", term, a, b)
			}
		}
	}
	// Fallback seed must survive too.
	if a, b := s.TRS(999999, 3, 0.5), got.TRS(999999, 3, 0.5); a != b {
		t.Fatal("fallback seed lost in round trip")
	}
}

func TestReadStoreRejectsGarbage(t *testing.T) {
	if _, err := ReadStore(bytes.NewReader([]byte("garbage data here"))); !errors.Is(err, ErrBadStoreFormat) {
		t.Fatalf("err = %v, want ErrBadStoreFormat", err)
	}
}

func TestReadStoreRejectsTruncated(t *testing.T) {
	s := trainedStore(t, 8)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{5, 13, buf.Len() / 2, buf.Len() - 3} {
		if _, err := ReadStore(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestTrainStoreSkipsEmptySamples(t *testing.T) {
	train := map[corpus.TermID][]float64{
		1: {0.1, 0.2},
		2: {},
	}
	s := TrainStore(train, nil, StoreConfig{})
	if !s.Has(1) {
		t.Fatal("term 1 missing")
	}
	if s.Has(2) {
		t.Fatal("term with empty sample should stay on fallback")
	}
}
