// Package rstf implements the paper's primary contribution: the
// Relevance Score Transformation Function of Sections 4.2 and 5.1.
//
// An RSTF maps the term-specific relevance scores of Equation 4 to
// transformed relevance scores (TRS) that are (i) confined to the
// common range [0,1], (ii) uniformly distributed over that range, and
// (iii) ordered exactly as the input scores — so an untrusted index
// server can rank posting elements by TRS without learning which term
// they belong to.
//
// Following Section 5.1.1, the score density of a term is modelled as
// a sum of Gaussian bells centred on the training observations; the
// RSTF is the integral of that density (Eq. 6), estimated with the
// logistic approximation of the Gaussian integral (Eq. 7-8):
//
//	RSTF(x) = (1/N) · Σ_i 1 / (1 + e^(−σ·(x−μ_i)))
//
// σ is the steepness ("scale") parameter selected by cross-validation
// against a control set (Section 5.1.3, Figure 9).
package rstf

import (
	"errors"
	"math"
	"sort"
)

// Transformer is an order-preserving score transformation. Both the
// Gaussian-sum RSTF and the exact-ECDF ablation baseline implement it.
type Transformer interface {
	// Transform maps a relevance score to a TRS in [0,1].
	Transform(x float64) float64
}

// saturation is the sigmoid argument beyond which the logistic term is
// indistinguishable from 0 or 1 in float64 (e^-37 < 2^-52), letting
// Transform skip saturated training points.
const saturation = 37.0

// RSTF is the trained transformation function for one term.
type RSTF struct {
	// mu holds the training scores (Eq. 5's μ_i), sorted ascending.
	mu []float64
	// sigma is the logistic steepness: larger σ = narrower bells =
	// closer fit to the training sample (Section 5.1.3).
	sigma float64
}

// ErrNoTraining is returned when an RSTF is requested for an empty
// training sample.
var ErrNoTraining = errors.New("rstf: empty training sample")

// New builds an RSTF from the term's training relevance scores with
// steepness sigma. The input is copied and sorted. sigma must be
// positive.
func New(training []float64, sigma float64) (*RSTF, error) {
	if len(training) == 0 {
		return nil, ErrNoTraining
	}
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, errors.New("rstf: sigma must be positive and finite")
	}
	mu := append([]float64(nil), training...)
	sort.Float64s(mu)
	return &RSTF{mu: mu, sigma: sigma}, nil
}

// Sigma returns the steepness parameter.
func (f *RSTF) Sigma() float64 { return f.sigma }

// N returns the number of training points.
func (f *RSTF) N() int { return len(f.mu) }

// TrainingPoints returns a copy of the sorted training scores the
// function was built from. The RSTF is a published artifact, so these
// are public by construction — a fact the adversary simulations
// exploit (see internal/experiments, Ext-B).
func (f *RSTF) TrainingPoints() []float64 {
	return append([]float64(nil), f.mu...)
}

// Transform evaluates the RSTF at x (Eq. 8). The result is in [0,1],
// and Transform is non-decreasing in x. Evaluation is
// O(w + log N) where w is the number of non-saturated bells around x,
// because training points far outside the logistic window contribute
// exactly 0 or 1.
func (f *RSTF) Transform(x float64) float64 {
	n := len(f.mu)
	w := saturation / f.sigma
	// Points with μ_i <= x-w contribute 1; points with μ_i >= x+w
	// contribute 0; only the window in between needs the sigmoid.
	lo := sort.SearchFloat64s(f.mu, x-w)
	hi := sort.SearchFloat64s(f.mu, x+w)
	sum := float64(lo)
	for _, mu := range f.mu[lo:hi] {
		sum += 1 / (1 + math.Exp(-f.sigma*(x-mu)))
	}
	return sum / float64(n)
}

// transformNaive is the textbook O(N) evaluation, kept for
// differential testing of the windowed fast path.
func (f *RSTF) transformNaive(x float64) float64 {
	sum := 0.0
	for _, mu := range f.mu {
		sum += 1 / (1 + math.Exp(-f.sigma*(x-mu)))
	}
	return sum / float64(len(f.mu))
}

// DefaultSigma returns the heuristic steepness used when a term has
// too few control observations for cross-validation: bells about as
// wide as the mean spacing between adjacent training points, which
// spreads the mass without over-fitting. For a single point or zero
// range it falls back to a broad default.
func DefaultSigma(training []float64) float64 {
	if len(training) < 2 {
		return 100
	}
	lo, hi := training[0], training[0]
	for _, v := range training {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return 100
	}
	// mean spacing = range/(N-1); steepness ~ 2/spacing.
	return 2 * float64(len(training)-1) / (hi - lo)
}

// Density evaluates the Eq. 5 Gaussian-sum probability density
// implied by the logistic model at x: the derivative of Transform.
// It is used by the Figure 7 experiment to plot the modelled
// distribution.
func (f *RSTF) Density(x float64) float64 {
	sum := 0.0
	for _, mu := range f.mu {
		e := 1 / (1 + math.Exp(-f.sigma*(x-mu)))
		sum += f.sigma * e * (1 - e) // d/dx sigmoid
	}
	return sum / float64(len(f.mu))
}
