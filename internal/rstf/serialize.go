package rstf

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"zerberr/internal/corpus"
)

// Serialization format (integers are unsigned varints, floats are
// 64-bit IEEE big-endian):
//
//	magic "ZRST1" | fallbackSeed(8B) | numTerms |
//	  numTerms × ( termID | sigma(8B) | N | N × mu(8B) )
//
// Terms are written in ascending ID order; each term's μ values are
// written sorted, matching the in-memory representation.

var storeMagic = []byte("ZRST1")

// ErrBadStoreFormat reports a corrupted or truncated serialized store.
var ErrBadStoreFormat = errors.New("rstf: bad serialized store format")

// WriteTo serializes the store. It implements io.WriterTo.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(storeMagic); err != nil {
		return cw.n, err
	}
	var f8 [8]byte
	binary.BigEndian.PutUint64(f8[:], s.fallbackSeed)
	if _, err := bw.Write(f8[:]); err != nil {
		return cw.n, err
	}
	var vbuf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(vbuf[:], v)
		_, err := bw.Write(vbuf[:n])
		return err
	}
	writeFloat := func(v float64) error {
		binary.BigEndian.PutUint64(f8[:], math.Float64bits(v))
		_, err := bw.Write(f8[:])
		return err
	}
	if err := writeUvarint(uint64(len(s.terms))); err != nil {
		return cw.n, err
	}
	for _, t := range s.Terms() {
		f := s.terms[t]
		if err := writeUvarint(uint64(t)); err != nil {
			return cw.n, err
		}
		if err := writeFloat(f.sigma); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(uint64(len(f.mu))); err != nil {
			return cw.n, err
		}
		for _, m := range f.mu {
			if err := writeFloat(m); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadStore deserializes a store written with WriteTo.
func ReadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadStoreFormat, err)
	}
	if string(magic) != string(storeMagic) {
		return nil, fmt.Errorf("%w: magic %q", ErrBadStoreFormat, magic)
	}
	var f8 [8]byte
	readFloat := func() (float64, error) {
		if _, err := io.ReadFull(br, f8[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadStoreFormat, err)
		}
		return math.Float64frombits(binary.BigEndian.Uint64(f8[:])), nil
	}
	readUvarint := func() (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadStoreFormat, err)
		}
		return v, nil
	}
	if _, err := io.ReadFull(br, f8[:]); err != nil {
		return nil, fmt.Errorf("%w: missing seed: %v", ErrBadStoreFormat, err)
	}
	seed := binary.BigEndian.Uint64(f8[:])
	numTerms, err := readUvarint()
	if err != nil {
		return nil, err
	}
	terms := make(map[corpus.TermID]*RSTF, numTerms)
	for i := uint64(0); i < numTerms; i++ {
		tid, err := readUvarint()
		if err != nil {
			return nil, err
		}
		sigma, err := readFloat()
		if err != nil {
			return nil, err
		}
		n, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("%w: term %d has empty training sample", ErrBadStoreFormat, tid)
		}
		const maxTraining = 1 << 28 // sanity bound against corrupted lengths
		if n > maxTraining {
			return nil, fmt.Errorf("%w: term %d claims %d training points", ErrBadStoreFormat, tid, n)
		}
		mu := make([]float64, n)
		for j := range mu {
			if mu[j], err = readFloat(); err != nil {
				return nil, err
			}
			if j > 0 && mu[j] < mu[j-1] {
				return nil, fmt.Errorf("%w: term %d training points not sorted", ErrBadStoreFormat, tid)
			}
		}
		f, err := New(mu, sigma)
		if err != nil {
			return nil, fmt.Errorf("%w: term %d: %v", ErrBadStoreFormat, tid, err)
		}
		terms[corpus.TermID(tid)] = f
	}
	return &Store{terms: terms, fallbackSeed: seed}, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
