package rstf

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"zerberr/internal/stats"
)

func sample(n int, seed uint64, gen func(g *stats.RNG) float64) []float64 {
	g := stats.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = gen(g)
	}
	return xs
}

func normTFLike(g *stats.RNG) float64 {
	// Skewed scores resembling normalized TF: mostly small, long tail.
	v := g.Float64()
	return 0.001 + 0.2*v*v*v
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 10); !errors.Is(err, ErrNoTraining) {
		t.Errorf("empty training: err = %v, want ErrNoTraining", err)
	}
	for _, sigma := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New([]float64{0.1}, sigma); err == nil {
			t.Errorf("sigma %v accepted", sigma)
		}
	}
}

func TestTransformRange(t *testing.T) {
	f, err := New(sample(200, 1, normTFLike), 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 0.0001, 0.05, 0.2, 0.5, 1, 100} {
		y := f.Transform(x)
		if y < 0 || y > 1 || math.IsNaN(y) {
			t.Fatalf("Transform(%v) = %v outside [0,1]", x, y)
		}
	}
}

func TestTransformMonotoneQuick(t *testing.T) {
	f, err := New(sample(300, 2, normTFLike), 800)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 1)
		b = math.Mod(math.Abs(b), 1)
		if a > b {
			a, b = b, a
		}
		return f.Transform(a) <= f.Transform(b)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformStrictOrderOnDistinctScores(t *testing.T) {
	// Section 4.2: the RSTF must preserve the order of relevance
	// scores. For finite sigma, sigmoids are strictly increasing, so
	// distinct scores inside the data range map to distinct TRS.
	f, err := New(sample(100, 3, normTFLike), 200)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{0.01, 0.02, 0.05, 0.08, 0.1, 0.15}
	for i := 1; i < len(xs); i++ {
		lo, hi := f.Transform(xs[i-1]), f.Transform(xs[i])
		if !(lo < hi) {
			t.Fatalf("order not strictly preserved: f(%v)=%v, f(%v)=%v", xs[i-1], lo, xs[i], hi)
		}
	}
}

func TestWindowedMatchesNaive(t *testing.T) {
	for _, sigma := range []float64{4, 64, 1024, 65536} {
		f, err := New(sample(500, 4, normTFLike), sigma)
		if err != nil {
			t.Fatal(err)
		}
		g := stats.NewRNG(5)
		for i := 0; i < 200; i++ {
			x := g.Float64() * 0.3
			fast, slow := f.Transform(x), f.transformNaive(x)
			if math.Abs(fast-slow) > 1e-9 {
				t.Fatalf("sigma %v: fast %v vs naive %v at x=%v", sigma, fast, slow, x)
			}
		}
	}
}

func TestTransformUniformizes(t *testing.T) {
	// Train and evaluate on two fresh samples of the same skewed
	// distribution: the TRS of the held-out sample must be far more
	// uniform than the raw scores.
	train := sample(2000, 6, normTFLike)
	fresh := sample(2000, 7, normTFLike)
	sigma, _, _, err := SelectSigma(train, sample(500, 8, normTFLike), nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(train, sigma)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]float64, len(fresh))
	for i, x := range fresh {
		trs[i] = f.Transform(x)
	}
	rawVar := stats.VarianceFromUniform(fresh)
	trsVar := stats.VarianceFromUniform(trs)
	if trsVar > rawVar/20 {
		t.Fatalf("TRS variance %v not much below raw variance %v", trsVar, rawVar)
	}
	if trsVar > 1e-3 {
		t.Fatalf("TRS variance %v too large for a trained transform", trsVar)
	}
}

// discreteNormTF mimics real normalized-TF observations: small integer
// term frequencies over lognormal integer document lengths, so the
// score support is atomic and a small training sample covers only part
// of it. That discreteness is what creates the overfitting branch of
// the paper's Figure 9: with very narrow bells the transform becomes a
// staircase over the memorized training values and unseen control
// values clump onto its steps.
func discreteNormTF(g *stats.RNG) float64 {
	tf := 1
	for tf < 8 && g.Float64() < 0.45 {
		tf++
	}
	docLen := int(g.LogNormal(5.3, 0.7))
	if docLen < 30 {
		docLen = 30
	}
	if docLen > 3000 {
		docLen = 3000
	}
	return float64(tf) / float64(docLen)
}

func TestSelectSigmaCurveIsUShaped(t *testing.T) {
	// Figure 9: variance decreases with growing sigma, reaches a
	// minimum, then rises again as the transform memorizes the
	// training sample. A small per-term training sample (as real terms
	// have) against a large control set exposes both branches.
	train := sample(60, 9, discreteNormTF)
	control := sample(4000, 10, discreteNormTF)
	best, bestVar, curve, err := SelectSigma(train, control, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(DefaultSigmaGrid()) {
		t.Fatalf("curve has %d points, want %d", len(curve), len(DefaultSigmaGrid()))
	}
	// The over-smoothing end must be far worse than the optimum, the
	// memorization end clearly worse.
	if !(curve[0].Variance > 10*bestVar) {
		t.Fatalf("smallest sigma variance %v not far worse than best %v", curve[0].Variance, bestVar)
	}
	if !(curve[len(curve)-1].Variance > 1.3*bestVar) {
		t.Fatalf("largest sigma variance %v not worse than best %v (no overfitting branch)", curve[len(curve)-1].Variance, bestVar)
	}
	if best == curve[0].Sigma || best == curve[len(curve)-1].Sigma {
		t.Fatalf("optimal sigma %v sits on the grid edge", best)
	}
}

func TestSelectSigmaErrors(t *testing.T) {
	if _, _, _, err := SelectSigma(nil, []float64{1}, nil); !errors.Is(err, ErrNoTraining) {
		t.Error("nil train accepted")
	}
	if _, _, _, err := SelectSigma([]float64{1}, nil, nil); !errors.Is(err, ErrNoTraining) {
		t.Error("nil control accepted")
	}
}

func TestDefaultSigma(t *testing.T) {
	if got := DefaultSigma([]float64{0.5}); got <= 0 {
		t.Errorf("single point sigma %v", got)
	}
	if got := DefaultSigma([]float64{0.5, 0.5, 0.5}); got <= 0 {
		t.Errorf("zero range sigma %v", got)
	}
	xs := []float64{0, 0.25, 0.5, 0.75, 1.0}
	want := 2 * 4.0 / 1.0
	if got := DefaultSigma(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("DefaultSigma = %v, want %v", got, want)
	}
}

func TestTrainFallsBackOnSmallControl(t *testing.T) {
	train := sample(100, 11, normTFLike)
	f, err := Train(train, []float64{0.1}, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f.Sigma() != DefaultSigma(train) {
		t.Fatalf("sigma = %v, want DefaultSigma fallback %v", f.Sigma(), DefaultSigma(train))
	}
}

func TestDensityIntegratesToTransformDelta(t *testing.T) {
	f, err := New(sample(50, 12, normTFLike), 300)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric integral of Density over [a,b] should approximate
	// Transform(b)-Transform(a).
	a, b := 0.0, 0.25
	steps := 20000
	h := (b - a) / float64(steps)
	integral := 0.0
	for i := 0; i < steps; i++ {
		integral += f.Density(a+(float64(i)+0.5)*h) * h
	}
	want := f.Transform(b) - f.Transform(a)
	if math.Abs(integral-want) > 1e-3 {
		t.Fatalf("integral %v vs transform delta %v", integral, want)
	}
}

func TestECDFTransform(t *testing.T) {
	tr, err := NewECDFTransform([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Transform(0.05); got != 0 {
		t.Errorf("Transform(0.05) = %v", got)
	}
	if got := tr.Transform(0.2); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Transform(0.2) = %v", got)
	}
	if got := tr.Transform(1); got != 1 {
		t.Errorf("Transform(1) = %v", got)
	}
	if _, err := NewECDFTransform(nil); !errors.Is(err, ErrNoTraining) {
		t.Error("empty ECDF training accepted")
	}
}
