package rstf

import (
	"testing"

	"zerberr/internal/corpus"
	"zerberr/internal/stats"
)

func TestJitterStaysInRangeAndDeterministic(t *testing.T) {
	train := map[corpus.TermID][]float64{1: sample(200, 40, discreteNormTF)}
	s := TrainStore(train, nil, StoreConfig{FallbackSeed: 9, Jitter: 1e-2})
	if s.Jitter() != 1e-2 {
		t.Fatalf("Jitter() = %v", s.Jitter())
	}
	for doc := corpus.DocID(0); doc < 200; doc++ {
		a := s.TRS(1, doc, 0.01)
		b := s.TRS(1, doc, 0.01)
		if a != b {
			t.Fatal("jittered TRS not deterministic")
		}
		if a < 0 || a > 1 {
			t.Fatalf("jittered TRS %v outside [0,1]", a)
		}
	}
}

func TestJitterBreaksSharedAtoms(t *testing.T) {
	// Without jitter every element with the same score shares one TRS
	// (the fingerprint channel); with jitter they spread.
	train := map[corpus.TermID][]float64{1: sample(200, 41, discreteNormTF)}
	plain := TrainStore(train, nil, StoreConfig{FallbackSeed: 9})
	jit := TrainStore(train, nil, StoreConfig{FallbackSeed: 9, Jitter: 1e-3})
	seenPlain := map[float64]bool{}
	seenJit := map[float64]bool{}
	for doc := corpus.DocID(0); doc < 100; doc++ {
		seenPlain[plain.TRS(1, doc, 0.01)] = true
		seenJit[jit.TRS(1, doc, 0.01)] = true
	}
	if len(seenPlain) != 1 {
		t.Fatalf("unjittered store gave %d distinct TRS for one score", len(seenPlain))
	}
	if len(seenJit) < 90 {
		t.Fatalf("jittered store gave only %d distinct TRS values", len(seenJit))
	}
}

func TestJitterPreservesOrderBeyondWidth(t *testing.T) {
	train := map[corpus.TermID][]float64{1: sample(500, 42, discreteNormTF)}
	s := TrainStore(train, nil, StoreConfig{FallbackSeed: 9, Jitter: 1e-3})
	f := s.Get(1)
	// Pick score pairs whose un-jittered TRS gap exceeds the jitter
	// width; their jittered order must be preserved for any doc pair.
	g := stats.NewRNG(43)
	for i := 0; i < 200; i++ {
		x1 := 0.002 + 0.05*g.Float64()
		x2 := 0.002 + 0.05*g.Float64()
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if f.Transform(x2)-f.Transform(x1) <= 1e-3 {
			continue // within jitter tolerance: order may flip by design
		}
		d1 := corpus.DocID(g.Intn(1000))
		d2 := corpus.DocID(g.Intn(1000))
		if s.TRS(1, d1, x1) >= s.TRS(1, d2, x2) {
			t.Fatalf("jitter flipped a pair with TRS gap > jitter width (x1=%v x2=%v)", x1, x2)
		}
	}
}

func TestDirectSigmaReasonable(t *testing.T) {
	// The heuristic must land within the useful region: its achieved
	// control-set variance should be within a small factor of the
	// cross-validated optimum.
	train := sample(120, 44, discreteNormTF)
	control := sample(2000, 45, discreteNormTF)
	_, bestVar, _, err := SelectSigma(train, control, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := DirectSigma(train)
	if ds <= 0 {
		t.Fatalf("DirectSigma = %v", ds)
	}
	f, err := New(train, ds)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]float64, len(control))
	for i, x := range control {
		trs[i] = f.Transform(x)
	}
	got := stats.VarianceFromUniform(trs)
	if got > 5*bestVar {
		t.Fatalf("DirectSigma variance %v vs cross-validated optimum %v (factor %.1f)", got, bestVar, got/bestVar)
	}
}

func TestDirectSigmaDegenerate(t *testing.T) {
	if got := DirectSigma(nil); got <= 0 {
		t.Errorf("nil: %v", got)
	}
	if got := DirectSigma([]float64{0.5}); got <= 0 {
		t.Errorf("single: %v", got)
	}
	if got := DirectSigma([]float64{0.5, 0.5, 0.5, 0.5}); got <= 0 {
		t.Errorf("constant: %v", got)
	}
}
