package client

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"zerberr/internal/corpus"
	"zerberr/internal/rank"
	"zerberr/internal/server"
)

// ErrBadQuery reports a structurally invalid query: k <= 0 or an
// empty (or nil) term slice. Earlier API generations silently
// returned empty results for empty term slices; the sentinel makes
// the caller's bug visible instead.
var ErrBadQuery = errors.New("client: bad query")

// searchConfig collects the functional options of Search and
// SearchStream.
type searchConfig struct {
	initial int
	serial  bool
	strict  bool
	proved  bool
}

// SearchOption customizes one Search or SearchStream call.
type SearchOption func(*searchConfig)

// WithInitialResponse overrides the initial response size b of the
// Section 6.4 progressive protocol for this query. b <= 0 falls back
// to the client's configured default.
func WithInitialResponse(b int) SearchOption {
	return func(o *searchConfig) { o.initial = b }
}

// WithSerial runs the query over the serial v1 protocol: one
// round-trip per list request, each term's follow-up loop run to
// completion in turn. It is the compatibility path and the baseline
// the batched path's round-trip savings are measured against; results
// are identical either way.
func WithSerial() SearchOption {
	return func(o *searchConfig) { o.serial = true }
}

// WithStrictTopK makes this query provably exact, scanning until the
// list's TRS falls strictly below the k-th match's TRS (see
// Config.StrictTopK, which sets the per-client default).
func WithStrictTopK() SearchOption {
	return func(o *searchConfig) { o.strict = true }
}

// WithProof makes every round of this query verifiable: each
// sub-query requests a Merkle window proof and the response is
// verified — inclusion, adjacency, completeness and the exhausted
// flag, against a root pinned per (list, version) across the whole
// search — before anything is decrypted or ranked. A response failing
// verification aborts the search with ErrProofInvalid. Only the
// batched v2 path carries proofs; combining WithProof with WithSerial
// is ErrBadQuery.
func WithProof() SearchOption {
	return func(o *searchConfig) { o.proved = true }
}

// Snapshot is one progressive-search observation: the provisional
// top-k and the cumulative cost after a protocol round. Later
// snapshots refine earlier ones — documents can enter, leave or
// reorder as more posting elements arrive, and a document's
// accumulated score can shrink as well as grow (a better-scored round
// can push it out of one term's per-term top-k cut, dropping that
// term's contribution). Only the Final snapshot is authoritative.
type Snapshot struct {
	// Results is the top-k over everything decrypted so far, in final
	// ranking order (descending score, ties by ascending DocID).
	Results []rank.Result
	// Stats is the cumulative query cost up to and including this
	// round.
	Stats QueryStats
	// Final marks the last snapshot of the stream: the protocol has
	// proven no unseen element can change Results, which are
	// element-identical to what Search returns for the same query.
	Final bool
}

// Search answers a multi-term top-k query (Section 3.2: per-term
// top-k scores summed per document — IDF-free scoring, a deliberate
// confidentiality/accuracy trade-off). It is the single v3 query
// entrypoint, consolidating the former TopK / TopKWithInitial /
// Search / SearchSerial quartet behind functional options.
//
// By default all terms' follow-up loops run as one state machine over
// the batched v2 transport: each round issues a single QueryBatch
// covering every still-open list, so a T-term query costs
// max(per-term rounds) round-trips, not Σ per-term requests.
// WithSerial selects the one-request-per-list v1 path instead;
// results are identical either way.
//
// The context bounds the whole query: cancellation or a deadline is
// honored between rounds and aborts any in-flight round-trip on
// transports that perform I/O, returning the context's error.
func (c *Client) Search(ctx context.Context, terms []corpus.TermID, k int, opts ...SearchOption) ([]rank.Result, QueryStats, error) {
	var res []rank.Result
	var stats QueryStats
	// progressive=false skips the per-round provisional merge: only
	// the final snapshot is materialized, so the non-streaming path
	// costs one top-k merge like the pre-v3 entrypoints did.
	for snap, err := range c.searchStream(ctx, terms, k, false, opts) {
		if err != nil {
			return nil, snap.Stats, err
		}
		res, stats = snap.Results, snap.Stats
	}
	return res, stats, nil
}

// SearchStream runs the same query as Search but exposes the
// progressive protocol itself: the sequence yields a Snapshot after
// every round, so callers can render an evolving top-k instead of
// blocking on the final merge. The last snapshot has Final set and
// carries exactly Search's result.
//
// Breaking out of the range stops the query — no further follow-up
// round-trips are issued. On error the sequence yields one (Snapshot,
// error) pair — the snapshot carrying the cost accumulated so far —
// and ends; a canceled context surfaces as the context's error.
//
// The sequence is single-use and not safe for concurrent iteration.
func (c *Client) SearchStream(ctx context.Context, terms []corpus.TermID, k int, opts ...SearchOption) iter.Seq2[Snapshot, error] {
	return c.searchStream(ctx, terms, k, true, opts)
}

// searchStream is the shared driver behind Search and SearchStream.
// With progressive=false the per-round provisional merge is skipped
// and only the final snapshot is yielded — same protocol traffic,
// one merge instead of one per round.
func (c *Client) searchStream(ctx context.Context, terms []corpus.TermID, k int, progressive bool, opts []SearchOption) iter.Seq2[Snapshot, error] {
	var o searchConfig
	o.strict = c.cfg.StrictTopK
	for _, opt := range opts {
		opt(&o)
	}
	if o.initial <= 0 {
		o.initial = c.cfg.InitialResponse
	}
	return func(yield func(Snapshot, error) bool) {
		var total QueryStats
		if c.tokens == nil {
			yield(Snapshot{}, ErrNotLoggedIn)
			return
		}
		if k <= 0 {
			yield(Snapshot{}, fmt.Errorf("%w: k must be positive, got %d", ErrBadQuery, k))
			return
		}
		terms := uniqueTerms(terms)
		if len(terms) == 0 {
			yield(Snapshot{}, fmt.Errorf("%w: no query terms", ErrBadQuery))
			return
		}
		if o.serial && o.proved {
			yield(Snapshot{}, fmt.Errorf("%w: WithProof needs the batched path (drop WithSerial)", ErrBadQuery))
			return
		}
		scans := make([]*termScan, len(terms))
		for i, term := range terms {
			scans[i] = c.newTermScan(term, k, o.initial, o.strict)
		}
		if o.serial {
			c.streamSerial(ctx, scans, k, progressive, &total, yield)
		} else {
			c.streamBatched(ctx, scans, k, progressive, o.proved, &total, yield)
		}
	}
}

// streamBatched drives every open scan through one QueryBatch per
// round, yielding a snapshot after each round (progressive) or only
// once settled, until all scans settle or the consumer breaks. With
// proved set every sub-query requests a window proof and each
// response is verified before absorb sees it.
func (c *Client) streamBatched(ctx context.Context, scans []*termScan, k int, progressive, proved bool, total *QueryStats, yield func(Snapshot, error) bool) {
	var ps *proofState
	if proved {
		ps = c.newProofState()
	}
	for {
		if err := ctx.Err(); err != nil {
			yield(Snapshot{Stats: *total}, err)
			return
		}
		var queries []server.ListQuery
		var open []int
		for i, s := range scans {
			if !s.done {
				q := s.next()
				q.Proof = proved
				queries = append(queries, q)
				open = append(open, i)
			}
		}
		if len(queries) == 0 {
			// Only reachable if every scan settled on the previous
			// round's snapshot — that snapshot already carried Final.
			return
		}
		resps, wireBytes, rounds, err := c.queryBatchChunked(ctx, queries)
		if err != nil {
			yield(Snapshot{Stats: *total}, err)
			return
		}
		total.Rounds += rounds
		total.Requests += len(queries)
		roundElems := 0
		for j, resp := range resps {
			if ps != nil {
				if err := ps.verify(queries[j], resp); err != nil {
					yield(Snapshot{Stats: *total}, err)
					return
				}
			}
			roundElems += len(resp.Elements)
			if err := scans[open[j]].absorb(resp, c.openElement); err != nil {
				yield(Snapshot{Stats: *total}, err)
				return
			}
		}
		total.Elements += roundElems
		if wireBytes > 0 {
			total.Bytes += wireBytes
		} else {
			total.Bytes += roundElems * c.cfg.Codec.WireSize()
		}
		if !emitRound(scans, k, progressive, total, yield) {
			return
		}
	}
}

// streamSerial is streamBatched over the v1 path: each term's scan
// runs to completion in turn, one round-trip per list request.
func (c *Client) streamSerial(ctx context.Context, scans []*termScan, k int, progressive bool, total *QueryStats, yield func(Snapshot, error) bool) {
	for _, scan := range scans {
		for !scan.done {
			if err := ctx.Err(); err != nil {
				yield(Snapshot{Stats: *total}, err)
				return
			}
			resp, wireBytes, err := c.t.Query(ctx, c.tokens, scan.list, scan.offset, scan.batch)
			if err != nil {
				yield(Snapshot{Stats: *total}, err)
				return
			}
			total.Requests++
			total.Rounds++
			total.Elements += len(resp.Elements)
			if wireBytes > 0 {
				total.Bytes += wireBytes
			} else {
				total.Bytes += len(resp.Elements) * c.cfg.Codec.WireSize()
			}
			if err := scan.absorb(resp, c.openElement); err != nil {
				yield(Snapshot{Stats: *total}, err)
				return
			}
			if !emitRound(scans, k, progressive, total, yield) {
				return
			}
		}
	}
}

// emitRound closes one protocol round: in progressive mode it yields
// a snapshot every round; otherwise only the final one is built and
// yielded. Returns whether the protocol should continue.
func emitRound(scans []*termScan, k int, progressive bool, total *QueryStats, yield func(Snapshot, error) bool) bool {
	final := true
	for _, s := range scans {
		if !s.done {
			final = false
			break
		}
	}
	if !progressive && !final {
		return true
	}
	snap, _ := snapshot(scans, k, total)
	return yield(snap, nil) && !final
}

// snapshot merges every scan's matches so far into the provisional
// top-k (the Equation 3 outer sum over query terms) and reports
// whether the protocol has settled: all scans done means no unseen
// element can change the result, making this snapshot final. Stats
// are copied, so later rounds don't mutate yielded snapshots.
func snapshot(scans []*termScan, k int, total *QueryStats) (Snapshot, bool) {
	acc := make(map[corpus.DocID]float64)
	done, exhausted := true, true
	for _, s := range scans {
		if !s.done {
			done = false
		}
		if !s.exhausted {
			exhausted = false
		}
		rank.Accumulate(acc, s.results())
	}
	snap := Snapshot{Results: rank.TopK(acc, k), Stats: *total, Final: done}
	if done {
		snap.Stats.Exhausted = exhausted
		total.Exhausted = exhausted
	}
	return snap, done
}
