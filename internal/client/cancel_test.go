package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/server"
)

// multiRoundQuery picks a term set and k that force the progressive
// protocol through several rounds with b=1.
func multiRoundQuery(h *harness) []corpus.TermID {
	terms := h.c.TermsByDF()
	return []corpus.TermID{terms[3], terms[8]}
}

// TestSearchCancelMidFlightHTTP drives a Search over a real HTTP
// round-trip whose server stalls, cancels the context mid-request and
// requires the call to return context.Canceled promptly — the v3
// guarantee that no slow server can hold a client past its context.
func TestSearchCancelMidFlightHTTP(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 31)
	inner := h.srv.Handler()
	arrived := make(chan struct{}, 16)
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v2/query") {
			// Drain the body so the server's background read can
			// observe the client hanging up and cancel r.Context().
			io.Copy(io.Discard, r.Body)
			arrived <- struct{}{}
			select {
			case <-r.Context().Done():
			case <-release: // test teardown safety valve
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	defer close(release)

	remote, err := New(HTTP{BaseURL: ts.URL}, Config{Plan: h.plan, Store: h.store, Keys: h.keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := remote.Search(ctx, multiRoundQuery(h), 5)
		done <- err
	}()
	select {
	case <-arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached the server")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Search returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Search did not return promptly after cancel")
	}
}

// TestSearchDeadlineHTTP is the deadline variant: a context that
// expires while the server stalls surfaces context.DeadlineExceeded.
func TestSearchDeadlineHTTP(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 32)
	inner := h.srv.Handler()
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v2/query") {
			io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
			case <-release:
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	defer close(release)

	remote, err := New(HTTP{BaseURL: ts.URL}, Config{Plan: h.plan, Store: h.store, Keys: h.keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = remote.Search(ctx, multiRoundQuery(h), 5)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Search returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline honored only after %v", elapsed)
	}
}

// countingTransport counts batched query round-trips.
type countingTransport struct {
	Transport
	batches atomic.Int64
}

func (c *countingTransport) QueryBatch(ctx context.Context, toks []crypt.Token, queries []server.ListQuery) (BatchQueryResult, error) {
	c.batches.Add(1)
	return c.Transport.QueryBatch(ctx, toks, queries)
}

// newCountingClient rebuilds the harness client over a
// round-counting transport.
func newCountingClient(t *testing.T, h *harness) (*Client, *countingTransport) {
	t.Helper()
	ct := &countingTransport{Transport: Local{S: h.srv}}
	cl, err := New(ct, Config{Plan: h.plan, Store: h.store, Keys: h.keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	return cl, ct
}

// TestSearchStreamEarlyBreakStopsRounds proves that breaking out of a
// SearchStream range stops issuing follow-up round-trips: the
// transport sees exactly one batched query, although the same search
// run to completion needs several.
func TestSearchStreamEarlyBreakStopsRounds(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 33)
	terms := multiRoundQuery(h)
	cl, ct := newCountingClient(t, h)

	if _, _, err := cl.Search(context.Background(), terms, 5, WithInitialResponse(1)); err != nil {
		t.Fatal(err)
	}
	full := ct.batches.Load()
	if full < 2 {
		t.Fatalf("query settled in %d rounds; need a multi-round query to test early exit", full)
	}

	ct.batches.Store(0)
	for snap, err := range cl.SearchStream(context.Background(), terms, 5, WithInitialResponse(1)) {
		if err != nil {
			t.Fatal(err)
		}
		if snap.Final {
			t.Fatal("first snapshot already final; need a multi-round query")
		}
		break
	}
	if got := ct.batches.Load(); got != 1 {
		t.Fatalf("early break issued %d batched rounds, want exactly 1 (full query takes %d)", got, full)
	}
}

// TestSearchStreamMatchesSearch is the acceptance check of the
// streaming surface: a multi-round query yields at least two
// snapshots, cost counters grow monotonically, and the final snapshot
// is element-identical to Search's result.
func TestSearchStreamMatchesSearch(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 34)
	terms := multiRoundQuery(h)

	want, wantStats, err := h.cl.Search(context.Background(), terms, 5, WithInitialResponse(1))
	if err != nil {
		t.Fatal(err)
	}

	var snaps []Snapshot
	for snap, err := range h.cl.SearchStream(context.Background(), terms, 5, WithInitialResponse(1)) {
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}
	if len(snaps) < 2 {
		t.Fatalf("stream yielded %d snapshots, want >= 2 on a multi-round query", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Stats.Elements < snaps[i-1].Stats.Elements || snaps[i].Stats.Rounds <= snaps[i-1].Stats.Rounds {
			t.Fatalf("snapshot %d stats not monotone: %+v -> %+v", i, snaps[i-1].Stats, snaps[i].Stats)
		}
	}
	for i, snap := range snaps {
		if snap.Final != (i == len(snaps)-1) {
			t.Fatalf("snapshot %d Final = %v", i, snap.Final)
		}
	}
	final := snaps[len(snaps)-1]
	if len(final.Results) != len(want) {
		t.Fatalf("final snapshot has %d results, Search returned %d", len(final.Results), len(want))
	}
	for i := range want {
		if final.Results[i] != want[i] {
			t.Fatalf("final snapshot rank %d = %+v, Search returned %+v", i, final.Results[i], want[i])
		}
	}
	if final.Stats != wantStats {
		t.Fatalf("final snapshot stats %+v, Search stats %+v", final.Stats, wantStats)
	}
}

// TestSearchStreamSerialMatchesBatched runs the stream over the
// serial v1 path and requires the same final result.
func TestSearchStreamSerialMatchesBatched(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 35)
	terms := multiRoundQuery(h)
	want, _, err := h.cl.Search(context.Background(), terms, 5, WithInitialResponse(1))
	if err != nil {
		t.Fatal(err)
	}
	var last Snapshot
	n := 0
	for snap, err := range h.cl.SearchStream(context.Background(), terms, 5, WithSerial(), WithInitialResponse(1)) {
		if err != nil {
			t.Fatal(err)
		}
		last = snap
		n++
	}
	if n < 2 || !last.Final {
		t.Fatalf("serial stream yielded %d snapshots (final=%v)", n, last.Final)
	}
	if len(last.Results) != len(want) {
		t.Fatalf("serial final has %d results, batched %d", len(last.Results), len(want))
	}
	for i := range want {
		if last.Results[i] != want[i] {
			t.Fatalf("serial final rank %d = %+v, batched %+v", i, last.Results[i], want[i])
		}
	}
}

// TestSearchBadQuery pins the ErrBadQuery contract: k <= 0 and empty
// or nil term slices fail loudly instead of returning empty results.
func TestSearchBadQuery(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 36)
	term := h.c.TermsByDF()[0]
	cases := []struct {
		name  string
		terms []corpus.TermID
		k     int
	}{
		{"k zero", []corpus.TermID{term}, 0},
		{"k negative", []corpus.TermID{term}, -3},
		{"nil terms", nil, 10},
		{"empty terms", []corpus.TermID{}, 10},
	}
	for _, tc := range cases {
		if _, _, err := h.cl.Search(context.Background(), tc.terms, tc.k); !errors.Is(err, ErrBadQuery) {
			t.Errorf("%s: Search err = %v, want ErrBadQuery", tc.name, err)
		}
	}
	if _, _, err := h.cl.Search(context.Background(), []corpus.TermID{term}, 0, WithSerial()); !errors.Is(err, ErrBadQuery) {
		t.Errorf("TopK k=0 err = %v, want ErrBadQuery", err)
	}
	if _, _, err := h.cl.Search(context.Background(), nil, 10, WithSerial()); !errors.Is(err, ErrBadQuery) {
		t.Errorf("SearchSerial nil terms err = %v, want ErrBadQuery", err)
	}
}

// TestSearchPreCanceledContext verifies both protocol paths check the
// context before any round-trip.
func TestSearchPreCanceledContext(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 37)
	cl, ct := newCountingClient(t, h)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range [][]SearchOption{nil, {WithSerial()}} {
		if _, _, err := cl.Search(ctx, multiRoundQuery(h), 5, opts...); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-canceled Search err = %v, want context.Canceled", err)
		}
	}
	if got := ct.batches.Load(); got != 0 {
		t.Fatalf("pre-canceled search still issued %d round-trips", got)
	}
}
