package client

// Verified search: the client-side half of the audit-on-demand proof
// protocol. With WithProof every batched round asks the server for
// Merkle window proofs and verifies each response before a single
// element is decrypted or absorbed: inclusion (every element sits at
// its claimed committed position), adjacency (nothing was withheld
// inside or around the window) and the exhausted flag all bind to one
// list root per (list, version). Roots are pinned across the rounds
// of one search, so a server cannot commit to two different states
// under the same version without being caught (equivocation).
//
// What the root itself is bound to remains out of band — a server
// whose committed state simply is wrong (stale, selectively indexed)
// proves that state honestly. Proofs reduce the trust surface to one
// hash per list version; replicas cross-check it (internal/replica)
// and `zerber verify` audits whole windows against it.

import (
	"errors"
	"fmt"

	"zerberr/internal/proof"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// ErrProofInvalid reports that a server response failed Merkle window
// verification under WithProof: a forged, reordered, truncated or
// withheld window, a proof that does not bind to its advertised root,
// or a root that changed under a pinned (list, version).
var ErrProofInvalid = errors.New("client: response failed proof verification")

// pinKey pins one list root for the duration of a search: the same
// (list, version) must always commit to the same root.
type pinKey struct {
	list    zerber.ListID
	version uint64
}

// proofState is the per-search verification state of a proved search.
type proofState struct {
	allowed map[int]bool
	pins    map[pinKey]proof.Hash
}

// newProofState captures the client's view (its token groups) for
// VerifyWindow and an empty pin table.
func (c *Client) newProofState() *proofState {
	allowed := make(map[int]bool, len(c.byGrp))
	for g := range c.byGrp {
		allowed[g] = true
	}
	return &proofState{allowed: allowed, pins: make(map[pinKey]proof.Hash)}
}

// verify checks one sub-query response against its proof and the pin
// table. Responses reach it before absorb sees them, so a tampered
// window never contributes to results.
func (ps *proofState) verify(q server.ListQuery, resp server.QueryResponse) error {
	elems := make([]proof.WindowElement, len(resp.Elements))
	for i, el := range resp.Elements {
		elems[i] = proof.WindowElement{TRS: el.TRS, Sealed: el.Sealed, Group: el.Group}
	}
	if err := proof.VerifyWindow(resp.Proof, ps.allowed, q.Offset, q.Count, elems, resp.Exhausted, resp.Version); err != nil {
		return fmt.Errorf("%w: list %d: %v", ErrProofInvalid, q.List, err)
	}
	key := pinKey{list: q.List, version: resp.Version}
	if pinned, ok := ps.pins[key]; ok {
		if pinned != resp.Proof.Root {
			return fmt.Errorf("%w: list %d version %d committed two different roots across rounds", ErrProofInvalid, q.List, resp.Version)
		}
		return nil
	}
	ps.pins[key] = resp.Proof.Root
	return nil
}
