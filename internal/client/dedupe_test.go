package client

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
)

// Regression: a query repeating a term must score it once. Each
// duplicate used to run its own scan and rank.Accumulate summed the
// same per-term contribution per copy, so "foo foo bar" weighted foo
// double — and paid double the requests.
func TestSearchDeduplicatesTerms(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 44)
	terms := h.c.TermsByDF()
	uniq := []corpus.TermID{terms[0], terms[30]}
	dup := []corpus.TermID{terms[0], terms[0], terms[30], terms[0], terms[30]}
	for _, tc := range []struct {
		name string
		run  func([]corpus.TermID, int) (interface{}, QueryStats, error)
	}{
		{"batched", func(q []corpus.TermID, k int) (interface{}, QueryStats, error) {
			r, st, err := h.cl.Search(context.Background(), q, k)
			return r, st, err
		}},
		{"serial", func(q []corpus.TermID, k int) (interface{}, QueryStats, error) {
			r, st, err := h.cl.Search(context.Background(), q, k, WithSerial())
			return r, st, err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wantRes, wantStats, err := tc.run(uniq, 10)
			if err != nil {
				t.Fatal(err)
			}
			gotRes, gotStats, err := tc.run(dup, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Fatalf("duplicate terms changed results:\n got %+v\nwant %+v", gotRes, wantRes)
			}
			if gotStats != wantStats {
				t.Fatalf("duplicate terms changed cost: got %+v, want %+v", gotStats, wantStats)
			}
		})
	}
}

// The serial v1 path must report measured wire bytes over HTTP, like
// the batched path does, instead of always falling back to the codec
// estimate — otherwise the serial-vs-batched bandwidth comparison is
// apples-to-oranges. In process there is no wire, so the estimate
// remains.
func TestSerialQueryBytesMeasuredOverHTTP(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 45)
	term := h.c.TermsByDF()[0]

	_, localStats, err := h.cl.Search(context.Background(), []corpus.TermID{term}, 10, WithSerial())
	if err != nil {
		t.Fatal(err)
	}
	if localStats.Elements == 0 {
		t.Fatal("query returned no elements")
	}
	estimate := localStats.Elements * h.cl.Codec().WireSize()
	if localStats.Bytes != estimate {
		t.Fatalf("in-process Bytes = %d, want codec estimate %d", localStats.Bytes, estimate)
	}

	ts := httptest.NewServer(h.srv.Handler())
	defer ts.Close()
	remote, err := New(HTTP{BaseURL: ts.URL}, Config{Plan: h.plan, Store: h.store, Keys: h.keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	_, httpStats, err := remote.Search(context.Background(), []corpus.TermID{term}, 10, WithSerial())
	if err != nil {
		t.Fatal(err)
	}
	if httpStats.Elements != localStats.Elements {
		t.Fatalf("HTTP returned %d elements, in-process %d", httpStats.Elements, localStats.Elements)
	}
	// Measured JSON bodies include framing and base64 expansion, so
	// the real figure is strictly larger than the estimate the serial
	// path used to report unconditionally.
	if httpStats.Bytes <= estimate {
		t.Fatalf("HTTP Bytes = %d, want measured value > codec estimate %d", httpStats.Bytes, estimate)
	}
}
