package client

// Tamper suite for verified search: a fault-injecting store.Backend
// sits under a real server and mutates proved query results in every
// way a dishonest shard could. WithProof must turn each class into
// ErrProofInvalid before anything is decrypted; unproven search — by
// design — swallows the silent classes without noticing.

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/proof"
	"zerberr/internal/rstf"
	"zerberr/internal/server"
	"zerberr/internal/store"
	"zerberr/internal/zerber"
)

// tamperBackend wraps a real Backend and mutates query results on the
// way out — the model of a compromised shard that still holds the
// honest committed state.
type tamperBackend struct {
	store.Backend
	mu     sync.Mutex
	proved func(*store.QueryResult)
	plain  func(*store.QueryResult)
}

func (b *tamperBackend) set(proved, plain func(*store.QueryResult)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.proved, b.plain = proved, plain
}

func (b *tamperBackend) QueryProved(list zerber.ListID, allowed map[int]bool, offset, count int) (store.QueryResult, error) {
	res, err := b.Backend.QueryProved(list, allowed, offset, count)
	b.mu.Lock()
	f := b.proved
	b.mu.Unlock()
	if err == nil && f != nil {
		res.Elements = append([]store.Element{}, res.Elements...)
		f(&res)
	}
	return res, err
}

func (b *tamperBackend) Query(list zerber.ListID, allowed map[int]bool, offset, count int) (store.QueryResult, error) {
	res, err := b.Backend.Query(list, allowed, offset, count)
	b.mu.Lock()
	f := b.plain
	b.mu.Unlock()
	if err == nil && f != nil {
		res.Elements = append([]store.Element{}, res.Elements...)
		f(&res)
	}
	return res, err
}

// newTamperHarness is newHarness over a tamperBackend, with the
// injector handle returned alongside.
func newTamperHarness(t *testing.T, seed uint64) (*harness, *tamperBackend) {
	t.Helper()
	p := corpus.ProfileStudIP()
	p.NumDocs = 160
	p.VocabSize = 1500
	p.Topics = 3
	c := corpus.Generate(p, seed)
	split := corpus.NewSplit(c, 0.3, 0.33, seed)
	st := rstf.TrainStore(
		corpus.TrainingScores(c, split.Train),
		corpus.TrainingScores(c, split.Control),
		rstf.StoreConfig{FallbackSeed: seed},
	)
	plan, err := zerber.BFM(zerber.FromCorpus(c), 32)
	if err != nil {
		t.Fatal(err)
	}
	tb := &tamperBackend{Backend: store.NewMemory()}
	srv := server.NewWithBackend([]byte("tamper-secret"), time.Hour, tb)
	keys := map[int]crypt.GroupKey{}
	groups := make([]int, c.Groups)
	for g := 0; g < c.Groups; g++ {
		keys[g] = crypt.KeyFromPassphrase("group-" + string(rune('a'+g)))
		groups[g] = g
	}
	srv.RegisterUser("writer", groups...)
	cl, err := New(Local{S: srv}, Config{Plan: plan, Store: st, Codec: crypt.GCMCodec{}, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Docs {
		if err := cl.IndexDocument(context.Background(), d, d.Group); err != nil {
			t.Fatalf("indexing doc %d: %v", d.ID, err)
		}
	}
	return &harness{c: c, plan: plan, store: st, srv: srv, keys: keys, cl: cl}, tb
}

func TestWithProofMatchesUnproven(t *testing.T) {
	h, _ := newTamperHarness(t, 21)
	terms := h.c.TermsByDF()
	query := []corpus.TermID{terms[0], terms[4], terms[11]}
	plain, _, err := h.cl.Search(context.Background(), query, 10)
	if err != nil {
		t.Fatal(err)
	}
	proved, stats, err := h.cl.Search(context.Background(), query, 10, WithProof())
	if err != nil {
		t.Fatalf("proved search: %v", err)
	}
	if !reflect.DeepEqual(plain, proved) {
		t.Fatalf("proved results differ from plain:\nplain  %v\nproved %v", plain, proved)
	}
	if stats.Requests < len(query) {
		t.Fatalf("proved search recorded %d requests for %d terms", stats.Requests, len(query))
	}
}

func TestWithProofSerialRejected(t *testing.T) {
	h, _ := newTamperHarness(t, 22)
	_, _, err := h.cl.Search(context.Background(), []corpus.TermID{h.c.TermsByDF()[0]}, 5, WithProof(), WithSerial())
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("WithProof+WithSerial: got %v, want ErrBadQuery", err)
	}
}

// TestWithProofDetectsTampering is the detection matrix: every class
// of server misbehavior must surface as ErrProofInvalid. Each class
// queries its own term so one class's poisoned cache entries cannot
// mask another's mutation.
func TestWithProofDetectsTampering(t *testing.T) {
	h, tb := newTamperHarness(t, 23)
	terms := h.c.TermsByDF()
	classes := []struct {
		name string
		f    func(*store.QueryResult)
	}{
		{"dropped element", func(r *store.QueryResult) {
			if len(r.Elements) > 0 {
				r.Elements = r.Elements[:len(r.Elements)-1]
			}
		}},
		{"reordered window", func(r *store.QueryResult) {
			if len(r.Elements) >= 2 {
				r.Elements[0], r.Elements[1] = r.Elements[1], r.Elements[0]
			}
		}},
		{"forged payload", func(r *store.QueryResult) {
			if len(r.Elements) > 0 {
				s := append([]byte{}, r.Elements[0].Sealed...)
				s[0] ^= 1
				r.Elements[0].Sealed = s
			}
		}},
		{"forged TRS", func(r *store.QueryResult) {
			if len(r.Elements) > 0 {
				r.Elements[0].TRS += 0.125
			}
		}},
		{"forged exhausted flag", func(r *store.QueryResult) {
			r.Exhausted = !r.Exhausted
		}},
		{"forged version", func(r *store.QueryResult) {
			r.Version++
		}},
		{"stripped proof", func(r *store.QueryResult) {
			r.Proof = nil
		}},
		{"forged root", func(r *store.QueryResult) {
			if r.Proof != nil {
				w := *r.Proof
				w.Root[0] ^= 1
				r.Proof = &w
			}
		}},
	}
	if len(terms) < len(classes) {
		t.Fatal("corpus too small for the class matrix")
	}
	for i, tc := range classes {
		t.Run(tc.name, func(t *testing.T) {
			tb.set(tc.f, nil)
			defer tb.set(nil, nil)
			_, _, err := h.cl.Search(context.Background(), []corpus.TermID{terms[i]}, 5, WithProof())
			if err == nil {
				t.Fatal("tampered window accepted")
			}
			if !errors.Is(err, ErrProofInvalid) {
				t.Fatalf("got %v, want ErrProofInvalid", err)
			}
		})
	}
	// With injection off again the same terms verify cleanly — the
	// backend state itself was never corrupted.
	for i := range classes {
		if _, _, err := h.cl.Search(context.Background(), []corpus.TermID{terms[i]}, 5, WithProof()); err != nil {
			t.Fatalf("honest search after class %d still failing: %v", i, err)
		}
	}
}

// TestUnprovenSearchSilentOnTamper pins down what proofs buy: the
// same element-dropping server that WithProof rejects is answered
// without any error by an unproven search — it simply returns wrong
// results.
func TestUnprovenSearchSilentOnTamper(t *testing.T) {
	h, tb := newTamperHarness(t, 24)
	terms := h.c.TermsByDF()
	term := terms[len(terms)-1] // rare term: single exhausted round
	df := h.c.DF(term)
	if df < 2 {
		term = terms[len(terms)/2]
		df = h.c.DF(term)
	}
	drop := func(r *store.QueryResult) {
		if r.Exhausted && len(r.Elements) > 0 {
			r.Elements = r.Elements[:len(r.Elements)-1]
		}
	}
	tb.set(drop, drop)
	defer tb.set(nil, nil)
	got, _, err := h.cl.Search(context.Background(), []corpus.TermID{term}, df+10, WithInitialResponse(df+10))
	if err != nil {
		t.Fatalf("unproven search over tampering server errored: %v", err)
	}
	if len(got) >= df {
		t.Fatalf("drop injector inert: %d results, df %d", len(got), df)
	}
	if _, _, err := h.cl.Search(context.Background(), []corpus.TermID{term}, df+10, WithInitialResponse(df+10), WithProof()); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("proved search over the same server: got %v, want ErrProofInvalid", err)
	}
}

func TestWithProofHTTPEndToEnd(t *testing.T) {
	h, _ := newTamperHarness(t, 25)
	ts := httptest.NewServer(h.srv.Handler())
	defer ts.Close()
	remote, err := New(HTTP{BaseURL: ts.URL}, Config{Plan: h.plan, Store: h.store, Keys: h.keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	terms := h.c.TermsByDF()
	query := []corpus.TermID{terms[1], terms[6]}
	plain, _, err := remote.Search(context.Background(), query, 8)
	if err != nil {
		t.Fatal(err)
	}
	proved, _, err := remote.Search(context.Background(), query, 8, WithProof())
	if err != nil {
		t.Fatalf("proved search over HTTP: %v", err)
	}
	if !reflect.DeepEqual(plain, proved) {
		t.Fatal("proved HTTP results differ from plain")
	}
}

// miniWindow commits a single-group list holding exactly els (already
// rank-sorted) and returns the full-window proof for it.
func miniWindow(version uint64, els []server.StoredElement) *proof.Window {
	leaves := make([]proof.Hash, len(els))
	for i, e := range els {
		leaves[i] = proof.LeafHash(e.TRS, e.Sealed)
	}
	root := proof.TreeRoot(leaves)
	gw := proof.GroupWindow{Group: 1, Count: len(els), Root: &root, Start: 0, End: len(els)}
	gw.Path = proof.RangeProof(leaves, 0, len(els))
	content := proof.ContentRoot([]proof.HeaderEntry{{Group: 1, HH: proof.HeaderHash(1, len(els), root)}})
	return &proof.Window{
		Version: version,
		Root:    proof.ListRoot(version, content),
		Groups:  []proof.GroupWindow{gw},
	}
}

// TestProofStatePinsRoots is the equivocation check: two internally
// consistent commitments to different content under the same (list,
// version) must be rejected on the second sighting.
func TestProofStatePinsRoots(t *testing.T) {
	ps := &proofState{allowed: map[int]bool{1: true}, pins: map[pinKey]proof.Hash{}}
	q := server.ListQuery{List: 7, Offset: 0, Count: 10, Proof: true}
	elsA := []server.StoredElement{
		{Sealed: []byte("x1"), TRS: 3, Group: 1},
		{Sealed: []byte("x2"), TRS: 2, Group: 1},
	}
	respA := server.QueryResponse{Elements: elsA, Exhausted: true, Version: 42, Proof: miniWindow(42, elsA)}
	if err := ps.verify(q, respA); err != nil {
		t.Fatalf("first honest window: %v", err)
	}
	// Re-seeing the identical commitment is fine.
	if err := ps.verify(q, respA); err != nil {
		t.Fatalf("repeat of pinned window: %v", err)
	}
	elsB := []server.StoredElement{
		{Sealed: []byte("y1"), TRS: 9, Group: 1},
	}
	respB := server.QueryResponse{Elements: elsB, Exhausted: true, Version: 42, Proof: miniWindow(42, elsB)}
	if err := ps.verify(q, respB); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("equivocating window: got %v, want ErrProofInvalid", err)
	}
	// A different version is a new pin, not equivocation.
	respC := server.QueryResponse{Elements: elsB, Exhausted: true, Version: 43, Proof: miniWindow(43, elsB)}
	if err := ps.verify(q, respC); err != nil {
		t.Fatalf("new version rejected: %v", err)
	}
}
