package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"zerberr/internal/crypt"
	"zerberr/internal/server"
)

func TestRetryDelayHonorsHintAndCap(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	if d := p.delay(0, 0); d <= 0 || d > 10*time.Millisecond {
		t.Fatalf("delay(0) = %v, want (0, 10ms]", d)
	}
	// A server hint above the computed backoff wins...
	if d := p.delay(0, 50*time.Millisecond); d != 50*time.Millisecond {
		t.Fatalf("hinted delay = %v, want 50ms", d)
	}
	// ...but never past the cap.
	if d := p.delay(0, 10*time.Second); d != 100*time.Millisecond {
		t.Fatalf("capped hinted delay = %v, want 100ms", d)
	}
	// Deep retries saturate at the cap instead of overflowing.
	if d := p.delay(40, 0); d <= 0 || d > 100*time.Millisecond {
		t.Fatalf("delay(40) = %v, want (0, 100ms]", d)
	}
}

func TestRetryAfterParsing(t *testing.T) {
	h := http.Header{}
	if d := retryAfter(h); d != 0 {
		t.Fatalf("absent header: %v", d)
	}
	h.Set("Retry-After", "3")
	if d := retryAfter(h); d != 3*time.Second {
		t.Fatalf("delta-seconds: %v", d)
	}
	h.Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
	if d := retryAfter(h); d <= 0 || d > 2*time.Second {
		t.Fatalf("http-date: %v", d)
	}
	h.Set("Retry-After", "soon")
	if d := retryAfter(h); d != 0 {
		t.Fatalf("garbage: %v", d)
	}
}

// flakyServer answers every request with `status` (and a Retry-After
// of 0 seconds, keeping tests fast) until `failures` requests have
// been served, then delegates to a healthy in-process server.
func flakyServer(t *testing.T, failures int, status int) (*httptest.Server, *server.Server, *atomic.Int64) {
	t.Helper()
	s := server.New([]byte("retry-secret"), time.Hour)
	s.RegisterUser("alice", 0)
	inner := s.Handler()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= int64(failures) {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(server.ErrorV2{Code: server.CodeOverloaded, Error: "injected"})
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, s, &attempts
}

func fastRetry(n int) *RetryPolicy {
	return &RetryPolicy{MaxRetries: n, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestRetry429Success asserts the transport rides out rate-limit
// rejections — on idempotent and on mutating operations alike, since
// admission refuses before execution.
func TestRetry429Success(t *testing.T) {
	ts, _, attempts := flakyServer(t, 2, http.StatusTooManyRequests)
	h := HTTP{BaseURL: ts.URL, Retry: fastRetry(3)}
	toks, err := h.Login(context.Background(), "alice")
	if err != nil {
		t.Fatalf("login through 429s: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	attempts.Store(0) // rewind: the next op sees two failures again
	if err := h.InsertBatch(context.Background(), toks[0], []server.InsertOp{
		{List: 7, Element: server.StoredElement{Sealed: []byte{1, 2, 3}, Group: 0}},
	}); err != nil {
		t.Fatalf("mutation through 429s: %v", err)
	}
}

// TestRetry5xxIdempotentOnly asserts the idempotency split: a 500
// retries reads but fails mutations fast.
func TestRetry5xxIdempotentOnly(t *testing.T) {
	ts, s, attempts := flakyServer(t, 2, http.StatusInternalServerError)
	s.RegisterUser("bob", 0)
	h := HTTP{BaseURL: ts.URL, Retry: fastRetry(3)}
	if _, err := h.Login(context.Background(), "alice"); err != nil {
		t.Fatalf("idempotent op through 500s: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}

	toks, err := h.Login(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	attempts.Store(-3) // everything fails from here
	err = h.InsertBatch(context.Background(), toks[0], []server.InsertOp{
		{List: 7, Element: server.StoredElement{Sealed: []byte{1}, Group: 0}},
	})
	if err == nil {
		t.Fatal("mutation through 500 must fail")
	}
	if got := attempts.Load(); got != -2 {
		t.Fatalf("mutation was attempted %d times, want exactly 1", got+3)
	}
}

// TestRetryNonRetryable4xxFastFail asserts application rejections are
// not retried and keep their sentinel identity.
func TestRetryNonRetryable4xxFastFail(t *testing.T) {
	ts, _, attempts := flakyServer(t, 0, 0)
	h := HTTP{BaseURL: ts.URL, Retry: fastRetry(5)}
	toks, err := h.Login(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	attempts.Store(0)
	_, err = h.QueryBatch(context.Background(), toks, []server.ListQuery{{List: 999, Count: 5}})
	if !errors.Is(err, server.ErrUnknownList) {
		t.Fatalf("err = %v, want ErrUnknownList", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on 404)", got)
	}
}

// TestRetryCtxCancelMidBackoff cancels the caller's context while the
// transport sleeps on a long server hint; the call must return the
// context error promptly instead of finishing the sleep.
func TestRetryCtxCancelMidBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.ErrorV2{Code: server.CodeOverloaded, Error: "always down"})
	}))
	defer ts.Close()
	h := HTTP{BaseURL: ts.URL, Retry: &RetryPolicy{MaxRetries: 3, MaxDelay: time.Minute}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := h.Login(ctx, "alice")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("returned only after %v; the backoff sleep ignored cancellation", elapsed)
	}
}

// TestSearchSurvivesTransient503 is the end-to-end self-healing check:
// a progressive search over HTTP keeps succeeding while the server
// injects transient 503s on query rounds, and its results match the
// in-process search exactly.
func TestSearchSurvivesTransient503(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 77)
	inner := h.srv.Handler()
	var queries atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Every other query round fails once before succeeding.
		if strings.HasPrefix(r.URL.Path, "/v2/query") && queries.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorV2{Code: server.CodeOverloaded, Error: "injected blip"})
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	remote, err := New(HTTP{BaseURL: ts.URL, Retry: fastRetry(3)}, Config{Plan: h.plan, Store: h.store, Keys: h.keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	terms := multiRoundQuery(h)
	want, _, err := h.cl.Search(context.Background(), terms, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Search and SearchStream both survive the blips.
	got, _, err := remote.Search(context.Background(), terms, 5)
	if err != nil {
		t.Fatalf("search through injected 503s: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	var rounds int
	for snap, err := range remote.SearchStream(context.Background(), terms, 5) {
		if err != nil {
			t.Fatalf("stream through injected 503s: %v", err)
		}
		rounds++
		_ = snap
	}
	if rounds == 0 {
		t.Fatal("stream yielded no snapshots")
	}
	if queries.Load() < 4 {
		t.Fatalf("only %d query requests seen — injection never exercised the retry path", queries.Load())
	}
}
