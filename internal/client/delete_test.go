package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/server"
)

func TestDeleteDocumentRemovesAllElements(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 20)
	victim := h.c.Docs[3]
	want := len(victim.TF)
	before := h.srv.NumElements()
	removed, err := h.cl.DeleteDocument(context.Background(), victim, victim.Group)
	if err != nil {
		t.Fatal(err)
	}
	if removed != want {
		t.Fatalf("removed %d elements, document has %d terms", removed, want)
	}
	if got := h.srv.NumElements(); got != before-want {
		t.Fatalf("server holds %d elements, want %d", got, before-want)
	}
	// The document must no longer be retrievable under any of its
	// terms, and the rest of the ranking must be intact.
	for term := range victim.TF {
		res, _, err := h.cl.Search(context.Background(), []corpus.TermID{term}, h.c.NumDocs(), WithSerial(), WithInitialResponse(50))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Doc == victim.ID {
				t.Fatalf("deleted doc still returned for term %d", term)
			}
		}
		if len(res) != h.c.DF(term)-1 {
			t.Fatalf("term %d: %d results after delete, want %d", term, len(res), h.c.DF(term)-1)
		}
	}
}

func TestDeleteThenReindex(t *testing.T) {
	// The Section 7 update story: delete old elements, insert the new
	// version, query reflects the change.
	h := newHarness(t, crypt.GCMCodec{}, 21)
	victim := h.c.Docs[5]
	if _, err := h.cl.DeleteDocument(context.Background(), victim, victim.Group); err != nil {
		t.Fatal(err)
	}
	// New version: one term boosted heavily.
	var someTerm corpus.TermID
	for term := range victim.TF {
		someTerm = term
		break
	}
	updated := &corpus.Document{
		ID:     victim.ID,
		Group:  victim.Group,
		Length: 10,
		TF:     map[corpus.TermID]int{someTerm: 10},
	}
	if err := h.cl.IndexDocument(context.Background(), updated, updated.Group); err != nil {
		t.Fatal(err)
	}
	res, _, err := h.cl.Search(context.Background(), []corpus.TermID{someTerm}, 1, WithSerial(), WithInitialResponse(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Doc != victim.ID || res[0].Score != 1.0 {
		t.Fatalf("updated doc not at rank 1 with score 1.0: %+v", res)
	}
}

func TestDeleteRequiresAuthAndKeys(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 22)
	d := h.c.Docs[0]
	fresh, err := New(Local{S: h.srv}, Config{Plan: h.plan, Store: h.store, Keys: h.keys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.DeleteDocument(context.Background(), d, d.Group); !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("unauthenticated delete err = %v", err)
	}
	if err := fresh.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.DeleteDocument(context.Background(), d, 99); !errors.Is(err, ErrNoGroupKey) {
		t.Fatalf("keyless delete err = %v", err)
	}
}

func TestServerRemoveACL(t *testing.T) {
	srv := server.New([]byte("s"), 0)
	srv.RegisterUser("a", 0)
	srv.RegisterUser("b", 1)
	aTok, err := srv.Login(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	bTok, err := srv.Login(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	el := server.StoredElement{Sealed: []byte("payload"), TRS: 0.5, Group: 0}
	if err := srv.Insert(context.Background(), aTok[0], 1, el); err != nil {
		t.Fatal(err)
	}
	// b cannot remove a's element.
	if err := srv.Remove(context.Background(), bTok[0], 1, []byte("payload")); !errors.Is(err, server.ErrForbidden) {
		t.Fatalf("cross-group remove err = %v", err)
	}
	// Unknown payload.
	if err := srv.Remove(context.Background(), aTok[0], 1, []byte("nope")); !errors.Is(err, server.ErrNotFound) {
		t.Fatalf("unknown payload err = %v", err)
	}
	// Unknown list.
	if err := srv.Remove(context.Background(), aTok[0], 9, []byte("payload")); !errors.Is(err, server.ErrUnknownList) {
		t.Fatalf("unknown list err = %v", err)
	}
	// Legit removal works and empties the list.
	if err := srv.Remove(context.Background(), aTok[0], 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if srv.ListLen(1) != 0 {
		t.Fatal("element not removed")
	}
}

func TestDeleteOverHTTP(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 23)
	tsrv := newTestHTTP(t, h)
	defer tsrv.Close()
	remote, err := New(HTTP{BaseURL: tsrv.URL}, Config{Plan: h.plan, Store: h.store, Keys: h.keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	victim := h.c.Docs[7]
	removed, err := remote.DeleteDocument(context.Background(), victim, victim.Group)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(victim.TF) {
		t.Fatalf("HTTP delete removed %d, want %d", removed, len(victim.TF))
	}
}

// newTestHTTP starts an httptest server over the harness's index
// server.
func newTestHTTP(t *testing.T, h *harness) *httptest.Server {
	t.Helper()
	return httptest.NewServer(h.srv.Handler())
}
