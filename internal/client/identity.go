package client

import "reflect"

// TransportIdentity reduces a transport to a comparable identity for
// duplicate detection: two transports with equal identities reach the
// same server, so wiring both into one router (or one replica set)
// would silently halve capacity and fake redundancy. HTTP transports
// are identified by base URL (retry policy and client tuning don't
// change who answers), in-process ones by the server instance; other
// comparable implementations compare as themselves, and non-comparable
// ones get a fresh identity each call (never flagged — better to miss
// an exotic duplicate than to panic comparing it).
func TransportIdentity(t Transport) any {
	switch v := t.(type) {
	case HTTP:
		return "http:" + v.BaseURL
	case *HTTP:
		return "http:" + v.BaseURL
	case Local:
		return v.S
	case *Local:
		return v.S
	}
	if t == nil {
		return nil
	}
	if reflect.TypeOf(t).Comparable() {
		return t
	}
	return new(int)
}
