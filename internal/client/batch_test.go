package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/server"
)

// multiTermQueries picks term sets of mixed selectivity from the
// harness corpus.
func multiTermQueries(h *harness) [][]corpus.TermID {
	terms := h.c.TermsByDF()
	return [][]corpus.TermID{
		{terms[0], terms[10]},
		{terms[1], terms[50], terms[200]},
		{terms[5], terms[100], terms[len(terms)/2], terms[len(terms)/3]},
		{terms[2]},
	}
}

// TestSearchBatchedMatchesSerial is the acceptance check of the v2
// redesign: a T-term Search completes in max(per-term rounds) batched
// round-trips rather than Σ per-term requests, and returns exactly
// what the serial v1 path returns.
func TestSearchBatchedMatchesSerial(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 30)
	for qi, q := range multiTermQueries(h) {
		// Per-term serial costs, to predict the batched accounting.
		maxRounds, sumRequests := 0, 0
		for _, term := range q {
			_, st, err := h.cl.Search(context.Background(), []corpus.TermID{term}, 10, WithSerial())
			if err != nil {
				t.Fatal(err)
			}
			if st.Requests > maxRounds {
				maxRounds = st.Requests
			}
			sumRequests += st.Requests
		}

		serialRes, serialStats, err := h.cl.Search(context.Background(), q, 10, WithSerial())
		if err != nil {
			t.Fatal(err)
		}
		batchedRes, batchedStats, err := h.cl.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}

		if len(serialRes) != len(batchedRes) {
			t.Fatalf("query %d: serial %d results, batched %d", qi, len(serialRes), len(batchedRes))
		}
		for i := range serialRes {
			if serialRes[i] != batchedRes[i] {
				t.Fatalf("query %d rank %d: serial %+v, batched %+v", qi, i, serialRes[i], batchedRes[i])
			}
		}
		if batchedStats.Rounds != maxRounds {
			t.Errorf("query %d: batched rounds %d, want max per-term rounds %d", qi, batchedStats.Rounds, maxRounds)
		}
		if batchedStats.Requests != sumRequests {
			t.Errorf("query %d: batched list requests %d, want %d", qi, batchedStats.Requests, sumRequests)
		}
		if serialStats.Rounds != sumRequests {
			t.Errorf("query %d: serial rounds %d, want %d", qi, serialStats.Rounds, sumRequests)
		}
		if len(q) > 1 && batchedStats.Rounds >= batchedStats.Requests {
			t.Errorf("query %d: %d-term query took %d rounds for %d requests — batching saved nothing",
				qi, len(q), batchedStats.Rounds, batchedStats.Requests)
		}
		if batchedStats.Elements != serialStats.Elements {
			t.Errorf("query %d: batched elements %d, serial %d", qi, batchedStats.Elements, serialStats.Elements)
		}
	}
}

// TestSearchBatchedOverHTTP runs the same comparison through the v2
// HTTP endpoints and checks the measured byte accounting.
func TestSearchBatchedOverHTTP(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 31)
	ts := newTestHTTP(t, h)
	defer ts.Close()
	remote, err := New(HTTP{BaseURL: ts.URL}, Config{Plan: h.plan, Store: h.store, Keys: h.keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	for qi, q := range multiTermQueries(h) {
		localRes, localStats, err := h.cl.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		remoteRes, remoteStats, err := remote.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(localRes) != len(remoteRes) {
			t.Fatalf("query %d: local %d results, remote %d", qi, len(localRes), len(remoteRes))
		}
		for i := range localRes {
			if localRes[i] != remoteRes[i] {
				t.Fatalf("query %d rank %d: local %+v, remote %+v", qi, i, localRes[i], remoteRes[i])
			}
		}
		if remoteStats.Rounds != localStats.Rounds || remoteStats.Requests != localStats.Requests {
			t.Errorf("query %d: remote rounds/requests %d/%d, local %d/%d",
				qi, remoteStats.Rounds, remoteStats.Requests, localStats.Rounds, localStats.Requests)
		}
		// In process Bytes falls back to the codec estimate; over HTTP
		// it is the measured JSON body size, which includes framing
		// and base64 expansion and therefore exceeds the estimate.
		estimate := localStats.Elements * h.cl.Codec().WireSize()
		if localStats.Bytes != estimate {
			t.Errorf("query %d: in-process bytes %d, want estimate %d", qi, localStats.Bytes, estimate)
		}
		if remoteStats.Bytes <= estimate {
			t.Errorf("query %d: measured wire bytes %d not above estimate %d", qi, remoteStats.Bytes, estimate)
		}
	}
}

// TestExpiredTokenMapsThroughHTTP proves the v2 structured error
// envelope round-trips error identity: an expired token surfaces as
// the same sentinel remotely as in process.
func TestExpiredTokenMapsThroughHTTP(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 32)
	ts := newTestHTTP(t, h)
	defer ts.Close()
	remote, err := New(HTTP{BaseURL: ts.URL}, Config{Plan: h.plan, Store: h.store, Keys: h.keys})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Login(context.Background(), "writer"); err != nil {
		t.Fatal(err)
	}
	h.srv.SetClock(func() time.Time { return time.Now().Add(2 * time.Hour) })
	defer h.srv.SetClock(time.Now)

	term := h.c.TermsByDF()[0]
	_, _, remoteErr := remote.Search(context.Background(), []corpus.TermID{term}, 10)
	_, _, localErr := h.cl.Search(context.Background(), []corpus.TermID{term}, 10)
	for name, err := range map[string]error{"remote": remoteErr, "local": localErr} {
		if !errors.Is(err, server.ErrAuth) {
			t.Errorf("%s expired-token err = %v, want ErrAuth", name, err)
		}
		if !errors.Is(err, server.ErrTokenExpired) {
			t.Errorf("%s expired-token err = %v, want ErrTokenExpired", name, err)
		}
	}
}

// TestBatchErrorIndexThroughHTTP proves a batch rejection keeps its
// op index and sentinel across the wire.
func TestBatchErrorIndexThroughHTTP(t *testing.T) {
	h := newHarness(t, crypt.GCMCodec{}, 33)
	ts := newTestHTTP(t, h)
	defer ts.Close()
	toks, err := h.srv.Login(context.Background(), "writer")
	if err != nil {
		t.Fatal(err)
	}
	tr := HTTP{BaseURL: ts.URL}
	before := h.srv.NumElements()
	err = tr.InsertBatch(context.Background(), toks[0], []server.InsertOp{
		{List: 1, Element: server.StoredElement{Sealed: []byte{1}, TRS: 0.5, Group: toks[0].Group}},
		{List: 1, Element: server.StoredElement{Sealed: []byte{2}, TRS: 0.5, Group: 4242}},
	})
	if !errors.Is(err, server.ErrForbidden) {
		t.Fatalf("cross-group batched insert err = %v, want ErrForbidden", err)
	}
	var be *server.BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("batch error index not preserved over HTTP: %v", err)
	}
	if h.srv.NumElements() != before {
		t.Fatal("rejected batch was partially applied")
	}
}
