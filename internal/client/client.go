// Package client implements the trusted Zerber+R client of Section
// 5.2: it indexes documents (computing relevance scores, transforming
// them with the published RSTF, sealing posting elements under group
// keys) and executes top-k queries with the progressive follow-up
// protocol, decrypting and filtering responses locally.
package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/rank"
	"zerberr/internal/rstf"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// Config wires a client to its initialization artifacts.
type Config struct {
	// Plan is the merge-plan dictionary mapping terms to merged lists.
	Plan *zerber.MergePlan
	// Store holds the published per-term RSTFs.
	Store *rstf.Store
	// Codec seals posting elements; nil means crypt.GCMCodec{}.
	Codec crypt.ElementCodec
	// Keys are the group keys this user holds.
	Keys map[int]crypt.GroupKey
	// InitialResponse is the Section 6.4 initial response size b;
	// zero means 10 (the paper's recommended b=k for top-10).
	InitialResponse int
	// StrictTopK makes every top-k query provably exact by scanning
	// until the list's TRS falls strictly below the k-th match's TRS.
	// The default (false) follows the paper's cost model, extending the
	// scan only when there is plateau evidence at the boundary
	// (saturated TRS values or equal-TRS matches with distinct scores)
	// — exact in all but adversarial plateau cases.
	StrictTopK bool
}

// QueryStats accounts for the cost of one query, the quantities
// Figures 11-13 are computed from.
type QueryStats struct {
	// Requests is the number of round trips (1 = no follow-ups).
	Requests int
	// Elements is the total number of posting elements returned
	// (TRes of Equation 12 unless the list was exhausted earlier).
	Elements int
	// Bytes is Elements times the codec wire size.
	Bytes int
	// Exhausted reports that the server ran out of visible elements.
	Exhausted bool
}

// Client is a Zerber+R user agent. It is not safe for concurrent use.
type Client struct {
	t      Transport
	cfg    Config
	user   string
	tokens []crypt.Token
	byGrp  map[int]crypt.Token
}

// ErrNotLoggedIn is returned when an operation needs authentication.
var ErrNotLoggedIn = errors.New("client: not logged in")

// ErrNoGroupKey is returned when the client lacks the key or token for
// a group it tries to use.
var ErrNoGroupKey = errors.New("client: missing group key or token")

// New creates a client over the given transport.
func New(t Transport, cfg Config) (*Client, error) {
	if cfg.Plan == nil {
		return nil, errors.New("client: config needs a merge plan")
	}
	if cfg.Store == nil {
		return nil, errors.New("client: config needs an RSTF store")
	}
	if cfg.Codec == nil {
		cfg.Codec = crypt.GCMCodec{}
	}
	if cfg.InitialResponse <= 0 {
		cfg.InitialResponse = 10
	}
	return &Client{t: t, cfg: cfg}, nil
}

// Login authenticates against the index server and caches the issued
// group tokens.
func (c *Client) Login(user string) error {
	toks, err := c.t.Login(user)
	if err != nil {
		return err
	}
	c.user = user
	c.tokens = toks
	c.byGrp = make(map[int]crypt.Token, len(toks))
	for _, tok := range toks {
		c.byGrp[tok.Group] = tok
	}
	return nil
}

// ListFor resolves the merged posting list of a term. Terms absent
// from the merge plan (unseen at initialization, hence rare) are
// hashed onto an existing list deterministically, so inserting clients
// and querying clients agree without coordination.
func (c *Client) ListFor(term corpus.TermID) zerber.ListID {
	if l, ok := c.cfg.Plan.ListOf(term); ok {
		return l
	}
	h := fnv.New32a()
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(term))
	h.Write(b[:])
	return zerber.ListID(h.Sum32() % uint32(c.cfg.Plan.NumLists()))
}

// IndexDocument builds, transforms, seals and uploads the posting
// elements of one document on behalf of the given group (the online
// insertion phase of Section 5).
func (c *Client) IndexDocument(d *corpus.Document, group int) error {
	if c.tokens == nil {
		return ErrNotLoggedIn
	}
	key, okKey := c.cfg.Keys[group]
	tok, okTok := c.byGrp[group]
	if !okKey || !okTok {
		return fmt.Errorf("%w: group %d", ErrNoGroupKey, group)
	}
	if d.Length == 0 {
		return nil
	}
	for term, tf := range d.TF {
		score := rank.NormTF(tf, d.Length)
		trs := c.cfg.Store.TRS(term, d.ID, score)
		sealed, err := c.cfg.Codec.Seal(crypt.Element{Doc: d.ID, Term: term, Score: score}, key)
		if err != nil {
			return fmt.Errorf("client: sealing element for term %d: %w", term, err)
		}
		el := server.StoredElement{Sealed: sealed, TRS: trs, Group: group}
		if err := c.t.Insert(tok, c.ListFor(term), el); err != nil {
			return fmt.Errorf("client: inserting element for term %d: %w", term, err)
		}
	}
	return nil
}

// TopK answers a single-term top-k query with the default initial
// response size.
func (c *Client) TopK(term corpus.TermID, k int) ([]rank.Result, QueryStats, error) {
	return c.TopKWithInitial(term, k, c.cfg.InitialResponse)
}

// TopKWithInitial runs the Section 5.2 protocol: fetch b elements,
// decrypt, keep those of the queried term; while the top-k is not yet
// certain and the list is not exhausted, issue follow-up requests of
// doubling size (b, 2b, 4b, … — Equation 12).
//
// The RSTF is monotone but not strictly so: distinct scores can share
// a TRS (saturation at the range ends, quantization, optional jitter),
// and tied elements appear in arbitrary order. The client therefore
// keeps scanning until the list's TRS falls strictly below the TRS of
// its current k-th best match (minus the configured jitter width) —
// past that point no unseen element of the term can outscore the
// collected top-k — and ranks the matches by their decrypted scores.
func (c *Client) TopKWithInitial(term corpus.TermID, k, b int) ([]rank.Result, QueryStats, error) {
	var stats QueryStats
	if c.tokens == nil {
		return nil, stats, ErrNotLoggedIn
	}
	if k <= 0 {
		return nil, stats, fmt.Errorf("client: k must be positive, got %d", k)
	}
	if b <= 0 {
		b = c.cfg.InitialResponse
	}
	margin := c.cfg.Store.Jitter()
	list := c.ListFor(term)
	var matches []match
	finish := func() []rank.Result {
		sort.Slice(matches, func(i, j int) bool {
			if matches[i].res.Score != matches[j].res.Score {
				return matches[i].res.Score > matches[j].res.Score
			}
			return matches[i].res.Doc < matches[j].res.Doc
		})
		if len(matches) > k {
			matches = matches[:k]
		}
		out := make([]rank.Result, len(matches))
		for i, m := range matches {
			out[i] = m.res
		}
		return out
	}
	offset := 0
	batch := b
	for {
		resp, err := c.t.Query(c.tokens, list, offset, batch)
		if err != nil {
			return nil, stats, err
		}
		stats.Requests++
		stats.Elements += len(resp.Elements)
		stats.Bytes += len(resp.Elements) * c.cfg.Codec.WireSize()
		lastTRS := math.Inf(-1)
		for _, el := range resp.Elements {
			plain, err := c.openElement(el)
			if err != nil {
				return nil, stats, err
			}
			lastTRS = el.TRS
			if plain.Term != term {
				continue
			}
			matches = append(matches, match{res: rank.Result{Doc: plain.Doc, Score: plain.Score}, trs: el.TRS})
		}
		if resp.Exhausted {
			stats.Exhausted = true
			return finish(), stats, nil
		}
		if len(matches) >= k {
			// TRS of the k-th best match by score: monotonicity means
			// any unseen element beating it must carry a TRS at least
			// that high (minus jitter), and the list is TRS-sorted.
			kth := kthBestTRS(matches, k)
			if lastTRS < kth-margin {
				return finish(), stats, nil
			}
			// Boundary tie (kth == lastTRS up to the margin): an unseen
			// element could only win on a TRS plateau. Without strict
			// mode, stop unless a plateau is in evidence.
			if !c.cfg.StrictTopK && margin == 0 && !plateauRisk(matches, kth) {
				return finish(), stats, nil
			}
		}
		offset += len(resp.Elements)
		batch *= 2 // progressive response growth (Section 5.2)
	}
}

// match pairs a decrypted result with the server-visible TRS it was
// ranked by.
type match struct {
	res rank.Result
	trs float64
}

// plateauRisk reports whether the boundary TRS might hide unseen
// better-scored elements: it is saturated (exactly 0 or 1, where the
// RSTF collapses out-of-range scores), or two collected matches with
// different scores share a TRS (an observed flat segment).
func plateauRisk(matches []match, kth float64) bool {
	if kth <= 0 || kth >= 1 {
		return true
	}
	byTRS := make(map[float64]float64, len(matches))
	for _, m := range matches {
		if prev, ok := byTRS[m.trs]; ok && prev != m.res.Score {
			return true
		}
		byTRS[m.trs] = m.res.Score
	}
	return false
}

// kthBestTRS returns the TRS of the k-th best-by-score match.
func kthBestTRS(matches []match, k int) float64 {
	// matches is small (a bit over k); a partial selection is plenty.
	tmp := append([]match(nil), matches...)
	sort.Slice(tmp, func(i, j int) bool {
		if tmp[i].res.Score != tmp[j].res.Score {
			return tmp[i].res.Score > tmp[j].res.Score
		}
		return tmp[i].res.Doc < tmp[j].res.Doc
	})
	return tmp[k-1].trs
}

// openElement decrypts a stored element with the matching group key.
func (c *Client) openElement(el server.StoredElement) (crypt.Element, error) {
	key, ok := c.cfg.Keys[el.Group]
	if !ok {
		return crypt.Element{}, fmt.Errorf("%w: element of group %d", ErrNoGroupKey, el.Group)
	}
	plain, err := c.cfg.Codec.Open(el.Sealed, key)
	if err != nil {
		return crypt.Element{}, fmt.Errorf("client: opening element of group %d: %w", el.Group, err)
	}
	return plain, nil
}

// Search answers a multi-term query as a sequence of single-term
// top-k queries whose scores are summed per document (Section 3.2:
// IDF-free scoring, a deliberate confidentiality/accuracy trade-off).
// Stats are accumulated across the per-term queries.
func (c *Client) Search(terms []corpus.TermID, k int) ([]rank.Result, QueryStats, error) {
	var total QueryStats
	acc := make(map[corpus.DocID]float64)
	exhaustedAll := true
	for _, term := range terms {
		res, st, err := c.TopK(term, k)
		total.Requests += st.Requests
		total.Elements += st.Elements
		total.Bytes += st.Bytes
		if err != nil {
			return nil, total, err
		}
		if !st.Exhausted {
			exhaustedAll = false
		}
		rank.Accumulate(acc, res)
	}
	total.Exhausted = exhaustedAll
	return rank.TopK(acc, k), total, nil
}

// DeleteDocument removes every posting element of the document from
// the index (the other half of "unlimited index update and insert
// operations", Section 7). Because sealed payloads may be randomized
// (AES-GCM), the client locates its elements by downloading and
// decrypting each affected merged list, then asks the server to drop
// the matching ciphertexts. Returns the number of elements removed.
func (c *Client) DeleteDocument(d *corpus.Document, group int) (int, error) {
	if c.tokens == nil {
		return 0, ErrNotLoggedIn
	}
	tok, okTok := c.byGrp[group]
	if _, okKey := c.cfg.Keys[group]; !okKey || !okTok {
		return 0, fmt.Errorf("%w: group %d", ErrNoGroupKey, group)
	}
	// Group terms by merged list so each list is scanned once.
	byList := make(map[zerber.ListID][]corpus.TermID)
	for term := range d.TF {
		l := c.ListFor(term)
		byList[l] = append(byList[l], term)
	}
	removed := 0
	for list, terms := range byList {
		want := make(map[corpus.TermID]bool, len(terms))
		for _, t := range terms {
			want[t] = true
		}
		// Scan first, remove afterwards: removing while paginating
		// would shift offsets and skip elements.
		var victims [][]byte
		offset := 0
		for {
			resp, err := c.t.Query(c.tokens, list, offset, 4096)
			if err != nil {
				return removed, err
			}
			for _, el := range resp.Elements {
				if el.Group != group {
					continue
				}
				plain, err := c.openElement(el)
				if err != nil {
					return removed, err
				}
				if plain.Doc == d.ID && want[plain.Term] {
					victims = append(victims, el.Sealed)
				}
			}
			if resp.Exhausted {
				break
			}
			offset += len(resp.Elements)
		}
		for _, sealed := range victims {
			if err := c.t.Remove(tok, list, sealed); err != nil {
				return removed, err
			}
			removed++
		}
	}
	return removed, nil
}

// User returns the logged-in user name, or "" before Login.
func (c *Client) User() string { return c.user }

// Codec exposes the configured element codec (experiments use it for
// byte accounting).
func (c *Client) Codec() crypt.ElementCodec { return c.cfg.Codec }
