// Package client implements the trusted Zerber+R client of Section
// 5.2: it indexes documents (computing relevance scores, transforming
// them with the published RSTF, sealing posting elements under group
// keys) and executes top-k queries with the progressive follow-up
// protocol, decrypting and filtering responses locally.
//
// The API is context-first (v3): every operation takes a
// context.Context and long operations are cancelable between
// round-trips. Search is the one query entrypoint — functional
// options select the serial v1 path, the initial response size and
// strict top-k — and SearchStream exposes the progressive protocol
// itself, yielding the provisional top-k after every round. By
// default a query drives every term's follow-up loop as one state
// machine over the batched v2 path, so a multi-term query costs
// O(max follow-up rounds) round-trips instead of O(Σ per-term
// requests); the serial path shares the same per-term stopping logic
// (termScan) and therefore returns identical results.
package client

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"zerberr/internal/corpus"
	"zerberr/internal/crypt"
	"zerberr/internal/rank"
	"zerberr/internal/rstf"
	"zerberr/internal/server"
	"zerberr/internal/zerber"
)

// Config wires a client to its initialization artifacts.
type Config struct {
	// Plan is the merge-plan dictionary mapping terms to merged lists.
	Plan *zerber.MergePlan
	// Store holds the published per-term RSTFs.
	Store *rstf.Store
	// Codec seals posting elements; nil means crypt.GCMCodec{}.
	Codec crypt.ElementCodec
	// Keys are the group keys this user holds.
	Keys map[int]crypt.GroupKey
	// InitialResponse is the Section 6.4 initial response size b;
	// zero means 10 (the paper's recommended b=k for top-10).
	InitialResponse int
	// StrictTopK makes every top-k query provably exact by scanning
	// until the list's TRS falls strictly below the k-th match's TRS.
	// The default (false) follows the paper's cost model, extending the
	// scan only when there is plateau evidence at the boundary
	// (saturated TRS values or equal-TRS matches with distinct scores)
	// — exact in all but adversarial plateau cases.
	StrictTopK bool
}

// QueryStats accounts for the cost of one query, the quantities
// Figures 11-13 are computed from.
type QueryStats struct {
	// Requests is the number of per-list fetches (1 = no follow-ups).
	Requests int
	// Rounds is the number of round-trips to the server. On the
	// serial v1 path it equals Requests; on the batched v2 path one
	// round covers every still-open list, so Rounds is the maximum
	// follow-up depth across terms rather than the request sum.
	Rounds int
	// Elements is the total number of posting elements returned
	// (TRes of Equation 12 unless the list was exhausted earlier).
	Elements int
	// Bytes is the response cost. Transports that actually serialize
	// report their measured wire size (the HTTP transport counts the
	// encoded JSON response bodies); in process nothing crosses a
	// wire, so Bytes falls back to Elements times the codec wire
	// size — the paper's Section 6.6 accounting. The measured figure
	// includes JSON framing and is therefore larger than the
	// estimate.
	Bytes int
	// Exhausted reports that the server ran out of visible elements.
	Exhausted bool
}

// Client is a Zerber+R user agent. It is not safe for concurrent use.
type Client struct {
	t      Transport
	cfg    Config
	user   string
	tokens []crypt.Token
	byGrp  map[int]crypt.Token
}

// ErrNotLoggedIn is returned when an operation needs authentication.
var ErrNotLoggedIn = errors.New("client: not logged in")

// ErrNoGroupKey is returned when the client lacks the key or token for
// a group it tries to use.
var ErrNoGroupKey = errors.New("client: missing group key or token")

// New creates a client over the given transport.
func New(t Transport, cfg Config) (*Client, error) {
	if cfg.Plan == nil {
		return nil, errors.New("client: config needs a merge plan")
	}
	if cfg.Store == nil {
		return nil, errors.New("client: config needs an RSTF store")
	}
	if cfg.Codec == nil {
		cfg.Codec = crypt.GCMCodec{}
	}
	if cfg.InitialResponse <= 0 {
		cfg.InitialResponse = 10
	}
	return &Client{t: t, cfg: cfg}, nil
}

// Login authenticates against the index server and caches the issued
// group tokens.
func (c *Client) Login(ctx context.Context, user string) error {
	toks, err := c.t.Login(ctx, user)
	if err != nil {
		return err
	}
	c.user = user
	c.tokens = toks
	c.byGrp = make(map[int]crypt.Token, len(toks))
	for _, tok := range toks {
		c.byGrp[tok.Group] = tok
	}
	return nil
}

// ListFor resolves the merged posting list of a term. Terms absent
// from the merge plan (unseen at initialization, hence rare) are
// hashed onto an existing list deterministically, so inserting clients
// and querying clients agree without coordination.
func (c *Client) ListFor(term corpus.TermID) zerber.ListID {
	if l, ok := c.cfg.Plan.ListOf(term); ok {
		return l
	}
	h := fnv.New32a()
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(term))
	h.Write(b[:])
	return zerber.ListID(h.Sum32() % uint32(c.cfg.Plan.NumLists()))
}

// IndexDocument builds, transforms and seals the posting elements of
// one document on behalf of the given group (the online insertion
// phase of Section 5), then uploads them as a batched insert — one
// round-trip per document instead of one per posting element. The
// server validates each batch as a unit, so for documents within the
// batch cap (all but those with >server.MaxBatchOps distinct terms) a
// rejected element means nothing of the document was indexed.
//
// Cancellation is honored between batched round-trips; a canceled
// context can leave a many-term document partially indexed (earlier
// chunks applied).
func (c *Client) IndexDocument(ctx context.Context, d *corpus.Document, group int) error {
	if c.tokens == nil {
		return ErrNotLoggedIn
	}
	key, okKey := c.cfg.Keys[group]
	tok, okTok := c.byGrp[group]
	if !okKey || !okTok {
		return fmt.Errorf("%w: group %d", ErrNoGroupKey, group)
	}
	if d.Length == 0 {
		return nil
	}
	terms := make([]corpus.TermID, 0, len(d.TF))
	for term := range d.TF {
		terms = append(terms, term)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
	ops := make([]server.InsertOp, 0, len(terms))
	for _, term := range terms {
		score := rank.NormTF(d.TF[term], d.Length)
		trs := c.cfg.Store.TRS(term, d.ID, score)
		sealed, err := c.cfg.Codec.Seal(crypt.Element{Doc: d.ID, Term: term, Score: score}, key)
		if err != nil {
			return fmt.Errorf("client: sealing element for term %d: %w", term, err)
		}
		el := server.StoredElement{Sealed: sealed, TRS: trs, Group: group}
		ops = append(ops, server.InsertOp{List: c.ListFor(term), Element: el})
	}
	// One round-trip per document in practice; documents with more
	// terms than the server's batch cap are split.
	for start := 0; start < len(ops); start += server.MaxBatchOps {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := min(start+server.MaxBatchOps, len(ops))
		if err := c.t.InsertBatch(ctx, tok, ops[start:end]); err != nil {
			return fmt.Errorf("client: inserting elements %d-%d of %d: %w", start, end-1, len(ops), err)
		}
	}
	return nil
}

// queryBatchChunked issues one round's sub-queries, splitting at the
// server's batch cap (each chunk is its own round-trip). Returns the
// responses in query order, the measured wire bytes (0 in process)
// and the number of round-trips taken.
func (c *Client) queryBatchChunked(ctx context.Context, queries []server.ListQuery) ([]server.QueryResponse, int, int, error) {
	resps := make([]server.QueryResponse, 0, len(queries))
	wireBytes, rounds := 0, 0
	for start := 0; start < len(queries); start += server.MaxBatchOps {
		if err := ctx.Err(); err != nil {
			return nil, wireBytes, rounds, err
		}
		end := min(start+server.MaxBatchOps, len(queries))
		res, err := c.t.QueryBatch(ctx, c.tokens, queries[start:end])
		if err != nil {
			return nil, wireBytes, rounds, err
		}
		rounds++
		wireBytes += res.WireBytes
		resps = append(resps, res.Responses...)
	}
	return resps, wireBytes, rounds, nil
}

// termScan is the per-term state of the progressive protocol: the
// cursor into one merged list, the doubling schedule, the matches
// collected so far and the stopping rule. Both the serial and the
// batched query paths drive their rounds through it, so the two paths
// cannot diverge in what they return.
type termScan struct {
	term   corpus.TermID
	list   zerber.ListID
	k      int
	margin float64
	strict bool

	offset int
	batch  int

	matches   []match
	done      bool
	exhausted bool
}

func (c *Client) newTermScan(term corpus.TermID, k, b int, strict bool) *termScan {
	return &termScan{
		term:   term,
		list:   c.ListFor(term),
		k:      k,
		margin: c.cfg.Store.Jitter(),
		strict: strict,
		batch:  b,
	}
}

// next is the sub-query covering this scan's coming round.
func (s *termScan) next() server.ListQuery {
	return server.ListQuery{List: s.list, Offset: s.offset, Count: s.batch}
}

// absorb folds one response into the scan and applies the stopping
// rule: collected top-k certain, or list exhausted, or keep going with
// a doubled batch.
func (s *termScan) absorb(resp server.QueryResponse, open func(server.StoredElement) (crypt.Element, error)) error {
	lastTRS := math.Inf(-1)
	for _, el := range resp.Elements {
		plain, err := open(el)
		if err != nil {
			return err
		}
		lastTRS = el.TRS
		if plain.Term != s.term {
			continue
		}
		s.matches = append(s.matches, match{res: rank.Result{Doc: plain.Doc, Score: plain.Score}, trs: el.TRS})
	}
	if resp.Exhausted {
		s.exhausted = true
		s.done = true
		return nil
	}
	if len(s.matches) >= s.k {
		// TRS of the k-th best match by score: monotonicity means
		// any unseen element beating it must carry a TRS at least
		// that high (minus jitter), and the list is TRS-sorted.
		kth := kthBestTRS(s.matches, s.k)
		if lastTRS < kth-s.margin {
			s.done = true
			return nil
		}
		// Boundary tie (kth == lastTRS up to the margin): an unseen
		// element could only win on a TRS plateau. Without strict
		// mode, stop unless a plateau is in evidence.
		if !s.strict && s.margin == 0 && !plateauRisk(s.matches, kth) {
			s.done = true
			return nil
		}
	}
	s.offset += len(resp.Elements)
	s.batch *= 2 // progressive response growth (Section 5.2)
	return nil
}

// results ranks the collected matches by their decrypted scores and
// cuts to k.
func (s *termScan) results() []rank.Result {
	sort.Slice(s.matches, func(i, j int) bool {
		if s.matches[i].res.Score != s.matches[j].res.Score {
			return s.matches[i].res.Score > s.matches[j].res.Score
		}
		return s.matches[i].res.Doc < s.matches[j].res.Doc
	})
	matches := s.matches
	if len(matches) > s.k {
		matches = matches[:s.k]
	}
	out := make([]rank.Result, len(matches))
	for i, m := range matches {
		out[i] = m.res
	}
	return out
}

// match pairs a decrypted result with the server-visible TRS it was
// ranked by.
type match struct {
	res rank.Result
	trs float64
}

// plateauRisk reports whether the boundary TRS might hide unseen
// better-scored elements: it is saturated (exactly 0 or 1, where the
// RSTF collapses out-of-range scores), or two collected matches with
// different scores share a TRS (an observed flat segment).
func plateauRisk(matches []match, kth float64) bool {
	if kth <= 0 || kth >= 1 {
		return true
	}
	byTRS := make(map[float64]float64, len(matches))
	for _, m := range matches {
		if prev, ok := byTRS[m.trs]; ok && prev != m.res.Score {
			return true
		}
		byTRS[m.trs] = m.res.Score
	}
	return false
}

// kthBestTRS returns the TRS of the k-th best-by-score match.
func kthBestTRS(matches []match, k int) float64 {
	// matches is small (a bit over k); a partial selection is plenty.
	tmp := append([]match(nil), matches...)
	sort.Slice(tmp, func(i, j int) bool {
		if tmp[i].res.Score != tmp[j].res.Score {
			return tmp[i].res.Score > tmp[j].res.Score
		}
		return tmp[i].res.Doc < tmp[j].res.Doc
	})
	return tmp[k-1].trs
}

// openElement decrypts a stored element with the matching group key.
func (c *Client) openElement(el server.StoredElement) (crypt.Element, error) {
	key, ok := c.cfg.Keys[el.Group]
	if !ok {
		return crypt.Element{}, fmt.Errorf("%w: element of group %d", ErrNoGroupKey, el.Group)
	}
	plain, err := c.cfg.Codec.Open(el.Sealed, key)
	if err != nil {
		return crypt.Element{}, fmt.Errorf("client: opening element of group %d: %w", el.Group, err)
	}
	return plain, nil
}

// uniqueTerms drops repeated query terms, keeping first-occurrence
// order. Section 3.2 scoring sums each document's per-term top-k
// contribution once per distinct term; without deduplication a
// repeated term would run its own scan and rank.Accumulate would add
// the same contribution twice, inflating the repeated term's weight
// (and the query's cost) relative to the model.
func uniqueTerms(terms []corpus.TermID) []corpus.TermID {
	seen := make(map[corpus.TermID]bool, len(terms))
	uniq := make([]corpus.TermID, 0, len(terms))
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		uniq = append(uniq, t)
	}
	return uniq
}

// DeleteDocument removes every posting element of the document from
// the index (the other half of "unlimited index update and insert
// operations", Section 7). Because sealed payloads may be randomized
// (AES-GCM), the client locates its elements by downloading and
// decrypting each affected merged list — all lists scanned in batched
// rounds — then removes the matching ciphertexts with one batched
// remove (split only past the server's batch cap). Returns the number
// of elements removed; the server validates each batch as a unit, so
// a typical document is removed all-or-nothing.
//
// Cancellation is honored between round-trips. A context canceled
// during the remove phase can leave the document partially removed
// (the count reports what was); during the scan phase nothing has
// been modified yet.
func (c *Client) DeleteDocument(ctx context.Context, d *corpus.Document, group int) (int, error) {
	if c.tokens == nil {
		return 0, ErrNotLoggedIn
	}
	tok, okTok := c.byGrp[group]
	if _, okKey := c.cfg.Keys[group]; !okKey || !okTok {
		return 0, fmt.Errorf("%w: group %d", ErrNoGroupKey, group)
	}
	// Group terms by merged list so each list is scanned once.
	byList := make(map[zerber.ListID]map[corpus.TermID]bool)
	for term := range d.TF {
		l := c.ListFor(term)
		if byList[l] == nil {
			byList[l] = make(map[corpus.TermID]bool)
		}
		byList[l][term] = true
	}
	// Scan first, remove afterwards: removing while paginating would
	// shift offsets and skip elements. One cursor per affected list,
	// advanced together in batched rounds.
	type cursor struct {
		list   zerber.ListID
		offset int
		done   bool
	}
	cursors := make([]*cursor, 0, len(byList))
	for list := range byList {
		cursors = append(cursors, &cursor{list: list})
	}
	sort.Slice(cursors, func(i, j int) bool { return cursors[i].list < cursors[j].list })
	const scanBatch = 4096
	var victims []server.RemoveOp
	for {
		var queries []server.ListQuery
		var open []*cursor
		for _, cur := range cursors {
			if !cur.done {
				queries = append(queries, server.ListQuery{List: cur.list, Offset: cur.offset, Count: scanBatch})
				open = append(open, cur)
			}
		}
		if len(queries) == 0 {
			break
		}
		resps, _, _, err := c.queryBatchChunked(ctx, queries)
		if err != nil {
			return 0, err
		}
		for j, resp := range resps {
			cur := open[j]
			want := byList[cur.list]
			for _, el := range resp.Elements {
				if el.Group != group {
					continue
				}
				plain, err := c.openElement(el)
				if err != nil {
					return 0, err
				}
				if plain.Doc == d.ID && want[plain.Term] {
					victims = append(victims, server.RemoveOp{List: cur.list, Sealed: el.Sealed})
				}
			}
			if resp.Exhausted {
				cur.done = true
			} else {
				cur.offset += len(resp.Elements)
			}
		}
	}
	if len(victims) == 0 {
		return 0, nil
	}
	removed := 0
	for start := 0; start < len(victims); start += server.MaxBatchOps {
		if err := ctx.Err(); err != nil {
			return removed, err
		}
		end := min(start+server.MaxBatchOps, len(victims))
		if err := c.t.RemoveBatch(ctx, tok, victims[start:end]); err != nil {
			return removed, err
		}
		removed += end - start
	}
	return removed, nil
}

// User returns the logged-in user name, or "" before Login.
func (c *Client) User() string { return c.user }

// Codec exposes the configured element codec (experiments use it for
// byte accounting).
func (c *Client) Codec() crypt.ElementCodec { return c.cfg.Codec }
